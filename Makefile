.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# Vet + race-detector tests for the concurrency-sensitive packages
# (sharded buffer pool, access-method framework, batched scan pipeline).
check:
	sh scripts/check.sh

bench:
	go test -bench=. -benchmem
