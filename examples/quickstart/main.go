// Quickstart: create a bitemporal table, index it with the GR-tree
// DataBlade, and watch now-relative data grow as the current time advances.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
)

func main() {
	// A virtual clock makes the growth of now-relative data observable.
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		log.Fatal(err)
	}
	s := e.NewSession()
	defer s.Close()

	must := func(sql string) *engine.Result {
		res, err := s.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// The paper's six-step recipe, steps 5-6: storage space and index.
	must(`CREATE SBSPACE spc`)
	must(`CREATE TABLE Employees (Name VARCHAR(32), Department VARCHAR(32), Time_Extent GRT_TimeExtent_t)`)
	must(`CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc`)

	// A time extent is 'TTbegin, TTend, VTbegin, VTend'; UC and NOW are the
	// now-relative variables of Section 2.
	must(`INSERT INTO Employees VALUES ('Jane', 'Sales', '5/97, UC, 5/97, NOW')`)
	must(`INSERT INTO Employees VALUES ('Tom',  'Management', '3/97, 7/97, 6/97, 8/97')`)

	query := `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/98, 2/98, 1/98, 2/98')`
	fmt.Println("current time:", clock.Now())
	fmt.Println("who overlaps early 1998?")
	fmt.Print(e.FormatResult(must(query)))

	// Five months pass: Jane's stair-shaped region has grown into 1998.
	clock.Set(chronon.MustParse("2/98"))
	fmt.Println("\ncurrent time:", clock.Now())
	fmt.Println("who overlaps early 1998 now?")
	fmt.Print(e.FormatResult(must(query)))

	// The index stayed consistent while its regions grew.
	fmt.Print(e.FormatResult(must(`CHECK INDEX grt_index`)))
	fmt.Print(e.FormatResult(must(`UPDATE STATISTICS FOR INDEX grt_index`)))
}
