// GiST: the paper's Section 7 future work in action — one generic
// tree-based access method (gist_am), extended purely through operator
// classes. The same SQL surface as the dedicated GR-tree blade runs over
// the generic machinery via gist_grt_ops, and a second index type
// (one-dimensional intervals) costs only a key class plus an opclass.
//
//	go run ./examples/gist
package main

import (
	"fmt"
	"log"

	"repro/internal/blades/gistblade"
	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
)

func main() {
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		log.Fatal(err)
	}
	if err := gistblade.Register(e); err != nil {
		log.Fatal(err)
	}
	s := e.NewSession()
	defer s.Close()
	must := func(sql string) *engine.Result {
		res, err := s.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	must(`CREATE SBSPACE spc`)

	// 1) Bitemporal data under the GENERIC access method: gist_grt_ops
	//    expresses the GR-tree as a GiST key class.
	must(`CREATE TABLE Employees (Name VARCHAR(32), Time_Extent GRT_TimeExtent_t)`)
	must(`CREATE INDEX emp_gist ON Employees(Time_Extent gist_grt_ops) USING gist_am IN spc`)
	must(`INSERT INTO Employees VALUES ('Jane', '5/97, UC, 5/97, NOW')`)
	must(`INSERT INTO Employees VALUES ('Tom',  '3/97, 7/97, 6/97, 8/97')`)
	fmt.Println("bitemporal query through gist_am (gist_grt_ops):")
	fmt.Print(e.FormatResult(must(
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)))
	must(`CHECK INDEX emp_gist`)

	// Growth works through the generic path too.
	clock.Set(chronon.MustParse("3/98"))
	fmt.Println("\nafter the clock advances to 3/98:")
	fmt.Print(e.FormatResult(must(
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/98, 2/98, 1/98, 2/98')`)))

	// 2) A second index type for free: intervals under gist_interval_ops.
	must(`CREATE TABLE Reservations (Room INTEGER, Span Interval_t)`)
	must(`CREATE INDEX res_ix ON Reservations(Span gist_interval_ops) USING gist_am IN spc`)
	for room := 0; room < 50; room++ {
		must(fmt.Sprintf(`INSERT INTO Reservations VALUES (%d, '%d..%d')`, room, room*10, room*10+15))
	}
	fmt.Println("\ninterval query through the same access method (gist_interval_ops):")
	fmt.Print(e.FormatResult(must(
		`SELECT Room FROM Reservations WHERE IntvOverlaps(Span, '100..112')`)))
	must(`CHECK INDEX res_ix`)
	fmt.Println("\nboth indexes live in the same generic gist_am — the paper's closing vision.")
}
