// EmpDep: the paper's running example, end to end — the Table 1 relation
// built through insertions, a logical deletion, and an update (Section 2),
// then the Section 5.2 sample query and the Table 3 "Julie query" that
// motivates the single-column opaque time-extent type.
//
//	go run ./examples/empdep
package main

import (
	"fmt"
	"log"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/temporal"
	"repro/internal/types"
)

func main() {
	clock := chronon.NewVirtualClock(chronon.MustParse("3/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		log.Fatal(err)
	}
	s := e.NewSession()
	defer s.Close()
	must := func(sql string) *engine.Result {
		res, err := s.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	must(`CREATE SBSPACE spc`)
	must(`CREATE TABLE EmpDep (Employee VARCHAR(16), Department VARCHAR(16), Time_Extent GRT_TimeExtent_t)`)
	must(`CREATE INDEX empdep_ix ON EmpDep(Time_Extent grt_opclass) USING grtree_am IN spc`)

	insert := func(name, dep, vtb, vte string) {
		ext := temporal.Extent{
			TTBegin: clock.Now(), TTEnd: chronon.UC,
			VTBegin: chronon.MustParse(vtb), VTEnd: chronon.MustParse(vte),
		}
		if err := ext.ValidateInsert(clock.Now()); err != nil {
			log.Fatal(err)
		}
		must(fmt.Sprintf(`INSERT INTO EmpDep VALUES ('%s', '%s', '%s')`, name, dep, ext))
	}
	logicalDelete := func(name string) {
		res := must(fmt.Sprintf(`SELECT Time_Extent FROM EmpDep WHERE Employee = '%s'`, name))
		for _, row := range res.Rows {
			ext, err := grtblade.DecodeExtent(row[0].(types.Opaque).Data)
			if err != nil {
				log.Fatal(err)
			}
			if !ext.Current() {
				continue
			}
			closed, err := ext.Deleted(clock.Now())
			if err != nil {
				log.Fatal(err)
			}
			must(fmt.Sprintf(`UPDATE EmpDep SET Time_Extent = '%s' WHERE Employee = '%s' AND Equal(Time_Extent, '%s')`,
				closed, name, ext))
			return
		}
		log.Fatalf("no current tuple for %s", name)
	}

	// The history behind Table 1.
	clock.Set(chronon.MustParse("3/97"))
	insert("Tom", "Management", "6/97", "8/97") // recorded before it becomes true
	insert("Julie", "Sales", "3/97", "NOW")
	clock.Set(chronon.MustParse("4/97"))
	insert("John", "Advertising", "3/97", "5/97")
	clock.Set(chronon.MustParse("5/97"))
	insert("Jane", "Sales", "5/97", "NOW")
	insert("Michelle", "Management", "3/97", "NOW")
	clock.Set(chronon.MustParse("8/97"))
	logicalDelete("Tom")                     // Tom leaves the current state
	logicalDelete("Julie")                   // Julie's update: close the old belief...
	insert("Julie", "Sales", "3/97", "7/97") // ...and record the corrected one
	clock.Set(chronon.MustParse("9/97"))

	fmt.Println("The EmpDep relation (Table 1), CT = 9/97:")
	res := must(`SELECT Employee, Department, Time_Extent FROM EmpDep`)
	fmt.Print(e.FormatResult(res))

	// The Section 5.2 sample query, verbatim.
	fmt.Println("\nSELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW'):")
	res = must(`SELECT Employee FROM EmpDep WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
	fmt.Print(e.FormatResult(res))

	// The Table 3 Julie query: who was in Sales during 7/97 according to
	// the knowledge we had during 5/97? Julie's region is a stair-shape, so
	// the correct answer excludes her — which only works because the whole
	// extent is one value (Section 5.1).
	fmt.Println("\nThe Julie query — in Sales during 7/97 as known during 5/97:")
	res = must(`SELECT Employee FROM EmpDep WHERE Department = 'Sales'
		AND Overlaps(Time_Extent, '5/97, 5/31/97, 7/97, 7/31/97')`)
	fmt.Print(e.FormatResult(res))
	fmt.Println("(no rows: the stair had not reached valid time 7/97 at transaction time 5/97)")
}
