// Concurrency: snapshot-isolated readers beside Section 5.3's two-phase
// locking for writers, observed from multiple sessions — readers scan a
// stable MVCC read view without acquiring any lock, a writer commits
// mid-transaction without waiting for them, and writers among themselves
// still serialise under strict 2PL with deadlock detection.
//
//	go run ./examples/concurrency
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
)

func main() {
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		log.Fatal(err)
	}

	setup := e.NewSession()
	mustIn := func(s *engine.Session, sql string) *engine.Result {
		res, err := s.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustIn(setup, `CREATE SBSPACE spc`)
	mustIn(setup, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	mustIn(setup, `CREATE INDEX ix ON T(X) USING grtree_am IN spc`)
	for i := 0; i < 20; i++ {
		mustIn(setup, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/97, UC, %d/97, NOW')`, i, i%9+1, i%9+1))
	}
	setup.Close()

	// Two concurrent readers: each scans its own snapshot, lock-free.
	fmt.Println("1) two concurrent snapshot readers:")
	var wg sync.WaitGroup
	for r := 1; r <= 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			res := mustIn(s, `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`)
			fmt.Printf("   reader %d saw %v rows\n", r, res.Rows[0][0])
		}(r)
	}
	wg.Wait()

	// A snapshot-isolated reader's transaction pins its read view: a writer
	// commits underneath it without blocking, invisibly to the open
	// transaction, and a fresh statement afterwards sees the new row.
	fmt.Println("2) snapshot reader vs committing writer:")
	reader := e.NewSession()
	mustIn(reader, `SET ISOLATION TO SNAPSHOT`)
	mustIn(reader, `BEGIN WORK`)
	before := mustIn(reader, `SELECT COUNT(*) FROM T`)
	fmt.Printf("   reader's transaction pinned a snapshot: %v rows\n", before.Rows[0][0])

	writerDone := make(chan time.Duration)
	go func() {
		s := e.NewSession()
		defer s.Close()
		start := time.Now()
		mustIn(s, `INSERT INTO T VALUES (99, '9/97, UC, 9/97, NOW')`)
		writerDone <- time.Since(start)
	}()
	fmt.Printf("   writer committed in %v without waiting for the reader\n", <-writerDone)
	during := mustIn(reader, `SELECT COUNT(*) FROM T`)
	fmt.Printf("   reader still sees %v rows inside its transaction\n", during.Rows[0][0])
	mustIn(reader, `COMMIT`)
	after := mustIn(reader, `SELECT COUNT(*) FROM T`)
	fmt.Printf("   after commit a fresh statement sees %v rows\n", after.Rows[0][0])
	reader.Close()

	// Deadlock detection: two transactions locking two tables in opposite
	// orders; the victim receives an error instead of hanging.
	fmt.Println("3) deadlock detection:")
	s1 := e.NewSession()
	s2 := e.NewSession()
	mustIn(s1, `CREATE TABLE A (v INTEGER)`)
	mustIn(s1, `CREATE TABLE B (v INTEGER)`)
	mustIn(s1, `BEGIN`)
	mustIn(s1, `INSERT INTO A VALUES (1)`)
	mustIn(s2, `BEGIN`)
	mustIn(s2, `INSERT INTO B VALUES (1)`)
	errc := make(chan error, 1)
	go func() {
		_, err := s1.Exec(`INSERT INTO B VALUES (2)`) // s1 waits for s2
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	_, err2 := s2.Exec(`INSERT INTO A VALUES (2)`) // closes the cycle
	if err2 != nil {
		fmt.Println("   victim transaction received:", err2)
		mustIn(s2, `ROLLBACK`)
	}
	if err := <-errc; err != nil {
		log.Fatalf("survivor failed: %v", err)
	}
	mustIn(s1, `COMMIT`)
	fmt.Println("   survivor committed")
	s1.Close()
	s2.Close()
}
