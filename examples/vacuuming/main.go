// Vacuuming: Section 5.5's end-of-life maintenance — deleting all data
// older than a cutoff. The example compares the two strategies the paper
// discusses: predicate-driven deletion through the index (slow: every
// deletion may condense the tree and restart the scan) versus dropping the
// index and bulk-loading it from the surviving rows.
//
//	go run ./examples/vacuuming
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/nodestore"
	"repro/internal/temporal"
)

func main() {
	clock := chronon.NewVirtualClock(chronon.MustParse("1/90"))
	e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		log.Fatal(err)
	}
	s := e.NewSession()
	defer s.Close()
	must := func(sql string) *engine.Result {
		res, err := s.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	must(`CREATE SBSPACE spc`)
	must(`CREATE TABLE History (N INTEGER, Time_Extent GRT_TimeExtent_t)`)
	must(`CREATE INDEX hist_ix ON History(Time_Extent) USING grtree_am IN spc`)

	// Ten years of closed history: one tuple a week, each logically deleted
	// after 60 days (cases 2/4 — static regions). The history is loaded
	// after the fact, so the clock sits at the end and every transaction-
	// time interval lies in the past, per the Section 2 constraints.
	const tuples = 520
	firstDay := clock.Now()
	clock.Set(firstDay + tuples*7 + 90)
	for i := 0; i < tuples; i++ {
		day := firstDay + chronon.Instant(i*7)
		ext := temporal.Extent{
			TTBegin: day, TTEnd: day + 60,
			VTBegin: day - 10, VTEnd: chronon.NOW,
		}
		must(fmt.Sprintf(`INSERT INTO History VALUES (%d, '%s')`, i, ext))
	}
	fmt.Printf("loaded %d tuples; current time %v\n", tuples, clock.Now())

	// Vacuum: delete everything whose transaction time ended more than
	// five years ago ("delete all data that is more than five years old").
	cutoff := clock.Now() - 5*365
	pred := fmt.Sprintf(`ContainedIn(Time_Extent, '%s, %s, %s, %s')`,
		chronon.Instant(0), cutoff, chronon.Instant(-4000), clock.Now())

	// Strategy A: predicate-driven deletion through the index.
	start := time.Now()
	res := must(`DELETE FROM History WHERE ` + pred)
	fmt.Printf("\nstrategy A — DELETE through the index: removed %d rows in %v\n", res.Affected, time.Since(start))
	must(`CHECK INDEX hist_ix`)
	fmt.Print(e.FormatResult(must(`UPDATE STATISTICS FOR INDEX hist_ix`)))

	// Strategy B: drop the index and rebuild it by bulk loading, the
	// paper's "straightforward solution" for vacuuming. (The bulk-loading
	// path itself is exercised below through the grtree API the blade
	// builds on.)
	start = time.Now()
	must(`DROP INDEX hist_ix`)
	must(`CREATE INDEX hist_ix ON History(Time_Extent) USING grtree_am IN spc`)
	fmt.Printf("\nstrategy B — drop + rebuild from the %d survivors: %v\n",
		must(`SELECT COUNT(*) FROM History`).Rows[0][0], time.Since(start))
	must(`CHECK INDEX hist_ix`)

	// The same trade-off at the tree level, with the bulk loader proper.
	demoBulkLoad(clock.Now())
}

// demoBulkLoad shows grtree.BulkLoad (sort-tile-recursive packing) against
// one-at-a-time insertion for an index rebuild.
func demoBulkLoad(ct chronon.Instant) {
	items := make([]grtree.BulkItem, 0, 800)
	for i := 0; i < 800; i++ {
		day := ct - chronon.Instant(800-i)
		items = append(items, grtree.BulkItem{
			Extent:  temporal.Extent{TTBegin: day, TTEnd: day + 30, VTBegin: day - 5, VTEnd: day + 25},
			Payload: grtree.Payload(i + 1),
		})
	}
	mkTree := func() *grtree.Tree {
		tr, err := grtree.Create(nodestore.NewMem(), grtree.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	start := time.Now()
	bulk := mkTree()
	if err := bulk.BulkLoad(items, ct); err != nil {
		log.Fatal(err)
	}
	bulkTime := time.Since(start)

	start = time.Now()
	oneByOne := mkTree()
	for _, it := range items {
		if err := oneByOne.Insert(it.Extent, it.Payload, ct); err != nil {
			log.Fatal(err)
		}
	}
	insertTime := time.Since(start)

	fmt.Printf("\nbulk load vs insertion (800 entries): %v vs %v (%.1fx)\n",
		bulkTime, insertTime, float64(insertTime)/float64(bulkTime))
	if err := bulk.Check(ct); err != nil {
		log.Fatal(err)
	}
}
