// Command benchrunner regenerates every table and figure of the paper
// reproduction (DESIGN.md's experiment index): the functional experiments
// T1–T5 and F2–F6 plus the performance-shape experiments P1–P6, the
// parallel-scan sweep P8, the group-commit sweep P9, the MVCC reader sweep
// P10, the networked commit sweep P11, the index-build comparison P12, the
// prepared-statement sweep P13, and the aggregate-pushdown sweep P14 (P7 is
// the BenchmarkScanBatchSize sweep; see EXPERIMENTS.md).
//
// Usage:
//
//	benchrunner                  # run everything at full scale
//	benchrunner -quick           # smaller workloads (CI-sized)
//	benchrunner -exp P1,P2       # selected experiments
//	benchrunner -root ../..      # repository root (T4's LOC inventory)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids (T1,F2,...,P9) or 'all'")
		quick = flag.Bool("quick", false, "run reduced workloads")
		root  = flag.String("root", ".", "repository root for the T4 code inventory")
	)
	flag.Parse()
	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := experiments.Run(os.Stdout, *root, *quick, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}
