package main

import (
	"strings"
	"testing"
)

const demoSpec = `
# a demo opaque type
type Interval_t
library usr/functions/interval.bld
field Begin int64
field End   int64
strategy IOverlaps IEqual
support  ISize
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.TypeName != "Interval_t" || spec.Library != "usr/functions/interval.bld" {
		t.Fatalf("%+v", spec)
	}
	if len(spec.Fields) != 2 || spec.Fields[0] != [2]string{"Begin", "int64"} {
		t.Fatalf("fields: %v", spec.Fields)
	}
	if len(spec.Strategies) != 2 || len(spec.Support) != 1 {
		t.Fatalf("%+v", spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		``,                                     // no type
		`type X`,                               // no fields
		`type X` + "\n" + `field a`,            // malformed field
		`type X` + "\n" + `field a complex128`, // bad field type
		`nonsense directive`,
		`type`, // missing name
	} {
		if _, err := ParseSpec(strings.NewReader(bad)); err == nil {
			t.Errorf("spec %q must fail", bad)
		}
	}
}

func TestGenerateGo(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateGo(spec)
	for _, want := range []string{
		"type Interval_t struct",
		"Begin int64",
		"const Interval_tSize = 16",
		"func EncodeInterval_t",
		"types.SupportFuncs",
		"TODO",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated Go missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateSQL(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	sql := GenerateSQL(spec)
	for _, want := range []string{
		"CREATE FUNCTION IOverlaps(Interval_t, Interval_t) RETURNING boolean",
		"EXTERNAL NAME 'usr/functions/interval.bld(IOverlaps)'",
		"CREATE FUNCTION ISize(Interval_t) RETURNING float",
		"CREATE OPCLASS interval_t_opclass FOR your_am STRATEGIES(IOverlaps, IEqual) SUPPORT(ISize);",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("generated SQL missing %q:\n%s", want, sql)
		}
	}
}
