// Command tinybladed serves the engine over TCP: the network face of the
// GR-tree DataBlade. Each connection gets its own session (SET state, one
// transaction slot); statement execution across all connections is
// multiplexed over a bounded executor pool, the way Informix multiplexes
// sessions over its VP pool. Clients speak the length-prefixed wire
// protocol of internal/wire — use `tinyblade -connect <addr>` or the
// internal/client library.
//
// Flags:
//
//	-addr            listen address (default 127.0.0.1:7497)
//	-dir             database directory (empty = in-memory)
//	-clock           starting current time (default: today)
//	-max-executors   concurrent statement cap across all connections
//
// SIGTERM/SIGINT drains gracefully: stop accepting, let in-flight
// statements finish (canceling whatever outlives the grace period), then
// close the engine — which flushes the WAL. A second signal hard-stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/blades/grtblade"
	"repro/internal/blades/rstblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7497", "listen address")
		dir   = flag.String("dir", "", "database directory (empty = in-memory)")
		start = flag.String("clock", "", "starting current time (default: today)")
		maxEx = flag.Int("max-executors", 8, "concurrent statement cap across all connections")
		grace = flag.Duration("grace", 10*time.Second, "drain grace period before in-flight statements are canceled")
	)
	flag.Parse()
	if err := run(*addr, *dir, *start, *maxEx, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "tinybladed:", err)
		os.Exit(1)
	}
}

func run(addr, dir, start string, maxEx int, grace time.Duration) error {
	now := chronon.SystemClock{}.Now()
	if start != "" {
		t, err := chronon.Parse(start)
		if err != nil {
			return err
		}
		now = t
	}
	clock := chronon.NewVirtualClock(now)
	e, err := engine.Open(engine.Options{Dir: dir, Clock: clock, Types: grtblade.RegisterTypes})
	if err != nil {
		return err
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		return err
	}
	if err := rstblade.Register(e); err != nil {
		return err
	}

	srv := server.New(e, server.Options{
		MaxExecutors: maxEx,
		Banner:       fmt.Sprintf("tinybladed (current time %v)", clock.Now()),
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("tinybladed listening on %v (executors %d, current time %v)\n",
		ln.Addr(), maxEx, clock.Now())

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case sig := <-sigc:
		fmt.Printf("tinybladed: %v — draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	go func() {
		<-sigc
		cancel() // second signal: cancel in-flight statements now
	}()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tinybladed: drain incomplete:", err)
	}
	if err := <-done; err != nil {
		return err
	}
	fmt.Println("tinybladed: drained; closing engine")
	return nil // deferred e.Close flushes the WAL
}
