// Command tinyblade is the interactive SQL shell of the engine, with the
// GR-tree and R*-tree DataBlades registered — the environment in which the
// paper's examples run verbatim:
//
//	CREATE SBSPACE spc;
//	CREATE TABLE Employees (Name VARCHAR(32), Time_Extent GRT_TimeExtent_t);
//	CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc;
//	SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW');
//
// Because now-relative data grows with the current time, the shell exposes
// the virtual clock through meta commands:
//
//	.clock            print the current time
//	.clock 3/98       set the current time
//	.advance 30       advance the clock by 30 days
//	.profile on|off   print each statement's execution profile
//	.quit             exit
//
// Observability: EXPLAIN <stmt> prints the access plan, SET TRACE <class>
// <level> turns on mi trace output (written to stdout), and the SYSPROFILE /
// SYSPTPROF virtual tables serve the live engine counters. Errors print
// their SQLSTATE-style code.
//
// Flags: -dir <path> opens a persistent database (default: in-memory);
// -clock <date> sets the starting current time; -connect <addr> attaches to
// a running tinybladed over the wire protocol instead of embedding the
// engine — same SQL, same rendering, but the clock lives server-side, so
// .clock/.advance are unavailable remotely.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/blades/grtblade"
	"repro/internal/blades/rstblade"
	"repro/internal/chronon"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/types"
)

func main() {
	var (
		dir     = flag.String("dir", "", "database directory (empty = in-memory)")
		start   = flag.String("clock", "", "starting current time (default: today)")
		connect = flag.String("connect", "", "tinybladed address to connect to (instead of embedding the engine)")
	)
	flag.Parse()

	if *connect != "" {
		if err := remoteShell(*connect); err != nil {
			fmt.Fprintln(os.Stderr, "tinyblade:", err)
			os.Exit(1)
		}
		return
	}

	now := chronon.SystemClock{}.Now()
	if *start != "" {
		t, err := chronon.Parse(*start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tinyblade:", err)
			os.Exit(1)
		}
		now = t
	}
	clock := chronon.NewVirtualClock(now)
	e, err := engine.Open(engine.Options{Dir: *dir, Clock: clock, Types: grtblade.RegisterTypes, TraceWriter: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tinyblade:", err)
		os.Exit(1)
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		fmt.Fprintln(os.Stderr, "tinyblade:", err)
		os.Exit(1)
	}
	if err := rstblade.Register(e); err != nil {
		fmt.Fprintln(os.Stderr, "tinyblade:", err)
		os.Exit(1)
	}
	s := e.NewSession()
	defer s.Close()

	fmt.Printf("tinyblade — GR-tree DataBlade shell (current time %v)\n", clock.Now())
	fmt.Println(`type SQL terminated by ';', or ".help" for meta commands`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	profile := false
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if meta(trimmed, clock, &profile) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			src := pending.String()
			pending.Reset()
			res, err := s.ExecScript(src)
			if err != nil {
				if code := engine.ErrorCode(err); code != "" {
					fmt.Printf("error [SQLSTATE %s]: %v\n", code, err)
				} else {
					fmt.Println("error:", err)
				}
			} else {
				fmt.Print(e.FormatResult(res))
				if profile && res != nil && res.Stats != nil {
					fmt.Println("profile:", res.Stats)
				}
			}
		}
		prompt()
	}
}

// remoteShell is the -connect REPL: the same loop against a tinybladed
// server. The client registry carries the blade's type support functions,
// so opaque extents decode and render exactly as they do embedded.
func remoteShell(addr string) error {
	reg := types.NewRegistry()
	if err := grtblade.RegisterTypes(reg); err != nil {
		return err
	}
	c, err := client.Dial(addr, reg)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Printf("connected to %s — %s\n", addr, c.Banner())
	fmt.Println(`type SQL terminated by ';', or ".help" for meta commands`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	profile := false
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			switch strings.Fields(trimmed)[0] {
			case ".quit", ".q", ".exit":
				return nil
			case ".help":
				fmt.Println(".profile on|off | .quit  (.clock/.advance need an embedded shell: the clock is server-side)")
			case ".profile":
				profile = !profile
				state := "off"
				if profile {
					state = "on"
				}
				fmt.Println("statement profiling", state)
			case ".clock", ".advance":
				fmt.Println("the current time lives in the server; restart tinybladed with -clock to change it")
			default:
				fmt.Println("unknown meta command; .help lists them")
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			src := pending.String()
			pending.Reset()
			res, err := c.Exec(src)
			if err != nil {
				if code := engine.ErrorCode(err); code != "" {
					fmt.Printf("error [SQLSTATE %s]: %v\n", code, err)
				} else {
					fmt.Println("error:", err)
				}
			} else {
				fmt.Print(c.Format(res))
				if profile && res.Profile != "" {
					fmt.Println("profile:", res.Profile)
				}
			}
		}
		prompt()
	}
	return nil
}

// meta handles dot-commands; it reports whether the shell should exit.
func meta(cmd string, clock *chronon.VirtualClock, profile *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".q", ".exit":
		return true
	case ".help":
		fmt.Println(".clock [date] | .advance <days> | .profile on|off | .quit")
	case ".profile":
		if len(fields) == 2 && (fields[1] == "on" || fields[1] == "off") {
			*profile = fields[1] == "on"
		} else {
			*profile = !*profile
		}
		state := "off"
		if *profile {
			state = "on"
		}
		fmt.Println("statement profiling", state)
	case ".clock":
		if len(fields) == 1 {
			fmt.Println("current time:", clock.Now())
			break
		}
		t, err := chronon.Parse(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		clock.Set(t)
		fmt.Println("current time:", clock.Now())
	case ".advance":
		if len(fields) != 2 {
			fmt.Println("usage: .advance <days>")
			break
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		clock.Advance(n)
		fmt.Println("current time:", clock.Now())
	default:
		fmt.Println("unknown meta command; .help lists them")
	}
	return false
}
