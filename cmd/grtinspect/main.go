// Command grtinspect dumps the structure and goodness measures of a GR-tree
// index in a persistent database: the Figure 5 style tree print plus
// per-level node/entry counts, sibling-bound overlap, and a sampled
// dead-space ratio (the Section 3 "goodness" measures).
//
// Usage:
//
//	grtinspect -dir ./db -index grt_index [-clock 9/97] [-dump]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/lock"
	"repro/internal/nodestore"
	"repro/internal/sbspace"
)

func main() {
	var (
		dir   = flag.String("dir", "", "database directory")
		index = flag.String("index", "", "GR-tree index name")
		at    = flag.String("clock", "", "current time for resolution (default: today)")
		dump  = flag.Bool("dump", false, "print the full tree structure")
	)
	flag.Parse()
	if *dir == "" || *index == "" {
		fmt.Fprintln(os.Stderr, "usage: grtinspect -dir <db> -index <name> [-clock <date>] [-dump]")
		os.Exit(1)
	}
	ct := chronon.SystemClock{}.Now()
	if *at != "" {
		t, err := chronon.Parse(*at)
		if err != nil {
			fail(err)
		}
		ct = t
	}
	e, err := engine.Open(engine.Options{Dir: *dir, Clock: chronon.Fixed(ct), Types: grtblade.RegisterTypes})
	if err != nil {
		fail(err)
	}
	defer e.Close()

	ix, err := e.Catalog().IndexByName(*index)
	if err != nil {
		fail(err)
	}
	rec, ok := e.Catalog().AMRecordGet(ix.AmName, ix.Name)
	if !ok {
		fail(fmt.Errorf("index %s has no access-method record", ix.Name))
	}
	space, err := e.Space(ix.SpaceName)
	if err != nil {
		fail(err)
	}
	const inspectTx = lock.TxID(1 << 62)
	store, err := nodestore.OpenLO(space, inspectTx, lock.DirtyRead, sbspace.DecodeHandle(rec), sbspace.ReadOnly)
	if err != nil {
		fail(err)
	}
	defer store.Close()
	tree, err := grtree.Open(store, grtree.DefaultConfig())
	if err != nil {
		fail(err)
	}

	st, err := tree.Stats(ct, 50000, 1)
	if err != nil {
		fail(err)
	}
	fmt.Printf("index %s on %s(%s), as of %v\n", ix.Name, ix.TableName, ix.Columns[0], ct)
	fmt.Printf("entries %d, height %d, nodes %d, dead-space ratio %.3f\n",
		st.LeafEntries, st.Height, st.Nodes, st.DeadSpaceRatio)
	fmt.Printf("%-6s %7s %8s %14s %14s\n", "level", "nodes", "entries", "boundArea", "overlapArea")
	for _, l := range st.PerLevel {
		fmt.Printf("%-6d %7d %8d %14.4g %14.4g\n", l.Level, l.Nodes, l.Entries, l.Area, l.Overlap)
	}
	if err := tree.Check(ct); err != nil {
		fmt.Println("CHECK FAILED:", err)
	} else {
		fmt.Println("check: consistent")
	}
	if *dump {
		out, err := tree.Dump(ct)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "grtinspect:", err)
	os.Exit(1)
}
