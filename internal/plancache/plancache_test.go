package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func counters() (Stats, *int, *int, *int) {
	var hits, misses, invals int
	var mu sync.Mutex
	st := Stats{
		Hit:        func() { mu.Lock(); hits++; mu.Unlock() },
		Miss:       func() { mu.Lock(); misses++; mu.Unlock() },
		Invalidate: func() { mu.Lock(); invals++; mu.Unlock() },
	}
	return st, &hits, &misses, &invals
}

func TestHitMiss(t *testing.T) {
	st, hits, misses, _ := counters()
	c := New(4, st)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("k", 1, "plan")
	v, ok := c.Get("k", 1)
	if !ok || v.(string) != "plan" {
		t.Fatalf("want hit with plan, got %v %v", v, ok)
	}
	if *hits != 1 || *misses != 1 {
		t.Fatalf("hits=%d misses=%d", *hits, *misses)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	st, _, misses, invals := counters()
	c := New(4, st)
	c.Put("k", 1, "old")
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("stale-generation entry must not hit")
	}
	if *invals != 1 || *misses != 1 {
		t.Fatalf("invals=%d misses=%d", *invals, *misses)
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted, len=%d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, Stats{})
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	c.Get("a", 1) // a is now most recent
	c.Put("c", 1, 3)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, ok := c.Get("a", 1); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok := c.Get("c", 1); !ok {
		t.Fatal("new entry c missing")
	}
}

func TestInvalidateSweep(t *testing.T) {
	st, _, _, invals := counters()
	c := New(8, st)
	c.Put("a", 1, 1)
	c.Put("b", 2, 2)
	c.Put("c", 2, 3)
	c.Invalidate(2)
	if c.Len() != 2 {
		t.Fatalf("want 2 surviving entries, got %d", c.Len())
	}
	if *invals != 1 {
		t.Fatalf("invals=%d", *invals)
	}
}

func TestPutReplace(t *testing.T) {
	c := New(2, Stats{})
	c.Put("k", 1, "one")
	c.Put("k", 2, "two")
	if c.Len() != 1 {
		t.Fatalf("replace grew the cache: len=%d", c.Len())
	}
	v, ok := c.Get("k", 2)
	if !ok || v.(string) != "two" {
		t.Fatalf("want replaced value, got %v %v", v, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	st, _, _, _ := counters()
	c := New(32, st)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%64)
				if i%3 == 0 {
					c.Put(key, uint64(i%5), i)
				} else {
					c.Get(key, uint64(i%5))
				}
				if i%100 == 0 {
					c.Invalidate(uint64(i % 5))
				}
			}
		}(g)
	}
	wg.Wait()
}
