// Package plancache implements the engine-wide shared plan cache: a
// bounded, mutex-guarded LRU keyed by normalized SQL text, with every
// entry stamped by the catalog generation that planned it. DDL bumps the
// generation; a Get that finds an entry from an older generation evicts it
// and reports a miss (counted as an invalidation), so no statement can
// ever run a plan that references a dropped or rebuilt index.
package plancache

import (
	"container/list"
	"sync"
)

// Stats receives cache traffic. The engine passes obs counters; tests can
// pass nil functions.
type Stats struct {
	Hit        func()
	Miss       func()
	Invalidate func()
}

type entry struct {
	key string
	gen uint64
	val any
}

// Cache is a bounded LRU of planned statements.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats
}

// DefaultCap is the cache capacity when the caller passes cap <= 0.
const DefaultCap = 256

// New builds a cache holding at most cap entries.
func New(cap int, stats Stats) *Cache {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Cache{
		cap:   cap,
		ll:    list.New(),
		items: make(map[string]*list.Element, cap),
		stats: stats,
	}
}

// Get returns the cached value for key if present and planned at the
// current catalog generation. A stale entry is evicted and counted as an
// invalidation (plus the miss the caller is about to repair).
func (c *Cache) Get(key string, gen uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.count(c.stats.Miss)
		return nil, false
	}
	en := el.Value.(*entry)
	if en.gen != gen {
		c.ll.Remove(el)
		delete(c.items, key)
		c.count(c.stats.Invalidate)
		c.count(c.stats.Miss)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.count(c.stats.Hit)
	return en.val, true
}

// Put stores val under key at generation gen, evicting the least recently
// used entry if the cache is full.
func (c *Cache) Put(key string, gen uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		en := el.Value.(*entry)
		en.gen, en.val = gen, val
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry{key: key, gen: gen, val: val})
	c.items[key] = el
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
	}
}

// Invalidate drops every entry not planned at generation gen. The engine
// calls it opportunistically after DDL so stale plans don't occupy LRU
// slots until their keys are touched again.
func (c *Cache) Invalidate(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		en := el.Value.(*entry)
		if en.gen != gen {
			c.ll.Remove(el)
			delete(c.items, en.key)
			c.count(c.stats.Invalidate)
		}
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) count(f func()) {
	if f != nil {
		f()
	}
}
