// Package server is tinybladed's network front end: a TCP acceptor that
// speaks the wire protocol, one engine.Session per connection, and a
// bounded executor pool that multiplexes any number of connections over a
// fixed number of concurrently executing statements. Sessions are cheap
// (SET state and a tx slot); executors are the scarce resource (scan
// workers, WAL appends), so N connections share K executor slots the way
// Informix multiplexes sessions over its VP pool.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/wire"
)

// Options configures a Server.
type Options struct {
	// MaxExecutors bounds how many statements execute concurrently across
	// all connections (default 8). Further Execs queue on the slot pool.
	MaxExecutors int
	// Banner is the server identification sent in Welcome.
	Banner string
}

// counters are the server's obs counters, registered in the engine's
// registry so SYSPROFILE serves them — over the wire included.
type counters struct {
	accepted  *obs.Counter // connections accepted
	closed    *obs.Counter // connections closed
	refused   *obs.Counter // connections refused (handshake/version)
	stmts     *obs.Counter // statements executed
	errs      *obs.Counter // statements that returned an error frame
	batches   *obs.Counter // row batches sent
	rows      *obs.Counter // rows sent
	slotWaits *obs.Counter // Execs that had to wait for an executor slot
}

// Server owns the acceptor, the connection set, and the executor pool.
type Server struct {
	e     *engine.Engine
	opts  Options
	slots chan struct{}
	c     counters

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // live connection handlers
}

// New builds a server over an open engine.
func New(e *engine.Engine, opts Options) *Server {
	if opts.MaxExecutors <= 0 {
		opts.MaxExecutors = 8
	}
	if opts.Banner == "" {
		opts.Banner = "tinybladed"
	}
	reg := e.Obs()
	return &Server{
		e:     e,
		opts:  opts,
		slots: make(chan struct{}, opts.MaxExecutors),
		conns: make(map[*conn]struct{}),
		c: counters{
			accepted:  reg.Counter("server.conns.accepted"),
			closed:    reg.Counter("server.conns.closed"),
			refused:   reg.Counter("server.conns.refused"),
			stmts:     reg.Counter("server.statements"),
			errs:      reg.Counter("server.errors"),
			batches:   reg.Counter("server.batches.sent"),
			rows:      reg.Counter("server.rows.sent"),
			slotWaits: reg.Counter("server.slot.waits"),
		},
	}
}

// Serve accepts connections on ln until Shutdown closes it (returns nil) or
// the listener fails. Each connection gets its own engine session and
// handler goroutine; statement execution is throttled by the slot pool.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		c := &conn{srv: s, nc: nc, wc: wire.NewConn(nc, s.e.Types())}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.c.accepted.Inc()
		go c.serve()
	}
}

// Shutdown drains the server: stop accepting, close idle connections, let
// in-flight statements finish, and — once ctx expires — cancel whatever is
// still running and close its connections. It returns once every handler
// has exited (the engine itself stays open; the caller owns its Close, and
// with it the final WAL flush).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	for c := range s.conns {
		c.interruptIfIdle()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Grace expired: cancel in-flight statements and yank the connections —
	// pending result writes fail and the handlers unwind.
	s.mu.Lock()
	for c := range s.conns {
		c.hardStop()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// conn is one client connection: its socket, its framing, its session, and
// the in-flight statement's cancel hook.
type conn struct {
	srv   *Server
	nc    net.Conn
	wc    *wire.Conn
	proto uint16 // negotiated protocol version (set by handshake)

	mu        sync.Mutex
	executing bool
	cancel    context.CancelFunc

	// bound holds argument vectors stored by Bind frames, keyed by the
	// lower-cased prepared-statement name. Only the handler goroutine
	// touches it.
	bound map[string][]types.Datum
}

// interruptIfIdle closes the socket when no statement is executing, kicking
// the handler out of its blocking Recv. Called with srv.mu held.
func (c *conn) interruptIfIdle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.executing {
		c.nc.Close()
	}
}

// hardStop cancels the in-flight statement (parallel scan workers watch the
// context) and closes the socket (serial scans may not poll the context,
// but their result writes now fail). Called with srv.mu held.
func (c *conn) hardStop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
	}
	c.nc.Close()
}

// serve runs the connection to completion: handshake, then the
// Exec/results loop.
func (c *conn) serve() {
	sess := c.srv.e.NewSession()
	defer func() {
		sess.Close()
		c.nc.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
		c.srv.c.closed.Inc()
		c.srv.wg.Done()
	}()

	if !c.handshake() {
		return
	}
	for {
		m, err := c.wc.Recv()
		if err != nil {
			return // disconnect (or drain closed the idle socket)
		}
		switch t := m.(type) {
		case *wire.Exec:
			if !c.execute(func(ctx context.Context) bool { return c.runExec(sess, ctx, t.SQL) }) {
				return
			}
		case *wire.Parse:
			if !c.requireV2(m) || !c.parse(sess, t) {
				return
			}
		case *wire.Bind:
			if !c.requireV2(m) || !c.bind(sess, t) {
				return
			}
		case *wire.ExecutePrepared:
			if !c.requireV2(m) {
				return
			}
			if !c.execute(func(ctx context.Context) bool { return c.runPrepared(sess, ctx, t) }) {
				return
			}
		case *wire.CloseStmt:
			if !c.requireV2(m) || !c.closeStmt(sess, t) {
				return
			}
		case *wire.Quit:
			return
		default:
			c.wc.Send(&wire.Error{Code: engine.CodeFeature, Message: fmt.Sprintf("unexpected %T", m)})
			return
		}
	}
}

// handshake validates the Hello and answers Welcome.
func (c *conn) handshake() bool {
	m, err := c.wc.Recv()
	if err != nil {
		c.srv.c.refused.Inc()
		return false
	}
	h, ok := m.(*wire.Hello)
	if !ok || h.Version < 1 || h.Version > wire.Version {
		c.srv.c.refused.Inc()
		c.wc.Send(&wire.Error{
			Code:    engine.CodeFeature,
			Message: fmt.Sprintf("unsupported protocol (server speaks versions 1..%d)", wire.Version),
		})
		return false
	}
	// Speak the client's version. Prepared-statement frames are only
	// advertised — and only accepted — on version 2; a v1 client never sees
	// the Caps word (its decoder ignores the trailing bytes).
	c.proto = h.Version
	w := &wire.Welcome{Version: h.Version, Banner: c.srv.opts.Banner}
	if h.Version >= 2 {
		w.Caps = wire.CapPrepared
	}
	return c.wc.Send(w) == nil
}

// requireV2 rejects prepared-statement frames on a version-1 connection:
// the capability was never advertised there, so receiving one is a protocol
// violation and the connection closes after the Error frame.
func (c *conn) requireV2(m wire.Message) bool {
	if c.proto >= 2 {
		return true
	}
	c.wc.Send(&wire.Error{Code: engine.CodeFeature,
		Message: fmt.Sprintf("%T requires protocol version 2 (connection negotiated %d)", m, c.proto)})
	return false
}

// parse registers a named prepared statement on the session and acks with
// its parameter count.
func (c *conn) parse(sess *engine.Session, t *wire.Parse) bool {
	n, err := sess.Prepare(t.Name, t.SQL)
	if err != nil {
		return c.sendErr(err)
	}
	return c.wc.Send(&wire.Prepared{Name: t.Name, NParams: uint16(n)}) == nil
}

// bind stores an argument vector for later ExecutePrepared{UseBound} frames,
// rejecting unknown names and wrong arity up front.
func (c *conn) bind(sess *engine.Session, t *wire.Bind) bool {
	n, err := sess.PreparedParams(t.Name)
	if err != nil {
		return c.sendErr(err)
	}
	if len(t.Args) != n {
		return c.sendErr(engine.Errf(engine.CodeCardinality,
			"prepared statement %q wants %d argument(s), got %d", t.Name, n, len(t.Args)))
	}
	if c.bound == nil {
		c.bound = make(map[string][]types.Datum)
	}
	c.bound[strings.ToLower(t.Name)] = t.Args
	return c.wc.Send(&wire.Done{Message: fmt.Sprintf("bound %d argument(s)", len(t.Args))}) == nil
}

// closeStmt deallocates a prepared statement and its stored binding.
func (c *conn) closeStmt(sess *engine.Session, t *wire.CloseStmt) bool {
	if err := sess.Deallocate(t.Name); err != nil {
		return c.sendErr(err)
	}
	delete(c.bound, strings.ToLower(t.Name))
	return c.wc.Send(&wire.Done{Message: fmt.Sprintf("deallocated %q", strings.ToLower(t.Name))}) == nil
}

// execute runs one statement payload — an Exec script or an
// ExecutePrepared — under an executor slot and streams its result back. It
// returns false when the connection is no longer usable (send failure, or
// the server is draining).
func (c *conn) execute(run func(ctx context.Context) bool) bool {
	select {
	case c.srv.slots <- struct{}{}:
	default:
		// Pool exhausted: count the wait, then block for a slot.
		c.srv.c.slotWaits.Inc()
		c.srv.slots <- struct{}{}
	}
	defer func() { <-c.srv.slots }()

	ctx, cancel := context.WithCancel(context.Background())
	c.mu.Lock()
	c.executing, c.cancel = true, cancel
	c.mu.Unlock()
	ok := run(ctx)
	c.mu.Lock()
	c.executing, c.cancel = false, nil
	c.mu.Unlock()
	cancel()

	// After an in-flight statement finished during a drain, the connection
	// closes: clients observe the drain as a clean disconnect.
	c.srv.mu.Lock()
	draining := c.srv.draining
	c.srv.mu.Unlock()
	return ok && !draining
}

// runExec parses and runs the payload while the conn is marked
// executing. Scripts run like Session.ExecScript: every statement executes
// until the first error; the last statement's result streams back.
func (c *conn) runExec(sess *engine.Session, ctx context.Context, src string) bool {
	c.srv.c.stmts.Inc()
	stmts, err := c.srv.e.ParseScript(src)
	if err != nil {
		return c.sendErr(err)
	}
	if len(stmts) == 0 {
		return c.sendErr(errors.New("empty statement"))
	}
	for _, st := range stmts[:len(stmts)-1] {
		if _, err := sess.ExecStmtCtx(ctx, st); err != nil {
			return c.sendErr(err)
		}
	}
	str, err := sess.ExecStreamStmtCtx(ctx, stmts[len(stmts)-1])
	if err != nil {
		return c.sendErr(err)
	}
	return c.streamResult(str)
}

// runPrepared executes a prepared statement — the zero-parse hot path. With
// UseBound set the stored Bind vector substitutes for inline args.
func (c *conn) runPrepared(sess *engine.Session, ctx context.Context, t *wire.ExecutePrepared) bool {
	c.srv.c.stmts.Inc()
	args := t.Args
	if t.UseBound {
		args = c.bound[strings.ToLower(t.Name)]
	}
	str, err := sess.ExecutePreparedStream(ctx, t.Name, args)
	if err != nil {
		return c.sendErr(err)
	}
	return c.streamResult(str)
}

// streamResult drains a statement stream to the client as
// Header/RowBatch.../Done.
func (c *conn) streamResult(str *engine.Stream) bool {
	defer str.Close()

	hdr := &wire.Header{Columns: str.Columns()}
	for _, t := range str.ColTypes() {
		hdr.Types = append(hdr.Types, wire.KindOf(t))
	}
	if p := str.Plan(); p != nil {
		hdr.Plan = p.String()
	}
	if c.wc.Send(hdr) != nil {
		return false
	}
	for {
		rows, err := str.Next()
		if err != nil {
			return c.sendErr(err)
		}
		if rows == nil {
			break
		}
		c.srv.c.batches.Inc()
		c.srv.c.rows.Add(uint64(len(rows)))
		if c.wc.Send(&wire.RowBatch{Rows: rows}) != nil {
			return false
		}
	}
	res := str.Result()
	done := &wire.Done{Affected: int64(res.Affected), Message: res.Message}
	if res.Stats != nil {
		done.Profile = res.Stats.String()
	}
	return c.wc.Send(done) == nil
}

// sendErr converts err into an Error frame, preserving the engine's
// SQLSTATE code. The connection survives statement errors.
func (c *conn) sendErr(err error) bool {
	c.srv.c.errs.Inc()
	msg := err.Error()
	var ee *engine.Error
	if errors.As(err, &ee) {
		// Send the bare message: the client rebuilds engine.Error (whose
		// Error() re-adds the "engine: " prefix) from code + message.
		msg = ee.Msg
	}
	return c.wc.Send(&wire.Error{Code: engine.ErrorCode(err), Message: msg}) == nil
}
