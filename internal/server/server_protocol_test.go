package server

import (
	"net"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wire"
)

// rawDial opens a wire-level connection without the client library, so
// tests can impersonate peers speaking other protocol revisions.
func rawDial(t *testing.T, h *harness) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return wire.NewConn(nc, h.e.Types())
}

func recvMsg(t *testing.T, wc *wire.Conn) wire.Message {
	t.Helper()
	m, err := wc.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return m
}

// A version-1 client still gets full service from the upgraded server: the
// handshake succeeds at version 1 with no capabilities, and plain Exec
// round-trips exactly as before the protocol bump.
func TestServerAcceptsV1Client(t *testing.T) {
	h := startServer(t, Options{})
	wc := rawDial(t, h)

	if err := wc.Send(&wire.Hello{Version: 1, Banner: "old client"}); err != nil {
		t.Fatal(err)
	}
	w, ok := recvMsg(t, wc).(*wire.Welcome)
	if !ok {
		t.Fatalf("handshake reply: %T", w)
	}
	if w.Version != 1 || w.Caps != 0 {
		t.Fatalf("v1 Welcome: version=%d caps=%#x", w.Version, w.Caps)
	}

	if err := wc.Send(&wire.Exec{SQL: `CREATE TABLE v1t (id INTEGER); INSERT INTO v1t VALUES (7); SELECT id FROM v1t`}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, wc).(*wire.Header); !ok {
		t.Fatal("no Header for v1 Exec")
	}
	rows := 0
	for {
		switch m := recvMsg(t, wc).(type) {
		case *wire.RowBatch:
			rows += len(m.Rows)
		case *wire.Done:
			if rows != 1 {
				t.Fatalf("v1 Exec rows: %d", rows)
			}
			return
		case *wire.Error:
			t.Fatalf("v1 Exec error: %s %s", m.Code, m.Message)
		}
	}
}

// Prepared-statement frames on a version-1 connection are a protocol
// violation: the capability was never advertised, so the server answers a
// CodeFeature error and closes the connection.
func TestServerRejectsPreparedFramesOnV1(t *testing.T) {
	h := startServer(t, Options{})
	wc := rawDial(t, h)

	if err := wc.Send(&wire.Hello{Version: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, wc).(*wire.Welcome); !ok {
		t.Fatal("handshake failed")
	}
	if err := wc.Send(&wire.Parse{Name: "q", SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	e, ok := recvMsg(t, wc).(*wire.Error)
	if !ok || e.Code != engine.CodeFeature {
		t.Fatalf("Parse on v1 conn: %#v", e)
	}
	if _, err := wc.Recv(); err == nil {
		t.Fatal("connection must close after the protocol violation")
	}
}

// A client from the future is refused with an Error frame naming the range
// the server speaks.
func TestServerRefusesUnknownVersion(t *testing.T) {
	h := startServer(t, Options{})
	wc := rawDial(t, h)

	if err := wc.Send(&wire.Hello{Version: 99}); err != nil {
		t.Fatal(err)
	}
	e, ok := recvMsg(t, wc).(*wire.Error)
	if !ok || e.Code != engine.CodeFeature {
		t.Fatalf("v99 handshake reply: %#v", e)
	}
}

// The full prepared-statement conversation at the frame level: Parse acks
// with the parameter count, Bind stores a vector, ExecutePrepared with
// UseBound substitutes it, CloseStmt drops the statement, and running it
// afterwards reports CodeUndefinedObject — with the connection surviving.
func TestServerPreparedFrameConversation(t *testing.T) {
	h := startServer(t, Options{})
	c := dial(t, h)
	mustExec(t, c, `CREATE TABLE pf (id INTEGER, name VARCHAR(8))`)
	mustExec(t, c, `INSERT INTO pf VALUES (1, 'a'), (2, 'b')`)

	wc := rawDial(t, h)
	if err := wc.Send(&wire.Hello{Version: wire.Version}); err != nil {
		t.Fatal(err)
	}
	w := recvMsg(t, wc).(*wire.Welcome)
	if w.Caps&wire.CapPrepared == 0 {
		t.Fatalf("v2 Welcome caps: %#x", w.Caps)
	}

	if err := wc.Send(&wire.Parse{Name: "byid", SQL: `SELECT name FROM pf WHERE id = $1`}); err != nil {
		t.Fatal(err)
	}
	p, ok := recvMsg(t, wc).(*wire.Prepared)
	if !ok || p.NParams != 1 {
		t.Fatalf("Parse ack: %#v", p)
	}

	if err := wc.Send(&wire.Bind{Name: "byid", Args: []types.Datum{int64(2)}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, wc).(*wire.Done); !ok {
		t.Fatal("Bind not acked with Done")
	}

	if err := wc.Send(&wire.ExecutePrepared{Name: "byid", UseBound: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, wc).(*wire.Header); !ok {
		t.Fatal("no Header for ExecutePrepared")
	}
	var got []types.Datum
loop:
	for {
		switch m := recvMsg(t, wc).(type) {
		case *wire.RowBatch:
			for _, r := range m.Rows {
				got = append(got, r[0])
			}
		case *wire.Done:
			break loop
		case *wire.Error:
			t.Fatalf("ExecutePrepared error: %s %s", m.Code, m.Message)
		}
	}
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("bound execute rows: %#v", got)
	}

	if err := wc.Send(&wire.CloseStmt{Name: "byid"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, wc).(*wire.Done); !ok {
		t.Fatal("CloseStmt not acked with Done")
	}
	if err := wc.Send(&wire.ExecutePrepared{Name: "byid", Args: []types.Datum{int64(1)}}); err != nil {
		t.Fatal(err)
	}
	e, ok := recvMsg(t, wc).(*wire.Error)
	if !ok || e.Code != engine.CodeUndefinedObject {
		t.Fatalf("execute after close: %#v", e)
	}
	// Statement errors don't kill the connection.
	if err := wc.Send(&wire.Exec{SQL: `SELECT count(*) FROM pf`}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, wc).(*wire.Header); !ok {
		t.Fatal("connection dead after prepared-statement error")
	}
}
