package server

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chronon"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/types"
)

// harness boots an in-memory engine and a server on a loopback port,
// returning the dial address and a shutdown func (drain + Serve join).
type harness struct {
	e    *engine.Engine
	srv  *Server
	addr string
	done chan error
}

func startServer(t *testing.T, opts Options) *harness {
	t.Helper()
	e, err := engine.Open(engine.Options{Clock: chronon.NewVirtualClock(chronon.MustParse("9/97"))})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	h := &harness{e: e, srv: New(e, opts), addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { h.done <- h.srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		h.srv.Shutdown(ctx)
		<-h.done
		e.Close()
	})
	return h
}

func (h *harness) shutdown(t *testing.T, grace time.Duration) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := h.srv.Shutdown(ctx)
	if serr := <-h.done; serr != nil {
		t.Fatalf("Serve returned %v after shutdown", serr)
	}
	h.done <- nil // keep the cleanup join non-blocking
	return err
}

func dial(t *testing.T, h *harness) *client.Conn {
	t.Helper()
	c, err := client.Dial(h.addr, h.e.Types())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustExec(t *testing.T, c *client.Conn, src string) *client.Result {
	t.Helper()
	res, err := c.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%s): %v", src, err)
	}
	return res
}

func TestServerRoundTrip(t *testing.T) {
	h := startServer(t, Options{})
	c := dial(t, h)
	if c.Banner() == "" {
		t.Fatal("no banner")
	}
	mustExec(t, c, `CREATE TABLE t (id INTEGER, name VARCHAR(20))`)
	res := mustExec(t, c, `INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b'), (3, NULL)`)
	if res.Affected != 3 {
		t.Fatalf("insert affected %d", res.Affected)
	}
	res = mustExec(t, c, `SELECT id, name FROM t WHERE id >= 2`)
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(2) || res.Rows[1][1] != nil {
		t.Fatalf("select rows: %v", res.Rows)
	}
	if len(res.ColTypes) != 2 || res.ColTypes[0].Kind != types.KInt || res.ColTypes[1].Kind != types.KVarchar {
		t.Fatalf("coltypes: %v", res.ColTypes)
	}
	if res.Profile == "" || !strings.Contains(res.Profile, "returned=2") {
		t.Fatalf("profile: %q", res.Profile)
	}
	if res.Plan == "" {
		t.Fatal("SELECT result carries no plan text")
	}

	// Scripts execute like ExecScript: last statement's result comes back.
	res = mustExec(t, c, `INSERT INTO t (id, name) VALUES (4, 'd'); SELECT count(*) FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(4) {
		t.Fatalf("script result: %v", res.Rows)
	}

	// The server's own counters surface through SYSPROFILE over the wire.
	res = mustExec(t, c, `SELECT name, value FROM SYSPROFILE WHERE name = 'server.conns.accepted'`)
	if len(res.Rows) != 1 || res.Rows[0][1].(int64) < 1 {
		t.Fatalf("SYSPROFILE over the wire: %v", res.Rows)
	}
}

// Streaming: a large result arrives across multiple batches, and the row
// stream matches a materialized Exec.
func TestServerStreamingQuery(t *testing.T) {
	h := startServer(t, Options{})
	c := dial(t, h)
	mustExec(t, c, `CREATE TABLE big (id INTEGER)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big (id) VALUES (0)`)
	for i := 1; i < 1000; i++ {
		fmt.Fprintf(&sb, ", (%d)", i)
	}
	mustExec(t, c, sb.String())

	rows, err := c.Query(`SELECT id FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	// A second statement while rows are open must be refused client-side.
	if _, err := c.Exec(`SELECT count(*) FROM big`); engine.ErrorCode(err) != engine.CodeSessionBusy {
		t.Fatalf("concurrent statement: %v", err)
	}
	n, batches := 0, 0
	for {
		b, err := rows.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		n += len(b)
	}
	if n != 1000 || batches < 2 {
		t.Fatalf("streamed %d rows in %d batches", n, batches)
	}
	// Closed stream: the connection is usable again.
	res := mustExec(t, c, `SELECT count(*) FROM big`)
	if res.Rows[0][0] != int64(1000) {
		t.Fatalf("count after stream: %v", res.Rows)
	}
}

// Eight concurrent clients share a two-slot executor pool; every statement
// completes and the pool records contention.
func TestServerBoundedPool(t *testing.T) {
	h := startServer(t, Options{MaxExecutors: 2})
	setup := dial(t, h)
	mustExec(t, setup, `CREATE TABLE pool (id INTEGER, w VARCHAR(64))`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO pool (id, w) VALUES (0, 'x')`)
	for i := 1; i < 2000; i++ {
		fmt.Fprintf(&sb, ", (%d, 'x')", i)
	}
	mustExec(t, setup, sb.String())

	const clients = 8
	conns := make([]*client.Conn, clients)
	for i := range conns {
		conns[i] = dial(t, h)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			<-start
			for k := 0; k < 5; k++ {
				if _, err := c.Exec(`SELECT count(*) FROM pool`); err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
			}
		}(i, c)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if waits := h.e.Obs().Counter("server.slot.waits").Load(); waits == 0 {
		t.Log("note: 8 clients over 2 slots recorded no slot waits (timing-dependent)")
	}
}

// Each connection carries its own SessionVars: SET on one must not leak to
// another, and SHOW reads the state back over the wire.
func TestServerIndependentSessionState(t *testing.T) {
	h := startServer(t, Options{})
	levels := []string{"DIRTY READ", "COMMITTED READ", "REPEATABLE READ", "SNAPSHOT"}
	conns := make([]*client.Conn, 8)
	for i := range conns {
		conns[i] = dial(t, h)
		mustExec(t, conns[i], fmt.Sprintf(`SET ISOLATION TO %s`, levels[i%len(levels)]))
		mustExec(t, conns[i], fmt.Sprintf(`SET PARALLEL %d`, i%2))
	}
	for i, c := range conns {
		res := mustExec(t, c, `SHOW ISOLATION`)
		if got := res.Rows[0][1]; got != levels[i%len(levels)] {
			t.Fatalf("conn %d: isolation %v, want %s", i, got, levels[i%len(levels)])
		}
		res = mustExec(t, c, `SHOW PARALLEL`)
		if got := res.Rows[0][1]; got != fmt.Sprintf("%d", i%2) {
			t.Fatalf("conn %d: parallel %v", i, got)
		}
	}
}

// Graceful drain: idle connections close, Serve returns nil, and no
// goroutine outlives the server.
func TestServerGracefulDrain(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	h := startServer(t, Options{})
	conns := make([]*client.Conn, 4)
	for i := range conns {
		conns[i] = dial(t, h)
		mustExec(t, conns[i], `SELECT name FROM SYSPROFILE WHERE name = 'wal.appends'`)
	}
	if err := h.shutdown(t, 5*time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Drained clients observe a clean disconnect on their next statement.
	if _, err := conns[0].Exec(`SELECT name FROM SYSPROFILE`); err == nil {
		t.Fatal("statement after drain must fail")
	}
	if err := h.e.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// Drain with a stuck statement: a client that never reads its result blocks
// the server in a socket write; the grace period expires and hardStop
// unwinds the handler anyway.
func TestServerDrainCancelsStuck(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	h := startServer(t, Options{})
	setup := dial(t, h)
	mustExec(t, setup, `CREATE TABLE wide (id INTEGER, pad VARCHAR(2000))`)
	pad := strings.Repeat("p", 1800)
	for chunk := 0; chunk < 4; chunk++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, `INSERT INTO wide (id, pad) VALUES (0, '%s')`, pad)
		for i := 1; i < 500; i++ {
			fmt.Fprintf(&sb, ", (%d, '%s')", i, pad)
		}
		mustExec(t, setup, sb.String())
	}
	setup.Close()

	// Raw connection that Execs a ~3.6MB result and never reads it: the
	// server fills the socket buffers and blocks mid-statement.
	stuck := dial(t, h)
	if _, err := stuck.Query(`SELECT id, pad FROM wide`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the server hit the full buffer

	err := h.shutdown(t, 500*time.Millisecond)
	if err == nil {
		t.Log("note: stuck statement finished within grace (large socket buffers)")
	} else if err != context.DeadlineExceeded {
		t.Fatalf("shutdown: %v", err)
	}
	if err := h.e.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// Concurrent mixed workload under -race: one table per client, interleaved
// DDL-free traffic across more connections than executor slots.
func TestServerConcurrentStress(t *testing.T) {
	h := startServer(t, Options{MaxExecutors: 4})
	setup := dial(t, h)
	const clients = 8
	for i := 0; i < clients; i++ {
		mustExec(t, setup, fmt.Sprintf(`CREATE TABLE s%d (id INTEGER, v VARCHAR(16))`, i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(h.addr, h.e.Types())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			tbl := fmt.Sprintf("s%d", i)
			if _, err := c.Exec(fmt.Sprintf(`SET COMMIT %s`, []string{"SYNC", "GROUP", "ASYNC"}[i%3])); err != nil {
				errs <- err
				return
			}
			for k := 0; k < 30; k++ {
				if _, err := c.Exec(fmt.Sprintf(`INSERT INTO %s (id, v) VALUES (%d, 'v%d')`, tbl, k, k)); err != nil {
					errs <- fmt.Errorf("client %d insert %d: %w", i, k, err)
					return
				}
				if k%5 == 0 {
					res, err := c.Exec(fmt.Sprintf(`SELECT count(*) FROM %s`, tbl))
					if err != nil {
						errs <- fmt.Errorf("client %d count: %w", i, err)
						return
					}
					if got := res.Rows[0][0].(int64); got != int64(k+1) {
						errs <- fmt.Errorf("client %d: count %d after %d inserts", i, got, k+1)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, setup, `SELECT count(*) FROM s0`)
	if res.Rows[0][0] != int64(30) {
		t.Fatalf("final count: %v", res.Rows)
	}
}

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
