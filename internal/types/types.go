// Package types implements the engine's type system: the built-in SQL types
// and the opaque (user-defined) data types of Step 1 of the paper's
// DataBlade recipe, each with its type support functions — text input/output,
// binary send/receive, and text-file import/export (Section 6.3) — plus the
// row codec heap tables store tuples with.
package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/chronon"
)

// Kind classifies a type.
type Kind int

const (
	// KInt is a 64-bit integer (SQL INTEGER).
	KInt Kind = iota + 1
	// KFloat is a 64-bit float (SQL FLOAT).
	KFloat
	// KVarchar is a variable-length string (SQL VARCHAR / TEXT).
	KVarchar
	// KBool is SQL BOOLEAN.
	KBool
	// KDate is a day-granularity date (SQL DATE), a chronon.Instant.
	KDate
	// KOpaque is a user-defined opaque type interpreted only by its support
	// functions.
	KOpaque
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "INTEGER"
	case KFloat:
		return "FLOAT"
	case KVarchar:
		return "VARCHAR"
	case KBool:
		return "BOOLEAN"
	case KDate:
		return "DATE"
	case KOpaque:
		return "OPAQUE"
	}
	return "?"
}

// Type describes a column or argument type.
type Type struct {
	Kind     Kind
	Name     string // canonical name; for opaque types the registered name
	OpaqueID uint32 // for KOpaque
}

// Builtin returns the built-in type of the given kind.
func Builtin(k Kind) Type { return Type{Kind: k, Name: k.String()} }

func (t Type) String() string { return t.Name }

// Equal reports type identity.
func (t Type) Equal(o Type) bool {
	return t.Kind == o.Kind && (t.Kind != KOpaque || t.OpaqueID == o.OpaqueID)
}

// Datum is a runtime value: nil, int64, float64, string, bool,
// chronon.Instant, or Opaque.
type Datum any

// Opaque is a value of a user-defined opaque type: raw bytes interpreted by
// the type's support functions only — the DBMS does not look inside
// (Section 5.1).
type Opaque struct {
	TypeID uint32
	Data   []byte
}

// SupportFuncs are the type support functions of Section 6.3.
type SupportFuncs struct {
	// Input converts the textual representation (used in SQL statements)
	// to the internal structure.
	Input func(text string) ([]byte, error)
	// Output converts the internal structure to text (used in results).
	Output func(data []byte) (string, error)
	// Send converts the internal structure to the client/server wire form.
	Send func(data []byte) ([]byte, error)
	// Receive converts the wire form back to the internal structure.
	Receive func(wire []byte) ([]byte, error)
	// Import converts one LOAD-file field to the internal structure.
	Import func(text string) ([]byte, error)
	// Export converts the internal structure to a LOAD-file field.
	Export func(data []byte) (string, error)
	// Compare orders two internal structures (-1, 0, +1). Optional: types
	// whose byte encoding does not sort the way the value does (signed
	// fields under a big-endian codec, say) register one so MIN/MAX and
	// other value-ordered operations agree with the type's semantics;
	// without it opaque values compare bytewise.
	Compare func(a, b []byte) (int, error)
}

// OpaqueType is a registered user-defined type.
type OpaqueType struct {
	ID      uint32
	Name    string
	Support SupportFuncs
}

// Registry holds the known opaque types. The engine owns one.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*OpaqueType
	byID   map[uint32]*OpaqueType
	nextID uint32
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*OpaqueType), byID: make(map[uint32]*OpaqueType), nextID: 1}
}

// RegisterOpaque registers a new opaque type (CREATE OPAQUE TYPE). The
// Input and Output support functions are mandatory; missing send/receive
// and import/export functions default to the internal representation and
// the text representation respectively.
func (r *Registry) RegisterOpaque(name string, sf SupportFuncs) (*OpaqueType, error) {
	if sf.Input == nil || sf.Output == nil {
		return nil, fmt.Errorf("types: opaque type %s needs input and output support functions", name)
	}
	key := strings.ToUpper(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[key]; dup {
		return nil, fmt.Errorf("types: opaque type %s already exists", name)
	}
	if sf.Send == nil {
		sf.Send = func(d []byte) ([]byte, error) { return d, nil }
	}
	if sf.Receive == nil {
		sf.Receive = func(w []byte) ([]byte, error) { return w, nil }
	}
	if sf.Import == nil {
		sf.Import = sf.Input
	}
	if sf.Export == nil {
		sf.Export = sf.Output
	}
	ot := &OpaqueType{ID: r.nextID, Name: name, Support: sf}
	r.nextID++
	r.byName[key] = ot
	r.byID[ot.ID] = ot
	return ot, nil
}

// Lookup finds an opaque type by name (case-insensitive).
func (r *Registry) Lookup(name string) (*OpaqueType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ot, ok := r.byName[strings.ToUpper(name)]
	return ot, ok
}

// LookupID finds an opaque type by id.
func (r *Registry) LookupID(id uint32) (*OpaqueType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ot, ok := r.byID[id]
	return ot, ok
}

// TypeByName resolves a type name: built-ins first, then opaque types.
// VARCHAR(n) collapses to VARCHAR.
func (r *Registry) TypeByName(name string) (Type, error) {
	base := strings.ToUpper(strings.TrimSpace(name))
	if i := strings.IndexByte(base, '('); i >= 0 {
		base = base[:i]
	}
	switch base {
	case "INT", "INTEGER", "SMALLINT", "BIGINT":
		return Builtin(KInt), nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL":
		return Builtin(KFloat), nil
	case "VARCHAR", "CHAR", "TEXT", "LVARCHAR":
		return Builtin(KVarchar), nil
	case "BOOLEAN", "BOOL":
		return Builtin(KBool), nil
	case "DATE", "DATETIME":
		return Builtin(KDate), nil
	case "POINTER":
		// CREATE FUNCTION grt_open(pointer) — the VII descriptor type.
		return Builtin(KInt), nil
	}
	if ot, ok := r.Lookup(base); ok {
		return Type{Kind: KOpaque, Name: ot.Name, OpaqueID: ot.ID}, nil
	}
	return Type{}, fmt.Errorf("types: unknown type %q", name)
}

// ParseLiteral converts a textual literal to a datum of the target type,
// applying the opaque type's Input support function where needed.
func (r *Registry) ParseLiteral(text string, target Type) (Datum, error) {
	switch target.Kind {
	case KInt:
		v, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("types: bad integer %q", text)
		}
		return v, nil
	case KFloat:
		v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return nil, fmt.Errorf("types: bad float %q", text)
		}
		return v, nil
	case KVarchar:
		return text, nil
	case KBool:
		switch strings.ToUpper(strings.TrimSpace(text)) {
		case "T", "TRUE", "1":
			return true, nil
		case "F", "FALSE", "0":
			return false, nil
		}
		return nil, fmt.Errorf("types: bad boolean %q", text)
	case KDate:
		return chronon.Parse(text)
	case KOpaque:
		ot, ok := r.LookupID(target.OpaqueID)
		if !ok {
			return nil, fmt.Errorf("types: unregistered opaque type id %d", target.OpaqueID)
		}
		data, err := ot.Support.Input(text)
		if err != nil {
			return nil, err
		}
		return Opaque{TypeID: ot.ID, Data: data}, nil
	}
	return nil, fmt.Errorf("types: cannot parse literal for %v", target)
}

// ImportLiteral converts one LOAD-file field to a datum of the target type,
// using the opaque type's Import support function (Section 6.3's text-file
// import). An empty field is NULL.
func (r *Registry) ImportLiteral(text string, target Type) (Datum, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	if target.Kind != KOpaque {
		return r.ParseLiteral(text, target)
	}
	ot, ok := r.LookupID(target.OpaqueID)
	if !ok {
		return nil, fmt.Errorf("types: unregistered opaque type id %d", target.OpaqueID)
	}
	data, err := ot.Support.Import(text)
	if err != nil {
		return nil, err
	}
	return Opaque{TypeID: ot.ID, Data: data}, nil
}

// CompareDatums orders two datums, preferring a registered opaque Compare
// support function over the package-level bytewise fallback. The server's
// tuple-drain MIN/MAX uses this so its ordering matches the blade's own
// value semantics exactly.
func (r *Registry) CompareDatums(a, b Datum) (int, error) {
	av, aok := a.(Opaque)
	bv, bok := b.(Opaque)
	if aok && bok && av.TypeID == bv.TypeID {
		if ot, ok := r.LookupID(av.TypeID); ok && ot.Support.Compare != nil {
			return ot.Support.Compare(av.Data, bv.Data)
		}
	}
	return Compare(a, b)
}

// Format renders a datum as text, applying the Output support function for
// opaque values.
func (r *Registry) Format(d Datum) (string, error) {
	switch v := d.(type) {
	case nil:
		return "NULL", nil
	case int64:
		return strconv.FormatInt(v, 10), nil
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	case string:
		return v, nil
	case bool:
		if v {
			return "t", nil
		}
		return "f", nil
	case chronon.Instant:
		return v.String(), nil
	case Opaque:
		ot, ok := r.LookupID(v.TypeID)
		if !ok {
			return "", fmt.Errorf("types: unregistered opaque type id %d", v.TypeID)
		}
		return ot.Support.Output(v.Data)
	}
	return "", fmt.Errorf("types: unformattable datum %T", d)
}

// DatumType infers a datum's type (literals without context).
func DatumType(d Datum) (Type, error) {
	switch d.(type) {
	case int64:
		return Builtin(KInt), nil
	case float64:
		return Builtin(KFloat), nil
	case string:
		return Builtin(KVarchar), nil
	case bool:
		return Builtin(KBool), nil
	case chronon.Instant:
		return Builtin(KDate), nil
	case Opaque:
		return Type{Kind: KOpaque, OpaqueID: d.(Opaque).TypeID, Name: "OPAQUE"}, nil
	}
	return Type{}, errors.New("types: untyped datum")
}

// row codec ---------------------------------------------------------------

// EncodeRow serialises a row per the schema: a null bitmap followed by the
// non-null values.
func EncodeRow(schema []Type, row []Datum) ([]byte, error) {
	if len(schema) != len(row) {
		return nil, fmt.Errorf("types: row arity %d != schema arity %d", len(row), len(schema))
	}
	nulls := make([]byte, (len(row)+7)/8)
	out := []byte{byte(len(row))}
	out = append(out, nulls...)
	for i, d := range row {
		if d == nil {
			out[1+i/8] |= 1 << (i % 8)
			continue
		}
		var err error
		out, err = appendDatum(out, schema[i], d)
		if err != nil {
			return nil, fmt.Errorf("types: column %d: %w", i, err)
		}
	}
	return out, nil
}

func appendDatum(out []byte, t Type, d Datum) ([]byte, error) {
	switch t.Kind {
	case KInt:
		v, ok := d.(int64)
		if !ok {
			return nil, fmt.Errorf("want int64, got %T", d)
		}
		return binary.BigEndian.AppendUint64(out, uint64(v)), nil
	case KFloat:
		v, ok := d.(float64)
		if !ok {
			return nil, fmt.Errorf("want float64, got %T", d)
		}
		return binary.BigEndian.AppendUint64(out, math.Float64bits(v)), nil
	case KVarchar:
		v, ok := d.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", d)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(v)))
		return append(out, v...), nil
	case KBool:
		v, ok := d.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", d)
		}
		if v {
			return append(out, 1), nil
		}
		return append(out, 0), nil
	case KDate:
		v, ok := d.(chronon.Instant)
		if !ok {
			return nil, fmt.Errorf("want instant, got %T", d)
		}
		return binary.BigEndian.AppendUint64(out, uint64(v)), nil
	case KOpaque:
		v, ok := d.(Opaque)
		if !ok {
			return nil, fmt.Errorf("want opaque, got %T", d)
		}
		if v.TypeID != t.OpaqueID {
			return nil, fmt.Errorf("opaque type mismatch: value %d, column %d", v.TypeID, t.OpaqueID)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(v.Data)))
		return append(out, v.Data...), nil
	}
	return nil, fmt.Errorf("unencodable kind %v", t.Kind)
}

// DecodeRow deserialises a row encoded by EncodeRow.
func DecodeRow(schema []Type, data []byte) ([]Datum, error) {
	if len(data) < 1 {
		return nil, errors.New("types: truncated row")
	}
	n := int(data[0])
	if n != len(schema) {
		return nil, fmt.Errorf("types: row arity %d != schema arity %d", n, len(schema))
	}
	nulls := data[1 : 1+(n+7)/8]
	pos := 1 + (n+7)/8
	row := make([]Datum, n)
	for i := 0; i < n; i++ {
		if nulls[i/8]&(1<<(i%8)) != 0 {
			row[i] = nil
			continue
		}
		var err error
		row[i], pos, err = readDatum(schema[i], data, pos)
		if err != nil {
			return nil, fmt.Errorf("types: column %d: %w", i, err)
		}
	}
	return row, nil
}

func readDatum(t Type, data []byte, pos int) (Datum, int, error) {
	need := func(k int) error {
		if pos+k > len(data) {
			return errors.New("truncated value")
		}
		return nil
	}
	switch t.Kind {
	case KInt:
		if err := need(8); err != nil {
			return nil, pos, err
		}
		return int64(binary.BigEndian.Uint64(data[pos:])), pos + 8, nil
	case KFloat:
		if err := need(8); err != nil {
			return nil, pos, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(data[pos:])), pos + 8, nil
	case KVarchar:
		if err := need(4); err != nil {
			return nil, pos, err
		}
		l := int(binary.BigEndian.Uint32(data[pos:]))
		pos += 4
		if err := need(l); err != nil {
			return nil, pos, err
		}
		return string(data[pos : pos+l]), pos + l, nil
	case KBool:
		if err := need(1); err != nil {
			return nil, pos, err
		}
		return data[pos] != 0, pos + 1, nil
	case KDate:
		if err := need(8); err != nil {
			return nil, pos, err
		}
		return chronon.Instant(binary.BigEndian.Uint64(data[pos:])), pos + 8, nil
	case KOpaque:
		if err := need(4); err != nil {
			return nil, pos, err
		}
		l := int(binary.BigEndian.Uint32(data[pos:]))
		pos += 4
		if err := need(l); err != nil {
			return nil, pos, err
		}
		return Opaque{TypeID: t.OpaqueID, Data: append([]byte(nil), data[pos:pos+l]...)}, pos + l, nil
	}
	return nil, pos, fmt.Errorf("undecodable kind %v", t.Kind)
}

// Compare orders two datums of the same type: -1, 0, +1. Opaque values
// compare bytewise unless the caller supplies a UDR-level comparison.
func Compare(a, b Datum) (int, error) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		if !ok {
			if f, okf := b.(float64); okf {
				return cmpFloat(float64(av), f), nil
			}
			return 0, fmt.Errorf("types: comparing int64 with %T", b)
		}
		return cmpInt(av, bv), nil
	case float64:
		switch bv := b.(type) {
		case float64:
			return cmpFloat(av, bv), nil
		case int64:
			return cmpFloat(av, float64(bv)), nil
		}
		return 0, fmt.Errorf("types: comparing float64 with %T", b)
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("types: comparing string with %T", b)
		}
		return strings.Compare(av, bv), nil
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return 0, fmt.Errorf("types: comparing bool with %T", b)
		}
		return cmpBool(av, bv), nil
	case chronon.Instant:
		bv, ok := b.(chronon.Instant)
		if !ok {
			return 0, fmt.Errorf("types: comparing date with %T", b)
		}
		return cmpInt(int64(av), int64(bv)), nil
	case Opaque:
		bv, ok := b.(Opaque)
		if !ok || bv.TypeID != av.TypeID {
			return 0, fmt.Errorf("types: comparing mismatched opaque values")
		}
		return strings.Compare(string(av.Data), string(bv.Data)), nil
	}
	return 0, fmt.Errorf("types: incomparable datum %T", a)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case b:
		return -1
	}
	return 1
}
