package types

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/chronon"
)

func demoOpaque(t *testing.T, r *Registry) *OpaqueType {
	t.Helper()
	ot, err := r.RegisterOpaque("Demo_t", SupportFuncs{
		Input: func(s string) ([]byte, error) {
			if !strings.HasPrefix(s, "demo:") {
				return nil, fmt.Errorf("bad demo literal %q", s)
			}
			return []byte(s[5:]), nil
		},
		Output: func(d []byte) (string, error) { return "demo:" + string(d), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return ot
}

func TestRegistryOpaque(t *testing.T) {
	r := NewRegistry()
	ot := demoOpaque(t, r)
	if _, err := r.RegisterOpaque("demo_T", SupportFuncs{
		Input:  func(string) ([]byte, error) { return nil, nil },
		Output: func([]byte) (string, error) { return "", nil },
	}); err == nil {
		t.Fatal("duplicate (case-insensitive) registration must fail")
	}
	if _, err := r.RegisterOpaque("NoSupport", SupportFuncs{}); err == nil {
		t.Fatal("registration without input/output must fail")
	}
	got, ok := r.Lookup("DEMO_T")
	if !ok || got.ID != ot.ID {
		t.Fatal("lookup")
	}
	if _, ok := r.LookupID(999); ok {
		t.Fatal("phantom id")
	}
	// Defaults: send/receive and import/export are filled in.
	w, err := ot.Support.Send([]byte("x"))
	if err != nil || string(w) != "x" {
		t.Fatal("default send")
	}
	b, err := ot.Support.Receive([]byte("y"))
	if err != nil || string(b) != "y" {
		t.Fatal("default receive")
	}
	if d, err := ot.Support.Import("demo:z"); err != nil || string(d) != "z" {
		t.Fatal("default import")
	}
	if s, err := ot.Support.Export([]byte("q")); err != nil || s != "demo:q" {
		t.Fatal("default export")
	}
}

func TestTypeByName(t *testing.T) {
	r := NewRegistry()
	demoOpaque(t, r)
	cases := map[string]Kind{
		"integer": KInt, "INT": KInt, "bigint": KInt,
		"float": KFloat, "VARCHAR(32)": KVarchar, "text": KVarchar,
		"boolean": KBool, "date": KDate, "Demo_t": KOpaque, "pointer": KInt,
	}
	for name, kind := range cases {
		ty, err := r.TypeByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ty.Kind != kind {
			t.Fatalf("%s: kind %v, want %v", name, ty.Kind, kind)
		}
	}
	if _, err := r.TypeByName("NoSuchType"); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestParseLiteralAndFormat(t *testing.T) {
	r := NewRegistry()
	ot := demoOpaque(t, r)
	cases := []struct {
		text   string
		ty     Type
		expect Datum
	}{
		{"42", Builtin(KInt), int64(42)},
		{"-7", Builtin(KInt), int64(-7)},
		{"2.5", Builtin(KFloat), 2.5},
		{"hello", Builtin(KVarchar), "hello"},
		{"true", Builtin(KBool), true},
		{"f", Builtin(KBool), false},
		{"1997-09-01", Builtin(KDate), chronon.FromDate(1997, 9, 1)},
		{"demo:abc", Type{Kind: KOpaque, Name: "Demo_t", OpaqueID: ot.ID}, Opaque{TypeID: ot.ID, Data: []byte("abc")}},
	}
	for _, c := range cases {
		got, err := r.ParseLiteral(c.text, c.ty)
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		switch want := c.expect.(type) {
		case Opaque:
			g := got.(Opaque)
			if g.TypeID != want.TypeID || string(g.Data) != string(want.Data) {
				t.Fatalf("%q: %v", c.text, got)
			}
		default:
			if got != c.expect {
				t.Fatalf("%q: got %v want %v", c.text, got, c.expect)
			}
		}
	}
	for _, bad := range []struct {
		text string
		ty   Type
	}{
		{"xyz", Builtin(KInt)},
		{"xyz", Builtin(KFloat)},
		{"maybe", Builtin(KBool)},
		{"13/13/13", Builtin(KDate)},
		{"notdemo", Type{Kind: KOpaque, OpaqueID: ot.ID}},
		{"x", Type{Kind: KOpaque, OpaqueID: 999}},
	} {
		if _, err := r.ParseLiteral(bad.text, bad.ty); err == nil {
			t.Fatalf("%q as %v must fail", bad.text, bad.ty)
		}
	}
	// Format round trips.
	for _, d := range []Datum{int64(5), 2.5, "s", true, false, chronon.FromDate(2000, 1, 2), nil} {
		if _, err := r.Format(d); err != nil {
			t.Fatalf("format %v: %v", d, err)
		}
	}
	s, err := r.Format(Opaque{TypeID: ot.ID, Data: []byte("xyz")})
	if err != nil || s != "demo:xyz" {
		t.Fatalf("opaque format: %q %v", s, err)
	}
	if _, err := r.Format(Opaque{TypeID: 999}); err == nil {
		t.Fatal("format of unregistered opaque must fail")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	r := NewRegistry()
	ot := demoOpaque(t, r)
	schema := []Type{
		Builtin(KInt), Builtin(KFloat), Builtin(KVarchar), Builtin(KBool),
		Builtin(KDate), {Kind: KOpaque, OpaqueID: ot.ID, Name: ot.Name},
	}
	row := []Datum{int64(-3), 1.25, "héllo, wörld", true,
		chronon.FromDate(1997, 3, 1), Opaque{TypeID: ot.ID, Data: []byte{0, 1, 2, 255}}}
	enc, err := EncodeRow(schema, row)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRow(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		switch want := row[i].(type) {
		case Opaque:
			g := dec[i].(Opaque)
			if g.TypeID != want.TypeID || string(g.Data) != string(want.Data) {
				t.Fatalf("column %d: %v", i, dec[i])
			}
		default:
			if dec[i] != row[i] {
				t.Fatalf("column %d: got %v want %v", i, dec[i], row[i])
			}
		}
	}
}

func TestRowCodecNulls(t *testing.T) {
	schema := []Type{Builtin(KInt), Builtin(KVarchar), Builtin(KBool)}
	row := []Datum{nil, "x", nil}
	enc, err := EncodeRow(schema, row)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRow(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != nil || dec[1] != "x" || dec[2] != nil {
		t.Fatalf("nulls: %v", dec)
	}
}

func TestRowCodecErrors(t *testing.T) {
	schema := []Type{Builtin(KInt)}
	if _, err := EncodeRow(schema, []Datum{int64(1), int64(2)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := EncodeRow(schema, []Datum{"not an int"}); err == nil {
		t.Fatal("type mismatch must fail")
	}
	if _, err := DecodeRow(schema, nil); err == nil {
		t.Fatal("empty row must fail")
	}
	enc, _ := EncodeRow(schema, []Datum{int64(1)})
	if _, err := DecodeRow(schema, enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated row must fail")
	}
	if _, err := DecodeRow([]Type{Builtin(KInt), Builtin(KInt)}, enc); err == nil {
		t.Fatal("schema mismatch must fail")
	}
	// Opaque column mismatch.
	opSchema := []Type{{Kind: KOpaque, OpaqueID: 1}}
	if _, err := EncodeRow(opSchema, []Datum{Opaque{TypeID: 2}}); err == nil {
		t.Fatal("opaque id mismatch must fail")
	}
}

func TestRowCodecPropertyInts(t *testing.T) {
	schema := []Type{Builtin(KInt), Builtin(KVarchar)}
	f := func(v int64, s string) bool {
		enc, err := EncodeRow(schema, []Datum{v, s})
		if err != nil {
			return false
		}
		dec, err := DecodeRow(schema, enc)
		if err != nil {
			return false
		}
		return dec[0] == v && dec[1] == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{1.5, 2.5, -1},
		{int64(2), 1.5, 1},
		{1.5, int64(2), -1},
		{"a", "b", -1},
		{false, true, -1},
		{true, true, 0},
		{chronon.Instant(1), chronon.Instant(5), -1},
		{Opaque{TypeID: 1, Data: []byte("a")}, Opaque{TypeID: 1, Data: []byte("b")}, -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("%v vs %v: %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Fatalf("%v vs %v: %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare("a", int64(1)); err == nil {
		t.Fatal("cross-type compare must fail")
	}
	if _, err := Compare(Opaque{TypeID: 1}, Opaque{TypeID: 2}); err == nil {
		t.Fatal("cross-opaque compare must fail")
	}
}

func TestDatumType(t *testing.T) {
	for _, d := range []Datum{int64(1), 1.0, "s", true, chronon.Instant(0), Opaque{TypeID: 3}} {
		if _, err := DatumType(d); err != nil {
			t.Fatalf("%T: %v", d, err)
		}
	}
	if _, err := DatumType(struct{}{}); err == nil {
		t.Fatal("unknown datum type must fail")
	}
	for _, k := range []Kind{KInt, KFloat, KVarchar, KBool, KDate, KOpaque, Kind(0)} {
		_ = k.String()
	}
	if !Builtin(KInt).Equal(Builtin(KInt)) || Builtin(KInt).Equal(Builtin(KFloat)) {
		t.Fatal("type equality")
	}
}
