package grtblade

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

// Prepared-vs-unprepared agreement over the full qualification matrix: every
// strategy function, both argument orders, AND with a residual predicate,
// and OR of two strategies. Each prepared statement executes twice — the
// second execution runs off the shared plan cache — and every answer must
// match the literal ad-hoc SELECT.
func TestPreparedAgreementQualMatrix(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	cases := []struct {
		name string
		prep string   // statement with $n placeholders
		lit  string   // same statement with %s substitution slots
		args []string // extent / varchar literals
	}{
		{"overlaps", `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, $1)`,
			`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '%s')`,
			[]string{`6/97, 7/97, 6/97, 7/97`}},
		{"overlaps-broad", `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, $1)`,
			`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '%s')`,
			[]string{`12/10/95, UC, 12/10/95, NOW`}},
		{"contains", `SELECT Name FROM Employees WHERE Contains(Time_Extent, $1)`,
			`SELECT Name FROM Employees WHERE Contains(Time_Extent, '%s')`,
			[]string{`6/97, 6/97, 4/97, 4/97`}},
		{"containedin", `SELECT Name FROM Employees WHERE ContainedIn(Time_Extent, $1)`,
			`SELECT Name FROM Employees WHERE ContainedIn(Time_Extent, '%s')`,
			[]string{`1/97, UC, 1/97, NOW`}},
		{"equal", `SELECT Name FROM Employees WHERE Equal(Time_Extent, $1)`,
			`SELECT Name FROM Employees WHERE Equal(Time_Extent, '%s')`,
			[]string{`3/97, 7/97, 6/97, 8/97`}},
		{"const-first", `SELECT Name FROM Employees WHERE Overlaps($1, Time_Extent)`,
			`SELECT Name FROM Employees WHERE Overlaps('%s', Time_Extent)`,
			[]string{`6/97, 7/97, 6/97, 7/97`}},
		{"contains-const-first", `SELECT Name FROM Employees WHERE Contains($1, Time_Extent)`,
			`SELECT Name FROM Employees WHERE Contains('%s', Time_Extent)`,
			[]string{`1/97, UC, 1/97, NOW`}},
		{"and-residual", `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, $1) AND Department = $2`,
			`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '%s') AND Department = '%s'`,
			[]string{`6/97, 7/97, 6/97, 7/97`, `Sales`}},
		{"or-strategies", `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, $1) OR Equal(Time_Extent, $2)`,
			`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '%s') OR Equal(Time_Extent, '%s')`,
			[]string{`4/97, 4/97, 4/97, 4/97`, `3/97, 7/97, 6/97, 8/97`}},
	}

	for i, tc := range cases {
		stmt := fmt.Sprintf("q%d", i)
		exec(t, s, fmt.Sprintf(`PREPARE %s AS %s`, stmt, tc.prep))
		litArgs := make([]any, len(tc.args))
		dargs := make([]types.Datum, len(tc.args))
		for j, a := range tc.args {
			litArgs[j], dargs[j] = a, a
		}
		want := strings.Join(names(exec(t, s, fmt.Sprintf(tc.lit, litArgs...))), ",")
		for pass := 0; pass < 2; pass++ { // second pass exercises the cached plan
			res, err := s.ExecutePrepared(nil, stmt, dargs)
			if err != nil {
				t.Fatalf("%s pass %d: %v", tc.name, pass, err)
			}
			if got := strings.Join(names(res), ","); got != want {
				t.Fatalf("%s pass %d: prepared %q vs literal %q", tc.name, pass, got, want)
			}
		}
	}
	if e.Obs().Counter("plan_cache.hits").Load() == 0 {
		t.Fatal("the matrix never hit the plan cache")
	}
}
