package grtblade

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

// The am_aggregate purpose slot: COUNT(*), COUNT(col), MIN(col), MAX(col)
// with a residual-free indexable qualification are answered from the
// GR-tree's internal nodes — entry counts and boundary leaves — visiting
// zero tuples. These tests pin the pushdown with counters, prove exact
// agreement with the tuple drain, and exercise the MVCC gate that keeps
// the shortcut honest under concurrent transactions.

const aggQual = `Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`

// drained rewrites a pushdown-eligible aggregate query so the
// qualification gains a residual conjunct (always true) and the engine
// must drain tuples instead — the reference answer for agreement checks.
func drained(q string) string {
	return q + ` AND Name = Name`
}

func TestAggregateCountPushdownZeroTuples(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	q := `SELECT COUNT(*) FROM Employees WHERE ` + aggQual
	want := exec(t, s, drained(q)).Rows[0][0]

	aggCalls := e.Obs().Counter("am.am_aggregate").Load()
	getMulti := e.Obs().Counter("am.am_getmulti").Load()
	getNext := e.Obs().Counter("am.am_getnext").Load()
	pushed := e.Obs().Counter("agg.pushed").Load()

	res := exec(t, s, q)
	if got := res.Rows[0][0]; got != want {
		t.Fatalf("pushed COUNT(*) = %v, drain says %v", got, want)
	}
	if d := e.Obs().Counter("am.am_aggregate").Load() - aggCalls; d != 1 {
		t.Fatalf("am_aggregate called %d times, want 1", d)
	}
	if d := e.Obs().Counter("agg.pushed").Load() - pushed; d != 1 {
		t.Fatalf("agg.pushed advanced by %d, want 1", d)
	}
	// The headline property: the pushed aggregate fetched zero tuples.
	if d := e.Obs().Counter("am.am_getmulti").Load() - getMulti; d != 0 {
		t.Fatalf("pushed COUNT(*) drove %d am_getmulti calls", d)
	}
	if d := e.Obs().Counter("am.am_getnext").Load() - getNext; d != 0 {
		t.Fatalf("pushed COUNT(*) drove %d am_getnext calls", d)
	}
	if res.Stats == nil || res.Stats.RowsScanned != 0 {
		t.Fatalf("pushed COUNT(*) scanned rows: %+v", res.Stats)
	}
}

func TestAggregateAgreementAllKinds(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	for _, item := range []string{"COUNT(*)", "COUNT(Time_Extent)", "MIN(Time_Extent)", "MAX(Time_Extent)"} {
		q := fmt.Sprintf(`SELECT %s FROM Employees WHERE %s`, item, aggQual)
		want := exec(t, s, drained(q)).Rows[0][0]

		pushed := e.Obs().Counter("agg.pushed").Load()
		got := exec(t, s, q).Rows[0][0]
		if e.Obs().Counter("agg.pushed").Load() == pushed {
			t.Fatalf("%s was not pushed down", item)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pushed %#v, drain %#v", item, got, want)
		}
	}
}

// MIN/MAX over an empty qualification result is NULL, and COUNT is zero —
// on both execution shapes.
func TestAggregateEmptyResult(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	// A region fully before every stored extent.
	empty := `Contains('1/80, 2/80, 1/80, 2/80', Time_Extent)`
	for _, item := range []string{"COUNT(*)", "MIN(Time_Extent)", "MAX(Time_Extent)"} {
		q := fmt.Sprintf(`SELECT %s FROM Employees WHERE %s`, item, empty)
		got := exec(t, s, q).Rows[0][0]
		want := exec(t, s, drained(q)).Rows[0][0]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s over empty set: pushed %#v, drain %#v", item, got, want)
		}
		if item == "COUNT(*)" && got != int64(0) {
			t.Fatalf("COUNT(*) over empty set: %v", got)
		}
		if item != "COUNT(*)" && got != nil {
			t.Fatalf("%s over empty set: %v, want NULL", item, got)
		}
	}
}

// The MVCC gate: any concurrent uncommitted transaction forces the tuple
// drain — the gate cannot prove the index's entries all visible, whichever
// table the foreign transaction is touching. Once it resolves, the
// pushdown resumes. (A writer on the aggregated table itself additionally
// holds the index BLOB's LO lock, so that case never even reaches the
// gate; the foreign-table case is the one the gate alone must catch.)
func TestAggregateMVCCGate(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)
	exec(t, s, `CREATE TABLE Other (N INTEGER)`)
	q := `SELECT COUNT(*) FROM Employees WHERE ` + aggQual
	base := exec(t, s, q).Rows[0][0].(int64)

	w := e.NewSession()
	defer w.Close()
	exec(t, w, `BEGIN WORK`)
	exec(t, w, `INSERT INTO Other VALUES (1)`)

	fallback := e.Obs().Counter("agg.fallback").Load()
	aggCalls := e.Obs().Counter("am.am_aggregate").Load()
	if got := exec(t, s, q).Rows[0][0].(int64); got != base {
		t.Fatalf("COUNT(*) under a concurrent open transaction: %d, want %d", got, base)
	}
	if e.Obs().Counter("agg.fallback").Load() == fallback {
		t.Fatal("concurrent transaction did not force the drain fallback")
	}
	if e.Obs().Counter("am.am_aggregate").Load() != aggCalls {
		t.Fatal("am_aggregate ran despite an open concurrent transaction")
	}

	exec(t, w, `COMMIT WORK`)
	pushed := e.Obs().Counter("agg.pushed").Load()
	if got := exec(t, s, q).Rows[0][0].(int64); got != base {
		t.Fatalf("COUNT(*) after commit: %d, want %d", got, base)
	}
	if e.Obs().Counter("agg.pushed").Load() == pushed {
		t.Fatal("pushdown did not resume after the writer committed")
	}
}

// Agreement battery under concurrent DML: within one SNAPSHOT transaction,
// COUNT(*) (pushed or drained, whatever the gate decides) must equal the
// row count a plain SELECT sees — while writers churn. Run with -race this
// also proves the gate's locking.
func TestAggregateConcurrentDMLAgreement(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := e.NewSession()
		defer w.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Exec(fmt.Sprintf(
				`INSERT INTO Employees VALUES ('churn%d', 'Ops', '5/97, UC, 5/97, NOW')`, i)); err != nil {
				errs <- err
				return
			}
			if i%3 == 2 {
				if _, err := w.Exec(fmt.Sprintf(`DELETE FROM Employees WHERE Name = 'churn%d'`, i-1)); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	r := e.NewSession()
	defer r.Close()
	exec(t, r, `SET ISOLATION TO SNAPSHOT`)
	for i := 0; i < 40; i++ {
		exec(t, r, `BEGIN WORK`)
		n := exec(t, r, `SELECT COUNT(*) FROM Employees WHERE `+aggQual).Rows[0][0].(int64)
		rows := exec(t, r, `SELECT Name FROM Employees WHERE `+aggQual).Rows
		exec(t, r, `COMMIT WORK`)
		if int64(len(rows)) != n {
			t.Fatalf("iteration %d: COUNT(*)=%d but SELECT saw %d rows in the same snapshot", i, n, len(rows))
		}
		// The churn's deletes leave dead versions whose lingering index
		// entries keep the gate closed; vacuuming mid-battery reclaims them
		// (racing the writer) and lets the pushdown re-open.
		if i%8 == 7 {
			if _, err := e.VacuumNow(); err != nil {
				t.Fatalf("iteration %d: vacuum: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Prepared aggregates: EXECUTE flows through the same pushdown, including
// on the second execution where the plan comes from the shared cache.
func TestAggregatePreparedExecute(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	exec(t, s, `PREPARE cnt AS SELECT COUNT(*) FROM Employees WHERE Overlaps(Time_Extent, $1)`)
	want := exec(t, s, `SELECT COUNT(*) FROM Employees WHERE `+aggQual+` AND Name = Name`).Rows[0][0]

	for run := 0; run < 2; run++ { // fresh plan, then cached plan
		pushed := e.Obs().Counter("agg.pushed").Load()
		res := exec(t, s, `EXECUTE cnt ('12/10/95, UC, 12/10/95, NOW')`)
		if got := res.Rows[0][0]; got != want {
			t.Fatalf("run %d: EXECUTE count %v, want %v", run, got, want)
		}
		if e.Obs().Counter("agg.pushed").Load() == pushed {
			t.Fatalf("run %d: prepared aggregate was not pushed down", run)
		}
	}
}

// Aggregates that the index cannot answer fall back to the drain and stay
// exact: a residual conjunct, an aggregate over a non-indexed column, and
// a query with no indexable qualification at all.
func TestAggregateFallbackForms(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	for _, tc := range []struct {
		q    string
		want any
	}{
		{`SELECT COUNT(*) FROM Employees WHERE ` + aggQual + ` AND Department = 'Sales'`, int64(3)},
		{`SELECT MIN(Name) FROM Employees`, "Jane"},
		{`SELECT MAX(Name) FROM Employees WHERE Department = 'Sales'`, "Julie2"},
		{`SELECT COUNT(Department) FROM Employees WHERE ` + aggQual, nil}, // checked against drain below
	} {
		fallback := e.Obs().Counter("agg.fallback").Load()
		got := exec(t, s, tc.q).Rows[0][0]
		if e.Obs().Counter("agg.fallback").Load() == fallback {
			t.Fatalf("%s did not take the drain fallback", tc.q)
		}
		if tc.want != nil && got != tc.want {
			t.Fatalf("%s = %v, want %v", tc.q, got, tc.want)
		}
	}

	// COUNT(non-indexed col) with a full indexable qual must not be pushed:
	// the index cannot see that column's NULLs.
	exec(t, s, `INSERT INTO Employees VALUES ('NoDept', NULL, '5/97, UC, 5/97, NOW')`)
	all := exec(t, s, `SELECT COUNT(*) FROM Employees`).Rows[0][0].(int64)
	nonNull := exec(t, s, `SELECT COUNT(Department) FROM Employees`).Rows[0][0].(int64)
	if nonNull != all-1 {
		t.Fatalf("COUNT(Department) = %d with one NULL among %d rows", nonNull, all)
	}
}

// Aggregates cannot be mixed with plain columns, and are refused over
// virtual tables — both with the feature error, not a crash.
func TestAggregateErrors(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	for _, q := range []string{
		`SELECT Name, COUNT(*) FROM Employees`,
		`SELECT MIN(Time_Extent), Name FROM Employees`,
		`SELECT MAX(hits) FROM sysprofile`,
	} {
		_, err := s.Exec(q)
		if engine.ErrorCode(err) != engine.CodeFeature {
			t.Fatalf("%s: %v, want %s", q, err, engine.CodeFeature)
		}
	}
	if _, err := s.Exec(`SELECT SUM(Name) FROM Employees`); err == nil {
		t.Fatal("SUM must be rejected")
	}
	if _, err := s.Exec(`SELECT MIN(nosuch) FROM Employees`); engine.ErrorCode(err) != engine.CodeUndefinedObject {
		t.Fatalf("MIN over unknown column: %v", err)
	}
}

// UPDATE STATISTICS flips a plan purely through refreshed statistics: the
// same broad query chooses the index under the built-in bias, then the
// sequential scan once collected counts prove the heap is cheaper — and
// EXPLAIN names the estimate family both times.
func TestStatisticsPlanFlip(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX tix ON T(X) USING grtree_am (maxentries=16) IN spc`)
	for i := 0; i < 200; i++ {
		m, y := i%12+1, 90+(i/12)%7
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/%d, UC, %d/%d, NOW')`, i, m, y, m, y))
	}
	broad := `EXPLAIN SELECT N FROM T WHERE Overlaps(X, '1/80, UC, 1/80, NOW')`

	before := planText(t, exec(t, s, broad))
	if !strings.Contains(before, "index scan on tix") {
		t.Fatalf("without statistics the bias must choose the index:\n%s", before)
	}
	if !strings.Contains(before, "cost source: default") {
		t.Fatalf("pre-statistics plan must say cost source: default:\n%s", before)
	}

	res := exec(t, s, `UPDATE STATISTICS FOR TABLE T`)
	if !strings.Contains(res.Message, "200 rows") {
		t.Fatalf("UPDATE STATISTICS message: %q", res.Message)
	}

	after := planText(t, exec(t, s, broad))
	if !strings.Contains(after, "sequential heap scan") {
		t.Fatalf("statistics must flip the broad query to a seqscan:\n%s", after)
	}
	if !strings.Contains(after, "cost source: stats(age 0)") {
		t.Fatalf("post-statistics plan must say cost source: stats(age 0):\n%s", after)
	}

	// The flip is purely cost-driven; the answers are identical.
	n := exec(t, s, `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/80, UC, 1/80, NOW') AND N >= 0`).Rows[0][0]
	if n != int64(200) {
		t.Fatalf("broad count after flip: %v", n)
	}

	// Unrelated DDL ages the statistics; EXPLAIN reports the distance.
	exec(t, s, `CREATE TABLE T2 (N INTEGER)`)
	aged := planText(t, exec(t, s, broad))
	if !strings.Contains(aged, "cost source: stats(age 1)") {
		t.Fatalf("aged statistics must show their age:\n%s", aged)
	}
}

// UPDATE STATISTICS FOR a single index reports the am_stats summary.
func TestUpdateStatisticsForIndex(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	res := exec(t, s, `UPDATE STATISTICS FOR INDEX grt_index`)
	if !strings.Contains(res.Message, "6 entries") || !strings.Contains(res.Message, "histogram buckets") {
		t.Fatalf("FOR INDEX message: %q", res.Message)
	}
	if _, err := s.Exec(`UPDATE STATISTICS FOR INDEX nosuch`); err == nil {
		t.Fatal("UPDATE STATISTICS FOR INDEX over an unknown index must fail")
	}
}
