package grtblade

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/temporal"
	"repro/internal/types"
)

// newDB opens a memory engine with the blade registered and the paper's
// current time (9/97).
func newDB(t *testing.T) (*engine.Engine, *chronon.VirtualClock) {
	t.Helper()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	return e, clock
}

func exec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

// setupEmpDep creates the paper's EmpDep scenario: sbspace, table, GR-tree
// index (per the Step 6 example), and the Table 1 tuples.
func setupEmpDep(t *testing.T, s *engine.Session) {
	t.Helper()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Employees (Name VARCHAR(32), Department VARCHAR(32), Time_Extent GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc`)
	for _, row := range [][3]string{
		{"John", "Advertising", "4/97, UC, 3/97, 5/97"},
		{"Tom", "Management", "3/97, 7/97, 6/97, 8/97"},
		{"Jane", "Sales", "5/97, UC, 5/97, NOW"},
		{"Julie", "Sales", "3/97, 7/97, 3/97, NOW"},
		{"Julie2", "Sales", "8/97, UC, 3/97, 7/97"},
		{"Michelle", "Management", "5/97, UC, 3/97, NOW"},
	} {
		exec(t, s, fmt.Sprintf(`INSERT INTO Employees VALUES ('%s', '%s', '%s')`, row[0], row[1], row[2]))
	}
}

func names(res *engine.Result) []string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[0].(string))
	}
	sort.Strings(out)
	return out
}

func TestPaperWorkflowEndToEnd(t *testing.T) {
	_, _ = newDB(t)
}

func TestSampleQuerySection52(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	// The paper's sample query: everything overlapping the current-state
	// stair from 12/10/95.
	res := exec(t, s, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
	got := names(res)
	// All six regions lie in tt >= 3/97, vt >= 3/97 space; the query stair
	// covers everything below v<=t from 1995 on — everything except ...
	// Verify against the temporal algebra directly.
	ct := chronon.MustParse("9/97")
	q := temporal.MustParseExtent("12/10/95, UC, 12/10/95, NOW")
	want := []string{}
	for n, ext := range map[string]string{
		"John":     "4/97, UC, 3/97, 5/97",
		"Tom":      "3/97, 7/97, 6/97, 8/97",
		"Jane":     "5/97, UC, 5/97, NOW",
		"Julie":    "3/97, 7/97, 3/97, NOW",
		"Julie2":   "8/97, UC, 3/97, 7/97",
		"Michelle": "5/97, UC, 3/97, NOW",
	} {
		if temporal.MustParseExtent(ext).Region().Overlaps(q.Region(), ct) {
			want = append(want, n)
		}
	}
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v want %v", got, want)
	}
	// The broad current-state stair overlaps every EmpDep region; a narrow
	// query must discriminate.
	narrow := names(exec(t, s, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '6/97, 7/97, 6/97, 7/97')`))
	if len(narrow) == 0 || len(narrow) == 6 {
		t.Fatalf("narrow query should discriminate: %v", narrow)
	}
}

// TestIndexAndSeqscanAgree: with and without the index the answers match
// (the strategy UDR path vs the hard-coded purpose-function path).
func TestIndexAndSeqscanAgree(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	queries := []string{
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '6/97, 7/97, 6/97, 7/97')`,
		`SELECT Name FROM Employees WHERE Contains(Time_Extent, '6/97, 6/97, 4/97, 4/97')`,
		`SELECT Name FROM Employees WHERE ContainedIn(Time_Extent, '1/97, UC, 1/97, NOW')`,
		`SELECT Name FROM Employees WHERE Equal(Time_Extent, '3/97, 7/97, 6/97, 8/97')`,
		`SELECT Name FROM Employees WHERE Overlaps('6/97, 7/97, 6/97, 7/97', Time_Extent)`,
		`SELECT Name FROM Employees WHERE Contains('1/97, UC, 1/97, NOW', Time_Extent)`,
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '6/97, 7/97, 6/97, 7/97') AND Department = 'Sales'`,
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '4/97, 4/97, 4/97, 4/97') OR Equal(Time_Extent, '3/97, 7/97, 6/97, 8/97')`,
	}
	withIndex := make([][]string, len(queries))
	for i, q := range queries {
		withIndex[i] = names(exec(t, s, q))
	}
	exec(t, s, `DROP INDEX grt_index`)
	for i, q := range queries {
		noIndex := names(exec(t, s, q))
		if strings.Join(noIndex, ",") != strings.Join(withIndex[i], ",") {
			t.Fatalf("query %d: index %v vs seqscan %v", i, withIndex[i], noIndex)
		}
	}
}

// TestFigure6CallSequences verifies the purpose-function call protocol of
// Figure 6 for INSERT and SELECT.
func TestFigure6CallSequences(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	e.EnableCallTrace(true)
	exec(t, s, `INSERT INTO Employees VALUES ('Ann', 'Sales', '9/97, UC, 9/97, NOW')`)
	trace := e.TakeCallTrace()
	wantInsert := []string{"am_open(grt_index)", "am_insert(grt_index)", "am_close(grt_index)"}
	if strings.Join(trace, " ") != strings.Join(wantInsert, " ") {
		t.Fatalf("INSERT trace: %v", trace)
	}

	exec(t, s, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '9/97, UC, 9/97, NOW')`)
	trace = e.TakeCallTrace()
	joined := strings.Join(trace, " ")
	if !strings.HasPrefix(joined, "am_open(grt_index) am_scancost(grt_index) am_beginscan(grt_index) am_getmulti(grt_index)") {
		t.Fatalf("SELECT trace prefix: %v", trace)
	}
	if !strings.HasSuffix(joined, "am_endscan(grt_index) am_close(grt_index)") {
		t.Fatalf("SELECT trace suffix: %v", trace)
	}
	e.EnableCallTrace(false)
}

// TestLogicalDeletionAndUpdate follows Section 2's EmpDep narrative: an
// update is a logical deletion plus an insertion.
func TestLogicalDeletionAndUpdate(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	// Logical deletion of Tom: TTEnd UC -> 9/97 - 1... Tom is already
	// closed; logically delete Jane instead (current tuple).
	exec(t, s, `UPDATE Employees SET Time_Extent = '5/97, 8/31/97, 5/97, NOW' WHERE Name = 'Jane'`)
	res := exec(t, s, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '9/97, UC, 9/97, NOW')`)
	for _, n := range names(res) {
		if n == "Jane" {
			t.Fatal("logically deleted Jane must not be current")
		}
	}
	// Index stays consistent.
	exec(t, s, `CHECK INDEX grt_index`)

	// DELETE removes rows and index entries together.
	res = exec(t, s, `DELETE FROM Employees WHERE Equal(Time_Extent, '3/97, 7/97, 6/97, 8/97')`)
	if res.Affected != 1 {
		t.Fatalf("deleted %d", res.Affected)
	}
	exec(t, s, `CHECK INDEX grt_index`)
	res = exec(t, s, `SELECT COUNT(*) FROM Employees`)
	if res.Rows[0][0].(int64) != 5 {
		t.Fatalf("count %v", res.Rows[0][0])
	}
}

// TestTimeTravelGrowth: now-relative tuples grow as the clock advances; a
// future query region matches only later (through SQL).
func TestTimeTravelGrowth(t *testing.T) {
	e, clock := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	q := `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/98, 2/98, 1/98, 2/98')`
	if got := names(exec(t, s, q)); len(got) != 0 {
		t.Fatalf("future query matched now: %v", got)
	}
	clock.Set(chronon.MustParse("3/98"))
	got := names(exec(t, s, q))
	// Growing stairs (Jane, Michelle) and John's growing rectangle? John's
	// VT tops at 5/97 < 1/98: no. Jane (5/97..) and Michelle stairs reach
	// (1/98,1/98). Expect exactly Jane and Michelle.
	if strings.Join(got, ",") != "Jane,Michelle" {
		t.Fatalf("after clock advance: %v", got)
	}
	exec(t, s, `CHECK INDEX grt_index`)
}

// TestTransactionTimeStability (Section 5.4, P6): inside one transaction
// the current time is fixed at first index use, so the same query returns
// the same answer even after the clock advances mid-transaction.
func TestTransactionTimeStability(t *testing.T) {
	e, clock := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	q := `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/98, 2/98, 1/98, 2/98')`
	exec(t, s, `BEGIN WORK`)
	first := names(exec(t, s, q))
	clock.Set(chronon.MustParse("6/98")) // time passes mid-transaction
	second := names(exec(t, s, q))
	exec(t, s, `COMMIT`)
	if strings.Join(first, ",") != strings.Join(second, ",") {
		t.Fatalf("per-transaction time must be stable: %v vs %v", first, second)
	}
	if len(first) != 0 {
		t.Fatalf("at 9/97 the future query matches nothing: %v", first)
	}
	// A new transaction sees the new time.
	third := names(exec(t, s, q))
	if strings.Join(third, ",") != "Jane,Michelle" {
		t.Fatalf("new transaction: %v", third)
	}
}

// TestPerStatementTimePolicy: with timepolicy=statement each statement reads
// the clock (the simpler Section 5.4 alternative).
func TestPerStatementTimePolicy(t *testing.T) {
	e, clock := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX ix ON T(X) USING grtree_am (timepolicy='statement') IN spc`)
	exec(t, s, `INSERT INTO T VALUES ('5/97, UC, 5/97, NOW')`)

	q := `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/98, 2/98, 1/98, 2/98')`
	exec(t, s, `BEGIN WORK`)
	r1 := exec(t, s, q).Rows[0][0].(int64)
	clock.Set(chronon.MustParse("3/98"))
	r2 := exec(t, s, q).Rows[0][0].(int64)
	exec(t, s, `COMMIT`)
	if r1 != 0 {
		t.Fatalf("first statement at 9/97: %d", r1)
	}
	// NOTE: the UDR fallback consults named memory; under per-statement
	// policy the index never pins it, so the second statement sees growth.
	if r2 != 1 {
		t.Fatalf("second statement at 3/98 must see the grown stair: %d", r2)
	}
}

func TestRollbackRestoresHeapAndIndex(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	exec(t, s, `BEGIN WORK`)
	exec(t, s, `INSERT INTO Employees VALUES ('Temp', 'Sales', '9/97, UC, 9/97, NOW')`)
	res := exec(t, s, `SELECT COUNT(*) FROM Employees`)
	if res.Rows[0][0].(int64) != 7 {
		t.Fatalf("count in tx: %v", res.Rows[0][0])
	}
	exec(t, s, `ROLLBACK`)

	res = exec(t, s, `SELECT COUNT(*) FROM Employees`)
	if res.Rows[0][0].(int64) != 6 {
		t.Fatalf("count after rollback: %v", res.Rows[0][0])
	}
	// The index was restored page-for-page: queries and am_check agree.
	exec(t, s, `CHECK INDEX grt_index`)
	res = exec(t, s, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '9/97, UC, 9/97, NOW')`)
	for _, n := range names(res) {
		if n == "Temp" {
			t.Fatal("rolled-back row visible through index")
		}
	}
}

func TestCreateIndexOnPopulatedTable(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	for i := 0; i < 50; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/97, UC, %d/97, NOW')`, i, i%9+1, i%9+1))
	}
	exec(t, s, `CREATE INDEX ix ON T(X) USING grtree_am IN spc`)
	exec(t, s, `CHECK INDEX ix`)
	res := exec(t, s, `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`)
	if res.Rows[0][0].(int64) != 50 {
		t.Fatalf("count %v", res.Rows[0][0])
	}
	res = exec(t, s, `UPDATE STATISTICS FOR INDEX ix`)
	if !strings.Contains(res.Message, "50 entries") {
		t.Fatalf("stats message: %q", res.Message)
	}
}

// TestCreateErrors exercises grt_create's validation steps (Table 5).
func TestCreateErrors(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)

	// Step 2: wrong column type.
	if _, err := s.Exec(`CREATE INDEX bad1 ON T(N) USING grtree_am IN spc`); err == nil {
		t.Fatal("index on INTEGER must fail")
	}
	// Missing sbspace.
	if _, err := s.Exec(`CREATE INDEX bad2 ON T(X) USING grtree_am`); err == nil {
		t.Fatal("index without sbspace must fail")
	}
	// Step 4: duplicate index on the same column with the same parameters.
	exec(t, s, `CREATE INDEX good ON T(X) USING grtree_am IN spc`)
	if _, err := s.Exec(`CREATE INDEX dup ON T(X) USING grtree_am IN spc`); err == nil {
		t.Fatal("duplicate index must fail")
	}
	// Different parameters are a different index.
	exec(t, s, `CREATE INDEX other ON T(X) USING grtree_am (placement='pernode') IN spc`)
	// Bad parameters.
	for _, bad := range []string{
		`CREATE INDEX b3 ON T(X) USING grtree_am (placement='weird') IN spc`,
		`CREATE INDEX b4 ON T(X) USING grtree_am (timeparam='x') IN spc`,
		`CREATE INDEX b5 ON T(X) USING grtree_am (deletepolicy='nope') IN spc`,
		`CREATE INDEX b6 ON T(X) USING grtree_am (nonsense='1') IN spc`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Fatalf("%s must fail", bad)
		}
	}
	// Invalid extent literals are rejected by the Input support function.
	if _, err := s.Exec(`INSERT INTO T VALUES (1, '7/97, 3/97, 1/97, 2/97')`); err == nil {
		t.Fatal("reversed TT interval must fail")
	}
	if _, err := s.Exec(`INSERT INTO T VALUES (1, 'garbage')`); err == nil {
		t.Fatal("garbage extent must fail")
	}
}

// TestPlacements: all three Section 5.3 placements behave identically.
func TestPlacements(t *testing.T) {
	for _, placement := range []string{"single", "pernode", "subtree:8"} {
		t.Run(placement, func(t *testing.T) {
			e, _ := newDB(t)
			s := e.NewSession()
			defer s.Close()
			exec(t, s, `CREATE SBSPACE spc`)
			exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
			exec(t, s, fmt.Sprintf(`CREATE INDEX ix ON T(X) USING grtree_am (placement='%s', maxentries=8) IN spc`, placement))
			for i := 0; i < 60; i++ {
				exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/97, UC, %d/97, NOW')`, i, i%9+1, i%9+1))
			}
			exec(t, s, `CHECK INDEX ix`)
			res := exec(t, s, `SELECT COUNT(*) FROM T WHERE Overlaps(X, '5/97, 5/97, 5/97, 5/97')`)
			want := exec(t, s, `SELECT COUNT(*) FROM T WHERE N >= 0 AND Overlaps(X, '5/97, 5/97, 5/97, 5/97')`)
			if res.Rows[0][0] != want.Rows[0][0] {
				t.Fatalf("placement answers diverge")
			}
			res = exec(t, s, `DELETE FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`)
			if res.Affected != 60 {
				t.Fatalf("deleted %d", res.Affected)
			}
			exec(t, s, `CHECK INDEX ix`)
		})
	}
}

func TestSupportFunctionsFromSQL(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE T (X GRT_TimeExtent_t)`)
	exec(t, s, `INSERT INTO T VALUES ('3/97, 7/97, 3/97, NOW')`)
	// Support functions are registered UDRs, so they are visible from SQL
	// even though the index hard-codes them (Section 5.2).
	res := exec(t, s, `SELECT X FROM T WHERE GRT_Size(X) > 0`)
	if len(res.Rows) != 1 {
		t.Fatalf("GRT_Size rows: %d", len(res.Rows))
	}
	res = exec(t, s, `SELECT X FROM T WHERE GRT_Inter(X, '4/97, 5/97, 4/97, 5/97') > 0`)
	if len(res.Rows) != 1 {
		t.Fatalf("GRT_Inter rows: %d", len(res.Rows))
	}
}

func TestTypeSupportRoundTrips(t *testing.T) {
	sf := SupportFuncs()
	text := "3/97, UC, 3/97, NOW"
	internal, err := sf.Input(text)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sf.Output(internal)
	if err != nil {
		t.Fatal(err)
	}
	e1 := temporal.MustParseExtent(text)
	e2 := temporal.MustParseExtent(out)
	if e1 != e2 {
		t.Fatalf("text round trip: %q -> %q", text, out)
	}
	// Binary send/receive.
	wire, err := sf.Send(internal)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sf.Receive(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(internal) {
		t.Fatal("wire round trip")
	}
	if _, err := sf.Receive([]byte("junk")); err == nil {
		t.Fatal("bad wire must fail")
	}
	if _, err := sf.Input("6/97, UC, 9/97, NOW"); err == nil {
		t.Fatal("invalid case must be rejected by Input")
	}
	// Import/export mirror the text forms.
	if _, err := sf.Import(text); err != nil {
		t.Fatal(err)
	}
	if s, err := sf.Export(internal); err != nil || s != out {
		t.Fatal("export must match output")
	}
	// Decode errors.
	if _, err := DecodeExtent([]byte{1, 2}); err == nil {
		t.Fatal("short extent must fail")
	}
}

func TestPersistentDatabaseReopen(t *testing.T) {
	dir := t.TempDir()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))

	e, err := engine.Open(engine.Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	setupEmpDep(t, s)
	s.Close()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: catalog, heap, and the GR-tree index all come back. The type
	// must be registered before the catalogued tables load; Register then
	// re-installs only the Go artefacts (the SQL objects are catalogued).
	e2, err := engine.Open(engine.Options{Dir: dir, Clock: clock, Types: RegisterTypes})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := Register(e2); err != nil {
		t.Fatal(err)
	}
	s2 := e2.NewSession()
	defer s2.Close()
	res, err := s2.Exec(`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("reopened database lost data")
	}
	if _, err := s2.Exec(`CHECK INDEX grt_index`); err != nil {
		t.Fatalf("reopened index check: %v", err)
	}
}

func TestDropIndexRemovesState(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)
	exec(t, s, `DROP INDEX grt_index`)
	// Recreating under the same definition works (the dup record is gone).
	exec(t, s, `CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc`)
	exec(t, s, `CHECK INDEX grt_index`)
}

func TestQueryWithOpaqueLiteralComparisons(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)
	// Mixed predicates: indexable extent predicate AND plain column filter.
	res := exec(t, s, `SELECT Name, Department FROM Employees WHERE Overlaps(Time_Extent, '1/97, UC, 1/97, NOW') AND Department = 'Sales'`)
	for _, row := range res.Rows {
		if row[1].(string) != "Sales" {
			t.Fatalf("residual filter failed: %v", row)
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("no sales rows")
	}
	// SELECT * projection includes the opaque column, formatted.
	res = exec(t, s, `SELECT * FROM Employees WHERE Equal(Time_Extent, '5/97, UC, 5/97, NOW')`)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 3 {
		t.Fatalf("star projection: %v", res.Rows)
	}
	op, ok := res.Rows[0][2].(types.Opaque)
	if !ok {
		t.Fatalf("opaque column type: %T", res.Rows[0][2])
	}
	ext, err := DecodeExtent(op.Data)
	if err != nil || ext.VTEnd != chronon.NOW {
		t.Fatalf("extent content: %v %v", ext, err)
	}
}
