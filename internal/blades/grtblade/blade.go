// Package grtblade is the GR-tree DataBlade the paper describes: the opaque
// data type GRT_TimeExtent_t with its type support functions (Section 6.3),
// the grt_* access-method purpose functions (Appendix A, Table 5), the
// strategy functions Overlaps/Equal/Contains/ContainedIn and support
// functions GRT_Union/GRT_Size/GRT_Inter (Section 5.2), and the registration
// SQL that a BladeManager-style installer runs (Sections 4 and 6.1).
//
// Design choices follow the paper:
//
//   - the whole time extent is one column of one opaque type, because the
//     qualification descriptor only accommodates single-column predicates
//     (Section 5.1);
//   - functions operating on internal-node regions are hard-coded — the
//     purpose functions call the grtree package directly rather than
//     resolving UDRs, trading operator-class extensibility for simpler and
//     faster code (Section 5.2; the rstblade takes the dynamic route, and
//     experiment P5 measures the difference);
//   - the index lives in one sbspace large object by default (Section 5.3),
//     with per-node and per-subtree placements available as index
//     parameters for the P3 ablation;
//   - the current time is constant per transaction, captured at the first
//     grt_open and kept in session named memory, freed by a transaction-end
//     callback (Section 5.4); 'timepolicy=statement' switches to
//     per-statement time;
//   - deletions restart the scan only when the tree actually condenses
//     (Section 5.5), with the alternatives as parameters for P4.
package grtblade

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/am"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/mi"
	"repro/internal/nodestore"
	"repro/internal/sbspace"
	"repro/internal/temporal"
	"repro/internal/types"
)

// TypeName is the opaque type's registered name.
const TypeName = "GRT_TimeExtent_t"

// LibraryPath is the "shared object" path used in EXTERNAL NAME clauses.
const LibraryPath = "usr/functions/grtree.bld"

// AmName is the access method registered by the blade.
const AmName = "grtree_am"

// extent internal structure: 4 big-endian int64 timestamps (32 bytes).
const extentSize = 32

// EncodeExtent serialises a time extent to the opaque internal structure.
func EncodeExtent(e temporal.Extent) []byte {
	buf := make([]byte, extentSize)
	binary.BigEndian.PutUint64(buf[0:8], uint64(e.TTBegin))
	binary.BigEndian.PutUint64(buf[8:16], uint64(e.TTEnd))
	binary.BigEndian.PutUint64(buf[16:24], uint64(e.VTBegin))
	binary.BigEndian.PutUint64(buf[24:32], uint64(e.VTEnd))
	return buf
}

// DecodeExtent deserialises the opaque internal structure.
func DecodeExtent(data []byte) (temporal.Extent, error) {
	if len(data) != extentSize {
		return temporal.Extent{}, fmt.Errorf("grtblade: extent value has %d bytes, want %d", len(data), extentSize)
	}
	return temporal.Extent{
		TTBegin: chronon.Instant(binary.BigEndian.Uint64(data[0:8])),
		TTEnd:   chronon.Instant(binary.BigEndian.Uint64(data[8:16])),
		VTBegin: chronon.Instant(binary.BigEndian.Uint64(data[16:24])),
		VTEnd:   chronon.Instant(binary.BigEndian.Uint64(data[24:32])),
	}, nil
}

// wire form: 4-byte version tag + internal structure (the binary
// send/receive support functions, Section 6.3 item 2).
var wireTag = []byte{'G', 'R', 'T', '1'}

// SupportFuncs returns the type support functions for GRT_TimeExtent_t,
// including the UC/NOW handling and constraint checking the paper added to
// the generated skeletons (Section 6.3).
func SupportFuncs() types.SupportFuncs {
	input := func(text string) ([]byte, error) {
		e, err := temporal.ParseExtent(text)
		if err != nil {
			return nil, err
		}
		if !e.Valid() {
			return nil, fmt.Errorf("grtblade: %v violates the bitemporal constraints (case invalid)", e)
		}
		return EncodeExtent(e), nil
	}
	output := func(data []byte) (string, error) {
		e, err := DecodeExtent(data)
		if err != nil {
			return "", err
		}
		return e.String(), nil
	}
	return types.SupportFuncs{
		Input:  input,
		Output: output,
		Send: func(data []byte) ([]byte, error) {
			if _, err := DecodeExtent(data); err != nil {
				return nil, err
			}
			return append(append([]byte(nil), wireTag...), data...), nil
		},
		Receive: func(wire []byte) ([]byte, error) {
			if len(wire) != len(wireTag)+extentSize || string(wire[:4]) != string(wireTag) {
				return nil, fmt.Errorf("grtblade: malformed wire value (%d bytes)", len(wire))
			}
			return append([]byte(nil), wire[4:]...), nil
		},
		// Text-file import/export (the LOAD format) share the text forms —
		// the code repetition BladeSmith generated is folded together here.
		Import: input,
		Export: output,
		// Value ordering for MIN/MAX: the encoding is big-endian and the
		// instants are signed, so raw bytewise comparison would misorder
		// negative instants — decode and compare the four timestamps
		// lexicographically instead. This is the same total order the
		// GR-tree's AggExtreme uses, which is what makes a pushed MIN/MAX
		// agree exactly with the server's tuple-drain fallback.
		Compare: func(a, b []byte) (int, error) {
			ea, err := DecodeExtent(a)
			if err != nil {
				return 0, err
			}
			eb, err := DecodeExtent(b)
			if err != nil {
				return 0, err
			}
			ka := [4]int64{int64(ea.TTBegin), int64(ea.TTEnd), int64(ea.VTBegin), int64(ea.VTEnd)}
			kb := [4]int64{int64(eb.TTBegin), int64(eb.TTEnd), int64(eb.VTBegin), int64(eb.VTEnd)}
			for i := range ka {
				if ka[i] < kb[i] {
					return -1, nil
				}
				if ka[i] > kb[i] {
					return 1, nil
				}
			}
			return 0, nil
		},
	}
}

// RegistrationSQL is the DataBlade's objects.sql analogue: the statements a
// BladeManager-style installer runs to register the blade (Sections 4/6.1).
const RegistrationSQL = `
-- purpose functions (Section 4, Step 2)
CREATE FUNCTION grt_create(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_create)' LANGUAGE c;
CREATE FUNCTION grt_drop(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_drop)' LANGUAGE c;
CREATE FUNCTION grt_open(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_open)' LANGUAGE c;
CREATE FUNCTION grt_close(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_close)' LANGUAGE c;
CREATE FUNCTION grt_beginscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_beginscan)' LANGUAGE c;
CREATE FUNCTION grt_endscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_endscan)' LANGUAGE c;
CREATE FUNCTION grt_rescan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_rescan)' LANGUAGE c;
CREATE FUNCTION grt_getnext(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_getnext)' LANGUAGE c;
CREATE FUNCTION grt_getmulti(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_getmulti)' LANGUAGE c;
CREATE FUNCTION grt_build(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_build)' LANGUAGE c;
CREATE FUNCTION grt_insert(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_insert)' LANGUAGE c;
CREATE FUNCTION grt_delete(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_delete)' LANGUAGE c;
CREATE FUNCTION grt_update(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_update)' LANGUAGE c;
CREATE FUNCTION grt_scancost(pointer) RETURNING float EXTERNAL NAME 'usr/functions/grtree.bld(grt_scancost)' LANGUAGE c;
CREATE FUNCTION grt_stats(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_stats)' LANGUAGE c;
CREATE FUNCTION grt_check(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_check)' LANGUAGE c;
CREATE FUNCTION grt_parallelscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_parallelscan)' LANGUAGE c;
CREATE FUNCTION grt_aggregate(pointer) RETURNING int EXTERNAL NAME 'usr/functions/grtree.bld(grt_aggregate)' LANGUAGE c;

-- strategy functions on the opaque type (Section 5.2)
CREATE FUNCTION Overlaps(GRT_TimeExtent_t, GRT_TimeExtent_t) RETURNING boolean EXTERNAL NAME 'usr/functions/grtree.bld(Overlaps)' LANGUAGE c;
CREATE FUNCTION Equal(GRT_TimeExtent_t, GRT_TimeExtent_t) RETURNING boolean EXTERNAL NAME 'usr/functions/grtree.bld(Equal)' LANGUAGE c;
CREATE FUNCTION Contains(GRT_TimeExtent_t, GRT_TimeExtent_t) RETURNING boolean EXTERNAL NAME 'usr/functions/grtree.bld(Contains)' LANGUAGE c;
CREATE FUNCTION ContainedIn(GRT_TimeExtent_t, GRT_TimeExtent_t) RETURNING boolean EXTERNAL NAME 'usr/functions/grtree.bld(ContainedIn)' LANGUAGE c;

-- support functions, registered as UDRs though the index hard-codes them
CREATE FUNCTION GRT_Union(GRT_TimeExtent_t, GRT_TimeExtent_t) RETURNING GRT_TimeExtent_t EXTERNAL NAME 'usr/functions/grtree.bld(GRT_Union)' LANGUAGE c;
CREATE FUNCTION GRT_Size(GRT_TimeExtent_t) RETURNING float EXTERNAL NAME 'usr/functions/grtree.bld(GRT_Size)' LANGUAGE c;
CREATE FUNCTION GRT_Inter(GRT_TimeExtent_t, GRT_TimeExtent_t) RETURNING float EXTERNAL NAME 'usr/functions/grtree.bld(GRT_Inter)' LANGUAGE c;

-- the access method (Section 4, Step 3)
CREATE SECONDARY ACCESS_METHOD grtree_am (
	am_create = grt_create,
	am_drop = grt_drop,
	am_open = grt_open,
	am_close = grt_close,
	am_beginscan = grt_beginscan,
	am_endscan = grt_endscan,
	am_rescan = grt_rescan,
	am_getnext = grt_getnext,
	am_getmulti = grt_getmulti,
	am_build = grt_build,
	am_insert = grt_insert,
	am_delete = grt_delete,
	am_update = grt_update,
	am_scancost = grt_scancost,
	am_stats = grt_stats,
	am_check = grt_check,
	am_parallelscan = grt_parallelscan,
	am_aggregate = grt_aggregate,
	am_sptype = 'S'
);

-- the operator class (Section 4, Step 4)
CREATE OPCLASS grt_opclass FOR grtree_am
	STRATEGIES(Overlaps, Equal, Contains, ContainedIn)
	SUPPORT(GRT_Union, GRT_Size, GRT_Inter);
`

// RegisterTypes registers the blade's opaque type; pass it as
// engine.Options.Types when re-opening a database whose catalog already
// references GRT_TimeExtent_t columns.
func RegisterTypes(reg *types.Registry) error {
	if _, ok := reg.Lookup(TypeName); ok {
		return nil
	}
	_, err := reg.RegisterOpaque(TypeName, SupportFuncs())
	return err
}

// Register installs the blade into an engine: the opaque type, the shared
// library, and the registration script (the BladeManager flow). On a
// re-opened database only the Go artefacts are re-installed; the SQL
// objects already live in the catalog.
func Register(e *engine.Engine) error {
	if err := RegisterTypes(e.Types()); err != nil {
		return err
	}
	e.LoadLibrary(LibraryPath, Library(e))
	if _, err := e.Catalog().AmByName(AmName); err == nil {
		return nil // already registered in a previous incarnation
	}
	s := e.NewSession()
	defer s.Close()
	if _, err := s.ExecScript(RegistrationSQL); err != nil {
		return fmt.Errorf("grtblade: registration: %w", err)
	}
	return nil
}

// openState is the blade's per-open-index state stored in the index
// descriptor (the Tree object plus the Cursor of Appendix A).
type openState struct {
	store      *nodestore.LOStore
	tree       *grtree.Tree
	cfg        config
	ct         chronon.Instant
	cursor     *grtree.Cursor
	matcher    grtree.Matcher // the current scan's compiled qualification
	rightAfter bool           // grt_open invoked right after grt_create no-ops
}

// config decodes the index parameters.
type config struct {
	placement nodestore.Placement
	treeCfg   grtree.Config
	perStmtCT bool
	// dynamic switches leaf strategy evaluation from the hard-coded path to
	// dynamic UDR resolution (the extensibility-vs-efficiency trade-off of
	// Section 5.2; experiment P5).
	dynamic bool
}

func parseConfig(params map[string]string) (config, error) {
	cfg := config{placement: nodestore.SingleLO, treeCfg: grtree.DefaultConfig()}
	for k, v := range params {
		switch strings.ToLower(k) {
		case "placement":
			switch {
			case strings.EqualFold(v, "single"):
				cfg.placement = nodestore.SingleLO
			case strings.EqualFold(v, "pernode"):
				cfg.placement = nodestore.PerNodeLO
			case strings.HasPrefix(strings.ToLower(v), "subtree:"):
				n, err := strconv.Atoi(v[len("subtree:"):])
				if err != nil || n < 1 {
					return cfg, fmt.Errorf("grtblade: bad placement %q", v)
				}
				cfg.placement = nodestore.PerSubtreeLO(n)
			default:
				return cfg, fmt.Errorf("grtblade: bad placement %q", v)
			}
		case "timeparam":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("grtblade: bad timeparam %q", v)
			}
			cfg.treeCfg.Bound.TimeParam = n
		case "hidden":
			cfg.treeCfg.Bound.AllowHidden = !strings.EqualFold(v, "off")
		case "deletepolicy":
			switch strings.ToLower(v) {
			case "restart-on-condense":
				cfg.treeCfg.DeletePolicy = grtree.RestartOnCondense
			case "restart-always":
				cfg.treeCfg.DeletePolicy = grtree.RestartAlways
			case "no-condense":
				cfg.treeCfg.DeletePolicy = grtree.NoCondense
			default:
				return cfg, fmt.Errorf("grtblade: bad deletepolicy %q", v)
			}
		case "maxentries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 4 {
				return cfg, fmt.Errorf("grtblade: bad maxentries %q", v)
			}
			cfg.treeCfg.MaxEntries = n
		case "timepolicy":
			switch strings.ToLower(v) {
			case "transaction":
				cfg.perStmtCT = false
			case "statement":
				cfg.perStmtCT = true
			default:
				return cfg, fmt.Errorf("grtblade: bad timepolicy %q", v)
			}
		case "dispatch":
			switch strings.ToLower(v) {
			case "hardcoded":
				cfg.dynamic = false
			case "dynamic":
				cfg.dynamic = true
			default:
				return cfg, fmt.Errorf("grtblade: bad dispatch %q", v)
			}
		default:
			return cfg, fmt.Errorf("grtblade: unknown index parameter %q", k)
		}
	}
	return cfg, nil
}

// amRecord is what grt_create stores in the table associated with the
// access method (Appendix A step 6): the large-object handle of the index.
func encodeAMRecord(h sbspace.Handle) []byte {
	buf := make([]byte, sbspace.HandleSize)
	h.Encode(buf)
	return buf
}

func decodeAMRecord(data []byte) (sbspace.Handle, error) {
	if len(data) != sbspace.HandleSize {
		return sbspace.NilHandle, fmt.Errorf("grtblade: corrupt access-method record (%d bytes)", len(data))
	}
	return sbspace.DecodeHandle(data), nil
}

// currentTime implements Section 5.4: a constant current-time value for the
// whole transaction, obtained the first time the index is used in the
// transaction, kept in named memory identified by the session, and freed by
// a transaction-end callback. Per-statement policy simply reads the clock at
// grt_open (which the server calls once per statement).
func currentTime(ctx *mi.Context, svc am.Services, perStatement bool) chronon.Instant {
	if perStatement {
		return svc.Clock().Now()
	}
	const name = "grt_current_time"
	if v, ok := ctx.Named(name); ok {
		return v.(chronon.Instant)
	}
	ct := svc.Clock().Now()
	ctx.SetNamed(name, ct)
	ctx.OnTxEnd(func(mi.TxEvent) { ctx.FreeNamed(name) })
	return ct
}

// state fetches the blade state from the descriptor.
func state(id *am.IndexDesc) (*openState, error) {
	st, ok := id.UserData.(*openState)
	if !ok || st == nil {
		return nil, fmt.Errorf("grtblade: index %s is not open", id.Name)
	}
	return st, nil
}

// validateColumns implements grt_create steps 2–3: the access method only
// handles a single column of GRT_TimeExtent_t, and only its own operator
// classes.
func validateColumns(id *am.IndexDesc) error {
	if len(id.ColTypes) != 1 {
		return fmt.Errorf("grtblade: grtree_am indexes exactly one column, got %d", len(id.ColTypes))
	}
	if id.ColTypes[0].Kind != types.KOpaque || !strings.EqualFold(id.ColTypes[0].Name, TypeName) {
		return fmt.Errorf("grtblade: grtree_am cannot handle column type %v", id.ColTypes[0])
	}
	if id.OpClass != "" && !strings.EqualFold(id.OpClass, "grt_opclass") {
		return fmt.Errorf("grtblade: operator class %s cannot be used with grtree_am", id.OpClass)
	}
	return nil
}

func extentArg(d types.Datum) (temporal.Extent, error) {
	op, ok := d.(types.Opaque)
	if !ok {
		return temporal.Extent{}, fmt.Errorf("grtblade: expected a %s value, got %T", TypeName, d)
	}
	return DecodeExtent(op.Data)
}
