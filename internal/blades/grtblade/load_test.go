package grtblade

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadCommand: the Informix LOAD command imports delimited text files,
// routing opaque fields through the text-file import support function
// (Section 6.3 item 3: "making it possible to use the command LOAD for
// loading values of a new type from a text file to a table").
func TestLoadCommand(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Employees (Name VARCHAR(16), Department VARCHAR(16), Time_Extent GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX ix ON Employees(Time_Extent) USING grtree_am IN spc`)

	file := filepath.Join(t.TempDir(), "empdep.unl")
	data := "John|Advertising|4/97, UC, 3/97, 5/97\n" +
		"Tom|Management|3/97, 7/97, 6/97, 8/97\n" +
		"Jane|Sales|5/97, UC, 5/97, NOW\n" +
		"\n" + // blank lines are skipped
		"Ann||9/97, UC, 9/97, NOW\n" // empty field = NULL
	if err := os.WriteFile(file, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	res := exec(t, s, `LOAD FROM '`+file+`' INSERT INTO Employees`)
	if res.Affected != 4 {
		t.Fatalf("loaded %d rows", res.Affected)
	}
	// Loaded rows are indexed.
	exec(t, s, `CHECK INDEX ix`)
	q := exec(t, s, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '9/97, UC, 9/97, NOW')`)
	found := map[string]bool{}
	for _, row := range q.Rows {
		found[row[0].(string)] = true
	}
	if !found["Jane"] || !found["Ann"] || found["Tom"] {
		t.Fatalf("loaded query: %v", q.Rows)
	}
	// NULL department survived.
	q = exec(t, s, `SELECT Department FROM Employees WHERE Name = 'Ann'`)
	if q.Rows[0][0] != nil {
		t.Fatalf("Ann's department: %v", q.Rows[0][0])
	}

	// A custom delimiter.
	file2 := filepath.Join(t.TempDir(), "tab.unl")
	if err := os.WriteFile(file2, []byte("Kim;Sales;8/97, UC, 8/97, NOW\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res = exec(t, s, `LOAD FROM '`+file2+`' DELIMITER ';' INSERT INTO Employees`)
	if res.Affected != 1 {
		t.Fatalf("delimiter load: %d", res.Affected)
	}

	// Errors: missing file, arity mismatch, bad opaque literal.
	if _, err := s.Exec(`LOAD FROM '/no/such/file' INSERT INTO Employees`); err == nil {
		t.Fatal("missing file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.unl")
	os.WriteFile(bad, []byte("only|two\n"), 0o644)
	if _, err := s.Exec(`LOAD FROM '` + bad + `' INSERT INTO Employees`); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	os.WriteFile(bad, []byte("X|Y|not an extent\n"), 0o644)
	if _, err := s.Exec(`LOAD FROM '` + bad + `' INSERT INTO Employees`); err == nil {
		t.Fatal("bad extent literal must fail")
	}
}
