package grtblade

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

// buildExtent returns a deterministic extent valid at the test clock's 9/97,
// cycling through the four tt/vt open/closed combinations of Figure 2.
func buildExtent(i int) string {
	m := i%9 + 1
	switch i % 4 {
	case 0: // growing stair: VTEnd = NOW requires VTBegin <= TTBegin
		return fmt.Sprintf("%d/97, UC, %d/97, NOW", m, i%m+1)
	case 1: // static rectangle: all bounds ground and <= current time
		tt1, vt1 := i%5+1, i%6+1
		return fmt.Sprintf("%d/97, %d/97, %d/97, %d/97", tt1, tt1+i%4, vt1, vt1+i%4)
	case 2: // rectangle growing in transaction time
		vt1 := i%7 + 1
		return fmt.Sprintf("%d/97, UC, %d/97, %d/97", m, vt1, vt1+i%3)
	default: // static stair
		tt1 := i%5 + 2
		return fmt.Sprintf("%d/97, %d/97, %d/97, NOW", tt1, tt1+i%3, i%tt1+1)
	}
}

// qualMatrix is the agreement battery: one query per strategy plus the
// composite forms.
var qualMatrix = []string{
	`SELECT Name FROM BT WHERE Overlaps(Time_Extent, '6/97, 7/97, 6/97, 7/97')`,
	`SELECT Name FROM BT WHERE Overlaps(Time_Extent, '1/97, UC, 1/97, NOW')`,
	`SELECT Name FROM BT WHERE Equal(Time_Extent, '3/97, UC, 3/97, NOW')`,
	`SELECT Name FROM BT WHERE Contains(Time_Extent, '6/97, 6/97, 4/97, 4/97')`,
	`SELECT Name FROM BT WHERE ContainedIn(Time_Extent, '1/97, UC, 1/97, NOW')`,
	`SELECT Name FROM BT WHERE Overlaps(Time_Extent, '4/97, 4/97, 4/97, 4/97') OR Equal(Time_Extent, '3/97, 7/97, 6/97, 8/97')`,
	`SELECT Name FROM BT WHERE Overlaps(Time_Extent, '6/97, 7/97, 6/97, 7/97') AND ContainedIn(Time_Extent, '1/97, UC, 1/97, NOW')`,
}

func runMatrix(t *testing.T, s *engine.Session) []string {
	t.Helper()
	out := make([]string, len(qualMatrix))
	for i, q := range qualMatrix {
		out[i] = strings.Join(names(exec(t, s, q)), ",")
	}
	return out
}

// TestBulkBuildEquivalence builds the same table once through the STR
// am_build fast path and once through the forced row-at-a-time fallback,
// and requires both indexes to pass CHECK INDEX and to agree with each
// other and with a sequential scan on the whole qualification matrix.
func TestBulkBuildEquivalence(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE BT (Name VARCHAR(16), Time_Extent GRT_TimeExtent_t)`)
	for i := 0; i < 150; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO BT VALUES ('r%d', '%s')`, i, buildExtent(i)))
	}

	builds := e.Obs().Snapshot().Get("am.am_build")
	exec(t, s, `CREATE INDEX bulk_ix ON BT(Time_Extent grt_opclass) USING grtree_am (build='bulk') IN spc`)
	if e.Obs().Snapshot().Get("am.am_build") != builds+1 {
		t.Fatal("build=bulk did not go through am_build")
	}
	exec(t, s, `CHECK INDEX bulk_ix`)
	viaBulk := runMatrix(t, s)
	exec(t, s, `DROP INDEX bulk_ix`)

	exec(t, s, `CREATE INDEX ins_ix ON BT(Time_Extent grt_opclass) USING grtree_am (build='insert') IN spc`)
	if e.Obs().Snapshot().Get("am.am_build") != builds+1 {
		t.Fatal("build=insert must not call am_build")
	}
	exec(t, s, `CHECK INDEX ins_ix`)
	viaInsert := runMatrix(t, s)
	exec(t, s, `DROP INDEX ins_ix`)

	seq := runMatrix(t, s)
	for i := range qualMatrix {
		if viaBulk[i] != seq[i] {
			t.Fatalf("query %d: STR-built index %q vs seqscan %q", i, viaBulk[i], seq[i])
		}
		if viaInsert[i] != seq[i] {
			t.Fatalf("query %d: insert-built index %q vs seqscan %q", i, viaInsert[i], seq[i])
		}
	}
}

// TestOnlineBuildConcurrentDML is the blade-level concurrency battery (run
// under -race by make check): writer goroutines insert, update and delete
// rows while CREATE INDEX is parked inside its lock-free bulk phase, so
// their changes reach the GR-tree only through the side log. The published
// index must pass CHECK INDEX and agree with a sequential scan everywhere.
func TestOnlineBuildConcurrentDML(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE BT (Name VARCHAR(16), Time_Extent GRT_TimeExtent_t)`)
	for i := 0; i < 100; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO BT VALUES ('r%d', '%s')`, i, buildExtent(i)))
	}

	const writers = 3
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	started := make(chan struct{})
	e.SetBuildHookForTesting(func(stage string) error {
		if stage == "bulk" {
			close(started)
			wg.Wait()
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-started
			ws := e.NewSession()
			defer ws.Close()
			for i := 0; i < 12; i++ {
				n := 1000 + w*100 + i
				if _, err := ws.Exec(fmt.Sprintf(`INSERT INTO BT VALUES ('w%d', '%s')`, n, buildExtent(n))); err != nil {
					writerErr <- err
					return
				}
				switch i % 3 {
				case 0:
					if _, err := ws.Exec(fmt.Sprintf(`DELETE FROM BT WHERE Name = 'w%d'`, n)); err != nil {
						writerErr <- err
						return
					}
				case 1:
					if _, err := ws.Exec(fmt.Sprintf(`UPDATE BT SET Time_Extent = '%s' WHERE Name = 'w%d'`, buildExtent(n+7), n)); err != nil {
						writerErr <- err
						return
					}
				}
			}
		}(w)
	}

	replayed := e.Obs().Snapshot().Get("idxbuild.sidelog_replayed")
	exec(t, s, `CREATE INDEX conc_ix ON BT(Time_Extent grt_opclass) USING grtree_am IN spc`)
	e.SetBuildHookForTesting(nil)
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}
	if e.Obs().Snapshot().Get("idxbuild.sidelog_replayed") == replayed {
		t.Fatal("no side-log ops replayed: writers did not overlap the build")
	}

	exec(t, s, `CHECK INDEX conc_ix`)
	withIndex := runMatrix(t, s)
	exec(t, s, `DROP INDEX conc_ix`)
	seq := runMatrix(t, s)
	for i := range qualMatrix {
		if withIndex[i] != seq[i] {
			t.Fatalf("query %d: online-built index %q vs seqscan %q", i, withIndex[i], seq[i])
		}
	}
}

// TestAlterIndexRebuildGRT rebuilds a churned GR-tree index online (the
// Section 5.5 vacuum story: drop and bulk-recreate in one statement) and
// verifies structure and agreement afterwards.
func TestAlterIndexRebuildGRT(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE BT (Name VARCHAR(16), Time_Extent GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX rb_ix ON BT(Time_Extent grt_opclass) USING grtree_am IN spc`)
	for i := 0; i < 120; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO BT VALUES ('r%d', '%s')`, i, buildExtent(i)))
	}
	for i := 0; i < 120; i += 3 {
		exec(t, s, fmt.Sprintf(`DELETE FROM BT WHERE Name = 'r%d'`, i))
	}

	bulkBefore := e.Obs().Snapshot().Get("idxbuild.rows_bulk")
	exec(t, s, `ALTER INDEX rb_ix REBUILD`)
	if e.Obs().Snapshot().Get("idxbuild.rows_bulk") <= bulkBefore {
		t.Fatal("rebuild did not bulk-load")
	}
	exec(t, s, `CHECK INDEX rb_ix`)
	withIndex := runMatrix(t, s)
	exec(t, s, `DROP INDEX rb_ix`)
	seq := runMatrix(t, s)
	for i := range qualMatrix {
		if withIndex[i] != seq[i] {
			t.Fatalf("query %d: rebuilt index %q vs seqscan %q", i, withIndex[i], seq[i])
		}
	}
}
