package grtblade

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/engine"
)

// TestDynamicDispatchAgreesWithHardcoded: the Section 5.2 extensible path
// (strategy functions resolved dynamically as UDRs per candidate) must
// produce exactly the answers of the hard-coded path, for every operator
// and argument order.
func TestDynamicDispatchAgreesWithHardcoded(t *testing.T) {
	answers := map[string][]string{}
	for _, mode := range []string{"hardcoded", "dynamic"} {
		clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
		e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := Register(e); err != nil {
			t.Fatal(err)
		}
		s := e.NewSession()
		if _, err := s.ExecScript(fmt.Sprintf(`CREATE SBSPACE spc;
			CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t);
			CREATE INDEX ix ON T(X) USING grtree_am (dispatch='%s', maxentries=8) IN spc`, mode)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			m := i%9 + 1
			var ext string
			switch i % 3 {
			case 0:
				ext = fmt.Sprintf("%d/97, UC, %d/97, NOW", m, m)
			case 1:
				ext = fmt.Sprintf("%d/96, %d/96, %d/96, NOW", m, m+2, m)
			default:
				ext = fmt.Sprintf("%d/97, UC, %d/96, %d/97", m, m, m)
			}
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s')`, i, ext)); err != nil {
				t.Fatal(err)
			}
		}
		queries := []string{
			`SELECT N FROM T WHERE Overlaps(X, '5/97, 6/97, 5/97, 6/97')`,
			`SELECT N FROM T WHERE Equal(X, '3/97, UC, 3/97, NOW')`,
			`SELECT N FROM T WHERE Contains(X, '5/15/97, 5/16/97, 4/97, 4/97')`,
			`SELECT N FROM T WHERE ContainedIn(X, '1/97, UC, 1/96, NOW')`,
			`SELECT N FROM T WHERE Contains('1/97, UC, 1/96, NOW', X)`,
			`SELECT N FROM T WHERE Overlaps(X, '5/97, 6/97, 5/97, 6/97') AND N < 50`,
			`SELECT N FROM T WHERE Equal(X, '3/97, UC, 3/97, NOW') OR Equal(X, '4/97, UC, 4/97, NOW')`,
		}
		for _, q := range queries {
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("%s [%s]: %v", q, mode, err)
			}
			var ids []string
			for _, row := range res.Rows {
				ids = append(ids, fmt.Sprint(row[0]))
			}
			key := q
			got := strings.Join(sortStrings(ids), ",")
			if prev, seen := answers[key]; seen {
				if strings.Join(prev, ",") != got {
					t.Fatalf("dispatch modes disagree on %s:\nhardcoded: %v\ndynamic:   %s", q, prev, got)
				}
			} else {
				answers[key] = sortStrings(ids)
			}
		}
		s.Close()
		e.Close()
	}
}

func sortStrings(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestIndexCrashRecovery: a committed index mutation survives a crash (WAL
// redo over the sbspace pages); an uncommitted one is undone.
func TestIndexCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t);
		CREATE INDEX ix ON T(X) USING grtree_am IN spc`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/97, UC, %d/97, NOW')`, i, i%9+1, i%9+1)); err != nil {
			t.Fatal(err)
		}
	}
	// An uncommitted transaction that dirties heap and index, then a
	// simulated crash: flush everything except running recovery.
	if _, err := s.Exec(`BEGIN WORK`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO T VALUES (999, '9/97, UC, 9/97, NOW')`); err != nil {
		t.Fatal(err)
	}
	e.CrashForTesting()

	e2, err := engine.Open(engine.Options{Dir: dir, Clock: clock, Types: RegisterTypes})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := Register(e2); err != nil {
		t.Fatal(err)
	}
	s2 := e2.NewSession()
	defer s2.Close()
	res, err := s2.Exec(`SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 30 {
		t.Fatalf("recovered count: %v (uncommitted insert must be undone)", res.Rows[0][0])
	}
	if _, err := s2.Exec(`CHECK INDEX ix`); err != nil {
		t.Fatalf("recovered index inconsistent: %v", err)
	}
	// The database is fully usable after recovery.
	if _, err := s2.Exec(`INSERT INTO T VALUES (31, '9/97, UC, 9/97, NOW')`); err != nil {
		t.Fatal(err)
	}
	res, _ = s2.Exec(`SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].(int64) != 31 {
		t.Fatalf("post-recovery insert: %v", res.Rows[0][0])
	}
}
