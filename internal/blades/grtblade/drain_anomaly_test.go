package grtblade

import (
	"testing"
)

// Index scans must be as stable under a snapshot as seqscans. Deferred index
// maintenance is what makes this hold: a committed foreign DELETE leaves the
// index entry in place (only the version cell is end-stamped), and rid
// resolution's visibility check keeps the row alive for older views. Before
// deferral, the DELETE removed the entry synchronously and an index scan in
// an older snapshot silently lost the row while the seqscan kept it — the
// two shapes of the same query disagreed.
func TestIndexScanSnapshotStableUnderForeignDelete(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	r := e.NewSession()
	defer r.Close()
	exec(t, r, `SET ISOLATION TO SNAPSHOT`)
	exec(t, r, `BEGIN WORK`)
	before := len(exec(t, r, `SELECT Name FROM Employees WHERE `+aggQual).Rows)
	seqBefore := len(exec(t, r, `SELECT Name FROM Employees`).Rows)

	w := e.NewSession()
	defer w.Close()
	exec(t, w, `DELETE FROM Employees WHERE Name = 'Jane'`) // Jane matches aggQual

	afterIdx := len(exec(t, r, `SELECT Name FROM Employees WHERE `+aggQual).Rows)
	afterSeq := len(exec(t, r, `SELECT Name FROM Employees`).Rows)
	exec(t, r, `COMMIT WORK`)
	if afterIdx != before {
		t.Errorf("index scan under snapshot lost a row after foreign DELETE: %d -> %d", before, afterIdx)
	}
	if afterSeq != seqBefore {
		t.Errorf("seqscan under snapshot lost a row after foreign DELETE: %d -> %d", seqBefore, afterSeq)
	}

	// A fresh statement (new snapshot) does see the delete.
	n := len(exec(t, r, `SELECT Name FROM Employees WHERE `+aggQual).Rows)
	if n != before-1 {
		t.Errorf("post-commit index scan saw %d rows, want %d", n, before-1)
	}
}
