package grtblade

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/engine"
)

// forceParallel raises GOMAXPROCS for the test: SET PARALLEL caps the degree
// at GOMAXPROCS and CI containers may expose a single CPU; the protocol's
// correctness does not depend on real hardware parallelism.
func forceParallel(t *testing.T) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= 4 {
		return
	}
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// loadExtents creates the paper's schema with a GR-tree index of the given
// fan-out and inserts n rows whose extents spread across 1/90..12/96.
func loadExtents(t testing.TB, s *engine.Session, n, maxEntries int) {
	t.Helper()
	mustExec := func(q string) {
		if _, err := s.Exec(q); err != nil {
			t.Fatalf("Exec(%s): %v", q, err)
		}
	}
	mustExec(`CREATE SBSPACE spc`)
	mustExec(`CREATE TABLE Employees (Name VARCHAR(32), Department VARCHAR(32), Time_Extent GRT_TimeExtent_t)`)
	mustExec(fmt.Sprintf(`CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am (maxentries=%d) IN spc`, maxEntries))
	for i := 0; i < n; i++ {
		m, y := i%12+1, 90+(i/12)%7 // 1/90 .. 12/96, all before the 9/97 current time
		mustExec(fmt.Sprintf(`INSERT INTO Employees VALUES ('emp%d', 'dept%d', '%d/%d, UC, %d/%d, NOW')`,
			i, i%7, m, y, m, y))
	}
}

// TestParallelScanAgreesWithSerial pins the tentpole's determinism for the
// real blade: under SET PARALLEL the GR-tree's root fan-out partitioning,
// latched traversal, and the engine's worker pool return exactly the serial
// result set (sorted compare), with the rows-scanned profile in agreement
// and the worker offer visible in EXPLAIN.
func TestParallelScanAgreesWithSerial(t *testing.T) {
	forceParallel(t)
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	loadExtents(t, s, 300, 8)

	queries := []string{
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/90, UC, 1/90, NOW')`,
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '6/93, 7/95, 6/93, 7/95')`,
		`SELECT Name FROM Employees WHERE ContainedIn(Time_Extent, '1/92, UC, 1/92, NOW')`,
		`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/90, UC, 1/90, NOW') AND Department = 'dept3'`,
	}
	for i, q := range queries {
		serial := exec(t, s, q)
		exec(t, s, `SET PARALLEL 4`)
		par := exec(t, s, q)
		exec(t, s, `SET PARALLEL 0`)

		sn, pn := names(serial), names(par)
		sort.Strings(sn)
		sort.Strings(pn)
		if strings.Join(sn, ",") != strings.Join(pn, ",") {
			t.Fatalf("query %d: serial %d rows vs parallel %d rows", i, len(sn), len(pn))
		}
		if serial.Stats.RowsScanned != par.Stats.RowsScanned {
			t.Fatalf("query %d rows scanned: serial=%d parallel=%d", i, serial.Stats.RowsScanned, par.Stats.RowsScanned)
		}
	}

	exec(t, s, `SET PARALLEL 4`)
	ex := exec(t, s, `EXPLAIN SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/90, UC, 1/90, NOW')`)
	if !strings.Contains(ex.Plan.String(), "workers=") {
		t.Fatalf("EXPLAIN missing workers=N:\n%s", ex.Plan)
	}
	if e.Obs().Counter("parallel.scans").Load() == 0 {
		t.Fatal("parallel.scans counter did not move: scans fell back to serial")
	}
}

// BenchmarkParallelScan measures the P8 scaling experiment's core loop: one
// broad GR-tree scan at SET PARALLEL 1, 2, 4, and 8 (the degree is still
// capped by GOMAXPROCS; on a single-CPU host the workers interleave and the
// numbers measure pool overhead rather than speedup).
func BenchmarkParallelScan(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if cur := runtime.GOMAXPROCS(0); cur < workers {
				old := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(old)
			}
			clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
			e, err := engine.Open(engine.Options{Clock: clock})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := Register(e); err != nil {
				b.Fatal(err)
			}
			s := e.NewSession()
			defer s.Close()
			loadExtents(b, s, 4000, 16)
			if _, err := s.Exec(fmt.Sprintf(`SET PARALLEL %d`, workers)); err != nil {
				b.Fatal(err)
			}
			const q = `SELECT count(*) FROM Employees WHERE Overlaps(Time_Extent, '1/90, UC, 1/90, NOW')`
			res, err := s.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			rows := res.Rows[0][0].(int64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Exec(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows[0][0].(int64) != rows {
					b.Fatalf("row count drifted: %v != %d", res.Rows[0][0], rows)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
