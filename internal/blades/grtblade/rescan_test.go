package grtblade

import (
	"testing"

	"repro/internal/am"
	"repro/internal/chronon"
	"repro/internal/grtree"
	"repro/internal/heap"
	"repro/internal/nodestore"
	"repro/internal/temporal"
	"repro/internal/types"
)

// TestRescanDiscardsPartialBatch exercises am_rescan against a partially
// drained am_getmulti batch: after the tree condenses under the cursor
// (Section 5.5's restart-on-condense), buffered-but-undelivered rowids may
// no longer qualify, so grt_rescan must discard them; the reset cursor then
// produces every surviving entry exactly once.
func TestRescanDiscardsPartialBatch(t *testing.T) {
	cfg := grtree.DefaultConfig()
	cfg.MaxEntries = 4
	tr, err := grtree.Create(nodestore.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct := chronon.Instant(200)
	ext := func(i int64) temporal.Extent {
		return temporal.Extent{
			TTBegin: chronon.Instant(i), TTEnd: chronon.UC,
			VTBegin: chronon.Instant(i), VTEnd: chronon.NOW,
		}
	}
	const total = 24
	for i := int64(1); i <= total; i++ {
		if err := tr.Insert(ext(i), grtree.Payload(i), ct); err != nil {
			t.Fatal(err)
		}
	}

	cur, err := tr.Search(grtree.Predicate{Op: grtree.OpOverlaps, Query: ext(1)}, ct)
	if err != nil {
		t.Fatal(err)
	}
	sd := &am.ScanDesc{
		Index: &am.IndexDesc{
			Name:     "rescan_ix",
			ColTypes: []types.Type{{Kind: types.KOpaque, OpaqueID: 1}},
		},
		BatchCap: 4,
		Batch:    am.NewScanBatch(4),
		UserData: cur,
	}

	// Partially drain: one full batch delivered, the cursor mid-tree.
	n, err := grtGetMulti(nil, sd)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || sd.Batch.N != 4 {
		t.Fatalf("first fill: n=%d batch.N=%d", n, sd.Batch.N)
	}

	// Delete entries until the tree condenses (a structural change that
	// bumps the epoch and would restart the live cursor).
	const removed = 4
	condensed := false
	for i := int64(total - removed + 1); i <= total; i++ {
		_, c, err := tr.Delete(ext(i), grtree.Payload(i), ct)
		if err != nil {
			t.Fatal(err)
		}
		condensed = condensed || c
	}
	if !condensed {
		t.Fatal("deletions did not condense the tree; the test needs a structural change")
	}

	// am_rescan: the buffered rowids must be discarded with the reset.
	if err := grtRescan(nil, sd); err != nil {
		t.Fatal(err)
	}
	if sd.Batch.N != 0 {
		t.Fatalf("rescan left %d buffered entries in the batch", sd.Batch.N)
	}

	// A full re-drain returns each surviving payload exactly once —
	// including the four delivered before the rescan (Reset forgets the
	// returned-entry bookkeeping).
	seen := map[heap.RowID]int{}
	for {
		n, err := grtGetMulti(nil, sd)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			seen[sd.Batch.RowIDs[i]]++
		}
		if n < sd.Batch.Cap() {
			break
		}
	}
	if len(seen) != total-removed {
		t.Fatalf("re-drain returned %d distinct entries, want %d", len(seen), total-removed)
	}
	for rid, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("entry %v returned %d times", rid, cnt)
		}
		if rid < 1 || rid > total-removed {
			t.Fatalf("unexpected entry %v", rid)
		}
	}
}

// TestRescanResetsParallelScan extends the rescan coverage to the parallel
// protocol: grt_rescan on the parent descriptor of an accepted
// am_parallelscan offer must re-seed the shared subtree work-queue and
// rewind every partition cursor, after which the partitions collectively
// produce exactly the serial result set — including entries some worker had
// already delivered before the rescan.
func TestRescanResetsParallelScan(t *testing.T) {
	cfg := grtree.DefaultConfig()
	cfg.MaxEntries = 4
	tr, err := grtree.Create(nodestore.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct := chronon.Instant(500)
	ext := func(i int64) temporal.Extent {
		return temporal.Extent{
			TTBegin: chronon.Instant(i), TTEnd: chronon.UC,
			VTBegin: chronon.Instant(i), VTEnd: chronon.NOW,
		}
	}
	const total = 120
	for i := int64(1); i <= total; i++ {
		if err := tr.Insert(ext(i), grtree.Payload(i), ct); err != nil {
			t.Fatal(err)
		}
	}
	pred := grtree.Predicate{Op: grtree.OpOverlaps, Query: ext(1)}

	// Serial baseline.
	want := map[heap.RowID]bool{}
	cur, err := tr.Search(pred, ct)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]grtree.Entry, 16)
	for {
		n, err := cur.NextBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			want[heap.RowID(buf[i].Ref)] = true
		}
		if n < len(buf) {
			break
		}
	}
	if len(want) != total {
		t.Fatalf("serial baseline: %d entries, want %d", len(want), total)
	}

	ps, err := tr.ParallelScan(pred, ct, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ps == nil {
		t.Fatal("ParallelScan declined; the test needs root fan-out")
	}
	parent := &am.ScanDesc{
		Index: &am.IndexDesc{
			Name:     "par_ix",
			ColTypes: []types.Type{{Kind: types.KOpaque, OpaqueID: 1}},
		},
		UserData: ps,
	}
	newPart := func() *am.ScanDesc {
		return &am.ScanDesc{
			Index:    parent.Index,
			BatchCap: 8,
			Batch:    am.NewScanBatch(8),
			UserData: ps.Cursor(),
		}
	}
	parts := []*am.ScanDesc{newPart(), newPart(), newPart(), newPart()}

	// Partially drain one partition, then rescan the parent: the queue is
	// re-seeded and the partial delivery forgotten.
	if _, err := grtGetMulti(nil, parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := grtRescan(nil, parent); err != nil {
		t.Fatal(err)
	}

	// A full drain of all partitions matches the serial baseline exactly.
	seen := map[heap.RowID]int{}
	for _, sd := range parts {
		sd.Batch.Reset()
		for {
			n, err := grtGetMulti(nil, sd)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				seen[sd.Batch.RowIDs[i]]++
			}
			if n < sd.Batch.Cap() {
				break
			}
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("parallel drain after rescan: %d distinct entries, want %d", len(seen), len(want))
	}
	for rid, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("entry %v returned %d times", rid, cnt)
		}
		if !want[rid] {
			t.Fatalf("unexpected entry %v", rid)
		}
	}
}
