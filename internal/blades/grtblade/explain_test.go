package grtblade

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
)

// Golden EXPLAIN output for the paper's Section 5.2 sample query over the
// EmpDep scenario: the plan must show the GR-tree access method, the
// Overlaps strategy that made the optimizer consider it, the am_scancost
// verdict against the sequential alternative, and the am_getmulti batch
// capacity. The numbers are deterministic: grt_scancost is height +
// 0.2*leafNodes over the fixed Table 1 tuples, and the heap holds one page.

func planText(t *testing.T, res *engine.Result) string {
	t.Helper()
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("EXPLAIN columns: %v", res.Columns)
	}
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		lines[i] = r[0].(string)
	}
	return strings.Join(lines, "\n")
}

func TestExplainGoldenIndexScan(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	res := exec(t, s, `EXPLAIN SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
	// The snapshot cut is the WAL's append position at EXPLAIN time — not a
	// constant — so the golden takes it from the structured plan after
	// asserting a read view was captured at all.
	if res.Plan == nil || res.Plan.SnapshotLSN == 0 {
		t.Fatalf("EXPLAIN SELECT captured no MVCC snapshot: %+v", res.Plan)
	}
	want := strings.Join([]string{
		"SELECT on Employees",
		"  -> index scan on grt_index via grtree_am",
		"       opclass:     grt_opclass",
		"       strategy:    Overlaps",
		"       qual:        overlaps(col0, const)",
		"       am_scancost: 1.21 (seqscan cost 1.00)",
		"       cost source: default",
		"       batch:       64 rows per am_getmulti",
		"       filter:      WHERE re-checked per row",
		"       plan:        fresh",
		fmt.Sprintf("       snapshot=%d", res.Plan.SnapshotLSN),
	}, "\n")
	if got := planText(t, res); got != want {
		t.Fatalf("index plan mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The structured plan mirrors the rendering.
	if res.Plan == nil || res.Plan.Chosen() == nil || res.Plan.Chosen().Index != "grt_index" {
		t.Fatalf("Result.Plan: %+v", res.Plan)
	}
}

func TestExplainGoldenSeqscanFallback(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	// No strategy function over the indexed column: the optimizer has no
	// reason to consider the GR-tree and falls back to the heap.
	res := exec(t, s, `EXPLAIN SELECT Name FROM Employees WHERE Name = 'Jane'`)
	if res.Plan == nil || res.Plan.SnapshotLSN == 0 {
		t.Fatalf("EXPLAIN SELECT captured no MVCC snapshot: %+v", res.Plan)
	}
	want := strings.Join([]string{
		"SELECT on Employees",
		"  -> sequential heap scan (cost 1.00: heap pages)",
		"       cost source: default",
		"       filter:      WHERE re-checked per row",
		"       plan:        fresh",
		fmt.Sprintf("       snapshot=%d", res.Plan.SnapshotLSN),
	}, "\n")
	if got := planText(t, res); got != want {
		t.Fatalf("seqscan plan mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if res.Plan.Chosen() != nil {
		t.Fatalf("seqscan plan must have no chosen index: %+v", res.Plan)
	}
}

func TestExplainDeleteRowAtATime(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	setupEmpDep(t, s)

	// The interleaved DELETE keeps the Section 5.5 row-at-a-time protocol
	// even on an access method that binds am_getmulti.
	res := exec(t, s, `EXPLAIN DELETE FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`)
	got := planText(t, res)
	if !strings.Contains(got, "DELETE on Employees") ||
		!strings.Contains(got, "batch:       row-at-a-time (am_getnext protocol)") {
		t.Fatalf("delete plan:\n%s", got)
	}

	// EXPLAIN must not have executed the delete.
	q := exec(t, s, `SELECT COUNT(*) FROM Employees`)
	if n := q.Rows[0][0].(int64); n != 6 {
		t.Fatalf("EXPLAIN DELETE mutated the table: %d rows left", n)
	}
}
