package grtblade

import (
	"fmt"
	"strings"

	"repro/internal/am"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/nodestore"
	"repro/internal/sbspace"
	"repro/internal/temporal"
	"repro/internal/types"
)

// Library returns the blade's shared-library symbol table. The engine loads
// it under LibraryPath; the registration SQL binds the symbols to SQL names.
func Library(e *engine.Engine) am.Library {
	return am.Library{
		"grt_create":       am.AmIndexFunc(grtCreate),
		"grt_drop":         am.AmIndexFunc(grtDrop),
		"grt_open":         am.AmIndexFunc(grtOpen),
		"grt_close":        am.AmIndexFunc(grtClose),
		"grt_beginscan":    am.AmScanFunc(grtBeginScan),
		"grt_endscan":      am.AmScanFunc(grtEndScan),
		"grt_rescan":       am.AmScanFunc(grtRescan),
		"grt_getnext":      am.AmGetNextFunc(grtGetNext),
		"grt_getmulti":     am.AmGetMultiFunc(grtGetMulti),
		"grt_build":        am.AmBuildFunc(grtBuild),
		"grt_insert":       am.AmMutateFunc(grtInsert),
		"grt_delete":       am.AmMutateFunc(grtDelete),
		"grt_update":       am.AmUpdateFunc(grtUpdate),
		"grt_scancost":     am.AmScanCostFunc(grtScanCost),
		"grt_stats":        am.AmStatsFunc(grtStats),
		"grt_check":        am.AmCheckFunc(grtCheck),
		"grt_parallelscan": am.AmParallelScanFunc(grtParallelScan),
		"grt_aggregate":    am.AmAggregateFunc(grtAggregate),

		"Overlaps":    strategyUDR(e, grtree.OpOverlaps),
		"Equal":       strategyUDR(e, grtree.OpEqual),
		"Contains":    strategyUDR(e, grtree.OpContains),
		"ContainedIn": strategyUDR(e, grtree.OpContainedIn),

		"GRT_Union": unionUDR(e),
		"GRT_Size":  sizeUDR(e),
		"GRT_Inter": interUDR(e),
	}
}

// dupKey builds the duplicate-index detection key of grt_create step 4.
func dupKey(id *am.IndexDesc) string {
	parts := []string{"dup", strings.ToLower(id.TableName), strings.ToLower(strings.Join(id.Columns, ","))}
	for k, v := range id.Params {
		parts = append(parts, strings.ToLower(k)+"="+strings.ToLower(v))
	}
	return strings.Join(parts, "|")
}

// grtCreate implements am_create (Table 5, grt_create).
func grtCreate(ctx *mi.Context, id *am.IndexDesc) error {
	// Steps 2–3: column types and operator class must suit grtree_am.
	if err := validateColumns(id); err != nil {
		return err
	}
	cfg, err := parseConfig(id.Params)
	if err != nil {
		return err
	}
	// Step 4: reject a duplicate index on the same columns with the same
	// user-defined parameters.
	if _, dup, err := id.Services.AMRecordGet(AmName, dupKey(id)); err != nil {
		return err
	} else if dup {
		return fmt.Errorf("grtblade: an index using %s on %s(%s) with these parameters already exists",
			AmName, id.TableName, strings.Join(id.Columns, ","))
	}
	// Step 5: create the BLOB the index is stored in.
	if id.SpaceName == "" {
		return fmt.Errorf("grtblade: grtree_am stores indexes in sbspaces; use CREATE INDEX ... IN <sbspace>")
	}
	space, err := id.Services.Space(id.SpaceName)
	if err != nil {
		return err
	}
	store, handle, err := nodestore.CreateLO(space, id.Services.TxID(), id.Services.Isolation(), cfg.placement)
	if err != nil {
		return err
	}
	// Step 1/7: create the Tree object over the open BLOB and keep it in td.
	tree, err := grtree.Create(store, cfg.treeCfg)
	if err != nil {
		return err
	}
	// Step 6: record the index id and BLOB handle in the table associated
	// with the access method.
	if err := id.Services.AMRecordPut(AmName, id.Name, encodeAMRecord(handle)); err != nil {
		return err
	}
	// The dup record carries the owning index's name so catalog recovery can
	// purge it when a crash leaves a half-built index behind.
	if err := id.Services.AMRecordPut(AmName, dupKey(id), []byte(strings.ToLower(id.Name))); err != nil {
		return err
	}
	ct := currentTime(ctx, id.Services, cfg.perStmtCT)
	id.UserData = &openState{store: store, tree: tree, cfg: cfg, ct: ct, rightAfter: true}
	ctx.Tracer().Tracef("grt", 1, "grt_create %s in %s (%v)", id.Name, id.SpaceName, handle)
	return nil
}

// grtDrop implements am_drop (Table 5, grt_drop).
func grtDrop(ctx *mi.Context, id *am.IndexDesc) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	// Step 2: drop the BLOB(s).
	if err := st.store.Drop(); err != nil {
		return err
	}
	// Step 3: delete the Tree object.
	id.UserData = nil
	// Step 4: delete the record from the access method's table.
	if err := id.Services.AMRecordDelete(AmName, id.Name); err != nil {
		return err
	}
	if err := id.Services.AMRecordDelete(AmName, dupKey(id)); err != nil {
		return err
	}
	ctx.Tracer().Tracef("grt", 1, "grt_drop %s", id.Name)
	return nil
}

// grtOpen implements am_open (Table 5, grt_open).
func grtOpen(ctx *mi.Context, id *am.IndexDesc) error {
	// Step 1: if invoked right after grt_create, the tree is already open.
	if st, ok := id.UserData.(*openState); ok && st != nil && st.rightAfter {
		st.rightAfter = false
		return nil
	}
	cfg, err := parseConfig(id.Params)
	if err != nil {
		return err
	}
	// Step 3: get the BLOB handle from the access method's table.
	rec, ok, err := id.Services.AMRecordGet(AmName, id.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("grtblade: index %s has no access-method record", id.Name)
	}
	handle, err := decodeAMRecord(rec)
	if err != nil {
		return err
	}
	space, err := id.Services.Space(id.SpaceName)
	if err != nil {
		return err
	}
	// Step 4: open the BLOB (shared lock for read-only statements,
	// exclusive otherwise; Section 5.3's automatic LO-level locking).
	mode := sbspace.ReadWrite
	if id.ReadOnly {
		mode = sbspace.ReadOnly
	}
	store, err := nodestore.OpenLO(space, id.Services.TxID(), id.Services.Isolation(), handle, mode)
	if err != nil {
		return err
	}
	// Step 2: create the Tree object and save its pointer in td.
	tree, err := grtree.Open(store, cfg.treeCfg)
	if err != nil {
		store.Close()
		return err
	}
	ct := currentTime(ctx, id.Services, cfg.perStmtCT)
	id.UserData = &openState{store: store, tree: tree, cfg: cfg, ct: ct}
	return nil
}

// grtClose implements am_close (Table 5, grt_close).
func grtClose(ctx *mi.Context, id *am.IndexDesc) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	st.cursor = nil
	if err := st.store.Close(); err != nil {
		return err
	}
	id.UserData = nil
	return nil
}

// compileQual hard-codes the strategy-function resolution (Section 5.2's
// chosen alternative): qualification leaves are mapped directly to tree
// operators instead of dynamically invoking registered UDRs. Argument order
// matters for the asymmetric predicates: Contains(const, column) is the
// commutator ContainedIn(column, const).
func compileQual(q *am.Qual) (*grtree.Compound, error) {
	if q == nil {
		return nil, fmt.Errorf("grtblade: scan without qualification (full scans go through the table)")
	}
	switch q.Op {
	case am.QAnd, am.QOr:
		kids := make([]*grtree.Compound, len(q.Children))
		for i, c := range q.Children {
			k, err := compileQual(c)
			if err != nil {
				return nil, err
			}
			kids[i] = k
		}
		if q.Op == am.QAnd {
			return grtree.AndOf(kids...), nil
		}
		return grtree.OrOf(kids...), nil
	case am.QFunc:
		var op grtree.Op
		switch strings.ToLower(q.Func) {
		case "overlaps":
			op = grtree.OpOverlaps
		case "equal":
			op = grtree.OpEqual
		case "contains":
			op = grtree.OpContains
			if !q.ColFirst {
				op = grtree.OpContainedIn
			}
		case "containedin":
			op = grtree.OpContainedIn
			if !q.ColFirst {
				op = grtree.OpContains
			}
		default:
			return nil, fmt.Errorf("grtblade: %q is not a grt_opclass strategy function", q.Func)
		}
		ext, err := extentArg(q.Const)
		if err != nil {
			return nil, err
		}
		return grtree.Leaf(grtree.Predicate{Op: op, Query: ext}), nil
	}
	return nil, fmt.Errorf("grtblade: bad qualification node")
}

// grtBeginScan implements am_beginscan (Table 5, grt_beginscan): it creates
// the Cursor object storing the query predicate and tree-traversal
// information.
func grtBeginScan(ctx *mi.Context, sd *am.ScanDesc) error {
	st, err := state(sd.Index)
	if err != nil {
		return err
	}
	compound, err := compileQual(sd.Qual)
	if err != nil {
		return err
	}
	if err := compound.Validate(); err != nil {
		return err
	}
	var matcher grtree.Matcher = compound
	if st.cfg.dynamic {
		// Section 5.2's extensible alternative: leaf strategy functions are
		// dynamically resolved and invoked as registered UDRs; only the
		// internal-region functions stay hard-coded. Experiment P5 measures
		// the overhead against the default.
		matcher = &dynamicMatcher{
			compound: compound, qual: sd.Qual, ctx: ctx,
			svc: sd.Index.Services, typeID: sd.Index.ColTypes[0].OpaqueID,
		}
	}
	cur := st.tree.SearchMatcher(matcher, st.ct)
	st.cursor = cur
	st.matcher = matcher
	sd.UserData = cur
	// Negotiate the am_getmulti batch capacity: the server proposes one
	// before am_beginscan; the blade caps it at its own maximum (a larger
	// buffer than this cannot help a tree whose leaves hold maxentries).
	if maxBatch := 16 * st.cfg.treeCfg.MaxEntries; sd.BatchCap > maxBatch {
		sd.BatchCap = maxBatch
	}
	ctx.Tracer().Tracef("grt", 2, "grt_beginscan %s: qual %s, batch %d", sd.Index.Name, sd.Qual, sd.BatchCap)
	return nil
}

// dynamicMatcher evaluates leaf qualifications by invoking the registered
// strategy UDRs (Overlaps, Equal, ...) per candidate entry.
type dynamicMatcher struct {
	compound *grtree.Compound
	qual     *am.Qual
	ctx      *mi.Context
	svc      am.Services
	typeID   uint32
}

// InternalMatch implements grtree.Matcher (hard-coded internal functions).
func (m *dynamicMatcher) InternalMatch(bound temporal.Region, ct chronon.Instant) bool {
	return m.compound.InternalMatch(bound, ct)
}

// LeafMatch implements grtree.Matcher through dynamic UDR invocation.
func (m *dynamicMatcher) LeafMatch(r temporal.Region, ct chronon.Instant) bool {
	ext := temporal.Extent{TTBegin: r.TTBegin, TTEnd: r.TTEnd, VTBegin: r.VTBegin, VTEnd: r.VTEnd}
	colVal := types.Opaque{TypeID: m.typeID, Data: EncodeExtent(ext)}
	ok, err := m.qual.Evaluate(func(l *am.Qual) (bool, error) {
		args := []types.Datum{colVal, l.Const}
		if !l.ColFirst {
			args = []types.Datum{l.Const, colVal}
		}
		out, err := m.svc.InvokeUDR(l.Func, args)
		if err != nil {
			return false, err
		}
		b, okb := out.(bool)
		if !okb {
			return false, fmt.Errorf("grtblade: strategy %s returned %T", l.Func, out)
		}
		return b, nil
	})
	if err != nil {
		m.ctx.Tracer().Tracef("grt", 1, "dynamic strategy dispatch failed: %v", err)
		return false
	}
	return ok
}

// grtParallelScan implements am_parallelscan: offered a degree, it asks the
// tree for a root fan-out partitioning and, when the tree accepts, returns
// one partition ScanDesc per worker, each carrying its own PartCursor. The
// parent descriptor's UserData is replaced by the ParallelScan itself so
// grt_rescan can re-seed the shared work queue and grt_endscan tears the
// whole partitioning down.
func grtParallelScan(ctx *mi.Context, sd *am.ScanDesc, degree int) ([]*am.ScanDesc, error) {
	st, err := state(sd.Index)
	if err != nil {
		return nil, err
	}
	if st.matcher == nil {
		return nil, fmt.Errorf("grtblade: parallelscan without beginscan")
	}
	ps, err := st.tree.ParallelScan(st.matcher, st.ct, degree)
	if err != nil || ps == nil {
		return nil, err
	}
	workers := ps.Parts()
	if workers > degree {
		workers = degree
	}
	sd.UserData = ps
	out := make([]*am.ScanDesc, workers)
	for i := range out {
		out[i] = &am.ScanDesc{
			Index: sd.Index, Qual: sd.Qual,
			BatchCap: sd.BatchCap, Obs: sd.Obs,
			UserData: ps.Cursor(),
		}
	}
	ctx.Tracer().Tracef("grt", 2, "grt_parallelscan %s: %d workers over %d subtrees", sd.Index.Name, workers, ps.Parts())
	return out, nil
}

// grtRescan implements am_rescan: reset the cursor, and discard any
// batched-but-undelivered entries — after a restart (Section 5.5's
// restart-on-condense) buffered rowids may no longer qualify, and the reset
// cursor will produce the qualifying ones again. Under a parallel scan the
// descriptor holds the partitioning, and rescan re-seeds its work queue.
func grtRescan(ctx *mi.Context, sd *am.ScanDesc) error {
	if sd.Batch != nil {
		sd.Batch.Reset()
	}
	switch cur := sd.UserData.(type) {
	case *grtree.Cursor:
		cur.Reset()
		return nil
	case *grtree.ParallelScan:
		return cur.Reset()
	}
	return fmt.Errorf("grtblade: rescan without a cursor")
}

// grtGetNext implements am_getnext (Table 5, grt_getnext): fetch the next
// qualifying entry, form the rowid and the indexed-column values.
func grtGetNext(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
	cur, ok := sd.UserData.(*grtree.Cursor)
	if !ok {
		return 0, nil, false, fmt.Errorf("grtblade: getnext without beginscan")
	}
	entry, ok2, err := cur.Next()
	if err != nil || !ok2 {
		return 0, nil, false, err
	}
	ext := temporal.Extent{
		TTBegin: entry.Region.TTBegin, TTEnd: entry.Region.TTEnd,
		VTBegin: entry.Region.VTBegin, VTEnd: entry.Region.VTEnd,
	}
	row := []types.Datum{types.Opaque{
		TypeID: sd.Index.ColTypes[0].OpaqueID,
		Data:   EncodeExtent(ext),
	}}
	return heap.RowID(entry.Payload()), row, true, nil
}

// grtGetMulti implements am_getmulti, the batched companion of
// grt_getnext: one purpose-function dispatch drains the cursor's next
// qualifying entries — each visited leaf node's matches in a single pass —
// into the server's batch buffer. Returning fewer entries than the batch
// holds signals exhaustion.
func grtGetMulti(ctx *mi.Context, sd *am.ScanDesc) (int, error) {
	// The descriptor holds either the serial cursor or, on a parallel
	// partition descriptor, a PartCursor — both drain through NextBatch.
	cur, ok := sd.UserData.(interface {
		NextBatch([]grtree.Entry) (int, error)
	})
	if !ok {
		return 0, fmt.Errorf("grtblade: getmulti without beginscan")
	}
	b := sd.Batch
	b.Reset()
	entries := make([]grtree.Entry, b.Cap())
	n, err := cur.NextBatch(entries)
	if err != nil {
		return 0, err
	}
	typeID := sd.Index.ColTypes[0].OpaqueID
	for i := 0; i < n; i++ {
		e := entries[i]
		ext := temporal.Extent{
			TTBegin: e.Region.TTBegin, TTEnd: e.Region.TTEnd,
			VTBegin: e.Region.VTBegin, VTEnd: e.Region.VTEnd,
		}
		b.Append(heap.RowID(e.Payload()), []types.Datum{types.Opaque{
			TypeID: typeID,
			Data:   EncodeExtent(ext),
		}})
	}
	return b.N, nil
}

// grtEndScan implements am_endscan: delete the cursor (and, under a
// parallel scan, the whole partitioning with it).
func grtEndScan(ctx *mi.Context, sd *am.ScanDesc) error {
	if st, err := state(sd.Index); err == nil {
		st.cursor = nil
		st.matcher = nil
	}
	sd.UserData = nil
	return nil
}

// grtBuild implements am_build, the optional bulk-load purpose slot: the
// server feeds snapshot batches through next; the blade collects them and
// packs the tree bottom-up with the sort-tile-recursive BulkLoad instead of
// one grt_insert per row.
func grtBuild(ctx *mi.Context, id *am.IndexDesc, next am.AmBuildNext) (int, error) {
	st, err := state(id)
	if err != nil {
		return 0, err
	}
	var items []grtree.BulkItem
	for {
		b, err := next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			ext, err := extentArg(b.Rows[i][0])
			if err != nil {
				return 0, err
			}
			if !ext.ValidAt(st.ct) {
				return 0, fmt.Errorf("grtblade: extent %v violates the transaction-time constraints at current time %v", ext, st.ct)
			}
			items = append(items, grtree.BulkItem{Extent: ext, Payload: grtree.Payload(b.RowIDs[i])})
		}
	}
	if err := st.tree.BulkLoad(items, st.ct); err != nil {
		return 0, err
	}
	ctx.Tracer().Tracef("grt", 1, "grt_build %s: bulk-loaded %d entries", id.Name, len(items))
	return len(items), nil
}

// grtInsert implements am_insert (Table 5, grt_insert).
func grtInsert(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	ext, err := extentArg(row[0])
	if err != nil {
		return err
	}
	if !ext.ValidAt(st.ct) {
		return fmt.Errorf("grtblade: extent %v violates the transaction-time constraints at current time %v", ext, st.ct)
	}
	return st.tree.Insert(ext, grtree.Payload(rid), st.ct)
}

// grtDelete implements am_delete (Table 5, grt_delete): the entry is located
// and removed; when the tree condenses, the live Cursor restarts (step 5 —
// the Section 5.5 compromise is inside the tree's delete policy).
func grtDelete(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	ext, err := extentArg(row[0])
	if err != nil {
		return err
	}
	removed, condensed, err := st.tree.Delete(ext, grtree.Payload(rid), st.ct)
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("grtblade: index %s has no entry for %v at %v: %w", id.Name, ext, rid, am.ErrNoEntry)
	}
	if condensed {
		ctx.Tracer().Tracef("grt", 2, "grt_delete condensed the tree; cursor will restart")
	}
	return nil
}

// grtUpdate implements am_update (Table 5, grt_update): delete the old
// entry, insert the new one.
func grtUpdate(ctx *mi.Context, id *am.IndexDesc, oldRow []types.Datum, oldRid heap.RowID, newRow []types.Datum, newRid heap.RowID) error {
	if err := grtDelete(ctx, id, oldRow, oldRid); err != nil {
		return err
	}
	return grtInsert(ctx, id, newRow, newRid)
}

// grtScanCost implements am_scancost: a height-plus-leaf-fraction estimate
// the optimizer compares with the heap page count. With collected statistics
// on the descriptor (UPDATE STATISTICS ran for the table) the leaf fraction
// is scaled by a histogram selectivity estimate for the qualification's
// valid-time window instead of the magic 0.2 constant.
func grtScanCost(ctx *mi.Context, id *am.IndexDesc, q *am.Qual) (float64, error) {
	st, err := state(id)
	if err != nil {
		return 0, err
	}
	leafNodes := float64(st.tree.Size())/float64(st.tree.Config().MaxEntries) + 1
	if id.Stats != nil && id.Stats.Lo.Rows > 0 {
		sel := qualSelectivity(id.Stats, q, st.ct)
		cost := 1 + float64(st.tree.Height()) + sel*leafNodes
		ctx.Tracer().Tracef("grt", 2, "grt_scancost %s: %.2f (stats, sel %.3f over ~%.0f leaves)",
			id.Name, cost, sel, leafNodes)
		return cost, nil
	}
	cost := float64(st.tree.Height()) + 0.2*leafNodes
	ctx.Tracer().Tracef("grt", 2, "grt_scancost %s: %.2f (height %d, ~%.0f leaves)",
		id.Name, cost, st.tree.Height(), leafNodes)
	return cost, nil
}

// qualSelectivity estimates the fraction of index entries a qualification
// touches from the collected valid-time histograms. Leaves are estimated
// with the interval-overlap formula over the query's resolved valid-time
// window; AND takes the most selective conjunct, OR saturating-adds.
func qualSelectivity(stats *am.IndexStats, q *am.Qual, ct chronon.Instant) float64 {
	if q == nil {
		return 1
	}
	switch q.Op {
	case am.QAnd:
		sel := 1.0
		for _, c := range q.Children {
			if s := qualSelectivity(stats, c, ct); s < sel {
				sel = s
			}
		}
		return sel
	case am.QOr:
		sel := 0.0
		for _, c := range q.Children {
			sel += qualSelectivity(stats, c, ct)
		}
		if sel > 1 {
			sel = 1
		}
		return sel
	case am.QFunc:
		ext, err := extentArg(q.Const)
		if err != nil {
			return 1
		}
		sh := ext.Region().Resolve(ct)
		if sh.Empty() {
			return 0
		}
		return stats.SelectivityOverlap(float64(sh.VTBegin), float64(sh.VTEnd))
	}
	return 1
}

// histogramBuckets is the equi-depth bucket count am_stats collects.
const histogramBuckets = 32

// grtStats implements am_stats: the original human-readable summary plus the
// entry count and per-axis valid-time histograms UPDATE STATISTICS persists
// into SYSSTATS. Each leaf entry's region is resolved at the blade's current
// time, so now-relative extents contribute their geometry as of collection —
// statistics are a snapshot, aged by the catalog generation stamp.
func grtStats(ctx *mi.Context, id *am.IndexDesc) (*am.IndexStats, error) {
	st, err := state(id)
	if err != nil {
		return nil, err
	}
	ts, err := st.tree.Stats(st.ct, 0, 0)
	if err != nil {
		return nil, err
	}
	var overlap float64
	for _, l := range ts.PerLevel {
		overlap += l.Overlap
	}
	summary := fmt.Sprintf("index %s: %d entries, height %d, %d nodes, sibling overlap %.0f",
		id.Name, ts.LeafEntries, ts.Height, ts.Nodes, overlap)

	lo := make([]float64, 0, ts.LeafEntries)
	hi := make([]float64, 0, ts.LeafEntries)
	err = st.tree.WalkLeaves(func(e grtree.Entry) error {
		sh := e.Region.Resolve(st.ct)
		lo = append(lo, float64(sh.VTBegin))
		hi = append(hi, float64(sh.VTEnd))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &am.IndexStats{
		Summary: summary,
		Entries: ts.LeafEntries,
		Lo:      am.BuildHistogram(lo, histogramBuckets),
		Hi:      am.BuildHistogram(hi, histogramBuckets),
	}, nil
}

// grtAggregate implements am_aggregate: COUNT is answered by the tree's
// covered-subtree traversal without producing a single rowid, MIN/MAX by the
// boundary leaf under the raw lexicographic extent key. Only single-predicate
// qualifications are claimed — compound quals decline, and the server drains
// tuples instead. MVCC visibility is the server's problem (it only trusts
// the answer when its gate proves every indexed entry visible).
func grtAggregate(ctx *mi.Context, id *am.IndexDesc, req *am.AggRequest) (*am.AggResult, bool, error) {
	st, err := state(id)
	if err != nil {
		return nil, false, err
	}
	if st.cfg.dynamic {
		// Dynamic-dispatch indexes evaluate leaves through UDRs; the
		// aggregate traversal hard-codes predicate evaluation, so decline
		// rather than disagree with the configured semantics.
		return nil, false, nil
	}
	if req.Qual == nil || req.Qual.Op != am.QFunc {
		return nil, false, nil
	}
	compound, err := compileQual(req.Qual)
	if err != nil || compound.Pred == nil {
		return nil, false, nil // not our strategy function: decline, don't fail
	}
	pred := *compound.Pred
	switch req.Kind {
	case am.AggCount:
		n, ok, err := st.tree.AggCount(pred, st.ct)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Tracer().Tracef("grt", 2, "grt_aggregate %s: count=%d", id.Name, n)
		return &am.AggResult{Count: n}, true, nil
	case am.AggMin, am.AggMax:
		r, found, ok, err := st.tree.AggExtreme(pred, st.ct, req.Kind == am.AggMax)
		if err != nil || !ok {
			return nil, false, err
		}
		if !found {
			return &am.AggResult{Empty: true}, true, nil
		}
		ext := temporal.Extent{TTBegin: r.TTBegin, TTEnd: r.TTEnd, VTBegin: r.VTBegin, VTEnd: r.VTEnd}
		val := types.Opaque{TypeID: id.ColTypes[0].OpaqueID, Data: EncodeExtent(ext)}
		ctx.Tracer().Tracef("grt", 2, "grt_aggregate %s: %s=%v", id.Name, req.Kind, ext)
		return &am.AggResult{Value: val}, true, nil
	}
	return nil, false, nil
}

// grtCheck implements am_check.
func grtCheck(ctx *mi.Context, id *am.IndexDesc) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	return st.tree.Check(st.ct)
}

// udrCurrentTime resolves UC/NOW for SQL-level strategy functions: inside a
// transaction that already fixed its current time (Section 5.4) that value
// is used; otherwise the clock is read.
func udrCurrentTime(ctx *mi.Context, e *engine.Engine) chronon.Instant {
	if v, ok := ctx.Named("grt_current_time"); ok {
		return v.(chronon.Instant)
	}
	return e.Clock().Now()
}

// strategyUDR builds the SQL-callable strategy functions (Overlaps, Equal,
// Contains, ContainedIn) used when a statement is processed without the
// index.
func strategyUDR(e *engine.Engine, op grtree.Op) am.UDRFunc {
	return func(ctx *mi.Context, args []types.Datum) (types.Datum, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("grtblade: strategy function needs 2 arguments")
		}
		a, err := extentArg(args[0])
		if err != nil {
			return nil, err
		}
		b, err := extentArg(args[1])
		if err != nil {
			return nil, err
		}
		ct := udrCurrentTime(ctx, e)
		pred := grtree.Predicate{Op: op, Query: b}
		return pred.Match(a, ct), nil
	}
}

// unionUDR is the support function GRT_Union: the minimum bounding region
// of two extents, rendered as an extent (the Rectangle flag of a
// growing-both bound is not expressible in the four timestamps; such a
// bound reads back as its stair-shaped under-approximation, which is why
// the index hard-codes its internal-region functions, Section 5.2).
func unionUDR(e *engine.Engine) am.UDRFunc {
	return func(ctx *mi.Context, args []types.Datum) (types.Datum, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("grtblade: GRT_Union needs 2 arguments")
		}
		a, err := extentArg(args[0])
		if err != nil {
			return nil, err
		}
		b, err := extentArg(args[1])
		if err != nil {
			return nil, err
		}
		ct := udrCurrentTime(ctx, e)
		u := a.Region().Union(b.Region(), ct, temporal.DefaultBoundPolicy)
		out := temporal.Extent{TTBegin: u.TTBegin, TTEnd: u.TTEnd, VTBegin: u.VTBegin, VTEnd: u.VTEnd}
		ot, _ := e.Types().Lookup(TypeName)
		return types.Opaque{TypeID: ot.ID, Data: EncodeExtent(out)}, nil
	}
}

// sizeUDR is the support function GRT_Size: the extent's area now.
func sizeUDR(e *engine.Engine) am.UDRFunc {
	return func(ctx *mi.Context, args []types.Datum) (types.Datum, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("grtblade: GRT_Size needs 1 argument")
		}
		a, err := extentArg(args[0])
		if err != nil {
			return nil, err
		}
		return a.Region().Area(udrCurrentTime(ctx, e)), nil
	}
}

// interUDR is the support function GRT_Inter: intersection area now.
func interUDR(e *engine.Engine) am.UDRFunc {
	return func(ctx *mi.Context, args []types.Datum) (types.Datum, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("grtblade: GRT_Inter needs 2 arguments")
		}
		a, err := extentArg(args[0])
		if err != nil {
			return nil, err
		}
		b, err := extentArg(args[1])
		if err != nil {
			return nil, err
		}
		return a.Region().IntersectionArea(b.Region(), udrCurrentTime(ctx, e)), nil
	}
}
