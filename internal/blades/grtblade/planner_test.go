package grtblade

import (
	"strings"
	"testing"
)

// TestPlannerPicksMatchingIndex: with two GR-tree indexes on different
// columns, the optimizer drives the scan through the index whose column the
// strategy function names (Section 4's SYSAMS/opclass check), and maintains
// both on mutation.
func TestPlannerPicksMatchingIndex(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, A GRT_TimeExtent_t, B GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX ix_a ON T(A) USING grtree_am IN spc`)
	exec(t, s, `CREATE INDEX ix_b ON T(B) USING grtree_am IN spc`)
	for i := 0; i < 20; i++ {
		m := i%9 + 1
		exec(t, s, `INSERT INTO T VALUES (`+itoa(i)+`, '`+mdy(m)+`/97, UC, `+mdy(m)+`/97, NOW', '`+mdy(m)+`/96, UC, `+mdy(m)+`/96, NOW')`)
	}
	e.EnableCallTrace(true)
	exec(t, s, `SELECT N FROM T WHERE Overlaps(B, '1/96, 2/96, 1/96, 2/96')`)
	trace := strings.Join(e.TakeCallTrace(), " ")
	e.EnableCallTrace(false)
	if !strings.Contains(trace, "am_beginscan(ix_b)") {
		t.Fatalf("query on B must scan ix_b: %s", trace)
	}
	if strings.Contains(trace, "am_beginscan(ix_a)") {
		t.Fatalf("query on B must not scan ix_a: %s", trace)
	}
	// Both indexes open (Figure 6 opens all table indexes per statement)
	// but only ix_b scans.
	if !strings.Contains(trace, "am_open(ix_a)") {
		t.Fatalf("ix_a must still be opened for the statement: %s", trace)
	}
	// Mutations: the DELETE itself touches no index (maintenance is
	// deferred to the vacuum), which then removes the dead versions'
	// entries from both indexes.
	e.EnableCallTrace(true)
	exec(t, s, `DELETE FROM T WHERE Overlaps(A, '1/97, UC, 1/97, NOW')`)
	trace = strings.Join(e.TakeCallTrace(), " ")
	if strings.Contains(trace, "am_delete(") {
		t.Fatalf("delete must defer index maintenance: %s", trace)
	}
	if n, err := e.VacuumNow(); err != nil || n == 0 {
		t.Fatalf("vacuum reclaimed %d (%v)", n, err)
	}
	trace = strings.Join(e.TakeCallTrace(), " ")
	e.EnableCallTrace(false)
	if !strings.Contains(trace, "am_delete(ix_a)") || !strings.Contains(trace, "am_delete(ix_b)") {
		t.Fatalf("vacuum must maintain both indexes: %s", trace)
	}
	exec(t, s, `CHECK INDEX ix_a`)
	exec(t, s, `CHECK INDEX ix_b`)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func mdy(m int) string { return itoa(m) }
