// Package gistblade completes the paper's Section 7 proposal: "It is also
// possible to implement such a generic access method as a DataBlade and use
// specially designed operator classes to extend it." It registers one
// access method, gist_am, whose behaviour is selected entirely by the
// operator class named in CREATE INDEX: the opclass name resolves to a
// registered gist.KeyClass, so adding a new tree-based index to the server
// means writing a key class (four primitive operations) and an opclass —
// no new purpose functions.
//
// Two operator classes ship: gist_interval_ops (one-dimensional intervals,
// queried through IntvOverlaps/IntvContains UDRs on a small opaque
// Interval_t type) and gist_grt_ops (the GR-tree's bitemporal regions,
// queried through the Overlaps/Equal/Contains/ContainedIn strategy
// functions grtblade registers — the same SQL surface, different engine
// underneath).
package gistblade

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"repro/internal/am"
	"repro/internal/blades/grtblade"
	"repro/internal/engine"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/nodestore"
	"repro/internal/sbspace"
	"repro/internal/types"
)

// LibraryPath is the blade's shared-object path.
const LibraryPath = "usr/functions/gist.bld"

// AmName is the generic access method.
const AmName = "gist_am"

// IntervalTypeName is the demo opaque interval type.
const IntervalTypeName = "Interval_t"

// KeyBinding adapts one operator class to the generic method: it supplies
// the key class and the translations between SQL values/qualifications and
// GiST keys/queries.
type KeyBinding struct {
	// Class is the GiST key class.
	Class gist.KeyClass
	// KeyOf converts an indexed column value to a leaf key.
	KeyOf func(d types.Datum) ([]byte, error)
	// QueryOf converts one qualification leaf to a GiST query.
	QueryOf func(fn string, colFirst bool, constant types.Datum) (gist.Query, error)
}

// bindings maps opclass name -> binding factory (per engine, so key classes
// can capture the engine clock).
var (
	bindingsMu sync.Mutex
	bindings   = map[string]func(e *engine.Engine) (*KeyBinding, error){}
)

// RegisterOpClassBinding makes an operator class available to gist_am.
// Third parties extend the generic method by calling this plus CREATE
// OPCLASS — the Section 7 extension story.
func RegisterOpClassBinding(opclass string, mk func(e *engine.Engine) (*KeyBinding, error)) {
	bindingsMu.Lock()
	defer bindingsMu.Unlock()
	bindings[strings.ToLower(opclass)] = mk
}

func bindingFor(e *engine.Engine, opclass string) (*KeyBinding, error) {
	bindingsMu.Lock()
	mk, ok := bindings[strings.ToLower(opclass)]
	bindingsMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gistblade: no key-class binding for operator class %q", opclass)
	}
	return mk(e)
}

// RegistrationSQL registers the blade's SQL objects.
const RegistrationSQL = `
CREATE FUNCTION gist_create(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_create)' LANGUAGE c;
CREATE FUNCTION gist_drop(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_drop)' LANGUAGE c;
CREATE FUNCTION gist_open(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_open)' LANGUAGE c;
CREATE FUNCTION gist_close(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_close)' LANGUAGE c;
CREATE FUNCTION gist_beginscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_beginscan)' LANGUAGE c;
CREATE FUNCTION gist_endscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_endscan)' LANGUAGE c;
CREATE FUNCTION gist_rescan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_rescan)' LANGUAGE c;
CREATE FUNCTION gist_getnext(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_getnext)' LANGUAGE c;
CREATE FUNCTION gist_getmulti(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_getmulti)' LANGUAGE c;
CREATE FUNCTION gist_insert(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_insert)' LANGUAGE c;
CREATE FUNCTION gist_delete(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_delete)' LANGUAGE c;
CREATE FUNCTION gist_update(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_update)' LANGUAGE c;
CREATE FUNCTION gist_check(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_check)' LANGUAGE c;
CREATE FUNCTION gist_stats(pointer) RETURNING int EXTERNAL NAME 'usr/functions/gist.bld(gist_stats)' LANGUAGE c;

CREATE FUNCTION IntvOverlaps(Interval_t, Interval_t) RETURNING boolean EXTERNAL NAME 'usr/functions/gist.bld(IntvOverlaps)' LANGUAGE c;
CREATE FUNCTION IntvContains(Interval_t, Interval_t) RETURNING boolean EXTERNAL NAME 'usr/functions/gist.bld(IntvContains)' LANGUAGE c;

CREATE SECONDARY ACCESS_METHOD gist_am (
	am_create = gist_create,
	am_drop = gist_drop,
	am_open = gist_open,
	am_close = gist_close,
	am_beginscan = gist_beginscan,
	am_endscan = gist_endscan,
	am_rescan = gist_rescan,
	am_getnext = gist_getnext,
	am_getmulti = gist_getmulti,
	am_insert = gist_insert,
	am_delete = gist_delete,
	am_update = gist_update,
	am_check = gist_check,
	am_stats = gist_stats,
	am_sptype = 'S'
);

CREATE OPCLASS gist_interval_ops FOR gist_am STRATEGIES(IntvOverlaps, IntvContains);
CREATE OPCLASS gist_grt_ops FOR gist_am STRATEGIES(Overlaps, Equal, Contains, ContainedIn);
`

// Register installs the blade. grtblade must already be registered (the
// gist_grt_ops opclass reuses its strategy UDRs and opaque type).
func Register(e *engine.Engine) error {
	if _, ok := e.Types().Lookup(grtblade.TypeName); !ok {
		return fmt.Errorf("gistblade: register grtblade first")
	}
	if err := RegisterTypes(e.Types()); err != nil {
		return err
	}
	e.LoadLibrary(LibraryPath, Library(e))
	registerBuiltinBindings()
	if _, err := e.Catalog().AmByName(AmName); err == nil {
		return nil
	}
	s := e.NewSession()
	defer s.Close()
	if _, err := s.ExecScript(RegistrationSQL); err != nil {
		return fmt.Errorf("gistblade: registration: %w", err)
	}
	return nil
}

// RegisterTypes registers the demo Interval_t opaque type ("lo..hi").
func RegisterTypes(reg *types.Registry) error {
	if _, ok := reg.Lookup(IntervalTypeName); ok {
		return nil
	}
	_, err := reg.RegisterOpaque(IntervalTypeName, types.SupportFuncs{
		Input: func(text string) ([]byte, error) {
			var lo, hi int64
			if _, err := fmt.Sscanf(strings.TrimSpace(text), "%d..%d", &lo, &hi); err != nil {
				return nil, fmt.Errorf("gistblade: interval literal is 'lo..hi', got %q", text)
			}
			if lo > hi {
				return nil, fmt.Errorf("gistblade: reversed interval %q", text)
			}
			return gist.IntervalKey(lo, hi), nil
		},
		Output: func(data []byte) (string, error) {
			if len(data) != 16 {
				return "", fmt.Errorf("gistblade: bad interval value")
			}
			lo := int64(binary.BigEndian.Uint64(data[0:8]))
			hi := int64(binary.BigEndian.Uint64(data[8:16]))
			return fmt.Sprintf("%d..%d", lo, hi), nil
		},
	})
	return err
}

func registerBuiltinBindings() {
	RegisterOpClassBinding("gist_interval_ops", func(e *engine.Engine) (*KeyBinding, error) {
		return &KeyBinding{
			Class: gist.IntervalClass{},
			KeyOf: func(d types.Datum) ([]byte, error) {
				op, ok := d.(types.Opaque)
				if !ok || len(op.Data) != 16 {
					return nil, fmt.Errorf("gistblade: expected %s, got %T", IntervalTypeName, d)
				}
				return append([]byte(nil), op.Data...), nil
			},
			QueryOf: func(fn string, colFirst bool, c types.Datum) (gist.Query, error) {
				op, ok := c.(types.Opaque)
				if !ok || len(op.Data) != 16 {
					return nil, fmt.Errorf("gistblade: interval query constant is %T", c)
				}
				lo := int64(binary.BigEndian.Uint64(op.Data[0:8]))
				hi := int64(binary.BigEndian.Uint64(op.Data[8:16]))
				switch strings.ToLower(fn) {
				case "intvoverlaps":
					return gist.IntervalOverlaps{Lo: lo, Hi: hi}, nil
				case "intvcontains":
					if colFirst {
						return gist.IntervalContains{Lo: lo, Hi: hi}, nil
					}
					// Contains(const, col): columns inside the constant —
					// a range query by containment: use overlap pruning
					// with exact re-filter by the engine.
					return gist.IntervalOverlaps{Lo: lo, Hi: hi}, nil
				}
				return nil, fmt.Errorf("gistblade: %q is not a gist_interval_ops strategy", fn)
			},
		}, nil
	})
	RegisterOpClassBinding("gist_grt_ops", func(e *engine.Engine) (*KeyBinding, error) {
		kc := gist.NewGRKeyClass(e.Clock())
		return &KeyBinding{
			Class: kc,
			KeyOf: func(d types.Datum) ([]byte, error) {
				op, ok := d.(types.Opaque)
				if !ok {
					return nil, fmt.Errorf("gistblade: expected %s, got %T", grtblade.TypeName, d)
				}
				ext, err := grtblade.DecodeExtent(op.Data)
				if err != nil {
					return nil, err
				}
				if !ext.ValidAt(e.Clock().Now()) {
					return nil, fmt.Errorf("gistblade: extent %v violates the transaction-time constraints", ext)
				}
				return gist.GRExtentKey(ext), nil
			},
			QueryOf: func(fn string, colFirst bool, c types.Datum) (gist.Query, error) {
				op, ok := c.(types.Opaque)
				if !ok {
					return nil, fmt.Errorf("gistblade: extent query constant is %T", c)
				}
				ext, err := grtblade.DecodeExtent(op.Data)
				if err != nil {
					return nil, err
				}
				var gop gist.GROp
				switch strings.ToLower(fn) {
				case "overlaps":
					gop = gist.GROverlaps
				case "equal":
					gop = gist.GREqual
				case "contains":
					gop = gist.GRContains
					if !colFirst {
						gop = gist.GRContainedIn
					}
				case "containedin":
					gop = gist.GRContainedIn
					if !colFirst {
						gop = gist.GRContains
					}
				default:
					return nil, fmt.Errorf("gistblade: %q is not a gist_grt_ops strategy", fn)
				}
				return gist.GRQuery{Op: gop, Q: ext}, nil
			},
		}, nil
	})
}

// openState is the per-open-index blade state.
type openState struct {
	store      *nodestore.LOStore
	tree       *gist.Tree
	binding    *KeyBinding
	rightAfter bool
}

func state(id *am.IndexDesc) (*openState, error) {
	st, ok := id.UserData.(*openState)
	if !ok || st == nil {
		return nil, fmt.Errorf("gistblade: index %s is not open", id.Name)
	}
	return st, nil
}

// Library returns the blade's symbol table.
func Library(e *engine.Engine) am.Library {
	binding := func(id *am.IndexDesc) (*KeyBinding, error) { return bindingFor(e, id.OpClass) }
	return am.Library{
		"gist_create": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			b, err := binding(id)
			if err != nil {
				return err
			}
			if len(id.ColTypes) != 1 {
				return fmt.Errorf("gistblade: gist_am indexes exactly one column")
			}
			if id.SpaceName == "" {
				return fmt.Errorf("gistblade: gist_am stores indexes in sbspaces; use IN <sbspace>")
			}
			space, err := id.Services.Space(id.SpaceName)
			if err != nil {
				return err
			}
			store, handle, err := nodestore.CreateLO(space, id.Services.TxID(), id.Services.Isolation(), nodestore.SingleLO)
			if err != nil {
				return err
			}
			tree, err := gist.Create(store, b.Class)
			if err != nil {
				return err
			}
			rec := make([]byte, sbspace.HandleSize)
			handle.Encode(rec)
			if err := id.Services.AMRecordPut(AmName, id.Name, rec); err != nil {
				return err
			}
			id.UserData = &openState{store: store, tree: tree, binding: b, rightAfter: true}
			return nil
		}),
		"gist_open": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			if st, ok := id.UserData.(*openState); ok && st != nil && st.rightAfter {
				st.rightAfter = false
				return nil
			}
			b, err := binding(id)
			if err != nil {
				return err
			}
			rec, ok, err := id.Services.AMRecordGet(AmName, id.Name)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("gistblade: index %s has no access-method record", id.Name)
			}
			space, err := id.Services.Space(id.SpaceName)
			if err != nil {
				return err
			}
			mode := sbspace.ReadWrite
			if id.ReadOnly {
				mode = sbspace.ReadOnly
			}
			store, err := nodestore.OpenLO(space, id.Services.TxID(), id.Services.Isolation(), sbspace.DecodeHandle(rec), mode)
			if err != nil {
				return err
			}
			tree, err := gist.Open(store, b.Class)
			if err != nil {
				store.Close()
				return err
			}
			id.UserData = &openState{store: store, tree: tree, binding: b}
			return nil
		}),
		"gist_close": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			st, err := state(id)
			if err != nil {
				return err
			}
			if err := st.store.Close(); err != nil {
				return err
			}
			id.UserData = nil
			return nil
		}),
		"gist_drop": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			st, err := state(id)
			if err != nil {
				return err
			}
			if err := st.store.Drop(); err != nil {
				return err
			}
			id.UserData = nil
			return id.Services.AMRecordDelete(AmName, id.Name)
		}),
		"gist_beginscan": am.AmScanFunc(gistBeginScan),
		"gist_endscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			sd.UserData = nil
			return nil
		}),
		"gist_rescan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			sc, ok := sd.UserData.(*scanState)
			if !ok {
				return fmt.Errorf("gistblade: rescan without a scan")
			}
			if sd.Batch != nil {
				sd.Batch.Reset()
			}
			sc.pos = 0
			return nil
		}),
		"gist_getnext": am.AmGetNextFunc(func(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
			sc, ok := sd.UserData.(*scanState)
			if !ok {
				return 0, nil, false, fmt.Errorf("gistblade: getnext without beginscan")
			}
			if sc.pos >= len(sc.rows) {
				return 0, nil, false, nil
			}
			rid := sc.rows[sc.pos]
			sc.pos++
			return rid, nil, true, nil
		}),
		// gist_getmulti: the batched companion — one dispatch hands the
		// server a slice of the materialised candidate rowids (rows stay
		// nil; the engine's WHERE re-filter restores exactness).
		"gist_getmulti": am.AmGetMultiFunc(func(ctx *mi.Context, sd *am.ScanDesc) (int, error) {
			sc, ok := sd.UserData.(*scanState)
			if !ok {
				return 0, fmt.Errorf("gistblade: getmulti without beginscan")
			}
			b := sd.Batch
			b.Reset()
			for !b.Full() && sc.pos < len(sc.rows) {
				b.Append(sc.rows[sc.pos], nil)
				sc.pos++
			}
			return b.N, nil
		}),
		"gist_insert": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			st, err := state(id)
			if err != nil {
				return err
			}
			key, err := st.binding.KeyOf(row[0])
			if err != nil {
				return err
			}
			return st.tree.Insert(key, gist.Payload(rid))
		}),
		"gist_delete": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			st, err := state(id)
			if err != nil {
				return err
			}
			key, err := st.binding.KeyOf(row[0])
			if err != nil {
				return err
			}
			removed, err := st.tree.Delete(key, gist.Payload(rid))
			if err != nil {
				return err
			}
			if !removed {
				return fmt.Errorf("gistblade: index %s has no entry for row %v: %w", id.Name, rid, am.ErrNoEntry)
			}
			return nil
		}),
		"gist_update": am.AmUpdateFunc(func(ctx *mi.Context, id *am.IndexDesc, oldRow []types.Datum, oldRid heap.RowID, newRow []types.Datum, newRid heap.RowID) error {
			st, err := state(id)
			if err != nil {
				return err
			}
			okey, err := st.binding.KeyOf(oldRow[0])
			if err != nil {
				return err
			}
			removed, err := st.tree.Delete(okey, gist.Payload(oldRid))
			if err != nil {
				return err
			}
			if !removed {
				return fmt.Errorf("gistblade: update of missing entry %v", oldRid)
			}
			nkey, err := st.binding.KeyOf(newRow[0])
			if err != nil {
				return err
			}
			return st.tree.Insert(nkey, gist.Payload(newRid))
		}),
		"gist_check": am.AmCheckFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			st, err := state(id)
			if err != nil {
				return err
			}
			return st.tree.Check()
		}),
		// gist_stats: the generic method knows nothing about its keys'
		// value domain, so it reports the entry count without histograms —
		// the row-count fallback family of statistics-backed costing.
		"gist_stats": am.AmStatsFunc(func(ctx *mi.Context, id *am.IndexDesc) (*am.IndexStats, error) {
			st, err := state(id)
			if err != nil {
				return nil, err
			}
			return &am.IndexStats{
				Summary: fmt.Sprintf("index %s: %d entries, height %d",
					id.Name, st.tree.Size(), st.tree.Height()),
				Entries: st.tree.Size(),
			}, nil
		}),

		"IntvOverlaps": intervalUDR(func(a0, a1, b0, b1 int64) bool { return a0 <= b1 && b0 <= a1 }),
		"IntvContains": intervalUDR(func(a0, a1, b0, b1 int64) bool { return a0 <= b0 && b1 <= a1 }),
	}
}

type scanState struct {
	rows []heap.RowID
	pos  int
}

// gistBeginScan translates the qualification into GiST queries. Only
// conjunctions and single leaves are pushed down (the candidate set is the
// intersection-superset via the first leaf; the engine's WHERE re-filter
// restores exactness); disjunctions run each branch and union.
func gistBeginScan(ctx *mi.Context, sd *am.ScanDesc) error {
	st, err := state(sd.Index)
	if err != nil {
		return err
	}
	if sd.Qual == nil {
		return fmt.Errorf("gistblade: scan without qualification")
	}
	seen := map[heap.RowID]bool{}
	var rows []heap.RowID
	for _, leaf := range sd.Qual.Leaves() {
		q, err := st.binding.QueryOf(leaf.Func, leaf.ColFirst, leaf.Const)
		if err != nil {
			return err
		}
		ps, err := st.tree.Search(q)
		if err != nil {
			return err
		}
		for _, p := range ps {
			rid := heap.RowID(p)
			if !seen[rid] {
				seen[rid] = true
				rows = append(rows, rid)
			}
		}
		// For a pure conjunction the first leaf's candidates suffice.
		if sd.Qual.Op == am.QAnd || sd.Qual.Op == am.QFunc {
			break
		}
	}
	sd.UserData = &scanState{rows: rows}
	ctx.Tracer().Tracef("gist", 2, "gist_beginscan %s: %d candidates", sd.Index.Name, len(rows))
	return nil
}

func intervalUDR(pred func(a0, a1, b0, b1 int64) bool) am.UDRFunc {
	return func(ctx *mi.Context, args []types.Datum) (types.Datum, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("gistblade: interval strategy needs 2 arguments")
		}
		a, ok1 := args[0].(types.Opaque)
		b, ok2 := args[1].(types.Opaque)
		if !ok1 || !ok2 || len(a.Data) != 16 || len(b.Data) != 16 {
			return nil, fmt.Errorf("gistblade: interval strategy arguments must be %s", IntervalTypeName)
		}
		a0 := int64(binary.BigEndian.Uint64(a.Data[0:8]))
		a1 := int64(binary.BigEndian.Uint64(a.Data[8:16]))
		b0 := int64(binary.BigEndian.Uint64(b.Data[0:8]))
		b1 := int64(binary.BigEndian.Uint64(b.Data[8:16]))
		return pred(a0, a1, b0, b1), nil
	}
}
