package gistblade

import (
	"fmt"
	"strings"
	"testing"
)

// The generic method binds no am_aggregate: every aggregate over a
// gist-indexed qualification declines by omission and drains tuples. These
// tests pin that fallback (counters and agreement), the prepared EXECUTE
// path, and gist_stats' histogram-free row-count statistics.

func TestAggregateFallbackByOmission(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 60; i++ {
		lo := (i * 13) % 500
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, lo, lo+25))
	}

	q := `SELECT COUNT(*) FROM Spans WHERE IntvOverlaps(R, '100..130')`
	want := exec(t, s, q+` AND N >= 0`).Rows[0][0] // residual: unambiguous drain

	fallback := e.Obs().Counter("agg.fallback").Load()
	aggCalls := e.Obs().Counter("am.am_aggregate").Load()
	got := exec(t, s, q).Rows[0][0]
	if got != want {
		t.Fatalf("COUNT(*) via gist fallback = %v, drain says %v", got, want)
	}
	if e.Obs().Counter("agg.fallback").Load() == fallback {
		t.Fatal("slotless gist_am did not advance agg.fallback")
	}
	if e.Obs().Counter("am.am_aggregate").Load() != aggCalls {
		t.Fatal("am_aggregate was called on an AM that binds none")
	}
}

// Prepared aggregate EXECUTEs over gist_am drain on both the fresh and the
// cached plan, and stay exact.
func TestAggregatePreparedExecuteFallback(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 40; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, i*10, i*10+15))
	}
	exec(t, s, `PREPARE cnt AS SELECT COUNT(*) FROM Spans WHERE IntvOverlaps(R, $1)`)
	want := exec(t, s, `SELECT COUNT(*) FROM Spans WHERE IntvOverlaps(R, '100..200') AND N >= 0`).Rows[0][0]

	for run := 0; run < 2; run++ {
		fallback := e.Obs().Counter("agg.fallback").Load()
		got := exec(t, s, `EXECUTE cnt ('100..200')`).Rows[0][0]
		if got != want {
			t.Fatalf("run %d: EXECUTE count %v, want %v", run, got, want)
		}
		if e.Obs().Counter("agg.fallback").Load() == fallback {
			t.Fatalf("run %d: prepared gist aggregate did not drain", run)
		}
	}
}

// UPDATE STATISTICS runs gist_stats: an entry count without histograms (the
// generic method cannot see its keys' value domain), published to SYSSTATS
// by the FOR TABLE form and reported raw by FOR INDEX.
func TestGistStats(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 25; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, i, i+5))
	}

	res := exec(t, s, `UPDATE STATISTICS FOR INDEX span_ix`)
	if !strings.Contains(res.Message, "25 entries") {
		t.Fatalf("FOR INDEX message: %q", res.Message)
	}

	res = exec(t, s, `UPDATE STATISTICS FOR TABLE Spans`)
	if !strings.Contains(res.Message, "25 rows") || !strings.Contains(res.Message, "1 index(es)") {
		t.Fatalf("FOR TABLE message: %q", res.Message)
	}

	// The published statistics feed EXPLAIN's cost source line.
	plan := exec(t, s, `EXPLAIN SELECT N FROM Spans WHERE IntvOverlaps(R, '3..8')`)
	var text strings.Builder
	for _, l := range plan.Plan.Lines() {
		text.WriteString(l)
		text.WriteString("\n")
	}
	if !strings.Contains(text.String(), "cost source: stats(age 0)") {
		t.Fatalf("post-statistics EXPLAIN must name the stats family:\n%s", text.String())
	}
}
