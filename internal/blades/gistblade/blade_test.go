package gistblade

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
)

func newDB(t *testing.T) (*engine.Engine, *chronon.VirtualClock) {
	t.Helper()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := grtblade.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	return e, clock
}

func exec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func TestRegisterRequiresGrtblade(t *testing.T) {
	e, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := Register(e); err == nil {
		t.Fatal("registration without grtblade must fail")
	}
}

// TestIntervalOpClass: the generic access method with the interval key
// class, end to end through SQL.
func TestIntervalOpClass(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 300; i++ {
		lo := (i * 13) % 2000
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, lo, lo+25))
	}
	exec(t, s, `CHECK INDEX span_ix`)

	q := `SELECT N FROM Spans WHERE IntvOverlaps(R, '100..130')`
	withIndex := rowInts(t, exec(t, s, q))
	exec(t, s, `DROP INDEX span_ix`)
	seq := rowInts(t, exec(t, s, q))
	if strings.Join(withIndex, ",") != strings.Join(seq, ",") {
		t.Fatalf("interval index vs seqscan: %v vs %v", withIndex, seq)
	}
	if len(withIndex) == 0 {
		t.Fatal("no overlaps found")
	}
}

// TestGRTOpClass: the same bitemporal SQL surface as grtree_am, powered by
// the generic method with the GR key class — and it agrees with both the
// dedicated grtree_am index and a sequential scan.
func TestGRTOpClass(t *testing.T) {
	e, clock := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX gix ON T(X gist_grt_ops) USING gist_am IN spc`)
	for i := 0; i < 150; i++ {
		m := i%9 + 1
		var ext string
		if i%2 == 0 {
			ext = fmt.Sprintf("%d/97, UC, %d/97, NOW", m, m)
		} else {
			ext = fmt.Sprintf("%d/96, %d/96, %d/95, %d/96", m, m+2, m, m)
		}
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s')`, i, ext))
	}
	exec(t, s, `CHECK INDEX gix`)

	queries := []string{
		`SELECT N FROM T WHERE Overlaps(X, '5/97, 6/97, 5/97, 6/97')`,
		`SELECT N FROM T WHERE Equal(X, '3/97, UC, 3/97, NOW')`,
		`SELECT N FROM T WHERE ContainedIn(X, '1/97, UC, 1/96, NOW')`,
		`SELECT N FROM T WHERE Contains(X, '6/15/97, 6/16/97, 5/97, 5/97')`,
	}
	gistAnswers := make([]string, len(queries))
	for i, q := range queries {
		gistAnswers[i] = strings.Join(rowInts(t, exec(t, s, q)), ",")
	}
	exec(t, s, `DROP INDEX gix`)
	for i, q := range queries {
		seq := strings.Join(rowInts(t, exec(t, s, q)), ",")
		if seq != gistAnswers[i] {
			t.Fatalf("query %d: gist %q vs seqscan %q", i, gistAnswers[i], seq)
		}
	}

	// Growth is visible through the generic path too.
	exec(t, s, `CREATE INDEX gix ON T(X gist_grt_ops) USING gist_am IN spc`)
	q := `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/98, 2/98, 1/98, 2/98')`
	before := exec(t, s, q).Rows[0][0].(int64)
	clock.Set(chronon.MustParse("3/98"))
	after := exec(t, s, q).Rows[0][0].(int64)
	if before != 0 || after == 0 {
		t.Fatalf("growth through gist_am: before=%d after=%d", before, after)
	}
}

// TestGistUpdateDelete: mutation through the generic purpose functions.
func TestGistUpdateDelete(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 100; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, i*10, i*10+5))
	}
	res := exec(t, s, `UPDATE Spans SET R = '5000..5005' WHERE IntvOverlaps(R, '0..55')`)
	if res.Affected != 6 {
		t.Fatalf("updated %d", res.Affected)
	}
	exec(t, s, `CHECK INDEX ix`)
	res = exec(t, s, `DELETE FROM Spans WHERE IntvOverlaps(R, '5000..5005')`)
	if res.Affected != 6 {
		t.Fatalf("deleted %d", res.Affected)
	}
	exec(t, s, `CHECK INDEX ix`)
	res = exec(t, s, `SELECT COUNT(*) FROM Spans`)
	if res.Rows[0][0].(int64) != 94 {
		t.Fatalf("count %v", res.Rows[0][0])
	}
}

// TestUnknownOpClassBinding: a catalogued opclass without a Go key-class
// binding is a clean error at index creation.
func TestUnknownOpClassBinding(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (R Interval_t)`)
	// Register an opclass with no binding.
	exec(t, s, `CREATE OPCLASS gist_orphan_ops FOR gist_am STRATEGIES(IntvOverlaps)`)
	if _, err := s.Exec(`CREATE INDEX ox ON T(R gist_orphan_ops) USING gist_am IN spc`); err == nil {
		t.Fatal("index under an unbound opclass must fail")
	}
}

func rowInts(t *testing.T, res *engine.Result) []string {
	t.Helper()
	var out []string
	for _, row := range res.Rows {
		out = append(out, fmt.Sprint(row[0]))
	}
	sort.Strings(out)
	return out
}
