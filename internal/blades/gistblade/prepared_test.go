package gistblade

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

// Prepared-vs-unprepared agreement through the generic access method, for
// both key classes it ships: intervals (IntvOverlaps) and bitemporal GR
// extents (Overlaps/Equal/ContainedIn/Contains). Every template runs twice
// so the second execution exercises the shared plan cache.
func TestPreparedAgreementQualMatrix(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)

	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 120; i++ {
		lo := (i * 13) % 900
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, lo, lo+25))
	}

	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX gix ON T(X gist_grt_ops) USING gist_am IN spc`)
	for i := 0; i < 80; i++ {
		m := i%9 + 1
		var ext string
		if i%2 == 0 {
			ext = fmt.Sprintf("%d/97, UC, %d/97, NOW", m, m)
		} else {
			ext = fmt.Sprintf("%d/96, %d/96, %d/95, %d/96", m, m+2, m, m)
		}
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s')`, i, ext))
	}

	cases := []struct {
		name string
		tmpl string
		lit  string
		arg  string
	}{
		{"intv-overlaps", `SELECT N FROM Spans WHERE IntvOverlaps(R, $1)`,
			`SELECT N FROM Spans WHERE IntvOverlaps(R, '%s')`, `100..130`},
		{"intv-overlaps-wide", `SELECT N FROM Spans WHERE IntvOverlaps(R, $1)`,
			`SELECT N FROM Spans WHERE IntvOverlaps(R, '%s')`, `0..900`},
		{"grt-overlaps", `SELECT N FROM T WHERE Overlaps(X, $1)`,
			`SELECT N FROM T WHERE Overlaps(X, '%s')`, `5/97, 6/97, 5/97, 6/97`},
		{"grt-equal", `SELECT N FROM T WHERE Equal(X, $1)`,
			`SELECT N FROM T WHERE Equal(X, '%s')`, `3/97, UC, 3/97, NOW`},
		{"grt-containedin", `SELECT N FROM T WHERE ContainedIn(X, $1)`,
			`SELECT N FROM T WHERE ContainedIn(X, '%s')`, `1/97, UC, 1/96, NOW`},
		{"grt-contains", `SELECT N FROM T WHERE Contains(X, $1)`,
			`SELECT N FROM T WHERE Contains(X, '%s')`, `6/15/97, 6/16/97, 5/97, 5/97`},
	}
	for i, tc := range cases {
		stmt := fmt.Sprintf("gq%d", i)
		exec(t, s, fmt.Sprintf(`PREPARE %s AS %s`, stmt, tc.tmpl))
		want := strings.Join(rowInts(t, exec(t, s, fmt.Sprintf(tc.lit, tc.arg))), ",")
		for pass := 0; pass < 2; pass++ {
			res, err := s.ExecutePrepared(nil, stmt, []types.Datum{tc.arg})
			if err != nil {
				t.Fatalf("%s pass %d: %v", tc.name, pass, err)
			}
			if got := strings.Join(rowInts(t, res), ","); got != want {
				t.Fatalf("%s pass %d: prepared %q vs literal %q", tc.name, pass, got, want)
			}
		}
	}
	if e.Obs().Counter("plan_cache.hits").Load() == 0 {
		t.Fatal("the matrix never hit the plan cache")
	}
}
