package gistblade

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestOnlineBuildFallbackConcurrentDML covers the no-am_build path of the
// online index build: gist_am exposes no bulk-load slot, so the builder
// falls back to batched am_insert over the snapshot scan while writer
// goroutines race it with inserts and deletes captured by the side log.
// Run under -race by make check.
func TestOnlineBuildFallbackConcurrentDML(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	for i := 0; i < 200; i++ {
		lo := (i * 13) % 2000
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, lo, lo+25))
	}

	const writers = 3
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	started := make(chan struct{})
	e.SetBuildHookForTesting(func(stage string) error {
		if stage == "bulk" {
			close(started)
			wg.Wait()
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-started
			ws := e.NewSession()
			defer ws.Close()
			for i := 0; i < 10; i++ {
				n := 1000 + w*100 + i
				lo := (n * 7) % 2000
				if _, err := ws.Exec(fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, n, lo, lo+40)); err != nil {
					writerErr <- err
					return
				}
				switch i % 3 {
				case 0:
					if _, err := ws.Exec(fmt.Sprintf(`DELETE FROM Spans WHERE N = %d`, n)); err != nil {
						writerErr <- err
						return
					}
				case 1:
					if _, err := ws.Exec(fmt.Sprintf(`UPDATE Spans SET R = '%d..%d' WHERE N = %d`, lo+500, lo+530, n)); err != nil {
						writerErr <- err
						return
					}
				}
			}
		}(w)
	}

	builds := e.Obs().Snapshot().Get("am.am_build")
	replayed := e.Obs().Snapshot().Get("idxbuild.sidelog_replayed")
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	e.SetBuildHookForTesting(nil)
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}
	if e.Obs().Snapshot().Get("am.am_build") != builds {
		t.Fatal("gist_am has no am_build slot; the fallback must not call one")
	}
	if e.Obs().Snapshot().Get("idxbuild.sidelog_replayed") == replayed {
		t.Fatal("no side-log ops replayed: writers did not overlap the build")
	}

	exec(t, s, `CHECK INDEX span_ix`)
	queries := []string{
		`SELECT N FROM Spans WHERE IntvOverlaps(R, '100..130')`,
		`SELECT N FROM Spans WHERE IntvOverlaps(R, '500..560')`,
		`SELECT N FROM Spans WHERE IntvOverlaps(R, '0..2100')`,
	}
	withIndex := make([]string, len(queries))
	for i, q := range queries {
		withIndex[i] = strings.Join(rowInts(t, exec(t, s, q)), ",")
	}
	exec(t, s, `DROP INDEX span_ix`)
	for i, q := range queries {
		if seq := strings.Join(rowInts(t, exec(t, s, q)), ","); withIndex[i] != seq {
			t.Fatalf("query %d: fallback-built index %q vs seqscan %q", i, withIndex[i], seq)
		}
	}
}

// TestBuildModeBulkRejectedWithoutSlot pins the build='bulk' contract: an
// access method without am_build cannot honour an explicit bulk request.
func TestBuildModeBulkRejectedWithoutSlot(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	if _, err := s.Exec(`CREATE INDEX bx ON Spans(R gist_interval_ops) USING gist_am (build='bulk') IN spc`); err == nil {
		t.Fatal("build='bulk' on an AM without am_build must fail")
	}
	// build='insert' is always available.
	exec(t, s, `CREATE INDEX bx ON Spans(R gist_interval_ops) USING gist_am (build='insert') IN spc`)
	exec(t, s, `CHECK INDEX bx`)
}
