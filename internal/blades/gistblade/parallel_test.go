package gistblade

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestParallelOfferFallsBackToSerial: gist_am binds no am_parallelscan, so
// under SET PARALLEL the planner must keep the scan serial (no workers= line
// in EXPLAIN) and the answers must be unchanged — the degraded path of the
// VII negotiation, not an error.
func TestParallelOfferFallsBackToSerial(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		old := runtime.GOMAXPROCS(4) // SET PARALLEL caps the degree at GOMAXPROCS
		defer runtime.GOMAXPROCS(old)
	}
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE Spans (N INTEGER, R Interval_t)`)
	exec(t, s, `CREATE INDEX span_ix ON Spans(R gist_interval_ops) USING gist_am IN spc`)
	for i := 0; i < 200; i++ {
		lo := (i * 13) % 2000
		exec(t, s, fmt.Sprintf(`INSERT INTO Spans VALUES (%d, '%d..%d')`, i, lo, lo+25))
	}

	q := `SELECT N FROM Spans WHERE IntvOverlaps(R, '100..400')`
	serial := rowInts(t, exec(t, s, q))
	if len(serial) == 0 {
		t.Fatal("no overlaps found")
	}

	exec(t, s, `SET PARALLEL 4`)
	defer exec(t, s, `SET PARALLEL 0`)
	ex := exec(t, s, fmt.Sprintf(`EXPLAIN %s`, q))
	if strings.Contains(ex.Plan.String(), "workers=") {
		t.Fatalf("gist_am binds no am_parallelscan; plan must stay serial:\n%s", ex.Plan)
	}
	if ex.Plan.Workers > 1 {
		t.Fatalf("Plan.Workers = %d for an AM without am_parallelscan", ex.Plan.Workers)
	}
	par := rowInts(t, exec(t, s, q))
	if strings.Join(serial, ",") != strings.Join(par, ",") {
		t.Fatalf("fallback changed the answer: %v vs %v", serial, par)
	}
}
