package rstblade

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/rstar"
	"repro/internal/temporal"
)

func newDB(t *testing.T) (*engine.Engine, *chronon.VirtualClock) {
	t.Helper()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := grtblade.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := Register(e); err != nil {
		t.Fatal(err)
	}
	return e, clock
}

func exec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func names(res *engine.Result) string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[0].(string))
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func TestRegisterRequiresGrtblade(t *testing.T) {
	e, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := Register(e); err == nil {
		t.Fatal("registration without grtblade must fail")
	}
}

// TestMaxSubstitutionCorrectness: under nowsub='max' the answers match the
// GR-tree's on every query (the index may overfetch; the residual filter
// fixes exactness).
func TestMaxSubstitutionCorrectness(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX rst_ix ON T(X rst_opclass) USING rstree_am (nowsub='max') IN spc`)
	rows := [][2]string{
		{"John", "4/97, UC, 3/97, 5/97"},
		{"Tom", "3/97, 7/97, 6/97, 8/97"},
		{"Jane", "5/97, UC, 5/97, NOW"},
		{"Julie", "3/97, 7/97, 3/97, NOW"},
		{"Michelle", "5/97, UC, 3/97, NOW"},
	}
	for _, r := range rows {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('%s', '%s')`, r[0], r[1]))
	}
	exec(t, s, `CHECK INDEX rst_ix`)

	queries := []string{
		`SELECT Name FROM T WHERE Overlaps(X, '6/97, 7/97, 6/97, 7/97')`,
		`SELECT Name FROM T WHERE Overlaps(X, '12/10/95, UC, 12/10/95, NOW')`,
		`SELECT Name FROM T WHERE Contains(X, '6/97, 6/97, 4/97, 4/97')`,
		`SELECT Name FROM T WHERE ContainedIn(X, '1/97, UC, 1/97, NOW')`,
		`SELECT Name FROM T WHERE Equal(X, '3/97, 7/97, 6/97, 8/97')`,
	}
	indexed := make([]string, len(queries))
	for i, q := range queries {
		indexed[i] = names(exec(t, s, q))
	}
	exec(t, s, `DROP INDEX rst_ix`)
	for i, q := range queries {
		if got := names(exec(t, s, q)); got != indexed[i] {
			t.Fatalf("query %d: indexed %q vs seqscan %q", i, indexed[i], got)
		}
	}
}

// TestAsOfSubstitutionLosesGrowth demonstrates the recall loss of the
// insertion-time substitution: after the clock advances, the frozen
// rectangles miss queries the grown regions would satisfy.
func TestAsOfSubstitutionLosesGrowth(t *testing.T) {
	e, clock := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX ix ON T(X rst_opclass) USING rstree_am (nowsub='asof') IN spc`)
	exec(t, s, `INSERT INTO T VALUES ('Jane', '5/97, UC, 5/97, NOW')`)

	clock.Set(chronon.MustParse("6/98"))
	q := `SELECT Name FROM T WHERE Overlaps(X, '1/98, 2/98, 1/98, 2/98')`
	got := names(exec(t, s, q))
	if got != "" {
		t.Fatalf("asof index unexpectedly found the grown tuple: %q", got)
	}
	// The true answer (via sequential scan) includes Jane.
	exec(t, s, `DROP INDEX ix`)
	if got := names(exec(t, s, q)); got != "Jane" {
		t.Fatalf("seqscan truth: %q", got)
	}
	// Rebuilding the index at the new time restores recall — the periodic
	// rebuild the substitution baselines need.
	exec(t, s, `CREATE INDEX ix ON T(X rst_opclass) USING rstree_am (nowsub='asof') IN spc`)
	if got := names(exec(t, s, q)); got != "Jane" {
		t.Fatalf("rebuilt asof index: %q", got)
	}
}

func TestDeleteAndUpdateThroughBaseline(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX ix ON T(X rst_opclass) USING rstree_am (nowsub='asof') IN spc`)
	for i := 0; i < 40; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/97, UC, %d/97, NOW')`, i, i%9+1, i%9+1))
	}
	exec(t, s, `CHECK INDEX ix`)
	res := exec(t, s, `UPDATE T SET X = '1/97, 8/31/97, 1/97, NOW' WHERE Equal(X, '1/97, UC, 1/97, NOW')`)
	if res.Affected == 0 {
		t.Fatal("update matched nothing")
	}
	exec(t, s, `CHECK INDEX ix`)
	res = exec(t, s, `DELETE FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`)
	if res.Affected != 40 {
		t.Fatalf("deleted %d", res.Affected)
	}
	exec(t, s, `CHECK INDEX ix`)
	res = exec(t, s, `SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("count %v", res.Rows[0][0])
	}
}

func TestMapExtent(t *testing.T) {
	ct := chronon.MustParse("9/97")
	maxTS := DefaultMaxTimestamp
	grow := temporal.MustParseExtent("5/97, UC, 5/97, NOW")
	r := MapExtent(grow, SubMax, maxTS, ct)
	if r.XMax != int64(maxTS) || r.YMax != int64(maxTS) {
		t.Fatalf("max substitution: %v", r)
	}
	r = MapExtent(grow, SubAsOf, maxTS, ct)
	if r.XMax != int64(ct) || r.YMax != int64(ct) {
		t.Fatalf("asof substitution: %v", r)
	}
	static := temporal.MustParseExtent("3/97, 7/97, 6/97, 8/97")
	r1 := MapExtent(static, SubMax, maxTS, ct)
	r2 := MapExtent(static, SubAsOf, maxTS, ct)
	if r1 != r2 {
		t.Fatalf("ground extents map identically: %v vs %v", r1, r2)
	}
	if r1 == (rstar.Rect{}) {
		t.Fatal("empty mapping")
	}
}

func TestBadParameters(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`)
	for _, bad := range []string{
		`CREATE INDEX b1 ON T(X rst_opclass) USING rstree_am (nowsub='weird') IN spc`,
		`CREATE INDEX b2 ON T(X rst_opclass) USING rstree_am (maxts='zzz') IN spc`,
		`CREATE INDEX b3 ON T(N rst_opclass) USING rstree_am IN spc`,
		`CREATE INDEX b4 ON T(X rst_opclass) USING rstree_am`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Fatalf("%s must fail", bad)
		}
	}
}
