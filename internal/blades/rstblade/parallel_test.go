package rstblade

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// forceParallel raises GOMAXPROCS for the test: SET PARALLEL caps the degree
// at GOMAXPROCS and CI containers may expose a single CPU; the protocol's
// correctness does not depend on real hardware parallelism.
func forceParallel(t *testing.T) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= 4 {
		return
	}
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestParallelScanAgreesWithSerial: the R*-baseline's rst_parallelscan (root
// fan-out over the conservative query rectangle) combined with the engine's
// worker pool returns exactly the serial result set, with the residual
// filter still fixing the substitution's overfetch and the rows-scanned
// profile in agreement.
func TestParallelScanAgreesWithSerial(t *testing.T) {
	forceParallel(t)
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX rst_ix ON T(X rst_opclass) USING rstree_am (nowsub='max', maxentries=8) IN spc`)
	for i := 0; i < 300; i++ {
		m, y := i%12+1, 90+(i/12)%7 // 1/90 .. 12/96, all before the 9/97 current time
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('emp%d', '%d/%d, UC, %d/%d, NOW')`, i, m, y, m, y))
	}
	exec(t, s, `CHECK INDEX rst_ix`)

	queries := []string{
		`SELECT Name FROM T WHERE Overlaps(X, '1/90, UC, 1/90, NOW')`,
		`SELECT Name FROM T WHERE Overlaps(X, '6/93, 7/95, 6/93, 7/95')`,
		`SELECT Name FROM T WHERE ContainedIn(X, '1/92, UC, 1/92, NOW')`,
	}
	for i, q := range queries {
		serial := exec(t, s, q)
		exec(t, s, `SET PARALLEL 4`)
		par := exec(t, s, q)
		exec(t, s, `SET PARALLEL 0`)
		if names(serial) != names(par) {
			t.Fatalf("query %d: serial %q vs parallel %q", i, names(serial), names(par))
		}
		if serial.Stats.RowsScanned != par.Stats.RowsScanned {
			t.Fatalf("query %d rows scanned: serial=%d parallel=%d", i, serial.Stats.RowsScanned, par.Stats.RowsScanned)
		}
	}

	exec(t, s, `SET PARALLEL 4`)
	ex := exec(t, s, `EXPLAIN SELECT Name FROM T WHERE Overlaps(X, '1/90, UC, 1/90, NOW')`)
	if !strings.Contains(ex.Plan.String(), "workers=") {
		t.Fatalf("EXPLAIN missing workers=N:\n%s", ex.Plan)
	}
}
