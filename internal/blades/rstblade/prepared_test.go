package rstblade

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// Prepared-vs-unprepared agreement over the R*-tree qual matrix under
// nowsub='max'. Each template executes twice (second run is a plan-cache
// hit) and must agree with the literal ad-hoc SELECT every time.
func TestPreparedAgreementQualMatrix(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX rst_ix ON T(X rst_opclass) USING rstree_am (nowsub='max') IN spc`)
	for _, r := range [][2]string{
		{"John", "4/97, UC, 3/97, 5/97"},
		{"Tom", "3/97, 7/97, 6/97, 8/97"},
		{"Jane", "5/97, UC, 5/97, NOW"},
		{"Julie", "3/97, 7/97, 3/97, NOW"},
		{"Michelle", "5/97, UC, 3/97, NOW"},
	} {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('%s', '%s')`, r[0], r[1]))
	}

	cases := []struct {
		fn  string
		arg string
	}{
		{"Overlaps", "6/97, 7/97, 6/97, 7/97"},
		{"Overlaps", "12/10/95, UC, 12/10/95, NOW"},
		{"Contains", "6/97, 6/97, 4/97, 4/97"},
		{"ContainedIn", "1/97, UC, 1/97, NOW"},
		{"Equal", "3/97, 7/97, 6/97, 8/97"},
	}
	for i, tc := range cases {
		stmt := fmt.Sprintf("rq%d", i)
		exec(t, s, fmt.Sprintf(`PREPARE %s AS SELECT Name FROM T WHERE %s(X, $1)`, stmt, tc.fn))
		want := names(exec(t, s, fmt.Sprintf(`SELECT Name FROM T WHERE %s(X, '%s')`, tc.fn, tc.arg)))
		for pass := 0; pass < 2; pass++ {
			res, err := s.ExecutePrepared(nil, stmt, []types.Datum{tc.arg})
			if err != nil {
				t.Fatalf("%s(%s) pass %d: %v", tc.fn, tc.arg, pass, err)
			}
			if got := names(res); got != want {
				t.Fatalf("%s(%s) pass %d: prepared %q vs literal %q", tc.fn, tc.arg, pass, got, want)
			}
		}
	}
	if e.Obs().Counter("plan_cache.hits").Load() == 0 {
		t.Fatal("the matrix never hit the plan cache")
	}
}
