package rstblade

import (
	"fmt"
	"sync"
	"testing"
)

// bext returns a deterministic extent valid at the test clock's 9/97,
// cycling through the open/closed tt and vt combinations.
func bext(i int) string {
	m := i%9 + 1
	switch i % 4 {
	case 0:
		return fmt.Sprintf("%d/97, UC, %d/97, NOW", m, i%m+1)
	case 1:
		tt1, vt1 := i%5+1, i%6+1
		return fmt.Sprintf("%d/97, %d/97, %d/97, %d/97", tt1, tt1+i%4, vt1, vt1+i%4)
	case 2:
		vt1 := i%7 + 1
		return fmt.Sprintf("%d/97, UC, %d/97, %d/97", m, vt1, vt1+i%3)
	default:
		tt1 := i%5 + 2
		return fmt.Sprintf("%d/97, %d/97, %d/97, NOW", tt1, tt1+i%3, i%tt1+1)
	}
}

var buildQueries = []string{
	`SELECT Name FROM T WHERE Overlaps(X, '6/97, 7/97, 6/97, 7/97')`,
	`SELECT Name FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`,
	`SELECT Name FROM T WHERE Equal(X, '3/97, UC, 3/97, NOW')`,
	`SELECT Name FROM T WHERE Contains(X, '6/97, 6/97, 4/97, 4/97')`,
	`SELECT Name FROM T WHERE ContainedIn(X, '1/97, UC, 1/97, NOW')`,
}

// TestBulkBuildEquivalence checks the R*-tree STR fast path against the
// row-at-a-time fallback and a sequential scan under nowsub='max' (the
// exact-after-filtering substitution).
func TestBulkBuildEquivalence(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	for i := 0; i < 150; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('r%d', '%s')`, i, bext(i)))
	}

	builds := e.Obs().Snapshot().Get("am.am_build")
	exec(t, s, `CREATE INDEX bulk_ix ON T(X rst_opclass) USING rstree_am (nowsub='max', build='bulk') IN spc`)
	if e.Obs().Snapshot().Get("am.am_build") != builds+1 {
		t.Fatal("build=bulk did not go through am_build")
	}
	exec(t, s, `CHECK INDEX bulk_ix`)
	viaBulk := make([]string, len(buildQueries))
	for i, q := range buildQueries {
		viaBulk[i] = names(exec(t, s, q))
	}
	exec(t, s, `DROP INDEX bulk_ix`)

	exec(t, s, `CREATE INDEX ins_ix ON T(X rst_opclass) USING rstree_am (nowsub='max', build='insert') IN spc`)
	if e.Obs().Snapshot().Get("am.am_build") != builds+1 {
		t.Fatal("build=insert must not call am_build")
	}
	exec(t, s, `CHECK INDEX ins_ix`)
	viaInsert := make([]string, len(buildQueries))
	for i, q := range buildQueries {
		viaInsert[i] = names(exec(t, s, q))
	}
	exec(t, s, `DROP INDEX ins_ix`)

	for i, q := range buildQueries {
		seq := names(exec(t, s, q))
		if viaBulk[i] != seq {
			t.Fatalf("query %d: STR-built index %q vs seqscan %q", i, viaBulk[i], seq)
		}
		if viaInsert[i] != seq {
			t.Fatalf("query %d: insert-built index %q vs seqscan %q", i, viaInsert[i], seq)
		}
	}
}

// TestOnlineBuildConcurrentDML runs writer goroutines against the table
// while CREATE INDEX is parked in its lock-free bulk phase, so their rows
// reach the R*-tree only via side-log replay. Exercised under -race by
// make check.
func TestOnlineBuildConcurrentDML(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	for i := 0; i < 80; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('r%d', '%s')`, i, bext(i)))
	}

	const writers = 3
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	started := make(chan struct{})
	e.SetBuildHookForTesting(func(stage string) error {
		if stage == "bulk" {
			close(started)
			wg.Wait()
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-started
			ws := e.NewSession()
			defer ws.Close()
			for i := 0; i < 10; i++ {
				n := 1000 + w*100 + i
				if _, err := ws.Exec(fmt.Sprintf(`INSERT INTO T VALUES ('w%d', '%s')`, n, bext(n))); err != nil {
					writerErr <- err
					return
				}
				if i%3 == 0 {
					if _, err := ws.Exec(fmt.Sprintf(`DELETE FROM T WHERE Name = 'w%d'`, n)); err != nil {
						writerErr <- err
						return
					}
				}
			}
		}(w)
	}

	replayed := e.Obs().Snapshot().Get("idxbuild.sidelog_replayed")
	exec(t, s, `CREATE INDEX conc_ix ON T(X rst_opclass) USING rstree_am (nowsub='max') IN spc`)
	e.SetBuildHookForTesting(nil)
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}
	if e.Obs().Snapshot().Get("idxbuild.sidelog_replayed") == replayed {
		t.Fatal("no side-log ops replayed: writers did not overlap the build")
	}

	exec(t, s, `CHECK INDEX conc_ix`)
	withIndex := make([]string, len(buildQueries))
	for i, q := range buildQueries {
		withIndex[i] = names(exec(t, s, q))
	}
	exec(t, s, `DROP INDEX conc_ix`)
	for i, q := range buildQueries {
		if seq := names(exec(t, s, q)); withIndex[i] != seq {
			t.Fatalf("query %d: online-built index %q vs seqscan %q", i, withIndex[i], seq)
		}
	}
}
