// Package rstblade is the baseline access-method DataBlade: an R*-tree
// (the index the GR-tree is derived from, and Informix's built-in spatial
// access method) indexing bitemporal time extents through ground-value
// substitution for the variables UC and NOW:
//
//   - nowsub='max' (the "maximum-timestamp" approach): UC and NOW map to a
//     timestamp larger than any real one, so growing regions are bounded by
//     enormous rectangles — correct answers, but heavy overlap and dead
//     space (experiments P1/P2 measure the cost against the GR-tree);
//   - nowsub='asof': UC and NOW resolve to the insertion-time current time,
//     freezing the region — small rectangles, but queries issued later miss
//     grown tuples (the recall loss P1 quantifies), unless the index is
//     periodically rebuilt.
//
// Unlike the GR-tree blade, this blade resolves its strategy functions
// dynamically through the UDR registry (the extensible alternative of
// Section 5.2); it reuses the Overlaps/Equal/Contains/ContainedIn UDRs that
// grtblade registers, so grtblade must be registered first.
package rstblade

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/am"
	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/nodestore"
	"repro/internal/rstar"
	"repro/internal/sbspace"
	"repro/internal/temporal"
	"repro/internal/types"
)

// LibraryPath is the "shared object" path of this blade.
const LibraryPath = "usr/functions/rstree.bld"

// AmName is the registered access method.
const AmName = "rstree_am"

// DefaultMaxTimestamp is the "maximum timestamp" ground substitute for UC
// and NOW: 9999-12-31 at day granularity.
var DefaultMaxTimestamp = chronon.FromDate(9999, 12, 31)

// RegistrationSQL registers the blade's SQL objects. The strategy functions
// are the ones grtblade registered — adding support for an existing data
// type to a new access method reuses the same function names (Section 4).
const RegistrationSQL = `
CREATE FUNCTION rst_create(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_create)' LANGUAGE c;
CREATE FUNCTION rst_drop(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_drop)' LANGUAGE c;
CREATE FUNCTION rst_open(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_open)' LANGUAGE c;
CREATE FUNCTION rst_close(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_close)' LANGUAGE c;
CREATE FUNCTION rst_beginscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_beginscan)' LANGUAGE c;
CREATE FUNCTION rst_endscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_endscan)' LANGUAGE c;
CREATE FUNCTION rst_rescan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_rescan)' LANGUAGE c;
CREATE FUNCTION rst_getnext(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_getnext)' LANGUAGE c;
CREATE FUNCTION rst_getmulti(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_getmulti)' LANGUAGE c;
CREATE FUNCTION rst_build(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_build)' LANGUAGE c;
CREATE FUNCTION rst_insert(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_insert)' LANGUAGE c;
CREATE FUNCTION rst_delete(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_delete)' LANGUAGE c;
CREATE FUNCTION rst_update(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_update)' LANGUAGE c;
CREATE FUNCTION rst_scancost(pointer) RETURNING float EXTERNAL NAME 'usr/functions/rstree.bld(rst_scancost)' LANGUAGE c;
CREATE FUNCTION rst_stats(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_stats)' LANGUAGE c;
CREATE FUNCTION rst_check(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_check)' LANGUAGE c;
CREATE FUNCTION rst_parallelscan(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_parallelscan)' LANGUAGE c;
CREATE FUNCTION rst_aggregate(pointer) RETURNING int EXTERNAL NAME 'usr/functions/rstree.bld(rst_aggregate)' LANGUAGE c;

CREATE SECONDARY ACCESS_METHOD rstree_am (
	am_create = rst_create,
	am_drop = rst_drop,
	am_open = rst_open,
	am_close = rst_close,
	am_beginscan = rst_beginscan,
	am_endscan = rst_endscan,
	am_rescan = rst_rescan,
	am_getnext = rst_getnext,
	am_getmulti = rst_getmulti,
	am_build = rst_build,
	am_insert = rst_insert,
	am_delete = rst_delete,
	am_update = rst_update,
	am_scancost = rst_scancost,
	am_stats = rst_stats,
	am_check = rst_check,
	am_parallelscan = rst_parallelscan,
	am_aggregate = rst_aggregate,
	am_sptype = 'S'
);

CREATE OPCLASS rst_opclass FOR rstree_am
	STRATEGIES(Overlaps, Equal, Contains, ContainedIn)
	SUPPORT(GRT_Union, GRT_Size, GRT_Inter);
`

// Register installs the blade. grtblade must already be registered (it owns
// the opaque type and the strategy UDRs).
func Register(e *engine.Engine) error {
	if _, ok := e.Types().Lookup(grtblade.TypeName); !ok {
		return fmt.Errorf("rstblade: register grtblade first (%s missing)", grtblade.TypeName)
	}
	e.LoadLibrary(LibraryPath, Library())
	if _, err := e.Catalog().AmByName(AmName); err == nil {
		return nil
	}
	s := e.NewSession()
	defer s.Close()
	if _, err := s.ExecScript(RegistrationSQL); err != nil {
		return fmt.Errorf("rstblade: registration: %w", err)
	}
	return nil
}

// NowSub is the UC/NOW substitution policy.
type NowSub int

const (
	// SubMax maps UC and NOW to the maximum timestamp.
	SubMax NowSub = iota
	// SubAsOf resolves UC and NOW at the insertion-time current time.
	SubAsOf
)

type config struct {
	placement nodestore.Placement
	treeCfg   rstar.Config
	sub       NowSub
	maxTS     chronon.Instant
}

func parseConfig(params map[string]string) (config, error) {
	cfg := config{placement: nodestore.SingleLO, treeCfg: rstar.DefaultConfig(), maxTS: DefaultMaxTimestamp}
	for k, v := range params {
		switch strings.ToLower(k) {
		case "nowsub":
			switch strings.ToLower(v) {
			case "max":
				cfg.sub = SubMax
			case "asof":
				cfg.sub = SubAsOf
			default:
				return cfg, fmt.Errorf("rstblade: bad nowsub %q", v)
			}
		case "maxts":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("rstblade: bad maxts %q", v)
			}
			cfg.maxTS = chronon.Instant(n)
		case "maxentries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 4 {
				return cfg, fmt.Errorf("rstblade: bad maxentries %q", v)
			}
			cfg.treeCfg.MaxEntries = n
		case "placement":
			switch {
			case strings.EqualFold(v, "single"):
				cfg.placement = nodestore.SingleLO
			case strings.EqualFold(v, "pernode"):
				cfg.placement = nodestore.PerNodeLO
			default:
				return cfg, fmt.Errorf("rstblade: bad placement %q", v)
			}
		default:
			return cfg, fmt.Errorf("rstblade: unknown index parameter %q", k)
		}
	}
	return cfg, nil
}

// MapExtent converts a time extent to the indexed rectangle under the
// policy, as of ct.
func MapExtent(e temporal.Extent, sub NowSub, maxTS, ct chronon.Instant) rstar.Rect {
	tte := e.TTEnd
	vte := e.VTEnd
	switch sub {
	case SubMax:
		if tte == chronon.UC {
			tte = maxTS
		}
		if vte == chronon.NOW {
			vte = maxTS
		}
	case SubAsOf:
		sh := e.Region().Resolve(ct).BoundingBox()
		return rstar.Rect{XMin: sh.TTBegin, XMax: sh.TTEnd, YMin: sh.VTBegin, YMax: sh.VTEnd}
	}
	return rstar.Rect{XMin: int64(e.TTBegin), XMax: int64(tte), YMin: int64(e.VTBegin), YMax: int64(vte)}
}

type openState struct {
	store *nodestore.LOStore
	tree  *rstar.Tree
	cfg   config
	ct    chronon.Instant
	// scan state
	cursor *rstar.Cursor
	qr     rstar.Rect // the current scan's conservative query rectangle
	// dynamic strategy dispatch (Section 5.2's extensible alternative):
	// exact filtering happens through registered UDRs invoked per candidate.
	qual   *am.Qual
	typeID uint32
	// ground records that every entry ever indexed was a ground extent (no
	// UC/NOW substitution happened), so the stored rectangles are exact and
	// rst_aggregate may answer from them. Persisted in the access method's
	// bookkeeping table; a single now-relative insert clears it forever.
	ground bool

	rightAfter bool
}

// groundKey is the bookkeeping record carrying the ground flag. The
// "ground|"+name shape matches the catalog's per-index record purge.
func groundKey(indexName string) string { return "ground|" + strings.ToLower(indexName) }

func state(id *am.IndexDesc) (*openState, error) {
	st, ok := id.UserData.(*openState)
	if !ok || st == nil {
		return nil, fmt.Errorf("rstblade: index %s is not open", id.Name)
	}
	return st, nil
}

// Library returns the blade's symbol table.
func Library() am.Library {
	return am.Library{
		"rst_create":       am.AmIndexFunc(rstCreate),
		"rst_drop":         am.AmIndexFunc(rstDrop),
		"rst_open":         am.AmIndexFunc(rstOpen),
		"rst_close":        am.AmIndexFunc(rstClose),
		"rst_beginscan":    am.AmScanFunc(rstBeginScan),
		"rst_endscan":      am.AmScanFunc(rstEndScan),
		"rst_rescan":       am.AmScanFunc(rstRescan),
		"rst_getnext":      am.AmGetNextFunc(rstGetNext),
		"rst_getmulti":     am.AmGetMultiFunc(rstGetMulti),
		"rst_build":        am.AmBuildFunc(rstBuild),
		"rst_insert":       am.AmMutateFunc(rstInsert),
		"rst_delete":       am.AmMutateFunc(rstDelete),
		"rst_update":       am.AmUpdateFunc(rstUpdate),
		"rst_scancost":     am.AmScanCostFunc(rstScanCost),
		"rst_stats":        am.AmStatsFunc(rstStats),
		"rst_check":        am.AmCheckFunc(rstCheck),
		"rst_parallelscan": am.AmParallelScanFunc(rstParallelScan),
		"rst_aggregate":    am.AmAggregateFunc(rstAggregate),
	}
}

func validateColumns(id *am.IndexDesc) error {
	if len(id.ColTypes) != 1 {
		return fmt.Errorf("rstblade: rstree_am indexes exactly one column")
	}
	if id.ColTypes[0].Kind != types.KOpaque || !strings.EqualFold(id.ColTypes[0].Name, grtblade.TypeName) {
		return fmt.Errorf("rstblade: rstree_am cannot handle column type %v", id.ColTypes[0])
	}
	return nil
}

func rstCreate(ctx *mi.Context, id *am.IndexDesc) error {
	if err := validateColumns(id); err != nil {
		return err
	}
	cfg, err := parseConfig(id.Params)
	if err != nil {
		return err
	}
	if id.SpaceName == "" {
		return fmt.Errorf("rstblade: rstree_am stores indexes in sbspaces; use CREATE INDEX ... IN <sbspace>")
	}
	space, err := id.Services.Space(id.SpaceName)
	if err != nil {
		return err
	}
	store, handle, err := nodestore.CreateLO(space, id.Services.TxID(), id.Services.Isolation(), cfg.placement)
	if err != nil {
		return err
	}
	tree, err := rstar.Create(store, cfg.treeCfg)
	if err != nil {
		return err
	}
	rec := make([]byte, sbspace.HandleSize)
	handle.Encode(rec)
	if err := id.Services.AMRecordPut(AmName, id.Name, rec); err != nil {
		return err
	}
	// A fresh index holds only ground rectangles (vacuously); overwrite any
	// stale flag a dropped namesake left behind.
	if err := id.Services.AMRecordPut(AmName, groundKey(id.Name), []byte{1}); err != nil {
		return err
	}
	id.UserData = &openState{
		store: store, tree: tree, cfg: cfg, ground: true,
		ct: id.Services.Clock().Now(), typeID: id.ColTypes[0].OpaqueID, rightAfter: true,
	}
	return nil
}

func rstDrop(ctx *mi.Context, id *am.IndexDesc) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	if err := st.store.Drop(); err != nil {
		return err
	}
	id.UserData = nil
	if err := id.Services.AMRecordDelete(AmName, groundKey(id.Name)); err != nil {
		return err
	}
	return id.Services.AMRecordDelete(AmName, id.Name)
}

func rstOpen(ctx *mi.Context, id *am.IndexDesc) error {
	if st, ok := id.UserData.(*openState); ok && st != nil && st.rightAfter {
		st.rightAfter = false
		return nil
	}
	cfg, err := parseConfig(id.Params)
	if err != nil {
		return err
	}
	rec, ok, err := id.Services.AMRecordGet(AmName, id.Name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("rstblade: index %s has no access-method record", id.Name)
	}
	space, err := id.Services.Space(id.SpaceName)
	if err != nil {
		return err
	}
	mode := sbspace.ReadWrite
	if id.ReadOnly {
		mode = sbspace.ReadOnly
	}
	store, err := nodestore.OpenLO(space, id.Services.TxID(), id.Services.Isolation(), sbspace.DecodeHandle(rec), mode)
	if err != nil {
		return err
	}
	tree, err := rstar.Open(store, cfg.treeCfg)
	if err != nil {
		store.Close()
		return err
	}
	// Indexes created before the flag existed have no record and load as
	// non-ground, so rst_aggregate declines on them — safe, never wrong.
	ground := false
	if g, ok, err := id.Services.AMRecordGet(AmName, groundKey(id.Name)); err != nil {
		store.Close()
		return err
	} else if ok && len(g) == 1 && g[0] == 1 {
		ground = true
	}
	id.UserData = &openState{
		store: store, tree: tree, cfg: cfg, ground: ground,
		ct: id.Services.Clock().Now(), typeID: id.ColTypes[0].OpaqueID,
	}
	return nil
}

func rstClose(ctx *mi.Context, id *am.IndexDesc) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	st.cursor = nil
	if err := st.store.Close(); err != nil {
		return err
	}
	id.UserData = nil
	return nil
}

// queryRect maps a qualification's query extents to one conservative
// rectangle: any strategy match implies region overlap, so rectangle
// overlap with the union of the query rectangles is a sound index test.
func (st *openState) queryRect(q *am.Qual) (rstar.Rect, error) {
	leaves := q.Leaves()
	if len(leaves) == 0 {
		return rstar.Rect{}, fmt.Errorf("rstblade: empty qualification")
	}
	var out rstar.Rect
	first := true
	for _, l := range leaves {
		ext, err := extentOf(l.Const)
		if err != nil {
			return rstar.Rect{}, err
		}
		r := MapExtent(ext, st.cfg.sub, st.cfg.maxTS, st.ct)
		if st.cfg.sub == SubMax {
			// Also cover the query's current resolution (ground queries over
			// growing data and vice versa).
			sh := ext.Region().Resolve(st.ct).BoundingBox()
			r = r.Union(rstar.Rect{XMin: sh.TTBegin, XMax: sh.TTEnd, YMin: sh.VTBegin, YMax: sh.VTEnd})
		}
		if first {
			out = r
			first = false
		} else {
			out = out.Union(r)
		}
	}
	return out, nil
}

func extentOf(d types.Datum) (temporal.Extent, error) {
	op, ok := d.(types.Opaque)
	if !ok {
		return temporal.Extent{}, fmt.Errorf("rstblade: expected %s, got %T", grtblade.TypeName, d)
	}
	return grtblade.DecodeExtent(op.Data)
}

func rstBeginScan(ctx *mi.Context, sd *am.ScanDesc) error {
	st, err := state(sd.Index)
	if err != nil {
		return err
	}
	if sd.Qual == nil {
		return fmt.Errorf("rstblade: scan without qualification")
	}
	qr, err := st.queryRect(sd.Qual)
	if err != nil {
		return err
	}
	cur, err := st.tree.Search(rstar.OpOverlaps, qr)
	if err != nil {
		return err
	}
	st.cursor = cur
	st.qual = sd.Qual
	st.qr = qr
	sd.UserData = cur
	ctx.Tracer().Tracef("rst", 2, "rst_beginscan %s: qual %s", sd.Index.Name, sd.Qual)
	return nil
}

// rstParallelScan implements am_parallelscan: a root fan-out partitioning
// over the conservative query rectangle, mirroring grt_parallelscan.
func rstParallelScan(ctx *mi.Context, sd *am.ScanDesc, degree int) ([]*am.ScanDesc, error) {
	st, err := state(sd.Index)
	if err != nil {
		return nil, err
	}
	if st.qual == nil {
		return nil, fmt.Errorf("rstblade: parallelscan without beginscan")
	}
	ps, err := st.tree.ParallelScan(rstar.OpOverlaps, st.qr, degree)
	if err != nil || ps == nil {
		return nil, err
	}
	workers := ps.Parts()
	if workers > degree {
		workers = degree
	}
	sd.UserData = ps
	out := make([]*am.ScanDesc, workers)
	for i := range out {
		out[i] = &am.ScanDesc{
			Index: sd.Index, Qual: sd.Qual,
			BatchCap: sd.BatchCap, Obs: sd.Obs,
			UserData: ps.Cursor(),
		}
	}
	ctx.Tracer().Tracef("rst", 2, "rst_parallelscan %s: %d workers over %d subtrees", sd.Index.Name, workers, ps.Parts())
	return out, nil
}

func rstRescan(ctx *mi.Context, sd *am.ScanDesc) error {
	if sd.Batch != nil {
		sd.Batch.Reset()
	}
	switch cur := sd.UserData.(type) {
	case *rstar.Cursor:
		cur.Reset()
		return nil
	case *rstar.ParallelScan:
		return cur.Reset()
	}
	return fmt.Errorf("rstblade: rescan without a cursor")
}

func rstEndScan(ctx *mi.Context, sd *am.ScanDesc) error {
	if st, err := state(sd.Index); err == nil {
		st.cursor = nil
		st.qual = nil
	}
	sd.UserData = nil
	return nil
}

// rstGetNext returns candidate rowids. Exactness: the engine re-evaluates
// the full WHERE clause on the fetched row, invoking the registered
// strategy UDRs — the dynamic-resolution path of Section 5.2, whose
// overhead experiment P5 measures. The candidate set may include false
// positives (SubMax) or miss grown tuples (SubAsOf); the latter is the
// recall loss experiment P1 reports.
func rstGetNext(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
	cur, ok := sd.UserData.(*rstar.Cursor)
	if !ok {
		return 0, nil, false, fmt.Errorf("rstblade: getnext without beginscan")
	}
	entry, ok2, err := cur.Next()
	if err != nil || !ok2 {
		return 0, nil, false, err
	}
	return heap.RowID(entry.Payload()), nil, true, nil
}

// rstGetMulti implements am_getmulti: one dispatch drains the cursor's
// next candidate rowids (rows stay nil — exactness still comes from the
// engine re-evaluating the WHERE clause per fetched row, as in
// rstGetNext).
func rstGetMulti(ctx *mi.Context, sd *am.ScanDesc) (int, error) {
	// Serial cursor or a parallel partition's PartCursor — both drain
	// through NextBatch.
	cur, ok := sd.UserData.(interface {
		NextBatch([]rstar.Entry) (int, error)
	})
	if !ok {
		return 0, fmt.Errorf("rstblade: getmulti without beginscan")
	}
	b := sd.Batch
	b.Reset()
	entries := make([]rstar.Entry, b.Cap())
	n, err := cur.NextBatch(entries)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		b.Append(heap.RowID(entries[i].Payload()), nil)
	}
	return b.N, nil
}

// rstBuild implements am_build, the optional bulk-load purpose slot: the
// server feeds snapshot batches through next; the blade maps each extent to
// its conservative rectangle and packs the tree bottom-up with the
// sort-tile-recursive BulkLoad instead of one rst_insert per row.
func rstBuild(ctx *mi.Context, id *am.IndexDesc, next am.AmBuildNext) (int, error) {
	st, err := state(id)
	if err != nil {
		return 0, err
	}
	var items []rstar.BulkItem
	for {
		b, err := next()
		if err != nil {
			return 0, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			ext, err := extentOf(b.Rows[i][0])
			if err != nil {
				return 0, err
			}
			if !ext.ValidAt(st.ct) {
				return 0, fmt.Errorf("rstblade: extent %v violates the transaction-time constraints at current time %v", ext, st.ct)
			}
			if ext.NowRelative() {
				if err := st.clearGround(id); err != nil {
					return 0, err
				}
			}
			items = append(items, rstar.BulkItem{
				Rect:    MapExtent(ext, st.cfg.sub, st.cfg.maxTS, st.ct),
				Payload: rstar.Payload(b.RowIDs[i]),
			})
		}
	}
	if err := st.tree.BulkLoad(items); err != nil {
		return 0, err
	}
	ctx.Tracer().Tracef("rst", 1, "rst_build %s: bulk-loaded %d entries", id.Name, len(items))
	return len(items), nil
}

// clearGround records that the index now holds a substituted (now-relative)
// rectangle: rst_aggregate must decline from here on, in this open state and
// every future one.
func (st *openState) clearGround(id *am.IndexDesc) error {
	if !st.ground {
		return nil
	}
	if err := id.Services.AMRecordPut(AmName, groundKey(id.Name), []byte{0}); err != nil {
		return err
	}
	st.ground = false
	return nil
}

func rstInsert(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	ext, err := extentOf(row[0])
	if err != nil {
		return err
	}
	if !ext.ValidAt(st.ct) {
		return fmt.Errorf("rstblade: extent %v violates the transaction-time constraints at current time %v", ext, st.ct)
	}
	if ext.NowRelative() {
		if err := st.clearGround(id); err != nil {
			return err
		}
	}
	return st.tree.Insert(MapExtent(ext, st.cfg.sub, st.cfg.maxTS, st.ct), rstar.Payload(rid))
}

// rstDelete locates the entry by payload (the rectangle stored at insertion
// time is not reconstructible under SubAsOf, so the blade scans the
// conservative region for the payload).
func rstDelete(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	ext, err := extentOf(row[0])
	if err != nil {
		return err
	}
	// Conservative search region: the max-substituted rectangle covers any
	// historical resolution of the extent.
	qr := MapExtent(ext, SubMax, st.cfg.maxTS, st.ct)
	cur, err := st.tree.Search(rstar.OpOverlaps, qr)
	if err != nil {
		return err
	}
	for {
		entry, ok, err := cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("rstblade: index %s has no entry for row %v: %w", id.Name, rid, am.ErrNoEntry)
		}
		if entry.Payload() == rstar.Payload(rid) {
			removed, _, err := st.tree.Delete(entry.Rect, entry.Payload())
			if err != nil {
				return err
			}
			if !removed {
				return fmt.Errorf("rstblade: delete raced on row %v", rid)
			}
			return nil
		}
	}
}

func rstUpdate(ctx *mi.Context, id *am.IndexDesc, oldRow []types.Datum, oldRid heap.RowID, newRow []types.Datum, newRid heap.RowID) error {
	if err := rstDelete(ctx, id, oldRow, oldRid); err != nil {
		return err
	}
	return rstInsert(ctx, id, newRow, newRid)
}

func rstScanCost(ctx *mi.Context, id *am.IndexDesc, q *am.Qual) (float64, error) {
	st, err := state(id)
	if err != nil {
		return 0, err
	}
	leafNodes := float64(st.tree.Size())/float64(rstar.Capacity) + 1
	if id.Stats != nil && id.Stats.Lo.Rows > 0 {
		sel := qualSelectivity(st, id.Stats, q)
		cost := 1 + float64(st.tree.Height()) + sel*leafNodes
		ctx.Tracer().Tracef("rst", 2, "rst_scancost %s: %.2f (stats, sel %.3f)", id.Name, cost, sel)
		return cost, nil
	}
	cost := float64(st.tree.Height()) + 0.2*leafNodes
	ctx.Tracer().Tracef("rst", 2, "rst_scancost %s: %.2f", id.Name, cost)
	return cost, nil
}

// qualSelectivity estimates the entry fraction a qualification touches from
// the collected valid-time (Y-axis) histograms: leaves use the interval
// overlap formula over the query's conservative rectangle, AND takes the
// most selective conjunct, OR saturating-adds.
func qualSelectivity(st *openState, stats *am.IndexStats, q *am.Qual) float64 {
	if q == nil {
		return 1
	}
	switch q.Op {
	case am.QAnd:
		sel := 1.0
		for _, c := range q.Children {
			if s := qualSelectivity(st, stats, c); s < sel {
				sel = s
			}
		}
		return sel
	case am.QOr:
		sel := 0.0
		for _, c := range q.Children {
			sel += qualSelectivity(st, stats, c)
		}
		if sel > 1 {
			sel = 1
		}
		return sel
	case am.QFunc:
		ext, err := extentOf(q.Const)
		if err != nil {
			return 1
		}
		r := MapExtent(ext, st.cfg.sub, st.cfg.maxTS, st.ct)
		return stats.SelectivityOverlap(float64(r.YMin), float64(r.YMax))
	}
	return 1
}

// histogramBuckets is the equi-depth bucket count rst_stats collects.
const histogramBuckets = 32

// rstStats implements am_stats: the human-readable summary plus the entry
// count and valid-time-axis histograms UPDATE STATISTICS persists into
// SYSSTATS for rst_scancost. The indexed rectangles already carry their
// substituted ground values, so the leaves are summarized as stored.
func rstStats(ctx *mi.Context, id *am.IndexDesc) (*am.IndexStats, error) {
	st, err := state(id)
	if err != nil {
		return nil, err
	}
	levels, err := st.tree.Stats()
	if err != nil {
		return nil, err
	}
	var overlap float64
	for _, l := range levels {
		overlap += l.Overlap
	}
	summary := fmt.Sprintf("index %s: %d entries, height %d, sibling overlap %.0f",
		id.Name, st.tree.Size(), st.tree.Height(), overlap)

	lo := make([]float64, 0, st.tree.Size())
	hi := make([]float64, 0, st.tree.Size())
	err = st.tree.WalkLeaves(func(e rstar.Entry) error {
		lo = append(lo, float64(e.Rect.YMin))
		hi = append(hi, float64(e.Rect.YMax))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &am.IndexStats{
		Summary: summary,
		Entries: st.tree.Size(),
		Lo:      am.BuildHistogram(lo, histogramBuckets),
		Hi:      am.BuildHistogram(hi, histogramBuckets),
	}, nil
}

// rstAggregate implements am_aggregate. The R*-tree scan protocol returns
// candidates for the server to re-qualify, so in general the index cannot
// answer an aggregate exactly — but when every indexed extent is ground (no
// UC/NOW substitution ever happened, tracked by the persisted ground flag)
// and the query extent is ground too, the stored rectangles are the exact
// extents and the rectangle predicates coincide with the strategy-function
// semantics. Anything else declines and the server drains tuples.
func rstAggregate(ctx *mi.Context, id *am.IndexDesc, req *am.AggRequest) (*am.AggResult, bool, error) {
	st, err := state(id)
	if err != nil {
		return nil, false, err
	}
	if !st.ground {
		return nil, false, nil
	}
	if req.Qual == nil || req.Qual.Op != am.QFunc {
		return nil, false, nil
	}
	q := req.Qual
	var op rstar.Op
	switch strings.ToLower(q.Func) {
	case "overlaps":
		op = rstar.OpOverlaps
	case "equal":
		op = rstar.OpEqual
	case "contains":
		op = rstar.OpContains
		if !q.ColFirst {
			op = rstar.OpContainedIn
		}
	case "containedin":
		op = rstar.OpContainedIn
		if !q.ColFirst {
			op = rstar.OpContains
		}
	default:
		return nil, false, nil
	}
	ext, err := extentOf(q.Const)
	if err != nil || ext.NowRelative() || !ext.Valid() {
		return nil, false, nil
	}
	query := rstar.Rect{
		XMin: int64(ext.TTBegin), XMax: int64(ext.TTEnd),
		YMin: int64(ext.VTBegin), YMax: int64(ext.VTEnd),
	}
	switch req.Kind {
	case am.AggCount:
		n, ok, err := st.tree.AggCount(op, query)
		if err != nil || !ok {
			return nil, false, err
		}
		ctx.Tracer().Tracef("rst", 2, "rst_aggregate %s: count=%d", id.Name, n)
		return &am.AggResult{Count: n}, true, nil
	case am.AggMin, am.AggMax:
		r, found, ok, err := st.tree.AggExtreme(op, query, req.Kind == am.AggMax)
		if err != nil || !ok {
			return nil, false, err
		}
		if !found {
			return &am.AggResult{Empty: true}, true, nil
		}
		out := temporal.Extent{
			TTBegin: chronon.Instant(r.XMin), TTEnd: chronon.Instant(r.XMax),
			VTBegin: chronon.Instant(r.YMin), VTEnd: chronon.Instant(r.YMax),
		}
		val := types.Opaque{TypeID: id.ColTypes[0].OpaqueID, Data: grtblade.EncodeExtent(out)}
		ctx.Tracer().Tracef("rst", 2, "rst_aggregate %s: %s=%v", id.Name, req.Kind, out)
		return &am.AggResult{Value: val}, true, nil
	}
	return nil, false, nil
}

func rstCheck(ctx *mi.Context, id *am.IndexDesc) error {
	st, err := state(id)
	if err != nil {
		return err
	}
	return st.tree.Check()
}
