package rstblade

import (
	"fmt"
	"reflect"
	"testing"
)

// rst_aggregate answers only from exact rectangles: every indexed extent
// ground (the persisted ground flag) and a ground query extent. These tests
// pin the pushdown on an all-ground index, the permanent decline after a
// single now-relative insert, and prepared EXECUTE agreement.

func TestAggregateGroundPushdown(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX aix ON T(X rst_opclass) USING rstree_am (nowsub='max') IN spc`)
	for i, ext := range []string{
		"1/97, 3/97, 1/97, 3/97",
		"2/97, 5/97, 2/97, 5/97",
		"4/97, 7/97, 4/97, 7/97",
		"6/97, 8/97, 6/97, 8/97",
		"1/97, 2/97, 6/97, 8/97",
	} {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('r%d', '%s')`, i, ext))
	}

	qual := `Overlaps(X, '2/97, 6/97, 2/97, 6/97')`
	for _, item := range []string{"COUNT(*)", "COUNT(X)", "MIN(X)", "MAX(X)"} {
		q := fmt.Sprintf(`SELECT %s FROM T WHERE %s`, item, qual)
		want := exec(t, s, q+` AND Name = Name`).Rows[0][0] // residual forces the drain

		pushed := e.Obs().Counter("agg.pushed").Load()
		getNext := e.Obs().Counter("am.am_getnext").Load()
		getMulti := e.Obs().Counter("am.am_getmulti").Load()
		got := exec(t, s, q).Rows[0][0]
		if e.Obs().Counter("agg.pushed").Load() == pushed {
			t.Fatalf("%s was not pushed to rst_aggregate", item)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pushed %#v, drain %#v", item, got, want)
		}
		if d := e.Obs().Counter("am.am_getnext").Load() - getNext; d != 0 {
			t.Fatalf("%s drove %d am_getnext calls", item, d)
		}
		if d := e.Obs().Counter("am.am_getmulti").Load() - getMulti; d != 0 {
			t.Fatalf("%s drove %d am_getmulti calls", item, d)
		}
	}

	// A now-relative query constant declines even on an all-ground index;
	// the drain's answer is authoritative.
	nr := `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/97, UC, 1/97, NOW')`
	want := exec(t, s, nr+` AND Name = Name`).Rows[0][0]
	fallback := e.Obs().Counter("agg.fallback").Load()
	n := exec(t, s, nr).Rows[0][0]
	if e.Obs().Counter("agg.fallback").Load() == fallback {
		t.Fatal("now-relative query constant did not force the drain")
	}
	if n != want {
		t.Fatalf("now-relative COUNT = %v, drain says %v", n, want)
	}
}

// A single now-relative insert clears the ground flag for good: pushdown
// declines from then on (agg.fallback), and the drain keeps answers exact.
func TestAggregateGroundFlagClears(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX aix ON T(X rst_opclass) USING rstree_am (nowsub='max') IN spc`)
	exec(t, s, `INSERT INTO T VALUES ('g', '1/97, 3/97, 1/97, 3/97')`)

	q := `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/97, 8/97, 1/97, 8/97')`
	pushed := e.Obs().Counter("agg.pushed").Load()
	if got := exec(t, s, q).Rows[0][0]; got != int64(1) {
		t.Fatalf("ground COUNT = %v", got)
	}
	if e.Obs().Counter("agg.pushed").Load() == pushed {
		t.Fatal("all-ground index did not push down")
	}

	exec(t, s, `INSERT INTO T VALUES ('n', '5/97, UC, 5/97, NOW')`)
	fallback := e.Obs().Counter("agg.fallback").Load()
	if got := exec(t, s, q).Rows[0][0]; got != int64(2) {
		t.Fatalf("post-substitution COUNT = %v", got)
	}
	if e.Obs().Counter("agg.fallback").Load() == fallback {
		t.Fatal("substituted rectangle did not clear the ground gate")
	}

	// The flag is persisted: deleting the now-relative row (and vacuuming
	// away its entry) must NOT restore pushdown — the flag tracks history,
	// not current contents.
	exec(t, s, `DELETE FROM T WHERE Name = 'n'`)
	if _, err := e.VacuumNow(); err != nil {
		t.Fatal(err)
	}
	fallback = e.Obs().Counter("agg.fallback").Load()
	if got := exec(t, s, q).Rows[0][0]; got != int64(1) {
		t.Fatalf("post-delete COUNT = %v", got)
	}
	if e.Obs().Counter("agg.fallback").Load() == fallback {
		t.Fatal("cleared ground flag must keep declining after the row is gone")
	}
}

// Prepared aggregates push down through the plan cache with ground
// parameters, and agree with the drain on both the fresh and the cached run.
func TestAggregatePreparedExecute(t *testing.T) {
	e, _ := newDB(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE SBSPACE spc`)
	exec(t, s, `CREATE TABLE T (Name VARCHAR(16), X GRT_TimeExtent_t)`)
	exec(t, s, `CREATE INDEX aix ON T(X rst_opclass) USING rstree_am (nowsub='max') IN spc`)
	for i := 1; i <= 6; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO T VALUES ('r%d', '%d/97, %d/97, %d/97, %d/97')`, i, i, i+2, i, i+2))
	}
	exec(t, s, `PREPARE cnt AS SELECT COUNT(*) FROM T WHERE Overlaps(X, $1)`)
	want := exec(t, s, `SELECT COUNT(*) FROM T WHERE Overlaps(X, '2/97, 5/97, 2/97, 5/97') AND Name = Name`).Rows[0][0]

	for run := 0; run < 2; run++ { // fresh plan, then cached plan
		pushed := e.Obs().Counter("agg.pushed").Load()
		got := exec(t, s, `EXECUTE cnt ('2/97, 5/97, 2/97, 5/97')`).Rows[0][0]
		if got != want {
			t.Fatalf("run %d: EXECUTE count %v, want %v", run, got, want)
		}
		if e.Obs().Counter("agg.pushed").Load() == pushed {
			t.Fatalf("run %d: prepared aggregate was not pushed down", run)
		}
	}
}
