package wal

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// CommitMode selects how a committing session waits for durability.
type CommitMode uint8

const (
	// CommitSync forces a private flush+fsync for this commit (the classic
	// one-fsync-per-commit baseline).
	CommitSync CommitMode = iota
	// CommitGroup parks the session on the flusher until the commit record
	// is durable; concurrent committers coalesce into ~1 fsync (the
	// default).
	CommitGroup
	// CommitAsync returns at append time. Durability lags by up to the
	// flusher interval: a crash may lose the last few milliseconds of
	// commits (bounded loss), but never corrupts — recovery undoes them.
	CommitAsync
)

func (m CommitMode) String() string {
	switch m {
	case CommitSync:
		return "SYNC"
	case CommitGroup:
		return "GROUP"
	case CommitAsync:
		return "ASYNC"
	}
	return "?"
}

// ParseCommitMode maps the SET COMMIT argument to a mode.
func ParseCommitMode(s string) (CommitMode, bool) {
	switch s {
	case "SYNC":
		return CommitSync, true
	case "GROUP":
		return CommitGroup, true
	case "ASYNC":
		return CommitAsync, true
	}
	return 0, false
}

// asyncFlushInterval bounds how long an ASYNC commit (or any buffered
// append) can sit in memory before the flusher forces it out.
const asyncFlushInterval = 5 * time.Millisecond

// CommitWith appends a COMMIT record for tx and waits (or not) per mode.
func (l *Log) CommitWith(tx uint64, mode CommitMode) (LSN, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return NilLSN, errClosed
	}
	lsn := l.appendLocked(Record{Type: RecCommit, Tx: tx})
	target := l.size
	switch mode {
	case CommitAsync:
		l.mu.Unlock()
		l.kick()
		return lsn, nil
	case CommitSync:
		l.mu.Unlock()
		// The classic baseline: this commit issues its own fsync, always —
		// even when a concurrent flush already covered its record. SYNC
		// commits therefore serialise on the log I/O, one fsync each.
		return lsn, l.doFlush(forceSync)
	default:
		return lsn, l.waitDurable(target)
	}
}

// waitDurable parks the caller until flushed covers target. Parked sessions
// are what the flusher counts as a commit group. Caller holds mu; released
// on return.
func (l *Log) waitDurable(target int64) error {
	l.nparked++
	l.mu.Unlock()
	l.kick()
	l.mu.Lock()
	for l.flushed < target && l.ioErr == nil && !l.closed {
		l.cond.Wait()
	}
	l.nparked--
	err := l.ioErr
	if err == nil && l.flushed < target {
		err = errClosed
	}
	l.mu.Unlock()
	return err
}

// gather gives a forming commit group a brief window to grow before the
// flusher pays the fsync: while new committers keep parking, yield the
// processor to them. A lone committer passes through after a few
// nanosecond-scale yields, so the added latency is noise next to the fsync;
// under concurrency the group roughly doubles, halving fsyncs per commit.
func (l *Log) gather() {
	l.mu.Lock()
	last := l.nparked
	l.mu.Unlock()
	if last == 0 {
		return
	}
	still := 0
	for i := 0; i < 256 && still < 8; i++ {
		runtime.Gosched()
		l.mu.Lock()
		n := l.nparked
		l.mu.Unlock()
		if n > last {
			last, still = n, 0
		} else {
			still++
		}
	}
}

// kick nudges the flusher without blocking (the channel has capacity 1, so
// a pending kick absorbs further ones).
func (l *Log) kick() {
	select {
	case l.flushC <- struct{}{}:
	default:
	}
}

// flusher is the dedicated goroutine that drains the tail buffer. It wakes
// on kicks (commits) and on a ticker (ASYNC bounded loss), and performs one
// final drain on Close.
func (l *Log) flusher() {
	defer close(l.done)
	tick := time.NewTicker(asyncFlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.quit:
			l.doFlush(skipIfClean) // final drain: ASYNC commits become durable on clean shutdown
			return
		case <-l.flushC:
		case <-tick.C:
		}
		l.gather()
		l.mu.Lock()
		dirty := l.flushed < l.size
		l.mu.Unlock()
		if dirty {
			if err := l.doFlush(skipIfClean); err != nil {
				l.mu.Lock()
				if l.ioErr == nil {
					l.ioErr = err
				}
				l.cond.Broadcast()
				l.mu.Unlock()
			}
		}
	}
}

// flushTo makes everything below target durable, driving flushes inline
// (SYNC commits and explicit Flush calls do their own I/O rather than wait
// for the flusher's cadence).
func (l *Log) flushTo(target int64) error {
	for {
		l.mu.Lock()
		if l.ioErr != nil {
			err := l.ioErr
			l.mu.Unlock()
			return err
		}
		if l.flushed >= target {
			l.mu.Unlock()
			return nil
		}
		l.mu.Unlock()
		if err := l.doFlush(skipIfClean); err != nil {
			l.mu.Lock()
			if l.ioErr == nil {
				l.ioErr = err
			}
			l.cond.Broadcast()
			l.mu.Unlock()
			return err
		}
	}
}

// doFlush modes: skipIfClean returns without I/O when everything appended
// is already durable (the flusher and Flush paths); forceSync issues the
// fsync regardless, giving SYNC commits their private per-commit fsync.
const (
	skipIfClean = false
	forceSync   = true
)

// doFlush writes and fsyncs whatever is pending. ioMu serialises the file
// I/O; mu is only held to swap buffers and publish results, so appends
// proceed while the fsync runs — the next group forms during this one.
func (l *Log) doFlush(force bool) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	if !force && l.flushed >= l.size {
		l.mu.Unlock()
		return nil
	}
	chunk := l.pending
	l.pending = nil
	l.writing = chunk
	start := l.written
	target := l.size
	group := l.nparked
	l.mu.Unlock()

	var err error
	if len(chunk) > 0 {
		_, err = l.f.WriteAt(chunk, l.fileOff(start))
	}
	if err == nil {
		err = l.f.Sync()
	}

	l.mu.Lock()
	l.writing = nil
	if err != nil {
		// Put the unwritten chunk back so state stays consistent; callers
		// will see the sticky error.
		if len(chunk) > 0 {
			l.pending = append(chunk, l.pending...)
		}
		l.mu.Unlock()
		return err
	}
	l.written = start + int64(len(chunk))
	l.flushed = target
	l.obs.Flushes.Inc()
	if group > 0 {
		l.obs.GroupSize.ObserveCount(uint64(group))
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if chunk != nil && cap(chunk) <= maxPooledBuf {
		chunk = chunk[:0]
		bufPool.Put(&chunk)
	}
	return nil
}

// TruncateTo drops the log prefix below cutoff by rotating the file: the
// retained suffix is copied to a sibling file with a new base-LSN header,
// fsynced, and renamed over the log. LSNs are logical, so survivors keep
// their numbers. The cutoff is clamped to what recovery still needs (the
// durable boundary and every live transaction's first record); the caller
// must have forced dirty pages whose updates sit below cutoff (the engine's
// checkpointer does). Returns the number of bytes dropped.
func (l *Log) TruncateTo(cutoff LSN) (int64, error) {
	if err := l.Flush(); err != nil {
		return 0, err
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	if int64(cutoff) > l.flushed {
		cutoff = LSN(l.flushed)
	}
	for _, first := range l.firstLSN {
		if first < cutoff {
			cutoff = first
		}
	}
	if cutoff <= l.base {
		return 0, nil
	}
	dropped := int64(cutoff - l.base)
	keep := l.written - int64(cutoff) // bytes of retained, durable suffix

	tmpPath := l.path + ".rotate"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: rotate: %w", err)
	}
	cleanup := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, err
	}
	if err := writeHeader(tmp, cutoff); err != nil {
		return cleanup(err)
	}
	if keep > 0 {
		src := io.NewSectionReader(l.f, l.fileOff(int64(cutoff)), keep)
		if _, err := tmp.Seek(logHeaderSize, io.SeekStart); err != nil {
			return cleanup(err)
		}
		if _, err := io.Copy(tmp, src); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return cleanup(err)
	}
	old := l.f
	l.f = tmp
	l.base = cutoff
	old.Close()
	l.obs.TruncatedBytes.Add(uint64(dropped))
	return dropped, nil
}
