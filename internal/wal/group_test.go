package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// durableImage returns the bytes a crash at this instant would leave on
// disk: the file prefix up to the last completed write. The caller must
// hold l.ioMu so no flush is in flight (written is then stable and nothing
// beyond it has been handed to the OS).
func durableImage(t *testing.T, l *Log) []byte {
	t.Helper()
	l.mu.Lock()
	n := l.fileOff(l.written)
	l.mu.Unlock()
	img := make([]byte, n)
	if _, err := l.f.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	l, _ := openTestLog(t)
	reg := obs.NewRegistry()
	flushes := reg.Counter("flushes")
	group := reg.Histogram("group")
	l.SetObs(Obs{Flushes: flushes, GroupSize: group})

	// Stall the flusher so every committer parks before any fsync runs.
	l.ioMu.Lock()
	const N = 8
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		tx := uint64(i + 1)
		if _, err := l.Begin(tx); err != nil {
			l.ioMu.Unlock()
			t.Fatal(err)
		}
		if _, err := l.Update(tx, 1, uint64(i), 0, []byte("a"), []byte("b")); err != nil {
			l.ioMu.Unlock()
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, tx uint64) {
			defer wg.Done()
			_, errs[i] = l.CommitWith(tx, CommitGroup)
		}(i, tx)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		parked := l.nparked
		l.mu.Unlock()
		if parked == N {
			break
		}
		if time.Now().After(deadline) {
			l.ioMu.Unlock()
			t.Fatalf("only %d/%d commits parked", parked, N)
		}
		time.Sleep(time.Millisecond)
	}
	before := flushes.Load()
	l.ioMu.Unlock()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if d := flushes.Load() - before; d > 2 {
		t.Fatalf("%d parked commits took %d fsyncs, want coalescing", N, d)
	}
	if group.Count() == 0 || group.Sum()/time.Microsecond < N {
		t.Fatalf("group_size histogram: n=%d sum=%dus, want one group of %d",
			group.Count(), group.Sum()/time.Microsecond, N)
	}
}

func TestAsyncCommitDurableWithoutWait(t *testing.T) {
	l, _ := openTestLog(t)
	l.Begin(1)
	l.Update(1, 1, 2, 0, []byte("x"), []byte("y"))
	lsn, err := l.CommitWith(1, CommitAsync)
	if err != nil {
		t.Fatal(err)
	}
	// ASYNC returns immediately; the flusher must make it durable within
	// its bounded-loss window on its own.
	deadline := time.Now().Add(5 * time.Second)
	for !l.FlushedTo(lsn) {
		if time.Now().After(deadline) {
			t.Fatal("async commit never became durable")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseDrainsAsyncTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Begin(1)
	l.Update(1, 1, 2, 0, []byte("x"), []byte("y"))
	if _, err := l.CommitWith(1, CommitAsync); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // clean shutdown flushes the tail
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Scan(func(Record) error { n++; return nil })
	if n != 3 {
		t.Fatalf("async tail lost on clean close: %d records", n)
	}
}

func TestUpdateCopiesImagesOnce(t *testing.T) {
	l, _ := openTestLog(t)
	l.Begin(1)
	before := []byte("aaaa")
	after := []byte("bbbb")
	lsn, err := l.Update(1, 1, 2, 0, before, after)
	if err != nil {
		t.Fatal(err)
	}
	// The images are copied into the log at append time; the caller may
	// reuse its slices immediately.
	before[0], after[0] = 'X', 'Y'
	r, err := l.ReadRecord(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Before) != "aaaa" || string(r.After) != "bbbb" {
		t.Fatalf("images aliased caller slices: %q %q", r.Before, r.After)
	}
}

func TestTornCommitClassifiedLoser(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()
	page := make([]byte, storage.PageSize)
	copy(page, []byte("orig"))
	p.WritePage(id, page)

	l.Begin(1)
	l.Update(1, 1, uint64(id), 0, []byte("orig"), []byte("torn"))
	copy(page, []byte("torn")) // the update reached the page store
	p.WritePage(id, page)
	commitLSN, err := l.CommitWith(1, CommitSync)
	if err != nil {
		t.Fatal(err)
	}
	base := l.Base()
	l.Close()

	// Tear the COMMIT record: the crash happened mid-write, leaving only
	// half of its header on disk.
	cut := logHeaderSize + int64(commitLSN-base) + 4
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep, err := Recover(l2, spaces)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UndoneTx) != 1 || rep.UndoneTx[0] != 1 {
		t.Fatalf("torn commit must make tx 1 a loser: %+v", rep)
	}
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[:4], []byte("orig")) {
		t.Fatalf("before image not restored: %q", got[:4])
	}
	// The undo went through the CLR path and closed with an ABORT.
	var tail []RecType
	l2.Scan(func(r Record) error { tail = append(tail, r.Type); return nil })
	if len(tail) < 2 || tail[len(tail)-1] != RecAbort || tail[len(tail)-2] != RecCLR {
		t.Fatalf("expected ...CLR,ABORT tail, got %v", tail)
	}
}

// TestCrashPointMatrix kills the log at both sides of the flush boundary
// and checks what each crash image recovers to: before the flush the
// commit is simply absent (lost but consistent); after it, the commit is
// durable and redone.
func TestCrashPointMatrix(t *testing.T) {
	for _, tc := range []struct {
		name       string
		flush      bool
		wantCommit bool
	}{
		{"crash-before-flush", false, false},
		{"crash-after-flush", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, _ := openTestLog(t)
			spaces, p := testSpaces(t)
			id, _ := p.Allocate()

			// Hold the I/O lock across append (and optional inline flush)
			// so the background flusher cannot move the boundary under us.
			l.ioMu.Lock()
			l.Begin(1)
			l.Update(1, 1, uint64(id), 0, make([]byte, 4), []byte("data"))
			if _, err := l.CommitWith(1, CommitAsync); err != nil {
				l.ioMu.Unlock()
				t.Fatal(err)
			}
			if tc.flush {
				l.ioMu.Unlock()
				if err := l.Flush(); err != nil {
					t.Fatal(err)
				}
				l.ioMu.Lock()
			}
			img := durableImage(t, l)
			l.ioMu.Unlock()

			crashPath := filepath.Join(t.TempDir(), "crash.log")
			if err := os.WriteFile(crashPath, img, 0o644); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(crashPath)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			rep, err := Recover(l2, spaces)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, storage.PageSize)
			p.ReadPage(id, got)
			if tc.wantCommit {
				if rep.Redone == 0 || !bytes.Equal(got[:4], []byte("data")) {
					t.Fatalf("flushed commit lost: %+v page=%q", rep, got[:4])
				}
			} else {
				if rep.RecordsScanned != 0 || !bytes.Equal(got[:4], make([]byte, 4)) {
					t.Fatalf("unflushed tail leaked into crash image: %+v page=%q", rep, got[:4])
				}
			}
		})
	}
}

func TestCheckpointTruncateShrinksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 100)
	for tx := uint64(1); tx <= 20; tx++ {
		l.Begin(tx)
		l.Update(tx, 1, tx, 0, img, img)
		if _, err := l.CommitWith(tx, CommitSync); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := os.Stat(path)
	sizeBefore := st.Size()

	cp, cutoff, err := l.CheckpointCut()
	if err != nil {
		t.Fatal(err)
	}
	if cutoff != cp {
		t.Fatalf("no live txs: cutoff %d should equal checkpoint LSN %d", cutoff, cp)
	}
	dropped, err := l.TruncateTo(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("nothing truncated")
	}
	st, _ = os.Stat(path)
	if st.Size() >= sizeBefore {
		t.Fatalf("log file did not shrink: %d -> %d", sizeBefore, st.Size())
	}

	// The rotated log must keep working: append, reopen, scan from the new
	// base, and still refuse reads below it.
	l.Begin(30)
	l.Update(30, 1, 1, 0, []byte("x"), []byte("y"))
	if _, err := l.Commit(30); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != cutoff {
		t.Fatalf("reopened base %d, want %d", l2.Base(), cutoff)
	}
	var types []RecType
	l2.Scan(func(r Record) error { types = append(types, r.Type); return nil })
	if len(types) != 4 || types[0] != RecCheckpoint {
		t.Fatalf("retained records: %v", types)
	}
	if _, err := l2.ReadRecord(NilLSN + 32); err == nil {
		t.Fatal("read below the truncated base must fail")
	}
}

func TestTruncateRespectsLiveTx(t *testing.T) {
	l, _ := openTestLog(t)
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()
	page := make([]byte, storage.PageSize)
	copy(page, []byte("base"))
	p.WritePage(id, page)

	// Committed ballast first, then a transaction left open across the
	// checkpoint.
	for tx := uint64(1); tx <= 5; tx++ {
		l.Begin(tx)
		l.Update(tx, 1, 99, 0, make([]byte, 64), make([]byte, 64))
		l.CommitWith(tx, CommitSync)
	}
	l.Begin(7)
	l.Update(7, 1, uint64(id), 0, []byte("base"), []byte("live"))
	copy(page, []byte("live"))
	p.WritePage(id, page)

	cp, cutoff, err := l.CheckpointCut()
	if err != nil {
		t.Fatal(err)
	}
	if cutoff >= cp {
		t.Fatalf("cutoff %d must stop at live tx 7's first record (cp %d)", cutoff, cp)
	}
	if _, err := l.TruncateTo(cutoff); err != nil {
		t.Fatal(err)
	}
	// Tx 7's undo chain must have survived the truncation.
	if err := Rollback(l, spaces, 7); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[:4], []byte("base")) {
		t.Fatalf("live tx not undoable after truncation: %q", got[:4])
	}
}

func TestRecoverIgnoresStaleCheckpointEntry(t *testing.T) {
	// A checkpoint whose active table is stale — it lists a transaction
	// that committed before the checkpoint record was appended — must not
	// resurrect the committed transaction as a loser.
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()

	l.Begin(1)
	lsn, _ := l.Update(1, 1, uint64(id), 0, make([]byte, 4), []byte("keep"))
	l.Commit(1)
	if _, err := l.Checkpoint(map[uint64]LSN{1: lsn}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep, err := Recover(l2, spaces)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UndoneTx) != 0 {
		t.Fatalf("committed tx resurrected as loser: %+v", rep)
	}
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[:4], []byte("keep")) {
		t.Fatalf("committed data undone: %q", got[:4])
	}
}

func TestCommitOnClosedLogFails(t *testing.T) {
	l, _ := openTestLog(t)
	l.Begin(1)
	l.Close()
	if _, err := l.CommitWith(1, CommitGroup); err == nil {
		t.Fatal("commit on closed log must fail")
	}
	if _, err := l.Append(Record{Type: RecBegin, Tx: 2}); err == nil {
		t.Fatal("append on closed log must fail")
	}
}

func TestCommitModeStrings(t *testing.T) {
	for _, m := range []CommitMode{CommitSync, CommitGroup, CommitAsync} {
		if m.String() == "?" {
			t.Fatalf("mode %d has no name", m)
		}
		got, ok := ParseCommitMode(m.String())
		if !ok || got != m {
			t.Fatalf("round trip %v -> %v %v", m, got, ok)
		}
	}
	if _, ok := ParseCommitMode("BOGUS"); ok {
		t.Fatal("BOGUS parsed")
	}
}
