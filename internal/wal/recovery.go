package wal

import (
	"fmt"
)

// SpaceSet resolves space IDs to page stores during recovery and rollback.
type SpaceSet interface {
	// SpacePager returns the page store for a space ID.
	SpacePager(space uint32) (PageStore, bool)
}

// PageStore is the minimal page access recovery needs.
type PageStore interface {
	ReadPage(id uint64, buf []byte) error
	WritePage(id uint64, buf []byte) error
	// EnsurePages extends the store so pages below n exist (a crash may have
	// lost an allocation whose update survived in the log).
	EnsurePages(n uint64) error
	// PageSize returns the store's page size.
	PageSize() int
}

// MapSpaces is a SpaceSet backed by a map.
type MapSpaces map[uint32]PageStore

// SpacePager implements SpaceSet.
func (m MapSpaces) SpacePager(space uint32) (PageStore, bool) {
	p, ok := m[space]
	return p, ok
}

// RecoveryReport summarises a recovery run.
type RecoveryReport struct {
	RecordsScanned int
	Redone         int
	UndoneTx       []uint64
	UndoneRecords  int
}

// Recover brings the page stores to a transaction-consistent state after a
// crash: redo history in log order, then undo every loser transaction in
// reverse order, appending compensation records and a final ABORT for each.
func Recover(l *Log, spaces SpaceSet) (RecoveryReport, error) {
	var rep RecoveryReport

	// Analysis: find loser transactions (begun, neither committed nor
	// aborted) and their last LSNs. done remembers finished transactions so
	// a checkpoint's active table (stale by the time of a later COMMIT)
	// cannot resurrect them as losers.
	losers := make(map[uint64]LSN)
	undoNext := make(map[uint64]LSN) // resume point per tx (CLR-aware)
	done := make(map[uint64]bool)
	err := l.Scan(func(r Record) error {
		rep.RecordsScanned++
		switch r.Type {
		case RecBegin:
			losers[r.Tx] = r.LSN
			undoNext[r.Tx] = NilLSN
		case RecCommit, RecAbort:
			delete(losers, r.Tx)
			delete(undoNext, r.Tx)
			done[r.Tx] = true
		case RecUpdate:
			losers[r.Tx] = r.LSN
			undoNext[r.Tx] = r.LSN
		case RecCLR:
			losers[r.Tx] = r.LSN
			undoNext[r.Tx] = r.UndoNext
		case RecCheckpoint:
			for tx, lsn := range r.Active {
				if _, known := losers[tx]; !known && !done[tx] {
					losers[tx] = lsn
					undoNext[tx] = lsn
				}
			}
		}
		return nil
	})
	if err != nil {
		return rep, err
	}

	// Redo history: apply every after-image (updates and CLRs) in log order.
	err = l.Scan(func(r Record) error {
		if r.Type != RecUpdate && r.Type != RecCLR {
			return nil
		}
		if err := applyImage(spaces, r.Space, r.Page, r.Offset, r.After); err != nil {
			return err
		}
		rep.Redone++
		return nil
	})
	if err != nil {
		return rep, err
	}

	// Undo losers: walk each chain from its resume point, applying before
	// images and writing CLRs.
	for tx := range losers {
		rep.UndoneTx = append(rep.UndoneTx, tx)
		n, err := undoChain(l, spaces, tx, undoNext[tx])
		if err != nil {
			return rep, err
		}
		rep.UndoneRecords += n
		if _, err := l.Abort(tx); err != nil {
			return rep, err
		}
	}
	if err := l.Flush(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Rollback undoes a live transaction at run time: applies before-images back
// through the undo chain, writes CLRs, and appends ABORT.
func Rollback(l *Log, spaces SpaceSet, tx uint64) error {
	if _, err := undoChain(l, spaces, tx, l.LastLSN(tx)); err != nil {
		return err
	}
	_, err := l.Abort(tx)
	return err
}

func undoChain(l *Log, spaces SpaceSet, tx uint64, from LSN) (int, error) {
	undone := 0
	lsn := from
	for lsn != NilLSN {
		r, err := l.ReadRecord(lsn)
		if err != nil {
			return undone, fmt.Errorf("wal: undo tx %d at %d: %w", tx, lsn, err)
		}
		switch r.Type {
		case RecUpdate:
			if err := applyImage(spaces, r.Space, r.Page, r.Offset, r.Before); err != nil {
				return undone, err
			}
			if _, err := l.Append(Record{
				Type: RecCLR, Tx: tx, Space: r.Space, Page: r.Page,
				Offset: r.Offset, After: r.Before, UndoNext: r.PrevLSN,
			}); err != nil {
				return undone, err
			}
			undone++
			lsn = r.PrevLSN
		case RecCLR:
			lsn = r.UndoNext // skip already-compensated work
		default:
			lsn = r.PrevLSN
		}
	}
	return undone, nil
}

func applyImage(spaces SpaceSet, space uint32, page uint64, offset uint16, img []byte) error {
	if len(img) == 0 {
		return nil
	}
	ps, ok := spaces.SpacePager(space)
	if !ok {
		return fmt.Errorf("wal: unknown space %d in log", space)
	}
	if err := ps.EnsurePages(page + 1); err != nil {
		return err
	}
	buf := make([]byte, ps.PageSize())
	if err := ps.ReadPage(page, buf); err != nil {
		return err
	}
	if int(offset)+len(img) > len(buf) {
		return fmt.Errorf("wal: image overflows page %d (offset %d, len %d)", page, offset, len(img))
	}
	copy(buf[offset:], img)
	return ps.WritePage(page, buf)
}
