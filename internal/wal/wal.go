// Package wal implements the engine's write-ahead log and crash recovery.
//
// The paper observes (Section 5.3) that a DataBlade developer gets no access
// to Informix's log manager: indices stored in sbspace large objects inherit
// the server's coarse page-level recovery, and the fine-grained protocols of
// Kornacker et al. cannot be expressed. This package is that server-side log
// manager: physical byte-range logging of page updates with redo-history
// recovery (redo everything in log order, then undo loser transactions in
// reverse order, writing compensation records).
//
// The write path is built for concurrency. Append encodes records into an
// in-memory tail buffer (no syscall, one copy of the images, pooled buffers);
// a dedicated flusher goroutine writes and fsyncs the tail in batches; and
// committing sessions choose how to wait for durability (CommitMode): SYNC
// forces a private flush, GROUP parks on the flusher so concurrent commits
// coalesce into one fsync, ASYNC returns at append time with bounded loss.
// Checkpoint records plus TruncateTo rotation keep the log prefix — and the
// startup scan — bounded. See flush.go for the flusher, group commit, and
// rotation.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/obs"
)

// LSN is a log sequence number: the logical byte offset of a record in the
// log stream. LSNs are stable across truncation — rotating the log away
// under a record does not renumber the survivors.
type LSN uint64

// NilLSN terminates undo chains.
const NilLSN LSN = 0

// RecType discriminates log records.
type RecType uint8

const (
	// RecBegin marks the start of a transaction.
	RecBegin RecType = iota + 1
	// RecCommit marks a committed transaction; appending it forces the log.
	RecCommit
	// RecAbort marks a rolled-back transaction (after its undo completed).
	RecAbort
	// RecUpdate is a physical byte-range page update with before/after images.
	RecUpdate
	// RecCLR is a compensation record written while undoing an update.
	RecCLR
	// RecCheckpoint records the set of active transactions.
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecUpdate:
		return "UPDATE"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return "?"
}

// Record is one log record.
type Record struct {
	LSN     LSN
	Type    RecType
	Tx      uint64
	PrevLSN LSN // previous record of the same transaction (undo chain)
	Space   uint32
	Page    uint64
	Offset  uint16
	Before  []byte
	After   []byte
	// UndoNext, in a CLR, is the next record of the transaction still to be
	// undone; recovery resumes there instead of re-undoing compensated work.
	UndoNext LSN
	// Active, in a checkpoint, lists transactions alive at checkpoint time
	// with their last LSNs.
	Active map[uint64]LSN
}

// Obs is the set of observability hooks a Log mirrors its activity into.
// Nil fields are no-ops (the obs types are nil-safe); set before concurrent
// use.
type Obs struct {
	// Appends counts appended records, Flushes counts fsyncs, Bytes counts
	// appended bytes, TruncatedBytes counts log-prefix bytes dropped by
	// rotation.
	Appends, Flushes, Bytes, TruncatedBytes *obs.Counter
	// GroupSize records, per fsync, how many parked commits it made durable
	// (via Histogram.ObserveCount: .n = fsyncs that served commits, .us =
	// total commits served).
	GroupSize *obs.Histogram
}

// Log is an append-only write-ahead log backed by one file.
//
// Logical layout: LSNs [base, written) live in the file, [written,
// written+len(writing)) are mid-write by the flusher, and the tail up to
// size sits in the pending buffer. written and pending boundaries always
// fall on record boundaries, so any record lives wholly in one region.
type Log struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast whenever flushed advances

	base     LSN   // LSN of the first byte retained in the file
	size     int64 // logical append point (next LSN)
	written  int64 // records below this are in the file
	flushed  int64 // records below this are durable
	pending  []byte
	writing  []byte // owned by an in-flight flush (ioMu holder)
	lastLSN  map[uint64]LSN // per-transaction undo chain heads
	firstLSN map[uint64]LSN // per-transaction first record (truncation floor)
	nparked  int            // commits currently parked on the flusher
	closed   bool
	ioErr    error // sticky flusher I/O error, reported to waiters

	// ioMu serialises the write+fsync and rotation sections so that at most
	// one goroutine owns the file position and the writing buffer.
	ioMu sync.Mutex
	f    *os.File
	path string

	flushC chan struct{} // wakes the flusher (capacity 1)
	quit   chan struct{}
	done   chan struct{}

	obs Obs
}

// SetObs attaches observability hooks; call before concurrent use.
func (l *Log) SetObs(o Obs) { l.obs = o }

// Log file header: magic, format version, base LSN of the first record.
const logHeaderSize = 16
const logMagic = 0x47525457
const logVersion = 2

var errClosed = errors.New("wal: log closed")

// encode buffers are pooled across flush cycles; oversized ones (a huge
// checkpoint or image burst) are dropped rather than pinned forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

// Open opens or creates the log at path and positions appends at its end
// (discarding a torn tail, if any). The startup scan begins at the log's
// base LSN, so a checkpointed-and-truncated log opens in time proportional
// to the retained suffix, not total history.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{
		f:        f,
		path:     path,
		lastLSN:  make(map[uint64]LSN),
		firstLSN: make(map[uint64]LSN),
		flushC:   make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		l.base = logHeaderSize
		if err := writeHeader(f, l.base); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var hdr [logHeaderSize]byte
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, logHeaderSize), hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %s: short header", path)
		}
		if binary.BigEndian.Uint32(hdr[:4]) != logMagic {
			f.Close()
			return nil, fmt.Errorf("wal: %s is not a log file", path)
		}
		if v := binary.BigEndian.Uint32(hdr[4:8]); v != logVersion {
			f.Close()
			return nil, fmt.Errorf("wal: %s: unsupported log version %d", path, v)
		}
		l.base = LSN(binary.BigEndian.Uint64(hdr[8:16]))
	}
	// Scan to the end of valid records to find the append point and rebuild
	// per-transaction chains. The sentinel makes readAt treat the whole
	// stream as file-resident while the logical bounds are still unknown.
	l.size = 1 << 62
	l.written = 1 << 62
	end := int64(l.base)
	err = l.scan(func(r Record) error {
		if _, ok := l.firstLSN[r.Tx]; !ok && r.Type != RecCheckpoint {
			l.firstLSN[r.Tx] = r.LSN
		}
		l.lastLSN[r.Tx] = r.LSN
		if r.Type == RecCommit || r.Type == RecAbort {
			delete(l.lastLSN, r.Tx)
			delete(l.firstLSN, r.Tx)
		}
		end = int64(r.LSN) + int64(recordDiskSize(r))
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	l.size = end
	l.written = end
	l.flushed = end
	go l.flusher()
	return l, nil
}

func writeHeader(f *os.File, base LSN) error {
	var hdr [logHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], logMagic)
	binary.BigEndian.PutUint32(hdr[4:8], logVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(base))
	_, err := f.WriteAt(hdr[:], 0)
	return err
}

// fileOff maps a logical LSN to its offset in the current file. Caller
// holds mu (or ioMu during a flush, which excludes rotation).
func (l *Log) fileOff(lsn int64) int64 {
	return logHeaderSize + (lsn - int64(l.base))
}

// Close stops the flusher (which drains and fsyncs the tail) and closes the
// file. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.mu.Lock()
	err := l.ioErr
	l.cond.Broadcast() // release any stragglers; flushed covers them now
	l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LastLSN returns the head of tx's undo chain.
func (l *Log) LastLSN(tx uint64) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN[tx]
}

// Size returns the logical append point: total bytes ever appended plus the
// header. Monotonic across truncation (the checkpointer thresholds on its
// growth).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Base returns the LSN of the oldest retained byte (advances on TruncateTo).
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// ActiveTxs returns a copy of the live-transaction table (tx -> last LSN).
func (l *Log) ActiveTxs() map[uint64]LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint64]LSN, len(l.lastLSN))
	for tx, lsn := range l.lastLSN {
		out[tx] = lsn
	}
	return out
}

// OldestActive returns the smallest first-record LSN among live
// transactions, or NilLSN when none are live. Truncation must not pass it.
func (l *Log) OldestActive() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	min := NilLSN
	for _, lsn := range l.firstLSN {
		if min == NilLSN || lsn < min {
			min = lsn
		}
	}
	return min
}

// Append buffers the record (filling in LSN and PrevLSN) and returns its
// LSN. No syscall happens here: the record reaches the file on the next
// flush (the flusher's cadence, a commit, or an explicit Flush).
func (l *Log) Append(r Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return NilLSN, errClosed
	}
	return l.appendLocked(r), nil
}

// appendLocked encodes r directly into the pooled tail buffer — the only
// copy of the image bytes the log ever makes — and updates the
// per-transaction chains. Caller holds mu.
func (l *Log) appendLocked(r Record) LSN {
	r.LSN = LSN(l.size)
	if r.Type != RecCheckpoint {
		r.PrevLSN = l.lastLSN[r.Tx]
	}
	if l.pending == nil {
		l.pending = (*bufPool.Get().(*[]byte))[:0]
	}
	n0 := len(l.pending)
	l.pending = appendRecord(l.pending, r)
	n := len(l.pending) - n0
	l.size += int64(n)
	l.obs.Appends.Inc()
	l.obs.Bytes.Add(uint64(n))
	switch r.Type {
	case RecCommit, RecAbort:
		delete(l.lastLSN, r.Tx)
		delete(l.firstLSN, r.Tx)
	case RecCheckpoint:
		// no chain bookkeeping
	default:
		l.lastLSN[r.Tx] = r.LSN
		if _, ok := l.firstLSN[r.Tx]; !ok {
			l.firstLSN[r.Tx] = r.LSN
		}
	}
	return r.LSN
}

// Begin appends a BEGIN record for tx.
func (l *Log) Begin(tx uint64) (LSN, error) {
	return l.Append(Record{Type: RecBegin, Tx: tx})
}

// Update appends a physical byte-range update record. The images are copied
// exactly once, into the tail buffer, before Update returns — callers may
// reuse their slices immediately.
func (l *Log) Update(tx uint64, space uint32, page uint64, offset uint16, before, after []byte) (LSN, error) {
	return l.Append(Record{
		Type: RecUpdate, Tx: tx, Space: space, Page: page, Offset: offset,
		Before: before, After: after,
	})
}

// Commit appends a COMMIT record and returns once it is durable, riding the
// flusher's group commit (CommitGroup). Use CommitWith to pick the mode.
func (l *Log) Commit(tx uint64) (LSN, error) {
	return l.CommitWith(tx, CommitGroup)
}

// Abort appends an ABORT record (the caller must already have applied the
// undo, normally via Rollback).
func (l *Log) Abort(tx uint64) (LSN, error) {
	return l.Append(Record{Type: RecAbort, Tx: tx})
}

// Checkpoint appends a checkpoint record carrying the active-transaction
// table and makes it durable. Pass nil to snapshot the log's own
// live-transaction table atomically with the append (the engine's
// checkpointer does; tests may pass an explicit table).
func (l *Log) Checkpoint(active map[uint64]LSN) (LSN, error) {
	lsn, _, err := l.checkpoint(active)
	return lsn, err
}

// CheckpointCut appends a checkpoint record (snapshotting the live
// transactions atomically) and also returns the truncation cutoff: the
// oldest LSN recovery still needs, i.e. the minimum of the checkpoint LSN
// and every live transaction's first record. Any transaction whose page
// writes might still be in flight is live at the moment the record is
// appended, so forcing dirty pages after this call and truncating to the
// cutoff is safe.
func (l *Log) CheckpointCut() (lsn, cutoff LSN, err error) {
	return l.checkpoint(nil)
}

func (l *Log) checkpoint(active map[uint64]LSN) (lsn, cutoff LSN, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return NilLSN, NilLSN, errClosed
	}
	if active == nil {
		active = l.lastLSN
	}
	cp := Record{Type: RecCheckpoint, Active: make(map[uint64]LSN, len(active))}
	for tx, at := range active {
		cp.Active[tx] = at
	}
	lsn = l.appendLocked(cp)
	cutoff = lsn
	for _, first := range l.firstLSN {
		if first < cutoff {
			cutoff = first
		}
	}
	target := l.size
	l.mu.Unlock()
	return lsn, cutoff, l.flushTo(target)
}

// Flush forces all appended records to durable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	target := l.size
	l.mu.Unlock()
	return l.flushTo(target)
}

// FlushedTo reports whether the record at lsn is durable.
func (l *Log) FlushedTo(lsn LSN) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(lsn) < l.flushed
}

// ReadRecord reads the record at lsn (from the file or, for the unflushed
// tail, from the in-memory buffers — rollback walks chains that may not
// have hit disk yet).
func (l *Log) ReadRecord(lsn LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readAt(int64(lsn))
}

// Scan iterates all valid records in log order, starting at the base (the
// truncated prefix is gone). Iteration stops early if fn returns an error.
func (l *Log) Scan(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scan(fn)
}

func (l *Log) scan(fn func(Record) error) error {
	off := int64(l.base)
	for {
		r, err := l.readAt(off)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, errTorn) {
				return nil // clean end or torn tail
			}
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
		off += int64(recordDiskSize(r))
	}
}

var errTorn = errors.New("wal: torn record")

// readAt resolves the record at logical offset off from whichever region
// holds it: the file, the flusher's in-flight chunk, or the pending tail.
// Caller holds mu.
func (l *Log) readAt(off int64) (Record, error) {
	if off < int64(l.base) {
		return Record{}, fmt.Errorf("wal: LSN %d is below the truncated log base %d", off, l.base)
	}
	pendStart := l.written + int64(len(l.writing))
	if off >= pendStart {
		if off >= l.size {
			return Record{}, io.EOF
		}
		return decodeBytes(l.pending[off-pendStart:], off)
	}
	if off >= l.written {
		return decodeBytes(l.writing[off-l.written:], off)
	}
	var hdr [8]byte
	n, err := l.f.ReadAt(hdr[:], l.fileOff(off))
	if err != nil || n < 8 {
		if err == nil || errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<24 {
		return Record{}, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, l.fileOff(off)+8, int64(length)), payload); err != nil {
		return Record{}, errTorn
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, errTorn
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, err
	}
	r.LSN = LSN(off)
	return r, nil
}

// decodeBytes parses one record from an in-memory region.
func decodeBytes(b []byte, off int64) (Record, error) {
	if len(b) < 8 {
		return Record{}, errTorn
	}
	length := binary.BigEndian.Uint32(b[:4])
	sum := binary.BigEndian.Uint32(b[4:8])
	if length == 0 || length > 1<<24 || len(b) < 8+int(length) {
		return Record{}, errTorn
	}
	payload := b[8 : 8+length]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, errTorn
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, err
	}
	r.LSN = LSN(off)
	return r, nil
}

func recordDiskSize(r Record) int { return 8 + payloadSize(r) }

func payloadSize(r Record) int {
	n := 1 + 8 + 8 + 4 + 8 + 2 + 4 + len(r.Before) + 4 + len(r.After) + 8 + 4 + 16*len(r.Active)
	return n
}

// appendRecord encodes r (8-byte length+CRC header, then payload) directly
// onto buf. This is the single copy the image bytes make on the append
// path.
func appendRecord(buf []byte, r Record) []byte {
	hdrAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	pStart := len(buf)
	buf = append(buf, byte(r.Type))
	buf = binary.BigEndian.AppendUint64(buf, r.Tx)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.PrevLSN))
	buf = binary.BigEndian.AppendUint32(buf, r.Space)
	buf = binary.BigEndian.AppendUint64(buf, r.Page)
	buf = binary.BigEndian.AppendUint16(buf, r.Offset)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Before)))
	buf = append(buf, r.Before...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.After)))
	buf = append(buf, r.After...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.UndoNext))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Active)))
	for tx, lsn := range r.Active {
		buf = binary.BigEndian.AppendUint64(buf, tx)
		buf = binary.BigEndian.AppendUint64(buf, uint64(lsn))
	}
	payload := buf[pStart:]
	binary.BigEndian.PutUint32(buf[hdrAt:hdrAt+4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[hdrAt+4:hdrAt+8], crc32.ChecksumIEEE(payload))
	return buf
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1+8+8+4+8+2+4 {
		return r, errTorn
	}
	r.Type = RecType(p[0])
	p = p[1:]
	r.Tx = binary.BigEndian.Uint64(p)
	p = p[8:]
	r.PrevLSN = LSN(binary.BigEndian.Uint64(p))
	p = p[8:]
	r.Space = binary.BigEndian.Uint32(p)
	p = p[4:]
	r.Page = binary.BigEndian.Uint64(p)
	p = p[8:]
	r.Offset = binary.BigEndian.Uint16(p)
	p = p[2:]
	bl := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < bl {
		return r, errTorn
	}
	r.Before = append([]byte(nil), p[:bl]...)
	p = p[bl:]
	if len(p) < 4 {
		return r, errTorn
	}
	al := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < al {
		return r, errTorn
	}
	r.After = append([]byte(nil), p[:al]...)
	p = p[al:]
	if len(p) < 12 {
		return r, errTorn
	}
	r.UndoNext = LSN(binary.BigEndian.Uint64(p))
	p = p[8:]
	na := binary.BigEndian.Uint32(p)
	p = p[4:]
	if na > 0 {
		if uint32(len(p)) < 16*na {
			return r, errTorn
		}
		r.Active = make(map[uint64]LSN, na)
		for i := uint32(0); i < na; i++ {
			tx := binary.BigEndian.Uint64(p)
			lsn := LSN(binary.BigEndian.Uint64(p[8:]))
			r.Active[tx] = lsn
			p = p[16:]
		}
	}
	return r, nil
}
