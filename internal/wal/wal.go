// Package wal implements the engine's write-ahead log and crash recovery.
//
// The paper observes (Section 5.3) that a DataBlade developer gets no access
// to Informix's log manager: indices stored in sbspace large objects inherit
// the server's coarse page-level recovery, and the fine-grained protocols of
// Kornacker et al. cannot be expressed. This package is that server-side log
// manager: physical byte-range logging of page updates with redo-history
// recovery (redo everything in log order, then undo loser transactions in
// reverse order, writing compensation records).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/obs"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// NilLSN terminates undo chains.
const NilLSN LSN = 0

// RecType discriminates log records.
type RecType uint8

const (
	// RecBegin marks the start of a transaction.
	RecBegin RecType = iota + 1
	// RecCommit marks a committed transaction; appending it forces the log.
	RecCommit
	// RecAbort marks a rolled-back transaction (after its undo completed).
	RecAbort
	// RecUpdate is a physical byte-range page update with before/after images.
	RecUpdate
	// RecCLR is a compensation record written while undoing an update.
	RecCLR
	// RecCheckpoint records the set of active transactions.
	RecCheckpoint
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecUpdate:
		return "UPDATE"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return "?"
}

// Record is one log record.
type Record struct {
	LSN     LSN
	Type    RecType
	Tx      uint64
	PrevLSN LSN // previous record of the same transaction (undo chain)
	Space   uint32
	Page    uint64
	Offset  uint16
	Before  []byte
	After   []byte
	// UndoNext, in a CLR, is the next record of the transaction still to be
	// undone; recovery resumes there instead of re-undoing compensated work.
	UndoNext LSN
	// Active, in a checkpoint, lists transactions alive at checkpoint time
	// with their last LSNs.
	Active map[uint64]LSN
}

// Log is an append-only write-ahead log backed by one file.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	size    int64
	flushed int64
	lastLSN map[uint64]LSN // per-transaction undo chain heads

	obsAppends, obsFlushes, obsBytes *obs.Counter
}

// SetObs attaches observability counters for appended records, fsyncs, and
// appended bytes. Nil counters are no-ops; call before concurrent use.
func (l *Log) SetObs(appends, flushes, bytes *obs.Counter) {
	l.obsAppends, l.obsFlushes, l.obsBytes = appends, flushes, bytes
}

const logHeaderSize = 8 // magic
const logMagic = 0x47525457

// Open opens or creates the log at path and positions appends at its end
// (discarding a torn tail, if any).
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, lastLSN: make(map[uint64]LSN)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var hdr [logHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[:4], logMagic)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		l.size = logHeaderSize
		l.flushed = logHeaderSize
		return l, nil
	}
	var hdr [logHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[:4]) != logMagic {
		f.Close()
		return nil, fmt.Errorf("wal: %s is not a log file", path)
	}
	// Scan to the end of valid records to find the append point and rebuild
	// per-transaction chains.
	end := int64(logHeaderSize)
	err = l.scan(func(r Record) error {
		l.lastLSN[r.Tx] = r.LSN
		if r.Type == RecCommit || r.Type == RecAbort {
			delete(l.lastLSN, r.Tx)
		}
		end = int64(r.LSN) + int64(recordDiskSize(r))
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	l.size = end
	l.flushed = end
	return l, nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// LastLSN returns the head of tx's undo chain.
func (l *Log) LastLSN(tx uint64) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN[tx]
}

// Append writes the record (filling in LSN and PrevLSN) and returns its LSN.
// The record reaches durable storage on the next Flush (Commit flushes
// implicitly).
func (l *Log) Append(r Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = LSN(l.size)
	if r.Type != RecCheckpoint {
		r.PrevLSN = l.lastLSN[r.Tx]
	}
	buf := encodeRecord(r)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return NilLSN, err
	}
	l.size += int64(len(buf))
	l.obsAppends.Inc()
	l.obsBytes.Add(uint64(len(buf)))
	if r.Type == RecCommit || r.Type == RecAbort {
		delete(l.lastLSN, r.Tx)
	} else if r.Type != RecCheckpoint {
		l.lastLSN[r.Tx] = r.LSN
	}
	return r.LSN, nil
}

// Begin appends a BEGIN record for tx.
func (l *Log) Begin(tx uint64) (LSN, error) {
	return l.Append(Record{Type: RecBegin, Tx: tx})
}

// Update appends a physical byte-range update record.
func (l *Log) Update(tx uint64, space uint32, page uint64, offset uint16, before, after []byte) (LSN, error) {
	return l.Append(Record{
		Type: RecUpdate, Tx: tx, Space: space, Page: page, Offset: offset,
		Before: append([]byte(nil), before...), After: append([]byte(nil), after...),
	})
}

// Commit appends a COMMIT record and forces the log to durable storage.
func (l *Log) Commit(tx uint64) (LSN, error) {
	lsn, err := l.Append(Record{Type: RecCommit, Tx: tx})
	if err != nil {
		return NilLSN, err
	}
	return lsn, l.Flush()
}

// Abort appends an ABORT record (the caller must already have applied the
// undo, normally via Rollback).
func (l *Log) Abort(tx uint64) (LSN, error) {
	return l.Append(Record{Type: RecAbort, Tx: tx})
}

// Checkpoint appends a checkpoint record carrying the active-transaction
// table and flushes.
func (l *Log) Checkpoint(active map[uint64]LSN) (LSN, error) {
	cp := Record{Type: RecCheckpoint, Active: make(map[uint64]LSN, len(active))}
	for tx, lsn := range active {
		cp.Active[tx] = lsn
	}
	lsn, err := l.Append(cp)
	if err != nil {
		return NilLSN, err
	}
	return lsn, l.Flush()
}

// Flush forces all appended records to durable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.obsFlushes.Inc()
	l.flushed = l.size
	return nil
}

// FlushedTo reports whether the record at lsn is durable.
func (l *Log) FlushedTo(lsn LSN) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(lsn) < l.flushed
}

// ReadRecord reads the record at lsn.
func (l *Log) ReadRecord(lsn LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readAt(int64(lsn))
}

// Scan iterates all valid records in log order. Iteration stops early if fn
// returns an error.
func (l *Log) Scan(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scan(fn)
}

func (l *Log) scan(fn func(Record) error) error {
	off := int64(logHeaderSize)
	for {
		r, err := l.readAt(off)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, errTorn) {
				return nil // clean end or torn tail
			}
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
		off += int64(recordDiskSize(r))
	}
}

var errTorn = errors.New("wal: torn record")

func (l *Log) readAt(off int64) (Record, error) {
	var hdr [8]byte
	n, err := l.f.ReadAt(hdr[:], off)
	if err != nil || n < 8 {
		if err == nil || errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if length == 0 || length > 1<<24 {
		return Record{}, errTorn
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(l.f, off+8, int64(length)), payload); err != nil {
		return Record{}, errTorn
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, errTorn
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, err
	}
	r.LSN = LSN(off)
	return r, nil
}

func recordDiskSize(r Record) int { return 8 + payloadSize(r) }

func payloadSize(r Record) int {
	n := 1 + 8 + 8 + 4 + 8 + 2 + 4 + len(r.Before) + 4 + len(r.After) + 8 + 4 + 16*len(r.Active)
	return n
}

func encodeRecord(r Record) []byte {
	payload := make([]byte, 0, payloadSize(r))
	payload = append(payload, byte(r.Type))
	payload = binary.BigEndian.AppendUint64(payload, r.Tx)
	payload = binary.BigEndian.AppendUint64(payload, uint64(r.PrevLSN))
	payload = binary.BigEndian.AppendUint32(payload, r.Space)
	payload = binary.BigEndian.AppendUint64(payload, r.Page)
	payload = binary.BigEndian.AppendUint16(payload, r.Offset)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(r.Before)))
	payload = append(payload, r.Before...)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(r.After)))
	payload = append(payload, r.After...)
	payload = binary.BigEndian.AppendUint64(payload, uint64(r.UndoNext))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(r.Active)))
	for tx, lsn := range r.Active {
		payload = binary.BigEndian.AppendUint64(payload, tx)
		payload = binary.BigEndian.AppendUint64(payload, uint64(lsn))
	}
	out := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1+8+8+4+8+2+4 {
		return r, errTorn
	}
	r.Type = RecType(p[0])
	p = p[1:]
	r.Tx = binary.BigEndian.Uint64(p)
	p = p[8:]
	r.PrevLSN = LSN(binary.BigEndian.Uint64(p))
	p = p[8:]
	r.Space = binary.BigEndian.Uint32(p)
	p = p[4:]
	r.Page = binary.BigEndian.Uint64(p)
	p = p[8:]
	r.Offset = binary.BigEndian.Uint16(p)
	p = p[2:]
	bl := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < bl {
		return r, errTorn
	}
	r.Before = append([]byte(nil), p[:bl]...)
	p = p[bl:]
	if len(p) < 4 {
		return r, errTorn
	}
	al := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < al {
		return r, errTorn
	}
	r.After = append([]byte(nil), p[:al]...)
	p = p[al:]
	if len(p) < 12 {
		return r, errTorn
	}
	r.UndoNext = LSN(binary.BigEndian.Uint64(p))
	p = p[8:]
	na := binary.BigEndian.Uint32(p)
	p = p[4:]
	if na > 0 {
		if uint32(len(p)) < 16*na {
			return r, errTorn
		}
		r.Active = make(map[uint64]LSN, na)
		for i := uint32(0); i < na; i++ {
			tx := binary.BigEndian.Uint64(p)
			lsn := LSN(binary.BigEndian.Uint64(p[8:]))
			r.Active[tx] = lsn
			p = p[16:]
		}
	}
	return r, nil
}
