package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func openTestLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func testSpaces(t *testing.T) (MapSpaces, *storage.MemPager) {
	t.Helper()
	p := storage.NewMemPager()
	return MapSpaces{1: storage.WALStore{P: p}}, p
}

func TestAppendScanRoundTrip(t *testing.T) {
	l, _ := openTestLog(t)
	if _, err := l.Begin(7); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Update(7, 1, 3, 16, []byte("old"), []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(7); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := l.Scan(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("scanned %d records", len(recs))
	}
	if recs[0].Type != RecBegin || recs[1].Type != RecUpdate || recs[2].Type != RecCommit {
		t.Fatalf("types: %v %v %v", recs[0].Type, recs[1].Type, recs[2].Type)
	}
	u := recs[1]
	if u.LSN != lsn || u.Space != 1 || u.Page != 3 || u.Offset != 16 ||
		string(u.Before) != "old" || string(u.After) != "new" {
		t.Fatalf("update record: %+v", u)
	}
	if u.PrevLSN != recs[0].LSN {
		t.Fatal("undo chain broken")
	}
	// Random access.
	got, err := l.ReadRecord(lsn)
	if err != nil || got.Type != RecUpdate || string(got.After) != "new" {
		t.Fatalf("ReadRecord: %+v %v", got, err)
	}
}

func TestReopenFindsAppendPoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Begin(1)
	l.Update(1, 1, 2, 0, []byte("a"), []byte("b"))
	l.Flush()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN(1) == NilLSN {
		t.Fatal("reopen must rebuild undo chains for live transactions")
	}
	if _, err := l2.Commit(1); err != nil {
		t.Fatal(err)
	}
	count := 0
	l2.Scan(func(Record) error { count++; return nil })
	if count != 3 {
		t.Fatalf("records after reopen+append: %d", count)
	}
}

func TestTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Begin(1)
	l.Update(1, 1, 2, 0, []byte("aaaa"), []byte("bbbb"))
	l.Flush()
	l.Close()

	// Corrupt the last few bytes (torn write).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	l2.Scan(func(Record) error { count++; return nil })
	if count != 1 {
		t.Fatalf("torn record not dropped: %d records", count)
	}
}

func TestRollbackRestoresBeforeImages(t *testing.T) {
	l, _ := openTestLog(t)
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()
	page := make([]byte, storage.PageSize)
	copy(page[100:], []byte("original"))
	p.WritePage(id, page)

	l.Begin(9)
	// Mutate and log.
	before := append([]byte(nil), page[100:108]...)
	copy(page[100:], []byte("mutated!"))
	l.Update(9, 1, uint64(id), 100, before, page[100:108])
	p.WritePage(id, page)

	if err := Rollback(l, spaces, 9); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[100:108], []byte("original")) {
		t.Fatalf("rollback left %q", got[100:108])
	}
	// The log ends with CLR + ABORT.
	var types []RecType
	l.Scan(func(r Record) error { types = append(types, r.Type); return nil })
	if types[len(types)-1] != RecAbort || types[len(types)-2] != RecCLR {
		t.Fatalf("tail types: %v", types)
	}
}

func TestRecoverRedoCommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()

	// Committed transaction whose page write never reached the pager
	// (simulating a crash before buffer-pool flush).
	l.Begin(1)
	l.Update(1, 1, uint64(id), 10, make([]byte, 9), []byte("committed"))
	l.Commit(1)
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep, err := Recover(l2, spaces)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redone != 1 || len(rep.UndoneTx) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[10:19], []byte("committed")) {
		t.Fatalf("redo missing: %q", got[10:19])
	}
}

func TestRecoverUndoLoser(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()
	page := make([]byte, storage.PageSize)
	copy(page[0:], []byte("keep"))
	p.WritePage(id, page)

	// Winner commits, loser doesn't.
	l.Begin(1)
	l.Update(1, 1, uint64(id), 50, make([]byte, 6), []byte("winner"))
	l.Commit(1)
	l.Begin(2)
	l.Update(2, 1, uint64(id), 0, []byte("keep"), []byte("lose"))
	l.Update(2, 1, uint64(id), 60, make([]byte, 5), []byte("loser"))
	l.Flush()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rep, err := Recover(l2, spaces)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UndoneTx) != 1 || rep.UndoneTx[0] != 2 || rep.UndoneRecords != 2 {
		t.Fatalf("report: %+v", rep)
	}
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[0:4], []byte("keep")) {
		t.Fatalf("loser not undone: %q", got[0:4])
	}
	if !bytes.Equal(got[50:56], []byte("winner")) {
		t.Fatalf("winner lost: %q", got[50:56])
	}
	if !bytes.Equal(got[60:65], make([]byte, 5)) {
		t.Fatalf("loser tail not undone: %q", got[60:65])
	}
}

func TestRecoverIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	spaces, p := testSpaces(t)
	id, _ := p.Allocate()
	l.Begin(1)
	l.Update(1, 1, uint64(id), 0, make([]byte, 4), []byte("data"))
	l.Flush()
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(l2, spaces); err != nil {
		t.Fatal(err)
	}
	// Crash during recovery: run recovery again on the same log.
	if _, err := Recover(l2, spaces); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got := make([]byte, storage.PageSize)
	p.ReadPage(id, got)
	if !bytes.Equal(got[0:4], make([]byte, 4)) {
		t.Fatalf("double recovery corrupted page: %q", got[0:4])
	}
}

func TestRecoverExtendsSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Log an update to page 5 of a pager that has no pages yet.
	l.Begin(1)
	l.Update(1, 1, 5, 0, make([]byte, 3), []byte("hi!"))
	l.Commit(1)
	l.Close()

	spaces, p := testSpaces(t)
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := Recover(l2, spaces); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, storage.PageSize)
	if err := p.ReadPage(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0:3], []byte("hi!")) {
		t.Fatalf("redo to unallocated page: %q", got[0:3])
	}
}

func TestCheckpointCarriesActiveTx(t *testing.T) {
	l, _ := openTestLog(t)
	l.Begin(3)
	lsn, _ := l.Update(3, 1, 1, 0, []byte("x"), []byte("y"))
	if _, err := l.Checkpoint(map[uint64]LSN{3: lsn}); err != nil {
		t.Fatal(err)
	}
	var cp *Record
	l.Scan(func(r Record) error {
		if r.Type == RecCheckpoint {
			rc := r
			cp = &rc
		}
		return nil
	})
	if cp == nil || cp.Active[3] != lsn {
		t.Fatalf("checkpoint: %+v", cp)
	}
}

func TestUnknownSpaceError(t *testing.T) {
	l, _ := openTestLog(t)
	l.Begin(1)
	l.Update(1, 42, 1, 0, []byte("x"), []byte("y"))
	l.Flush()
	if _, err := Recover(l, MapSpaces{}); err == nil {
		t.Fatal("recovery with unknown space must fail")
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, ty := range []RecType{RecBegin, RecCommit, RecAbort, RecUpdate, RecCLR, RecCheckpoint, RecType(99)} {
		if ty.String() == "" {
			t.Fatal("empty type string")
		}
	}
}
