// Package lock provides the engine's lock manager: shared/exclusive locks on
// arbitrary resources (tables, rows, large objects) with strict two-phase
// locking, the isolation levels the paper discusses in Sections 5.3 and 5.5,
// and wait-for-graph deadlock detection.
//
// The sbspace layer uses it to implement Informix's "automatic two-phase
// locking at the large-object level": locks are acquired when a large object
// is opened and, depending on the lock mode and the transaction's isolation
// level, released either on close or at transaction end (Section 5.3).
package lock

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single owner.
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// compatible reports whether a lock in mode a held by one transaction is
// compatible with a request in mode b by another.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// IsolationLevel selects when read locks are released (Informix levels).
type IsolationLevel int

const (
	// DirtyRead takes no read locks at all.
	DirtyRead IsolationLevel = iota
	// CommittedRead releases shared locks as soon as the protected object
	// is closed; writers still hold exclusive locks to transaction end.
	CommittedRead
	// RepeatableRead holds even shared locks until the transaction ends
	// (Section 5.3: "If the repeatable-read isolation level is set, even the
	// shared locks on large objects will be released only when a
	// transaction commits").
	RepeatableRead
	// Snapshot reads from an MVCC snapshot captured at transaction start:
	// readers take no locks at all (the heap's version chains provide the
	// stable view), while writers keep two-phase exclusive locks. Not an
	// Informix level; it is what the version-chained heap enables.
	Snapshot
)

func (l IsolationLevel) String() string {
	switch l {
	case DirtyRead:
		return "DIRTY READ"
	case CommittedRead:
		return "COMMITTED READ"
	case Snapshot:
		return "SNAPSHOT"
	default:
		return "REPEATABLE READ"
	}
}

// ResourceKind tags the namespace of a lockable resource.
type ResourceKind uint8

const (
	// KindTable locks a whole table.
	KindTable ResourceKind = iota + 1
	// KindRow locks a single row.
	KindRow
	// KindLargeObject locks an sbspace large object.
	KindLargeObject
	// KindNamed locks an arbitrary named resource.
	KindNamed
)

// Resource identifies a lockable object.
type Resource struct {
	Kind ResourceKind
	A, B uint64 // kind-specific (table id / page+slot / LO handle / hash)
}

func (r Resource) String() string {
	return fmt.Sprintf("%d:%d/%d", r.Kind, r.A, r.B)
}

// TxID identifies a lock owner.
type TxID uint64

// ErrDeadlock is returned to the transaction chosen as the deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrAborted is returned to waiters whose wait was cancelled.
var ErrAborted = errors.New("lock: wait cancelled")

type request struct {
	tx      TxID
	mode    Mode
	granted bool
	ready   chan error
}

type lockState struct {
	queue []*request // granted prefix, then waiters in FIFO order
}

// Manager is the lock manager. The zero value is not usable; call New.
type Manager struct {
	mu    sync.Mutex
	locks map[Resource]*lockState
	held  map[TxID]map[Resource]Mode
	waits map[TxID]Resource // which resource each blocked tx waits for

	obsAcquires, obsWaits, obsDeadlocks *obs.Counter
}

// SetObs attaches observability counters: granted lock acquisitions, blocked
// waits, and deadlock victims. Nil counters are no-ops; call before
// concurrent use.
func (m *Manager) SetObs(acquires, waits, deadlocks *obs.Counter) {
	m.obsAcquires, m.obsWaits, m.obsDeadlocks = acquires, waits, deadlocks
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		locks: make(map[Resource]*lockState),
		held:  make(map[TxID]map[Resource]Mode),
		waits: make(map[TxID]Resource),
	}
}

// Acquire obtains the lock, blocking until granted. Lock upgrades (Shared →
// Exclusive by the same transaction) are supported. If granting would close
// a cycle in the wait-for graph, the requesting transaction receives
// ErrDeadlock instead of blocking forever.
func (m *Manager) Acquire(tx TxID, res Resource, mode Mode) error {
	m.mu.Lock()
	st := m.locks[res]
	if st == nil {
		st = &lockState{}
		m.locks[res] = st
	}

	// Re-entrant and upgrade handling.
	if cur, ok := m.held[tx][res]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil // already sufficient
		}
		// Upgrade S → X: legal once no other transaction holds the lock.
		if m.wouldDeadlock(tx, res) {
			m.mu.Unlock()
			m.obsDeadlocks.Inc()
			return ErrDeadlock
		}
		req := &request{tx: tx, mode: Exclusive, ready: make(chan error, 1)}
		st.queue = append([]*request{req}, st.queue...) // upgrades go first
		m.promoteLocked(res)
		if req.granted {
			m.recordLocked(tx, res, Exclusive)
			m.mu.Unlock()
			m.obsAcquires.Inc()
			return nil
		}
		m.waits[tx] = res
		m.mu.Unlock()
		m.obsWaits.Inc()
		err := <-req.ready
		m.mu.Lock()
		delete(m.waits, tx)
		if err == nil {
			m.recordLocked(tx, res, Exclusive)
		}
		m.mu.Unlock()
		if err == nil {
			m.obsAcquires.Inc()
		} else if err == ErrDeadlock {
			m.obsDeadlocks.Inc()
		}
		return err
	}

	req := &request{tx: tx, mode: mode, ready: make(chan error, 1)}
	st.queue = append(st.queue, req)
	m.promoteLocked(res)
	if req.granted {
		m.recordLocked(tx, res, mode)
		m.mu.Unlock()
		m.obsAcquires.Inc()
		return nil
	}
	if m.wouldDeadlock(tx, res) {
		// Remove our request and fail.
		m.removeRequestLocked(res, req)
		m.mu.Unlock()
		m.obsDeadlocks.Inc()
		return ErrDeadlock
	}
	m.waits[tx] = res
	m.mu.Unlock()
	m.obsWaits.Inc()
	err := <-req.ready
	m.mu.Lock()
	delete(m.waits, tx)
	if err == nil {
		m.recordLocked(tx, res, mode)
	}
	m.mu.Unlock()
	if err == nil {
		m.obsAcquires.Inc()
	} else if err == ErrDeadlock {
		m.obsDeadlocks.Inc()
	}
	return err
}

// TryAcquire obtains the lock without blocking; it reports whether the lock
// was granted.
func (m *Manager) TryAcquire(tx TxID, res Resource, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.locks[res]
	if st == nil {
		st = &lockState{}
		m.locks[res] = st
	}
	if cur, ok := m.held[tx][res]; ok {
		if cur == Exclusive || mode == Shared {
			return true
		}
		// Upgrade possible only when tx is the sole granted owner.
		for _, r := range st.queue {
			if r.granted && r.tx != tx {
				return false
			}
		}
		for _, r := range st.queue {
			if r.granted && r.tx == tx {
				r.mode = Exclusive
			}
		}
		m.recordLocked(tx, res, Exclusive)
		m.obsAcquires.Inc()
		return true
	}
	for _, r := range st.queue {
		if r.granted && r.tx != tx && !compatible(r.mode, mode) {
			return false
		}
		if !r.granted {
			return false // FIFO fairness: don't jump the queue
		}
	}
	req := &request{tx: tx, mode: mode, granted: true}
	st.queue = append(st.queue, req)
	m.recordLocked(tx, res, mode)
	m.obsAcquires.Inc()
	return true
}

// Release drops one lock held by tx. Transactions normally release through
// ReleaseAll at commit (strict 2PL); explicit Release exists for the
// committed-read shared-lock-on-close behaviour of sbspaces.
func (m *Manager) Release(tx TxID, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(tx, res)
}

// ReleaseAll drops every lock held by tx (commit or abort).
func (m *Manager) ReleaseAll(tx TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[tx] {
		m.releaseLocked(tx, res)
	}
	delete(m.held, tx)
}

// Holding returns the mode in which tx holds res, if any.
func (m *Manager) Holding(tx TxID, res Resource) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[tx][res]
	return mode, ok
}

// HeldCount returns how many locks tx currently holds.
func (m *Manager) HeldCount(tx TxID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[tx])
}

// WaiterCount returns the number of blocked requests across all resources
// (zero in a quiesced manager — deadlock victims and released waiters must
// not leak queue entries).
func (m *Manager) WaiterCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.locks {
		for _, r := range st.queue {
			if !r.granted {
				n++
			}
		}
	}
	return n
}

func (m *Manager) recordLocked(tx TxID, res Resource, mode Mode) {
	h := m.held[tx]
	if h == nil {
		h = make(map[Resource]Mode)
		m.held[tx] = h
	}
	if cur, ok := h[res]; !ok || mode == Exclusive && cur == Shared {
		h[res] = mode
	}
}

func (m *Manager) releaseLocked(tx TxID, res Resource) {
	st := m.locks[res]
	if st == nil {
		return
	}
	out := st.queue[:0]
	for _, r := range st.queue {
		if r.granted && r.tx == tx {
			continue
		}
		out = append(out, r)
	}
	st.queue = out
	if h := m.held[tx]; h != nil {
		delete(h, res)
	}
	if len(st.queue) == 0 {
		delete(m.locks, res)
		return
	}
	m.promoteLocked(res)
}

// promoteLocked grants as many queued requests as compatibility allows, in
// FIFO order. Caller holds m.mu.
func (m *Manager) promoteLocked(res Resource) {
	st := m.locks[res]
	for _, r := range st.queue {
		if r.granted {
			continue
		}
		ok := true
		for _, g := range st.queue {
			if g == r || !g.granted {
				continue
			}
			if g.tx == r.tx {
				continue // own lock (upgrade path)
			}
			if !compatible(g.mode, r.mode) {
				ok = false
				break
			}
		}
		if !ok {
			break // FIFO: don't let later requests starve this one
		}
		r.granted = true
		if r.ready != nil {
			r.ready <- nil
		}
	}
}

func (m *Manager) removeRequestLocked(res Resource, req *request) {
	st := m.locks[res]
	if st == nil {
		return
	}
	out := st.queue[:0]
	for _, r := range st.queue {
		if r != req {
			out = append(out, r)
		}
	}
	st.queue = out
	if len(st.queue) == 0 {
		delete(m.locks, res)
	} else {
		m.promoteLocked(res)
	}
}

// wouldDeadlock reports whether tx blocking on res would close a cycle in
// the wait-for graph. Caller holds m.mu.
func (m *Manager) wouldDeadlock(tx TxID, res Resource) bool {
	// tx would wait for every holder of res (and, transitively, whatever
	// they wait for). DFS over the wait-for graph looking for tx itself.
	visited := make(map[TxID]bool)
	var visit func(holder TxID) bool
	visit = func(holder TxID) bool {
		if holder == tx {
			return true
		}
		if visited[holder] {
			return false
		}
		visited[holder] = true
		waitRes, blocked := m.waits[holder]
		if !blocked {
			return false
		}
		for _, g := range m.locks[waitRes].queue {
			if g.granted && g.tx != holder && visit(g.tx) {
				return true
			}
		}
		return false
	}
	for _, g := range m.locks[res].queue {
		if g.granted && g.tx != tx && visit(g.tx) {
			return true
		}
	}
	return false
}
