package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var resA = Resource{Kind: KindTable, A: 1}
var resB = Resource{Kind: KindTable, A: 2}

func TestSharedCompatibility(t *testing.T) {
	m := New()
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, resA, Shared); err != nil {
		t.Fatal(err)
	}
	if n := m.HeldCount(1); n != 1 {
		t.Fatalf("held count %d", n)
	}
	if mode, ok := m.Holding(2, resA); !ok || mode != Shared {
		t.Fatal("tx 2 must hold S")
	}
}

func TestExclusiveBlocks(t *testing.T) {
	m := New()
	if err := m.Acquire(1, resA, Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(2, resA, Shared) }()
	select {
	case <-acquired:
		t.Fatal("S granted while X held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := New()
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, resA, Exclusive); err != nil {
		t.Fatalf("sole-owner upgrade: %v", err)
	}
	if mode, _ := m.Holding(1, resA); mode != Exclusive {
		t.Fatal("upgrade not recorded")
	}
	// X then S by same owner is a no-op.
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	m := New()
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, resA, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, resA, Exclusive) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another reader holds S")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := New()
	if err := m.Acquire(1, resA, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, resB, Exclusive); err != nil {
		t.Fatal(err)
	}
	// tx 1 waits for B.
	firstBlocked := make(chan error, 1)
	go func() { firstBlocked <- m.Acquire(1, resB, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// tx 2 requesting A closes the cycle: it must get ErrDeadlock.
	err := m.Acquire(2, resA, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	// Victim aborts; tx 1 proceeds.
	m.ReleaseAll(2)
	if err := <-firstBlocked; err != nil {
		t.Fatalf("survivor: %v", err)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two readers both upgrading is the classic upgrade deadlock.
	m := New()
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, resA, Shared); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(1, resA, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, resA, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected upgrade deadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestTryAcquire(t *testing.T) {
	m := New()
	if !m.TryAcquire(1, resA, Exclusive) {
		t.Fatal("try on free resource")
	}
	if m.TryAcquire(2, resA, Shared) {
		t.Fatal("try must fail against X")
	}
	if !m.TryAcquire(1, resA, Shared) {
		t.Fatal("re-entrant try")
	}
	m.ReleaseAll(1)
	if !m.TryAcquire(2, resA, Shared) {
		t.Fatal("try after release")
	}
	if !m.TryAcquire(3, resA, Shared) {
		t.Fatal("S-S try")
	}
	if m.TryAcquire(3, resA, Exclusive) {
		t.Fatal("upgrade try with other reader must fail")
	}
	m.ReleaseAll(2)
	if !m.TryAcquire(3, resA, Exclusive) {
		t.Fatal("sole-owner upgrade try")
	}
}

func TestExplicitRelease(t *testing.T) {
	m := New()
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	m.Release(1, resA)
	if _, ok := m.Holding(1, resA); ok {
		t.Fatal("release did not drop lock")
	}
	if err := m.Acquire(2, resA, Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestFIFONoStarvation(t *testing.T) {
	// A writer queued behind readers must not be starved by later readers.
	m := New()
	if err := m.Acquire(1, resA, Shared); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(2, resA, Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Acquire(3, resA, Shared) }()
	select {
	case <-readerDone:
		t.Fatal("late reader jumped over queued writer")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	m := New()
	const txs = 16
	const rounds = 200
	var counter int64
	var wg sync.WaitGroup
	for i := 0; i < txs; i++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := m.Acquire(tx, resA, Exclusive); err != nil {
					t.Errorf("tx %d: %v", tx, err)
					return
				}
				// Critical section: only one tx at a time.
				v := atomic.AddInt64(&counter, 1)
				if v != 1 {
					t.Errorf("mutual exclusion violated: %d", v)
				}
				atomic.AddInt64(&counter, -1)
				m.ReleaseAll(tx)
			}
		}(TxID(i + 1))
	}
	wg.Wait()
}

func TestIsolationLevelString(t *testing.T) {
	for _, l := range []IsolationLevel{DirtyRead, CommittedRead, RepeatableRead, Snapshot} {
		if l.String() == "" {
			t.Fatal("empty isolation string")
		}
	}
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode strings")
	}
	if (Resource{Kind: KindRow, A: 1, B: 2}).String() == "" {
		t.Fatal("resource string")
	}
}

// TestUpgradeDeadlockStorm drives many S→X upgrade collisions concurrently:
// per resource, two transactions both hold Shared and both request the
// Exclusive upgrade at once. Exactly one of each pair must be chosen as the
// deadlock victim, the survivor must obtain the upgrade once the victim
// releases, and the manager must end fully drained — no leaked waiters, no
// leaked queue entries. Run under -race this also exercises the
// grant/victim handoff for data races.
func TestUpgradeDeadlockStorm(t *testing.T) {
	m := New()
	const pairs = 32
	var wg sync.WaitGroup
	var victims, winners atomic.Int64
	for p := 0; p < pairs; p++ {
		res := Resource{Kind: KindNamed, A: uint64(p)}
		a, b := TxID(2*p+1), TxID(2*p+2)
		for _, tx := range []TxID{a, b} {
			if err := m.Acquire(tx, res, Shared); err != nil {
				t.Fatalf("shared acquire: %v", err)
			}
		}
		for _, tx := range []TxID{a, b} {
			wg.Add(1)
			go func(tx TxID) {
				defer wg.Done()
				err := m.Acquire(tx, res, Exclusive)
				switch err {
				case nil:
					if mode, ok := m.Holding(tx, res); !ok || mode != Exclusive {
						t.Errorf("tx %d: winner does not hold X", tx)
					}
					winners.Add(1)
					m.ReleaseAll(tx)
				case ErrDeadlock:
					victims.Add(1)
					m.ReleaseAll(tx) // victim aborts: drop its shared lock
				default:
					t.Errorf("tx %d: unexpected error %v", tx, err)
				}
			}(tx)
		}
	}
	wg.Wait()
	if victims.Load() != pairs || winners.Load() != pairs {
		t.Fatalf("victims=%d winners=%d, want %d each", victims.Load(), winners.Load(), pairs)
	}
	if n := m.WaiterCount(); n != 0 {
		t.Fatalf("leaked waiters: %d", n)
	}
	for p := 0; p < pairs; p++ {
		for _, tx := range []TxID{TxID(2*p + 1), TxID(2*p + 2)} {
			if n := m.HeldCount(tx); n != 0 {
				t.Fatalf("tx %d still holds %d locks", tx, n)
			}
		}
	}
}
