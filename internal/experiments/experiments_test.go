package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/grtree"
	"repro/internal/rstar"
)

func TestFunctionalExperiments(t *testing.T) {
	// Each table/figure experiment asserts its own paper-shape conditions
	// internally; a failure here means the reproduction regressed.
	var buf bytes.Buffer
	for _, id := range []string{"T1", "F2", "F3", "F4", "F5", "F6", "T2", "T3", "T5"} {
		buf.Reset()
		if err := Run(&buf, "../..", true, id); err != nil {
			t.Fatalf("%s: %v\noutput:\n%s", id, err, buf.String())
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestT1MatchesTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunT1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The six tuples of Table 1 at month granularity.
	for _, want := range []string{
		"John       Advertising      4/97       UC     3/97     5/97",
		"Tom        Management       3/97     7/97     6/97     8/97",
		"Jane       Sales            5/97       UC     5/97      NOW",
		"Julie      Sales            3/97     7/97     3/97      NOW",
		"Julie      Sales            8/97       UC     3/97     7/97",
		"Michelle   Management       5/97       UC     3/97      NOW",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 output missing %q\ngot:\n%s", want, out)
		}
	}
}

func TestT4CountsCode(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunT4(&buf, "../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LOC <= 0 {
			t.Errorf("row %q counted no code", r.Task)
		}
	}
}

func TestWorkloadGenerator(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Tuples = 300
	cfg.Days = 60
	w := Generate(cfg)
	if len(w.Final) != 300 {
		t.Fatalf("final tuples: %d", len(w.Final))
	}
	inserts, deletes := 0, 0
	for _, ev := range w.Events {
		if ev.Insert {
			inserts++
			if !ev.Extent.Valid() {
				t.Fatalf("invalid generated extent %v", ev.Extent)
			}
			if err := ev.Extent.ValidateInsert(ev.Day); err != nil {
				t.Fatalf("insert constraints: %v", err)
			}
		} else {
			deletes++
			if !ev.Closed.Valid() || ev.Closed.Current() {
				t.Fatalf("bad closed extent %v", ev.Closed)
			}
		}
	}
	if inserts != 300 || deletes == 0 {
		t.Fatalf("events: %d inserts %d deletes", inserts, deletes)
	}
	if len(w.Queries) == 0 || w.EndCT <= cfg.Start {
		t.Fatal("queries / end time")
	}
	// Determinism.
	w2 := Generate(cfg)
	if len(w2.Events) != len(w.Events) || w2.Events[17] != w.Events[17] {
		t.Fatal("generator must be deterministic per seed")
	}
}

// TestAdaptersAgreeWithTruth: replaying the same workload, the GR-tree and
// the max-substitution R*-tree must both produce exactly the ground truth.
func TestAdaptersAgreeWithTruth(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Tuples = 400
	cfg.Days = 80
	w := Generate(cfg)

	grt, err := NewGRTIndex(grtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mx, err := NewRSTIndex(rstar.DefaultConfig(), SubMax, chronon.FromDate(9999, 12, 31))
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(w, grt); err != nil {
		t.Fatal(err)
	}
	if err := Replay(w, mx); err != nil {
		t.Fatal(err)
	}
	if err := grt.Tree.Check(w.EndCT); err != nil {
		t.Fatal(err)
	}
	if err := mx.Tree.Check(); err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries[:50] {
		truth := w.TrueMatches(q, w.EndCT)
		g, err := grt.SearchCount(q, w.EndCT)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mx.SearchCount(q, w.EndCT)
		if err != nil {
			t.Fatal(err)
		}
		if g != truth {
			t.Fatalf("query %d: GR-tree %d vs truth %d", i, g, truth)
		}
		if m != truth {
			t.Fatalf("query %d: R*-MX %d vs truth %d", i, m, truth)
		}
	}
}

// TestP1Shape asserts the headline performance shape on a small workload:
// on fully now-relative data the GR-tree reads fewer nodes per query than
// the max-timestamp R*-tree, and the frozen R*-tree loses recall.
func TestP1Shape(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultWorkload()
	cfg.Tuples = 1200
	cfg.Days = 120
	rows, err := RunP1(&buf, cfg)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	byKey := map[string]P1Row{}
	for _, r := range rows {
		byKey[r.Index+"@"+itoa(r.NowFrac)] = r
	}
	grt1 := byKey["GR-tree@1.00"]
	mx1 := byKey["R*-MX@1.00"]
	ct1 := byKey["R*-CT@1.00"]
	if grt1.ReadsPerQ >= mx1.ReadsPerQ {
		t.Errorf("at nowFrac=1: GR-tree reads (%.1f) must beat R*-MX (%.1f)\n%s",
			grt1.ReadsPerQ, mx1.ReadsPerQ, buf.String())
	}
	if grt1.Recall < 0.999 || mx1.Recall < 0.999 {
		t.Errorf("GR-tree and R*-MX must have full recall: %.3f / %.3f", grt1.Recall, mx1.Recall)
	}
	if ct1.Recall > 0.95 {
		t.Errorf("R*-CT must lose recall on now-relative data: %.3f", ct1.Recall)
	}
	// With no now-relative data the indexes are on even terms: the gap at
	// nowFrac=0 must be far smaller than at nowFrac=1.
	grt0 := byKey["GR-tree@0.00"]
	mx0 := byKey["R*-MX@0.00"]
	gapNow := mx1.ReadsPerQ / grt1.ReadsPerQ
	gapGround := mx0.ReadsPerQ / grt0.ReadsPerQ
	if gapNow < gapGround {
		t.Errorf("the GR-tree advantage must grow with the now-relative fraction: %.2fx at 0 vs %.2fx at 1\n%s",
			gapGround, gapNow, buf.String())
	}
}

func itoa(f float64) string {
	switch f {
	case 0:
		return "0.00"
	case 0.25:
		return "0.25"
	case 0.5:
		return "0.50"
	case 0.75:
		return "0.75"
	default:
		return "1.00"
	}
}

// TestP2Shape: the GR-tree's leaf-level overlap must be lower than the
// max-timestamp R*-tree's on half-now-relative data.
func TestP2Shape(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultWorkload()
	cfg.Tuples = 1200
	cfg.Days = 120
	rows, err := RunP2(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	grt, mx := rows[0], rows[1]
	if grt.Overlap >= mx.Overlap {
		t.Errorf("GR-tree overlap (%.3g) must be below R*-MX (%.3g)\n%s", grt.Overlap, mx.Overlap, buf.String())
	}
	if grt.Area >= mx.Area {
		t.Errorf("GR-tree bound area (%.3g) must be below R*-MX (%.3g)", grt.Area, mx.Area)
	}
}

// TestP3Shape: per-node placement must open large objects per access;
// single-LO must not reopen.
func TestP3Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunP3(&buf, 800)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].LOOpens != 0 {
		t.Errorf("single-LO opens during search: %d", rows[0].LOOpens)
	}
	if rows[2].LOOpens == 0 || rows[2].LOOpens <= rows[1].LOOpens {
		t.Errorf("per-node (%d) must open more LOs than per-subtree (%d)", rows[2].LOOpens, rows[1].LOOpens)
	}
}

// TestP4Shape: restart-always restarts at least as much as
// restart-on-condense; no-condense leaves more nodes.
func TestP4Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunP4(&buf, 800)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]P4Row{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	if byPolicy["restart-always"].Restarts < byPolicy["restart-on-condense"].Restarts {
		t.Errorf("restart-always (%d) must be >= restart-on-condense (%d)",
			byPolicy["restart-always"].Restarts, byPolicy["restart-on-condense"].Restarts)
	}
	// No-condense only unlinks empty nodes, so it restarts at most as often
	// as the condensing policy and leaves at least as many nodes standing.
	if byPolicy["no-condense"].Restarts > byPolicy["restart-on-condense"].Restarts {
		t.Errorf("no-condense (%d) must restart at most as often as restart-on-condense (%d)",
			byPolicy["no-condense"].Restarts, byPolicy["restart-on-condense"].Restarts)
	}
	if byPolicy["no-condense"].PostNodes < byPolicy["restart-on-condense"].PostNodes {
		t.Errorf("no-condense must keep at least as many nodes (%d vs %d)",
			byPolicy["no-condense"].PostNodes, byPolicy["restart-on-condense"].PostNodes)
	}
}

func TestP6Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := RunP6(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "transaction") || !strings.Contains(out, "statement") {
		t.Fatalf("P6 output: %s", out)
	}
}

// TestP8Runs smoke-tests the parallel-scan sweep at a tiny scale: every
// degree must produce the same count (RunP8 fails internally on drift) and
// the serial row anchors the speedup column at 1.0.
func TestP8Runs(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunP8(&buf, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Workers != 1 || rows[0].Speedup != 1.0 {
		t.Fatalf("P8 rows: %+v", rows)
	}
	for _, r := range rows[1:] {
		if r.Utilization <= 0 {
			t.Errorf("workers=%d: no busy time recorded (utilization %v)", r.Workers, r.Utilization)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "../..", true, "ZZ"); err == nil {
		t.Fatal("unknown experiment id must fail")
	}
}
