package experiments

import (
	"testing"

	"repro/internal/grtree"
	"repro/internal/lock"
	"repro/internal/nodestore"
	"repro/internal/obs"
	"repro/internal/sbspace"
	"repro/internal/storage"
)

// TestP3ObsMatchesRawStats pins the bit-identity RunP3 relies on: the obs
// registry counters are incremented at exactly the sites that feed the raw
// storage.Stats / sbspace.Stats structs, so a registry snapshot and the raw
// stats read the same numbers — the P3 harness migration off raw stats did
// not change what is measured.
func TestP3ObsMatchesRawStats(t *testing.T) {
	reg := obs.NewRegistry()
	bp := storage.NewBufferPool(storage.NewMemPager(), 32)
	bp.SetObs(storage.ObsCounters{
		Fetches:   reg.Counter("bufferpool.fetches"),
		Hits:      reg.Counter("bufferpool.hits"),
		Reads:     reg.Counter("bufferpool.reads"),
		Writes:    reg.Counter("bufferpool.writes"),
		Evictions: reg.Counter("bufferpool.evictions"),
	})
	lm := lock.New()
	space := sbspace.New(1, "spc", bp, lm)
	space.SetObs(sbspace.ObsCounters{
		Creates: reg.Counter("sbspace.lo_creates"),
		Opens:   reg.Counter("sbspace.lo_opens"),
		Closes:  reg.Counter("sbspace.lo_closes"),
		Drops:   reg.Counter("sbspace.lo_drops"),
	})

	store, _, err := nodestore.CreateLO(space, 1, lock.CommittedRead, nodestore.PerNodeLO)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := grtree.Create(store, grtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultWorkload()
	cfg.Tuples = 400
	wl := Generate(cfg)
	for _, ev := range wl.Events {
		if !ev.Insert {
			continue
		}
		if err := tree.Insert(ev.Extent, grtree.Payload(ev.Payload), ev.Day); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range wl.Queries[:25] {
		if _, err := tree.SearchAll(grtree.Predicate{Op: grtree.OpOverlaps, Query: q}, wl.EndCT); err != nil {
			t.Fatal(err)
		}
	}
	lm.ReleaseAll(1)

	snap := reg.Snapshot()
	bs := bp.Stats()
	for name, raw := range map[string]uint64{
		"bufferpool.fetches":   bs.Fetches,
		"bufferpool.hits":      bs.Hits,
		"bufferpool.reads":     bs.Reads,
		"bufferpool.writes":    bs.Writes,
		"bufferpool.evictions": bs.Evictions,
	} {
		if got := snap.Get(name); got != raw {
			t.Errorf("%s: registry %d != raw %d", name, got, raw)
		}
	}
	ss := space.Stats()
	for name, raw := range map[string]uint64{
		"sbspace.lo_creates": ss.Creates,
		"sbspace.lo_opens":   ss.Opens,
		"sbspace.lo_closes":  ss.Closes,
		"sbspace.lo_drops":   ss.Drops,
	} {
		if got := snap.Get(name); got != raw {
			t.Errorf("%s: registry %d != raw %d", name, got, raw)
		}
	}
	// A per-node placement with real traffic should have moved the counters
	// this test exists to compare — guard against a vacuous pass.
	if bs.Fetches == 0 || ss.Opens == 0 {
		t.Fatalf("workload produced no traffic: fetches=%d opens=%d", bs.Fetches, ss.Opens)
	}
}
