package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/lock"
	"repro/internal/nodestore"
	"repro/internal/obs"
	"repro/internal/rstar"
	"repro/internal/sbspace"
	"repro/internal/storage"
	"repro/internal/temporal"
)

// P1Row is one row of the P1 sweep.
type P1Row struct {
	NowFrac    float64
	Index      string
	ReadsPerQ  float64
	Recall     float64
	Candidates float64 // fetched candidates per exact result (overfetch)
}

// RunP1 reproduces the headline performance shape ([BJSS98] as cited in
// Sections 1/3): search I/O per timeslice query for the GR-tree vs the
// R*-tree substitutes, swept over the fraction of now-relative tuples.
// Expected shape: the GR-tree's reads stay low and flat; R*-MX degrades as
// the now-relative fraction grows (max-timestamp rectangles overlap
// heavily); R*-CT reads little but loses recall.
func RunP1(w io.Writer, cfg WorkloadConfig) ([]P1Row, error) {
	var rows []P1Row
	fmt.Fprintf(w, "P1: search I/O per query (tuples=%d, queries=%d)\n", cfg.Tuples, 200)
	fmt.Fprintf(w, "%-8s %-10s %12s %8s %12s\n", "nowFrac", "index", "nodeReads/q", "recall", "candidates/q")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		c := cfg
		c.NowFrac = frac
		wl := Generate(c)

		grt, err := NewGRTIndex(grtree.DefaultConfig())
		if err != nil {
			return nil, err
		}
		mx, err := NewRSTIndex(rstar.DefaultConfig(), SubMax, chronon.FromDate(9999, 12, 31))
		if err != nil {
			return nil, err
		}
		ct, err2 := NewRSTIndex(rstar.DefaultConfig(), SubAsOf, chronon.FromDate(9999, 12, 31))
		if err2 != nil {
			return nil, err2
		}
		for _, idx := range []Index{grt, mx, ct} {
			if err := Replay(wl, idx); err != nil {
				return nil, fmt.Errorf("%s: %w", idx.Name(), err)
			}
			idx.ResetReads()
			exact, truth, candidates := 0, 0, 0
			for _, q := range wl.Queries {
				if rst, ok := idx.(*RSTIndex); ok {
					e, cand, err := rst.SearchCandidates(q, wl.EndCT)
					if err != nil {
						return nil, err
					}
					exact += e
					candidates += cand
				} else {
					e, err := idx.SearchCount(q, wl.EndCT)
					if err != nil {
						return nil, err
					}
					exact += e
					candidates += e
				}
				truth += wl.TrueMatches(q, wl.EndCT)
			}
			recall := 1.0
			if truth > 0 {
				recall = float64(exact) / float64(truth)
			}
			row := P1Row{
				NowFrac:    frac,
				Index:      idx.Name(),
				ReadsPerQ:  float64(idx.NodeReads()) / float64(len(wl.Queries)),
				Recall:     recall,
				Candidates: float64(candidates) / float64(len(wl.Queries)),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-8.2f %-10s %12.1f %8.3f %12.1f\n",
				row.NowFrac, row.Index, row.ReadsPerQ, row.Recall, row.Candidates)
		}
	}
	return rows, nil
}

// P2Row is one row of the overlap / dead-space comparison.
type P2Row struct {
	Index      string
	Overlap    float64 // total sibling-bound intersection area (leaf level)
	Area       float64 // total leaf-bound area
	DeadSpace  float64 // sampled dead-space ratio (GR-tree only)
	LeafNodes  int
	TreeHeight int
}

// RunP2 reproduces Section 3's structural claim: the GR-tree's bounding
// regions produce less overlap and dead space than max-timestamp
// rectangles over the same now-relative data.
func RunP2(w io.Writer, cfg WorkloadConfig) ([]P2Row, error) {
	wl := Generate(cfg)
	var rows []P2Row

	grt, err := NewGRTIndex(grtree.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := Replay(wl, grt); err != nil {
		return nil, err
	}
	gs, err := grt.Tree.Stats(wl.EndCT, 20000, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var gOverlap, gArea float64
	var gLeaf int
	for _, l := range gs.PerLevel {
		if l.Level == 0 {
			gOverlap, gArea, gLeaf = l.Overlap, l.Area, l.Nodes
		}
	}
	rows = append(rows, P2Row{Index: "GR-tree", Overlap: gOverlap, Area: gArea,
		DeadSpace: gs.DeadSpaceRatio, LeafNodes: gLeaf, TreeHeight: gs.Height})

	mx, err := NewRSTIndex(rstar.DefaultConfig(), SubMax, chronon.FromDate(9999, 12, 31))
	if err != nil {
		return nil, err
	}
	if err := Replay(wl, mx); err != nil {
		return nil, err
	}
	ls, err := mx.Tree.Stats()
	if err != nil {
		return nil, err
	}
	var mOverlap, mArea float64
	var mLeaf int
	for _, l := range ls {
		if l.Level == 0 {
			mOverlap, mArea, mLeaf = l.Overlap, l.Area, l.Nodes
		}
	}
	rows = append(rows, P2Row{Index: "R*-MX", Overlap: mOverlap, Area: mArea,
		DeadSpace: -1, LeafNodes: mLeaf, TreeHeight: mx.Tree.Height()})

	fmt.Fprintf(w, "P2: leaf-level overlap and dead space (tuples=%d, nowFrac=%.2f)\n", cfg.Tuples, cfg.NowFrac)
	fmt.Fprintf(w, "%-10s %14s %14s %10s %8s %7s\n", "index", "overlapArea", "boundArea", "deadSpace", "leaves", "height")
	for _, r := range rows {
		ds := "n/a"
		if r.DeadSpace >= 0 {
			ds = fmt.Sprintf("%.3f", r.DeadSpace)
		}
		fmt.Fprintf(w, "%-10s %14.3g %14.3g %10s %8d %7d\n", r.Index, r.Overlap, r.Area, ds, r.LeafNodes, r.TreeHeight)
	}
	return rows, nil
}

// P3Row is one row of the storage-placement ablation.
type P3Row struct {
	Placement   string
	LOOpens     uint64
	PageFetches uint64
	HandleBytes int
}

// RunP3 reproduces the Section 5.3 design space: large-object placement
// (whole index / per subtree / per node) vs open/close traffic.
func RunP3(w io.Writer, tuples int) ([]P3Row, error) {
	placements := []struct {
		name string
		pl   nodestore.Placement
	}{
		{"single-LO", nodestore.SingleLO},
		{"subtree-LO(16)", nodestore.PerSubtreeLO(16)},
		{"per-node-LO", nodestore.PerNodeLO},
	}
	var rows []P3Row
	fmt.Fprintf(w, "P3: sbspace placement ablation (tuples=%d, 100 queries)\n", tuples)
	fmt.Fprintf(w, "%-15s %10s %12s %12s\n", "placement", "LO opens", "page I/O", "handle bytes")
	cfg := DefaultWorkload()
	cfg.Tuples = tuples
	wl := Generate(cfg)
	for _, p := range placements {
		// Measurement goes through the obs registry (snapshot deltas over the
		// query phase) rather than raw storage/sbspace stats; the counters are
		// incremented at the same sites, so the numbers are bit-identical
		// (asserted by TestP3ObsMatchesRawStats).
		reg := obs.NewRegistry()
		bp := storage.NewBufferPool(storage.NewMemPager(), 64)
		bp.SetObs(storage.ObsCounters{
			Fetches:   reg.Counter("bufferpool.fetches"),
			Hits:      reg.Counter("bufferpool.hits"),
			Reads:     reg.Counter("bufferpool.reads"),
			Writes:    reg.Counter("bufferpool.writes"),
			Evictions: reg.Counter("bufferpool.evictions"),
		})
		lm := lock.New()
		space := sbspace.New(1, "spc", bp, lm)
		space.SetObs(sbspace.ObsCounters{
			Creates: reg.Counter("sbspace.lo_creates"),
			Opens:   reg.Counter("sbspace.lo_opens"),
			Closes:  reg.Counter("sbspace.lo_closes"),
			Drops:   reg.Counter("sbspace.lo_drops"),
		})
		store, _, err := nodestore.CreateLO(space, 1, lock.CommittedRead, p.pl)
		if err != nil {
			return nil, err
		}
		tree, err := grtree.Create(store, grtree.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for _, ev := range wl.Events {
			if !ev.Insert {
				continue
			}
			if err := tree.Insert(ev.Extent, grtree.Payload(ev.Payload), ev.Day); err != nil {
				return nil, err
			}
		}
		// Measure the query phase only.
		base := reg.Snapshot()
		for _, q := range wl.Queries[:100] {
			if _, err := tree.SearchAll(grtree.Predicate{Op: grtree.OpOverlaps, Query: q}, wl.EndCT); err != nil {
				return nil, err
			}
		}
		delta := reg.Snapshot().Delta(base)
		row := P3Row{
			Placement:   p.name,
			LOOpens:     delta.Get("sbspace.lo_opens"),
			PageFetches: delta.Get("bufferpool.fetches"),
			HandleBytes: sbspace.HandleSize,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-15s %10d %12d %12d\n", row.Placement, row.LOOpens, row.PageFetches, row.HandleBytes)
		lm.ReleaseAll(1)
	}
	return rows, nil
}

// NewPlacedGRTIndex builds a GR-tree stored in a fresh in-memory sbspace
// under the given large-object placement (benchmark support for P3).
func NewPlacedGRTIndex(p nodestore.Placement) (*grtree.Tree, *nodestore.LOStore, error) {
	bp := storage.NewBufferPool(storage.NewMemPager(), 64)
	space := sbspace.New(1, "spc", bp, lock.New())
	store, _, err := nodestore.CreateLO(space, 1, lock.CommittedRead, p)
	if err != nil {
		return nil, nil, err
	}
	tree, err := grtree.Create(store, grtree.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	return tree, store, nil
}

// P4Row is one row of the deletion-policy ablation.
type P4Row struct {
	Policy       string
	Restarts     int
	NodeReads    uint64
	PostNodes    int
	PostSearchIO float64
}

// RunP4 reproduces the Section 5.5 deletion discussion: scan restarts and
// I/O under the three condensation policies, plus the search penalty of
// keeping underfull nodes.
func RunP4(w io.Writer, tuples int) ([]P4Row, error) {
	var rows []P4Row
	fmt.Fprintf(w, "P4: deletion policy ablation (tuples=%d, delete 60%% by predicate)\n", tuples)
	fmt.Fprintf(w, "%-20s %10s %12s %12s %14s\n", "policy", "restarts", "nodeReads", "nodes after", "searchIO after")
	for _, pol := range []grtree.DeletePolicy{grtree.RestartOnCondense, grtree.RestartAlways, grtree.NoCondense} {
		cfg := DefaultWorkload()
		cfg.Tuples = tuples
		wl := Generate(cfg)
		tcfg := grtree.DefaultConfig()
		tcfg.DeletePolicy = pol
		idx, err := NewGRTIndex(tcfg)
		if err != nil {
			return nil, err
		}
		if err := Replay(wl, idx); err != nil {
			return nil, err
		}
		// Delete all tuples whose transaction time started in the first 60%
		// of the simulated window.
		cut := cfg.Start + chronon.Instant(int64(float64(wl.EndCT-cfg.Start)*0.6))
		pred := grtree.Predicate{Op: grtree.OpOverlaps, Query: temporal.Extent{
			TTBegin: cfg.Start - 200, TTEnd: cut, VTBegin: cfg.Start - 400, VTEnd: wl.EndCT + 400,
		}}
		idx.ResetReads()
		_, restarts, err := idx.Tree.DeleteWhere(pred, wl.EndCT)
		if err != nil {
			return nil, err
		}
		reads := idx.NodeReads()
		st, err := idx.Tree.Stats(wl.EndCT, 0, 0)
		if err != nil {
			return nil, err
		}
		idx.ResetReads()
		for _, q := range wl.Queries[:100] {
			if _, err := idx.SearchCount(q, wl.EndCT); err != nil {
				return nil, err
			}
		}
		row := P4Row{
			Policy: pol.String(), Restarts: restarts, NodeReads: reads,
			PostNodes: st.Nodes, PostSearchIO: float64(idx.NodeReads()) / 100,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-20s %10d %12d %12d %14.1f\n", row.Policy, row.Restarts, row.NodeReads, row.PostNodes, row.PostSearchIO)
	}
	return rows, nil
}

// P5Row compares hard-coded and dynamic strategy dispatch.
type P5Row struct {
	Dispatch string
	PerQuery time.Duration
	// Profile is the last query's per-statement execution profile
	// (Result.Stats), demonstrating that both dispatch modes do identical
	// index work — only the UDR-resolution overhead differs.
	Profile *engine.StmtStats
}

// RunP5 measures the Section 5.2 trade-off: dynamic UDR resolution of
// strategy functions vs hard-coded invocation, through full SQL queries.
func RunP5(w io.Writer, tuples, queries int) ([]P5Row, error) {
	var rows []P5Row
	fmt.Fprintf(w, "P5: strategy dispatch (tuples=%d, %d queries each)\n", tuples, queries)
	for _, mode := range []string{"hardcoded", "dynamic"} {
		clock := chronon.NewVirtualClock(chronon.MustParse("1/97"))
		e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
		if err != nil {
			return nil, err
		}
		if err := grtblade.Register(e); err != nil {
			e.Close()
			return nil, err
		}
		s := e.NewSession()
		if _, err := s.ExecScript(`CREATE SBSPACE spc; CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`); err != nil {
			e.Close()
			return nil, err
		}
		if _, err := s.Exec(fmt.Sprintf(
			`CREATE INDEX ix ON T(X) USING grtree_am (dispatch='%s') IN spc`, mode)); err != nil {
			e.Close()
			return nil, err
		}
		for i := 0; i < tuples; i++ {
			clock.Advance(1)
			day := clock.Now()
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s, UC, %s, NOW')`,
				i, day.String(), (day - 30).String())); err != nil {
				e.Close()
				return nil, err
			}
		}
		q := fmt.Sprintf(`SELECT COUNT(*) FROM T WHERE Overlaps(X, '%s, UC, %s, NOW')`,
			clock.Now().String(), (clock.Now() - 10).String())
		start := time.Now()
		var last *engine.Result
		for i := 0; i < queries; i++ {
			res, err := s.Exec(q)
			if err != nil {
				e.Close()
				return nil, err
			}
			last = res
		}
		per := time.Since(start) / time.Duration(queries)
		rows = append(rows, P5Row{Dispatch: mode, PerQuery: per, Profile: last.Stats})
		fmt.Fprintf(w, "  %-10s %12v/query  [%s]\n", mode, per, last.Stats)
		s.Close()
		e.Close()
	}
	return rows, nil
}

// RunP6 demonstrates the Section 5.4 current-time policies through SQL: a
// long transaction sees stable answers under the per-transaction policy and
// shifting answers under the per-statement policy.
func RunP6(w io.Writer) error {
	for _, policy := range []string{"transaction", "statement"} {
		clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
		e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
		if err != nil {
			return err
		}
		if err := grtblade.Register(e); err != nil {
			e.Close()
			return err
		}
		s := e.NewSession()
		script := fmt.Sprintf(`CREATE SBSPACE spc;
			CREATE TABLE T (X GRT_TimeExtent_t);
			CREATE INDEX ix ON T(X) USING grtree_am (timepolicy='%s') IN spc;
			INSERT INTO T VALUES ('5/97, UC, 5/97, NOW')`, policy)
		if _, err := s.ExecScript(script); err != nil {
			e.Close()
			return err
		}
		q := `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/98, 2/98, 1/98, 2/98')`
		if _, err := s.Exec(`BEGIN WORK`); err != nil {
			e.Close()
			return err
		}
		r1, err := s.Exec(q)
		if err != nil {
			e.Close()
			return err
		}
		clock.Set(chronon.MustParse("3/98")) // months pass mid-transaction
		r2, err := s.Exec(q)
		if err != nil {
			e.Close()
			return err
		}
		s.Exec(`COMMIT`)
		fmt.Fprintf(w, "P6 timepolicy=%-12s first=%v second=%v (clock advanced 9/97 -> 3/98 mid-transaction)\n",
			policy, r1.Rows[0][0], r2.Rows[0][0])
		s.Close()
		e.Close()
	}
	fmt.Fprintln(w, "  per-transaction: both statements agree (stable reads);")
	fmt.Fprintln(w, "  per-statement:   the second statement sees the grown stair.")
	return nil
}

// P8Row records one degree of the intra-query parallel-scan sweep.
type P8Row struct {
	Workers  int
	PerQuery time.Duration
	RowsPerS float64
	Speedup  float64 // vs the workers=1 row
	// Utilization is the fraction of worker wall-time spent producing
	// batches (parallel.busy_ns / (workers * elapsed)); the rest is
	// scheduling and send-side backpressure.
	Utilization float64
}

// RunP8 measures intra-query parallel scans: one broad timeslice COUNT(*)
// over a GR-tree index, swept over SET PARALLEL 1/2/4/8. The degree offered
// to am_parallelscan is capped at GOMAXPROCS, so the sweep temporarily
// raises it; on a host with a single schedulable CPU the workers interleave
// and the numbers measure the pool's overhead rather than speedup (the
// worker-utilization column makes this visible).
func RunP8(w io.Writer, tuples, queries int) ([]P8Row, error) {
	degrees := []int{1, 2, 4, 8}
	if cur := runtime.GOMAXPROCS(0); cur < degrees[len(degrees)-1] {
		old := runtime.GOMAXPROCS(degrees[len(degrees)-1])
		defer runtime.GOMAXPROCS(old)
	}
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		return nil, err
	}
	s := e.NewSession()
	defer s.Close()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t);
		CREATE INDEX ix ON T(X) USING grtree_am (maxentries=16) IN spc`); err != nil {
		return nil, err
	}
	for i := 0; i < tuples; i++ {
		m, y := i%12+1, 90+(i/12)%7 // 1/90 .. 12/96, before the 9/97 current time
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/%d, UC, %d/%d, NOW')`,
			i, m, y, m, y)); err != nil {
			return nil, err
		}
	}
	// The residual N >= 0 (always true) keeps the qualification partial so
	// the COUNT drains the scan pipeline — this experiment measures the
	// parallel workers, not am_aggregate's zero-tuple shortcut (see P14).
	q := `SELECT COUNT(*) FROM T WHERE Overlaps(X, '1/90, UC, 1/90, NOW') AND N >= 0`
	busy := e.Obs().Counter("parallel.busy_ns")

	fmt.Fprintf(w, "P8: intra-query parallel scan (tuples=%d, %d queries per degree, GOMAXPROCS=%d, NumCPU=%d)\n",
		tuples, queries, runtime.GOMAXPROCS(0), runtime.NumCPU())
	var rows []P8Row
	var want any
	var base time.Duration
	for _, deg := range degrees {
		if _, err := s.Exec(fmt.Sprintf(`SET PARALLEL %d`, deg)); err != nil {
			return nil, err
		}
		busy0 := busy.Load()
		start := time.Now()
		for i := 0; i < queries; i++ {
			res, err := s.Exec(q)
			if err != nil {
				return nil, err
			}
			if want == nil {
				want = res.Rows[0][0]
			} else if res.Rows[0][0] != want {
				return nil, fmt.Errorf("P8: count drifted at workers=%d: %v != %v", deg, res.Rows[0][0], want)
			}
		}
		elapsed := time.Since(start)
		per := elapsed / time.Duration(queries)
		if deg == 1 {
			base = per
		}
		row := P8Row{
			Workers:  deg,
			PerQuery: per,
			RowsPerS: float64(want.(int64)) * float64(queries) / elapsed.Seconds(),
			Speedup:  float64(base) / float64(per),
		}
		if deg > 1 {
			row.Utilization = float64(busy.Load()-busy0) / (float64(deg) * float64(elapsed.Nanoseconds()))
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "  workers=%d %12v/query %12.0f rows/s  speedup %.2fx  utilization %.2f\n",
			row.Workers, row.PerQuery, row.RowsPerS, row.Speedup, row.Utilization)
	}
	fmt.Fprintln(w, "  (speedup is bounded by schedulable CPUs; utilization near 1/workers means the host serialized the pool)")
	return rows, nil
}

// P9Row records one cell of the commit-mode sweep.
type P9Row struct {
	Mode            string
	Writers         int
	PerCommit       time.Duration
	CommitsPerS     float64
	FsyncsPerCommit float64
	// SpeedupVsSync compares commits/s against the SYNC row at the same
	// writer count (1.0 for the SYNC rows themselves).
	SpeedupVsSync float64
}

// RunP9 measures commit throughput through the full engine with a real
// on-disk WAL: writers × {SYNC, GROUP, ASYNC} auto-commit inserts, each
// writer into its own table. SYNC pays one private fsync per commit; GROUP
// parks committers on the flusher so concurrent commits share fsyncs
// (fsyncs/commit drops below 1); ASYNC returns at append time and is
// bounded-loss. fsync coalescing is an I/O-wait effect, so the win is real
// even on a single schedulable CPU.
func RunP9(w io.Writer, commits int) ([]P9Row, error) {
	modes := []string{"SYNC", "GROUP", "ASYNC"}
	writerCounts := []int{1, 2, 4, 8}
	fmt.Fprintf(w, "P9: group commit (commits=%d per cell, on-disk WAL, GOMAXPROCS=%d)\n",
		commits, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-6s %-8s %14s %12s %14s %10s\n",
		"mode", "writers", "per-commit", "commits/s", "fsyncs/commit", "vs SYNC")
	var rows []P9Row
	syncBase := map[int]float64{}
	for _, mode := range modes {
		for _, writers := range writerCounts {
			row, err := runP9Cell(mode, writers, commits)
			if err != nil {
				return nil, err
			}
			if mode == "SYNC" {
				syncBase[writers] = row.CommitsPerS
			}
			if base := syncBase[writers]; base > 0 {
				row.SpeedupVsSync = row.CommitsPerS / base
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6s %-8d %14v %12.0f %14.2f %9.2fx\n",
				row.Mode, row.Writers, row.PerCommit, row.CommitsPerS,
				row.FsyncsPerCommit, row.SpeedupVsSync)
		}
	}
	fmt.Fprintln(w, "  (ASYNC commits return at append time: bounded loss, no fsync wait;")
	fmt.Fprintln(w, "   its fsyncs come from the flusher's 5ms cadence and checkpoints)")
	return rows, nil
}

func runP9Cell(mode string, writers, commits int) (P9Row, error) {
	dir, err := os.MkdirTemp("", "tinyblade-p9-*")
	if err != nil {
		return P9Row{}, err
	}
	defer os.RemoveAll(dir)
	e, err := engine.Open(engine.Options{
		Dir:   dir,
		Clock: chronon.NewVirtualClock(chronon.MustParse("9/97")),
	})
	if err != nil {
		return P9Row{}, err
	}
	defer e.Close()

	// One table per writer: heap tables serialise at the session level.
	setup := e.NewSession()
	for i := 0; i < writers; i++ {
		if _, err := setup.Exec(fmt.Sprintf(`CREATE TABLE c%d (a INTEGER)`, i)); err != nil {
			setup.Close()
			return P9Row{}, err
		}
	}
	setup.Close()

	sessions := make([]*engine.Session, writers)
	for i := range sessions {
		sessions[i] = e.NewSession()
		if _, err := sessions[i].Exec("SET COMMIT " + mode); err != nil {
			return P9Row{}, err
		}
		defer sessions[i].Close()
	}

	// Untimed warm-up: first-touch costs (catalog lookups, initial page
	// allocation, the first flusher wake-ups) land outside the timed region
	// so cells measure steady-state commit cost.
	for i, s := range sessions {
		for n := 0; n < 16; n++ {
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO c%d VALUES (-1)`, i)); err != nil {
				return P9Row{}, err
			}
		}
	}

	per := commits / writers
	flushes := e.Obs().Counter("wal.flushes")
	flushes0 := flushes.Load()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := sessions[i]
			for n := 0; n < per; n++ {
				if _, err := s.Exec(fmt.Sprintf(`INSERT INTO c%d VALUES (%d)`, i, n)); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return P9Row{}, err
		}
	}
	total := per * writers
	return P9Row{
		Mode:            mode,
		Writers:         writers,
		PerCommit:       elapsed / time.Duration(total),
		CommitsPerS:     float64(total) / elapsed.Seconds(),
		FsyncsPerCommit: float64(flushes.Load()-flushes0) / float64(total),
	}, nil
}

// P10Row records one cell of the MVCC readers-vs-writers sweep.
type P10Row struct {
	Readers    int
	Writers    int
	ReadsPerS  float64
	WritesPerS float64
	// ReaderLockAcquires is the lock.acquires movement not accounted for by
	// the writers' own table X locks — under snapshot-isolated reads it must
	// be exactly zero.
	ReaderLockAcquires uint64
	VersionsCreated    uint64
	VersionsSkipped    uint64
	Vacuumed           int
}

// RunP10 measures the MVCC read path: reader sessions running snapshot
// SELECTs concurrently with writer sessions committing single-row UPDATEs.
// Readers acquire no locks at all (the lock.acquires delta is fully
// explained by the writers' table X locks), so reader throughput is not
// serialised against the writers and writers are never blocked behind
// readers. Each UPDATE appends a version to the row's chain; the
// versions_skipped column shows readers stepping over versions outside
// their read view, and the final vacuum reclaims every superseded version
// once no snapshot can see it.
func RunP10(w io.Writer, selects, updates int) ([]P10Row, error) {
	cells := []struct{ readers, writers int }{
		{1, 0}, {4, 0}, {2, 1}, {4, 2}, {4, 4},
	}
	fmt.Fprintf(w, "P10: MVCC readers vs writers (selects=%d/reader, updates=%d/writer, GOMAXPROCS=%d)\n",
		selects, updates, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-8s %-8s %10s %10s %10s %10s %10s %9s\n",
		"readers", "writers", "reads/s", "writes/s", "rdr-locks", "created", "skipped", "vacuumed")
	var rows []P10Row
	for _, c := range cells {
		row, err := runP10Cell(c.readers, c.writers, selects, updates)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8d %-8d %10.0f %10.0f %10d %10d %10d %9d\n",
			row.Readers, row.Writers, row.ReadsPerS, row.WritesPerS,
			row.ReaderLockAcquires, row.VersionsCreated, row.VersionsSkipped, row.Vacuumed)
	}
	fmt.Fprintln(w, "  (rdr-locks is lock.acquires minus the writers' own statement X locks: 0 = lock-free reads)")
	return rows, nil
}

func runP10Cell(readers, writers, selects, updates int) (P10Row, error) {
	// In-memory engine with the background vacuum disabled so the cell's
	// lock arithmetic has exactly one source of acquisitions: the writers.
	e, err := engine.Open(engine.Options{
		Clock:          chronon.NewVirtualClock(chronon.MustParse("9/97")),
		VacuumInterval: -1,
	})
	if err != nil {
		return P10Row{}, err
	}
	defer e.Close()

	const tableRows = 400
	setup := e.NewSession()
	if _, err := setup.Exec(`CREATE TABLE rw (a INTEGER, pad VARCHAR(64))`); err != nil {
		setup.Close()
		return P10Row{}, err
	}
	if _, err := setup.Exec(`BEGIN WORK`); err != nil {
		setup.Close()
		return P10Row{}, err
	}
	for i := 0; i < tableRows; i++ {
		if _, err := setup.Exec(fmt.Sprintf(`INSERT INTO rw VALUES (%d, 'seed-%d')`, i, i)); err != nil {
			setup.Close()
			return P10Row{}, err
		}
	}
	if _, err := setup.Exec(`COMMIT WORK`); err != nil {
		setup.Close()
		return P10Row{}, err
	}
	setup.Close()

	acquires := e.Obs().Counter("lock.acquires")
	created := e.Obs().Counter("mvcc.versions_created")
	skipped := e.Obs().Counter("mvcc.versions_skipped")
	acq0, cre0, skp0 := acquires.Load(), created.Load(), skipped.Load()

	var wg sync.WaitGroup
	errs := make([]error, readers+writers)
	start := time.Now()
	var readElapsed, writeElapsed time.Duration
	var readMu sync.Mutex
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			t0 := time.Now()
			for n := 0; n < selects; n++ {
				if _, err := s.Exec(`SELECT COUNT(*) FROM rw WHERE a >= 0`); err != nil {
					errs[slot] = err
					return
				}
			}
			readMu.Lock()
			if d := time.Since(t0); d > readElapsed {
				readElapsed = d
			}
			readMu.Unlock()
		}(r)
	}
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			t0 := time.Now()
			for n := 0; n < updates; n++ {
				stmt := fmt.Sprintf(`UPDATE rw SET pad = 'w%d-%d' WHERE a = %d`, id, n, n%tableRows)
				if _, err := s.Exec(stmt); err != nil {
					errs[slot] = err
					return
				}
			}
			readMu.Lock()
			if d := time.Since(t0); d > writeElapsed {
				writeElapsed = d
			}
			readMu.Unlock()
		}(readers+wr, wr)
	}
	wg.Wait()
	_ = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return P10Row{}, err
		}
	}

	writeStmts := uint64(writers * updates)
	row := P10Row{
		Readers:            readers,
		Writers:            writers,
		ReaderLockAcquires: acquires.Load() - acq0 - writeStmts,
		VersionsCreated:    created.Load() - cre0,
		VersionsSkipped:    skipped.Load() - skp0,
	}
	if readers > 0 && readElapsed > 0 {
		row.ReadsPerS = float64(readers*selects) / readElapsed.Seconds()
	}
	if writers > 0 && writeElapsed > 0 {
		row.WritesPerS = float64(writeStmts) / writeElapsed.Seconds()
	}
	// With every session closed no snapshot is live: the vacuum must
	// reclaim exactly the superseded versions the updates created.
	row.Vacuumed, err = e.VacuumNow()
	if err != nil {
		return P10Row{}, err
	}
	return row, nil
}

// P12Row records one cell of the online index build experiment.
type P12Row struct {
	Mode      string // "bulk" (STR am_build) or "insert" (row-at-a-time)
	Rows      int
	BuildTime time.Duration
	RowsPerS  float64
	RowsBulk  uint64 // idxbuild.rows_bulk movement for the build
}

// P12Online records the concurrent-writer cell: writer throughput with an
// online build holding its side log open versus the idle baseline.
type P12Online struct {
	Inserts         int
	IdlePerS        float64 // writers alone, no build in flight
	DuringBuildPerS float64 // writers racing an online build's bulk phase
	SideReplayed    uint64  // idxbuild.sidelog_replayed movement
	PublishLatch    time.Duration
}

// p12Extent cycles through the valid Figure 2 tt/vt combinations at the
// virtual clock's 9/97.
func p12Extent(i int) string {
	m := i%9 + 1
	switch i % 4 {
	case 0:
		return fmt.Sprintf("%d/97, UC, %d/97, NOW", m, i%m+1)
	case 1:
		tt1, vt1 := i%5+1, i%6+1
		return fmt.Sprintf("%d/97, %d/97, %d/97, %d/97", tt1, tt1+i%4, vt1, vt1+i%4)
	case 2:
		vt1 := i%7 + 1
		return fmt.Sprintf("%d/97, UC, %d/97, %d/97", m, vt1, vt1+i%3)
	default:
		tt1 := i%5 + 2
		return fmt.Sprintf("%d/97, %d/97, %d/97, NOW", tt1, tt1+i%3, i%tt1+1)
	}
}

func p12Engine(rows int) (*engine.Engine, error) {
	e, err := engine.Open(engine.Options{Clock: chronon.NewVirtualClock(chronon.MustParse("9/97"))})
	if err != nil {
		return nil, err
	}
	if err := grtblade.Register(e); err != nil {
		e.Close()
		return nil, err
	}
	s := e.NewSession()
	defer s.Close()
	for _, stmt := range []string{
		`CREATE SBSPACE spc`,
		`CREATE TABLE emp (name VARCHAR(16), ext GRT_TimeExtent_t)`,
		`BEGIN WORK`,
	} {
		if _, err := s.Exec(stmt); err != nil {
			e.Close()
			return nil, err
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO emp VALUES ('r%d', '%s')`, i, p12Extent(i))); err != nil {
			e.Close()
			return nil, err
		}
	}
	if _, err := s.Exec(`COMMIT WORK`); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

func runP12BuildCell(mode string, rows int) (P12Row, error) {
	e, err := p12Engine(rows)
	if err != nil {
		return P12Row{}, err
	}
	defer e.Close()
	s := e.NewSession()
	defer s.Close()
	bulk0 := e.Obs().Snapshot().Get("idxbuild.rows_bulk")
	start := time.Now()
	_, err = s.Exec(fmt.Sprintf(
		`CREATE INDEX ix ON emp(ext grt_opclass) USING grtree_am (build='%s') IN spc`, mode))
	elapsed := time.Since(start)
	if err != nil {
		return P12Row{}, err
	}
	if _, err := s.Exec(`CHECK INDEX ix`); err != nil {
		return P12Row{}, err
	}
	return P12Row{
		Mode:      mode,
		Rows:      rows,
		BuildTime: elapsed,
		RowsPerS:  float64(rows) / elapsed.Seconds(),
		RowsBulk:  e.Obs().Snapshot().Get("idxbuild.rows_bulk") - bulk0,
	}, nil
}

// runP12Writers measures auto-commit insert throughput for one writer
// session, optionally while an online CREATE INDEX is parked in its
// lock-free bulk phase (so every insert is captured by the side log).
func runP12Writers(rows, inserts int, duringBuild bool) (P12Online, error) {
	e, err := p12Engine(rows)
	if err != nil {
		return P12Online{}, err
	}
	defer e.Close()

	res := P12Online{Inserts: inserts}
	runWriters := func() (float64, error) {
		s := e.NewSession()
		defer s.Close()
		start := time.Now()
		for i := 0; i < inserts; i++ {
			n := rows + i
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO emp VALUES ('w%d', '%s')`, n, p12Extent(n))); err != nil {
				return 0, err
			}
		}
		return float64(inserts) / time.Since(start).Seconds(), nil
	}

	if !duringBuild {
		perS, err := runWriters()
		if err != nil {
			return P12Online{}, err
		}
		res.IdlePerS = perS
		return res, nil
	}

	side0 := e.Obs().Snapshot().Get("idxbuild.sidelog_replayed")
	latch0 := e.Obs().Snapshot().Get("idxbuild.publish_latch_ns")
	writerDone := make(chan struct{})
	var writerPerS float64
	var writerErr error
	e.SetBuildHookForTesting(func(stage string) error {
		if stage == "bulk" {
			writerPerS, writerErr = runWriters()
			close(writerDone)
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)
	b := e.NewSession()
	defer b.Close()
	if _, err := b.Exec(`CREATE INDEX ix ON emp(ext grt_opclass) USING grtree_am IN spc`); err != nil {
		return P12Online{}, err
	}
	<-writerDone
	if writerErr != nil {
		return P12Online{}, writerErr
	}
	if _, err := b.Exec(`CHECK INDEX ix`); err != nil {
		return P12Online{}, err
	}
	res.DuringBuildPerS = writerPerS
	res.SideReplayed = e.Obs().Snapshot().Get("idxbuild.sidelog_replayed") - side0
	res.PublishLatch = time.Duration(e.Obs().Snapshot().Get("idxbuild.publish_latch_ns") - latch0)
	return res, nil
}

// RunP12 measures the online index build: the STR bulk-load fast path
// versus row-at-a-time loading across table sizes, then writer throughput
// while a build is in flight (the point of building online: DML is not
// blocked for the duration, only captured and replayed).
func RunP12(w io.Writer, rows int) ([]P12Row, error) {
	fmt.Fprintf(w, "P12: online index build (grtree_am, GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-8s %-8s %14s %12s %10s\n", "mode", "rows", "build-time", "rows/s", "rows_bulk")
	var out []P12Row
	for _, n := range []int{rows / 4, rows} {
		var bulk, ins P12Row
		var err error
		if ins, err = runP12BuildCell("insert", n); err != nil {
			return nil, err
		}
		if bulk, err = runP12BuildCell("bulk", n); err != nil {
			return nil, err
		}
		for _, row := range []P12Row{ins, bulk} {
			fmt.Fprintf(w, "%-8s %-8d %14v %12.0f %10d\n",
				row.Mode, row.Rows, row.BuildTime, row.RowsPerS, row.RowsBulk)
			out = append(out, row)
		}
		fmt.Fprintf(w, "  (STR bulk vs insert at %d rows: %.2fx)\n", n,
			ins.BuildTime.Seconds()/bulk.BuildTime.Seconds())
	}

	inserts := rows / 4
	idle, err := runP12Writers(rows, inserts, false)
	if err != nil {
		return nil, err
	}
	during, err := runP12Writers(rows, inserts, true)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "  writer throughput (%d auto-commit inserts): idle %.0f/s, during online build %.0f/s (%.2fx)\n",
		inserts, idle.IdlePerS, during.DuringBuildPerS, during.DuringBuildPerS/idle.IdlePerS)
	fmt.Fprintf(w, "  side-log ops replayed: %d; publish latch held: %v\n",
		during.SideReplayed, during.PublishLatch)
	return out, nil
}
