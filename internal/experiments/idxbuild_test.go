package experiments

import "testing"

// TestP12BuildCells: both build modes index the same table successfully;
// only the bulk cell moves idxbuild.rows_bulk through am_build, and both
// report a positive build time.
func TestP12BuildCells(t *testing.T) {
	if testing.Short() {
		t.Skip("index build sweep")
	}
	ins, err := runP12BuildCell("insert", 300)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := runP12BuildCell("bulk", 300)
	if err != nil {
		t.Fatal(err)
	}
	if ins.BuildTime <= 0 || bulk.BuildTime <= 0 {
		t.Fatalf("non-positive build times: %v / %v", ins.BuildTime, bulk.BuildTime)
	}
	if bulk.RowsBulk != 300 {
		t.Fatalf("bulk cell loaded %d rows via the bulk counter, want 300", bulk.RowsBulk)
	}
}

// TestP12OnlineWriters: the concurrent cell must capture and replay the
// writers' side-log traffic and record a publish latch.
func TestP12OnlineWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("index build sweep")
	}
	row, err := runP12Writers(200, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.DuringBuildPerS <= 0 {
		t.Fatal("no writer throughput measured during the build")
	}
	if row.SideReplayed == 0 {
		t.Fatal("no side-log ops replayed: the writers did not overlap the build")
	}
	if row.PublishLatch <= 0 {
		t.Fatal("publish latch time not recorded")
	}
}
