package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment against a writer.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns the experiment registry in run order. root is the repository
// root (T4's LOC inventory); quick shrinks the performance workloads.
func All(root string, quick bool) []Runner {
	scale := func(full, small int) int {
		if quick {
			return small
		}
		return full
	}
	return []Runner{
		{"T1", "Table 1: the EmpDep relation", RunT1},
		{"F2", "Figures 1-2: the six timestamp combinations", RunF2},
		{"F3", "Figure 3: R*-tree example, dead space", RunF3},
		{"F4", "Figure 4: minimum bounding regions", RunF4},
		{"F5", "Figure 5: GR-tree structure", RunF5},
		{"F6", "Figure 6: purpose-function call sequences", RunF6},
		{"T2", "Table 2: purpose-function tasks", RunT2},
		{"T3", "Table 3 / Figure 8: the Julie query", RunT3},
		{"T4", "Table 4: implementation inventory", func(w io.Writer) error {
			_, err := RunT4(w, root)
			return err
		}},
		{"T5", "Table 5 / Appendix A: purpose-function protocol", RunT5},
		{"P1", "Search I/O: GR-tree vs R*-tree substitutes", func(w io.Writer) error {
			cfg := DefaultWorkload()
			cfg.Tuples = scale(5000, 1200)
			cfg.Days = scale(500, 120)
			_, err := RunP1(w, cfg)
			return err
		}},
		{"P2", "Overlap and dead space", func(w io.Writer) error {
			cfg := DefaultWorkload()
			cfg.Tuples = scale(5000, 1200)
			cfg.Days = scale(500, 120)
			_, err := RunP2(w, cfg)
			return err
		}},
		{"P3", "sbspace placement ablation", func(w io.Writer) error {
			_, err := RunP3(w, scale(3000, 800))
			return err
		}},
		{"P4", "Deletion-policy ablation", func(w io.Writer) error {
			_, err := RunP4(w, scale(3000, 800))
			return err
		}},
		{"P5", "Strategy dispatch: hard-coded vs dynamic", func(w io.Writer) error {
			_, err := RunP5(w, scale(1500, 300), scale(50, 10))
			return err
		}},
		{"P6", "Current-time policy demonstration", RunP6},
		{"P8", "Intra-query parallel scan sweep", func(w io.Writer) error {
			_, err := RunP8(w, scale(4000, 800), scale(20, 5))
			return err
		}},
		{"P9", "Group commit: mode × writers sweep", func(w io.Writer) error {
			_, err := RunP9(w, scale(400, 120))
			return err
		}},
		{"P10", "MVCC: lock-free readers vs writers", func(w io.Writer) error {
			_, err := RunP10(w, scale(300, 60), scale(200, 40))
			return err
		}},
		{"P11", "Networked group commit: remote writers over TCP", func(w io.Writer) error {
			_, err := RunP11(w, scale(400, 120))
			return err
		}},
		{"P12", "Online index build: STR bulk-load vs row-at-a-time, writer throughput", func(w io.Writer) error {
			_, err := RunP12(w, scale(4000, 600))
			return err
		}},
		{"P13", "Prepared statements vs per-statement parse/plan", func(w io.Writer) error {
			_, err := RunP13(w, scale(2000, 400))
			return err
		}},
		{"P14", "Aggregate pushdown: am_aggregate vs tuple drain", func(w io.Writer) error {
			sizes := []int{scale(10000, 2000), scale(100000, 10000)}
			_, err := RunP14(w, sizes, scale(5, 3))
			return err
		}},
	}
}

// Run executes the selected experiment ids ("all" or empty = everything).
func Run(w io.Writer, root string, quick bool, ids ...string) error {
	runners := All(root, quick)
	want := map[string]bool{}
	for _, id := range ids {
		if id != "" && id != "all" {
			want[id] = true
		}
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.ID] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("experiments: unknown ids %v", unknown)
	}
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
		if err := r.Run(w); err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
