package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"repro/internal/blades/gistblade"
	"repro/internal/blades/grtblade"
	"repro/internal/blades/rstblade"
	"repro/internal/chronon"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/types"
)

// P13Row records one cell of the prepared-statement sweep.
type P13Row struct {
	Transport string // embedded | remote (loopback TCP)
	Mode      string // adhoc cache=off | adhoc cache=on | prepared
	PerStmt   time.Duration
	StmtsPerS float64
	// PlanNsPerStmt is the parse+plan cost actually paid per statement
	// (delta of sql.parse_ns + sql.plan_ns over the timed region).
	PlanNsPerStmt float64
	// HitRate is plan-cache hits / (hits + misses) over the timed region.
	HitRate float64
	// SpeedupVsAdhoc compares statements/s against the "adhoc cache=off"
	// row on the same transport (1.0 for those rows themselves).
	SpeedupVsAdhoc float64
}

// RunP13 measures what prepared statements and the shared plan cache buy on
// a point-query workload: the same GR-tree probe issued three ways — ad-hoc
// text with the plan cache disabled (parse + plan + multi-index am_scancost
// every time), ad-hoc text with the cache on (parse every time, plan
// amortised via auto-parameterization), and PREPARE/EXECUTE (no parse, no
// plan) — each both embedded and over loopback TCP through tinybladed.
//
// Caveat (single-host loopback): the remote rows pay microsecond round
// trips, so the absolute embedded-vs-remote gap understates a real network;
// compare modes within a transport, not across tables.
func RunP13(w io.Writer, iters int) ([]P13Row, error) {
	fmt.Fprintf(w, "P13: prepared statements vs per-statement parse/plan (iters=%d per cell, GOMAXPROCS=%d)\n",
		iters, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-9s %-16s %12s %12s %14s %9s %9s\n",
		"where", "mode", "per-stmt", "stmts/s", "plan-ns/stmt", "hit-rate", "speedup")
	var rows []P13Row
	for _, transport := range []string{"embedded", "remote"} {
		base := 0.0
		for _, mode := range []string{"adhoc cache=off", "adhoc cache=on", "prepared"} {
			row, err := runP13Cell(transport, mode, iters)
			if err != nil {
				return nil, err
			}
			if mode == "adhoc cache=off" {
				base = row.StmtsPerS
			}
			if base > 0 {
				row.SpeedupVsAdhoc = row.StmtsPerS / base
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-9s %-16s %12v %12.0f %14.0f %8.0f%% %8.2fx\n",
				row.Transport, row.Mode, row.PerStmt, row.StmtsPerS,
				row.PlanNsPerStmt, row.HitRate*100, row.SpeedupVsAdhoc)
		}
	}
	fmt.Fprintln(w, "  (plan-ns/stmt is the parse+plan time actually paid; prepared rows parse and")
	fmt.Fprintln(w, "   plan once at PREPARE, outside the timed region — EXECUTE only pays the")
	fmt.Fprintln(w, "   cached plan's bind-time validation)")
	return rows, nil
}

// p13Arg varies the probe extent per iteration so ad-hoc cells parse a
// different statement text every time, as real point-query traffic does.
func p13Arg(n int) string {
	m, d := n%7+1, n%27+1
	return fmt.Sprintf("%d/%d/97, %d/%d/97, %d/%d/97, %d/%d/97", m, d, m, d, m, d, m, d)
}

// p13Window is the month enclosing p13Arg(n): a tight ContainedIn qual the
// index can use, so the probe stays selective.
func p13Window(n int) string {
	m := n%7 + 1
	return fmt.Sprintf("%d/97, %d/97, %d/97, %d/97", m, m+1, m, m+1)
}

func runP13Cell(transport, mode string, iters int) (P13Row, error) {
	// In-memory engine: P13 isolates per-statement parse/plan/bind overhead,
	// so the storage layer should not contribute syscall noise to the cells.
	e, err := engine.Open(engine.Options{
		NoWAL: true,
		Clock: chronon.NewVirtualClock(chronon.MustParse("9/97")),
	})
	if err != nil {
		return P13Row{}, err
	}
	defer e.Close()
	if err := grtblade.Register(e); err != nil {
		return P13Row{}, err
	}
	if err := rstblade.Register(e); err != nil {
		return P13Row{}, err
	}
	if err := gistblade.Register(e); err != nil {
		return P13Row{}, err
	}

	// Four candidate indexes across three access methods: every un-cached
	// plan pays am_open + am_scancost for each before choosing one.
	setup := e.NewSession()
	script := `CREATE SBSPACE spc;
		CREATE TABLE PT (N INTEGER, X GRT_TimeExtent_t);
		CREATE INDEX pt_ix1 ON PT(X) USING grtree_am IN spc;
		CREATE INDEX pt_ix2 ON PT(X rst_opclass) USING rstree_am (nowsub='max') IN spc;
		CREATE INDEX pt_ix3 ON PT(X rst_opclass) USING rstree_am (nowsub='asof') IN spc;
		CREATE INDEX pt_ix4 ON PT(X gist_grt_ops) USING gist_am IN spc`
	if _, err := setup.ExecScript(script); err != nil {
		setup.Close()
		return P13Row{}, err
	}
	// Day-granularity extents so the point probe is selective: throughput
	// measures per-statement overhead, not result materialisation.
	for i := 0; i < 900; i++ {
		m, d := i%7+1, i%27+1
		if _, err := setup.Exec(fmt.Sprintf(
			`INSERT INTO PT VALUES (%d, '%d/%d/97, %d/%d/97, %d/%d/97, %d/%d/97')`,
			i, m, d, m, d+1, m, d, m, d+1)); err != nil {
			setup.Close()
			return P13Row{}, err
		}
	}
	setup.Close()

	// A realistic point query: one indexable probe plus residual temporal
	// quals. The un-cached plan pays parse of the literal-heavy text and
	// am_scancost per candidate (index, qual) pair; execution is a cheap
	// selective probe either way.
	const tmpl = `SELECT N FROM PT WHERE Overlaps(X, $1) AND ContainedIn(X, $2) AND NOT Equal(X, $3)`
	const excl = `1/1/97, 1/2/97, 1/1/97, 1/2/97`
	adhoc := func(n int) string {
		return fmt.Sprintf(
			`SELECT N FROM PT WHERE Overlaps(X, '%s') AND ContainedIn(X, '%s') AND NOT Equal(X, '%s')`,
			p13Arg(n), p13Window(n), excl)
	}
	prepArgs := func(n int) []types.Datum {
		return []types.Datum{p13Arg(n), p13Window(n), excl}
	}

	// run executes one statement; set up per transport and mode below.
	var run func(n int) error
	var cleanup func()
	switch transport {
	case "embedded":
		s := e.NewSession()
		cleanup = s.Close
		switch mode {
		case "adhoc cache=off":
			if _, err := s.Exec(`SET PLAN_CACHE OFF`); err != nil {
				return P13Row{}, err
			}
			fallthrough
		case "adhoc cache=on":
			run = func(n int) error { _, err := s.Exec(adhoc(n)); return err }
		case "prepared":
			if _, err := s.Prepare("p13", tmpl); err != nil {
				return P13Row{}, err
			}
			run = func(n int) error {
				_, err := s.ExecutePrepared(nil, "p13", prepArgs(n))
				return err
			}
		}
	case "remote":
		srv := server.New(e, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return P13Row{}, err
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		c, err := client.Dial(ln.Addr().String(), nil)
		if err != nil {
			return P13Row{}, err
		}
		cleanup = func() {
			c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-serveDone
		}
		switch mode {
		case "adhoc cache=off":
			if _, err := c.Exec(`SET PLAN_CACHE OFF`); err != nil {
				cleanup()
				return P13Row{}, err
			}
			fallthrough
		case "adhoc cache=on":
			run = func(n int) error { _, err := c.Exec(adhoc(n)); return err }
		case "prepared":
			stmt, err := c.Prepare("p13", tmpl)
			if err != nil {
				cleanup()
				return P13Row{}, err
			}
			run = func(n int) error { _, err := stmt.Exec(prepArgs(n)...); return err }
		}
	}
	if run == nil {
		return P13Row{}, fmt.Errorf("p13: unknown cell %s/%s", transport, mode)
	}
	defer cleanup()

	// Untimed warm-up: first-touch costs (page faults, cache fills, the
	// first plan of each shape) land outside the timed region.
	for n := 0; n < 16; n++ {
		if err := run(n); err != nil {
			return P13Row{}, err
		}
	}

	// Best of three timed passes: on a shared (often single-core) host a GC
	// cycle or scheduler hiccup inside one ~100ms window skews a single
	// pass; the best pass is the cleanest view of the steady state.
	obs := e.Obs()
	var best P13Row
	for pass := 0; pass < 3; pass++ {
		parseNs0 := obs.Counter("sql.parse_ns").Load()
		planNs0 := obs.Counter("sql.plan_ns").Load()
		hits0 := obs.Counter("plan_cache.hits").Load()
		misses0 := obs.Counter("plan_cache.misses").Load()
		start := time.Now()
		for n := 0; n < iters; n++ {
			if err := run(n); err != nil {
				return P13Row{}, err
			}
		}
		elapsed := time.Since(start)

		planNs := float64(obs.Counter("sql.parse_ns").Load() - parseNs0 +
			obs.Counter("sql.plan_ns").Load() - planNs0)
		hits := float64(obs.Counter("plan_cache.hits").Load() - hits0)
		misses := float64(obs.Counter("plan_cache.misses").Load() - misses0)
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = hits / (hits + misses)
		}
		row := P13Row{
			Transport:     transport,
			Mode:          mode,
			PerStmt:       elapsed / time.Duration(iters),
			StmtsPerS:     float64(iters) / elapsed.Seconds(),
			PlanNsPerStmt: planNs / float64(iters),
			HitRate:       hitRate,
		}
		if row.StmtsPerS > best.StmtsPerS {
			best = row
		}
	}
	return best, nil
}
