package experiments

import (
	"strings"
	"testing"
)

// The ISSUE's acceptance criteria for P13: all six cells run, the cached
// and prepared cells actually hit the plan cache, and PREPARE/EXECUTE over
// TCP beats the classic parse-every-statement path by a real margin.
func TestP13PreparedBeatsAdhoc(t *testing.T) {
	if testing.Short() {
		t.Skip("prepared-statement sweep")
	}
	var out strings.Builder
	rows, err := RunP13(&out, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("cells: %d\n%s", len(rows), out.String())
	}
	byCell := map[string]P13Row{}
	for _, r := range rows {
		byCell[r.Transport+"/"+r.Mode] = r
		if r.StmtsPerS <= 0 {
			t.Fatalf("no throughput in %s/%s:\n%s", r.Transport, r.Mode, out.String())
		}
	}
	for _, cell := range []string{"embedded/adhoc cache=on", "remote/adhoc cache=on",
		"embedded/prepared", "remote/prepared"} {
		if byCell[cell].HitRate <= 0 {
			t.Errorf("%s never hit the plan cache:\n%s", cell, out.String())
		}
	}
	// Prepared execution never re-parses and re-plans: what remains is the
	// cached plan's bind-time validation, a fraction of a full parse+plan.
	for _, transport := range []string{"embedded", "remote"} {
		full := byCell[transport+"/adhoc cache=off"].PlanNsPerStmt
		prep := byCell[transport+"/prepared"].PlanNsPerStmt
		if prep >= full/2 {
			t.Errorf("%s prepared pays %.0f plan-ns/stmt vs %.0f un-cached, want < half:\n%s",
				transport, prep, full, out.String())
		}
	}
	if sp := byCell["remote/prepared"].SpeedupVsAdhoc; sp < 1.3 {
		t.Errorf("remote prepared speedup %.2fx, want >= 1.3x over ad-hoc:\n%s",
			sp, out.String())
	}
}
