package experiments

import (
	"strings"
	"testing"
)

// The ISSUE's acceptance criterion for P14: the pushed aggregate answers
// from internal nodes at least 10x faster than the tuple drain on the
// large table's COUNT, and every cell agrees with the drain (RunP14 errors
// out on any disagreement or un-pushed cell).
func TestP14PushdownBeatsDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate-pushdown sweep")
	}
	var out strings.Builder
	rows, err := RunP14(&out, []int{2000, 20000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("cells: %d\n%s", len(rows), out.String())
	}
	for _, r := range rows {
		if r.Pushed <= 0 || r.Drained <= 0 {
			t.Fatalf("empty timing in %d/%s:\n%s", r.Rows, r.Agg, out.String())
		}
	}
	var large *P14Row
	for i := range rows {
		if rows[i].Rows == 20000 && rows[i].Agg == "COUNT(*)" {
			large = &rows[i]
		}
	}
	if large == nil {
		t.Fatalf("no large COUNT cell:\n%s", out.String())
	}
	if large.Speedup < 10 {
		t.Errorf("large COUNT pushdown speedup %.1fx, want >= 10x:\n%s", large.Speedup, out.String())
	}
}
