package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/am"
	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/grtree"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/nodestore"
	"repro/internal/rstar"
	"repro/internal/temporal"
	"repro/internal/types"
)

// month renders an instant at the paper's month granularity (e.g. "3/97").
func month(t chronon.Instant) string {
	if t == chronon.UC {
		return "UC"
	}
	if t == chronon.NOW {
		return "NOW"
	}
	y, m, _ := t.Date()
	return fmt.Sprintf("%d/%02d", m, y%100)
}

func newEmpDepEngine(clockStart string) (*engine.Engine, *chronon.VirtualClock, *engine.Session, error) {
	clock := chronon.NewVirtualClock(chronon.MustParse(clockStart))
	e, err := engine.Open(engine.Options{Clock: clock, NoWAL: true})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := grtblade.Register(e); err != nil {
		e.Close()
		return nil, nil, nil, err
	}
	s := e.NewSession()
	return e, clock, s, nil
}

// RunT1 reproduces Table 1: the EmpDep relation built through the engine by
// the operations the paper narrates — inserts, a deletion (Tom), and an
// update (Julie) — with the current time advancing from 3/97 to 9/97.
func RunT1(w io.Writer) error {
	e, clock, s, err := newEmpDepEngine("3/97")
	if err != nil {
		return err
	}
	defer e.Close()
	defer s.Close()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE EmpDep (Employee VARCHAR(16), Department VARCHAR(16), Time_Extent GRT_TimeExtent_t);
		CREATE INDEX empdep_ix ON EmpDep(Time_Extent) USING grtree_am IN spc`); err != nil {
		return err
	}
	run := func(sql string) error { _, err := s.Exec(sql); return err }
	ins := func(name, dep, vtb, vte string) error {
		ct := clock.Now()
		ext := temporal.Extent{TTBegin: ct, TTEnd: chronon.UC,
			VTBegin: chronon.MustParse(vtb), VTEnd: chronon.MustParse(vte)}
		if err := ext.ValidateInsert(ct); err != nil {
			return err
		}
		return run(fmt.Sprintf(`INSERT INTO EmpDep VALUES ('%s', '%s', '%s')`, name, dep, ext))
	}
	logicalDelete := func(name string) error {
		// Fetch the current extent, close it (TTEnd UC -> ct-1, Section 2).
		res, err := s.Exec(fmt.Sprintf(`SELECT Time_Extent FROM EmpDep WHERE Employee = '%s'`, name))
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			ext, err := grtblade.DecodeExtent(row[0].(types.Opaque).Data)
			if err != nil {
				return err
			}
			if !ext.Current() {
				continue
			}
			closed, err := ext.Deleted(clock.Now())
			if err != nil {
				return err
			}
			return run(fmt.Sprintf(`UPDATE EmpDep SET Time_Extent = '%s' WHERE Employee = '%s' AND Equal(Time_Extent, '%s')`,
				closed, name, ext))
		}
		return fmt.Errorf("no current tuple for %s", name)
	}

	// The history behind Table 1 (times at month granularity, acting on the
	// first day of each month; deletions on the 1st of the following month
	// close the extent at the end of the stated month).
	clock.Set(chronon.MustParse("3/97"))
	if err := ins("Tom", "Management", "6/97", "8/97"); err != nil { // recorded before valid
		return err
	}
	if err := ins("Julie", "Sales", "3/97", "NOW"); err != nil {
		return err
	}
	clock.Set(chronon.MustParse("4/97"))
	if err := ins("John", "Advertising", "3/97", "5/97"); err != nil {
		return err
	}
	clock.Set(chronon.MustParse("5/97"))
	if err := ins("Jane", "Sales", "5/97", "NOW"); err != nil {
		return err
	}
	if err := ins("Michelle", "Management", "3/97", "NOW"); err != nil {
		return err
	}
	clock.Set(chronon.MustParse("8/97"))
	if err := logicalDelete("Tom"); err != nil { // Tom's tuple stops at 7/97
		return err
	}
	// Julie's update: logical deletion + insertion of the corrected belief
	// (she worked in Sales 3/97–7/97).
	if err := logicalDelete("Julie"); err != nil {
		return err
	}
	if err := ins("Julie", "Sales", "3/97", "7/97"); err != nil {
		return err
	}
	clock.Set(chronon.MustParse("9/97"))

	res, err := s.Exec(`SELECT Employee, Department, Time_Extent FROM EmpDep`)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "T1: the EmpDep relation (Table 1), CT = %s\n", month(clock.Now()))
	fmt.Fprintf(w, "%-10s %-12s %8s %8s %8s %8s   %s\n", "Employee", "Department", "TTbegin", "TTend", "VTbegin", "VTend", "case")
	type line struct {
		emp, dep string
		ext      temporal.Extent
	}
	var lines []line
	for _, row := range res.Rows {
		ext, err := grtblade.DecodeExtent(row[2].(types.Opaque).Data)
		if err != nil {
			return err
		}
		lines = append(lines, line{row[0].(string), row[1].(string), ext})
	}
	sort.Slice(lines, func(a, b int) bool {
		if lines[a].ext.TTBegin != lines[b].ext.TTBegin {
			return lines[a].ext.TTBegin < lines[b].ext.TTBegin
		}
		return lines[a].emp < lines[b].emp
	})
	for _, l := range lines {
		fmt.Fprintf(w, "%-10s %-12s %8s %8s %8s %8s   %v\n", l.emp, l.dep,
			month(l.ext.TTBegin), month(l.ext.TTEnd), month(l.ext.VTBegin), month(l.ext.VTEnd), l.ext.Case())
	}
	if _, err := s.Exec(`CHECK INDEX empdep_ix`); err != nil {
		return fmt.Errorf("index inconsistent after the Table 1 history: %w", err)
	}
	fmt.Fprintln(w, "index check: consistent")
	return nil
}

// RunF2 reproduces Figures 1/2: the six qualitatively different timestamp
// combinations, their case classification, and their region geometry.
func RunF2(w io.Writer) error {
	ct := chronon.MustParse("9/97")
	fmt.Fprintf(w, "F2: the six combinations of time attributes (Figure 2), CT = %s\n", month(ct))
	fmt.Fprintf(w, "%-8s %-34s %-9s %-22s %s\n", "case", "(TTbegin, TTend, VTbegin, VTend)", "growing", "shape at CT", "area at CT")
	rows := []temporal.Extent{
		temporal.MustParseExtent("4/97, UC, 3/97, 5/97"),
		temporal.MustParseExtent("3/97, 7/97, 6/97, 8/97"),
		temporal.MustParseExtent("5/97, UC, 5/97, NOW"),
		temporal.MustParseExtent("3/97, 7/97, 3/97, NOW"),
		temporal.MustParseExtent("5/97, UC, 3/97, NOW"),
		temporal.MustParseExtent("5/97, 8/97, 3/97, NOW"),
	}
	for _, e := range rows {
		r := e.Region()
		sh := r.Resolve(ct)
		kind := "rectangle"
		if sh.Stair {
			kind = "stair-shape"
		}
		ts := fmt.Sprintf("(%s, %s, %s, %s)", month(e.TTBegin), month(e.TTEnd), month(e.VTBegin), month(e.VTEnd))
		fmt.Fprintf(w, "%-8v %-34s %-9v %-22s %.0f\n", e.Case(), ts, r.Growing(), kind, sh.Area())
	}
	return nil
}

// RunF3 reproduces Figure 3: an R*-tree whose query rectangle overlaps the
// bounding rectangles R1 and R2 but finds qualifying data only under one of
// them — both nodes must be read, and the R1 access is pure dead-space
// cost.
func RunF3(w io.Writer) error {
	store := nodestore.NewMem()
	tr, err := rstar.Create(store, rstar.Config{MaxEntries: 4, MinFillPct: 40, ReinsertPct: 0})
	if err != nil {
		return err
	}
	// Left cluster (becomes R1): rectangles whose bound [0,40]x[0,50] has
	// dead space in its lower-right corner. Both clusters span the same
	// y-range so the split axis is unambiguously x.
	left := []rstar.Rect{
		{XMin: 0, XMax: 10, YMin: 0, YMax: 10},
		{XMin: 0, XMax: 10, YMin: 20, YMax: 30},
		{XMin: 30, XMax: 40, YMin: 20, YMax: 30},
		{XMin: 30, XMax: 40, YMin: 40, YMax: 50},
	}
	// Right cluster (becomes R2): from x=60 on, same y spread.
	right := []rstar.Rect{
		{XMin: 60, XMax: 70, YMin: 0, YMax: 10},
		{XMin: 60, XMax: 70, YMin: 20, YMax: 30},
		{XMin: 90, XMax: 100, YMin: 40, YMax: 50},
		{XMin: 90, XMax: 100, YMin: 10, YMax: 20},
	}
	p := rstar.Payload(1)
	for _, r := range append(append([]rstar.Rect{}, left...), right...) {
		if err := tr.Insert(r, p); err != nil {
			return err
		}
		p++
	}
	if tr.Height() != 2 {
		return fmt.Errorf("F3 expected a two-level tree, got height %d", tr.Height())
	}
	// The query dips into R1's dead space (x 32..40 at low y holds no data)
	// and touches real data only under R2.
	query := rstar.Rect{XMin: 32, XMax: 65, YMin: 0, YMax: 10}
	store.ResetStats()
	matches, err := tr.SearchAll(rstar.OpOverlaps, query)
	if err != nil {
		return err
	}
	reads := store.Stats().NodeReads
	fmt.Fprintf(w, "F3: the R*-tree example (Figure 3)\n")
	fmt.Fprintf(w, "  tree: height %d, root + 2 leaves (R1 left cluster, R2 right cluster)\n", tr.Height())
	fmt.Fprintf(w, "  query %v:\n", query)
	fmt.Fprintf(w, "  nodes read: %d (root, R1, R2 — the query overlaps both bounding rectangles)\n", reads)
	fmt.Fprintf(w, "  qualifying entries: %d, all from the right cluster\n", len(matches))
	fmt.Fprintf(w, "  -> reading R1 found nothing: dead space caused one wasted node access\n")
	if reads != 3 || len(matches) != 1 {
		return fmt.Errorf("F3 shape violated: reads=%d matches=%d (want 3 and 1)", reads, len(matches))
	}
	return nil
}

// RunF4 reproduces Figure 4: the three bounding situations — a rectangle
// growing in both dimensions, a stair-shape, and a hidden growing stair
// inside a fixed rectangle.
func RunF4(w io.Writer) error {
	ct := chronon.Instant(10000)
	pol := temporal.DefaultBoundPolicy
	fmt.Fprintln(w, "F4: minimum bounding regions (Figure 4)")

	// (a) A growing stair plus a rectangle above the line v = t: the bound
	// is a rectangle growing in both dimensions.
	a := temporal.Bound([]temporal.Region{
		{TTBegin: ct - 100, TTEnd: chronon.UC, VTBegin: ct - 100, VTEnd: chronon.NOW},
		{TTBegin: ct - 50, TTEnd: ct - 10, VTBegin: ct - 20, VTEnd: ct - 5, Rect: true},
	}, ct, pol)
	fmt.Fprintf(w, "  (a) growing stair + rectangle above v=t -> %s\n", describeBound(a))

	// (b) Regions all below v = t: the bound is a stair-shape.
	b := temporal.Bound([]temporal.Region{
		{TTBegin: ct - 100, TTEnd: chronon.UC, VTBegin: ct - 100, VTEnd: chronon.NOW},
		{TTBegin: ct - 60, TTEnd: ct - 20, VTBegin: ct - 90, VTEnd: ct - 70, Rect: true},
	}, ct, pol)
	fmt.Fprintf(w, "  (b) nothing above v=t -> %s\n", describeBound(b))

	// (c) A small growing stair next to a rectangle with a distant fixed
	// valid-time end: hidden inside the fixed rectangle.
	c := temporal.Bound([]temporal.Region{
		{TTBegin: ct - 5, TTEnd: chronon.UC, VTBegin: ct - 5, VTEnd: chronon.NOW},
		{TTBegin: ct - 200, TTEnd: ct - 50, VTBegin: ct - 100, VTEnd: ct + 5000, Rect: true},
	}, ct, pol)
	fmt.Fprintf(w, "  (c) small growing stair + tall fixed rectangle -> %s\n", describeBound(c))
	if !c.Hidden {
		return fmt.Errorf("F4(c) expected a hidden bound, got %v", c)
	}
	adj := c.Adjust(ct + 6000)
	fmt.Fprintf(w, "      after the stair outgrows it (CT+6000): Adjust -> %s\n", describeBound(adj))
	return nil
}

func describeBound(r temporal.Region) string {
	switch {
	case r.Hidden && r.VTEnd == chronon.NOW:
		return fmt.Sprintf("rectangle growing in both dimensions (repaired hidden) %v", r)
	case r.Hidden:
		return fmt.Sprintf("HIDDEN fixed rectangle %v", r)
	case r.StairFlag():
		return fmt.Sprintf("stair-shape %v", r)
	case r.VTEnd == chronon.NOW:
		return fmt.Sprintf("rectangle growing in both dimensions %v", r)
	case r.TTEnd == chronon.UC:
		return fmt.Sprintf("rectangle growing in transaction time %v", r)
	default:
		return fmt.Sprintf("static rectangle %v", r)
	}
}

// RunF5 reproduces Figure 5: a GR-tree whose internal entries mix
// stair-shaped and rectangular bounding regions, dumped structurally.
func RunF5(w io.Writer) error {
	store := nodestore.NewMem()
	cfg := grtree.DefaultConfig()
	cfg.MaxEntries = 4
	tr, err := grtree.Create(store, cfg)
	if err != nil {
		return err
	}
	ct := chronon.Instant(1000)
	extents := []temporal.Extent{
		// Cluster of growing stairs (their bound stays a stair, like node 2
		// in Figure 5).
		{TTBegin: 900, TTEnd: chronon.UC, VTBegin: 900, VTEnd: chronon.NOW},
		{TTBegin: 920, TTEnd: chronon.UC, VTBegin: 910, VTEnd: chronon.NOW},
		{TTBegin: 940, TTEnd: chronon.UC, VTBegin: 930, VTEnd: chronon.NOW},
		{TTBegin: 960, TTEnd: chronon.UC, VTBegin: 950, VTEnd: chronon.NOW},
		// Cluster of static rectangles (their bound is a rectangle).
		{TTBegin: 100, TTEnd: 200, VTBegin: 300, VTEnd: 400},
		{TTBegin: 120, TTEnd: 220, VTBegin: 320, VTEnd: 420},
		{TTBegin: 140, TTEnd: 240, VTBegin: 340, VTEnd: 440},
		{TTBegin: 160, TTEnd: 260, VTBegin: 360, VTEnd: 460},
	}
	for i, e := range extents {
		if err := tr.Insert(e, grtree.Payload(i+1), ct); err != nil {
			return err
		}
	}
	dump, err := tr.Dump(ct)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "F5: GR-tree structure (Figure 5): S = stair entry, R = growing rectangle, H = hidden")
	fmt.Fprint(w, dump)
	if !strings.Contains(dump, " S") {
		return fmt.Errorf("F5 expected a stair-flagged internal entry in:\n%s", dump)
	}
	if err := tr.Check(ct); err != nil {
		return err
	}
	return nil
}

// RunF6 reproduces Figure 6: the purpose functions the server calls when
// processing INSERT and SELECT statements through a virtual index.
func RunF6(w io.Writer) error {
	e, _, s, err := newEmpDepEngine("9/97")
	if err != nil {
		return err
	}
	defer e.Close()
	defer s.Close()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE Employees (Name VARCHAR(16), Time_Extent GRT_TimeExtent_t);
		CREATE INDEX grt_index ON Employees(Time_Extent) USING grtree_am IN spc;
		INSERT INTO Employees VALUES ('seed', '5/97, UC, 5/97, NOW')`); err != nil {
		return err
	}
	e.EnableCallTrace(true)
	if _, err := s.Exec(`INSERT INTO Employees VALUES ('Ann', '9/97, UC, 9/97, NOW')`); err != nil {
		return err
	}
	insertTrace := e.TakeCallTrace()
	if _, err := s.Exec(`SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '1/97, UC, 1/97, NOW')`); err != nil {
		return err
	}
	selectTrace := e.TakeCallTrace()
	e.EnableCallTrace(false)

	fmt.Fprintln(w, "F6: purpose functions called per statement (Figure 6)")
	fmt.Fprintf(w, "  INSERT: %s\n", strings.Join(insertTrace, " -> "))
	fmt.Fprintf(w, "  SELECT: %s\n", strings.Join(selectTrace, " -> "))
	if strings.Join(insertTrace, " ") != "am_open(grt_index) am_insert(grt_index) am_close(grt_index)" {
		return fmt.Errorf("F6 INSERT protocol violated: %v", insertTrace)
	}
	js := strings.Join(selectTrace, " ")
	if !strings.Contains(js, "am_beginscan") || !strings.Contains(js, "am_getmulti") ||
		!strings.Contains(js, "am_endscan") || !strings.HasSuffix(js, "am_close(grt_index)") {
		return fmt.Errorf("F6 SELECT protocol violated: %v", selectTrace)
	}
	return nil
}

// RunT2 reproduces Table 2: the purpose-function slots, their assignments
// for grtree_am, and the fact that only am_getnext is mandatory.
func RunT2(w io.Writer) error {
	e, _, s, err := newEmpDepEngine("9/97")
	if err != nil {
		return err
	}
	defer e.Close()
	defer s.Close()
	meta, err := e.Catalog().AmByName(grtblade.AmName)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "T2: access method purpose functions (Table 2), as registered in SYSAMS")
	for _, slot := range am.PurposeSlots {
		fn := meta.Slots[slot]
		if fn == "" {
			fn = "(not registered)"
		}
		fmt.Fprintf(w, "  %-14s = %s\n", slot, fn)
	}
	// Only am_getnext is mandatory: a minimal access method binds.
	minimal := am.Library{"only_getnext": am.AmGetNextFunc(
		func(*mi.Context, *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
			return 0, nil, false, nil
		})}
	if _, err := am.Bind(map[string]string{"am_getnext": "only_getnext"},
		func(n string) (any, error) { return minimal[n], nil }); err != nil {
		return fmt.Errorf("minimal access method must bind: %w", err)
	}
	if _, err := am.Bind(map[string]string{}, nil); err == nil {
		return fmt.Errorf("an access method without am_getnext must be rejected")
	}
	fmt.Fprintln(w, "  am_getnext alone binds; an access method without it is rejected (only am_getnext is mandatory)")
	return nil
}

// RunT3 reproduces Table 3 / Figure 8: the Julie query. Treating the valid-
// and transaction-time intervals separately (the four-column design)
// wrongly returns Julie; the single-column bitemporal Overlaps does not —
// the Section 5.1 argument for one opaque extent column.
func RunT3(w io.Writer) error {
	e, clock, s, err := newEmpDepEngine("9/97")
	if err != nil {
		return err
	}
	defer e.Close()
	defer s.Close()
	// The bitemporal design: one opaque column, GR-tree indexed.
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE EmpDep (Name VARCHAR(16), Department VARCHAR(16), Time_Extent GRT_TimeExtent_t);
		CREATE INDEX ix ON EmpDep(Time_Extent) USING grtree_am IN spc;
		INSERT INTO EmpDep VALUES ('Julie', 'Sales', '3/97, 7/97, 3/97, NOW')`); err != nil {
		return err
	}
	// The four-column design a naive schema would use: NOW resolved at the
	// current time, one DATE column per timestamp.
	now := clock.Now()
	if _, err := s.ExecScript(fmt.Sprintf(`CREATE TABLE EmpDep4 (Name VARCHAR(16), Department VARCHAR(16),
			TTb DATE, TTe DATE, VTb DATE, VTe DATE);
		INSERT INTO EmpDep4 VALUES ('Julie', 'Sales', '3/97', '7/97', '3/97', '%s')`, now)); err != nil {
		return err
	}

	// "Who worked in the Sales department during 7/97 according to the
	// knowledge we had during 5/97?" — query region tt in 5/97, vt in 7/97.
	fmt.Fprintln(w, "T3/F8: the Julie query (Table 3) — 'in Sales during 7/97 as known during 5/97?'")
	correct, err := s.Exec(`SELECT Name FROM EmpDep WHERE Department = 'Sales'
		AND Overlaps(Time_Extent, '5/97, 5/31/97, 7/97, 7/31/97')`)
	if err != nil {
		return err
	}
	naive, err := s.Exec(`SELECT Name FROM EmpDep4 WHERE Department = 'Sales'
		AND TTb <= '5/31/97' AND TTe >= '5/97' AND VTb <= '7/31/97' AND VTe >= '7/97'`)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  four-column design (intervals treated separately): %d row(s)", len(naive.Rows))
	for _, r := range naive.Rows {
		fmt.Fprintf(w, " [%v]", r[0])
	}
	fmt.Fprintln(w, "  <- WRONG: Julie's region is a stair; it does not reach vt=7/97 at tt=5/97")
	fmt.Fprintf(w, "  one-column bitemporal Overlaps:                     %d row(s)  <- correct\n", len(correct.Rows))
	if len(naive.Rows) != 1 || len(correct.Rows) != 0 {
		return fmt.Errorf("T3 expected naive=1 correct=0, got %d/%d", len(naive.Rows), len(correct.Rows))
	}
	return nil
}

// T4Row is one module row of the implementation inventory.
type T4Row struct {
	Task   string
	Module string
	LOC    int
}

// RunT4 reproduces Table 4 in spirit: the implementation-task inventory of
// this reproduction, with lines of code counted from the source tree.
func RunT4(w io.Writer, root string) ([]T4Row, error) {
	count := func(rel string) int {
		total := 0
		filepath.Walk(filepath.Join(root, rel), func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return nil
			}
			total += strings.Count(string(data), "\n")
			return nil
		})
		return total
	}
	rows := []T4Row{
		{"Bitemporal model: UC/NOW, six cases, region algebra", "internal/chronon + internal/temporal", count("internal/chronon") + count("internal/temporal")},
		{"Defining the opaque type and its support functions", "internal/blades/grtblade (type part)", count("internal/blades/grtblade")},
		{"Access-method purpose functions (the GR-tree blade)", "internal/blades/grtblade", count("internal/blades/grtblade")},
		{"The GR-tree core (assumed pre-existing in the paper)", "internal/grtree", count("internal/grtree")},
		{"The R*-tree baseline", "internal/rstar + internal/blades/rstblade", count("internal/rstar") + count("internal/blades/rstblade")},
		{"BLOB manipulation (sbspace large objects)", "internal/sbspace + internal/nodestore", count("internal/sbspace") + count("internal/nodestore")},
		{"Qualification descriptors and the VII framework", "internal/am", count("internal/am")},
		{"The server substrate (storage, WAL, locks, SQL, engine)", "internal/{storage,wal,lock,heap,sql,engine,catalog,types,mi}", count("internal/storage") + count("internal/wal") + count("internal/lock") + count("internal/heap") + count("internal/sql") + count("internal/engine") + count("internal/catalog") + count("internal/types") + count("internal/mi")},
	}
	fmt.Fprintln(w, "T4: implementation-task inventory (Table 4 analogue; non-test LOC)")
	fmt.Fprintf(w, "  %-55s %-48s %6s\n", "Task", "Module", "LOC")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-55s %-48s %6d\n", r.Task, r.Module, r.LOC)
	}
	fmt.Fprintln(w, "  (The paper reports ~1,450 C/C++ LOC for the blade alone, on top of Informix;")
	fmt.Fprintln(w, "   this reproduction builds the server too, hence the larger totals.)")
	return rows, nil
}

// RunT5 reproduces Table 5 / Appendix A: the purpose-function protocol
// through a deletion that condenses the tree, showing the grt_delete
// cursor-reset behaviour of Section 5.5.
func RunT5(w io.Writer) error {
	e, _, s, err := newEmpDepEngine("1/97")
	if err != nil {
		return err
	}
	defer e.Close()
	defer s.Close()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t);
		CREATE INDEX ix ON T(X) USING grtree_am (maxentries=8) IN spc`); err != nil {
		return err
	}
	for i := 0; i < 80; i++ {
		m := i%12 + 1
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%d/96, UC, %d/96, NOW')`, i, m, m)); err != nil {
			return err
		}
	}
	e.EnableCallTrace(true)
	res, err := s.Exec(`DELETE FROM T WHERE Overlaps(X, '1/96, UC, 1/96, NOW')`)
	if err != nil {
		return err
	}
	trace := e.TakeCallTrace()

	counts := map[string]int{}
	for _, t := range trace {
		counts[strings.SplitN(t, "(", 2)[0]]++
	}
	fmt.Fprintln(w, "T5: purpose-function protocol through a condensing DELETE (Table 5 / Appendix A)")
	fmt.Fprintf(w, "  deleted %d rows through one interleaved index scan\n", res.Affected)
	for _, fn := range []string{"am_open", "am_scancost", "am_beginscan", "am_getnext", "am_delete", "am_endscan", "am_close"} {
		fmt.Fprintf(w, "  %-13s called %4d time(s)\n", fn, counts[fn])
	}
	fmt.Fprintln(w, "  The DELETE end-stamps version cells only — index maintenance is")
	fmt.Fprintln(w, "  deferred, so the interleaved cursor reads a structurally stable tree")
	fmt.Fprintln(w, "  (am_delete: 0 during the statement) and no entry is returned twice.")
	if res.Affected != 80 || counts["am_delete"] != 0 || counts["am_getnext"] != 81 {
		return fmt.Errorf("T5 protocol violated: affected=%d counts=%v", res.Affected, counts)
	}

	// Act two: the vacuum reclaims the 80 dead versions and only now drives
	// grt_delete, condensing the 8-entry-per-node tree level by level (the
	// Section 5.5 delete policy lives in the tree's condense path).
	reclaimed, err := e.VacuumNow()
	if err != nil {
		return err
	}
	vtrace := e.TakeCallTrace()
	e.EnableCallTrace(false)
	vcounts := map[string]int{}
	for _, t := range vtrace {
		vcounts[strings.SplitN(t, "(", 2)[0]]++
	}
	fmt.Fprintf(w, "  vacuum reclaimed %d dead versions; am_delete called %d time(s)\n", reclaimed, vcounts["am_delete"])
	fmt.Fprintln(w, "  grt_delete condensed the tree repeatedly; a live Cursor would restart")
	fmt.Fprintln(w, "  per the Section 5.5 compromise (restart only on an actual condense).")
	if reclaimed != 80 || vcounts["am_delete"] != 80 {
		return fmt.Errorf("T5 vacuum protocol violated: reclaimed=%d counts=%v", reclaimed, vcounts)
	}
	if _, err := s.Exec(`CHECK INDEX ix`); err != nil {
		return err
	}
	return nil
}
