package experiments

import "testing"

// The ISSUE's acceptance criterion for the networked sweep: GROUP commits
// arriving over separate TCP connections still share fsyncs — below one
// fsync per commit once enough remote writers overlap in the flush window.
func TestP11GroupSharesFsyncs(t *testing.T) {
	if testing.Short() {
		t.Skip("networked commit sweep")
	}
	row, err := runP11Cell("GROUP", 4, 160)
	if err != nil {
		t.Fatal(err)
	}
	if row.FsyncsPerCommit >= 1 {
		t.Errorf("GROUP at 4 remote writers: %.2f fsyncs/commit, want < 1", row.FsyncsPerCommit)
	}
	if row.CommitsPerS <= 0 {
		t.Fatalf("no commit throughput recorded: %+v", row)
	}
}
