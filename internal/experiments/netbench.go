package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/chronon"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
)

// P11Row records one cell of the networked commit sweep.
type P11Row struct {
	Mode            string
	Writers         int
	PerCommit       time.Duration
	CommitsPerS     float64
	FsyncsPerCommit float64
	// SpeedupVsSync compares commits/s against the SYNC row at the same
	// writer count (1.0 for the SYNC rows themselves).
	SpeedupVsSync float64
}

// RunP11 is P9 through the network stack: N tinyblade clients over real TCP
// connections to an in-process tinybladed, each auto-committing inserts
// into its own table with its own SET COMMIT mode. It measures whether
// group commit's fsync sharing survives the wire — remote writers arrive at
// the WAL staggered by protocol round trips, so GROUP coalescing across
// connections (fsyncs/commit < 1) is the interesting number, alongside the
// per-commit cost of the added hop.
//
// Caveats (single-host loopback): the "network" is the kernel's loopback
// path — no real latency, so round trips cost microseconds, not
// milliseconds, and the commit-rate gap between embedded P9 and remote P11
// understates a real deployment. Client goroutines, server executors, and
// the WAL flusher also share this host's CPUs, so high writer counts
// measure scheduling as much as protocol. Treat cross-mode ratios within
// this table as meaningful and absolute rates as indicative only.
func RunP11(w io.Writer, commits int) ([]P11Row, error) {
	modes := []string{"SYNC", "GROUP", "ASYNC"}
	writerCounts := []int{1, 2, 4, 8}
	fmt.Fprintf(w, "P11: networked group commit (commits=%d per cell, on-disk WAL, loopback TCP, GOMAXPROCS=%d)\n",
		commits, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-6s %-8s %14s %12s %14s %10s\n",
		"mode", "writers", "per-commit", "commits/s", "fsyncs/commit", "vs SYNC")
	var rows []P11Row
	syncBase := map[int]float64{}
	for _, mode := range modes {
		for _, writers := range writerCounts {
			row, err := runP11Cell(mode, writers, commits)
			if err != nil {
				return nil, err
			}
			if mode == "SYNC" {
				syncBase[writers] = row.CommitsPerS
			}
			if base := syncBase[writers]; base > 0 {
				row.SpeedupVsSync = row.CommitsPerS / base
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6s %-8d %14v %12.0f %14.2f %9.2fx\n",
				row.Mode, row.Writers, row.PerCommit, row.CommitsPerS,
				row.FsyncsPerCommit, row.SpeedupVsSync)
		}
	}
	fmt.Fprintln(w, "  (loopback TCP: protocol round trips cost microseconds, so embedded-vs-remote")
	fmt.Fprintln(w, "   gaps understate a real network; compare modes within this table, not absolutes)")
	return rows, nil
}

func runP11Cell(mode string, writers, commits int) (P11Row, error) {
	dir, err := os.MkdirTemp("", "tinyblade-p11-*")
	if err != nil {
		return P11Row{}, err
	}
	defer os.RemoveAll(dir)
	e, err := engine.Open(engine.Options{
		Dir:   dir,
		Clock: chronon.NewVirtualClock(chronon.MustParse("9/97")),
	})
	if err != nil {
		return P11Row{}, err
	}
	defer e.Close()

	srv := server.New(e, server.Options{MaxExecutors: writers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return P11Row{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	// One table per writer: heap tables serialise at the session level.
	setup := e.NewSession()
	for i := 0; i < writers; i++ {
		if _, err := setup.Exec(fmt.Sprintf(`CREATE TABLE c%d (a INTEGER)`, i)); err != nil {
			setup.Close()
			return P11Row{}, err
		}
	}
	setup.Close()

	conns := make([]*client.Conn, writers)
	for i := range conns {
		c, err := client.Dial(ln.Addr().String(), nil)
		if err != nil {
			return P11Row{}, err
		}
		defer c.Close()
		if _, err := c.Exec("SET COMMIT " + mode); err != nil {
			return P11Row{}, err
		}
		conns[i] = c
	}

	// Untimed warm-up, as in P9: first-touch costs land outside the timed
	// region so cells measure steady-state commit cost over the wire.
	for i, c := range conns {
		for n := 0; n < 16; n++ {
			if _, err := c.Exec(fmt.Sprintf(`INSERT INTO c%d VALUES (-1)`, i)); err != nil {
				return P11Row{}, err
			}
		}
	}

	per := commits / writers
	flushes := e.Obs().Counter("wal.flushes")
	flushes0 := flushes.Load()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := conns[i]
			for n := 0; n < per; n++ {
				if _, err := c.Exec(fmt.Sprintf(`INSERT INTO c%d VALUES (%d)`, i, n)); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return P11Row{}, err
		}
	}
	total := per * writers
	return P11Row{
		Mode:            mode,
		Writers:         writers,
		PerCommit:       elapsed / time.Duration(total),
		CommitsPerS:     float64(total) / elapsed.Seconds(),
		FsyncsPerCommit: float64(flushes.Load()-flushes0) / float64(total),
	}, nil
}
