// Package experiments implements the per-experiment harness of DESIGN.md:
// one runnable reproduction for every table and figure of the paper (T1–T5,
// F2–F6) plus the performance-shape experiments (P1–P6) that substantiate
// the claim that the GR-tree DataBlade "aims to achieve better performance,
// not just to add functionality". The benchrunner binary and the root-level
// benchmarks drive these functions; EXPERIMENTS.md records their output.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chronon"
	"repro/internal/grtree"
	"repro/internal/nodestore"
	"repro/internal/rstar"
	"repro/internal/temporal"
)

// WorkloadConfig parameterises the bitemporal insertion process.
type WorkloadConfig struct {
	Tuples  int     // tuples inserted over the simulation
	Days    int     // simulated days (inserts spread evenly)
	NowFrac float64 // fraction of tuples with VTEnd = NOW
	// CloseFrac is the fraction of tuples logically deleted before the end
	// (their TTEnd becomes ground).
	CloseFrac float64
	Seed      int64
	Start     chronon.Instant // first simulated day
}

// DefaultWorkload is the P1/P2 base configuration.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Tuples: 5000, Days: 500, NowFrac: 0.5, CloseFrac: 0.3,
		Seed: 1, Start: chronon.MustParse("1/95"),
	}
}

// Event is one index operation in day order.
type Event struct {
	Day     chronon.Instant
	Insert  bool // false = logical deletion (index delete + reinsert closed)
	Extent  temporal.Extent
	Closed  temporal.Extent // for deletions: the closed extent to re-insert
	Payload uint64
}

// Workload is a generated event sequence plus the final state for
// ground-truth evaluation.
type Workload struct {
	Config  WorkloadConfig
	Events  []Event
	Final   map[uint64]temporal.Extent // payload -> extent at EndCT
	EndCT   chronon.Instant
	Queries []temporal.Extent
}

// Generate builds a bitemporal workload: tuples are inserted day by day
// with now-relative valid-time ends in the configured fraction; a subset is
// logically deleted later (TTEnd UC -> ground, per Section 2), which at the
// index level is a delete of the growing extent plus an insert of the
// closed one.
func Generate(cfg WorkloadConfig) *Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Config: cfg, Final: make(map[uint64]temporal.Extent)}
	perDay := cfg.Tuples / cfg.Days
	if perDay < 1 {
		perDay = 1
	}
	type live struct {
		payload uint64
		ext     temporal.Extent
	}
	var current []live
	payload := uint64(0)
	day := cfg.Start
	for inserted := 0; inserted < cfg.Tuples; day++ {
		for k := 0; k < perDay && inserted < cfg.Tuples; k++ {
			payload++
			inserted++
			vtb := day - chronon.Instant(rng.Int63n(120))
			e := temporal.Extent{TTBegin: day, TTEnd: chronon.UC, VTBegin: vtb}
			if rng.Float64() < cfg.NowFrac {
				e.VTEnd = chronon.NOW
			} else {
				e.VTEnd = vtb + chronon.Instant(rng.Int63n(120))
			}
			w.Events = append(w.Events, Event{Day: day, Insert: true, Extent: e, Payload: payload})
			w.Final[payload] = e
			current = append(current, live{payload, e})
		}
		// Close a few current tuples per day on average.
		expected := float64(cfg.Tuples) * cfg.CloseFrac / float64(cfg.Days)
		for n := expected; n > 0 && len(current) > 0; n-- {
			if n < 1 && rng.Float64() > n {
				break
			}
			i := rng.Intn(len(current))
			v := current[i]
			current[i] = current[len(current)-1]
			current = current[:len(current)-1]
			closed, err := v.ext.Deleted(day)
			if err != nil {
				continue
			}
			w.Events = append(w.Events, Event{Day: day, Insert: false, Extent: v.ext, Closed: closed, Payload: v.payload})
			w.Final[v.payload] = closed
		}
	}
	w.EndCT = day + 30

	// Bitemporal timeslice queries in three classes (after the [BJSS98]
	// evaluation): (a) near-diagonal points ("what did we believe about
	// then, back then"), (b) past transaction time with later valid time
	// ("what did we believe at tt about a later period") — the class where
	// maximum-timestamp rectangles overfetch catastrophically — and (c)
	// uniform small rectangles.
	span := int64(w.EndCT - cfg.Start)
	for q := 0; q < 200; q++ {
		wdt := 1 + chronon.Instant(rng.Int63n(6))
		var tt, vt chronon.Instant
		switch q % 4 {
		case 0, 1: // class (b)
			tt = cfg.Start + chronon.Instant(rng.Int63n(span))
			vt = tt + chronon.Instant(rng.Int63n(int64(w.EndCT-tt)+30))
		case 2: // class (a)
			tt = cfg.Start + chronon.Instant(rng.Int63n(span))
			vt = tt - chronon.Instant(rng.Int63n(60))
		default: // class (c)
			tt = cfg.Start + chronon.Instant(rng.Int63n(span))
			vt = cfg.Start - 60 + chronon.Instant(rng.Int63n(span))
		}
		w.Queries = append(w.Queries, temporal.Extent{
			TTBegin: tt, TTEnd: tt + wdt, VTBegin: vt, VTEnd: vt + wdt,
		})
	}
	return w
}

// TrueMatches counts the ground-truth answer set of an Overlaps query over
// the final state at ct.
func (w *Workload) TrueMatches(q temporal.Extent, ct chronon.Instant) int {
	n := 0
	qr := q.Region()
	for _, e := range w.Final {
		if e.Region().Overlaps(qr, ct) {
			n++
		}
	}
	return n
}

// Index abstracts the competing access methods for replay.
type Index interface {
	Name() string
	Insert(e temporal.Extent, payload uint64, ct chronon.Instant) error
	Delete(e temporal.Extent, payload uint64, ct chronon.Instant) error
	// SearchCount runs an Overlaps query and returns the number of results
	// after exact re-filtering (what SQL would return).
	SearchCount(q temporal.Extent, ct chronon.Instant) (int, error)
	// NodeReads returns the cumulative node-read counter.
	NodeReads() uint64
	ResetReads()
}

// GRTIndex adapts a GR-tree.
type GRTIndex struct {
	Tree  *grtree.Tree
	store nodestore.Store
}

// NewGRTIndex builds an empty in-memory GR-tree index.
func NewGRTIndex(cfg grtree.Config) (*GRTIndex, error) {
	store := nodestore.NewMem()
	tr, err := grtree.Create(store, cfg)
	if err != nil {
		return nil, err
	}
	return &GRTIndex{Tree: tr, store: store}, nil
}

// Name implements Index.
func (g *GRTIndex) Name() string { return "GR-tree" }

// Insert implements Index.
func (g *GRTIndex) Insert(e temporal.Extent, p uint64, ct chronon.Instant) error {
	return g.Tree.Insert(e, grtree.Payload(p), ct)
}

// Delete implements Index.
func (g *GRTIndex) Delete(e temporal.Extent, p uint64, ct chronon.Instant) error {
	removed, _, err := g.Tree.Delete(e, grtree.Payload(p), ct)
	if err == nil && !removed {
		return fmt.Errorf("grt: missing entry for %d", p)
	}
	return err
}

// SearchCount implements Index.
func (g *GRTIndex) SearchCount(q temporal.Extent, ct chronon.Instant) (int, error) {
	out, err := g.Tree.SearchAll(grtree.Predicate{Op: grtree.OpOverlaps, Query: q}, ct)
	return len(out), err
}

// NodeReads implements Index.
func (g *GRTIndex) NodeReads() uint64 { return g.store.Stats().NodeReads }

// ResetReads implements Index.
func (g *GRTIndex) ResetReads() { g.store.ResetStats() }

// NowSub mirrors the rstblade substitution policies without importing the
// blade (the experiments run at the tree level).
type NowSub int

const (
	// SubMax substitutes the maximum timestamp for UC/NOW.
	SubMax NowSub = iota
	// SubAsOf resolves UC/NOW at insertion time (frozen rectangles).
	SubAsOf
)

// RSTIndex adapts an R*-tree under a substitution policy.
type RSTIndex struct {
	Tree   *rstar.Tree
	store  nodestore.Store
	Sub    NowSub
	MaxTS  chronon.Instant
	rects  map[uint64]rstar.Rect // payload -> stored rect (delete support)
	label  string
	exacts ExactSource
}

// NewRSTIndex builds an empty in-memory R*-tree baseline.
func NewRSTIndex(cfg rstar.Config, sub NowSub, maxTS chronon.Instant) (*RSTIndex, error) {
	store := nodestore.NewMem()
	tr, err := rstar.Create(store, cfg)
	if err != nil {
		return nil, err
	}
	label := "R*-MX"
	if sub == SubAsOf {
		label = "R*-CT"
	}
	return &RSTIndex{Tree: tr, store: store, Sub: sub, MaxTS: maxTS, rects: make(map[uint64]rstar.Rect), label: label}, nil
}

// Name implements Index.
func (r *RSTIndex) Name() string { return r.label }

func (r *RSTIndex) mapExtent(e temporal.Extent, ct chronon.Instant) rstar.Rect {
	tte, vte := e.TTEnd, e.VTEnd
	switch r.Sub {
	case SubMax:
		if tte == chronon.UC {
			tte = r.MaxTS
		}
		if vte == chronon.NOW {
			vte = r.MaxTS
		}
		return rstar.Rect{XMin: int64(e.TTBegin), XMax: int64(tte), YMin: int64(e.VTBegin), YMax: int64(vte)}
	default:
		sh := e.Region().Resolve(ct).BoundingBox()
		return rstar.Rect{XMin: sh.TTBegin, XMax: sh.TTEnd, YMin: sh.VTBegin, YMax: sh.VTEnd}
	}
}

// Insert implements Index.
func (r *RSTIndex) Insert(e temporal.Extent, p uint64, ct chronon.Instant) error {
	rect := r.mapExtent(e, ct)
	r.rects[p] = rect
	return r.Tree.Insert(rect, rstar.Payload(p))
}

// Delete implements Index.
func (r *RSTIndex) Delete(e temporal.Extent, p uint64, ct chronon.Instant) error {
	rect, ok := r.rects[p]
	if !ok {
		return fmt.Errorf("rst: no stored rect for %d", p)
	}
	removed, _, err := r.Tree.Delete(rect, rstar.Payload(p))
	if err == nil && !removed {
		return fmt.Errorf("rst: missing entry for %d", p)
	}
	delete(r.rects, p)
	return err
}

// SearchCount implements Index: candidates come from the rectangle index;
// exactness requires the re-filter the engine applies (the extra fetched
// candidates are exactly the baseline's I/O penalty). The returned count is
// the number of exact matches among candidates, which for SubAsOf may be
// fewer than the truth (recall loss).
func (r *RSTIndex) SearchCount(q temporal.Extent, ct chronon.Instant) (int, error) {
	return r.searchCount(q, ct, nil)
}

// SearchCandidates additionally reports the candidate count.
func (r *RSTIndex) SearchCandidates(q temporal.Extent, ct chronon.Instant) (exact, candidates int, err error) {
	exact, err = r.searchCount(q, ct, &candidates)
	return exact, candidates, err
}

func (r *RSTIndex) searchCount(q temporal.Extent, ct chronon.Instant, candidates *int) (int, error) {
	qr := r.mapExtent(q, ct)
	// Cover the query's current resolution too (ground query over grown
	// data under SubMax).
	sh := q.Region().Resolve(ct).BoundingBox()
	qr = qr.Union(rstar.Rect{XMin: sh.TTBegin, XMax: sh.TTEnd, YMin: sh.VTBegin, YMax: sh.VTEnd})
	cur, err := r.Tree.Search(rstar.OpOverlaps, qr)
	if err != nil {
		return 0, err
	}
	exact := 0
	qreg := q.Region()
	for {
		e, ok, err := cur.Next()
		if err != nil {
			return exact, err
		}
		if !ok {
			return exact, nil
		}
		if candidates != nil {
			*candidates++
		}
		// Exact re-filter needs the tuple's true extent — a heap fetch in
		// the engine; here the final map substitutes for the heap.
		if ext, ok := r.exactExtent(uint64(e.Payload())); ok {
			if ext.Region().Overlaps(qreg, ct) {
				exact++
			}
		}
	}
}

// exactExtents lets the adapter re-filter candidates exactly (stands in for
// the heap fetch).
var _ = fmt.Sprintf

// ExactSource supplies true extents for re-filtering.
type ExactSource map[uint64]temporal.Extent

// exact source attached by Replay.
func (r *RSTIndex) exactExtent(p uint64) (temporal.Extent, bool) {
	e, ok := r.exacts[p]
	return e, ok
}

// SetExactSource attaches the payload -> extent map used for re-filtering.
func (r *RSTIndex) SetExactSource(m ExactSource) { r.exacts = m }

// NodeReads implements Index.
func (r *RSTIndex) NodeReads() uint64 { return r.store.Stats().NodeReads }

// ResetReads implements Index.
func (r *RSTIndex) ResetReads() { r.store.ResetStats() }

// Replay drives a workload into an index, maintaining an exact-extent map
// for baselines that need re-filtering.
func Replay(w *Workload, idx Index) error {
	exacts := make(ExactSource)
	if rst, ok := idx.(*RSTIndex); ok {
		rst.SetExactSource(exacts)
	}
	for _, ev := range w.Events {
		if ev.Insert {
			if err := idx.Insert(ev.Extent, ev.Payload, ev.Day); err != nil {
				return fmt.Errorf("replay insert day %v: %w", ev.Day, err)
			}
			exacts[ev.Payload] = ev.Extent
		} else {
			if err := idx.Delete(ev.Extent, ev.Payload, ev.Day); err != nil {
				return fmt.Errorf("replay delete day %v: %w", ev.Day, err)
			}
			if err := idx.Insert(ev.Closed, ev.Payload, ev.Day); err != nil {
				return fmt.Errorf("replay reinsert day %v: %w", ev.Day, err)
			}
			exacts[ev.Payload] = ev.Closed
		}
	}
	return nil
}
