package experiments

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"time"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
)

// P14Row records one cell of the aggregate-pushdown sweep.
type P14Row struct {
	Rows    int
	Agg     string // COUNT(*) | MIN(X) | MAX(X)
	Pushed  time.Duration
	Drained time.Duration
	Speedup float64 // Drained / Pushed
}

// RunP14 measures what the am_aggregate purpose slot buys: a broad
// COUNT/MIN/MAX over a GR-tree index answered from the tree's internal
// nodes (entry counts, boundary leaves — zero tuples fetched) against the
// same query forced through the tuple drain by a residual conjunct. Both
// shapes return identical answers; the sweep times them per table size.
//
// A second act demonstrates stale-statistics mis-costing: statistics are
// collected while a table is tiny, the table then grows two-hundredfold,
// and the planner keeps trusting the tiny seqscan estimate — a selective
// COUNT drains the whole heap. UPDATE STATISTICS flips it back to the
// index path, where the residual-free aggregate is answered by
// am_aggregate without touching a tuple.
func RunP14(w io.Writer, sizes []int, queries int) ([]P14Row, error) {
	fmt.Fprintf(w, "P14: am_aggregate pushdown vs tuple drain (queries=%d per cell)\n", queries)
	fmt.Fprintf(w, "%-8s %-10s %12s %12s %10s\n", "rows", "aggregate", "pushed", "drained", "speedup")
	const qual = `Overlaps(X, '1/90, UC, 1/90, NOW')` // matches every stored extent
	var rows []P14Row
	for _, size := range sizes {
		e, s, err := p14Engine(size)
		if err != nil {
			return nil, err
		}
		for _, agg := range []string{"COUNT(*)", "MIN(X)", "MAX(X)"} {
			pushedQ := fmt.Sprintf(`SELECT %s FROM T WHERE %s`, agg, qual)
			drainQ := pushedQ + ` AND N >= 0` // residual: the index path drains tuples

			pushed0 := e.Obs().Counter("agg.pushed").Load()
			pr, err := s.Exec(pushedQ)
			if err != nil {
				e.Close()
				return nil, err
			}
			if e.Obs().Counter("agg.pushed").Load() == pushed0 {
				e.Close()
				return nil, fmt.Errorf("p14: %s over %d rows was not pushed down", agg, size)
			}
			dr, err := s.Exec(drainQ)
			if err != nil {
				e.Close()
				return nil, err
			}
			if !reflect.DeepEqual(pr.Rows[0][0], dr.Rows[0][0]) {
				e.Close()
				return nil, fmt.Errorf("p14: %s disagrees: pushed %v, drained %v", agg, pr.Rows[0][0], dr.Rows[0][0])
			}

			pushedPer, err := p14Time(s, pushedQ, queries)
			if err != nil {
				e.Close()
				return nil, err
			}
			drainPer, err := p14Time(s, drainQ, queries)
			if err != nil {
				e.Close()
				return nil, err
			}
			row := P14Row{
				Rows: size, Agg: agg, Pushed: pushedPer, Drained: drainPer,
				Speedup: float64(drainPer) / float64(pushedPer),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-8d %-10s %12v %12v %9.1fx\n", row.Rows, row.Agg, row.Pushed, row.Drained, row.Speedup)
		}

		if size == sizes[len(sizes)-1] {
			if err := p14MisCosting(w, e, s, size, queries); err != nil {
				e.Close()
				return nil, err
			}
		}
		s.Close()
		e.Close()
	}
	fmt.Fprintln(w, "  (pushed cells answer from the GR-tree's internal entry counts and boundary")
	fmt.Fprintln(w, "   leaves — zero tuples fetched; drained cells resolve every matching rowid)")
	return rows, nil
}

// p14MisCosting demonstrates stale-statistics mis-costing on a second
// table. Statistics are collected while T2 holds 100 rows, then the table
// grows to size/5. The generation stamp cannot see DML, so the planner
// keeps trusting the tiny seqscan estimate (a few pages) against the
// index's honest height-plus-leaves cost and drains the grown heap for a
// selective COUNT. Refreshing the statistics flips the plan to the index
// path, where the residual-free COUNT pushes down to am_aggregate.
func p14MisCosting(w io.Writer, e *engine.Engine, s *engine.Session, size, queries int) error {
	const seed = 100
	grown := size / 5
	if _, err := s.Exec(`CREATE TABLE T2 (N INTEGER, X GRT_TimeExtent_t)`); err != nil {
		return err
	}
	insert := func(i int) error {
		m, y := i%12+1, 90+i%6
		_, err := s.Exec(fmt.Sprintf(
			`INSERT INTO T2 VALUES (%d, '%d/%d, %d/%d, %d/%d, %d/%d')`,
			i, m, y, m, y+1, m, y, m, y+1))
		return err
	}
	for i := 0; i < seed; i++ {
		if err := insert(i); err != nil {
			return err
		}
	}
	if _, err := s.Exec(`CREATE INDEX dix ON T2(X) USING grtree_am IN spc`); err != nil {
		return err
	}
	if _, err := s.Exec(`UPDATE STATISTICS FOR TABLE T2`); err != nil {
		return err
	}
	for i := seed; i < grown; i++ {
		if err := insert(i); err != nil {
			return err
		}
	}

	countQ := `SELECT COUNT(*) FROM T2 WHERE Overlaps(X, '1/92, 1/93, 1/92, 1/93')`
	planOf := func() (string, error) {
		res, err := s.Exec(`EXPLAIN ` + countQ)
		if err != nil {
			return "", err
		}
		return strings.Join(res.Plan.Lines(), "\n"), nil
	}

	stalePlan, err := planOf()
	if err != nil {
		return err
	}
	if !strings.Contains(stalePlan, "sequential heap scan") {
		return fmt.Errorf("p14: stale statistics were expected to mis-plan a seqscan:\n%s", stalePlan)
	}
	pushed0 := e.Obs().Counter("agg.pushed").Load()
	staleRes, err := s.Exec(countQ)
	if err != nil {
		return err
	}
	if e.Obs().Counter("agg.pushed").Load() != pushed0 {
		return fmt.Errorf("p14: the seqscan-planned COUNT must not push down")
	}
	staleTime, err := p14Time(s, countQ, queries)
	if err != nil {
		return err
	}

	if _, err := s.Exec(`UPDATE STATISTICS FOR TABLE T2`); err != nil {
		return err
	}
	freshPlan, err := planOf()
	if err != nil {
		return err
	}
	if !strings.Contains(freshPlan, "index scan on dix") {
		return fmt.Errorf("p14: fresh statistics were expected to restore the index plan:\n%s", freshPlan)
	}
	if !strings.Contains(freshPlan, "stats(age 0)") {
		return fmt.Errorf("p14: post-refresh plan lacks the stats cost source:\n%s", freshPlan)
	}
	freshRes, err := s.Exec(countQ)
	if err != nil {
		return err
	}
	if e.Obs().Counter("agg.pushed").Load() == pushed0 {
		return fmt.Errorf("p14: the index-planned COUNT did not push down")
	}
	if !reflect.DeepEqual(staleRes.Rows[0][0], freshRes.Rows[0][0]) {
		return fmt.Errorf("p14: plans disagree: seqscan %v, pushed %v",
			staleRes.Rows[0][0], freshRes.Rows[0][0])
	}
	freshTime, err := p14Time(s, countQ, queries)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "  stale-statistics demo (selective COUNT on a second table):")
	fmt.Fprintf(w, "    statistics collected at %d rows; the table then grows to %d\n", seed, grown)
	fmt.Fprintf(w, "    stale stats:       %-12v (%s)\n", staleTime, accessLine(stalePlan))
	fmt.Fprintf(w, "    UPDATE STATISTICS: %-12v (%s)\n", freshTime, accessLine(freshPlan))
	fmt.Fprintf(w, "    refreshing the statistics speeds the selective COUNT %.1fx\n",
		float64(staleTime)/float64(freshTime))
	return nil
}

// accessLine extracts the access-path line ("-> ...") of an EXPLAIN rendering.
func accessLine(plan string) string {
	for _, l := range strings.Split(plan, "\n") {
		l = strings.TrimSpace(l)
		if strings.HasPrefix(l, "-> ") {
			return strings.TrimPrefix(l, "-> ")
		}
	}
	return strings.TrimSpace(strings.SplitN(plan, "\n", 2)[0])
}

// p14Time reports the per-query wall time of q over n runs (one warm-up).
func p14Time(s *engine.Session, q string, n int) (time.Duration, error) {
	if _, err := s.Exec(q); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := s.Exec(q); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// p14Engine builds a GR-tree-indexed table of the given size. Rows are
// inserted before CREATE INDEX so the STR bulk-load fast path builds the
// tree; half the extents are now-relative, half closed — the GR-tree
// handles both natively, so the aggregate slot never declines on shape.
func p14Engine(size int) (*engine.Engine, *engine.Session, error) {
	e, err := engine.Open(engine.Options{
		NoWAL: true,
		Clock: chronon.NewVirtualClock(chronon.MustParse("9/97")),
	})
	if err != nil {
		return nil, nil, err
	}
	if err := grtblade.Register(e); err != nil {
		e.Close()
		return nil, nil, err
	}
	s := e.NewSession()
	if _, err := s.ExecScript(`CREATE SBSPACE spc;
		CREATE TABLE T (N INTEGER, X GRT_TimeExtent_t)`); err != nil {
		s.Close()
		e.Close()
		return nil, nil, err
	}
	for i := 0; i < size; i++ {
		m, y := i%12+1, 90+i%6 // closed extents end y+1 <= 96, before the 9/97 clock
		var ext string
		if i%2 == 0 {
			ext = fmt.Sprintf("%d/%d, UC, %d/%d, NOW", m, y, m, y)
		} else {
			ext = fmt.Sprintf("%d/%d, %d/%d, %d/%d, %d/%d", m, y, m, y+1, m, y, m, y+1)
		}
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, '%s')`, i, ext)); err != nil {
			s.Close()
			e.Close()
			return nil, nil, err
		}
	}
	if _, err := s.Exec(`CREATE INDEX aix ON T(X) USING grtree_am IN spc`); err != nil {
		s.Close()
		e.Close()
		return nil, nil, err
	}
	return e, s, nil
}
