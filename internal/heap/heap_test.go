package heap

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

var schema = []types.Type{types.Builtin(types.KInt), types.Builtin(types.KVarchar)}

func newTable(t *testing.T) *Table {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMemPager(), 128)
	tb, err := Create("emp", 1, bp, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestInsertGetDelete(t *testing.T) {
	tb := newTable(t)
	rid, err := tb.Insert(1, []types.Datum{int64(7), "john"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := tb.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(7) || row[1] != "john" {
		t.Fatalf("row: %v", row)
	}
	ok, err := tb.Delete(1, rid)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, err := tb.Get(rid); err == nil {
		t.Fatal("get after delete must fail")
	}
	ok, err = tb.Delete(1, rid)
	if err != nil || ok {
		t.Fatal("double delete must report false")
	}
}

func TestUpdateInPlaceAndMoved(t *testing.T) {
	tb := newTable(t)
	rid, _ := tb.Insert(1, []types.Datum{int64(1), "short"})
	nrid, err := tb.Update(1, rid, []types.Datum{int64(1), "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Fatal("shrinking update must stay in place")
	}
	row, _ := tb.Get(rid)
	if row[1] != "tiny" {
		t.Fatalf("update content: %v", row)
	}
	// Force a move: fill the page, then grow a tuple drastically.
	var rids []RowID
	for i := 0; ; i++ {
		r, err := tb.Insert(1, []types.Datum{int64(i), "padding-padding-padding-padding"})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
		if r.Page() != rid.Page() {
			break // page 2 is now full
		}
	}
	big := make([]byte, 2000)
	for i := range big {
		big[i] = 'x'
	}
	nrid, err = tb.Update(1, rid, []types.Datum{int64(1), string(big)})
	if err != nil {
		t.Fatal(err)
	}
	if nrid == rid {
		t.Fatal("oversized update must move the row")
	}
	row, err = tb.Get(nrid)
	if err != nil || len(row[1].(string)) != 2000 {
		t.Fatalf("moved row: %v %v", err, row)
	}
	if _, err := tb.Get(rid); err == nil {
		t.Fatal("old rowid must be dead after move")
	}
	// Update of a missing row fails.
	if _, err := tb.Update(1, MakeRowID(2, 999), row); err == nil {
		t.Fatal("update of missing row must fail")
	}
}

func TestScanAndCount(t *testing.T) {
	tb := newTable(t)
	want := map[int64]string{}
	for i := 0; i < 500; i++ {
		v := fmt.Sprintf("value-%d", i)
		if _, err := tb.Insert(1, []types.Datum{int64(i), v}); err != nil {
			t.Fatal(err)
		}
		want[int64(i)] = v
	}
	got := map[int64]string{}
	err := tb.Scan(func(rid RowID, row []types.Datum) (bool, error) {
		got[row[0].(int64)] = row[1].(string)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("scan found %d rows", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("row %d: %q", k, got[k])
		}
	}
	n, err := tb.Count()
	if err != nil || n != 500 {
		t.Fatalf("count %d %v", n, err)
	}
	if tb.Pages() < 2 {
		t.Fatalf("pages %d", tb.Pages())
	}
	// Early stop.
	seen := 0
	tb.Scan(func(RowID, []types.Datum) (bool, error) { seen++; return seen < 10, nil })
	if seen != 10 {
		t.Fatalf("early stop: %d", seen)
	}
}

func TestRandomisedAgainstModel(t *testing.T) {
	tb := newTable(t)
	rng := rand.New(rand.NewSource(17))
	model := map[RowID][]types.Datum{}
	var ids []RowID
	for op := 0; op < 2000; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			row := []types.Datum{rng.Int63n(1000), fmt.Sprintf("r%d", rng.Int())}
			rid, err := tb.Insert(1, row)
			if err != nil {
				t.Fatal(err)
			}
			model[rid] = row
			ids = append(ids, rid)
		case 2:
			if len(ids) == 0 {
				continue
			}
			rid := ids[rng.Intn(len(ids))]
			if _, live := model[rid]; !live {
				continue
			}
			ok, err := tb.Delete(1, rid)
			if err != nil || !ok {
				t.Fatalf("delete live row: %v %v", ok, err)
			}
			delete(model, rid)
		case 3:
			if len(ids) == 0 {
				continue
			}
			rid := ids[rng.Intn(len(ids))]
			if _, live := model[rid]; !live {
				continue
			}
			row := []types.Datum{rng.Int63n(1000), fmt.Sprintf("u%d", rng.Int())}
			nrid, err := tb.Update(1, rid, row)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			model[nrid] = row
			ids = append(ids, nrid)
		}
	}
	// Verify via scan.
	got := map[RowID][]types.Datum{}
	tb.Scan(func(rid RowID, row []types.Datum) (bool, error) {
		got[rid] = row
		return true, nil
	})
	if len(got) != len(model) {
		t.Fatalf("scan %d rows, model %d", len(got), len(model))
	}
	for rid, row := range model {
		g, ok := got[rid]
		if !ok || g[0] != row[0] || g[1] != row[1] {
			t.Fatalf("row %v mismatch", rid)
		}
	}
}

type countJournal struct{ n int }

func (c *countJournal) LogUpdate(tx uint64, space uint32, page uint64, off uint16, before, after []byte) error {
	c.n++
	if len(before) != len(after) {
		return fmt.Errorf("image length mismatch")
	}
	return nil
}

func TestJournalledMutations(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMemPager(), 64)
	j := &countJournal{}
	tb, err := Create("emp", 1, bp, schema, j)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(9, []types.Datum{int64(1), "x"})
	if err != nil {
		t.Fatal(err)
	}
	if j.n == 0 {
		t.Fatal("insert must be journalled")
	}
	before := j.n
	if _, err := tb.Update(9, rid, []types.Datum{int64(1), "y"}); err != nil {
		t.Fatal(err)
	}
	if j.n <= before {
		t.Fatal("update must be journalled")
	}
	before = j.n
	if _, err := tb.Delete(9, rid); err != nil {
		t.Fatal(err)
	}
	if j.n <= before {
		t.Fatal("delete must be journalled")
	}
}

func TestRowIDPacking(t *testing.T) {
	rid := MakeRowID(123456, 789)
	if rid.Page() != 123456 || rid.Slot() != 789 {
		t.Fatalf("packing: %v %v", rid.Page(), rid.Slot())
	}
	if rid.String() == "" {
		t.Fatal("string")
	}
}

func TestOpenExisting(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMemPager(), 64)
	tb, _ := Create("emp", 1, bp, schema, nil)
	rid, _ := tb.Insert(1, []types.Datum{int64(5), "persist"})
	tb2, err := Open("emp", 1, bp, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tb2.Get(rid)
	if err != nil || row[1] != "persist" {
		t.Fatalf("reopened get: %v %v", row, err)
	}
	// Open of a non-table fails.
	bp2 := storage.NewBufferPool(storage.NewMemPager(), 64)
	if _, err := Open("x", 1, bp2, schema, nil); err == nil {
		t.Fatal("open of empty pager must fail")
	}
}

func TestOversizedTuple(t *testing.T) {
	tb := newTable(t)
	big := make([]byte, storage.PageSize)
	if _, err := tb.Insert(1, []types.Datum{int64(1), string(big)}); err == nil {
		t.Fatal("oversized tuple must fail")
	}
}
