package heap

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

var schema = []types.Type{types.Builtin(types.KInt), types.Builtin(types.KVarchar)}

func newTable(t *testing.T) *Table {
	t.Helper()
	bp := storage.NewBufferPool(storage.NewMemPager(), 128)
	tb, err := Create("emp", 1, bp, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestInsertGetDelete(t *testing.T) {
	tb := newTable(t)
	rid, err := tb.Insert(1, []types.Datum{int64(7), "john"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := tb.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(7) || row[1] != "john" {
		t.Fatalf("row: %v", row)
	}
	ok, err := tb.Delete(1, rid)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, err := tb.Get(rid); err == nil {
		t.Fatal("get after delete must fail")
	}
	ok, err = tb.Delete(1, rid)
	if err != nil || ok {
		t.Fatal("double delete must report false")
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	tb := newTable(t)
	rid, _ := tb.Insert(1, []types.Datum{int64(1), "short"})
	nrid, err := tb.Update(1, rid, []types.Datum{int64(1), "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if nrid == rid {
		t.Fatal("update must append a new version at a new rowid")
	}
	row, err := tb.Get(nrid)
	if err != nil || row[1] != "tiny" {
		t.Fatalf("update content: %v %v", row, err)
	}
	// Latest state: the old version is ended.
	if _, err := tb.Get(rid); err == nil {
		t.Fatal("old rowid must be dead after update")
	}
	// The old version keeps its bytes and links to the successor, so a
	// snapshot that predates the update still reads it.
	h, raw, err := tb.readCell(rid)
	if err != nil {
		t.Fatal(err)
	}
	if h.endTx != 1 || h.next != nrid {
		t.Fatalf("old version header: %+v", h)
	}
	old, err := types.DecodeRow(tb.schema, raw)
	if err != nil || old[1] != "short" {
		t.Fatalf("old version row: %v %v", old, err)
	}
	// Update of an already-ended version fails.
	if _, err := tb.Update(2, rid, row); err == nil {
		t.Fatal("update of ended version must fail")
	}
	// Update of a missing row fails.
	if _, err := tb.Update(1, MakeRowID(2, 999), row); err == nil {
		t.Fatal("update of missing row must fail")
	}
}

func TestSnapshotVisibility(t *testing.T) {
	tb := newTable(t)
	rid, err := tb.Insert(5, []types.Datum{int64(1), "v"})
	if err != nil {
		t.Fatal(err)
	}
	get := func(s *Snapshot) bool {
		t.Helper()
		_, ok, err := tb.GetVersion(rid, s)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	// Uncommitted (beginLSN still zero): invisible to others, visible to the
	// creator and to a dirty read.
	if get(&Snapshot{ReadLSN: 10, Tx: 1}) {
		t.Fatal("uncommitted version visible to another tx")
	}
	if !get(&Snapshot{ReadLSN: 10, Tx: 5}) {
		t.Fatal("own write invisible")
	}
	if !get(&Snapshot{Dirty: true, Tx: 1}) {
		t.Fatal("dirty read must see uncommitted version")
	}
	// Commit stamp 4: visible below a later cut, not at or before its own.
	if err := tb.StampVersion(5, rid, StampBegin, 4); err != nil {
		t.Fatal(err)
	}
	if !get(&Snapshot{ReadLSN: 10, Tx: 1}) {
		t.Fatal("committed version invisible")
	}
	if get(&Snapshot{ReadLSN: 4, Tx: 1}) {
		t.Fatal("version from stamp 4 visible at cut 4")
	}
	if get(&Snapshot{ReadLSN: 10, Tx: 1, Active: map[uint64]struct{}{5: {}}}) {
		t.Fatal("version from active tx visible")
	}
	// Delete by tx 6, not yet stamped: old snapshots still see the row, the
	// deleter and dirty readers do not.
	if ok, err := tb.Delete(6, rid); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if !get(&Snapshot{ReadLSN: 10, Tx: 1}) {
		t.Fatal("unstamped delete must not hide the version")
	}
	if get(&Snapshot{ReadLSN: 10, Tx: 6}) {
		t.Fatal("deleter must not see its own deleted version")
	}
	if get(&Snapshot{Dirty: true, Tx: 1}) {
		t.Fatal("dirty read must skip ended version")
	}
	// End stamp 8: invisible at cuts above 8, still visible below.
	if err := tb.StampVersion(6, rid, StampEnd, 8); err != nil {
		t.Fatal(err)
	}
	if get(&Snapshot{ReadLSN: 10, Tx: 1}) {
		t.Fatal("version deleted at stamp 8 visible at cut 10")
	}
	if !get(&Snapshot{ReadLSN: 7, Tx: 1}) {
		t.Fatal("version deleted at stamp 8 invisible at cut 7")
	}
}

func TestVacuum(t *testing.T) {
	tb := newTable(t)
	keep, _ := tb.Insert(1, []types.Datum{int64(1), "keep"})
	dead, _ := tb.Insert(1, []types.Datum{int64(2), "dead"})
	for _, rid := range []RowID{keep, dead} {
		if err := tb.StampVersion(1, rid, StampBegin, 1); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := tb.Delete(2, dead); !ok {
		t.Fatal("delete")
	}
	if err := tb.StampVersion(2, dead, StampEnd, 2); err != nil {
		t.Fatal(err)
	}
	// An aborted insert (creator finished, never stamped) is also garbage.
	if _, err := tb.Insert(9, []types.Datum{int64(3), "aborted"}); err != nil {
		t.Fatal(err)
	}
	noActive := func(uint64) bool { return false }
	n, err := tb.Vacuum(3, 5, noActive, nil)
	if err != nil || n != 2 {
		t.Fatalf("vacuum reclaimed %d (%v), want 2", n, err)
	}
	if c, _ := tb.Count(); c != 1 {
		t.Fatalf("count after vacuum: %d", c)
	}
	if _, err := tb.Get(keep); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	// A version still ended above the horizon survives.
	if ok, _ := tb.Delete(4, keep); !ok {
		t.Fatal("delete keep")
	}
	if err := tb.StampVersion(4, keep, StampEnd, 9); err != nil {
		t.Fatal(err)
	}
	if n, _ := tb.Vacuum(5, 5, noActive, nil); n != 0 {
		t.Fatalf("vacuum above horizon reclaimed %d", n)
	}
	// Raising the horizon reclaims it.
	if n, _ := tb.Vacuum(6, 10, noActive, nil); n != 1 {
		t.Fatalf("vacuum at cut 10 reclaimed %d", n)
	}
}

func TestScannerSnapshot(t *testing.T) {
	tb := newTable(t)
	for i := 0; i < 50; i++ {
		rid, err := tb.Insert(1, []types.Datum{int64(i), fmt.Sprintf("v%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.StampVersion(1, rid, StampBegin, 1); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{ReadLSN: 5, Tx: 2}
	// Writes after the snapshot's cut: an insert and an update by tx 3,
	// stamped at 7.
	late, err := tb.Insert(3, []types.Datum{int64(100), "late"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.StampVersion(3, late, StampBegin, 7); err != nil {
		t.Fatal(err)
	}
	count := func(s *Snapshot) int {
		sc := tb.NewScanner(s)
		n := 0
		for {
			rb, err := sc.NextBatch(16)
			if err != nil {
				t.Fatal(err)
			}
			if rb == nil {
				return n
			}
			n += len(rb.RowIDs)
		}
	}
	if n := count(snap); n != 50 {
		t.Fatalf("snapshot scan saw %d rows, want 50", n)
	}
	if n := count(&Snapshot{ReadLSN: 8, Tx: 2}); n != 51 {
		t.Fatalf("later snapshot saw %d rows, want 51", n)
	}
	if n := count(nil); n != 51 {
		t.Fatalf("latest-state scan saw %d rows, want 51", n)
	}
	// Range scanners partition the data pages without overlap.
	pages := storage.PageID(tb.bp.Pager().NumPages())
	mid := (2 + pages) / 2
	a := tb.NewRangeScanner(snap, 0, mid)
	b := tb.NewRangeScanner(snap, mid, pages+99)
	total := 0
	for _, sc := range []*Scanner{a, b} {
		for {
			rb, err := sc.NextBatch(16)
			if err != nil {
				t.Fatal(err)
			}
			if rb == nil {
				break
			}
			total += len(rb.RowIDs)
		}
	}
	if total != 50 {
		t.Fatalf("partitioned scan saw %d rows, want 50", total)
	}
}

func TestScanAndCount(t *testing.T) {
	tb := newTable(t)
	want := map[int64]string{}
	for i := 0; i < 500; i++ {
		v := fmt.Sprintf("value-%d", i)
		if _, err := tb.Insert(1, []types.Datum{int64(i), v}); err != nil {
			t.Fatal(err)
		}
		want[int64(i)] = v
	}
	got := map[int64]string{}
	err := tb.Scan(func(rid RowID, row []types.Datum) (bool, error) {
		got[row[0].(int64)] = row[1].(string)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("scan found %d rows", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("row %d: %q", k, got[k])
		}
	}
	n, err := tb.Count()
	if err != nil || n != 500 {
		t.Fatalf("count %d %v", n, err)
	}
	if tb.Pages() < 2 {
		t.Fatalf("pages %d", tb.Pages())
	}
	// Early stop.
	seen := 0
	tb.Scan(func(RowID, []types.Datum) (bool, error) { seen++; return seen < 10, nil })
	if seen != 10 {
		t.Fatalf("early stop: %d", seen)
	}
}

func TestRandomisedAgainstModel(t *testing.T) {
	tb := newTable(t)
	rng := rand.New(rand.NewSource(17))
	model := map[RowID][]types.Datum{}
	var ids []RowID
	for op := 0; op < 2000; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			row := []types.Datum{rng.Int63n(1000), fmt.Sprintf("r%d", rng.Int())}
			rid, err := tb.Insert(1, row)
			if err != nil {
				t.Fatal(err)
			}
			model[rid] = row
			ids = append(ids, rid)
		case 2:
			if len(ids) == 0 {
				continue
			}
			rid := ids[rng.Intn(len(ids))]
			if _, live := model[rid]; !live {
				continue
			}
			ok, err := tb.Delete(1, rid)
			if err != nil || !ok {
				t.Fatalf("delete live row: %v %v", ok, err)
			}
			delete(model, rid)
		case 3:
			if len(ids) == 0 {
				continue
			}
			rid := ids[rng.Intn(len(ids))]
			if _, live := model[rid]; !live {
				continue
			}
			row := []types.Datum{rng.Int63n(1000), fmt.Sprintf("u%d", rng.Int())}
			nrid, err := tb.Update(1, rid, row)
			if err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			model[nrid] = row
			ids = append(ids, nrid)
		}
	}
	// Verify via scan.
	got := map[RowID][]types.Datum{}
	tb.Scan(func(rid RowID, row []types.Datum) (bool, error) {
		got[rid] = row
		return true, nil
	})
	if len(got) != len(model) {
		t.Fatalf("scan %d rows, model %d", len(got), len(model))
	}
	for rid, row := range model {
		g, ok := got[rid]
		if !ok || g[0] != row[0] || g[1] != row[1] {
			t.Fatalf("row %v mismatch", rid)
		}
	}
}

type countJournal struct{ n int }

func (c *countJournal) LogUpdate(tx uint64, space uint32, page uint64, off uint16, before, after []byte) error {
	c.n++
	if len(before) != len(after) {
		return fmt.Errorf("image length mismatch")
	}
	return nil
}

func TestJournalledMutations(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMemPager(), 64)
	j := &countJournal{}
	tb, err := Create("emp", 1, bp, schema, j)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(9, []types.Datum{int64(1), "x"})
	if err != nil {
		t.Fatal(err)
	}
	if j.n == 0 {
		t.Fatal("insert must be journalled")
	}
	before := j.n
	nrid, err := tb.Update(9, rid, []types.Datum{int64(1), "y"})
	if err != nil {
		t.Fatal(err)
	}
	if j.n <= before {
		t.Fatal("update must be journalled")
	}
	before = j.n
	if ok, err := tb.Delete(9, nrid); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if j.n <= before {
		t.Fatal("delete must be journalled")
	}
	before = j.n
	if err := tb.StampVersion(9, nrid, StampBegin|StampEnd, 3); err != nil {
		t.Fatal(err)
	}
	if j.n <= before {
		t.Fatal("stamping must be journalled")
	}
}

func TestRowIDPacking(t *testing.T) {
	rid := MakeRowID(123456, 789)
	if rid.Page() != 123456 || rid.Slot() != 789 {
		t.Fatalf("packing: %v %v", rid.Page(), rid.Slot())
	}
	if rid.String() == "" {
		t.Fatal("string")
	}
	// The slot field holds exactly 16 bits; Insert guards the boundary with
	// ErrSlotOverflow rather than letting a wider slot corrupt the page id.
	edge := MakeRowID(7, maxSlot)
	if edge.Page() != 7 || edge.Slot() != maxSlot {
		t.Fatalf("boundary packing: %v %v", edge.Page(), edge.Slot())
	}
}

func TestOpenExisting(t *testing.T) {
	bp := storage.NewBufferPool(storage.NewMemPager(), 64)
	tb, _ := Create("emp", 1, bp, schema, nil)
	rid, _ := tb.Insert(1, []types.Datum{int64(5), "persist"})
	tb2, err := Open("emp", 1, bp, schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tb2.Get(rid)
	if err != nil || row[1] != "persist" {
		t.Fatalf("reopened get: %v %v", row, err)
	}
	// Open of a non-table fails.
	bp2 := storage.NewBufferPool(storage.NewMemPager(), 64)
	if _, err := Open("x", 1, bp2, schema, nil); err == nil {
		t.Fatal("open of empty pager must fail")
	}
}

func TestOversizedTuple(t *testing.T) {
	tb := newTable(t)
	big := make([]byte, storage.PageSize)
	if _, err := tb.Insert(1, []types.Datum{int64(1), string(big)}); err == nil {
		t.Fatal("oversized tuple must fail")
	}
}
