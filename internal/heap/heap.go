// Package heap implements heap tables: slotted-page tuple storage with
// rowids, WAL-logged mutations, and full scans. Rowids are the values index
// leaf entries point at ("a pointer to the actual bitemporal data stored in
// the database", Section 3); grt_getnext returns them to the server, which
// fetches the tuple here.
//
// Concurrency: the engine serialises heap access with table-level locks
// (strict two-phase); the paper's concurrency discussion concerns the index
// side (large-object locks, Section 5.3), which is where the interesting
// behaviour lives.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
	"repro/internal/types"
)

// RowID identifies a tuple: page number (high 48 bits) and slot (low 16).
// The paper's rowids carry a fragment id as well; this engine keeps every
// table in a single fragment.
type RowID uint64

// MakeRowID packs a page and slot.
func MakeRowID(page storage.PageID, slot int) RowID {
	return RowID(uint64(page)<<16 | uint64(slot)&0xFFFF)
}

// Page returns the page number.
func (r RowID) Page() storage.PageID { return storage.PageID(r >> 16) }

// Slot returns the slot number.
func (r RowID) Slot() int { return int(r & 0xFFFF) }

func (r RowID) String() string { return fmt.Sprintf("rid(%d:%d)", r.Page(), r.Slot()) }

// Journal receives physical page-update images (the WAL).
type Journal interface {
	LogUpdate(tx uint64, space uint32, page uint64, offset uint16, before, after []byte) error
}

// ErrNoSuchRow is returned for missing rowids.
var ErrNoSuchRow = errors.New("heap: no such row")

// Table header page (page 1): magic, tuple count.
const (
	tableMagic = 0x48454150 // "HEAP"
)

// Table is one heap table over its own pager.
type Table struct {
	Name    string
	SpaceID uint32

	bp      *storage.BufferPool
	journal Journal
	schema  []types.Type
	last    storage.PageID // insertion hint
}

// Create initialises a table in an empty buffer pool.
func Create(name string, spaceID uint32, bp *storage.BufferPool, schema []types.Type, journal Journal) (*Table, error) {
	t := &Table{Name: name, SpaceID: spaceID, bp: bp, journal: journal, schema: schema}
	f, err := bp.Allocate() // page 1: header
	if err != nil {
		return nil, err
	}
	if f.ID != 1 {
		bp.Unpin(f, false)
		return nil, fmt.Errorf("heap: table pager not empty (header at %d)", f.ID)
	}
	binary.BigEndian.PutUint32(f.Data[0:4], tableMagic)
	bp.Unpin(f, true)
	return t, nil
}

// Open attaches to an existing table.
func Open(name string, spaceID uint32, bp *storage.BufferPool, schema []types.Type, journal Journal) (*Table, error) {
	f, err := bp.Fetch(1)
	if err != nil {
		return nil, fmt.Errorf("heap: open %s: %w", name, err)
	}
	magic := binary.BigEndian.Uint32(f.Data[0:4])
	bp.Unpin(f, false)
	if magic != tableMagic {
		return nil, fmt.Errorf("heap: %s is not a heap table", name)
	}
	return &Table{Name: name, SpaceID: spaceID, bp: bp, journal: journal, schema: schema}, nil
}

// Schema returns the column types.
func (t *Table) Schema() []types.Type { return t.schema }

// Pool exposes the buffer pool (statistics).
func (t *Table) Pool() *storage.BufferPool { return t.bp }

// Count returns the number of live tuples (by scanning).
func (t *Table) Count() (int, error) {
	n := 0
	err := t.Scan(func(RowID, []types.Datum) (bool, error) { n++; return true, nil })
	return n, err
}

// modifyPage applies fn to the page under the WAL: the changed byte range
// is logged with before/after images before the page is marked dirty.
func (t *Table) modifyPage(tx uint64, id storage.PageID, fn func(buf []byte) error) error {
	f, err := t.bp.Fetch(id)
	if err != nil {
		return err
	}
	var before []byte
	if t.journal != nil {
		before = append([]byte(nil), f.Data...)
	}
	if err := fn(f.Data); err != nil {
		t.bp.Unpin(f, false)
		return err
	}
	if t.journal != nil {
		lo, hi := diffRange(before, f.Data)
		if lo < hi {
			if err := t.journal.LogUpdate(tx, t.SpaceID, uint64(id), uint16(lo), before[lo:hi], f.Data[lo:hi]); err != nil {
				t.bp.Unpin(f, true)
				return err
			}
		}
	}
	t.bp.Unpin(f, true)
	return nil
}

func diffRange(a, b []byte) (int, int) {
	lo := 0
	for lo < len(a) && a[lo] == b[lo] {
		lo++
	}
	hi := len(a)
	for hi > lo && a[hi-1] == b[hi-1] {
		hi--
	}
	return lo, hi
}

// Insert stores the row and returns its rowid.
func (t *Table) Insert(tx uint64, row []types.Datum) (RowID, error) {
	data, err := types.EncodeRow(t.schema, row)
	if err != nil {
		return 0, err
	}
	if len(data) > storage.PageSize/2 {
		return 0, fmt.Errorf("heap: tuple of %d bytes exceeds page budget", len(data))
	}
	// Try the hint page, then newer pages, then allocate.
	tryPage := func(id storage.PageID) (RowID, bool, error) {
		var rid RowID
		ok := false
		err := t.modifyPage(tx, id, func(buf []byte) error {
			p := storage.SlottedPage{Buf: buf}
			if p.FreeSpace() < len(data) {
				return nil
			}
			slot, err := p.Insert(data)
			if err != nil {
				return nil // treat as full
			}
			rid = MakeRowID(id, slot)
			ok = true
			return nil
		})
		return rid, ok, err
	}
	if t.last > 1 {
		rid, ok, err := tryPage(t.last)
		if err != nil {
			return 0, err
		}
		if ok {
			return rid, nil
		}
	}
	n := storage.PageID(t.bp.Pager().NumPages())
	for id := n - 1; id > 1; id-- {
		if id == t.last {
			continue
		}
		rid, ok, err := tryPage(id)
		if err != nil {
			return 0, err
		}
		if ok {
			t.last = id
			return rid, nil
		}
		break // only probe the most recent page before extending
	}
	f, err := t.bp.Allocate()
	if err != nil {
		return 0, err
	}
	id := f.ID
	storage.InitSlotted(f.Data)
	t.bp.Unpin(f, true)
	t.last = id
	rid, ok, err := tryPage(id)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("heap: fresh page rejected %d-byte tuple", len(data))
	}
	return rid, nil
}

// Get fetches the row at rid.
func (t *Table) Get(rid RowID) ([]types.Datum, error) {
	f, err := t.bp.Fetch(rid.Page())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
	}
	p := storage.SlottedPage{Buf: f.Data}
	raw, ok := p.Read(rid.Slot())
	if !ok {
		t.bp.Unpin(f, false)
		return nil, fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
	}
	row, err := types.DecodeRow(t.schema, raw)
	t.bp.Unpin(f, false)
	return row, err
}

// Delete removes the row at rid; it reports false when the row is missing.
func (t *Table) Delete(tx uint64, rid RowID) (bool, error) {
	deleted := false
	err := t.modifyPage(tx, rid.Page(), func(buf []byte) error {
		p := storage.SlottedPage{Buf: buf}
		deleted = p.Delete(rid.Slot())
		return nil
	})
	return deleted, err
}

// Update replaces the row at rid. When the new tuple no longer fits in its
// page, the row moves and the new rowid is returned (the engine then drives
// am_update with distinct old and new rowids, per Table 5).
func (t *Table) Update(tx uint64, rid RowID, row []types.Datum) (RowID, error) {
	data, err := types.EncodeRow(t.schema, row)
	if err != nil {
		return 0, err
	}
	updated := false
	err = t.modifyPage(tx, rid.Page(), func(buf []byte) error {
		p := storage.SlottedPage{Buf: buf}
		if _, ok := p.Read(rid.Slot()); !ok {
			return fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
		}
		if e := p.Update(rid.Slot(), data); e == nil {
			updated = true
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if updated {
		return rid, nil
	}
	// Move: delete then insert elsewhere.
	if _, err := t.Delete(tx, rid); err != nil {
		return 0, err
	}
	return t.Insert(tx, row)
}

// RowBatch is one batch of sequentially scanned tuples (parallel slices).
type RowBatch struct {
	RowIDs []RowID
	Rows   [][]types.Datum
}

// Scanner is a pull-based sequential scan yielding tuples in batches — the
// heap-side counterpart of am_getmulti. A page is decoded in one pinned
// visit and its tuples buffered, so batch pulls never hold a page pin
// across calls. The page count is snapshotted at creation (same visibility
// as Scan).
type Scanner struct {
	t        *Table
	next     storage.PageID
	end      storage.PageID
	pendRids []RowID
	pendRows [][]types.Datum
	pos      int
}

// NewScanner starts a sequential scan at the first data page.
func (t *Table) NewScanner() *Scanner {
	return &Scanner{t: t, next: 2, end: storage.PageID(t.bp.Pager().NumPages())}
}

// NewRangeScanner starts a sequential scan over the half-open data-page
// range [start, end) — the partition unit of a parallel seqscan. Page ids
// below the first data page (2) are clamped; end is capped at the current
// page count. Distinct range scanners touch disjoint pages, so they are safe
// to drive from distinct goroutines (the buffer pool is already sharded).
func (t *Table) NewRangeScanner(start, end storage.PageID) *Scanner {
	if start < 2 {
		start = 2
	}
	if max := storage.PageID(t.bp.Pager().NumPages()); end > max {
		end = max
	}
	return &Scanner{t: t, next: start, end: end}
}

// NextBatch returns up to maxRows tuples in storage order, or nil when the
// scan is exhausted. A short batch does not imply exhaustion.
func (sc *Scanner) NextBatch(maxRows int) (*RowBatch, error) {
	if maxRows < 1 {
		maxRows = 1
	}
	rb := &RowBatch{
		RowIDs: make([]RowID, 0, maxRows),
		Rows:   make([][]types.Datum, 0, maxRows),
	}
	for len(rb.RowIDs) < maxRows {
		if sc.pos >= len(sc.pendRids) {
			if sc.next >= sc.end {
				break
			}
			if err := sc.fillPage(); err != nil {
				return nil, err
			}
			continue
		}
		take := maxRows - len(rb.RowIDs)
		if rest := len(sc.pendRids) - sc.pos; rest < take {
			take = rest
		}
		rb.RowIDs = append(rb.RowIDs, sc.pendRids[sc.pos:sc.pos+take]...)
		rb.Rows = append(rb.Rows, sc.pendRows[sc.pos:sc.pos+take]...)
		sc.pos += take
	}
	if len(rb.RowIDs) == 0 {
		return nil, nil
	}
	return rb, nil
}

// fillPage decodes the next data page into the pending buffer (which may
// stay empty for pages without live tuples).
func (sc *Scanner) fillPage() error {
	id := sc.next
	sc.next++
	sc.pendRids = sc.pendRids[:0]
	sc.pendRows = sc.pendRows[:0]
	sc.pos = 0
	f, err := sc.t.bp.Fetch(id)
	if err != nil {
		return err
	}
	// Skip never-initialised pages (e.g., zero pages materialised by
	// recovery): an initialised slotted page has a nonzero free end.
	if binary.BigEndian.Uint16(f.Data[12:14]) == 0 {
		sc.t.bp.Unpin(f, false)
		return nil
	}
	p := storage.SlottedPage{Buf: f.Data}
	var decodeErr error
	for s := 0; s < p.NumSlots(); s++ {
		raw, ok := p.Read(s)
		if !ok {
			continue
		}
		row, err := types.DecodeRow(sc.t.schema, raw)
		if err != nil {
			decodeErr = err
			break
		}
		sc.pendRids = append(sc.pendRids, MakeRowID(id, s))
		sc.pendRows = append(sc.pendRows, row)
	}
	sc.t.bp.Unpin(f, false)
	return decodeErr
}

// scanBatchRows is the internal batch size of the callback Scan.
const scanBatchRows = 64

// Scan iterates all live rows in storage order; fn returning false stops.
// (A batched wrapper over Scanner — fn still sees one row at a time.)
func (t *Table) Scan(fn func(RowID, []types.Datum) (bool, error)) error {
	sc := t.NewScanner()
	for {
		rb, err := sc.NextBatch(scanBatchRows)
		if err != nil {
			return err
		}
		if rb == nil {
			return nil
		}
		for i := range rb.RowIDs {
			cont, err := fn(rb.RowIDs[i], rb.Rows[i])
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
}

// Pages returns the number of data pages (the seqscan cost input).
func (t *Table) Pages() int {
	n := int(t.bp.Pager().NumPages())
	if n < 2 {
		return 0
	}
	return n - 2
}
