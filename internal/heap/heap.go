// Package heap implements heap tables: slotted-page tuple storage with
// rowids, WAL-logged mutations, multi-version tuples, and full scans. Rowids
// are the values index leaf entries point at ("a pointer to the actual
// bitemporal data stored in the database", Section 3); grt_getnext returns
// them to the server, which fetches the tuple here.
//
// Versioning: every slot holds one tuple VERSION — a fixed header (creator
// and deleter transaction ids, their commit stamps, and a link to the
// successor version) followed by the encoded row. Insert appends a new
// version; Delete stamps the deleter onto the version instead of removing
// the slot; Update stamps the old version, appends the replacement at a new
// rowid, and links old→new. Readers carry a Snapshot and apply one
// visibility predicate, so scans never block on writers and never take
// locks; the engine stamps commit LSNs at transaction commit and a vacuum
// pass reclaims versions no live snapshot can see.
//
// Concurrency: writers are serialised by the engine's table-level exclusive
// locks (strict two-phase), but readers take no locks at all — page bytes
// are protected by per-frame latches (storage.Frame), and version headers
// make torn logical states invisible. The paper's concurrency discussion
// concerns the index side (large-object locks, Section 5.3); the heap's
// version chains are deliberately the same machinery its transaction-time
// dimension needs, so AS OF reads fall out of the stamp comparison.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/types"
)

// RowID identifies a tuple version: page number (high 48 bits) and slot
// (low 16). The paper's rowids carry a fragment id as well; this engine
// keeps every table in a single fragment.
type RowID uint64

// maxSlot is the largest slot number a RowID can carry (16-bit field).
const maxSlot = 0xFFFF

// MakeRowID packs a page and slot.
func MakeRowID(page storage.PageID, slot int) RowID {
	return RowID(uint64(page)<<16 | uint64(slot)&maxSlot)
}

// Page returns the page number.
func (r RowID) Page() storage.PageID { return storage.PageID(r >> 16) }

// Slot returns the slot number.
func (r RowID) Slot() int { return int(r & maxSlot) }

func (r RowID) String() string { return fmt.Sprintf("rid(%d:%d)", r.Page(), r.Slot()) }

// Journal receives physical page-update images (the WAL).
type Journal interface {
	LogUpdate(tx uint64, space uint32, page uint64, offset uint16, before, after []byte) error
}

// ErrNoSuchRow is returned for missing rowids.
var ErrNoSuchRow = errors.New("heap: no such row")

// ErrSlotOverflow is returned when a page would hand out a slot number that
// does not fit the RowID's 16-bit slot field. With 4 KiB pages this is
// unreachable (a page holds at most ~1020 slots), but the guard keeps a
// larger page size from silently corrupting page ids.
var ErrSlotOverflow = errors.New("heap: slot number exceeds rowid slot field")

// Table header page (page 1): magic, version format marker. The magic
// changed ("HEAP" → "HEA2") when slots became version cells; pre-MVCC pages
// are not readable.
const (
	tableMagic = 0x48454132 // "HEA2"
)

// Version cell layout: a fixed header followed by the encoded row.
//
//	[0:8)   beginTx  — creator transaction id
//	[8:16)  beginLSN — creator's commit stamp (0 while uncommitted)
//	[16:24) endTx    — deleter transaction id (0 = not ended)
//	[24:32) endLSN   — deleter's commit stamp (0 while uncommitted)
//	[32:40) next     — RowID of the successor version (Update's old→new
//	                   link; 0 = none)
const verHeaderSize = 40

// verHeader is a decoded version-cell header.
type verHeader struct {
	beginTx, beginLSN uint64
	endTx, endLSN     uint64
	next              RowID
}

func parseHeader(cell []byte) verHeader {
	return verHeader{
		beginTx:  binary.BigEndian.Uint64(cell[0:8]),
		beginLSN: binary.BigEndian.Uint64(cell[8:16]),
		endTx:    binary.BigEndian.Uint64(cell[16:24]),
		endLSN:   binary.BigEndian.Uint64(cell[24:32]),
		next:     RowID(binary.BigEndian.Uint64(cell[32:40])),
	}
}

// Snapshot is an MVCC read view: every version whose creator committed
// before ReadLSN (and is not in Active) and whose deleter did not is
// visible. The engine captures ReadLSN and Active atomically against
// commits, so a transaction's versions appear all-or-nothing. The nil
// *Snapshot reads "latest" state: every version not yet ended, committed or
// not (index builds and row counts under the writers' table lock).
type Snapshot struct {
	// ReadLSN is the cut point: stamps strictly below it are committed for
	// this snapshot (the WAL's logical append position, monotone across
	// truncation; a logical clock when the engine runs without a WAL).
	ReadLSN uint64
	// Active holds the transactions that were uncommitted at capture; their
	// stamps are ignored even when below ReadLSN.
	Active map[uint64]struct{}
	// Tx is the reading transaction: its own uncommitted versions are
	// visible, and versions it ended are not.
	Tx uint64
	// Dirty selects DIRTY READ semantics: the newest un-ended version wins,
	// committed or not, and the stamp fields are ignored.
	Dirty bool
}

// Visible reports whether the version is part of this read view.
func (s *Snapshot) visible(h verHeader) bool {
	if s == nil || s.Dirty {
		return h.endTx == 0
	}
	// Begin side: own writes are always visible; otherwise the creator must
	// have a commit stamp below the cut and must not have been active.
	if h.beginTx != s.Tx {
		if h.beginLSN == 0 || h.beginLSN >= s.ReadLSN {
			return false
		}
		if _, act := s.Active[h.beginTx]; act {
			return false
		}
	}
	// End side: a version this transaction ended is gone for it; an end by
	// another transaction counts only once committed below the cut.
	if h.endTx != 0 {
		if h.endTx == s.Tx {
			return false
		}
		if h.endLSN != 0 && h.endLSN < s.ReadLSN {
			if _, act := s.Active[h.endTx]; !act {
				return false
			}
		}
	}
	return true
}

// Stamp targets for StampVersion.
const (
	// StampBegin sets the version's creator commit stamp.
	StampBegin uint8 = 1 << iota
	// StampEnd sets the version's deleter commit stamp.
	StampEnd
)

// Obs mirrors version-chain activity into engine counters. Nil fields are
// no-ops (obs.Counter is nil-safe).
type Obs struct {
	// VersionsCreated counts versions appended by Insert and Update.
	VersionsCreated *obs.Counter
	// VersionsSkipped counts versions a snapshot read rejected.
	VersionsSkipped *obs.Counter
	// Vacuumed counts versions reclaimed by Vacuum.
	Vacuumed *obs.Counter
}

// Table is one heap table over its own pager.
type Table struct {
	Name    string
	SpaceID uint32

	bp      *storage.BufferPool
	journal Journal
	schema  []types.Type
	last    storage.PageID // insertion hint
	obs     Obs
	txLive  func(uint64) bool // engine's active-transaction probe (nil = unknown)

	// dead counts version cells that are reclaimable-in-principle: ended by
	// a committed transaction, or garbage left by an aborted NoWAL creator.
	// Index maintenance is deferred (DELETE and UPDATE leave index entries
	// in place; the vacuum removes entry and cell together), so a non-zero
	// count means some index entry may resolve to an invisible version —
	// the signal am_aggregate's visibility gate declines on. The engine
	// maintains it at commit/rollback and the vacuum subtracts what it
	// reclaims; Open seeds it by scanning.
	dead atomic.Int64
}

// Create initialises a table in an empty buffer pool.
func Create(name string, spaceID uint32, bp *storage.BufferPool, schema []types.Type, journal Journal) (*Table, error) {
	t := &Table{Name: name, SpaceID: spaceID, bp: bp, journal: journal, schema: schema}
	f, err := bp.Allocate() // page 1: header
	if err != nil {
		return nil, err
	}
	if f.ID != 1 {
		bp.Unpin(f, false)
		return nil, fmt.Errorf("heap: table pager not empty (header at %d)", f.ID)
	}
	f.Latch()
	binary.BigEndian.PutUint32(f.Data[0:4], tableMagic)
	f.Unlatch()
	bp.Unpin(f, true)
	return t, nil
}

// Open attaches to an existing table.
func Open(name string, spaceID uint32, bp *storage.BufferPool, schema []types.Type, journal Journal) (*Table, error) {
	f, err := bp.Fetch(1)
	if err != nil {
		return nil, fmt.Errorf("heap: open %s: %w", name, err)
	}
	f.RLatch()
	magic := binary.BigEndian.Uint32(f.Data[0:4])
	f.RUnlatch()
	bp.Unpin(f, false)
	if magic != tableMagic {
		return nil, fmt.Errorf("heap: %s is not a heap table", name)
	}
	t := &Table{Name: name, SpaceID: spaceID, bp: bp, journal: journal, schema: schema}
	n, err := t.countDead()
	if err != nil {
		return nil, fmt.Errorf("heap: open %s: %w", name, err)
	}
	t.dead.Store(n)
	return t, nil
}

// AddDead adjusts the pending-reclamation count (see the dead field).
func (t *Table) AddDead(n int64) { t.dead.Add(n) }

// DeadCount returns the number of version cells awaiting reclamation.
// Zero proves every index entry on this table resolves to a live version.
func (t *Table) DeadCount() int64 { return t.dead.Load() }

// countDead scans for cells a vacuum pass would eventually reclaim: ended
// with a commit stamp, or created without one by a finished transaction.
// Open uses it to seed the dead count — after recovery no transaction is
// in flight, so endLSN != 0 means a committed end and beginLSN == 0 means
// abandoned garbage.
func (t *Table) countDead() (int64, error) {
	var dead int64
	n := storage.PageID(t.bp.Pager().NumPages())
	for id := storage.PageID(2); id < n; id++ {
		err := t.readPage(id, func(buf []byte) error {
			if binary.BigEndian.Uint16(buf[12:14]) == 0 {
				return nil // never-initialised page
			}
			p := storage.SlottedPage{Buf: buf}
			for s := 0; s < p.NumSlots(); s++ {
				raw, ok := p.Read(s)
				if !ok || len(raw) < verHeaderSize {
					continue
				}
				h := parseHeader(raw)
				if (h.endTx != 0 && h.endLSN != 0) || h.beginLSN == 0 {
					dead++
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return dead, nil
}

// readPage applies fn to the page bytes under a shared latch.
func (t *Table) readPage(id storage.PageID, fn func(buf []byte) error) error {
	f, err := t.bp.Fetch(id)
	if err != nil {
		return err
	}
	f.RLatch()
	err = fn(f.Data)
	f.RUnlatch()
	t.bp.Unpin(f, false)
	return err
}

// SetObs attaches version-chain counters. Call before concurrent use.
func (t *Table) SetObs(o Obs) { t.obs = o }

// SetTxLive attaches the engine's active-transaction probe. Writers use it
// to distinguish an in-flight end stamp from one abandoned by an aborted
// NoWAL transaction (endTx set, endLSN zero, transaction finished): the
// abandoned stamp is repaired inline instead of reading as "already ended"
// until the next vacuum pass. Nil leaves abandoned stamps to the vacuum.
// Call before concurrent use.
func (t *Table) SetTxLive(fn func(uint64) bool) { t.txLive = fn }

// endedFor reports how a version's end stamp reads to writer tx: ended
// (a live or committed deleter), or abandoned (an aborted NoWAL deleter's
// residue that the caller may repair and overwrite).
func (t *Table) endedFor(tx uint64, endTx, endLSN uint64) (ended, abandoned bool) {
	if endTx == 0 {
		return false, false
	}
	if endTx != tx && endLSN == 0 && t.txLive != nil && !t.txLive(endTx) {
		return false, true
	}
	return true, false
}

// Schema returns the column types.
func (t *Table) Schema() []types.Type { return t.schema }

// Pool exposes the buffer pool (statistics).
func (t *Table) Pool() *storage.BufferPool { return t.bp }

// Count returns the number of latest-state tuples (by scanning).
func (t *Table) Count() (int, error) {
	n := 0
	err := t.Scan(func(RowID, []types.Datum) (bool, error) { n++; return true, nil })
	return n, err
}

// modifyPage applies fn to the page under the WAL: the changed byte range
// is logged with before/after images before the page is marked dirty. The
// frame's write latch is held across fn so lock-free snapshot readers never
// observe a half-applied edit; it is released before the frame re-enters
// the pool (no latch is ever held across a shard mutex).
func (t *Table) modifyPage(tx uint64, id storage.PageID, fn func(buf []byte) error) error {
	f, err := t.bp.Fetch(id)
	if err != nil {
		return err
	}
	f.Latch()
	var before []byte
	if t.journal != nil {
		before = append([]byte(nil), f.Data...)
	}
	if err := fn(f.Data); err != nil {
		f.Unlatch()
		t.bp.Unpin(f, false)
		return err
	}
	if t.journal != nil {
		lo, hi := diffRange(before, f.Data)
		if lo < hi {
			if err := t.journal.LogUpdate(tx, t.SpaceID, uint64(id), uint16(lo), before[lo:hi], f.Data[lo:hi]); err != nil {
				f.Unlatch()
				t.bp.Unpin(f, true)
				return err
			}
		}
	}
	f.Unlatch()
	t.bp.Unpin(f, true)
	return nil
}

func diffRange(a, b []byte) (int, int) {
	lo := 0
	for lo < len(a) && a[lo] == b[lo] {
		lo++
	}
	hi := len(a)
	for hi > lo && a[hi-1] == b[hi-1] {
		hi--
	}
	return lo, hi
}

// Insert stores the row as a new version created by tx and returns its
// rowid. The version's commit stamp stays zero until the engine stamps it
// at commit (StampVersion).
func (t *Table) Insert(tx uint64, row []types.Datum) (RowID, error) {
	data, err := types.EncodeRow(t.schema, row)
	if err != nil {
		return 0, err
	}
	if len(data)+verHeaderSize > storage.PageSize/2 {
		return 0, fmt.Errorf("heap: tuple of %d bytes exceeds page budget", len(data))
	}
	cell := make([]byte, verHeaderSize+len(data))
	binary.BigEndian.PutUint64(cell[0:8], tx)
	copy(cell[verHeaderSize:], data)
	// Try the hint page, then newer pages, then allocate.
	tryPage := func(id storage.PageID) (RowID, bool, error) {
		var rid RowID
		ok := false
		err := t.modifyPage(tx, id, func(buf []byte) error {
			p := storage.SlottedPage{Buf: buf}
			if p.FreeSpace() < len(cell) {
				return nil
			}
			if p.NextSlot() > maxSlot {
				// Would not round-trip through the RowID's 16-bit slot
				// field: fail loudly before touching the page, so the
				// error path leaves nothing for the WAL to miss.
				return ErrSlotOverflow
			}
			slot, err := p.Insert(cell)
			if err != nil {
				return nil // treat as full
			}
			rid = MakeRowID(id, slot)
			ok = true
			return nil
		})
		return rid, ok, err
	}
	if t.last > 1 {
		rid, ok, err := tryPage(t.last)
		if err != nil {
			return 0, err
		}
		if ok {
			t.obs.VersionsCreated.Inc()
			return rid, nil
		}
	}
	n := storage.PageID(t.bp.Pager().NumPages())
	for id := n - 1; id > 1; id-- {
		if id == t.last {
			continue
		}
		rid, ok, err := tryPage(id)
		if err != nil {
			return 0, err
		}
		if ok {
			t.last = id
			t.obs.VersionsCreated.Inc()
			return rid, nil
		}
		break // only probe the most recent page before extending
	}
	f, err := t.bp.Allocate()
	if err != nil {
		return 0, err
	}
	id := f.ID
	f.Latch()
	storage.InitSlotted(f.Data)
	f.Unlatch()
	t.bp.Unpin(f, true)
	t.last = id
	rid, ok, err := tryPage(id)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("heap: fresh page rejected %d-byte tuple", len(data))
	}
	t.obs.VersionsCreated.Inc()
	return rid, nil
}

// readCell fetches the raw version cell at rid under the read latch,
// returning the parsed header and a private copy of the row bytes.
func (t *Table) readCell(rid RowID) (verHeader, []byte, error) {
	f, err := t.bp.Fetch(rid.Page())
	if err != nil {
		return verHeader{}, nil, fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
	}
	f.RLatch()
	p := storage.SlottedPage{Buf: f.Data}
	raw, ok := p.Read(rid.Slot())
	if !ok || len(raw) < verHeaderSize {
		f.RUnlatch()
		t.bp.Unpin(f, false)
		return verHeader{}, nil, fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
	}
	h := parseHeader(raw)
	row := append([]byte(nil), raw[verHeaderSize:]...)
	f.RUnlatch()
	t.bp.Unpin(f, false)
	return h, row, nil
}

// GetVersion fetches the version at rid and applies the snapshot's
// visibility predicate: ok reports whether the version is part of the read
// view (a rowid obtained from an index may resolve to a version the
// snapshot cannot see — too new, uncommitted, or deleted). A missing slot
// is ErrNoSuchRow.
func (t *Table) GetVersion(rid RowID, snap *Snapshot) ([]types.Datum, bool, error) {
	h, raw, err := t.readCell(rid)
	if err != nil {
		return nil, false, err
	}
	if !snap.visible(h) {
		t.obs.VersionsSkipped.Inc()
		return nil, false, nil
	}
	row, err := types.DecodeRow(t.schema, raw)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// Get fetches the row at rid in latest state (nil-snapshot semantics: the
// version must not be ended). Deleted rows report ErrNoSuchRow.
func (t *Table) Get(rid RowID) ([]types.Datum, error) {
	row, ok, err := t.GetVersion(rid, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
	}
	return row, nil
}

// Delete ends the version at rid: the deleter's transaction id is stamped
// onto the version (the slot stays until vacuum). It reports false when the
// version is missing or already ended. An end stamp abandoned by an aborted
// NoWAL deleter is overwritten (the next link it may have left is cleared),
// matching Vacuum's repair path, so ROLLBACK does not shadow the row from
// writers until the next vacuum tick.
func (t *Table) Delete(tx uint64, rid RowID) (bool, error) {
	deleted := false
	err := t.modifyPage(tx, rid.Page(), func(buf []byte) error {
		p := storage.SlottedPage{Buf: buf}
		raw, ok := p.Read(rid.Slot())
		if !ok || len(raw) < verHeaderSize {
			return nil
		}
		h := parseHeader(raw)
		ended, abandoned := t.endedFor(tx, h.endTx, h.endLSN)
		if ended {
			return nil
		}
		if abandoned {
			binary.BigEndian.PutUint64(raw[32:40], 0)
		}
		binary.BigEndian.PutUint64(raw[16:24], tx)
		deleted = true
		return nil
	})
	return deleted, err
}

// Update replaces the row at rid: the replacement is appended as a new
// version (always at a new rowid — the engine drives am_update with
// distinct old and new rowids, per Table 5), the old version is ended by
// tx, and its next link points at the successor.
func (t *Table) Update(tx uint64, rid RowID, row []types.Datum) (RowID, error) {
	h, _, err := t.readCell(rid)
	if err != nil {
		return 0, err
	}
	if ended, _ := t.endedFor(tx, h.endTx, h.endLSN); ended {
		// An abandoned end stamp (aborted NoWAL deleter) is not "ended":
		// the writer overwrites it below, like Delete's repair path.
		return 0, fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
	}
	newRid, err := t.Insert(tx, row)
	if err != nil {
		return 0, err
	}
	err = t.modifyPage(tx, rid.Page(), func(buf []byte) error {
		p := storage.SlottedPage{Buf: buf}
		raw, ok := p.Read(rid.Slot())
		if !ok || len(raw) < verHeaderSize {
			return fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
		}
		binary.BigEndian.PutUint64(raw[16:24], tx)
		binary.BigEndian.PutUint64(raw[32:40], uint64(newRid))
		return nil
	})
	if err != nil {
		return 0, err
	}
	return newRid, nil
}

// StampVersion writes the commit stamp into the version's begin and/or end
// fields (kind is a StampBegin|StampEnd mask). The engine calls it for
// every version a committing transaction created or ended, before the
// commit record is appended, so the stamps are WAL-protected under the same
// transaction.
func (t *Table) StampVersion(tx uint64, rid RowID, kind uint8, stamp uint64) error {
	return t.modifyPage(tx, rid.Page(), func(buf []byte) error {
		p := storage.SlottedPage{Buf: buf}
		raw, ok := p.Read(rid.Slot())
		if !ok || len(raw) < verHeaderSize {
			return fmt.Errorf("%w: %v", ErrNoSuchRow, rid)
		}
		if kind&StampBegin != 0 {
			binary.BigEndian.PutUint64(raw[8:16], stamp)
		}
		if kind&StampEnd != 0 {
			binary.BigEndian.PutUint64(raw[24:32], stamp)
		}
		return nil
	})
}

// Victim is one version cell the vacuum will reclaim: its rowid and decoded
// row, handed to the caller before the slot is freed. Index maintenance is
// deferred — DELETE and UPDATE leave entries in place so concurrent index
// scans under older snapshots keep seeing every rowid they are entitled to —
// which makes the vacuum the single point where entry and cell die together:
// the caller removes the dependent index entries from the victims' projected
// rows, then Vacuum frees the slots.
type Victim struct {
	Rid RowID
	Row []types.Datum
}

// Vacuum reclaims version cells no snapshot at or above horizon can see:
// versions ended with a commit stamp below horizon by a transaction that is
// no longer active, and creations left behind by aborted transactions when
// the engine runs without a WAL (beginLSN still zero, creator finished).
// The caller serialises Vacuum against writers (table exclusive lock) and
// guarantees horizon ≤ every live snapshot's ReadLSN; page edits run under
// tx so they are WAL-logged like any other mutation.
//
// The pass runs in three phases: collect the victims under shared latches,
// hand them to reclaim (no latches held — it performs index page edits of
// its own), then free the slots and repair abandoned NoWAL end stamps. A
// reclaim error aborts the pass before any slot is freed, so a WAL rollback
// restores the already-removed index entries and nothing dangles.
func (t *Table) Vacuum(tx uint64, horizon uint64, active func(uint64) bool, reclaim func([]Victim) error) (int, error) {
	type slotRef struct {
		page storage.PageID
		slot int
	}
	var victims []Victim
	var victimRefs, repairs []slotRef
	n := storage.PageID(t.bp.Pager().NumPages())
	for id := storage.PageID(2); id < n; id++ {
		err := t.readPage(id, func(buf []byte) error {
			if binary.BigEndian.Uint16(buf[12:14]) == 0 {
				return nil // never-initialised page
			}
			p := storage.SlottedPage{Buf: buf}
			for s := 0; s < p.NumSlots(); s++ {
				raw, ok := p.Read(s)
				if !ok || len(raw) < verHeaderSize {
					continue
				}
				h := parseHeader(raw)
				dead := h.endTx != 0 && h.endLSN != 0 && h.endLSN < horizon && !active(h.endTx)
				aborted := h.beginLSN == 0 && !active(h.beginTx)
				if dead || aborted {
					row, err := types.DecodeRow(t.schema, append([]byte(nil), raw[verHeaderSize:]...))
					if err != nil {
						return err
					}
					victims = append(victims, Victim{Rid: MakeRowID(id, s), Row: row})
					victimRefs = append(victimRefs, slotRef{id, s})
					continue
				}
				if h.endTx != 0 && h.endLSN == 0 && !active(h.endTx) {
					// Abandoned end stamp: the deleter finished without a
					// commit stamp (a NoWAL abort — WAL engines undo the
					// stamp physically). Un-end the version so head reads
					// see it again.
					repairs = append(repairs, slotRef{id, s})
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	if reclaim != nil && len(victims) > 0 {
		if err := reclaim(victims); err != nil {
			return 0, err
		}
	}
	// Free the slots and repair abandoned stamps page by page. The caller's
	// table lock excludes writers and commit stamping, so the headers read
	// in phase one are still current.
	edits := make(map[storage.PageID][]slotRef)
	for _, r := range victimRefs {
		edits[r.page] = append(edits[r.page], r)
	}
	for _, r := range repairs {
		edits[r.page] = append(edits[r.page], slotRef{r.page, ^r.slot})
	}
	removed := 0
	for id := storage.PageID(2); id < n; id++ {
		refs := edits[id]
		if len(refs) == 0 {
			continue
		}
		err := t.modifyPage(tx, id, func(buf []byte) error {
			p := storage.SlottedPage{Buf: buf}
			for _, r := range refs {
				if r.slot < 0 { // repair marker
					raw, ok := p.Read(^r.slot)
					if !ok || len(raw) < verHeaderSize {
						continue
					}
					binary.BigEndian.PutUint64(raw[16:24], 0)
					binary.BigEndian.PutUint64(raw[24:32], 0)
					binary.BigEndian.PutUint64(raw[32:40], 0)
					continue
				}
				p.Delete(r.slot)
				removed++
			}
			return nil
		})
		if err != nil {
			return removed, err
		}
	}
	t.obs.Vacuumed.Add(uint64(removed))
	return removed, nil
}

// RowBatch is one batch of sequentially scanned tuples (parallel slices).
type RowBatch struct {
	RowIDs []RowID
	Rows   [][]types.Datum
}

// Scanner is a pull-based sequential scan yielding the snapshot's visible
// tuples in batches — the heap-side counterpart of am_getmulti. A page is
// decoded in one latched visit and its tuples buffered, so batch pulls
// never hold a page pin across calls. The page count is snapshotted at
// creation; versions appended to earlier pages afterwards are rejected by
// the snapshot's stamps, so a scan is stable against concurrent writers.
type Scanner struct {
	t        *Table
	snap     *Snapshot
	next     storage.PageID
	end      storage.PageID
	pendRids []RowID
	pendRows [][]types.Datum
	pos      int
}

// NewScanner starts a sequential scan at the first data page under the
// given read view (nil = latest state).
func (t *Table) NewScanner(snap *Snapshot) *Scanner {
	return &Scanner{t: t, snap: snap, next: 2, end: storage.PageID(t.bp.Pager().NumPages())}
}

// NewRangeScanner starts a sequential scan over the half-open data-page
// range [start, end) — the partition unit of a parallel seqscan. Page ids
// below the first data page (2) are clamped; end is capped at the current
// page count. Distinct range scanners touch disjoint pages, so they are safe
// to drive from distinct goroutines (the buffer pool is already sharded),
// and partitions sharing one snapshot see one consistent cut.
func (t *Table) NewRangeScanner(snap *Snapshot, start, end storage.PageID) *Scanner {
	if start < 2 {
		start = 2
	}
	if max := storage.PageID(t.bp.Pager().NumPages()); end > max {
		end = max
	}
	return &Scanner{t: t, snap: snap, next: start, end: end}
}

// NextBatch returns up to maxRows tuples in storage order, or nil when the
// scan is exhausted. A short batch does not imply exhaustion.
func (sc *Scanner) NextBatch(maxRows int) (*RowBatch, error) {
	if maxRows < 1 {
		maxRows = 1
	}
	rb := &RowBatch{
		RowIDs: make([]RowID, 0, maxRows),
		Rows:   make([][]types.Datum, 0, maxRows),
	}
	for len(rb.RowIDs) < maxRows {
		if sc.pos >= len(sc.pendRids) {
			if sc.next >= sc.end {
				break
			}
			if err := sc.fillPage(); err != nil {
				return nil, err
			}
			continue
		}
		take := maxRows - len(rb.RowIDs)
		if rest := len(sc.pendRids) - sc.pos; rest < take {
			take = rest
		}
		rb.RowIDs = append(rb.RowIDs, sc.pendRids[sc.pos:sc.pos+take]...)
		rb.Rows = append(rb.Rows, sc.pendRows[sc.pos:sc.pos+take]...)
		sc.pos += take
	}
	if len(rb.RowIDs) == 0 {
		return nil, nil
	}
	return rb, nil
}

// fillPage decodes the next data page's visible versions into the pending
// buffer (which may stay empty for pages without visible tuples). The page
// is read under the frame's read latch, so concurrent writers never tear a
// cell; the visibility predicate is the single point deciding what this
// scan sees.
func (sc *Scanner) fillPage() error {
	id := sc.next
	sc.next++
	sc.pendRids = sc.pendRids[:0]
	sc.pendRows = sc.pendRows[:0]
	sc.pos = 0
	f, err := sc.t.bp.Fetch(id)
	if err != nil {
		return err
	}
	f.RLatch()
	// Skip never-initialised pages (e.g., zero pages materialised by
	// recovery): an initialised slotted page has a nonzero free end.
	if binary.BigEndian.Uint16(f.Data[12:14]) == 0 {
		f.RUnlatch()
		sc.t.bp.Unpin(f, false)
		return nil
	}
	p := storage.SlottedPage{Buf: f.Data}
	var decodeErr error
	skipped := 0
	for s := 0; s < p.NumSlots(); s++ {
		raw, ok := p.Read(s)
		if !ok || len(raw) < verHeaderSize {
			continue
		}
		if !sc.snap.visible(parseHeader(raw)) {
			skipped++
			continue
		}
		row, err := types.DecodeRow(sc.t.schema, raw[verHeaderSize:])
		if err != nil {
			decodeErr = err
			break
		}
		sc.pendRids = append(sc.pendRids, MakeRowID(id, s))
		sc.pendRows = append(sc.pendRows, row)
	}
	f.RUnlatch()
	sc.t.bp.Unpin(f, false)
	if skipped > 0 {
		sc.t.obs.VersionsSkipped.Add(uint64(skipped))
	}
	return decodeErr
}

// scanBatchRows is the internal batch size of the callback Scan.
const scanBatchRows = 64

// Scan iterates all latest-state rows in storage order; fn returning false
// stops. (A batched wrapper over Scanner — fn still sees one row at a time.)
func (t *Table) Scan(fn func(RowID, []types.Datum) (bool, error)) error {
	sc := t.NewScanner(nil)
	for {
		rb, err := sc.NextBatch(scanBatchRows)
		if err != nil {
			return err
		}
		if rb == nil {
			return nil
		}
		for i := range rb.RowIDs {
			cont, err := fn(rb.RowIDs[i], rb.Rows[i])
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
}

// Pages returns the number of data pages (the seqscan cost input).
func (t *Table) Pages() int {
	n := int(t.bp.Pager().NumPages())
	if n < 2 {
		return 0
	}
	return n - 2
}
