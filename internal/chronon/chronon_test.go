package chronon

import (
	"testing"
	"testing/quick"
)

func TestEpoch(t *testing.T) {
	if got := FromDate(1970, 1, 1); got != 0 {
		t.Fatalf("FromDate(1970,1,1) = %d, want 0", got)
	}
	y, m, d := Instant(0).Date()
	if y != 1970 || m != 1 || d != 1 {
		t.Fatalf("Instant(0).Date() = %d-%d-%d, want 1970-1-1", y, m, d)
	}
}

func TestDateRoundTrip(t *testing.T) {
	cases := []struct{ y, m, d int }{
		{1997, 3, 1}, {1997, 9, 30}, {2000, 2, 29}, {1900, 2, 28},
		{1995, 12, 10}, {1, 1, 1}, {9999, 12, 31}, {1969, 12, 31},
	}
	for _, c := range cases {
		inst := FromDate(c.y, c.m, c.d)
		y, m, d := inst.Date()
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("round trip %v: got %d-%d-%d", c, y, m, d)
		}
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		inst := Instant(n)
		y, m, d := inst.Date()
		return FromDate(y, m, d) == inst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsecutiveDays(t *testing.T) {
	// Day arithmetic must match calendar succession across month and year
	// boundaries, including a leap day.
	prev := FromDate(1999, 12, 28)
	for i := 0; i < 800; i++ {
		next := prev + 1
		py, pm, pd := prev.Date()
		ny, nm, nd := next.Date()
		if nd == pd+1 && nm == pm && ny == py {
			prev = next
			continue
		}
		if nd == 1 && (nm == pm+1 && ny == py || nm == 1 && pm == 12 && ny == py+1) {
			prev = next
			continue
		}
		t.Fatalf("day %v followed by %v", prev, next)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Instant
	}{
		{"UC", UC},
		{"now", NOW},
		{"Forever", Forever},
		{"3/97", FromDate(1997, 3, 1)},
		{"12/1997", FromDate(1997, 12, 1)},
		{"12/10/95", FromDate(1995, 12, 10)},
		{"1/31/1998", FromDate(1998, 1, 31)},
		{"1997-05-14", FromDate(1997, 5, 14)},
		{"2069-01-01", FromDate(2069, 1, 1)},
		{" 9/97 ", FromDate(1997, 9, 1)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "hello", "13/97", "2/30/1999", "1997-13-01", "1997-02-30",
		"1/2/3/4", "x/97", "3/x", "1997-0a-01", "0/97",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, inst := range []Instant{UC, NOW, Forever, 0, FromDate(1997, 9, 1), FromDate(1995, 12, 10)} {
		got, err := Parse(inst.String())
		if err != nil {
			t.Fatalf("Parse(String(%v)): %v", int64(inst), err)
		}
		if got != inst {
			t.Errorf("round trip %v -> %q -> %v", int64(inst), inst.String(), int64(got))
		}
	}
}

func TestVariables(t *testing.T) {
	if !UC.IsVariable() || !NOW.IsVariable() {
		t.Error("UC and NOW must be variables")
	}
	if Forever.IsVariable() {
		t.Error("Forever is a ground value, not a variable")
	}
	if UC.IsGround() || NOW.IsGround() {
		t.Error("variables are not ground")
	}
	if !Instant(123).IsGround() {
		t.Error("ordinary instants are ground")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(MustParse("9/97"))
	if c.Now() != FromDate(1997, 9, 1) {
		t.Fatalf("clock start = %v", c.Now())
	}
	got := c.Advance(30)
	if got != FromDate(1997, 9, 1)+30 || c.Now() != got {
		t.Fatalf("advance: got %v, now %v", got, c.Now())
	}
	c.Set(FromDate(2000, 1, 1))
	if c.Now() != FromDate(2000, 1, 1) {
		t.Fatalf("set: now %v", c.Now())
	}
}

func TestFixedClock(t *testing.T) {
	c := Fixed(42)
	if c.Now() != 42 {
		t.Fatalf("fixed clock = %v", c.Now())
	}
}

func TestSystemClock(t *testing.T) {
	n := (SystemClock{}).Now()
	// Sanity window: between 2020 and 2100.
	if n < FromDate(2020, 1, 1) || n > FromDate(2100, 1, 1) {
		t.Fatalf("system clock out of sanity window: %v", n)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Max(3, 5) != 5 {
		t.Fatal("Min/Max on ground values")
	}
	if Max(5, UC) != UC || Min(NOW, UC) != NOW {
		t.Fatal("sentinel ordering: UC > NOW > Forever > ground")
	}
	if Max(Forever, NOW) != NOW {
		t.Fatal("NOW sentinel must exceed Forever")
	}
}
