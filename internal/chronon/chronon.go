// Package chronon provides the time-line primitives used throughout the
// GR-tree DataBlade reproduction: a discrete, day-granularity instant type,
// the special temporal variables UC ("until changed") and NOW, and a
// controllable clock.
//
// The paper's prototype chose a granularity of a day (Section 5.1); a chronon
// here is therefore one day, represented as the number of days since the civil
// epoch 1970-01-01 (negative values reach arbitrarily far into the past).
package chronon

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Instant is one point on the discrete time line, measured in days since
// 1970-01-01, or one of the special variables UC, NOW, and Forever.
type Instant int64

const (
	// Forever is the maximum ground timestamp ("maximum-timestamp"
	// substitution baselines map UC/NOW to it). It is a ground value.
	Forever Instant = math.MaxInt64 - 2

	// NOW is the variable denoting the current time; it is used as the
	// valid-time end of tuples whose information is valid until the current
	// time (Section 2).
	NOW Instant = math.MaxInt64 - 1

	// UC ("until changed") is the variable used as the transaction-time end
	// of tuples that are part of the current database state (Section 2).
	UC Instant = math.MaxInt64
)

// MinInstant is the smallest representable ground instant.
const MinInstant Instant = math.MinInt64 / 4

// IsVariable reports whether t is one of the temporal variables UC or NOW.
func (t Instant) IsVariable() bool { return t == UC || t == NOW }

// IsGround reports whether t is a fixed (ground) timestamp.
func (t Instant) IsGround() bool { return !t.IsVariable() }

// Date returns the civil calendar date of a ground instant.
func (t Instant) Date() (year, month, day int) {
	if t.IsVariable() || t == Forever {
		return 0, 0, 0
	}
	return civilFromDays(int64(t))
}

// FromDate returns the instant for a civil calendar date.
func FromDate(year, month, day int) Instant {
	return Instant(daysFromCivil(year, month, day))
}

// String renders an instant: variables render symbolically, Forever as
// "FOREVER", and ground values as ISO dates (yyyy-mm-dd).
func (t Instant) String() string {
	switch t {
	case UC:
		return "UC"
	case NOW:
		return "NOW"
	case Forever:
		return "FOREVER"
	}
	y, m, d := t.Date()
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// Parse accepts the textual timestamp forms used in the paper and in SQL:
//
//	"UC", "NOW", "FOREVER"            temporal variables / max timestamp
//	"3/97", "12/1997"                 month granularity (first day of month)
//	"12/10/95", "1/31/1998"           US-style month/day/year
//	"1997-05-14"                      ISO date
//
// Two-digit years are interpreted in 1970–2069 (>=70 → 19yy, else 20yy).
func Parse(s string) (Instant, error) {
	s = strings.TrimSpace(s)
	switch strings.ToUpper(s) {
	case "UC":
		return UC, nil
	case "NOW":
		return NOW, nil
	case "FOREVER":
		return Forever, nil
	}
	if strings.Contains(s, "-") {
		parts := strings.Split(s, "-")
		if len(parts) != 3 {
			return 0, fmt.Errorf("chronon: malformed ISO date %q", s)
		}
		y, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		d, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return 0, fmt.Errorf("chronon: malformed ISO date %q", s)
		}
		if err := checkDate(y, m, d); err != nil {
			return 0, fmt.Errorf("chronon: %q: %w", s, err)
		}
		return FromDate(y, m, d), nil
	}
	if strings.Contains(s, "/") {
		parts := strings.Split(s, "/")
		switch len(parts) {
		case 2: // month/year, first day of month
			m, err1 := strconv.Atoi(parts[0])
			y, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return 0, fmt.Errorf("chronon: malformed month/year %q", s)
			}
			y = expandYear(y, len(parts[1]))
			if err := checkDate(y, m, 1); err != nil {
				return 0, fmt.Errorf("chronon: %q: %w", s, err)
			}
			return FromDate(y, m, 1), nil
		case 3: // month/day/year
			m, err1 := strconv.Atoi(parts[0])
			d, err2 := strconv.Atoi(parts[1])
			y, err3 := strconv.Atoi(parts[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return 0, fmt.Errorf("chronon: malformed date %q", s)
			}
			y = expandYear(y, len(parts[2]))
			if err := checkDate(y, m, d); err != nil {
				return 0, fmt.Errorf("chronon: %q: %w", s, err)
			}
			return FromDate(y, m, d), nil
		}
		return 0, fmt.Errorf("chronon: malformed date %q", s)
	}
	return 0, fmt.Errorf("chronon: unrecognized timestamp %q", s)
}

// MustParse is Parse that panics on error; it is intended for tests and
// example programs with literal timestamps.
func MustParse(s string) Instant {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

func expandYear(y, digits int) int {
	if digits > 2 {
		return y
	}
	if y >= 70 {
		return 1900 + y
	}
	return 2000 + y
}

func checkDate(y, m, d int) error {
	if m < 1 || m > 12 {
		return fmt.Errorf("month %d out of range", m)
	}
	if d < 1 || d > daysInMonth(y, m) {
		return fmt.Errorf("day %d out of range for %04d-%02d", d, y, m)
	}
	return nil
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(y) {
			return 29
		}
		return 28
	}
}

// daysFromCivil converts a proleptic-Gregorian civil date to days since
// 1970-01-01 (Howard Hinnant's algorithm).
func daysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// civilFromDays is the inverse of daysFromCivil.
func civilFromDays(z int64) (year, month, day int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400                                     //
	doy := doe - (365*yoe + yoe/4 - yoe/100)               // [0, 365]
	mp := (5*doy + 2) / 153                                // [0, 11]
	d := doy - (153*mp+2)/5 + 1                            // [1, 31]
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}

// Min returns the smaller of two instants under the ground ordering
// (variables compare as their sentinel magnitudes, i.e., larger than any
// ground value; callers that need current-time semantics must resolve first).
func Min(a, b Instant) Instant {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two instants under the ground ordering.
func Max(a, b Instant) Instant {
	if a > b {
		return a
	}
	return b
}
