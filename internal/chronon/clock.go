package chronon

import (
	"sync"
	"time"
)

// Clock supplies the current time used to resolve the variables UC and NOW.
// The GR-tree algorithms never read the wall clock directly; they go through
// a Clock so tests and benchmarks can advance time deterministically and
// observe now-relative regions grow (Section 2).
type Clock interface {
	// Now returns the current instant. It is always a ground value.
	Now() Instant
}

// VirtualClock is a manually driven clock. The zero value reads as day 0
// (1970-01-01); use Set or Advance to move it. It is safe for concurrent use.
type VirtualClock struct {
	mu  sync.RWMutex
	now Instant
}

// NewVirtualClock returns a virtual clock set to the given instant.
func NewVirtualClock(now Instant) *VirtualClock {
	return &VirtualClock{now: now}
}

// Now returns the clock's current instant.
func (c *VirtualClock) Now() Instant {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Set moves the clock to t. Moving a clock backwards is permitted (tests use
// it), but a database would never do so.
func (c *VirtualClock) Set(t Instant) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// Advance moves the clock forward by n days and returns the new instant.
func (c *VirtualClock) Advance(n int64) Instant {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += Instant(n)
	return c.now
}

// SystemClock reads the host's wall clock at day granularity (UTC).
type SystemClock struct{}

// Now returns the current UTC day.
func (SystemClock) Now() Instant {
	t := time.Now().UTC()
	return FromDate(t.Year(), int(t.Month()), t.Day())
}

// Fixed returns a Clock permanently stuck at t, useful for resolving regions
// "as of" a point in time.
func Fixed(t Instant) Clock { return fixedClock(t) }

type fixedClock Instant

func (c fixedClock) Now() Instant { return Instant(c) }
