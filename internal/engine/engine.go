// Package engine is the server: it wires the substrates together — system
// catalogs, heap tables, sbspaces, the write-ahead log, the lock manager,
// the DataBlade API contexts, UDR libraries, and the access-method framework
// — and executes SQL through them. It stands in for the Informix Dynamic
// Server that the paper's DataBlade plugs into; the extension surface
// (CREATE FUNCTION / SECONDARY ACCESS_METHOD / OPCLASS / INDEX, purpose-
// function dispatch, qualification descriptors) follows Section 4.
package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/mi"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/sbspace"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// Options configures an engine.
type Options struct {
	// Dir is the database directory; empty means fully in-memory storage
	// (with the WAL in a temporary file so rollback still works).
	Dir string
	// Clock supplies the current time (defaults to a virtual clock at the
	// host's current day).
	Clock chronon.Clock
	// PoolPages is the per-table / per-space buffer-pool capacity in pages
	// (default 256).
	PoolPages int
	// ScanBatchSize is the number of rows the executor pulls per batch —
	// the am_getmulti capacity it proposes to access methods and the heap
	// scanner's unit (default am.DefaultBatchCap). 1 degenerates to
	// row-at-a-time pulls (benchmark ablations).
	ScanBatchSize int
	// NoWAL disables logging (benchmark configurations; rollback and crash
	// recovery are then unavailable).
	NoWAL bool
	// CheckpointInterval is how often the background checkpointer wakes to
	// decide whether to checkpoint (default 250ms; negative disables the
	// daemon — tests drive Checkpoint explicitly).
	CheckpointInterval time.Duration
	// CheckpointThreshold is the log growth (bytes appended since the last
	// checkpoint) that triggers a checkpoint at the next wakeup (default
	// 1 MiB).
	CheckpointThreshold int64
	// VacuumInterval is how often the background version vacuum wakes to
	// reclaim tuple versions no live snapshot can see (default 1s; negative
	// disables the daemon — tests drive VacuumNow explicitly).
	VacuumInterval time.Duration
	// Types, when set, is called with the fresh type registry before the
	// catalogued storage opens — blades register their opaque types here so
	// tables with opaque columns can be re-opened from the catalog.
	Types func(*types.Registry) error
	// TraceWriter receives mi trace output (SET TRACE; Section 6.4). Nil
	// discards traces.
	TraceWriter io.Writer
	// PlanCacheSize bounds the shared plan cache (entries; default
	// plancache.DefaultCap). The cache is engine-wide: prepared statements
	// and auto-parameterized ad-hoc statements from every session share it.
	PlanCacheSize int
}

// Engine is one database instance.
type Engine struct {
	opts  Options
	mem   bool
	clock chronon.Clock

	cat  *catalog.Catalog
	reg  *types.Registry
	lm   *lock.Manager
	log  *wal.Log
	tmpd string // temp dir holding the WAL for memory engines

	// obs is the engine-wide metrics registry; every subsystem counter
	// (bufferpool.*, wal.*, lock.*, sbspace.*, am.*) lives here and SYSPROFILE
	// serves it. amCounters maps purpose-function slot names to their
	// registry counters; read-only after Open.
	obs        *obs.Registry
	amCounters map[string]*obs.Counter
	bpObs      storage.ObsCounters
	parObs     parallelObs
	tracer     *mi.Tracer

	// planCache is the engine-wide shared plan cache, keyed by normalized
	// (deparsed, $n-parameterized) SQL text and stamped with the catalog
	// generation that planned each entry. sqlParses/sqlParseNs count parser
	// invocations and time; planNs counts planning time (fresh and cached
	// bind alike) — the P13 benchmark reads planning cost per statement from
	// these.
	planCache  *plancache.Cache
	sqlParses  *obs.Counter
	sqlParseNs *obs.Counter
	planNs     *obs.Counter

	// Statistics and aggregate-pushdown counters: statsHits/statsStale
	// count fresh plans costed from SYSSTATS (age zero vs aged by later
	// DDL); aggPushed/aggFallback count aggregate queries answered from
	// index internal nodes (am_aggregate) vs drained tuple by tuple.
	statsHits, statsStale  *obs.Counter
	aggPushed, aggFallback *obs.Counter

	// Checkpointer state: cpMu serialises checkpoints (daemon, Close, and
	// explicit calls), cpLast is the log size at the last checkpoint (the
	// threshold baseline), walCheckpoints/commitLat feed SYSPROFILE.
	cpMu           sync.Mutex
	cpLast         atomic.Int64
	cpQuit         chan struct{}
	cpDone         chan struct{}
	cpStop         sync.Once
	walCheckpoints *obs.Counter
	commitLat      *obs.Histogram
	closed         atomic.Bool

	mu          sync.Mutex
	spaces      map[string]*sbspace.Space // by lower name
	spacePools  map[uint32]*storage.BufferPool
	tables      map[string]*heap.Table // by lower name
	libs        map[string]am.Library
	amCache     map[string]*am.PurposeSet
	nextSession uint64

	// MVCC state (see snapshot.go). mvccMu orders transaction-id
	// allocation (nextTx), the active set, snapshot capture/release, and
	// the vacuum horizon read against commit-time deactivation; mvccClock
	// is the logical commit clock for NoWAL engines. nextTx is seeded from
	// the WAL's logical size at Open so restarted engines never reuse a
	// stamped transaction id (every transaction appends more than one log
	// byte; a NoWAL engine over persistent files has no such guard and is
	// not restart-safe — it was never crash-safe to begin with).
	mvccMu      sync.Mutex
	nextTx      uint64
	mvccActive  map[uint64]struct{}
	mvccSnaps   map[uint64]*heap.Snapshot // registered snapshot id -> read view
	mvccSnapSeq uint64
	mvccClock   atomic.Uint64
	mvccCreated, mvccSkipped, mvccVacuumed *obs.Counter

	// Version-vacuum daemon state (mirrors the checkpointer's).
	vacQuit chan struct{}
	vacDone chan struct{}
	vacStop sync.Once

	// Online index builds (see idxbuild.go): the registry writer statements
	// consult (after their table X lock) to capture side-log ops, the
	// idxbuild.* observability counters, and the test-only crash hook
	// invoked at the build's named stages.
	buildsMu     sync.Mutex
	builds       []*indexBuild
	idxRowsBulk  *obs.Counter
	idxReplayed  *obs.Counter
	idxPublishNs *obs.Counter
	buildHook    func(stage string) error

	traceOn     atomic.Bool
	traceMu     sync.Mutex
	traceEvents []string
}

// Open opens (or creates) a database, running crash recovery when a log is
// present.
func Open(opts Options) (*Engine, error) {
	if opts.Clock == nil {
		opts.Clock = chronon.NewVirtualClock(chronon.SystemClock{}.Now())
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 256
	}
	if opts.ScanBatchSize <= 0 {
		opts.ScanBatchSize = am.DefaultBatchCap
	}
	if opts.CheckpointInterval == 0 {
		opts.CheckpointInterval = 250 * time.Millisecond
	}
	if opts.CheckpointThreshold <= 0 {
		opts.CheckpointThreshold = 1 << 20
	}
	if opts.VacuumInterval == 0 {
		opts.VacuumInterval = time.Second
	}
	e := &Engine{
		opts:       opts,
		mem:        opts.Dir == "",
		clock:      opts.Clock,
		reg:        types.NewRegistry(),
		lm:         lock.New(),
		obs:        obs.NewRegistry(),
		spaces:     make(map[string]*sbspace.Space),
		spacePools: make(map[uint32]*storage.BufferPool),
		tables:     make(map[string]*heap.Table),
		libs:       make(map[string]am.Library),
		amCache:    make(map[string]*am.PurposeSet),
		mvccActive: make(map[uint64]struct{}),
		mvccSnaps:  make(map[uint64]*heap.Snapshot),
	}
	tw := opts.TraceWriter
	if tw == nil {
		tw = io.Discard
	}
	e.tracer = mi.NewTracer(tw)
	e.registerCoreCounters()
	if opts.Types != nil {
		if err := opts.Types(e.reg); err != nil {
			return nil, err
		}
	}
	var err error
	e.cat, err = catalog.Load(opts.Dir)
	if err != nil {
		return nil, err
	}
	// A crashed online build leaves its index in the BUILDING state; purge
	// it (and its AM records) before anything can see it. The storage the
	// build wrote is uncommitted — recovery below rolls it back.
	if err := e.purgeBuildingIndexes(); err != nil {
		return nil, err
	}
	if !opts.NoWAL {
		logDir := opts.Dir
		if e.mem {
			logDir, err = os.MkdirTemp("", "tinyblade-wal-*")
			if err != nil {
				return nil, err
			}
			e.tmpd = logDir
		}
		e.log, err = wal.Open(filepath.Join(logDir, "wal.log"))
		if err != nil {
			return nil, err
		}
		e.log.SetObs(wal.Obs{
			Appends:        e.obs.Counter("wal.appends"),
			Flushes:        e.obs.Counter("wal.flushes"),
			Bytes:          e.obs.Counter("wal.bytes"),
			TruncatedBytes: e.obs.Counter("wal.truncated_bytes"),
			GroupSize:      e.obs.Histogram("wal.group_size"),
		})
	}
	if err := e.openStorage(); err != nil {
		return nil, err
	}
	if e.log != nil && !e.mem {
		stores := make(wal.MapSpaces)
		e.mu.Lock()
		for id, bp := range e.spacePools {
			stores[id] = bufStore{bp}
		}
		e.mu.Unlock()
		if _, err := wal.Recover(e.log, stores); err != nil {
			return nil, fmt.Errorf("engine: recovery: %w", err)
		}
	}
	if e.log != nil {
		e.cpLast.Store(e.log.Size())
		e.startCheckpointer()
		// Seed the transaction-id space above every id a previous
		// incarnation can have stamped into version headers: each
		// transaction appends at least one multi-byte record, so the old
		// maximum id is strictly below the log's logical size.
		e.nextTx = uint64(e.log.Size())
	}
	e.startVacuum()
	return e, nil
}

// registerCoreCounters pre-registers every engine counter so SYSPROFILE
// always shows the full set (zeros included, onstat-style), and wires the
// subsystems that exist from construction. All buffer pools share one
// engine-wide counter set; SYSPTPROF covers the per-partition split.
func (e *Engine) registerCoreCounters() {
	e.bpObs = storage.ObsCounters{
		Fetches:   e.obs.Counter("bufferpool.fetches"),
		Hits:      e.obs.Counter("bufferpool.hits"),
		Reads:     e.obs.Counter("bufferpool.reads"),
		Writes:    e.obs.Counter("bufferpool.writes"),
		Evictions: e.obs.Counter("bufferpool.evictions"),
	}
	e.lm.SetObs(e.obs.Counter("lock.acquires"), e.obs.Counter("lock.waits"), e.obs.Counter("lock.deadlocks"))
	for _, n := range []string{"wal.appends", "wal.flushes", "wal.bytes",
		"wal.checkpoints", "wal.truncated_bytes",
		"sbspace.lo_creates", "sbspace.lo_opens", "sbspace.lo_closes", "sbspace.lo_drops"} {
		e.obs.Counter(n)
	}
	e.walCheckpoints = e.obs.Counter("wal.checkpoints")
	e.commitLat = e.obs.Histogram("wal.commit_latency")
	e.obs.Histogram("wal.group_size")
	e.mvccCreated = e.obs.Counter("mvcc.versions_created")
	e.mvccSkipped = e.obs.Counter("mvcc.versions_skipped")
	e.mvccVacuumed = e.obs.Counter("mvcc.vacuumed")
	e.idxRowsBulk = e.obs.Counter("idxbuild.rows_bulk")
	e.idxReplayed = e.obs.Counter("idxbuild.sidelog_replayed")
	e.idxPublishNs = e.obs.Counter("idxbuild.publish_latch_ns")
	e.amCounters = make(map[string]*obs.Counter, len(am.PurposeSlots))
	for _, slot := range am.PurposeSlots {
		e.amCounters[slot] = e.obs.Counter("am." + slot)
	}
	e.parObs = parallelObs{
		Scans:      e.obs.Counter("parallel.scans"),
		Workers:    e.obs.Counter("parallel.workers"),
		Batches:    e.obs.Counter("parallel.batches"),
		Rows:       e.obs.Counter("parallel.rows"),
		BusyNs:     e.obs.Counter("parallel.busy_ns"),
		SendWaitNs: e.obs.Counter("parallel.send_wait_ns"),
	}
	e.sqlParses = e.obs.Counter("sql.parses")
	e.sqlParseNs = e.obs.Counter("sql.parse_ns")
	e.planNs = e.obs.Counter("sql.plan_ns")
	e.planCache = plancache.New(e.opts.PlanCacheSize, plancache.Stats{
		Hit:        e.obs.Counter("plan_cache.hits").Inc,
		Miss:       e.obs.Counter("plan_cache.misses").Inc,
		Invalidate: e.obs.Counter("plan_cache.invalidations").Inc,
	})
	e.statsHits = e.obs.Counter("planner.stats_hits")
	e.statsStale = e.obs.Counter("planner.stats_stale")
	e.aggPushed = e.obs.Counter("agg.pushed")
	e.aggFallback = e.obs.Counter("agg.fallback")
}

// Obs exposes the engine-wide metrics registry (SYSPROFILE's source;
// benchmarks take Snapshot deltas across workload phases).
func (e *Engine) Obs() *obs.Registry { return e.obs }

// openStorage attaches pagers for every catalogued table and sbspace.
func (e *Engine) openStorage() error {
	for _, tb := range e.cat.Tables {
		if err := e.attachTable(tb, false); err != nil {
			return err
		}
	}
	for _, sp := range e.cat.Sbspaces {
		if err := e.attachSbspace(sp, false); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) newPool(name string, create bool) (*storage.BufferPool, error) {
	var pager storage.Pager
	if e.mem {
		pager = storage.NewMemPager()
	} else {
		p, err := storage.OpenFilePager(filepath.Join(e.opts.Dir, name+".dat"))
		if err != nil {
			return nil, err
		}
		pager = p
	}
	bp := storage.NewBufferPool(pager, e.opts.PoolPages)
	bp.SetObs(e.bpObs)
	if e.log != nil {
		bp.FlushHook = func(storage.PageID, []byte) error { return e.log.Flush() }
	}
	_ = create
	return bp, nil
}

func (e *Engine) attachTable(tb *catalog.Table, create bool) error {
	bp, err := e.newPool("table_"+strings.ToLower(tb.Name), create)
	if err != nil {
		return err
	}
	schema, err := e.tableSchema(tb)
	if err != nil {
		return err
	}
	var j heap.Journal
	if e.log != nil {
		j = engineJournal{e}
	}
	var t *heap.Table
	if create {
		t, err = heap.Create(tb.Name, tb.SpaceID, bp, schema, j)
	} else {
		t, err = heap.Open(tb.Name, tb.SpaceID, bp, schema, j)
	}
	if err != nil {
		return err
	}
	t.SetObs(heap.Obs{
		VersionsCreated: e.mvccCreated,
		VersionsSkipped: e.mvccSkipped,
		Vacuumed:        e.mvccVacuumed,
	})
	t.SetTxLive(e.txLive)
	e.mu.Lock()
	e.tables[strings.ToLower(tb.Name)] = t
	e.spacePools[tb.SpaceID] = bp
	e.mu.Unlock()
	return nil
}

func (e *Engine) attachSbspace(sp *catalog.Sbspace, create bool) error {
	bp, err := e.newPool("sbspace_"+strings.ToLower(sp.Name), create)
	if err != nil {
		return err
	}
	s := sbspace.New(sp.ID, sp.Name, bp, e.lm)
	s.SetObs(sbspace.ObsCounters{
		Creates: e.obs.Counter("sbspace.lo_creates"),
		Opens:   e.obs.Counter("sbspace.lo_opens"),
		Closes:  e.obs.Counter("sbspace.lo_closes"),
		Drops:   e.obs.Counter("sbspace.lo_drops"),
	})
	if e.log != nil {
		s.SetJournal(engineJournal{e})
	}
	e.mu.Lock()
	e.spaces[strings.ToLower(sp.Name)] = s
	e.spacePools[sp.ID] = bp
	e.mu.Unlock()
	return nil
}

// tableSchema resolves a catalog table's column types. Opaque column types
// must already be registered (blades register types before their
// registration scripts run).
func (e *Engine) tableSchema(tb *catalog.Table) ([]types.Type, error) {
	schema := make([]types.Type, len(tb.Columns))
	for i, c := range tb.Columns {
		ty, err := e.reg.TypeByName(c.TypeName)
		if err != nil {
			return nil, fmt.Errorf("engine: table %s column %s: %w", tb.Name, c.Name, err)
		}
		schema[i] = ty
	}
	return schema, nil
}

// Close stops the background checkpointer and WAL flusher, takes a final
// checkpoint (truncating the log to near-empty so the next Open scans
// almost nothing), and flushes and closes all storage. Idempotent.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.stopVacuum()
	e.stopCheckpointer()
	var first error
	if e.log != nil {
		if err := e.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	e.mu.Lock()
	pools := make([]*storage.BufferPool, 0, len(e.spacePools))
	for _, bp := range e.spacePools {
		pools = append(pools, bp)
	}
	e.mu.Unlock()
	for _, bp := range pools {
		if err := bp.Close(); err != nil && first == nil {
			first = err
		}
	}
	if e.log != nil {
		if err := e.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := e.cat.Save(); err != nil && first == nil {
		first = err
	}
	if e.tmpd != "" {
		os.RemoveAll(e.tmpd)
	}
	return first
}

// CrashForTesting simulates a crash: every buffer pool is flushed (so dirty
// pages of possibly-uncommitted transactions reach the pagers, the worst
// case for recovery), the log and catalog are made durable, and the engine
// is abandoned WITHOUT transaction cleanup. The background daemons are
// stopped so the abandoned engine does not keep flushing (or leak
// goroutines), but no checkpoint is taken and no session state is cleaned
// up. Only tests call this.
func (e *Engine) CrashForTesting() {
	e.closed.Store(true) // a later Close must not checkpoint the "dead" engine
	e.stopVacuum()
	e.stopCheckpointer()
	e.mu.Lock()
	for _, bp := range e.spacePools {
		bp.FlushAll()
	}
	e.mu.Unlock()
	if e.log != nil {
		e.log.Flush()
		e.log.Close()
	}
	e.cat.Save()
}

// Clock returns the engine clock.
func (e *Engine) Clock() chronon.Clock { return e.clock }

// Types returns the type registry (blades register opaque types here).
func (e *Engine) Types() *types.Registry { return e.reg }

// Catalog exposes the system catalog (tools and tests).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// LockManager exposes the lock manager (tests).
func (e *Engine) LockManager() *lock.Manager { return e.lm }

// LoadLibrary registers a "shared library" under the path used by CREATE
// FUNCTION ... EXTERNAL NAME 'path(symbol)'.
func (e *Engine) LoadLibrary(path string, lib am.Library) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.libs[path] = lib
}

// Space resolves an sbspace by name.
func (e *Engine) Space(name string) (*sbspace.Space, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.spaces[strings.ToLower(name)]
	if !ok {
		return nil, errf(CodeUndefinedObject, "no sbspace %q", name)
	}
	return s, nil
}

// Table resolves a heap table by name.
func (e *Engine) Table(name string) (*heap.Table, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, errf(CodeUndefinedTable, "no table %q", name)
	}
	return t, nil
}

// resolveSymbol maps a registered SQL function name to its Go symbol via
// SYSPROCEDURES and the loaded libraries.
func (e *Engine) resolveSymbol(fname string) (any, error) {
	p, err := e.cat.ProcByName(fname)
	if err != nil {
		return nil, err
	}
	libName, symbol, err := p.ParseExternal()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	lib, ok := e.libs[libName]
	e.mu.Unlock()
	if !ok {
		return nil, errf(CodeUndefinedObject, "library %q not loaded", libName)
	}
	sym, ok := lib[symbol]
	if !ok {
		return nil, errf(CodeUndefinedObject, "library %q has no symbol %q", libName, symbol)
	}
	return sym, nil
}

// purposeSet resolves (and caches) an access method's purpose functions.
func (e *Engine) purposeSet(amName string) (*am.PurposeSet, error) {
	e.mu.Lock()
	if ps, ok := e.amCache[strings.ToLower(amName)]; ok {
		e.mu.Unlock()
		return ps, nil
	}
	e.mu.Unlock()
	meta, err := e.cat.AmByName(amName)
	if err != nil {
		return nil, err
	}
	ps, err := am.Bind(meta.Slots, e.resolveSymbol)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.amCache[strings.ToLower(amName)] = ps
	e.mu.Unlock()
	return ps, nil
}

// EnableCallTrace switches purpose-function call tracing (experiment F6).
func (e *Engine) EnableCallTrace(on bool) {
	e.traceOn.Store(on)
	if on {
		e.traceMu.Lock()
		e.traceEvents = nil
		e.traceMu.Unlock()
	}
}

// TakeCallTrace returns and clears the recorded purpose-function calls.
func (e *Engine) TakeCallTrace() []string {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	out := e.traceEvents
	e.traceEvents = nil
	return out
}

func (e *Engine) traceCall(fn, index string) {
	if !e.traceOn.Load() {
		return
	}
	e.traceMu.Lock()
	e.traceEvents = append(e.traceEvents, fmt.Sprintf("%s(%s)", fn, index))
	e.traceMu.Unlock()
}

// amCall records one purpose-function dispatch three ways: the F6 call
// trace, the engine-wide am.* counters, and the running statement's profile
// slot counts. Every dispatch site funnels through here.
func (s *Session) amCall(fn, index string) {
	s.e.traceCall(fn, index)
	if c, ok := s.e.amCounters[fn]; ok {
		c.Inc()
	}
	s.ec.Slot(fn)
}

// engineJournal adapts the WAL to the heap/sbspace Journal interfaces.
type engineJournal struct{ e *Engine }

// LogUpdate implements heap.Journal and sbspace.Journal.
func (j engineJournal) LogUpdate(tx uint64, space uint32, page uint64, off uint16, before, after []byte) error {
	if j.e.log == nil || tx == 0 {
		return nil
	}
	_, err := j.e.log.Update(tx, space, page, off, before, after)
	return err
}

// bufStore adapts a buffer pool to wal.PageStore so recovery and rollback
// stay cache-coherent.
type bufStore struct{ bp *storage.BufferPool }

// ReadPage implements wal.PageStore. Frame latches keep rollback's page
// reads coherent against lock-free snapshot scans of other tables' pages
// sharing the pool machinery.
func (b bufStore) ReadPage(id uint64, buf []byte) error {
	f, err := b.bp.Fetch(storage.PageID(id))
	if err != nil {
		return err
	}
	f.RLatch()
	copy(buf, f.Data)
	f.RUnlatch()
	b.bp.Unpin(f, false)
	return nil
}

// WritePage implements wal.PageStore.
func (b bufStore) WritePage(id uint64, buf []byte) error {
	f, err := b.bp.Fetch(storage.PageID(id))
	if err != nil {
		return err
	}
	f.Latch()
	copy(f.Data, buf)
	f.Unlatch()
	b.bp.Unpin(f, true)
	return nil
}

// EnsurePages implements wal.PageStore.
func (b bufStore) EnsurePages(n uint64) error {
	return storage.WALStore{P: b.bp.Pager()}.EnsurePages(n)
}

// PageSize implements wal.PageStore.
func (b bufStore) PageSize() int { return storage.PageSize }

// mapStores snapshots the space-id → store mapping for rollback.
func (e *Engine) mapStores() wal.MapSpaces {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(wal.MapSpaces, len(e.spacePools))
	for id, bp := range e.spacePools {
		out[id] = bufStore{bp}
	}
	return out
}

// Session --------------------------------------------------------------------

// Session is one client connection. Sessions are not safe for concurrent
// use; open one per goroutine.
type Session struct {
	e   *Engine
	id  uint64
	ctx *mi.Context

	// vars is the session's SET-able state (isolation, commit mode,
	// parallel degree, trace levels) behind the uniform SessionVars API —
	// shared by the REPL, the network server, and tests.
	vars *SessionVars

	tx       uint64 // 0 = idle
	explicit bool

	// stmtCtx carries the caller's cancellation (ExecCtx) into the
	// statement currently executing.
	stmtCtx context.Context

	// stream is the in-flight ExecStream cursor, when one is open; a
	// session runs one statement at a time, so a new statement cannot start
	// until the stream is drained or closed.
	stream *Stream

	// ec is the profile of the statement currently executing (nil between
	// statements); ExecStmt installs it and hands the finished Profile to the
	// Result.
	ec *obs.ExecContext

	// MVCC read views (see snapshot.go): curSnap is statement-scoped,
	// txSnap transaction-scoped (REPEATABLE READ / SNAPSHOT); writes lists
	// the versions the open transaction created or ended, stamped with the
	// commit LSN at commitTx.
	curSnap *heldSnap
	txSnap  *heldSnap
	writes  []verStamp

	// pendingSide holds side-log entries this transaction captured for
	// in-flight online index builds: flushed to the builds' logs at commit,
	// dropped at rollback (see idxbuild.go).
	pendingSide []pendingSideOp

	// Prepared-statement state (see prepared.go): prepared is the session's
	// PREPARE registry by lower-cased name; boundArgs holds the parameter
	// values of the statement currently executing ($n evaluates to
	// boundArgs[n-1]); curPrep points at the prepared entry an EXECUTE is
	// running, so the planner can key the shared cache by its text.
	prepared  map[string]*prepared
	boundArgs []types.Datum
	curPrep   *prepared

	// fcMemos, when non-nil, caches resolved WHERE-tree call sites (UDR
	// symbol, argument types, coerced row-invariant arguments) for the
	// statement's re-filter. Owned by filterBatchIter, which installs it
	// around each batch (see iter.go and evalFuncCall).
	fcMemos map[*sql.FuncCall]*fcMemo
}

// NewSession opens a session (default isolation: Committed Read). The
// session's mi context shares the engine tracer, so SET TRACE applies to
// blade trace messages from any session.
func (e *Engine) NewSession() *Session {
	id := atomic.AddUint64(&e.nextSession, 1)
	return &Session{e: e, id: id, ctx: mi.NewContext(id, e.tracer), vars: NewSessionVars()}
}

// Tracer exposes the engine's mi tracer (SET TRACE's target).
func (e *Engine) Tracer() *mi.Tracer { return e.tracer }

// Context returns the session's DataBlade API context.
func (s *Session) Context() *mi.Context { return s.ctx }

// Vars exposes the session's SET-able state.
func (s *Session) Vars() *SessionVars { return s.vars }

// Isolation returns the session's isolation level.
func (s *Session) Isolation() lock.IsolationLevel { return s.vars.Isolation() }

// InTx reports whether an explicit transaction is open.
func (s *Session) InTx() bool { return s.tx != 0 && s.explicit }

// beginTx starts a transaction (explicit or statement-scoped).
func (s *Session) beginTx(explicit bool) error {
	if s.tx != 0 {
		if explicit {
			return errf(CodeActiveTx, "transaction already open")
		}
		return nil
	}
	s.tx = s.e.mvccBegin()
	s.explicit = explicit
	if s.e.log != nil {
		if _, err := s.e.log.Begin(s.tx); err != nil {
			return err
		}
	}
	return nil
}

// commitTx commits the current transaction: every version it created or
// ended is stamped with the commit LSN (WAL-logged page edits, appended
// before the commit record), the commit record is made durable, and only
// then is the transaction deactivated — the ordering that makes all of its
// versions turn visible atomically (snapshots captured before deactivation
// still carry it in Active and ignore the stamps).
func (s *Session) commitTx() error {
	if s.tx == 0 {
		return errf(CodeNoActiveTx, "no transaction to commit")
	}
	if len(s.writes) > 0 {
		stamp := s.e.nextStamp()
		for _, w := range s.writes {
			if err := w.table.StampVersion(s.tx, w.rid, w.kind, stamp); err != nil {
				return err // transaction stays open; the caller rolls back
			}
		}
	}
	if s.e.log != nil {
		start := time.Now()
		if _, err := s.e.log.CommitWith(s.tx, s.vars.Commit()); err != nil {
			return err
		}
		s.e.commitLat.Observe(time.Since(start))
	}
	// Every version this transaction ended is now a committed-dead cell
	// whose index entries linger until the vacuum (deferred maintenance).
	// Counted before mvccEnd so am_aggregate's gate — which admits only
	// dead-free tables — never sees a window where the transaction is gone
	// from the active set but its dead cells are not yet counted.
	for _, w := range s.writes {
		if w.kind&heap.StampEnd != 0 {
			w.table.AddDead(1)
		}
	}
	s.e.mvccEnd(s.tx)
	s.releaseTxSnap()
	// Committed: hand captured index-build side ops to their logs while the
	// table X locks are still held, so side logs receive whole transactions
	// in commit order (and a build snapshot captured under a later latch
	// already sees everything this transaction wrote).
	if len(s.pendingSide) > 0 {
		s.flushSideOps()
	}
	s.ctx.EndTransaction(mi.TxCommit)
	s.e.lm.ReleaseAll(lock.TxID(s.tx))
	s.tx = 0
	s.explicit = false
	s.writes = s.writes[:0]
	return nil
}

// rollbackTx rolls back the current transaction, restoring page state from
// the log.
func (s *Session) rollbackTx() error {
	if s.tx == 0 {
		return errf(CodeNoActiveTx, "no transaction to roll back")
	}
	var err error
	if s.e.log != nil {
		// Physical undo restores every version header and slot the
		// transaction touched byte for byte, so the chains revert without
		// MVCC-specific logic. (NoWAL engines leave the garbage versions
		// behind: never stamped, they stay invisible to committed reads
		// and the vacuum reclaims them.)
		err = wal.Rollback(s.e.log, s.e.mapStores(), s.tx)
	} else {
		// NoWAL abort: every version this transaction created is garbage —
		// still in the heap, still carrying an index entry — until the
		// vacuum reclaims both. Count it so the aggregate gate declines.
		for _, w := range s.writes {
			if w.kind&heap.StampBegin != 0 {
				w.table.AddDead(1)
			}
		}
	}
	s.e.mvccEnd(s.tx)
	s.releaseTxSnap()
	s.pendingSide = s.pendingSide[:0] // rolled back: captured side ops never happened
	s.ctx.EndTransaction(mi.TxAbort)
	s.e.lm.ReleaseAll(lock.TxID(s.tx))
	s.tx = 0
	s.explicit = false
	s.writes = s.writes[:0]
	return err
}

// Close ends the session, rolling back any open transaction.
func (s *Session) Close() {
	if s.stream != nil {
		s.stream.Close()
	}
	if s.tx != 0 {
		s.rollbackTx()
	}
	s.ctx.EndSession()
}
