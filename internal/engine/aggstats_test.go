package engine

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// UPDATE STATISTICS must retire cached plans: fresh statistics can change
// am_scancost's and the heap's cost answers, so a plan costed under the old
// numbers is stale. The generation bump that stamps the new SYSSTATS record
// is what invalidates the shared cache.
func TestUpdateStatisticsInvalidatesPlanCache(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "statmem_am", "sm", true, true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE st (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `CREATE INDEX st_ix ON st(a) USING statmem_am`)
	for i := 0; i < 8; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO st VALUES (%d, 'row%d')`, i, i))
	}
	if _, err := s.Prepare("q", `SELECT b FROM st WHERE MemEq(a, $1)`); err != nil {
		t.Fatal(err)
	}
	run := func(k int64) {
		t.Helper()
		res, err := s.ExecutePrepared(nil, "q", []types.Datum{k})
		if err != nil {
			t.Fatalf("execute(%d): %v", k, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("row%d", k) {
			t.Fatalf("execute(%d): %v", k, res.Rows)
		}
	}
	run(1) // populate the cache
	run(2) // hit

	inval := e.Obs().Counter("plan_cache.invalidations").Load()
	exec(t, s, `UPDATE STATISTICS FOR TABLE st`)
	run(3) // the stale plan must be evicted and replanned, not reused
	if e.Obs().Counter("plan_cache.invalidations").Load() == inval {
		t.Fatal("UPDATE STATISTICS retired no cached plan")
	}

	// The FOR INDEX inspection form needs am_stats; the test AM binds none
	// and must be refused with the feature error, not a crash.
	if _, err := s.Exec(`UPDATE STATISTICS FOR INDEX st_ix`); ErrorCode(err) != CodeFeature {
		t.Fatalf("FOR INDEX over a statless AM: %v, want %s", err, CodeFeature)
	}
}

// An access method that binds no am_aggregate (here: the in-memory test AM)
// declines by omission: prepared aggregate EXECUTEs drain tuples, the
// agg.fallback counter says so, and the answer matches the visible rows.
func TestPreparedAggregateFallbackWithoutSlot(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "aggmem_am", "ag", true, true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE at (a INTEGER)`)
	exec(t, s, `CREATE INDEX at_ix ON at(a) USING aggmem_am`)
	for i := 0; i < 10; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO at VALUES (%d)`, i%3))
	}
	if _, err := s.Prepare("c", `SELECT COUNT(*) FROM at WHERE MemEq(a, $1)`); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ { // fresh plan, then cached plan
		fallback := e.Obs().Counter("agg.fallback").Load()
		aggCalls := e.Obs().Counter("am.am_aggregate").Load()
		res, err := s.ExecutePrepared(nil, "c", []types.Datum{int64(1)})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0]; got != int64(3) {
			t.Fatalf("run %d: COUNT(*) = %v, want 3", run, got)
		}
		if e.Obs().Counter("agg.fallback").Load() == fallback {
			t.Fatalf("run %d: slotless AM did not advance agg.fallback", run)
		}
		if e.Obs().Counter("am.am_aggregate").Load() != aggCalls {
			t.Fatalf("run %d: am_aggregate was called on an AM that binds none", run)
		}
	}
}

// The drain's SQL aggregate semantics, with no index involved at all: an
// empty input yields COUNT 0 and MIN/MAX NULL, and NULLs never count toward
// COUNT(col) nor participate in MIN/MAX.
func TestAggregateDrainSemantics(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE d (a INTEGER)`)

	if got := exec(t, s, `SELECT COUNT(*) FROM d`).Rows[0][0]; got != int64(0) {
		t.Fatalf("COUNT(*) over empty table: %v", got)
	}
	if got := exec(t, s, `SELECT MIN(a) FROM d`).Rows[0][0]; got != nil {
		t.Fatalf("MIN over empty table: %v, want NULL", got)
	}

	for _, v := range []string{"3", "NULL", "1", "NULL", "2"} {
		exec(t, s, `INSERT INTO d VALUES (`+v+`)`)
	}
	for q, want := range map[string]any{
		`SELECT COUNT(*) FROM d`: int64(5),
		`SELECT COUNT(a) FROM d`: int64(3),
		`SELECT MIN(a) FROM d`:   int64(1),
		`SELECT MAX(a) FROM d`:   int64(3),
	} {
		if got := exec(t, s, q).Rows[0][0]; got != want {
			t.Fatalf("%s = %v, want %v", q, got, want)
		}
	}
}
