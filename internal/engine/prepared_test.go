package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/types"
)

// The SQL surface: PREPARE registers, EXECUTE binds and runs, DEALLOCATE
// drops — with typed errors for every misuse.
func TestPrepareExecuteDeallocateSQL(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE emp (id INTEGER, name VARCHAR(16), pay FLOAT)`)
	exec(t, s, `INSERT INTO emp VALUES (1, 'ann', 100), (2, 'bob', 200), (3, 'cid', 300)`)

	res := exec(t, s, `PREPARE byid AS SELECT name FROM emp WHERE id = $1`)
	if !strings.Contains(res.Message, "prepared") || !strings.Contains(res.Message, "1 parameter") {
		t.Fatalf("PREPARE message: %q", res.Message)
	}
	res = exec(t, s, `EXECUTE byid (2)`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "bob" {
		t.Fatalf("EXECUTE rows: %v", res.Rows)
	}
	// Re-execution with a different argument binds fresh.
	res = exec(t, s, `EXECUTE byid (3)`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "cid" {
		t.Fatalf("EXECUTE rebind: %v", res.Rows)
	}

	// `?` placeholders get ordinals left to right and behave like $n.
	exec(t, s, `PREPARE rng AS SELECT name FROM emp WHERE id >= ? AND pay <= ?`)
	res = exec(t, s, `EXECUTE rng (2, 250)`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "bob" {
		t.Fatalf("?-placeholder EXECUTE: %v", res.Rows)
	}

	// Prepared DML: INSERT, UPDATE, DELETE.
	exec(t, s, `PREPARE ins AS INSERT INTO emp VALUES ($1, $2, $3)`)
	res = exec(t, s, `EXECUTE ins (4, 'dee', 400)`)
	if res.Affected != 1 {
		t.Fatalf("prepared INSERT affected %d", res.Affected)
	}
	exec(t, s, `PREPARE raise AS UPDATE emp SET pay = $1 WHERE name = $2`)
	res = exec(t, s, `EXECUTE raise (450, 'dee')`)
	if res.Affected != 1 {
		t.Fatalf("prepared UPDATE affected %d", res.Affected)
	}
	exec(t, s, `PREPARE del AS DELETE FROM emp WHERE id = $1`)
	res = exec(t, s, `EXECUTE del (4)`)
	if res.Affected != 1 {
		t.Fatalf("prepared DELETE affected %d", res.Affected)
	}

	// Error matrix.
	for _, bad := range []struct {
		sql  string
		code string
	}{
		{`EXECUTE nosuch`, CodeUndefinedObject},
		{`EXECUTE byid`, CodeCardinality},
		{`EXECUTE byid (1, 2)`, CodeCardinality},
		{`PREPARE byid AS SELECT id FROM emp`, CodeInvalidParameter},
		{`PREPARE ddl AS CREATE TABLE x (id INTEGER)`, CodeFeature},
		{`DEALLOCATE nosuch`, CodeUndefinedObject},
	} {
		if _, err := s.Exec(bad.sql); ErrorCode(err) != bad.code {
			t.Fatalf("%s: %v, want %s", bad.sql, err, bad.code)
		}
	}

	res = exec(t, s, `DEALLOCATE byid`)
	if !strings.Contains(res.Message, "deallocated") {
		t.Fatalf("DEALLOCATE message: %q", res.Message)
	}
	if _, err := s.Exec(`EXECUTE byid (1)`); ErrorCode(err) != CodeUndefinedObject {
		t.Fatalf("EXECUTE after DEALLOCATE: %v", err)
	}

	// Prepared statements are session-local.
	s2 := e.NewSession()
	defer s2.Close()
	if _, err := s2.Exec(`EXECUTE rng (1, 2)`); ErrorCode(err) != CodeUndefinedObject {
		t.Fatalf("cross-session EXECUTE: %v", err)
	}
}

// The headline property: a cached EXECUTE calls the parser zero times and
// am_scancost zero times — the whole point of the plan cache. Counters pin
// it.
func TestExecuteZeroParseZeroScancost(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "costmem_am", "cm", true, true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE ct (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `CREATE INDEX ct_ix ON ct(a) USING costmem_am`)
	for i := 0; i < 20; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO ct VALUES (%d, 'row%d')`, i%10, i))
	}

	if n, err := s.Prepare("byA", `SELECT b FROM ct WHERE MemEq(a, $1)`); err != nil || n != 1 {
		t.Fatalf("Prepare: n=%d err=%v", n, err)
	}
	// Warm-up execution plans fresh (cache miss) — scancost runs here.
	scBefore := e.Obs().Counter("am.am_scancost").Load()
	if _, err := s.ExecutePrepared(nil, "byA", []types.Datum{int64(3)}); err != nil {
		t.Fatal(err)
	}
	if e.Obs().Counter("am.am_scancost").Load() == scBefore {
		t.Fatal("fresh plan consulted am_scancost zero times — test premise broken")
	}

	parses := e.Obs().Counter("sql.parses").Load()
	scancost := e.Obs().Counter("am.am_scancost").Load()
	hits := e.Obs().Counter("plan_cache.hits").Load()
	const n = 10
	for i := 0; i < n; i++ {
		res, err := s.ExecutePrepared(nil, "byA", []types.Datum{int64(i % 10)})
		if err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("execute key %d: %d rows, want 2", i%10, len(res.Rows))
		}
	}
	if got := e.Obs().Counter("sql.parses").Load() - parses; got != 0 {
		t.Fatalf("cached EXECUTEs parsed %d times, want 0", got)
	}
	if got := e.Obs().Counter("am.am_scancost").Load() - scancost; got != 0 {
		t.Fatalf("cached EXECUTEs called am_scancost %d times, want 0", got)
	}
	if got := e.Obs().Counter("plan_cache.hits").Load() - hits; got != n {
		t.Fatalf("plan_cache.hits advanced %d, want %d", got, n)
	}
}

// Ad-hoc statements with literal-only WHERE clauses share plans through
// auto-parameterization — and, because the cache key is the deparser's
// normal form, they share the *same* entry a prepared statement of the same
// shape uses.
func TestAutoParameterizationSharesPlans(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "apmem_am", "ap", true, true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE ap (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `CREATE INDEX ap_ix ON ap(a) USING apmem_am`)
	for i := 0; i < 10; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO ap VALUES (%d, 'row%d')`, i, i))
	}

	hits := e.Obs().Counter("plan_cache.hits").Load()
	exec(t, s, `SELECT b FROM ap WHERE MemEq(a, 1)`) // miss: populates
	for k := 2; k <= 5; k++ {
		res := exec(t, s, fmt.Sprintf(`SELECT b FROM ap WHERE MemEq(a, %d)`, k))
		if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("row%d", k) {
			t.Fatalf("key %d: %v", k, res.Rows)
		}
	}
	if got := e.Obs().Counter("plan_cache.hits").Load() - hits; got != 4 {
		t.Fatalf("auto-param hits: %d, want 4", got)
	}

	// A prepared statement of the same shape lands on the same entry: its
	// first execution is already a hit.
	if _, err := s.Prepare("ap1", `SELECT b FROM ap WHERE MemEq(a, $1)`); err != nil {
		t.Fatal(err)
	}
	hits = e.Obs().Counter("plan_cache.hits").Load()
	if _, err := s.ExecutePrepared(nil, "ap1", []types.Datum{int64(7)}); err != nil {
		t.Fatal(err)
	}
	if got := e.Obs().Counter("plan_cache.hits").Load() - hits; got != 1 {
		t.Fatalf("prepared statement missed the auto-param entry (hits %d)", got)
	}
}

// SET PLAN_CACHE OFF bypasses the cache entirely; SHOW reads the toggle
// back; SYSPROFILE serves the cache counters.
func TestPlanCacheToggleAndCounters(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE pt (id INTEGER)`)
	exec(t, s, `INSERT INTO pt VALUES (1), (2)`)

	res := exec(t, s, `SHOW PLAN_CACHE`)
	if res.Rows[0][1] != "ON" {
		t.Fatalf("default SHOW PLAN_CACHE: %v", res.Rows)
	}
	exec(t, s, `SET PLAN_CACHE OFF`)
	res = exec(t, s, `SHOW PLAN_CACHE`)
	if res.Rows[0][1] != "OFF" {
		t.Fatalf("SHOW PLAN_CACHE after OFF: %v", res.Rows)
	}

	hits := e.Obs().Counter("plan_cache.hits").Load()
	misses := e.Obs().Counter("plan_cache.misses").Load()
	for i := 0; i < 5; i++ {
		exec(t, s, `SELECT id FROM pt WHERE id = 1`)
	}
	if h, m := e.Obs().Counter("plan_cache.hits").Load()-hits, e.Obs().Counter("plan_cache.misses").Load()-misses; h != 0 || m != 0 {
		t.Fatalf("cache touched while OFF: hits+%d misses+%d", h, m)
	}

	exec(t, s, `SET PLAN_CACHE ON`)
	exec(t, s, `SELECT id FROM pt WHERE id = 1`)
	exec(t, s, `SELECT id FROM pt WHERE id = 2`)
	if got := e.Obs().Counter("plan_cache.hits").Load() - hits; got == 0 {
		t.Fatal("no cache hits after SET PLAN_CACHE ON")
	}

	// The counters surface through SYSPROFILE like any other.
	res = exec(t, s, `SELECT name, value FROM SYSPROFILE WHERE name = 'plan_cache.hits'`)
	if len(res.Rows) != 1 || res.Rows[0][1].(int64) < 1 {
		t.Fatalf("SYSPROFILE plan_cache.hits: %v", res.Rows)
	}
}

// DDL retires cached plans: after DROP INDEX an EXECUTE must not touch the
// dead index (it replans to a seqscan), and after CREATE INDEX it must pick
// the index back up. The invalidation counter records the retirements.
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "ddlmem_am", "dd", true, true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE dt (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `CREATE INDEX dt_ix ON dt(a) USING ddlmem_am`)
	for i := 0; i < 8; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO dt VALUES (%d, 'row%d')`, i, i))
	}
	if _, err := s.Prepare("q", `SELECT b FROM dt WHERE MemEq(a, $1)`); err != nil {
		t.Fatal(err)
	}
	run := func(k int64) *Result {
		t.Helper()
		res, err := s.ExecutePrepared(nil, "q", []types.Datum{k})
		if err != nil {
			t.Fatalf("execute(%d): %v", k, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("row%d", k) {
			t.Fatalf("execute(%d): %v", k, res.Rows)
		}
		return res
	}
	run(1) // populate
	run(2) // hit, via the index
	scans := e.Obs().Counter("am.am_beginscan").Load()
	run(3)
	if e.Obs().Counter("am.am_beginscan").Load() == scans {
		t.Fatal("cached plan did not scan the index — test premise broken")
	}

	inval := e.Obs().Counter("plan_cache.invalidations").Load()
	exec(t, s, `DROP INDEX dt_ix`)
	scans = e.Obs().Counter("am.am_beginscan").Load()
	run(4) // must fall back to the heap — no index left to scan
	if got := e.Obs().Counter("am.am_beginscan").Load(); got != scans {
		t.Fatalf("EXECUTE after DROP INDEX still ran %d index scan(s)", got-scans)
	}
	if e.Obs().Counter("plan_cache.invalidations").Load() == inval {
		t.Fatal("DROP INDEX retired no cached plan")
	}

	exec(t, s, `CREATE INDEX dt_ix ON dt(a) USING ddlmem_am`)
	run(5) // replan: back on the index
	scans = e.Obs().Counter("am.am_beginscan").Load()
	run(6)
	if e.Obs().Counter("am.am_beginscan").Load() == scans {
		t.Fatal("EXECUTE after index re-creation is not using the index")
	}
}

// DDL churning concurrently with EXECUTE must never error and never lose
// rows: the generation stamp plus bind-time name resolution guarantee a
// dropped index is never scanned. Run under -race this also proves the
// cache's internal locking.
func TestPlanCacheDDLRace(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "racemem_am", "rc", true, true)
	setup := e.NewSession()
	exec(t, setup, `CREATE TABLE rt (a INTEGER, b VARCHAR(16))`)
	exec(t, setup, `CREATE INDEX rt_ix ON rt(a) USING racemem_am`)
	for i := 0; i < 8; i++ {
		exec(t, setup, fmt.Sprintf(`INSERT INTO rt VALUES (%d, 'row%d')`, i, i))
	}
	setup.Close()

	const iters = 150
	var wg sync.WaitGroup
	errs := make(chan error, 4)

	// Two executors hammering the prepared statement.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			if _, err := s.Prepare("q", `SELECT b FROM rt WHERE MemEq(a, $1)`); err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				k := int64(i % 8)
				res, err := s.ExecutePrepared(nil, "q", []types.Datum{k})
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("row%d", k) {
					errs <- fmt.Errorf("worker %d iter %d: rows %v", w, i, res.Rows)
					return
				}
			}
		}(w)
	}
	// One DDL churner dropping and re-creating the index.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := e.NewSession()
		defer s.Close()
		for i := 0; i < 30; i++ {
			if _, err := s.Exec(`DROP INDEX rt_ix`); err != nil {
				errs <- fmt.Errorf("drop %d: %w", i, err)
				return
			}
			if _, err := s.Exec(`CREATE INDEX rt_ix ON rt(a) USING racemem_am`); err != nil {
				errs <- fmt.Errorf("create %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if e.Obs().Counter("plan_cache.invalidations").Load() == 0 {
		t.Error("the churn invalidated nothing — the race never happened")
	}
}

// EXPLAIN distinguishes a fresh plan from a shared-cache one, and EXPLAIN
// EXECUTE explains the prepared statement's plan with its arguments bound.
func TestExplainCachedVsFresh(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAMCosted(t, e, "exmem_am", "ex", true, true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE et (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `CREATE INDEX et_ix ON et(a) USING exmem_am`)
	exec(t, s, `INSERT INTO et VALUES (1, 'one'), (2, 'two')`)

	planOf := func(sql string) string {
		t.Helper()
		res := exec(t, s, sql)
		lines := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			lines[i] = r[0].(string)
		}
		return strings.Join(lines, "\n")
	}

	// EXPLAIN itself plans (and publishes) without executing: the first look
	// is fresh, the second finds the published entry.
	got := planOf(`EXPLAIN SELECT b FROM et WHERE MemEq(a, 1)`)
	if !strings.Contains(got, "plan:        fresh") {
		t.Fatalf("first EXPLAIN not fresh:\n%s", got)
	}
	got = planOf(`EXPLAIN SELECT b FROM et WHERE MemEq(a, 2)`)
	if !strings.Contains(got, "plan:        cached (shared plan cache)") {
		t.Fatalf("second EXPLAIN not cached:\n%s", got)
	}

	exec(t, s, `PREPARE pe AS SELECT b FROM et WHERE MemEq(a, $1)`)
	got = planOf(`EXPLAIN EXECUTE pe (1)`)
	if !strings.Contains(got, "index scan on et_ix") || !strings.Contains(got, "cached (shared plan cache)") {
		t.Fatalf("EXPLAIN EXECUTE:\n%s", got)
	}

	// With the cache off, every plan is fresh again.
	exec(t, s, `SET PLAN_CACHE OFF`)
	got = planOf(`EXPLAIN SELECT b FROM et WHERE MemEq(a, 2)`)
	if !strings.Contains(got, "plan:        fresh") {
		t.Fatalf("EXPLAIN with cache off:\n%s", got)
	}
}
