package engine

import (
	"errors"
	"fmt"

	"repro/internal/heap"
)

// Error is a typed engine error carrying an SQLSTATE-style code. The
// DataBlade API raises errors with SQLSTATEs (mi_db_error_raise); the
// engine's own errors follow the same convention so clients — cmd/tinyblade
// included — can dispatch on the class of a failure instead of matching
// message strings.
type Error struct {
	Code string // five-character SQLSTATE-style class/subclass code
	Msg  string
	Err  error // wrapped cause, if any
}

// Error implements error.
func (e *Error) Error() string { return "engine: " + e.Msg }

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// SQLSTATE-style codes used by the engine.
const (
	// CodeUndefinedTable (42P01): a named table does not exist.
	CodeUndefinedTable = "42P01"
	// CodeUndefinedObject (42704): a named index, sbspace, function, access
	// method, opclass, or column does not exist.
	CodeUndefinedObject = "42704"
	// CodeFeature (0A000): the statement asks for something the engine or
	// the access method does not support.
	CodeFeature = "0A000"
	// CodeCardinality (21S01): an INSERT/LOAD value list does not match the
	// column list.
	CodeCardinality = "21S01"
	// CodeInvalidParameter (22023): a bad parameter value (isolation level,
	// trace level, ...).
	CodeInvalidParameter = "22023"
	// CodeDatatype (42804): a value cannot be coerced to the column type.
	CodeDatatype = "42804"
	// CodeActiveTx (25001): BEGIN WORK inside an open transaction.
	CodeActiveTx = "25001"
	// CodeNoActiveTx (25P01): COMMIT/ROLLBACK with no open transaction.
	CodeNoActiveTx = "25P01"
	// CodeIOError (58030): an I/O failure reading external input.
	CodeIOError = "58030"
	// CodeSessionBusy (55006): a new statement was started while the
	// session's previous result stream is still open (one statement at a
	// time per session).
	CodeSessionBusy = "55006"
	// CodeInternal (XX000): an invariant violation (e.g. a dangling rowid
	// returned by an index).
	CodeInternal = "XX000"
)

// errf builds a typed engine error. The format string supports %w; the
// wrapped cause stays reachable through errors.Is/As.
func errf(code string, format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	return &Error{Code: code, Msg: err.Error(), Err: errors.Unwrap(err)}
}

// Errf builds a typed engine error for callers outside the package — the
// network server raises protocol-level failures under the same SQLSTATE
// convention so clients dispatch uniformly.
func Errf(code string, format string, args ...any) error {
	return errf(code, format, args...)
}

// heapErr maps heap-layer sentinels onto typed engine errors at the DML
// boundary: a rowid slot-field overflow is an engine encoding invariant
// (CodeInternal), not a user mistake. Other errors pass through unchanged.
func heapErr(err error) error {
	if errors.Is(err, heap.ErrSlotOverflow) {
		return errf(CodeInternal, "rowid slot field overflow: %w", err)
	}
	return err
}

// ErrorCode extracts the SQLSTATE-style code from err, or "" when err
// carries none.
func ErrorCode(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}
