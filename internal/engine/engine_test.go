package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/lock"
	"repro/internal/types"
)

func memEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(Options{Clock: chronon.NewVirtualClock(chronon.MustParse("9/97"))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func exec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func TestTableLifecycle(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE emp (id INTEGER, name VARCHAR(32), hired DATE, pay FLOAT, active BOOLEAN)`)
	exec(t, s, `INSERT INTO emp VALUES (1, 'ann', '1997-03-01', 100.5, true)`)
	exec(t, s, `INSERT INTO emp (name, id) VALUES ('bob', 2)`)
	res := exec(t, s, `SELECT id, name, hired, pay, active FROM emp WHERE id = 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0] != int64(1) || row[1] != "ann" || row[2] != chronon.FromDate(1997, 3, 1) ||
		row[3] != 100.5 || row[4] != true {
		t.Fatalf("row: %v", row)
	}
	// Partial insert leaves NULLs.
	res = exec(t, s, `SELECT pay FROM emp WHERE id = 2`)
	if res.Rows[0][0] != nil {
		t.Fatalf("null: %v", res.Rows[0][0])
	}
	// Comparisons, AND/OR/NOT, date-vs-string harmonisation.
	res = exec(t, s, `SELECT name FROM emp WHERE hired >= '1997-01-01' AND pay > 50`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "ann" {
		t.Fatalf("filter: %v", res.Rows)
	}
	res = exec(t, s, `SELECT name FROM emp WHERE NOT id = 1 OR pay < 0`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "bob" {
		t.Fatalf("not/or: %v", res.Rows)
	}
	// Update and delete.
	exec(t, s, `UPDATE emp SET pay = 200.0 WHERE name = 'ann'`)
	res = exec(t, s, `SELECT pay FROM emp WHERE id = 1`)
	if res.Rows[0][0] != 200.0 {
		t.Fatalf("update: %v", res.Rows[0][0])
	}
	res = exec(t, s, `DELETE FROM emp WHERE id = 2`)
	if res.Affected != 1 {
		t.Fatal("delete")
	}
	res = exec(t, s, `SELECT COUNT(*) FROM emp`)
	if res.Rows[0][0] != int64(1) {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
	exec(t, s, `DROP TABLE emp`)
	if _, err := s.Exec(`SELECT * FROM emp`); err == nil {
		t.Fatal("select from dropped table must fail")
	}
}

func TestErrors(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER)`)
	// A row must exist for per-row WHERE evaluation errors to surface.
	exec(t, s, `INSERT INTO t VALUES (42)`)
	for _, bad := range []string{
		`CREATE TABLE t (a INTEGER)`,            // duplicate
		`CREATE TABLE u (a NOSUCHTYPE)`,         // unknown type
		`INSERT INTO t VALUES (1, 2)`,           // arity
		`INSERT INTO missing VALUES (1)`,        // missing table
		`INSERT INTO t (nope) VALUES (1)`,       // missing column
		`INSERT INTO t VALUES ('not an int')`,   // coercion
		`SELECT nope FROM t`,                    // missing column
		`SELECT a FROM t WHERE a`,               // non-boolean where
		`SELECT a FROM t WHERE nosuchfn(a, 1)`,  // missing function
		`UPDATE t SET nope = 1`,                 // missing column
		`COMMIT`,                                // no tx
		`ROLLBACK`,                              // no tx
		`SET ISOLATION TO NONSENSE LEVEL HERE`,  // bad level
		`CHECK INDEX missing`,                   // missing index
		`UPDATE STATISTICS FOR INDEX missing`,   // missing index
		`DROP INDEX missing`,                    //
		`DROP TABLE missing`,                    //
		`CREATE INDEX i ON t(a)`,                // no access method
		`CREATE INDEX i ON t(a) USING nosucham`, // unknown am
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("%s: expected error", bad)
		}
	}
}

func TestExplicitTransactions(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER)`)

	exec(t, s, `BEGIN WORK`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	exec(t, s, `INSERT INTO t VALUES (2)`)
	if !s.InTx() {
		t.Fatal("must be in tx")
	}
	exec(t, s, `ROLLBACK`)
	res := exec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(0) {
		t.Fatalf("rollback left %v rows", res.Rows[0][0])
	}

	exec(t, s, `BEGIN`)
	exec(t, s, `INSERT INTO t VALUES (3)`)
	exec(t, s, `COMMIT`)
	res = exec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(1) {
		t.Fatalf("commit: %v", res.Rows[0][0])
	}
	// Nested BEGIN fails.
	exec(t, s, `BEGIN`)
	if _, err := s.Exec(`BEGIN`); err == nil {
		t.Fatal("nested BEGIN must fail")
	}
	exec(t, s, `COMMIT`)
}

func TestRollbackOfUpdatesAndDeletes(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`)

	exec(t, s, `BEGIN`)
	exec(t, s, `UPDATE t SET b = 'changed' WHERE a = 1`)
	exec(t, s, `DELETE FROM t WHERE a = 2`)
	exec(t, s, `ROLLBACK`)

	res := exec(t, s, `SELECT b FROM t WHERE a = 1`)
	if res.Rows[0][0] != "one" {
		t.Fatalf("update not rolled back: %v", res.Rows[0][0])
	}
	res = exec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("delete not rolled back: %v", res.Rows[0][0])
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	exec(t, s, `CREATE TABLE t (a INTEGER)`)
	exec(t, s, `BEGIN`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	s.Close()
	s2 := e.NewSession()
	defer s2.Close()
	res := exec(t, s2, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(0) {
		t.Fatalf("session close must roll back: %v", res.Rows[0][0])
	}
}

func TestWriteLockBlocksSecondWriter(t *testing.T) {
	e := memEngine(t)
	s1 := e.NewSession()
	defer s1.Close()
	exec(t, s1, `CREATE TABLE t (a INTEGER)`)
	exec(t, s1, `BEGIN`)
	exec(t, s1, `INSERT INTO t VALUES (1)`)

	s2 := e.NewSession()
	defer s2.Close()
	done := make(chan error, 1)
	go func() {
		_, err := s2.Exec(`INSERT INTO t VALUES (2)`)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer not blocked (err=%v)", err)
	default:
	}
	exec(t, s1, `COMMIT`)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	res := exec(t, s1, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(2) {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
}

func TestDirtyReadSkipsLocks(t *testing.T) {
	e := memEngine(t)
	s1 := e.NewSession()
	defer s1.Close()
	exec(t, s1, `CREATE TABLE t (a INTEGER)`)
	exec(t, s1, `BEGIN`)
	exec(t, s1, `INSERT INTO t VALUES (1)`)

	s2 := e.NewSession()
	defer s2.Close()
	exec(t, s2, `SET ISOLATION TO DIRTY READ`)
	res := exec(t, s2, `SELECT COUNT(*) FROM t`) // must not block
	if res.Rows[0][0] != int64(1) {
		t.Fatalf("dirty read: %v", res.Rows[0][0])
	}
	exec(t, s1, `ROLLBACK`)
	if s2.Isolation() != lock.DirtyRead {
		t.Fatal("isolation not set")
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	exec(t, s, `CREATE TABLE t (a INTEGER, b VARCHAR(8))`)
	exec(t, s, `INSERT INTO t VALUES (1, 'keep')`)
	// An uncommitted transaction whose effects are "on disk" must be undone
	// by recovery. Simulate a crash by abandoning the engine without commit
	// or clean close (flush pools so the loser's pages hit the pager).
	exec(t, s, `BEGIN`)
	exec(t, s, `INSERT INTO t VALUES (2, 'lose')`)
	e.CrashForTesting() // abandon without Close

	e2, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2 := e2.NewSession()
	defer s2.Close()
	res := exec(t, s2, `SELECT b FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "keep" {
		t.Fatalf("recovery: %v", res.Rows)
	}
}

func TestMultiSessionVisibility(t *testing.T) {
	e := memEngine(t)
	s1 := e.NewSession()
	defer s1.Close()
	exec(t, s1, `CREATE TABLE t (a INTEGER)`)
	exec(t, s1, `INSERT INTO t VALUES (7)`)
	s2 := e.NewSession()
	defer s2.Close()
	res := exec(t, s2, `SELECT a FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(7) {
		t.Fatalf("cross-session visibility: %v", res.Rows)
	}
}

func TestLargeVolumeAndMultiPage(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER, pad VARCHAR(64))`)
	for i := 0; i < 500; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, '%s')`, i, strings.Repeat("x", 60)))
	}
	res := exec(t, s, `SELECT COUNT(*) FROM t WHERE a >= 250`)
	if res.Rows[0][0] != int64(250) {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
	res = exec(t, s, `DELETE FROM t WHERE a < 100`)
	if res.Affected != 100 {
		t.Fatalf("deleted %d", res.Affected)
	}
	res = exec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(400) {
		t.Fatalf("count after delete: %v", res.Rows[0][0])
	}
}

func TestFormatResult(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER, b VARCHAR(8))`)
	exec(t, s, `INSERT INTO t VALUES (1, 'x')`)
	res := exec(t, s, `SELECT * FROM t`)
	out := e.FormatResult(res)
	if !strings.Contains(out, "a | b") || !strings.Contains(out, "1 | x") {
		t.Fatalf("format: %q", out)
	}
	if e.FormatResult(nil) != "" {
		t.Fatal("nil result")
	}
	msg := e.FormatResult(&Result{Message: "hello"})
	if !strings.Contains(msg, "hello") {
		t.Fatal("message format")
	}
}

func TestExecScriptStopsOnError(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	_, err := s.ExecScript(`CREATE TABLE t (a INTEGER); INSERT INTO t VALUES ('bad'); INSERT INTO t VALUES (1)`)
	if err == nil {
		t.Fatal("script error must propagate")
	}
	res := exec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(0) {
		t.Fatal("statements after the failure must not run")
	}
}

func TestTypesHookError(t *testing.T) {
	_, err := Open(Options{Types: func(*types.Registry) error { return fmt.Errorf("boom") }})
	if err == nil {
		t.Fatal("types hook error must propagate")
	}
}

func TestNoWALEngine(t *testing.T) {
	e, err := Open(Options{NoWAL: true, Clock: chronon.Fixed(100)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER)`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	res := exec(t, s, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(1) {
		t.Fatal("no-WAL engine basic flow")
	}
}
