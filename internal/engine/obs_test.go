package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/chronon"
)

// These tests pin the per-statement observability contract: Result.Stats
// reports the same rows-scanned count for a native am_getmulti scan and a
// getnext-only adapter scan (both are counted at the single shared point in
// am.FillFrom), and the SYSPROFILE/SYSPTPROF virtual tables serve live
// counters that stay bit-identical to the raw storage.Stats they mirror.

func TestRowsScannedAgreement(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAM(t, e, "mem_am", "mem", true)
	registerMemAM(t, e, "memnx_am", "memnx", false)
	s := e.NewSession()
	defer s.Close()

	const total, match = 120, 90
	fillMemTable(t, s, "ta", "mem_am", total, match)
	fillMemTable(t, s, "tn", "memnx_am", total, match)
	// Unindexed control: sequential heap scan + UDR filter.
	exec(t, s, `CREATE TABLE tc (a INTEGER, b VARCHAR(16))`)
	for i := 0; i < total; i++ {
		k := i + 1000
		if i < match {
			k = 7
		}
		exec(t, s, fmt.Sprintf(`INSERT INTO tc VALUES (%d, 'row%d')`, k, i))
	}

	native := exec(t, s, `SELECT b FROM ta WHERE MemEq(a, 7)`).Stats
	adapter := exec(t, s, `SELECT b FROM tn WHERE MemEq(a, 7)`).Stats
	seq := exec(t, s, `SELECT b FROM tc WHERE MemEq(a, 7)`).Stats
	if native == nil || adapter == nil || seq == nil {
		t.Fatalf("missing Stats: native=%v adapter=%v seq=%v", native, adapter, seq)
	}

	// Both index protocols deliver exactly the matching rowids, and rows are
	// counted once in am.FillFrom — the counts must agree by construction.
	if native.RowsScanned != adapter.RowsScanned {
		t.Fatalf("rows scanned: native %d != adapter %d", native.RowsScanned, adapter.RowsScanned)
	}
	if native.RowsScanned != match {
		t.Fatalf("rows scanned: %d, want %d", native.RowsScanned, match)
	}
	if native.RowsReturned != match || adapter.RowsReturned != match || seq.RowsReturned != match {
		t.Fatalf("rows returned: native %d adapter %d seq %d, want %d",
			native.RowsReturned, adapter.RowsReturned, seq.RowsReturned, match)
	}
	// The seqscan control reads the whole heap before the filter.
	if seq.RowsScanned != total {
		t.Fatalf("seqscan rows scanned: %d, want %d", seq.RowsScanned, total)
	}

	// 90 matches at the default capacity of 64 drain in two fills (64 + 26).
	if got := native.Calls("am_getmulti"); got != 2 {
		t.Fatalf("native am_getmulti calls: %d", got)
	}
	if got := native.Calls("am_getnext"); got != 0 {
		t.Fatalf("native am_getnext calls: %d", got)
	}
	// The adapter issues one am_getnext per row plus the final not-found.
	if got := adapter.Calls("am_getnext"); got != match+1 {
		t.Fatalf("adapter am_getnext calls: %d", got)
	}
	if got := adapter.Calls("am_getmulti"); got != 0 {
		t.Fatalf("adapter am_getmulti calls: %d", got)
	}
}

func TestSysprofileLive(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAM(t, e, "mem_am", "mem", true)
	s := e.NewSession()
	defer s.Close()

	const total, match = 30, 10
	fillMemTable(t, s, "tb", "mem_am", total, match)
	exec(t, s, `SELECT b FROM tb WHERE MemEq(a, 7)`)

	res := exec(t, s, `SELECT * FROM sysprofile`)
	if want := []string{"name", "value"}; strings.Join(res.Columns, ",") != strings.Join(want, ",") {
		t.Fatalf("columns: %v", res.Columns)
	}
	vals := map[string]int64{}
	for _, r := range res.Rows {
		vals[r[0].(string)] = r[1].(int64)
	}
	// am_insert fires once per inserted row on the indexed table.
	if got := vals["am.am_insert"]; got != total {
		t.Fatalf("am.am_insert: %d, want %d", got, total)
	}
	if vals["bufferpool.fetches"] == 0 {
		t.Fatalf("bufferpool.fetches is zero: %v", vals)
	}
	if vals["wal.appends"] == 0 {
		t.Fatalf("wal.appends is zero: %v", vals)
	}
	// Pre-registered subsystems appear even before first use.
	for _, name := range []string{"lock.deadlocks", "sbspace.lo_opens", "wal.flushes"} {
		if _, ok := vals[name]; !ok {
			t.Fatalf("metric %s missing from sysprofile", name)
		}
	}

	// The counters are live: a second query moves them.
	exec(t, s, `SELECT b FROM tb WHERE MemEq(a, 7)`)
	res2 := exec(t, s, `SELECT value FROM sysprofile WHERE name = 'am.am_getmulti'`)
	if len(res2.Rows) != 1 {
		t.Fatalf("filtered sysprofile rows: %d", len(res2.Rows))
	}
	if got := res2.Rows[0][0].(int64); got <= vals["am.am_getmulti"] {
		t.Fatalf("am.am_getmulti did not advance: %d -> %d", vals["am.am_getmulti"], got)
	}

	// COUNT(*) works over virtual tables too.
	cnt := exec(t, s, `SELECT COUNT(*) FROM sysprofile`)
	if len(cnt.Rows) != 1 || cnt.Rows[0][0].(int64) < int64(len(res.Rows)) {
		t.Fatalf("count(*): %v", cnt.Rows)
	}
}

// TestSysptprofBitIdentity sums SYSPTPROF's per-partition buffer-pool
// counters and requires them to equal SYSPROFILE's engine-wide bufferpool.*
// counters exactly: both views are incremented at the same sites, so the
// numbers are bit-identical, not merely close.
func TestSysptprofBitIdentity(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()

	exec(t, s, `CREATE TABLE pt (a INTEGER, b VARCHAR(16))`)
	for i := 0; i < 50; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO pt VALUES (%d, 'row%d')`, i, i))
	}
	exec(t, s, `SELECT COUNT(*) FROM pt`)

	pt := exec(t, s, `SELECT * FROM sysptprof`)
	wantCols := "partition,kind,fetches,hits,reads,writes,evictions"
	if got := strings.Join(pt.Columns, ","); got != wantCols {
		t.Fatalf("sysptprof columns: %q", got)
	}
	if len(pt.Rows) == 0 {
		t.Fatal("sysptprof returned no partitions")
	}
	sums := map[string]int64{}
	sawTable := false
	for _, r := range pt.Rows {
		if r[0].(string) == "pt" && r[1].(string) == "table" {
			sawTable = true
		}
		sums["bufferpool.fetches"] += r[2].(int64)
		sums["bufferpool.hits"] += r[3].(int64)
		sums["bufferpool.reads"] += r[4].(int64)
		sums["bufferpool.writes"] += r[5].(int64)
		sums["bufferpool.evictions"] += r[6].(int64)
	}
	if !sawTable {
		t.Fatalf("partition pt missing: %v", pt.Rows)
	}

	// Neither virtual-table read touches a buffer pool, so the registry view
	// captured here matches the raw per-partition stats summed above.
	snap := e.Obs().Snapshot()
	for name, sum := range sums {
		if got := int64(snap.Get(name)); got != sum {
			t.Fatalf("%s: registry %d != sysptprof sum %d", name, got, sum)
		}
	}
}

// TestVirtualTableShadowing: a real table named sysprofile shadows the
// virtual one until it is dropped.
func TestVirtualTableShadowing(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()

	exec(t, s, `CREATE TABLE sysprofile (a INTEGER, b VARCHAR(16))`)
	exec(t, s, `INSERT INTO sysprofile VALUES (1, 'shadow')`)
	res := exec(t, s, `SELECT * FROM sysprofile`)
	if len(res.Rows) != 1 || res.Rows[0][1].(string) != "shadow" {
		t.Fatalf("real table did not shadow virtual: %v", res.Rows)
	}

	exec(t, s, `DROP TABLE sysprofile`)
	res = exec(t, s, `SELECT * FROM sysprofile`)
	if len(res.Rows) == 0 || len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Fatalf("virtual table not visible after drop: cols=%v rows=%d", res.Columns, len(res.Rows))
	}
}

func TestSetTraceStatement(t *testing.T) {
	var buf bytes.Buffer
	e, err := Open(Options{
		Clock:       chronon.NewVirtualClock(chronon.MustParse("9/97")),
		TraceWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.NewSession()
	defer s.Close()

	res := exec(t, s, `SET TRACE grt TO 2`)
	if !strings.Contains(res.Message, `"grt"`) || !strings.Contains(res.Message, "2") {
		t.Fatalf("message: %q", res.Message)
	}

	e.Tracer().Tracef("grt", 1, "split at node %d", 4)
	e.Tracer().Tracef("grt", 3, "suppressed detail")
	e.Tracer().Tracef("rst", 1, "other class stays off")
	out := buf.String()
	if !strings.Contains(out, "[grt:1] split at node 4") {
		t.Fatalf("trace output missing enabled line: %q", out)
	}
	if strings.Contains(out, "suppressed") || strings.Contains(out, "other class") {
		t.Fatalf("trace emitted disabled lines: %q", out)
	}

	if _, err := s.Exec(`SET ISOLATION TO bogus`); ErrorCode(err) != CodeInvalidParameter {
		t.Fatalf("bad isolation level: got %v, want %s", err, CodeInvalidParameter)
	}
}

func TestTypedErrorCodes(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()

	cases := []struct {
		sql  string
		code string
	}{
		{`SELECT * FROM nosuch`, CodeUndefinedTable},
		{`CREATE TABLE bad (a NOSUCHTYPE)`, CodeUndefinedObject},
		{`COMMIT`, CodeNoActiveTx},
	}
	for _, c := range cases {
		_, err := s.Exec(c.sql)
		if got := ErrorCode(err); got != c.code {
			t.Fatalf("%s: code %q (err %v), want %s", c.sql, got, err, c.code)
		}
	}

	exec(t, s, `BEGIN WORK`)
	if _, err := s.Exec(`BEGIN WORK`); ErrorCode(err) != CodeActiveTx {
		t.Fatalf("nested BEGIN: %v", err)
	}
	exec(t, s, `ROLLBACK WORK`)
}

func TestExplainSelect(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAM(t, e, "mem_am", "mem", true)
	s := e.NewSession()
	defer s.Close()

	fillMemTable(t, s, "tb", "mem_am", 20, 5)

	res := exec(t, s, `EXPLAIN SELECT b FROM tb WHERE MemEq(a, 7)`)
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("columns: %v", res.Columns)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		plan.WriteString(r[0].(string) + "\n")
	}
	out := plan.String()
	for _, want := range []string{
		"SELECT on tb",
		"index scan on tb_ix via mem_am",
		"strategy:",
		"MemEq",
		"batch:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan missing %q:\n%s", want, out)
		}
	}
	// EXPLAIN plans without executing: no scan was opened.
	if got := res.Stats.Calls("am_beginscan"); got != 0 {
		t.Fatalf("EXPLAIN opened a scan: %d am_beginscan calls", got)
	}

	res = exec(t, s, `EXPLAIN SELECT * FROM tb`)
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].(string) + "\n"
	}
	if !strings.Contains(joined, "sequential heap scan") {
		t.Fatalf("unqualified plan should seqscan:\n%s", joined)
	}
}
