package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/am"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/types"
)

// These tests pin the purpose-function call protocol of the batched scan
// pipeline: an access method that binds am_getmulti is driven through
// am_open -> am_beginscan -> am_getmulti* -> am_endscan -> am_close, while
// a getnext-only access method (only am_getnext is mandatory) is driven
// through the legacy Figure 6(b) sequence by the adapter — one traced
// am_getnext per fetched row — and both return identical results.

type memEntry struct {
	key int64
	rid heap.RowID
}

type memScan struct {
	rids []heap.RowID
	pos  int
}

// registerMemAM installs a minimal in-memory access method under amName.
// Entries live in a map keyed by index name; the single strategy function
// MemEq(col, const) selects entries whose key equals the constant. With
// withGetMulti the method also binds a native am_getmulti.
func registerMemAM(t *testing.T, e *Engine, amName, prefix string, withGetMulti bool) {
	t.Helper()
	registerMemAMCosted(t, e, amName, prefix, withGetMulti, false)
}

// registerMemAMCosted is registerMemAM with an optional am_scancost binding
// (a flat cheap estimate), for tests that pin how often the optimizer
// consults the cost function.
func registerMemAMCosted(t *testing.T, e *Engine, amName, prefix string, withGetMulti, withScanCost bool) {
	t.Helper()
	store := map[string][]memEntry{}

	lib := am.Library{
		prefix + "_create": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			store[id.Name] = nil
			return nil
		}),
		prefix + "_open":  am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_close": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_insert": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			k, ok := row[0].(int64)
			if !ok {
				return fmt.Errorf("memam: expected INTEGER key, got %T", row[0])
			}
			store[id.Name] = append(store[id.Name], memEntry{key: k, rid: rid})
			return nil
		}),
		prefix + "_beginscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			if sd.Qual == nil {
				return fmt.Errorf("memam: scan without qualification")
			}
			leaves := sd.Qual.Leaves()
			if len(leaves) != 1 {
				return fmt.Errorf("memam: want a single MemEq leaf, got %d", len(leaves))
			}
			want, ok := leaves[0].Const.(int64)
			if !ok {
				return fmt.Errorf("memam: non-integer constant %T", leaves[0].Const)
			}
			sc := &memScan{}
			for _, en := range store[sd.Index.Name] {
				if en.key == want {
					sc.rids = append(sc.rids, en.rid)
				}
			}
			sd.UserData = sc
			return nil
		}),
		prefix + "_endscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			sd.UserData = nil
			return nil
		}),
		prefix + "_getnext": am.AmGetNextFunc(func(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
			sc, ok := sd.UserData.(*memScan)
			if !ok {
				return 0, nil, false, fmt.Errorf("memam: getnext without beginscan")
			}
			if sc.pos >= len(sc.rids) {
				return 0, nil, false, nil
			}
			rid := sc.rids[sc.pos]
			sc.pos++
			return rid, nil, true, nil
		}),
	}
	if withGetMulti {
		lib[prefix+"_getmulti"] = am.AmGetMultiFunc(func(ctx *mi.Context, sd *am.ScanDesc) (int, error) {
			sc, ok := sd.UserData.(*memScan)
			if !ok {
				return 0, fmt.Errorf("memam: getmulti without beginscan")
			}
			b := sd.Batch
			b.Reset()
			for !b.Full() && sc.pos < len(sc.rids) {
				b.Append(sc.rids[sc.pos], nil)
				sc.pos++
			}
			return b.N, nil
		})
	}
	if withScanCost {
		lib[prefix+"_scancost"] = am.AmScanCostFunc(func(ctx *mi.Context, id *am.IndexDesc, q *am.Qual) (float64, error) {
			return 0.1, nil
		})
	}
	path := "usr/functions/" + prefix + ".bld"
	e.LoadLibrary(path, lib)

	s := e.NewSession()
	defer s.Close()
	slots := []string{"create", "open", "close", "insert", "beginscan", "endscan", "getnext"}
	if withGetMulti {
		slots = append(slots, "getmulti")
	}
	if withScanCost {
		slots = append(slots, "scancost")
	}
	var b strings.Builder
	assigns := make([]string, 0, len(slots)+1)
	for _, slot := range slots {
		ret := "int"
		if slot == "scancost" {
			ret = "float"
		}
		fmt.Fprintf(&b, "CREATE FUNCTION %s_%s(pointer) RETURNING %s EXTERNAL NAME '%s(%s_%s)' LANGUAGE c;\n",
			prefix, slot, ret, path, prefix, slot)
		assigns = append(assigns, fmt.Sprintf("am_%s = %s_%s", slot, prefix, slot))
	}
	assigns = append(assigns, "am_sptype = 'S'")
	fmt.Fprintf(&b, "CREATE SECONDARY ACCESS_METHOD %s (%s);\n", amName, strings.Join(assigns, ", "))
	fmt.Fprintf(&b, "CREATE OPCLASS %s_ops FOR %s STRATEGIES(MemEq);\n", prefix, amName)
	if _, err := s.ExecScript(b.String()); err != nil {
		t.Fatalf("register %s: %v", amName, err)
	}
}

// registerMemEq installs the shared strategy UDR once per engine.
func registerMemEq(t *testing.T, e *Engine) {
	t.Helper()
	e.LoadLibrary("usr/functions/memeq.bld", am.Library{
		"MemEq": am.UDRFunc(func(ctx *mi.Context, args []types.Datum) (types.Datum, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("MemEq needs 2 arguments")
			}
			a, ok1 := args[0].(int64)
			b, ok2 := args[1].(int64)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("MemEq arguments must be INTEGER")
			}
			return a == b, nil
		}),
	})
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE FUNCTION MemEq(INTEGER, INTEGER) RETURNING boolean EXTERNAL NAME 'usr/functions/memeq.bld(MemEq)' LANGUAGE c`)
}

// fillMemTable creates a table indexed by amName and inserts total rows, of
// which match have key 7 (the queried value).
func fillMemTable(t *testing.T, s *Session, name, amName string, total, match int) {
	t.Helper()
	exec(t, s, fmt.Sprintf(`CREATE TABLE %s (a INTEGER, b VARCHAR(16))`, name))
	exec(t, s, fmt.Sprintf(`CREATE INDEX %s_ix ON %s(a) USING %s`, name, name, amName))
	for i := 0; i < total; i++ {
		k := i + 1000
		if i < match {
			k = 7
		}
		exec(t, s, fmt.Sprintf(`INSERT INTO %s VALUES (%d, 'row%d')`, name, k, i))
	}
}

func countCalls(trace []string, call string) int {
	n := 0
	for _, c := range trace {
		if strings.HasPrefix(c, call+"(") {
			n++
		}
	}
	return n
}

func TestBatchedCallSequence(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAM(t, e, "mem_am", "mem", true)
	s := e.NewSession()
	defer s.Close()

	const total, match = 180, 150 // 150 matches > 2 full batches of 64
	fillMemTable(t, s, "tb", "mem_am", total, match)

	e.EnableCallTrace(true)
	res := exec(t, s, `SELECT b FROM tb WHERE MemEq(a, 7)`)
	trace := e.TakeCallTrace()
	e.EnableCallTrace(false)
	if len(res.Rows) != match {
		t.Fatalf("rows: %d", len(res.Rows))
	}

	joined := strings.Join(trace, " ")
	if !strings.HasPrefix(joined, "am_open(tb_ix) am_beginscan(tb_ix) am_getmulti(tb_ix)") {
		t.Fatalf("prefix: %v", trace)
	}
	if !strings.HasSuffix(joined, "am_endscan(tb_ix) am_close(tb_ix)") {
		t.Fatalf("suffix: %v", trace)
	}
	// 150 matches at the default capacity of 64 drain in three fills
	// (64 + 64 + 22; the short batch signals exhaustion).
	if got := countCalls(trace, "am_getmulti"); got != 3 {
		t.Fatalf("am_getmulti calls: %d (trace %v)", got, trace)
	}
	if got := countCalls(trace, "am_getnext"); got != 0 {
		t.Fatalf("native batched scan must not call am_getnext: %v", trace)
	}
}

func TestGetnextOnlyAdapterSequence(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAM(t, e, "memnx_am", "memnx", false)
	s := e.NewSession()
	defer s.Close()

	const total, match = 180, 150
	fillMemTable(t, s, "tn", "memnx_am", total, match)

	e.EnableCallTrace(true)
	res := exec(t, s, `SELECT b FROM tn WHERE MemEq(a, 7)`)
	trace := e.TakeCallTrace()
	e.EnableCallTrace(false)
	if len(res.Rows) != match {
		t.Fatalf("rows: %d", len(res.Rows))
	}

	joined := strings.Join(trace, " ")
	// The adapter preserves the legacy Figure 6(b) shape: every underlying
	// am_getnext call is traced individually, no am_getmulti appears.
	if !strings.HasPrefix(joined, "am_open(tn_ix) am_beginscan(tn_ix) am_getnext(tn_ix)") {
		t.Fatalf("prefix: %v", trace)
	}
	if !strings.HasSuffix(joined, "am_endscan(tn_ix) am_close(tn_ix)") {
		t.Fatalf("suffix: %v", trace)
	}
	if got := countCalls(trace, "am_getmulti"); got != 0 {
		t.Fatalf("getnext-only scan must not trace am_getmulti: %v", trace)
	}
	// 150 rows plus the final not-found call.
	if got := countCalls(trace, "am_getnext"); got != match+1 {
		t.Fatalf("am_getnext calls: %d", got)
	}
}

// TestBatchedAndAdapterAgree runs the same data and query through the
// native-getmulti method, the getnext-only method, and a plain sequential
// scan, and requires identical result sets.
func TestBatchedAndAdapterAgree(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerMemAM(t, e, "mem_am", "mem", true)
	registerMemAM(t, e, "memnx_am", "memnx", false)
	s := e.NewSession()
	defer s.Close()

	const total, match = 120, 90
	fillMemTable(t, s, "ta", "mem_am", total, match)
	fillMemTable(t, s, "tb2", "memnx_am", total, match)
	// The unindexed control table: same rows, sequential scan + UDR filter.
	exec(t, s, `CREATE TABLE tc (a INTEGER, b VARCHAR(16))`)
	for i := 0; i < total; i++ {
		k := i + 1000
		if i < match {
			k = 7
		}
		exec(t, s, fmt.Sprintf(`INSERT INTO tc VALUES (%d, 'row%d')`, k, i))
	}

	gather := func(table string) []string {
		res := exec(t, s, fmt.Sprintf(`SELECT b FROM %s WHERE MemEq(a, 7)`, table))
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r[0].(string)
		}
		return out
	}
	native, adapter, seq := gather("ta"), gather("tb2"), gather("tc")
	if strings.Join(native, ",") != strings.Join(adapter, ",") {
		t.Fatalf("native %v != adapter %v", native, adapter)
	}
	if strings.Join(native, ",") != strings.Join(seq, ",") {
		t.Fatalf("native %v != seqscan %v", native, seq)
	}
}
