package engine

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// The onstat-style virtual catalog tables (the reproduction's answer to
// Informix's onstat -g profile screens): SYSPROFILE serves the engine-wide
// obs registry, SYSPTPROF serves per-partition (table/sbspace) buffer-pool
// I/O counters. They are served from live counters on every read — never
// stored — and are shadowed by a real user table of the same name, should
// one exist.

// virtualRows resolves a virtual table by name and materialises its rows.
func (s *Session) virtualRows(name string) (*catalog.Table, [][]types.Datum, bool) {
	var tb *catalog.Table
	for _, vt := range catalog.VirtualTables() {
		if strings.EqualFold(vt.Name, name) {
			tb = vt
			break
		}
	}
	if tb == nil {
		return nil, nil, false
	}
	switch strings.ToLower(tb.Name) {
	case "sysprofile":
		snap := s.e.obs.Snapshot()
		rows := make([][]types.Datum, 0, len(snap))
		for _, m := range snap {
			rows = append(rows, []types.Datum{m.Name, int64(m.Value)})
		}
		return tb, rows, true
	case "sysptprof":
		return tb, s.e.ptprofRows(), true
	}
	return nil, nil, false
}

// ptprofRows snapshots every partition's buffer-pool counters (tables first,
// then sbspaces, each sorted by name).
func (e *Engine) ptprofRows() [][]types.Datum {
	e.mu.Lock()
	tableNames := make([]string, 0, len(e.tables))
	for n := range e.tables {
		tableNames = append(tableNames, n)
	}
	spaceNames := make([]string, 0, len(e.spaces))
	for n := range e.spaces {
		spaceNames = append(spaceNames, n)
	}
	e.mu.Unlock()
	sort.Strings(tableNames)
	sort.Strings(spaceNames)

	var rows [][]types.Datum
	add := func(name, kind string, bp *storage.BufferPool) {
		if bp == nil {
			return
		}
		st := bp.Stats()
		rows = append(rows, []types.Datum{
			name, kind,
			int64(st.Fetches), int64(st.Hits), int64(st.Reads),
			int64(st.Writes), int64(st.Evictions),
		})
	}
	for _, n := range tableNames {
		if tb, err := e.cat.TableByName(n); err == nil {
			e.mu.Lock()
			bp := e.spacePools[tb.SpaceID]
			e.mu.Unlock()
			add(tb.Name, "table", bp)
		}
	}
	for _, n := range spaceNames {
		if sp, err := e.cat.SbspaceByName(n); err == nil {
			e.mu.Lock()
			bp := e.spacePools[sp.ID]
			e.mu.Unlock()
			add(sp.Name, "sbspace", bp)
		}
	}
	return rows
}

// selectVirtual executes a SELECT over a materialised virtual table,
// supporting the same projection/WHERE/COUNT(*) surface as heap SELECTs.
func (s *Session) selectVirtual(t *sql.Select, tb *catalog.Table, data [][]types.Datum) (*Result, error) {
	schema, err := s.e.tableSchema(tb)
	if err != nil {
		return nil, err
	}
	countStar := len(t.Items) == 1 && t.Items[0].CountStar
	var projIdx []int
	var cols []string
	var colTypes []types.Type
	if countStar {
		cols = []string{"count"}
		colTypes = []types.Type{types.Builtin(types.KInt)}
	} else {
		for _, item := range t.Items {
			switch {
			case item.Star:
				for i, c := range tb.Columns {
					projIdx = append(projIdx, i)
					cols = append(cols, c.Name)
					colTypes = append(colTypes, schema[i])
				}
			case item.CountStar:
				return nil, errf(CodeFeature, "COUNT(*) cannot be mixed with columns")
			case item.Agg != "":
				return nil, errf(CodeFeature, "aggregates are not supported over virtual tables")
			default:
				i, err := tb.ColumnIndex(item.Column)
				if err != nil {
					return nil, errf(CodeUndefinedObject, "%w", err)
				}
				projIdx = append(projIdx, i)
				cols = append(cols, tb.Columns[i].Name)
				colTypes = append(colTypes, schema[i])
			}
		}
	}
	res := &Result{Columns: cols, ColTypes: colTypes}
	count := 0
	for _, row := range data {
		if t.Where != nil {
			ok, err := s.evalBool(t.Where, tb, schema, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		count++
		if countStar {
			continue
		}
		out := make([]types.Datum, len(projIdx))
		for j, i := range projIdx {
			out[j] = row[i]
		}
		res.Rows = append(res.Rows, out)
	}
	if countStar {
		res.Rows = [][]types.Datum{{int64(count)}}
	}
	res.Affected = count
	s.ec.AddScanned(len(data))
	s.ec.AddReturned(count)
	return res, nil
}
