package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/am"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/obs"
	"repro/internal/types"
)

// Parallel-scan tests drive the worker-pool executor through a synthetic
// parallel-capable access method (engine tests cannot import the real blades
// — the blades import the engine — so the pool, the merge, cancellation, and
// goroutine lifetimes are pinned here against a minimal am_parallelscan
// implementation; the blade-level agreement tests live next to the blades).

// registerParAM extends the memAM shape with am_parallelscan: at the offer,
// the matching rid list built by beginscan is split into one chunk per
// worker, and each partition descriptor gets its own *memScan cursor — the
// existing getmulti then drives partitions unchanged.
func registerParAM(t *testing.T, e *Engine, amName, prefix string) {
	t.Helper()
	store := map[string][]memEntry{}
	lib := am.Library{
		prefix + "_create": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			store[id.Name] = nil
			return nil
		}),
		prefix + "_open":  am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_close": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_insert": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			k, ok := row[0].(int64)
			if !ok {
				return fmt.Errorf("param: expected INTEGER key, got %T", row[0])
			}
			store[id.Name] = append(store[id.Name], memEntry{key: k, rid: rid})
			return nil
		}),
		prefix + "_beginscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			want, err := memQualKey(sd)
			if err != nil {
				return err
			}
			sc := &memScan{}
			for _, en := range store[sd.Index.Name] {
				if en.key == want {
					sc.rids = append(sc.rids, en.rid)
				}
			}
			sd.UserData = sc
			return nil
		}),
		prefix + "_endscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			sd.UserData = nil
			return nil
		}),
		prefix + "_getnext":  am.AmGetNextFunc(memGetNext),
		prefix + "_getmulti": am.AmGetMultiFunc(memGetMulti),
		prefix + "_parallelscan": am.AmParallelScanFunc(func(ctx *mi.Context, sd *am.ScanDesc, degree int) ([]*am.ScanDesc, error) {
			sc, ok := sd.UserData.(*memScan)
			if !ok {
				return nil, fmt.Errorf("param: parallelscan without beginscan")
			}
			if degree < 2 || len(sc.rids) < degree {
				return nil, nil // decline: not enough work to split
			}
			per := (len(sc.rids) + degree - 1) / degree
			var out []*am.ScanDesc
			for start := 0; start < len(sc.rids); start += per {
				end := start + per
				if end > len(sc.rids) {
					end = len(sc.rids)
				}
				out = append(out, &am.ScanDesc{
					Index: sd.Index, Qual: sd.Qual, BatchCap: sd.BatchCap, Obs: sd.Obs,
					UserData: &memScan{rids: sc.rids[start:end]},
				})
			}
			return out, nil
		}),
	}
	registerAMScript(t, e, amName, prefix, "usr/functions/"+prefix+".bld", lib,
		[]string{"create", "open", "close", "insert", "beginscan", "endscan", "getnext", "getmulti", "parallelscan"})
}

func memQualKey(sd *am.ScanDesc) (int64, error) {
	if sd.Qual == nil {
		return 0, fmt.Errorf("memam: scan without qualification")
	}
	leaves := sd.Qual.Leaves()
	if len(leaves) != 1 {
		return 0, fmt.Errorf("memam: want a single MemEq leaf, got %d", len(leaves))
	}
	want, ok := leaves[0].Const.(int64)
	if !ok {
		return 0, fmt.Errorf("memam: non-integer constant %T", leaves[0].Const)
	}
	return want, nil
}

func memGetNext(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
	sc, ok := sd.UserData.(*memScan)
	if !ok {
		return 0, nil, false, fmt.Errorf("memam: getnext without beginscan")
	}
	if sc.pos >= len(sc.rids) {
		return 0, nil, false, nil
	}
	rid := sc.rids[sc.pos]
	sc.pos++
	return rid, nil, true, nil
}

func memGetMulti(ctx *mi.Context, sd *am.ScanDesc) (int, error) {
	sc, ok := sd.UserData.(*memScan)
	if !ok {
		return 0, fmt.Errorf("memam: getmulti without beginscan")
	}
	b := sd.Batch
	b.Reset()
	for !b.Full() && sc.pos < len(sc.rids) {
		b.Append(sc.rids[sc.pos], nil)
		sc.pos++
	}
	return b.N, nil
}

// registerAMScript runs the CREATE FUNCTION / ACCESS_METHOD / OPCLASS
// boilerplate for a test access-method library.
func registerAMScript(t *testing.T, e *Engine, amName, prefix, path string, lib am.Library, slots []string) {
	t.Helper()
	e.LoadLibrary(path, lib)
	s := e.NewSession()
	defer s.Close()
	var b strings.Builder
	assigns := make([]string, 0, len(slots)+1)
	for _, slot := range slots {
		fmt.Fprintf(&b, "CREATE FUNCTION %s_%s(pointer) RETURNING int EXTERNAL NAME '%s(%s_%s)' LANGUAGE c;\n",
			prefix, slot, path, prefix, slot)
		assigns = append(assigns, fmt.Sprintf("am_%s = %s_%s", slot, prefix, slot))
	}
	assigns = append(assigns, "am_sptype = 'S'")
	fmt.Fprintf(&b, "CREATE SECONDARY ACCESS_METHOD %s (%s);\n", amName, strings.Join(assigns, ", "))
	fmt.Fprintf(&b, "CREATE OPCLASS %s_ops FOR %s STRATEGIES(MemEq);\n", prefix, amName)
	if _, err := s.ExecScript(b.String()); err != nil {
		t.Fatalf("register %s: %v", amName, err)
	}
}

// forceParallel raises GOMAXPROCS to 4 for the test: SET PARALLEL caps the
// degree at GOMAXPROCS, and CI containers may expose a single CPU. The
// pool's correctness (merge, cancellation, goroutine lifetimes, data races)
// does not depend on real hardware parallelism.
func forceParallel(t *testing.T) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= 4 {
		return
	}
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// sortedCol flattens a single-column result into a sorted string slice.
func sortedCol(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, fmt.Sprint(r[0]))
	}
	sort.Strings(out)
	return out
}

func TestSetParallelStatement(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	res := exec(t, s, `SET PARALLEL 4`)
	if s.Vars().Parallel() < 1 || s.Vars().Parallel() > 4 {
		t.Fatalf("parallel knob: %d", s.Vars().Parallel())
	}
	if !strings.Contains(res.Message, "parallel") {
		t.Fatalf("message: %q", res.Message)
	}
	res = exec(t, s, `SET PARALLEL TO 0`)
	if s.Vars().Parallel() != 0 {
		t.Fatalf("parallel knob after disable: %d", s.Vars().Parallel())
	}
	if res.Message != "parallel scans disabled" {
		t.Fatalf("message: %q", res.Message)
	}
	if _, err := s.Exec(`SET PARALLEL -1`); err == nil {
		t.Fatal("negative degree accepted")
	}
}

// TestParallelIndexAgreement pins determinism: a parallel index scan returns
// exactly the serial result set (sorted compare), the rows-scanned profile
// counter agrees, and EXPLAIN advertises the worker offer.
func TestParallelIndexAgreement(t *testing.T) {
	forceParallel(t)
	e := memEngine(t)
	registerMemEq(t, e)
	registerParAM(t, e, "par_am", "pmem")
	s := e.NewSession()
	defer s.Close()
	fillMemTable(t, s, "pt", "par_am", 400, 300)

	serial := exec(t, s, `SELECT b FROM pt WHERE MemEq(a, 7)`)
	exec(t, s, `SET PARALLEL 4`)
	par := exec(t, s, `SELECT b FROM pt WHERE MemEq(a, 7)`)

	if len(par.Rows) != 300 || len(serial.Rows) != 300 {
		t.Fatalf("row counts: serial=%d parallel=%d", len(serial.Rows), len(par.Rows))
	}
	ss, ps := sortedCol(serial), sortedCol(par)
	for i := range ss {
		if ss[i] != ps[i] {
			t.Fatalf("row %d: serial %q parallel %q", i, ss[i], ps[i])
		}
	}
	if serial.Stats.RowsScanned != par.Stats.RowsScanned {
		t.Fatalf("rows scanned: serial=%d parallel=%d", serial.Stats.RowsScanned, par.Stats.RowsScanned)
	}
	if par.Plan.Workers < 2 {
		t.Fatalf("plan workers: %d", par.Plan.Workers)
	}

	ex := exec(t, s, `EXPLAIN SELECT b FROM pt WHERE MemEq(a, 7)`)
	if !strings.Contains(ex.Plan.String(), fmt.Sprintf("workers=%d", par.Plan.Workers)) {
		t.Fatalf("EXPLAIN missing workers=N:\n%s", ex.Plan)
	}
	if e.Obs().Counter("parallel.scans").Load() == 0 || e.Obs().Counter("parallel.workers").Load() == 0 {
		t.Fatal("parallel.* counters did not move")
	}
}

// TestParallelHeapAgreement covers the page-range partitioning of the heap
// sequential scan.
func TestParallelHeapAgreement(t *testing.T) {
	forceParallel(t)
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE ht (a INTEGER, pad VARCHAR(64))`)
	for i := 0; i < 600; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO ht VALUES (%d, 'padding-%d-abcdefghijklmnopqrstuvwxyz')`, i%10, i))
	}
	serial := exec(t, s, `SELECT a FROM ht WHERE a = 3`)
	exec(t, s, `SET PARALLEL 4`)
	par := exec(t, s, `SELECT a FROM ht WHERE a = 3`)
	if len(serial.Rows) != 60 || len(par.Rows) != len(serial.Rows) {
		t.Fatalf("row counts: serial=%d parallel=%d", len(serial.Rows), len(par.Rows))
	}
	if serial.Stats.RowsScanned != par.Stats.RowsScanned {
		t.Fatalf("rows scanned: serial=%d parallel=%d", serial.Stats.RowsScanned, par.Stats.RowsScanned)
	}
	if par.Plan.Workers < 2 {
		t.Fatalf("plan workers: %d", par.Plan.Workers)
	}
	ex := exec(t, s, `EXPLAIN SELECT a FROM ht WHERE a = 3`)
	if !strings.Contains(ex.Plan.String(), "workers=") {
		t.Fatalf("EXPLAIN missing workers=N:\n%s", ex.Plan)
	}
}

// waitGoroutines retries until the goroutine count drops back to (or below)
// the baseline; workers unwind asynchronously after close.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelEarlyCloseNoLeak pins the goroutine lifetime on early
// termination: a first-batch-only consumer that closes the iterator must
// drain and stop every worker.
func TestParallelEarlyCloseNoLeak(t *testing.T) {
	forceParallel(t)
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE lt (a INTEGER, pad VARCHAR(64))`)
	for i := 0; i < 600; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO lt VALUES (%d, 'padding-%d-abcdefghijklmnopqrstuvwxyz')`, i, i))
	}
	tb, err := s.catTable("lt")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Table("lt")
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		s.ec = obs.NewExecContext(e.Obs())
		it, err := s.openBatchScan(tb, table, table.Schema(), nil, accessPath{}, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.next(); err != nil { // first batch only, then abandon
			t.Fatal(err)
		}
		it.close()
		s.ec = nil
	}
	waitGoroutines(t, base)
}

// TestParallelCancellation threads a context through ExecCtx into the worker
// pool: an access method that produces batches forever is stopped by
// cancelling the statement, the statement fails with the context error, and
// no worker goroutine survives.
func TestParallelCancellation(t *testing.T) {
	forceParallel(t)
	e := memEngine(t)
	registerMemEq(t, e)

	started := make(chan struct{})
	var once sync.Once
	store := map[string][]memEntry{}
	lib := am.Library{
		"inf_create": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		"inf_open":   am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		"inf_close":  am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		"inf_insert": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			store[id.Name] = append(store[id.Name], memEntry{rid: rid})
			return nil
		}),
		"inf_beginscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			sd.UserData = store[sd.Index.Name][0].rid
			return nil
		}),
		"inf_endscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error { return nil }),
		"inf_getnext": am.AmGetNextFunc(func(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
			return sd.UserData.(heap.RowID), nil, true, nil
		}),
		"inf_getmulti": am.AmGetMultiFunc(func(ctx *mi.Context, sd *am.ScanDesc) (int, error) {
			once.Do(func() { close(started) })
			time.Sleep(time.Millisecond) // slow, endless producer
			rid := sd.UserData.(heap.RowID)
			b := sd.Batch
			b.Reset()
			for !b.Full() {
				b.Append(rid, nil)
			}
			return b.N, nil
		}),
		"inf_parallelscan": am.AmParallelScanFunc(func(ctx *mi.Context, sd *am.ScanDesc, degree int) ([]*am.ScanDesc, error) {
			out := make([]*am.ScanDesc, degree)
			for i := range out {
				out[i] = &am.ScanDesc{Index: sd.Index, Qual: sd.Qual, BatchCap: sd.BatchCap, Obs: sd.Obs, UserData: sd.UserData}
			}
			return out, nil
		}),
	}
	registerAMScript(t, e, "inf_am", "inf", "usr/functions/inf.bld", lib,
		[]string{"create", "open", "close", "insert", "beginscan", "endscan", "getnext", "getmulti", "parallelscan"})

	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE it (a INTEGER)`)
	exec(t, s, `CREATE INDEX it_ix ON it(a) USING inf_am`)
	exec(t, s, `INSERT INTO it VALUES (7)`)
	exec(t, s, `SET PARALLEL 4`)

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, err := s.ExecCtx(ctx, `SELECT count(*) FROM it WHERE MemEq(a, 7)`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitGoroutines(t, base+1) // +1: the cancel goroutine itself may linger briefly
}

// TestParallelStress hammers one shared index and one shared heap from many
// sessions at once (run under -race by make check): the latched traversal,
// the shared buffer pool, the obs counters, and the worker pools must all be
// data-race free.
func TestParallelStress(t *testing.T) {
	forceParallel(t)
	e := memEngine(t)
	registerMemEq(t, e)
	registerParAM(t, e, "par_am", "pmem")
	setup := e.NewSession()
	fillMemTable(t, setup, "st", "par_am", 300, 200)
	setup.Close()

	const sessions = 8
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			if _, err := s.Exec(`SET PARALLEL 4`); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				res, err := s.Exec(`SELECT count(*) FROM st WHERE MemEq(a, 7)`)
				if err != nil {
					errs <- fmt.Errorf("session %d round %d: %w", g, r, err)
					return
				}
				if res.Rows[0][0] != int64(200) {
					errs <- fmt.Errorf("session %d round %d: count %v", g, r, res.Rows[0][0])
					return
				}
				res, err = s.Exec(`SELECT count(*) FROM st WHERE a = 7`)
				if err != nil {
					errs <- fmt.Errorf("session %d round %d heap: %w", g, r, err)
					return
				}
				if res.Rows[0][0] != int64(200) {
					errs <- fmt.Errorf("session %d round %d heap: count %v", g, r, res.Rows[0][0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
