package engine

import (
	"context"

	"repro/internal/am"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/types"
)

// Streaming execution: ExecStream returns a Stream — a pull-based row
// iterator over a SELECT's batch pipeline — so a client (the wire protocol
// above all) can encode row batches as they are produced instead of
// materializing Rows [][]types.Datum for the whole result. Exec remains a
// thin wrapper that drains the stream. Statements with no row stream
// (DML, DDL, SET, EXPLAIN, virtual-table reads) execute eagerly and the
// Stream replays their materialized result, so callers handle every
// statement uniformly.

// selectCursor is an opened SELECT pipeline: planned access path, the
// batch iterator chain, and the projection. It owns scan resources only —
// transaction scope belongs to the Stream (or to selectStmt's caller).
type selectCursor struct {
	s        *Session
	res      *Result // header: Columns, ColTypes, Plan (Affected set at finish)
	it       batchIterator // nil: the aggregate was answered by am_aggregate
	closeIdx func()        // am_close over the statement's opened indexes
	projIdx  []int
	agg      *aggAcc       // non-nil: single-aggregate projection, drained at exhaustion
	aggRow   []types.Datum // am_aggregate's answer; emitted once, no scan
	emitted  bool          // aggregate: the single result row was produced
	count    int
	closed   bool
}

// openSelectCursor plans and opens a SELECT over a real table — everything
// selectStmt did up to its fetch loop. On error, every opened resource is
// released before returning.
func (s *Session) openSelectCursor(t *sql.Select) (*selectCursor, error) {
	tb, err := s.catTable(t.Table)
	if err != nil {
		return nil, err
	}
	// No shared lock: reads run against an MVCC snapshot, so a SELECT never
	// touches the lock manager and never blocks (or is blocked by) writers.
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()

	_, closeAll, path, plan, err := s.planStmtRead("SELECT", t, tb, schema, t.Where)
	if err != nil {
		return nil, err
	}
	plan.Workers = s.scanDegree(path, plan, table)
	snap := s.stmtSnapshot(false)
	plan.SnapshotLSN = snap.ReadLSN
	s.ec.SetSnapshot(snap.ReadLSN)

	// Projection, with typed column metadata alongside the names. A single
	// aggregate item switches the cursor to aggregate mode.
	var agg *aggAcc
	var projIdx []int
	var cols []string
	var colTypes []types.Type
	if len(t.Items) == 1 && (t.Items[0].CountStar || t.Items[0].Agg != "") {
		item := t.Items[0]
		if item.CountStar {
			agg = &aggAcc{kind: am.AggCount, col: -1}
			cols = []string{"count"}
			colTypes = []types.Type{types.Builtin(types.KInt)}
		} else {
			ci, err := tb.ColumnIndex(item.Column)
			if err != nil {
				closeAll()
				return nil, errf(CodeUndefinedObject, "%w", err)
			}
			switch item.Agg {
			case "count":
				agg = &aggAcc{kind: am.AggCount, col: ci}
				cols = []string{"count"}
				colTypes = []types.Type{types.Builtin(types.KInt)}
			case "min":
				agg = &aggAcc{kind: am.AggMin, col: ci}
				cols = []string{"min"}
				colTypes = []types.Type{schema[ci]}
			case "max":
				agg = &aggAcc{kind: am.AggMax, col: ci}
				cols = []string{"max"}
				colTypes = []types.Type{schema[ci]}
			default:
				closeAll()
				return nil, errf(CodeFeature, "aggregate %s is not supported", item.Agg)
			}
		}
	} else {
		for _, item := range t.Items {
			switch {
			case item.Star:
				for i, c := range tb.Columns {
					projIdx = append(projIdx, i)
					cols = append(cols, c.Name)
					colTypes = append(colTypes, schema[i])
				}
			case item.CountStar, item.Agg != "":
				closeAll()
				return nil, errf(CodeFeature, "aggregates cannot be mixed with columns")
			default:
				i, err := tb.ColumnIndex(item.Column)
				if err != nil {
					closeAll()
					return nil, errf(CodeUndefinedObject, "%w", err)
				}
				projIdx = append(projIdx, i)
				cols = append(cols, tb.Columns[i].Name)
				colTypes = append(colTypes, schema[i])
			}
		}
	}

	// Aggregate pushdown: a residual-free index path plus a quiescent MVCC
	// window lets am_aggregate answer from the index's internal nodes —
	// no batch scan is opened and no tuple is fetched.
	if agg != nil {
		row, ok, err := s.tryAggPushdown(agg, tb, table, path, snap)
		if err != nil {
			closeAll()
			return nil, err
		}
		if ok {
			return &selectCursor{
				s:   s,
				res: &Result{Columns: cols, ColTypes: colTypes, Plan: plan},
				closeIdx: closeAll, aggRow: row,
			}, nil
		}
	}

	it, err := s.openBatchScan(tb, table, schema, t.Where, path, plan.Workers, snap)
	if err != nil {
		closeAll()
		return nil, err
	}
	return &selectCursor{
		s:   s,
		res: &Result{Columns: cols, ColTypes: colTypes, Plan: plan},
		it:  it, closeIdx: closeAll,
		projIdx: projIdx, agg: agg,
	}, nil
}

// nextBatch produces the next projected row batch, or nil at exhaustion.
// Aggregates drain the pipeline and emit their single row as the final
// batch, so streaming consumers need no special case; an index-answered
// aggregate (aggRow) emits that row without any pipeline at all.
func (c *selectCursor) nextBatch() ([][]types.Datum, error) {
	if c.aggRow != nil {
		if c.emitted {
			return nil, nil
		}
		c.emitted = true
		c.count = 1
		c.s.ec.AddReturned(1)
		return [][]types.Datum{c.aggRow}, nil
	}
	for {
		rb, err := c.it.next()
		if err != nil {
			return nil, err
		}
		if rb == nil {
			if c.agg != nil && !c.emitted {
				c.emitted = true
				return [][]types.Datum{c.agg.row()}, nil
			}
			return nil, nil
		}
		c.count += len(rb.rows)
		c.s.ec.AddReturned(len(rb.rows))
		if c.agg != nil {
			if err := c.agg.absorb(c.s, rb.rows); err != nil {
				return nil, err
			}
			continue
		}
		out := make([][]types.Datum, len(rb.rows))
		for r, row := range rb.rows {
			prow := make([]types.Datum, len(c.projIdx))
			for j, i := range c.projIdx {
				prow[j] = row[i]
			}
			out[r] = prow
		}
		return out, nil
	}
}

// close releases the scan (iterator chain, then am_close). Idempotent.
func (c *selectCursor) close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.it != nil {
		c.it.close()
	}
	c.closeIdx()
}

// finishResult seals the header result's tallies.
func (c *selectCursor) finishResult() *Result {
	c.res.Affected = c.count
	return c.res
}

// Stream ----------------------------------------------------------------------

// Stream is an incremental statement result. For a SELECT over a real table
// it pulls projected row batches straight from the batch pipeline; for any
// other statement it replays the already-materialized result. The stream
// owns the statement's scope: its profile window, its read snapshot, and —
// outside an explicit transaction — the auto-commit, all of which resolve
// when the stream is exhausted or closed. A session runs one statement at a
// time: until the stream finishes, starting another statement fails with
// CodeSessionBusy.
type Stream struct {
	s    *Session
	cur  *selectCursor // nil = materialized replay
	res  *Result
	auto bool // the stream owns an auto-commit transaction

	matDone bool // materialized rows were delivered
	done    bool
	aborted bool // the statement failed (vs finished, possibly with a commit error)
	err     error
}

// ExecStream parses and executes one statement, returning its result as a
// stream.
func (s *Session) ExecStream(src string) (*Stream, error) {
	return s.ExecStreamCtx(context.Background(), src)
}

// ExecStreamCtx is ExecStream with a cancellation context (see ExecCtx).
func (s *Session) ExecStreamCtx(ctx context.Context, src string) (*Stream, error) {
	st, err := s.e.ParseSQL(src)
	if err != nil {
		return nil, err
	}
	return s.ExecStreamStmtCtx(ctx, st)
}

// ExecStreamStmtCtx executes a parsed statement as a stream.
func (s *Session) ExecStreamStmtCtx(ctx context.Context, st sql.Statement) (*Stream, error) {
	if s.stream != nil {
		return nil, errf(CodeSessionBusy, "a result stream is already open on this session")
	}
	if sel, ok := st.(*sql.Select); ok {
		if _, err := s.e.cat.TableByName(sel.Table); err == nil {
			return s.openStreamSelect(ctx, sel)
		}
	}
	// EXECUTE of a prepared SELECT over a real table streams like the SELECT
	// itself would; any lookup or binding problem falls through to the eager
	// path, which raises it with the standard error shape.
	if ex, ok := st.(*sql.Execute); ok {
		if p, err := s.lookupPrepared(ex.Name); err == nil {
			if sel, ok := p.stmt.(*sql.Select); ok {
				if _, err := s.e.cat.TableByName(sel.Table); err == nil {
					if str, ok := s.streamExecute(ctx, p, ex); ok {
						return str, nil
					}
				}
			}
		}
	}
	// No row stream for this statement: run it eagerly and replay.
	res, err := s.execFull(ctx, st)
	if err != nil {
		return nil, err
	}
	return &Stream{res: res}, nil
}

// openStreamSelect opens the statement scope a streaming SELECT runs under:
// the profile window, the (possibly auto-begun) transaction, and the
// cursor. The Stream's finish path mirrors execFull's epilogue exactly —
// EndStatement, auto-commit, stats attach, snapshot release — so a drained
// stream is indistinguishable from Exec.
func (s *Session) openStreamSelect(ctx context.Context, t *sql.Select) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.stmtCtx = ctx
	s.ec = obs.NewExecContext(s.e.obs)
	auto := s.tx == 0
	if auto {
		if err := s.beginTx(false); err != nil {
			s.ec = nil
			s.stmtCtx = nil
			return nil, err
		}
	}
	cur, err := s.openSelectCursor(t)
	if err != nil {
		s.ctx.EndStatement()
		if auto {
			s.rollbackTx()
		}
		s.releaseStmtSnap()
		s.ec = nil
		s.stmtCtx = nil
		return nil, err
	}
	st := &Stream{s: s, cur: cur, res: cur.res, auto: auto}
	s.stream = st
	return st, nil
}

// Columns returns the result's column names (valid from open).
func (st *Stream) Columns() []string { return st.res.Columns }

// ColTypes returns the typed column metadata (valid from open).
func (st *Stream) ColTypes() []types.Type { return st.res.ColTypes }

// Plan returns the statement's access plan, when one was made.
func (st *Stream) Plan() *Plan { return st.res.Plan }

// Next returns the next batch of rows, or nil once the stream is
// exhausted. Exhaustion finishes the statement (auto-commit included): an
// error from that epilogue — or from the scan itself — is returned here.
func (st *Stream) Next() ([][]types.Datum, error) {
	if st.done {
		return nil, nil
	}
	if st.cur == nil { // materialized replay
		if !st.matDone {
			st.matDone = true
			if len(st.res.Rows) > 0 {
				return st.res.Rows, nil
			}
		}
		st.done = true
		return nil, nil
	}
	rows, err := st.cur.nextBatch()
	if err != nil {
		st.fail(err)
		return nil, err
	}
	if rows == nil {
		st.finish()
		return nil, st.err
	}
	return rows, nil
}

// Result returns the statement result. It is complete — tallies, stats,
// and for COUNT(*) the count row — only after the stream finished (Next
// returned nil, or Close was called).
func (st *Stream) Result() *Result { return st.res }

// Err returns the stream's terminal error, if any.
func (st *Stream) Err() error { return st.err }

// Close finishes the stream if it has not finished yet: an unread scan is
// abandoned (tallies cover only the delivered rows) and the statement's
// scope resolves exactly as if the stream had been drained. Idempotent; it
// returns the stream's terminal error.
func (st *Stream) Close() error {
	if !st.done {
		if st.cur == nil {
			st.done = true
		} else {
			st.finish()
		}
	}
	return st.err
}

// Drain pulls every remaining batch into the materialized result — Exec's
// implementation.
func (st *Stream) Drain() (*Result, error) {
	if st.cur == nil {
		st.done = true
		return st.res, st.err
	}
	for {
		rows, err := st.Next()
		if err != nil {
			if st.aborted {
				return nil, err
			}
			// The statement finished but its epilogue (auto-commit) failed:
			// hand back the result with the error, as execFull does.
			return st.res, err
		}
		if rows == nil {
			break
		}
		st.res.Rows = append(st.res.Rows, rows...)
	}
	return st.res, nil
}

// finish resolves the statement scope after a complete (or abandoned) scan:
// close the cursor, end the statement window, resolve the auto-commit,
// attach the profile (after the commit, so its WAL activity lands in the
// statement), and release the read snapshot.
func (st *Stream) finish() {
	st.done = true
	s := st.s
	st.cur.close()
	st.cur.finishResult()
	s.ctx.EndStatement()
	if st.auto {
		if cerr := s.commitTx(); cerr != nil {
			st.err = cerr
		}
	}
	st.res.Stats = s.ec.Finish()
	s.releaseStmtSnap()
	s.clearBinding()
	s.ec = nil
	s.stmtCtx = nil
	s.stream = nil
}

// fail resolves the statement scope after a scan error: the auto
// transaction rolls back, as execFull's error path does.
func (st *Stream) fail(err error) {
	st.done = true
	st.aborted = true
	st.err = err
	s := st.s
	st.cur.close()
	s.ctx.EndStatement()
	if st.auto {
		s.rollbackTx()
	}
	st.res.Stats = s.ec.Finish()
	s.releaseStmtSnap()
	s.clearBinding()
	s.ec = nil
	s.stmtCtx = nil
	s.stream = nil
}
