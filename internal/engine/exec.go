package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/sbspace"
	"repro/internal/sql"
	"repro/internal/types"
)

// StmtStats is the per-statement execution profile: elapsed time, rows
// scanned/returned, purpose-function call counts by slot, and the statement's
// delta over the engine-wide subsystem counters. It replaces ad-hoc
// BufferPool.Stats() bookkeeping in clients and benchmarks.
type StmtStats = obs.Profile

// Result is the outcome of one statement.
type Result struct {
	Columns []string
	// ColTypes carries the typed column metadata alongside Columns (one
	// entry per column) — the wire protocol encodes row batches against it,
	// and clients learn result shapes without re-parsing the statement.
	ColTypes []types.Type
	Rows     [][]types.Datum
	Affected int
	Message  string
	// Stats profiles the statement's execution (nil only for
	// transaction-control statements, which run no engine work).
	Stats *StmtStats
	// Plan is the access-path decision for planned statements (SELECT,
	// DELETE, UPDATE, and EXPLAIN itself); nil otherwise.
	Plan *Plan
}

// Exec parses and executes one SQL statement.
func (s *Session) Exec(src string) (*Result, error) {
	return s.ExecCtx(context.Background(), src)
}

// ExecCtx is Exec with a cancellation context: parallel scan workers watch
// ctx, and the statement fails with ctx.Err() once it is cancelled.
func (s *Session) ExecCtx(ctx context.Context, src string) (*Result, error) {
	st, err := s.e.ParseSQL(src)
	if err != nil {
		return nil, err
	}
	return s.ExecStmtCtx(ctx, st)
}

// ParseSQL parses one statement, counting the parser's work in the engine's
// sql.parses / sql.parse_ns counters — every textual entry point (embedded
// Exec, the network server, PREPARE) funnels through here so "EXECUTE does
// zero parses" is observable, not asserted.
func (e *Engine) ParseSQL(src string) (sql.Statement, error) {
	start := time.Now()
	st, err := sql.Parse(src)
	e.sqlParses.Inc()
	e.sqlParseNs.Add(uint64(time.Since(start)))
	return st, err
}

// ParseScript is ParseSQL for a semicolon-separated script; each parsed
// statement counts.
func (e *Engine) ParseScript(src string) ([]sql.Statement, error) {
	start := time.Now()
	stmts, err := sql.ParseScript(src)
	if n := len(stmts); n > 0 {
		e.sqlParses.Add(uint64(n))
	} else {
		e.sqlParses.Inc()
	}
	e.sqlParseNs.Add(uint64(time.Since(start)))
	return stmts, err
}

// ExecScript executes a semicolon-separated script (registration scripts,
// Section 6.1), returning the last result.
func (s *Session) ExecScript(src string) (*Result, error) {
	stmts, err := s.e.ParseScript(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecStmt(st)
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st sql.Statement) (*Result, error) {
	return s.ExecStmtCtx(context.Background(), st)
}

// ExecStmtCtx executes a parsed statement under a cancellation context. A
// SELECT over a real table runs through the streaming path and is drained —
// Exec is a thin wrapper over ExecStream, so the two can never diverge.
func (s *Session) ExecStmtCtx(ctx context.Context, st sql.Statement) (*Result, error) {
	if s.stream != nil {
		return nil, errf(CodeSessionBusy, "a result stream is already open on this session")
	}
	if sel, ok := st.(*sql.Select); ok {
		if _, err := s.e.cat.TableByName(sel.Table); err == nil {
			str, err := s.openStreamSelect(ctx, sel)
			if err != nil {
				return nil, err
			}
			return str.Drain()
		}
	}
	return s.execFull(ctx, st)
}

// execFull executes a statement eagerly, materializing its whole result:
// session-state statements short-circuit, everything else runs inside the
// statement's profile window and (possibly automatic) transaction.
func (s *Session) execFull(ctx context.Context, st sql.Statement) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.stmtCtx = ctx
	defer func() { s.stmtCtx = nil }()
	switch t := st.(type) {
	case *sql.Begin:
		if err := s.beginTx(true); err != nil {
			return nil, err
		}
		return &Result{Message: "transaction started"}, nil
	case *sql.Commit:
		if err := s.commitTx(); err != nil {
			return nil, err
		}
		return &Result{Message: "committed"}, nil
	case *sql.Rollback:
		if err := s.rollbackTx(); err != nil {
			return nil, err
		}
		return &Result{Message: "rolled back"}, nil
	case *sql.SetIsolation:
		if err := s.vars.Set("isolation", t.Level); err != nil {
			return nil, err
		}
		return &Result{Message: "isolation set to " + t.Level}, nil
	case *sql.SetTrace:
		if t.Level < 0 {
			return nil, errf(CodeInvalidParameter, "trace level %d is negative", t.Level)
		}
		s.vars.SetTrace(t.Class, t.Level)
		// Trace output remains engine-wide: blade messages from any session
		// honour the level (the tracer is shared), while the vars record
		// what this session asked for.
		s.e.tracer.SetLevel(t.Class, t.Level)
		return &Result{Message: fmt.Sprintf("trace class %q set to level %d", t.Class, t.Level)}, nil
	case *sql.SetParallel:
		deg := s.vars.SetParallel(t.Degree)
		if deg < 2 {
			return &Result{Message: "parallel scans disabled"}, nil
		}
		return &Result{Message: fmt.Sprintf("parallel degree set to %d", deg)}, nil
	case *sql.SetCommit:
		if err := s.vars.Set("commit", t.Mode); err != nil {
			return nil, err
		}
		return &Result{Message: "commit mode set to " + s.vars.Commit().String()}, nil
	case *sql.Show:
		return s.show(t)
	case *sql.SetPlanCache:
		s.vars.SetPlanCache(t.On)
		if t.On {
			return &Result{Message: "plan cache on"}, nil
		}
		return &Result{Message: "plan cache off"}, nil
	case *sql.Prepare:
		p, err := s.registerPrepared(t.Name, t.Stmt)
		if err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("prepared %q (%d parameter(s))", p.name, p.nparams)}, nil
	case *sql.Deallocate:
		if err := s.Deallocate(t.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("deallocated %q", strings.ToLower(t.Name))}, nil
	}

	// Profile the statement. The ExecContext opens before the (possibly
	// automatic) transaction begins and finishes after it resolves, so
	// transaction bookkeeping — wal.appends for BEGIN, wal.flushes for the
	// auto-commit — lands in the statement that caused it.
	ec := obs.NewExecContext(s.e.obs)
	s.ec = ec
	defer func() { s.ec = nil }()
	// The statement-scoped read view (if the statement captures one) is
	// released after the statement — and its auto-commit — resolves, so it
	// pins the vacuum horizon for exactly the statement's lifetime.
	defer s.releaseStmtSnap()
	attach := func(res *Result) *Result {
		if res != nil {
			res.Stats = ec.Finish()
		}
		return res
	}

	auto := s.tx == 0
	if auto {
		if err := s.beginTx(false); err != nil {
			return nil, err
		}
	}
	res, err := s.run(st)
	s.ctx.EndStatement()
	if auto {
		if err != nil {
			s.rollbackTx()
			return attach(res), err
		}
		if cerr := s.commitTx(); cerr != nil {
			return attach(res), cerr
		}
	}
	return attach(res), err
}

// show serves SHOW ALL / SHOW <var>: the session's SET state as rows —
// the same inspection surface embedded and over the wire.
func (s *Session) show(t *sql.Show) (*Result, error) {
	res := &Result{
		Columns:  []string{"name", "value"},
		ColTypes: []types.Type{types.Builtin(types.KVarchar), types.Builtin(types.KVarchar)},
	}
	if t.All {
		for _, kv := range s.vars.List() {
			res.Rows = append(res.Rows, []types.Datum{kv.Name, kv.Value})
		}
	} else {
		val, err := s.vars.Get(t.Name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []types.Datum{strings.ToLower(t.Name), val})
	}
	res.Affected = len(res.Rows)
	return res, nil
}

func (s *Session) run(st sql.Statement) (*Result, error) {
	switch t := st.(type) {
	case *sql.CreateTable:
		return s.createTable(t)
	case *sql.DropTable:
		return s.dropTable(t)
	case *sql.CreateFunction:
		return s.createFunction(t)
	case *sql.CreateAccessMethod:
		return s.createAccessMethod(t)
	case *sql.CreateOpClass:
		return s.createOpClass(t)
	case *sql.CreateSbspace:
		return s.createSbspace(t)
	case *sql.CreateIndex:
		return s.createIndex(t)
	case *sql.DropIndex:
		return s.dropIndex(t)
	case *sql.AlterIndexRebuild:
		return s.alterIndexRebuild(t)
	case *sql.Insert:
		return s.insert(t)
	case *sql.Select:
		return s.selectStmt(t)
	case *sql.Delete:
		return s.deleteStmt(t)
	case *sql.Update:
		return s.update(t)
	case *sql.CheckIndex:
		return s.checkIndex(t)
	case *sql.UpdateStatistics:
		return s.updateStatistics(t)
	case *sql.Load:
		return s.load(t)
	case *sql.Explain:
		return s.explain(t)
	case *sql.Execute:
		return s.execExecute(t)
	}
	return nil, errf(CodeFeature, "unsupported statement %T", st)
}

// DDL -------------------------------------------------------------------------

func (s *Session) createTable(t *sql.CreateTable) (*Result, error) {
	tb := &catalog.Table{Name: t.Name, SpaceID: s.e.cat.AllocSpaceID()}
	for _, c := range t.Cols {
		if _, err := s.e.reg.TypeByName(c.TypeName); err != nil {
			return nil, errf(CodeUndefinedObject, "%w", err)
		}
		tb.Columns = append(tb.Columns, catalog.Column{Name: c.Name, TypeName: c.TypeName})
	}
	if err := s.e.cat.AddTable(tb); err != nil {
		return nil, err
	}
	if err := s.e.attachTable(tb, true); err != nil {
		return nil, err
	}
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "table created"}, nil
}

func (s *Session) dropTable(t *sql.DropTable) (*Result, error) {
	if err := s.e.cat.DropTable(t.Name); err != nil {
		return nil, err
	}
	s.e.mu.Lock()
	delete(s.e.tables, strings.ToLower(t.Name))
	s.e.mu.Unlock()
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "table dropped"}, nil
}

func (s *Session) createFunction(t *sql.CreateFunction) (*Result, error) {
	p := &catalog.Procedure{
		Name: t.Name, ArgTypes: t.ArgTypes, Returns: t.Returns,
		External: t.External, Language: t.Language,
	}
	if _, _, err := p.ParseExternal(); err != nil {
		return nil, err
	}
	if err := s.e.cat.AddProcedure(p); err != nil {
		return nil, err
	}
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "function created"}, nil
}

func (s *Session) createAccessMethod(t *sql.CreateAccessMethod) (*Result, error) {
	meta := &catalog.AccessMethod{Name: t.Name, Slots: t.Slots, SpType: t.Slots["am_sptype"]}
	// Validate eagerly: every named purpose function must resolve with the
	// right signature (and am_getnext must be present).
	if _, err := am.Bind(t.Slots, s.e.resolveSymbol); err != nil {
		return nil, err
	}
	if err := s.e.cat.AddAccessMethod(meta); err != nil {
		return nil, err
	}
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "access method created"}, nil
}

func (s *Session) createOpClass(t *sql.CreateOpClass) (*Result, error) {
	for _, fn := range append(append([]string{}, t.Strategies...), t.Support...) {
		if _, err := s.e.cat.ProcByName(fn); err != nil {
			return nil, err
		}
	}
	oc := &catalog.OpClass{Name: t.Name, AmName: t.AmName, Strategies: t.Strategies, Support: t.Support}
	if err := s.e.cat.AddOpClass(oc); err != nil {
		return nil, err
	}
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "operator class created"}, nil
}

func (s *Session) createSbspace(t *sql.CreateSbspace) (*Result, error) {
	sp, err := s.e.cat.AddSbspace(t.Name)
	if err != nil {
		return nil, err
	}
	if err := s.e.attachSbspace(sp, true); err != nil {
		return nil, err
	}
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "sbspace created"}, nil
}

func (s *Session) createIndex(t *sql.CreateIndex) (*Result, error) {
	if t.AmName == "" {
		return nil, errf(CodeFeature, "only USING <access method> indexes are supported")
	}
	tb, err := s.catTable(t.Table)
	if err != nil {
		return nil, err
	}
	ix := &catalog.Index{
		Name: t.Name, TableName: tb.Name, AmName: t.AmName,
		SpaceName: t.Space, Params: t.Params,
	}
	for _, c := range t.Columns {
		if _, err := tb.ColumnIndex(c.Column); err != nil {
			return nil, err
		}
		ix.Columns = append(ix.Columns, c.Column)
		oc := c.OpClass
		if oc == "" {
			def, err := s.e.cat.DefaultOpClass(t.AmName)
			if err != nil {
				return nil, err
			}
			oc = def.Name
		} else if _, err := s.e.cat.OpClassByName(oc); err != nil {
			return nil, err
		}
		ix.OpClasses = append(ix.OpClasses, oc)
	}
	mode, err := stripBuildMode(ix.Params)
	if err != nil {
		return nil, err
	}
	// CREATE INDEX manages its own transactions (the online publish commits
	// mid-statement) and the catalog is not transactional: inside an
	// explicit transaction a rollback would revert the index pages but keep
	// the catalog entry. Reject rather than corrupt.
	if s.explicit {
		return nil, errf(CodeActiveTx, "CREATE INDEX cannot run inside a transaction")
	}
	if err := s.buildIndexOnline(tb, ix, mode, false); err != nil {
		return nil, err
	}
	return &Result{Message: "index created"}, nil
}

func (s *Session) dropIndex(t *sql.DropIndex) (*Result, error) {
	ix, err := s.e.cat.IndexByName(t.Name)
	if err != nil {
		return nil, err
	}
	if !ix.Ready() {
		return nil, errf(CodeActiveTx, "index %s is being built", ix.Name)
	}
	desc, ps, err := s.indexDesc(ix)
	if err != nil {
		return nil, err
	}
	if err := s.callIndexFn("am_open", ps.Open, desc); err != nil {
		return nil, err
	}
	if err := s.callIndexFn("am_drop", ps.Drop, desc); err != nil {
		return nil, err
	}
	if err := s.e.cat.DropIndex(t.Name); err != nil {
		return nil, err
	}
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: "index dropped"}, nil
}

func (s *Session) checkIndex(t *sql.CheckIndex) (*Result, error) {
	ix, err := s.e.cat.IndexByName(t.Name)
	if err != nil {
		return nil, err
	}
	if !ix.Ready() {
		return nil, errf(CodeActiveTx, "index %s is being built", ix.Name)
	}
	desc, ps, err := s.indexDesc(ix)
	if err != nil {
		return nil, err
	}
	if ps.Check == nil {
		return nil, errf(CodeFeature, "access method %s has no am_check", ix.AmName)
	}
	if err := s.callIndexFn("am_open", ps.Open, desc); err != nil {
		return nil, err
	}
	defer s.callIndexFn("am_close", ps.Close, desc)
	s.amCall("am_check", desc.Name)
	if err := ps.Check(s.ctx, desc); err != nil {
		return nil, err
	}
	return &Result{Message: "index is consistent"}, nil
}

func (s *Session) updateStatistics(t *sql.UpdateStatistics) (*Result, error) {
	if t.Table != "" {
		return s.updateTableStatistics(t.Table)
	}
	// FOR INDEX form: run am_stats for one index and report, without
	// publishing a SYSSTATS record — the inspection surface of the original
	// contract.
	ix, err := s.e.cat.IndexByName(t.Index)
	if err != nil {
		return nil, err
	}
	if !ix.Ready() {
		return nil, errf(CodeActiveTx, "index %s is being built", ix.Name)
	}
	stats, err := s.collectIndexStats(ix)
	if err != nil {
		return nil, err
	}
	if stats == nil {
		return nil, errf(CodeFeature, "access method %s has no am_stats", ix.AmName)
	}
	// Fresh statistics can change am_scancost's answer: cached plans that
	// skipped costing are stale now.
	s.e.cat.BumpGeneration()
	return &Result{Message: stats.String()}, nil
}

// updateTableStatistics implements UPDATE STATISTICS [FOR TABLE] <t>: the
// table's live row and page counts plus each ready index's am_stats result
// are published into SYSSTATS, stamped with the post-bump catalog generation
// — so the record is age 0 right after collection and every cached plan
// costed under the old statistics is invalidated.
func (s *Session) updateTableStatistics(table string) (*Result, error) {
	tb, err := s.catTable(table)
	if err != nil {
		return nil, err
	}
	ht, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	rows, err := ht.Count()
	if err != nil {
		return nil, err
	}
	ts := &catalog.TableStats{
		Rows: rows, Pages: ht.Pages(),
		Indexes: make(map[string]*am.IndexStats),
	}
	collected := 0
	for _, ix := range s.e.cat.IndexesOn(tb.Name) {
		if !ix.Ready() {
			continue
		}
		stats, err := s.collectIndexStats(ix)
		if err != nil {
			return nil, err
		}
		if stats == nil {
			continue // access method without am_stats: row counts only
		}
		ts.Indexes[strings.ToLower(ix.Name)] = stats
		collected++
	}
	s.e.cat.StatsPut(tb.Name, ts)
	if err := s.e.cat.Save(); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf(
		"statistics updated for %s: %d rows, %d pages, %d index(es)",
		tb.Name, ts.Rows, ts.Pages, collected)}, nil
}

// collectIndexStats opens one index and runs its am_stats. A nil result with
// nil error means the access method binds no am_stats slot.
func (s *Session) collectIndexStats(ix *catalog.Index) (*am.IndexStats, error) {
	desc, ps, err := s.indexDesc(ix)
	if err != nil {
		return nil, err
	}
	if ps.Stats == nil {
		return nil, nil
	}
	if err := s.callIndexFn("am_open", ps.Open, desc); err != nil {
		return nil, err
	}
	defer s.callIndexFn("am_close", ps.Close, desc)
	s.amCall("am_stats", desc.Name)
	stats, err := ps.Stats(s.ctx, desc)
	s.ctx.EndFunction()
	return stats, err
}

// descriptor plumbing ----------------------------------------------------------

// indexDesc assembles the index descriptor the purpose functions receive
// (the server fills in most of the data, Section 4 Step 2).
func (s *Session) indexDesc(ix *catalog.Index) (*am.IndexDesc, *am.PurposeSet, error) {
	ps, err := s.e.purposeSet(ix.AmName)
	if err != nil {
		return nil, nil, err
	}
	tb, err := s.e.cat.TableByName(ix.TableName)
	if err != nil {
		return nil, nil, err
	}
	schema, err := s.e.tableSchema(tb)
	if err != nil {
		return nil, nil, err
	}
	desc := &am.IndexDesc{
		Name: ix.Name, TableName: tb.Name, AmName: ix.AmName,
		SpaceName: ix.SpaceName, Params: ix.Params,
		Ctx: s.ctx, Services: services{s},
	}
	if len(ix.OpClasses) > 0 {
		desc.OpClass = ix.OpClasses[0]
	}
	for _, col := range ix.Columns {
		i, err := tb.ColumnIndex(col)
		if err != nil {
			return nil, nil, err
		}
		desc.Columns = append(desc.Columns, col)
		desc.ColIdxs = append(desc.ColIdxs, i)
		desc.ColTypes = append(desc.ColTypes, schema[i])
	}
	// Hand collected statistics (if UPDATE STATISTICS ran) to the purpose
	// functions: am_scancost estimates selectivity from them.
	desc.Stats = s.e.cat.IndexStats(tb.Name, ix.Name)
	return desc, ps, nil
}

func projectIndexed(desc *am.IndexDesc, row []types.Datum) []types.Datum {
	vals := make([]types.Datum, len(desc.ColIdxs))
	for i, ci := range desc.ColIdxs {
		vals[i] = row[ci]
	}
	return vals
}

func (s *Session) callIndexFn(name string, fn am.AmIndexFunc, desc *am.IndexDesc) error {
	if fn == nil {
		return nil
	}
	s.amCall(name, desc.Name)
	err := fn(s.ctx, desc)
	s.ctx.EndFunction()
	return err
}

// services implements am.Services for one session.
type services struct{ s *Session }

// Space implements am.Services.
func (v services) Space(name string) (*sbspace.Space, error) { return v.s.e.Space(name) }

// TxID implements am.Services.
func (v services) TxID() lock.TxID { return lock.TxID(v.s.tx) }

// Isolation implements am.Services.
func (v services) Isolation() lock.IsolationLevel { return v.s.vars.Isolation() }

// Clock implements am.Services.
func (v services) Clock() chronon.Clock { return v.s.e.clock }

// AMRecordPut implements am.Services.
func (v services) AMRecordPut(amName, index string, data []byte) error {
	v.s.e.cat.AMRecordPut(amName, index, data)
	return v.s.e.cat.Save()
}

// AMRecordGet implements am.Services.
func (v services) AMRecordGet(amName, index string) ([]byte, bool, error) {
	d, ok := v.s.e.cat.AMRecordGet(amName, index)
	return d, ok, nil
}

// AMRecordDelete implements am.Services.
func (v services) AMRecordDelete(amName, index string) error {
	v.s.e.cat.AMRecordDelete(amName, index)
	return v.s.e.cat.Save()
}

// InvokeUDR implements am.Services: dynamic resolution and execution of a
// registered UDR (how non-hard-coded strategy and support functions are
// called; experiment P5 measures its overhead against hard-coded calls).
func (v services) InvokeUDR(name string, args []types.Datum) (types.Datum, error) {
	sym, err := v.s.e.resolveSymbol(name)
	if err != nil {
		return nil, err
	}
	fn, ok := sym.(am.UDRFunc)
	if !ok {
		return nil, errf(CodeDatatype, "%s is not callable from SQL (%T)", name, sym)
	}
	out, err := fn(v.s.ctx, args)
	v.s.ctx.EndFunction()
	return out, err
}
