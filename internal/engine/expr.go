package engine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/chronon"
	"repro/internal/sql"
	"repro/internal/types"
)

// evalExpr evaluates an expression. tb/schema/row give the column context
// (nil for constant expressions). UDR calls go through the dynamic
// resolution path, exactly as when an SQL statement is processed without
// using a virtual index (Section 4: "Overlaps() is invoked for each table
// record").
func (s *Session) evalExpr(ex sql.Expr, tb *catalog.Table, schema []types.Type, row []types.Datum) (types.Datum, error) {
	switch t := ex.(type) {
	case *sql.Null:
		return nil, nil
	case *sql.Literal:
		if t.IsString {
			return t.Text, nil
		}
		switch strings.ToLower(t.Text) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		if t.IsFloat {
			v, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: bad float literal %q", t.Text)
			}
			return v, nil
		}
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("engine: bad integer literal %q", t.Text)
		}
		return v, nil
	case *sql.ColumnRef:
		if tb == nil {
			return nil, fmt.Errorf("engine: column %q outside row context", t.Name)
		}
		i, err := tb.ColumnIndex(t.Name)
		if err != nil {
			return nil, err
		}
		return row[i], nil
	case *sql.Param:
		if t.Ord < 1 || t.Ord > len(s.boundArgs) {
			return nil, errf(CodeInvalidParameter, "parameter $%d is not bound (%d argument(s) given)", t.Ord, len(s.boundArgs))
		}
		return s.boundArgs[t.Ord-1], nil
	case *sql.FuncCall:
		return s.evalFuncCall(t, tb, schema, row)
	case *sql.Binary:
		return s.evalBinary(t, tb, schema, row)
	case *sql.Not:
		v, err := s.evalBool(t.X, tb, schema, row)
		if err != nil {
			return nil, err
		}
		return !v, nil
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", ex)
}

// fcMemo caches everything row-invariant about one call site in a
// statement's WHERE tree: the resolved procedure, its UDR symbol, the
// declared argument types, and any coerced literal/parameter argument
// values. The WHERE re-filter resolves each of these per row otherwise,
// and for opaque types re-running the Input parser on the same literal per
// row dominates a UDR-heavy residual filter.
type fcMemo struct {
	proc    *catalog.Procedure
	fn      am.UDRFunc
	targets []types.Type
	args    []types.Datum // coerced row-invariant arguments, per have[i]
	have    []bool
}

// resolveFuncCall builds the row-invariant half of a call site.
func (s *Session) resolveFuncCall(fc *sql.FuncCall) (*fcMemo, error) {
	proc, err := s.e.cat.ProcByName(fc.Name)
	if err != nil {
		return nil, err
	}
	if len(proc.ArgTypes) != len(fc.Args) {
		return nil, fmt.Errorf("engine: %s expects %d arguments, got %d", proc.Name, len(proc.ArgTypes), len(fc.Args))
	}
	m := &fcMemo{
		proc:    proc,
		targets: make([]types.Type, len(fc.Args)),
		args:    make([]types.Datum, len(fc.Args)),
		have:    make([]bool, len(fc.Args)),
	}
	for i := range fc.Args {
		if m.targets[i], err = s.e.reg.TypeByName(proc.ArgTypes[i]); err != nil {
			return nil, err
		}
	}
	sym, err := s.e.resolveSymbol(proc.Name)
	if err != nil {
		return nil, err
	}
	fn, ok := sym.(am.UDRFunc)
	if !ok {
		return nil, errf(CodeDatatype, "%s is not callable from SQL (%T)", proc.Name, sym)
	}
	m.fn = fn
	return m, nil
}

// evalFuncCall resolves the UDR from SYSPROCEDURES, coerces arguments to
// the declared parameter types (string literals become opaque values via
// the type's Input support function), and invokes it.
//
// When s.fcMemos is set (the per-statement WHERE re-filter, see iter.go),
// the resolution and the coerced literal/parameter arguments are cached
// across rows: they cannot vary within a statement. UDRs treat their
// arguments as read-only, so sharing one coerced datum across invocations
// is safe.
func (s *Session) evalFuncCall(fc *sql.FuncCall, tb *catalog.Table, schema []types.Type, row []types.Datum) (types.Datum, error) {
	m := s.fcMemos[fc] // nil map or missing entry both yield nil
	if m == nil {
		var err error
		if m, err = s.resolveFuncCall(fc); err != nil {
			return nil, err
		}
		if s.fcMemos != nil {
			s.fcMemos[fc] = m
		}
	}
	args := make([]types.Datum, len(fc.Args))
	for i, a := range fc.Args {
		if m.have[i] {
			args[i] = m.args[i]
			continue
		}
		v, err := s.evalExpr(a, tb, schema, row)
		if err != nil {
			return nil, err
		}
		cv, err := s.coerce(v, m.targets[i])
		if err != nil {
			return nil, fmt.Errorf("engine: %s argument %d: %w", m.proc.Name, i+1, err)
		}
		args[i] = cv
		if s.fcMemos != nil {
			switch a.(type) {
			case *sql.Literal, *sql.Param:
				m.args[i], m.have[i] = cv, true
			}
		}
	}
	out, err := m.fn(s.ctx, args)
	s.ctx.EndFunction()
	return out, err
}

func (s *Session) evalBinary(b *sql.Binary, tb *catalog.Table, schema []types.Type, row []types.Datum) (types.Datum, error) {
	switch b.Op {
	case "AND":
		l, err := s.evalBool(b.L, tb, schema, row)
		if err != nil {
			return nil, err
		}
		if !l {
			return false, nil
		}
		return s.evalBool(b.R, tb, schema, row)
	case "OR":
		l, err := s.evalBool(b.L, tb, schema, row)
		if err != nil {
			return nil, err
		}
		if l {
			return true, nil
		}
		return s.evalBool(b.R, tb, schema, row)
	}
	l, err := s.evalExpr(b.L, tb, schema, row)
	if err != nil {
		return nil, err
	}
	r, err := s.evalExpr(b.R, tb, schema, row)
	if err != nil {
		return nil, err
	}
	if l == nil || r == nil {
		return false, nil // SQL three-valued logic collapsed to false
	}
	l, r, err = s.harmonise(l, r)
	if err != nil {
		return nil, err
	}
	c, err := types.Compare(l, r)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "=":
		return c == 0, nil
	case "<>":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	}
	return nil, fmt.Errorf("engine: unsupported operator %q", b.Op)
}

// harmonise reconciles comparable representations (string literal vs DATE).
func (s *Session) harmonise(l, r types.Datum) (types.Datum, types.Datum, error) {
	if ls, ok := l.(string); ok {
		if _, ok := r.(chronon.Instant); ok {
			d, err := chronon.Parse(ls)
			if err != nil {
				return nil, nil, err
			}
			return d, r, nil
		}
	}
	if rs, ok := r.(string); ok {
		if _, ok := l.(chronon.Instant); ok {
			d, err := chronon.Parse(rs)
			if err != nil {
				return nil, nil, err
			}
			return l, d, nil
		}
	}
	return l, r, nil
}

// evalBool evaluates an expression expecting a boolean.
func (s *Session) evalBool(ex sql.Expr, tb *catalog.Table, schema []types.Type, row []types.Datum) (bool, error) {
	v, err := s.evalExpr(ex, tb, schema, row)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("engine: expression is not boolean (%T)", v)
	}
	return b, nil
}

// coerce converts a datum to the target type (string → date/opaque via the
// input support function, int ↔ float).
func (s *Session) coerce(v types.Datum, target types.Type) (types.Datum, error) {
	if v == nil {
		return nil, nil
	}
	switch target.Kind {
	case types.KInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case chronon.Instant:
			return int64(x), nil
		}
	case types.KFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
	case types.KVarchar:
		if x, ok := v.(string); ok {
			return x, nil
		}
		return s.e.reg.Format(v)
	case types.KBool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case types.KDate:
		switch x := v.(type) {
		case chronon.Instant:
			return x, nil
		case string:
			return chronon.Parse(x)
		case int64:
			return chronon.Instant(x), nil
		}
	case types.KOpaque:
		switch x := v.(type) {
		case types.Opaque:
			if x.TypeID == target.OpaqueID {
				return x, nil
			}
		case string:
			return s.e.reg.ParseLiteral(x, target)
		}
	}
	return nil, fmt.Errorf("engine: cannot coerce %T to %v", v, target)
}

// FormatResult renders a result as text (the shell's output).
func (e *Engine) FormatResult(r *Result) string {
	return FormatResultWith(e.reg, r)
}

// FormatResultWith renders a result against an arbitrary type registry. The
// network client renders with its own registry (the server's is across the
// wire), and the renderings must agree byte for byte — which is why this is
// one function, not two implementations.
func FormatResultWith(reg *types.Registry, r *Result) string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	if len(r.Columns) > 0 {
		sb.WriteString(strings.Join(r.Columns, " | "))
		sb.WriteString("\n")
		sb.WriteString(strings.Repeat("-", len(strings.Join(r.Columns, " | "))))
		sb.WriteString("\n")
		for _, row := range r.Rows {
			parts := make([]string, len(row))
			for i, d := range row {
				txt, err := reg.Format(d)
				if err != nil {
					txt = fmt.Sprintf("<%v>", err)
				}
				parts[i] = txt
			}
			sb.WriteString(strings.Join(parts, " | "))
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "(%d row(s))\n", len(r.Rows))
	}
	if r.Message != "" {
		sb.WriteString(r.Message)
		sb.WriteString("\n")
	}
	return sb.String()
}

var _ = am.QAnd // keep the am import for qual construction elsewhere
