package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/am"
	"repro/internal/chronon"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/types"
)

// registerBuildMemAM installs an in-memory access method with the full
// mutation surface (insert/delete/update) and, with withBuild, an am_build
// bulk-load slot — the engine-level stand-in for the tree blades when
// testing the online build machinery. Entries live in a mutex-guarded map
// keyed by index name, so concurrent sessions may race under -race.
func registerBuildMemAM(t *testing.T, e *Engine, amName, prefix string, withBuild bool) {
	t.Helper()
	var mu sync.Mutex
	store := map[string][]memEntry{}

	key := func(row []types.Datum) (int64, error) {
		k, ok := row[0].(int64)
		if !ok {
			return 0, fmt.Errorf("%s: expected INTEGER key, got %T", prefix, row[0])
		}
		return k, nil
	}
	lib := am.Library{
		prefix + "_create": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			mu.Lock()
			store[id.Name] = nil
			mu.Unlock()
			return nil
		}),
		prefix + "_drop": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error {
			mu.Lock()
			delete(store, id.Name)
			mu.Unlock()
			return nil
		}),
		prefix + "_open":  am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_close": am.AmIndexFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_check": am.AmCheckFunc(func(ctx *mi.Context, id *am.IndexDesc) error { return nil }),
		prefix + "_insert": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			k, err := key(row)
			if err != nil {
				return err
			}
			mu.Lock()
			store[id.Name] = append(store[id.Name], memEntry{key: k, rid: rid})
			mu.Unlock()
			return nil
		}),
		prefix + "_delete": am.AmMutateFunc(func(ctx *mi.Context, id *am.IndexDesc, row []types.Datum, rid heap.RowID) error {
			k, err := key(row)
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			ents := store[id.Name]
			for i, en := range ents {
				if en.key == k && en.rid == rid {
					store[id.Name] = append(ents[:i], ents[i+1:]...)
					return nil
				}
			}
			return fmt.Errorf("%s: index %s has no entry %d at %v", prefix, id.Name, k, rid)
		}),
		prefix + "_beginscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			leaves := sd.Qual.Leaves()
			if len(leaves) != 1 {
				return fmt.Errorf("%s: want a single MemEq leaf", prefix)
			}
			want, ok := leaves[0].Const.(int64)
			if !ok {
				return fmt.Errorf("%s: non-integer constant %T", prefix, leaves[0].Const)
			}
			sc := &memScan{}
			mu.Lock()
			for _, en := range store[sd.Index.Name] {
				if en.key == want {
					sc.rids = append(sc.rids, en.rid)
				}
			}
			mu.Unlock()
			sd.UserData = sc
			return nil
		}),
		prefix + "_endscan": am.AmScanFunc(func(ctx *mi.Context, sd *am.ScanDesc) error {
			sd.UserData = nil
			return nil
		}),
		prefix + "_getnext": am.AmGetNextFunc(func(ctx *mi.Context, sd *am.ScanDesc) (heap.RowID, []types.Datum, bool, error) {
			sc, ok := sd.UserData.(*memScan)
			if !ok {
				return 0, nil, false, fmt.Errorf("%s: getnext without beginscan", prefix)
			}
			if sc.pos >= len(sc.rids) {
				return 0, nil, false, nil
			}
			rid := sc.rids[sc.pos]
			sc.pos++
			return rid, nil, true, nil
		}),
	}
	if withBuild {
		lib[prefix+"_build"] = am.AmBuildFunc(func(ctx *mi.Context, id *am.IndexDesc, next am.AmBuildNext) (int, error) {
			var ents []memEntry
			for {
				b, err := next()
				if err != nil {
					return 0, err
				}
				if b == nil {
					break
				}
				for i := 0; i < b.N; i++ {
					k, err := key(b.Rows[i])
					if err != nil {
						return 0, err
					}
					ents = append(ents, memEntry{key: k, rid: b.RowIDs[i]})
				}
			}
			mu.Lock()
			store[id.Name] = ents
			mu.Unlock()
			return len(ents), nil
		})
	}
	path := "usr/functions/" + prefix + ".bld"
	e.LoadLibrary(path, lib)

	s := e.NewSession()
	defer s.Close()
	slots := []string{"create", "drop", "open", "close", "check", "insert", "delete", "beginscan", "endscan", "getnext"}
	if withBuild {
		slots = append(slots, "build")
	}
	var b strings.Builder
	assigns := make([]string, 0, len(slots)+1)
	for _, slot := range slots {
		fmt.Fprintf(&b, "CREATE FUNCTION %s_%s(pointer) RETURNING int EXTERNAL NAME '%s(%s_%s)' LANGUAGE c;\n",
			prefix, slot, path, prefix, slot)
		assigns = append(assigns, fmt.Sprintf("am_%s = %s_%s", slot, prefix, slot))
	}
	assigns = append(assigns, "am_sptype = 'S'")
	fmt.Fprintf(&b, "CREATE SECONDARY ACCESS_METHOD %s (%s);\n", amName, strings.Join(assigns, ", "))
	fmt.Fprintf(&b, "CREATE OPCLASS %s_ops FOR %s STRATEGIES(MemEq);\n", prefix, amName)
	if _, err := s.ExecScript(b.String()); err != nil {
		t.Fatalf("register %s: %v", amName, err)
	}
}

func keysVia(t *testing.T, s *Session, table string, k int) int {
	t.Helper()
	res := exec(t, s, fmt.Sprintf(`SELECT a FROM %s WHERE MemEq(a, %d)`, table, k))
	return len(res.Rows)
}

// TestCreateIndexSnapshotRegression pins the satellite fix: the historical
// build scanned the heap with a nil snapshot ("latest state, committed or
// not") and no table lock, so another session's in-flight insert could be
// indexed and survive that session's rollback as a phantom. The rewritten
// build latches the table (waiting out in-flight writers) and scans a
// pinned MVCC snapshot, so a rolled-back row can never enter the index.
func TestCreateIndexSnapshotRegression(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "snapam", "snp", true)

	s1 := e.NewSession()
	defer s1.Close()
	exec(t, s1, `CREATE TABLE snap_t (a INTEGER)`)
	for i := 0; i < 10; i++ {
		exec(t, s1, fmt.Sprintf(`INSERT INTO snap_t VALUES (%d)`, i))
	}

	// Session 2 holds an uncommitted insert (table X lock held to rollback).
	s2 := e.NewSession()
	defer s2.Close()
	exec(t, s2, `BEGIN`)
	exec(t, s2, `INSERT INTO snap_t VALUES (777)`)

	// The build must block on the phase-0 latch behind session 2's lock.
	waits := e.Obs().Snapshot().Get("lock.waits")
	done := make(chan error, 1)
	go func() {
		s3 := e.NewSession()
		defer s3.Close()
		_, err := s3.Exec(`CREATE INDEX snap_ix ON snap_t(a) USING snapam`)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.Obs().Snapshot().Get("lock.waits") == waits {
		if time.Now().After(deadline) {
			t.Fatal("CREATE INDEX never blocked on the writer's table lock")
		}
		time.Sleep(time.Millisecond)
	}
	exec(t, s2, `ROLLBACK`)
	if err := <-done; err != nil {
		t.Fatalf("CREATE INDEX: %v", err)
	}

	// The rolled-back row must not be in the index (the nil-snapshot scan
	// would have indexed it) and the committed rows all must be.
	if got := keysVia(t, s1, "snap_t", 777); got != 0 {
		t.Fatalf("rolled-back row indexed %d time(s)", got)
	}
	for i := 0; i < 10; i++ {
		if got := keysVia(t, s1, "snap_t", i); got != 1 {
			t.Fatalf("key %d: %d rows via index, want 1", i, got)
		}
	}
}

// TestOnlineBuildSideLogCapture drives concurrent DML at the exact build
// stages through the test hook: inserts, deletes and updates land while the
// bulk scan's snapshot is already fixed, so they reach the index only
// through the side log (capture at the writer's commit, replay before
// publish). The index and a sequential scan must then agree on every key.
func TestOnlineBuildSideLogCapture(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "sideam", "sid", true)

	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE side_t (a INTEGER)`)
	for i := 0; i < 50; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO side_t VALUES (%d)`, i))
	}

	// The writer session runs inside the hook, after the bulk scan (stage
	// "bulk") and after the first catch-up drain (stage "replay") — both
	// lock-free windows where DML must flow through the side log.
	w := e.NewSession()
	defer w.Close()
	e.SetBuildHookForTesting(func(stage string) error {
		switch stage {
		case "bulk":
			if _, err := w.Exec(`INSERT INTO side_t VALUES (100)`); err != nil {
				return err
			}
			if _, err := w.Exec(`DELETE FROM side_t WHERE a = 3`); err != nil {
				return err
			}
			if _, err := w.Exec(`UPDATE side_t SET a = 200 WHERE a = 7`); err != nil {
				return err
			}
			// A rolled-back transaction's captured ops must be dropped.
			if _, err := w.Exec(`BEGIN`); err != nil {
				return err
			}
			if _, err := w.Exec(`INSERT INTO side_t VALUES (300)`); err != nil {
				return err
			}
			if _, err := w.Exec(`ROLLBACK`); err != nil {
				return err
			}
		case "replay":
			if _, err := w.Exec(`INSERT INTO side_t VALUES (400)`); err != nil {
				return err
			}
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)

	replayedBefore := e.Obs().Snapshot().Get("idxbuild.sidelog_replayed")
	exec(t, s, `CREATE INDEX side_ix ON side_t(a) USING sideam`)
	e.SetBuildHookForTesting(nil)

	snap := e.Obs().Snapshot()
	if got := snap.Get("idxbuild.rows_bulk"); got < 50 {
		t.Fatalf("idxbuild.rows_bulk = %d, want >= 50", got)
	}
	// Index maintenance is deferred, so only the insert halves reach the
	// side log: insert(100), the update's new version (200), insert(400).
	// The delete of 3 and the update-away of 7 leave their bulk-scanned
	// entries in place; visibility at rid resolution hides them below.
	if got := snap.Get("idxbuild.sidelog_replayed") - replayedBefore; got != 3 {
		t.Fatalf("idxbuild.sidelog_replayed = %d, want 3", got)
	}
	if snap.Get("idxbuild.publish_latch_ns") == 0 {
		t.Fatal("idxbuild.publish_latch_ns not recorded")
	}

	for _, tc := range []struct{ key, want int }{
		{100, 1}, {400, 1}, {200, 1}, // side-log inserts
		{3, 0}, {7, 0}, // side-log delete and update-away
		{300, 0},       // rolled back: never flushed
		{0, 1}, {49, 1}, // bulk-scanned rows
	} {
		if got := keysVia(t, s, "side_t", tc.key); got != tc.want {
			t.Fatalf("key %d: %d rows via index, want %d", tc.key, got, tc.want)
		}
	}
}

// TestOnlineBuildCrashMatrix crashes the engine at each named stage of an
// online build and verifies recovery: no BUILDING (or half-built) index may
// be visible after reopen, its AM records must be purged, and the table
// must remain fully usable.
func TestOnlineBuildCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix reopens file-backed engines; skipped in -short")
	}
	for _, stage := range []string{"bulk", "replay", "prepublish"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
			e, err := Open(Options{Dir: dir, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}
			registerMemEq(t, e)
			registerBuildMemAM(t, e, "crasham", "crs", true)
			s := e.NewSession()
			exec(t, s, `CREATE TABLE crash_t (a INTEGER)`)
			for i := 0; i < 20; i++ {
				exec(t, s, fmt.Sprintf(`INSERT INTO crash_t VALUES (%d)`, i))
			}

			e.SetBuildHookForTesting(func(at string) error {
				if at == stage {
					e.CrashForTesting()
					return fmt.Errorf("simulated crash at %s", at)
				}
				return nil
			})
			if _, err := s.Exec(`CREATE INDEX crash_ix ON crash_t(a) USING crasham`); err == nil {
				t.Fatalf("CREATE INDEX must fail when the engine crashes at %s", stage)
			}

			e2, err := Open(Options{Dir: dir, Clock: clock})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", stage, err)
			}
			defer e2.Close()
			if _, err := e2.Catalog().IndexByName("crash_ix"); err == nil {
				t.Fatalf("half-built index visible after crash at %s", stage)
			}
			for rk := range e2.Catalog().AmRecords {
				if strings.Contains(strings.ToLower(rk), "crash_ix") {
					t.Fatalf("stale AM record %q after crash at %s", rk, stage)
				}
			}
			s2 := e2.NewSession()
			defer s2.Close()
			res := exec(t, s2, `SELECT COUNT(*) FROM crash_t`)
			if res.Rows[0][0] != int64(20) {
				t.Fatalf("table rows after crash at %s: %v", stage, res.Rows[0][0])
			}
			exec(t, s2, `INSERT INTO crash_t VALUES (999)`)
			exec(t, s2, `DELETE FROM crash_t WHERE a = 999`)
		})
	}
}

// TestBuildModesAgree builds the same data through am_build (build=bulk),
// through the forced row-at-a-time fallback (build=insert), and on an AM
// that never bound am_build — all three index paths and the sequential scan
// must agree.
func TestBuildModesAgree(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "bulkam", "blk", true)
	registerBuildMemAM(t, e, "rowam", "rws", false)
	s := e.NewSession()
	defer s.Close()

	const total, match = 120, 30
	fill := func(table string) {
		exec(t, s, fmt.Sprintf(`CREATE TABLE %s (a INTEGER)`, table))
		for i := 0; i < total; i++ {
			k := i + 1000
			if i < match {
				k = 7
			}
			exec(t, s, fmt.Sprintf(`INSERT INTO %s VALUES (%d)`, table, k))
		}
	}
	fill("mb")
	fill("mi")
	fill("mf")
	fill("mc") // unindexed control

	before := e.Obs().Snapshot().Get("am.am_build")
	exec(t, s, `CREATE INDEX mb_ix ON mb(a) USING bulkam (build='bulk')`)
	if e.Obs().Snapshot().Get("am.am_build") != before+1 {
		t.Fatal("build=bulk did not call am_build")
	}
	exec(t, s, `CREATE INDEX mi_ix ON mi(a) USING bulkam (build='insert')`)
	if e.Obs().Snapshot().Get("am.am_build") != before+1 {
		t.Fatal("build=insert must not call am_build")
	}
	exec(t, s, `CREATE INDEX mf_ix ON mf(a) USING rowam`)

	for _, k := range []int{7, 1000, 1119, 42} {
		want := keysVia(t, s, "mc", k)
		for _, table := range []string{"mb", "mi", "mf"} {
			if got := keysVia(t, s, table, k); got != want {
				t.Fatalf("key %d on %s: %d rows, want %d (seqscan)", k, table, got, want)
			}
		}
	}

	if _, err := s.Exec(`CREATE TABLE bad (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`CREATE INDEX bad_ix ON bad(a) USING bulkam (build='sideways')`); err == nil {
		t.Fatal("bad build mode must be rejected")
	}
}

// TestCreateIndexInTransaction pins the explicit-transaction guard: the
// catalog is not transactional and the online publish commits
// mid-statement, so CREATE INDEX inside BEGIN ... COMMIT is rejected
// outright (a rollback would otherwise revert the index pages but keep the
// catalog entry).
func TestCreateIndexInTransaction(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "txam", "txa", true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE tx_t (a INTEGER)`)
	exec(t, s, `INSERT INTO tx_t VALUES (1)`)

	exec(t, s, `BEGIN`)
	if _, err := s.Exec(`CREATE INDEX tx_ix ON tx_t(a) USING txam`); err == nil {
		t.Fatal("CREATE INDEX inside an explicit transaction must fail")
	}
	exec(t, s, `ROLLBACK`)
	if _, err := e.Catalog().IndexByName("tx_ix"); err == nil {
		t.Fatal("rejected CREATE INDEX left a catalog entry")
	}

	// Outside the transaction it works, and the rolled-back row from any
	// prior attempt is absent.
	exec(t, s, `CREATE INDEX tx_ix ON tx_t(a) USING txam`)
	if got := keysVia(t, s, "tx_t", 1); got != 1 {
		t.Fatalf("key 1 via index: %d", got)
	}
}

// TestAlterIndexRebuild exercises ALTER INDEX ... REBUILD: same machinery,
// existing entry, full agreement after the rebuild; plus its error cases.
func TestAlterIndexRebuild(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "rbam", "rba", true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE rb_t (a INTEGER)`)
	for i := 0; i < 30; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO rb_t VALUES (%d)`, i%10))
	}
	exec(t, s, `CREATE INDEX rb_ix ON rb_t(a) USING rbam`)
	exec(t, s, `DELETE FROM rb_t WHERE a = 4`)
	exec(t, s, `INSERT INTO rb_t VALUES (77)`)

	res := exec(t, s, `ALTER INDEX rb_ix REBUILD`)
	if res.Message != "index rebuilt" {
		t.Fatalf("message: %q", res.Message)
	}
	for _, tc := range []struct{ key, want int }{{0, 3}, {4, 0}, {77, 1}} {
		if got := keysVia(t, s, "rb_t", tc.key); got != tc.want {
			t.Fatalf("after rebuild key %d: %d rows, want %d", tc.key, got, tc.want)
		}
	}

	if _, err := s.Exec(`ALTER INDEX missing REBUILD`); err == nil {
		t.Fatal("rebuild of a missing index must fail")
	}
	exec(t, s, `BEGIN`)
	if _, err := s.Exec(`ALTER INDEX rb_ix REBUILD`); err == nil {
		t.Fatal("rebuild inside an explicit transaction must fail")
	}
	exec(t, s, `ROLLBACK`)
}

// TestOnlineBuildWriterStress is the -race battery at the engine level:
// writer goroutines hammer the table with inserts, updates and deletes
// while an online build runs; afterwards the index and a sequential scan
// must agree on every key.
func TestOnlineBuildWriterStress(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "stressam", "str", true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE str_t (a INTEGER)`)
	for i := 0; i < 200; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO str_t VALUES (%d)`, i%20))
	}

	// Writers run while the build is in its lock-free phase; the hook parks
	// the builder inside the bulk stage until every writer has finished, so
	// the side log sees real concurrent traffic.
	const writers = 4
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	started := make(chan struct{})
	e.SetBuildHookForTesting(func(stage string) error {
		if stage == "bulk" {
			close(started)
			wg.Wait()
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-started
			ws := e.NewSession()
			defer ws.Close()
			for i := 0; i < 25; i++ {
				k := 1000 + w*100 + i
				if _, err := ws.Exec(fmt.Sprintf(`INSERT INTO str_t VALUES (%d)`, k)); err != nil {
					writerErr <- err
					return
				}
				switch i % 3 {
				case 0:
					if _, err := ws.Exec(fmt.Sprintf(`UPDATE str_t SET a = %d WHERE a = %d`, k+5000, k)); err != nil {
						writerErr <- err
						return
					}
				case 1:
					if _, err := ws.Exec(fmt.Sprintf(`DELETE FROM str_t WHERE a = %d`, k)); err != nil {
						writerErr <- err
						return
					}
				}
			}
		}(w)
	}

	exec(t, s, `CREATE INDEX str_ix ON str_t(a) USING stressam`)
	e.SetBuildHookForTesting(nil)
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}

	// Full agreement: every key that exists (or was touched) resolves to the
	// same multiset cardinality through the index and the sequential scan.
	seq := exec(t, s, `SELECT a FROM str_t`)
	counts := map[int64]int{}
	for _, row := range seq.Rows {
		counts[row[0].(int64)]++
	}
	checked := 0
	for k, want := range counts {
		if got := keysVia(t, s, "str_t", int(k)); got != want {
			t.Fatalf("key %d: %d via index, %d via seqscan", k, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no keys to check")
	}
	// And keys that were deleted mid-build resolve to zero both ways.
	for w := 0; w < writers; w++ {
		k := 1000 + w*100 + 1 // i==1 branch: inserted then deleted
		if got := keysVia(t, s, "str_t", k); got != 0 {
			t.Fatalf("deleted key %d still in index: %d", k, got)
		}
	}
}

// TestBuildingIndexInvisible pins the BUILDING-state guards: while a build
// is in flight the planner must not use the index, and DROP INDEX, CHECK
// INDEX and UPDATE STATISTICS must refuse it.
func TestBuildingIndexInvisible(t *testing.T) {
	e := memEngine(t)
	registerMemEq(t, e)
	registerBuildMemAM(t, e, "visam", "vis", true)
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE vis_t (a INTEGER)`)
	exec(t, s, `INSERT INTO vis_t VALUES (7)`)

	probed := false
	var hookErr error
	q := e.NewSession()
	defer q.Close()
	e.SetBuildHookForTesting(func(stage string) error {
		if stage != "bulk" || probed {
			return nil
		}
		probed = true
		// The planner must fall back to a sequential scan (the index is
		// BUILDING), and the maintenance statements must refuse it.
		res, err := q.Exec(`EXPLAIN SELECT a FROM vis_t WHERE MemEq(a, 7)`)
		if err != nil {
			hookErr = err
			return nil
		}
		for _, row := range res.Rows {
			for _, cell := range row {
				if str, ok := cell.(string); ok && strings.Contains(strings.ToLower(str), "vis_ix") {
					hookErr = fmt.Errorf("planner uses BUILDING index: %v", res.Rows)
					return nil
				}
			}
		}
		for _, stmt := range []string{`DROP INDEX vis_ix`, `CHECK INDEX vis_ix`, `UPDATE STATISTICS FOR INDEX vis_ix`} {
			if _, err := q.Exec(stmt); err == nil {
				hookErr = fmt.Errorf("%s succeeded on a BUILDING index", stmt)
				return nil
			}
		}
		return nil
	})
	defer e.SetBuildHookForTesting(nil)
	exec(t, s, `CREATE INDEX vis_ix ON vis_t(a) USING visam`)
	e.SetBuildHookForTesting(nil)
	if !probed {
		t.Fatal("build hook never ran")
	}
	if hookErr != nil {
		t.Fatal(hookErr)
	}
	// Published: everything works again.
	if got := keysVia(t, s, "vis_t", 7); got != 1 {
		t.Fatalf("after publish: %d", got)
	}
	exec(t, s, `CHECK INDEX vis_ix`)
	exec(t, s, `DROP INDEX vis_ix`)
}
