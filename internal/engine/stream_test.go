package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

func streamTable(t *testing.T, s *Session, rows int) {
	t.Helper()
	exec(t, s, `CREATE TABLE st (id INTEGER, name VARCHAR(20))`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO st (id, name) VALUES `)
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'row%d')", i, i)
	}
	exec(t, s, sb.String())
}

// A drained stream must deliver exactly what Exec materializes, batches
// concatenated in order, with the typed header available up front.
func TestExecStreamMatchesExec(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	streamTable(t, s, 500)

	want := exec(t, s, `SELECT id, name FROM st WHERE id >= 100`)

	str, err := s.ExecStream(`SELECT id, name FROM st WHERE id >= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if got := str.Columns(); len(got) != 2 || got[0] != "id" || got[1] != "name" {
		t.Fatalf("stream columns: %v", got)
	}
	ct := str.ColTypes()
	if len(ct) != 2 || ct[0].Kind != types.KInt || ct[1].Kind != types.KVarchar {
		t.Fatalf("stream coltypes: %v", ct)
	}
	var rows [][]types.Datum
	batches := 0
	for {
		b, err := str.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		rows = append(rows, b...)
	}
	if len(rows) != len(want.Rows) {
		t.Fatalf("streamed %d rows, Exec returned %d", len(rows), len(want.Rows))
	}
	if batches < 2 {
		t.Fatalf("expected multiple batches for 400 rows, got %d", batches)
	}
	for i := range rows {
		if rows[i][0] != want.Rows[i][0] || rows[i][1] != want.Rows[i][1] {
			t.Fatalf("row %d: stream %v, exec %v", i, rows[i], want.Rows[i])
		}
	}
	res := str.Result()
	if res.Stats == nil {
		t.Fatal("finished stream must carry statement stats")
	}
	if res.Affected != len(rows) {
		t.Fatalf("Affected = %d, want %d", res.Affected, len(rows))
	}
	// The session must be reusable afterwards (auto-commit resolved).
	exec(t, s, `SELECT count(*) FROM st`)
}

// ColTypes must also surface through plain Exec (the thin wrapper).
func TestExecFillsColTypes(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	streamTable(t, s, 3)

	res := exec(t, s, `SELECT * FROM st`)
	if len(res.ColTypes) != 2 || res.ColTypes[0].Kind != types.KInt || res.ColTypes[1].Kind != types.KVarchar {
		t.Fatalf("ColTypes = %v", res.ColTypes)
	}
	res = exec(t, s, `SELECT count(*) FROM st`)
	if len(res.ColTypes) != 1 || res.ColTypes[0].Kind != types.KInt {
		t.Fatalf("count ColTypes = %v", res.ColTypes)
	}
	res = exec(t, s, `SELECT name FROM SYSPROFILE`)
	if len(res.ColTypes) == 0 {
		t.Fatalf("virtual table select has no ColTypes")
	}
	res = exec(t, s, `EXPLAIN SELECT * FROM st`)
	if len(res.ColTypes) != 1 || res.ColTypes[0].Kind != types.KVarchar {
		t.Fatalf("EXPLAIN ColTypes = %v", res.ColTypes)
	}
}

// COUNT(*) streams its single row as the final batch.
func TestExecStreamCountStar(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	streamTable(t, s, 42)

	str, err := s.ExecStream(`SELECT count(*) FROM st`)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]types.Datum
	for {
		b, err := str.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows = append(rows, b...)
	}
	if len(rows) != 1 || rows[0][0] != int64(42) {
		t.Fatalf("count rows = %v", rows)
	}
}

// Non-SELECT statements stream as a materialized replay, and a second Next
// reports exhaustion.
func TestExecStreamMaterialized(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()

	str, err := s.ExecStream(`CREATE TABLE mt (id INTEGER)`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := str.Next()
	if err != nil || b != nil {
		t.Fatalf("DDL stream Next: %v rows, err %v", b, err)
	}
	if str.Result().Message != "table created" {
		t.Fatalf("message: %q", str.Result().Message)
	}
	if err := str.Close(); err != nil {
		t.Fatal(err)
	}

	// SHOW streams its materialized rows in one batch.
	str, err = s.ExecStream(`SHOW ALL`)
	if err != nil {
		t.Fatal(err)
	}
	b, err = str.Next()
	if err != nil || len(b) == 0 {
		t.Fatalf("SHOW ALL stream: %v, %v", b, err)
	}
	if b2, _ := str.Next(); b2 != nil {
		t.Fatal("materialized stream must exhaust after one batch")
	}
	str.Close()
}

// Closing a stream early abandons the scan but fully resolves the statement
// scope: the session accepts new statements, and no transaction leaks.
func TestExecStreamEarlyClose(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	streamTable(t, s, 500)

	str, err := s.ExecStream(`SELECT * FROM st`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := str.Next(); err != nil {
		t.Fatal(err)
	}
	// A second statement while the stream is open must be refused.
	if _, err := s.Exec(`SELECT count(*) FROM st`); ErrorCode(err) != CodeSessionBusy {
		t.Fatalf("statement during open stream: err %v, want CodeSessionBusy", err)
	}
	if err := str.Close(); err != nil {
		t.Fatal(err)
	}
	if err := str.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if s.tx != 0 {
		t.Fatalf("auto transaction leaked: tx=%d", s.tx)
	}
	exec(t, s, `SELECT count(*) FROM st`)
}

// A streaming SELECT inside an explicit transaction must not commit it.
func TestExecStreamInExplicitTx(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	streamTable(t, s, 10)

	exec(t, s, `BEGIN WORK`)
	str, err := s.ExecStream(`SELECT * FROM st`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := str.Drain(); err != nil {
		t.Fatal(err)
	}
	if s.tx == 0 {
		t.Fatal("explicit transaction was resolved by the stream")
	}
	exec(t, s, `COMMIT WORK`)
}
