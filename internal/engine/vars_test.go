package engine

import (
	"strings"
	"testing"

	"repro/internal/lock"
	"repro/internal/wal"
)

// The uniform Get/Set surface must round-trip every variable and reject
// unknown names and bad values with CodeInvalidParameter.
func TestSessionVarsGetSet(t *testing.T) {
	v := NewSessionVars()
	if v.Isolation() != lock.CommittedRead || v.Commit() != wal.CommitGroup {
		t.Fatalf("defaults: iso=%v commit=%v", v.Isolation(), v.Commit())
	}
	cases := []struct{ name, set, want string }{
		{"isolation", "SNAPSHOT", "SNAPSHOT"},
		{"isolation", "repeatable read", "REPEATABLE READ"},
		{"commit", "async", "ASYNC"},
		{"commit", "SYNC", "SYNC"},
		{"parallel", "0", "0"},
		{"trace.grt", "2", "2"},
		{"TRACE.GRT", "3", "3"}, // names are case-insensitive
	}
	for _, c := range cases {
		if err := v.Set(c.name, c.set); err != nil {
			t.Fatalf("Set(%s, %s): %v", c.name, c.set, err)
		}
		got, err := v.Get(c.name)
		if err != nil {
			t.Fatalf("Get(%s): %v", c.name, err)
		}
		if got != c.want {
			t.Fatalf("Get(%s) = %q, want %q", c.name, got, c.want)
		}
	}
	for _, bad := range [][2]string{
		{"isolation", "CHAOS"},
		{"commit", "EVENTUALLY"},
		{"parallel", "many"},
		{"trace.grt", "-1"},
		{"bogus", "1"},
	} {
		err := v.Set(bad[0], bad[1])
		if ErrorCode(err) != CodeInvalidParameter {
			t.Fatalf("Set(%s, %s): err %v, want CodeInvalidParameter", bad[0], bad[1], err)
		}
	}
	if _, err := v.Get("bogus"); ErrorCode(err) != CodeInvalidParameter {
		t.Fatalf("Get(bogus): %v", err)
	}
}

// List is the SHOW ALL backing: stable order, touched trace classes last.
func TestSessionVarsList(t *testing.T) {
	v := NewSessionVars()
	v.SetTrace("GRT", 2)
	kvs := v.List()
	if len(kvs) != 5 {
		t.Fatalf("List: %v", kvs)
	}
	names := make([]string, len(kvs))
	for i, kv := range kvs {
		names[i] = kv.Name
	}
	want := "commit isolation parallel plan_cache trace.grt"
	if strings.Join(names, " ") != want {
		t.Fatalf("List order %q, want %q", strings.Join(names, " "), want)
	}
}

// SHOW must read back exactly what SET wrote, per session.
func TestShowStatement(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()

	exec(t, s, `SET ISOLATION TO SNAPSHOT`)
	exec(t, s, `SET COMMIT ASYNC`)
	res := exec(t, s, `SHOW ISOLATION`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "SNAPSHOT" {
		t.Fatalf("SHOW ISOLATION: %v", res.Rows)
	}
	res = exec(t, s, `SHOW COMMIT`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "ASYNC" {
		t.Fatalf("SHOW COMMIT: %v", res.Rows)
	}
	res = exec(t, s, `SHOW ALL`)
	if len(res.Rows) < 3 || len(res.Columns) != 2 {
		t.Fatalf("SHOW ALL: %v", res.Rows)
	}

	// Sessions are independent: a second session still sees defaults.
	s2 := e.NewSession()
	defer s2.Close()
	res = exec(t, s2, `SHOW ISOLATION`)
	if res.Rows[0][1] != "COMMITTED READ" {
		t.Fatalf("second session SHOW ISOLATION: %v", res.Rows)
	}

	if _, err := s.Exec(`SHOW WIDGETS`); ErrorCode(err) != CodeInvalidParameter {
		t.Fatalf("SHOW WIDGETS: %v", err)
	}
}
