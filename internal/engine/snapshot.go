package engine

import (
	"time"

	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/wal"
)

// MVCC snapshot machinery. Commit stamps are the WAL's logical size (its
// append position, monotone across truncation) or, without a WAL, a logical
// clock. One mutex — mvccMu — orders the four operations whose interleaving
// decides visibility: transaction-id allocation, snapshot capture,
// commit-time deactivation, and the vacuum horizon read. The invariant it
// buys: a snapshot's (ReadLSN, Active) pair is consistent — every
// transaction that deactivated before capture has all of its commit stamps
// strictly below ReadLSN (stamps are written to pages before the commit
// record is appended, and deactivation happens after), and every
// transaction still stamping at capture time is in Active, so its
// partially-stamped versions stay invisible as a unit. That makes commit
// visibility atomic without any read-side locking.

// heldSnap is a registered read view: the snapshot plus its registry key.
// Registered snapshots pin the vacuum horizon; a Dirty view reads page
// heads only and is never registered (id 0).
type heldSnap struct {
	snap *heap.Snapshot
	id   uint64
}

// verStamp is one version a transaction created or ended, remembered so
// commitTx can write the commit stamp into it.
type verStamp struct {
	table *heap.Table
	rid   heap.RowID
	kind  uint8
}

// mvccBegin allocates a transaction id and marks it active. Allocation and
// registration are one critical section so the vacuum horizon capture
// (active set + max allocated id) can never miss a transaction in between.
func (e *Engine) mvccBegin() uint64 {
	e.mvccMu.Lock()
	e.nextTx++
	tx := e.nextTx
	e.mvccActive[tx] = struct{}{}
	e.mvccMu.Unlock()
	return tx
}

// mvccEnd deactivates a transaction. For commits this must run after the
// commit record is appended: from that point every stamp the transaction
// wrote sits below any future snapshot's ReadLSN, so dropping it from
// Active flips all of its versions visible atomically.
func (e *Engine) mvccEnd(tx uint64) {
	e.mvccMu.Lock()
	delete(e.mvccActive, tx)
	e.mvccMu.Unlock()
}

// txLive reports whether tx is currently active — the heap's probe for
// telling an in-flight end stamp from an aborted NoWAL transaction's
// residue (heap.Table.SetTxLive). Safe under page latches: mvccMu holders
// never touch frames.
func (e *Engine) txLive(tx uint64) bool {
	e.mvccMu.Lock()
	_, ok := e.mvccActive[tx]
	e.mvccMu.Unlock()
	return ok
}

// readPointLocked returns the current snapshot cut. Caller holds mvccMu.
func (e *Engine) readPointLocked() uint64 {
	if e.log != nil {
		return uint64(e.log.Size())
	}
	// Logical clock: the last committed stamp is Load(); +1 makes it
	// strictly below the cut while the next commit (Add(1)) is not.
	return e.mvccClock.Load() + 1
}

// captureSnapshot builds the read view for tx: the cut point and the
// transactions active right now, atomically against commits. Registered
// views pin the vacuum horizon until released. dirty selects the
// unregistered DIRTY READ view (page heads, no stamps consulted).
func (e *Engine) captureSnapshot(tx uint64, dirty bool) *heldSnap {
	if dirty {
		return &heldSnap{snap: &heap.Snapshot{Tx: tx, Dirty: true}}
	}
	e.mvccMu.Lock()
	defer e.mvccMu.Unlock()
	readLSN := e.readPointLocked()
	act := make(map[uint64]struct{}, len(e.mvccActive))
	for id := range e.mvccActive {
		act[id] = struct{}{}
	}
	e.mvccSnapSeq++
	id := e.mvccSnapSeq
	snap := &heap.Snapshot{ReadLSN: readLSN, Active: act, Tx: tx}
	e.mvccSnaps[id] = snap
	return &heldSnap{snap: snap, id: id}
}

// releaseSnapshot unpins a read view from the vacuum horizon.
func (e *Engine) releaseSnapshot(h *heldSnap) {
	if h == nil || h.id == 0 {
		return
	}
	e.mvccMu.Lock()
	delete(e.mvccSnaps, h.id)
	e.mvccMu.Unlock()
}

// nextStamp returns the commit stamp for a committing transaction. With a
// WAL it is the log's current size: the stamping page updates and the
// commit record append after it, so the stamp is strictly below the read
// point of any snapshot captured after this commit deactivates.
func (e *Engine) nextStamp() uint64 {
	if e.log != nil {
		return uint64(e.log.Size())
	}
	return e.mvccClock.Add(1)
}

// stmtSnapshot returns the read view for the statement being executed,
// capturing it lazily. Write statements (UPDATE/DELETE target scans) always
// get a fresh committed view captured after their table X lock — under any
// isolation level — so they never act on data another transaction replaced
// before the lock was granted (writers are serialised by 2PL; the
// isolation levels govern readers only). Read statements follow the
// session's level: DIRTY READ takes the unregistered head view, COMMITTED
// READ a per-statement view, and REPEATABLE READ / SNAPSHOT one view per
// transaction, captured at its first read.
func (s *Session) stmtSnapshot(write bool) *heap.Snapshot {
	if write {
		if s.curSnap == nil {
			s.curSnap = s.e.captureSnapshot(s.tx, false)
		}
		return s.curSnap.snap
	}
	switch s.vars.Isolation() {
	case lock.DirtyRead:
		if s.curSnap == nil {
			s.curSnap = s.e.captureSnapshot(s.tx, true)
		}
		return s.curSnap.snap
	case lock.RepeatableRead, lock.Snapshot:
		if s.txSnap == nil {
			s.txSnap = s.e.captureSnapshot(s.tx, false)
		}
		return s.txSnap.snap
	default: // CommittedRead
		if s.curSnap == nil {
			s.curSnap = s.e.captureSnapshot(s.tx, false)
		}
		return s.curSnap.snap
	}
}

// releaseStmtSnap drops the statement-scoped read view at statement end.
func (s *Session) releaseStmtSnap() {
	if s.curSnap != nil {
		s.e.releaseSnapshot(s.curSnap)
		s.curSnap = nil
	}
}

// releaseTxSnap drops the transaction-scoped read view at commit/rollback.
func (s *Session) releaseTxSnap() {
	if s.txSnap != nil {
		s.e.releaseSnapshot(s.txSnap)
		s.txSnap = nil
	}
}

// recordWrite remembers a version the transaction created or ended, for
// commit-time stamping.
func (s *Session) recordWrite(table *heap.Table, rid heap.RowID, kind uint8) {
	s.writes = append(s.writes, verStamp{table: table, rid: rid, kind: kind})
}

// Version vacuum ------------------------------------------------------------

// startVacuum launches the background version vacuum: a daemon that
// periodically reclaims version cells no live snapshot can see (the MVCC
// analogue of the checkpointer's log truncation).
func (e *Engine) startVacuum() {
	if e.opts.VacuumInterval < 0 {
		return
	}
	e.vacQuit = make(chan struct{})
	e.vacDone = make(chan struct{})
	go func() {
		defer close(e.vacDone)
		t := time.NewTicker(e.opts.VacuumInterval)
		defer t.Stop()
		for {
			select {
			case <-e.vacQuit:
				return
			case <-t.C:
				e.VacuumNow() // busy tables are skipped, errors retried next tick
			}
		}
	}()
}

// stopVacuum stops the daemon and waits for it to exit. Idempotent.
func (e *Engine) stopVacuum() {
	if e.vacQuit == nil {
		return
	}
	e.vacStop.Do(func() { close(e.vacQuit) })
	<-e.vacDone
}

// VacuumNow runs one version-vacuum pass over every table and returns how
// many version cells were reclaimed. The horizon is the oldest registered
// snapshot's cut (or the current read point when none is live); the active
// set is captured consistently with the maximum allocated transaction id,
// so a transaction between allocation and its first write can never have a
// fresh version judged as aborted garbage. Transactions carried in a
// registered snapshot's Active set count as live too: a deleter that
// committed inside such a snapshot's capture window has its end stamp below
// that snapshot's ReadLSN, yet the snapshot still sees the row — the
// endLSN-vs-horizon comparison alone would reclaim it out from under the
// registered reader.
func (e *Engine) VacuumNow() (int, error) {
	e.mvccMu.Lock()
	horizon := e.readPointLocked()
	active := make(map[uint64]struct{}, len(e.mvccActive))
	for id := range e.mvccActive {
		active[id] = struct{}{}
	}
	for _, sn := range e.mvccSnaps {
		if sn.ReadLSN < horizon {
			horizon = sn.ReadLSN
		}
		for id := range sn.Active {
			active[id] = struct{}{}
		}
	}
	maxTx := e.nextTx
	e.mvccMu.Unlock()
	isActive := func(id uint64) bool {
		if id > maxTx {
			return true // allocated after the capture: treat as live
		}
		_, ok := active[id]
		return ok
	}
	e.mu.Lock()
	tables := make([]*heap.Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.Unlock()
	total := 0
	for _, t := range tables {
		n, err := e.vacuumTable(t, horizon, isActive)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// vacuumTable reclaims one table's dead versions under its own short
// transaction: the table X lock keeps writers out (readers need nothing —
// the horizon already proves no registered snapshot can see the victims,
// and page latches keep concurrent decoding safe), and the page edits are
// WAL-logged like any other mutation so recovery's physical redo stays
// coherent. A busy table is skipped rather than waited on.
func (e *Engine) vacuumTable(t *heap.Table, horizon uint64, isActive func(uint64) bool) (int, error) {
	tx := e.mvccBegin()
	defer e.mvccEnd(tx)
	if !e.lm.TryAcquire(lock.TxID(tx), lock.Resource{Kind: lock.KindTable, A: uint64(t.SpaceID)}, lock.Exclusive) {
		return 0, nil
	}
	defer e.lm.ReleaseAll(lock.TxID(tx))
	if e.log != nil {
		if _, err := e.log.Begin(tx); err != nil {
			return 0, err
		}
	}
	n, err := t.Vacuum(tx, horizon, isActive)
	if e.log == nil {
		return n, err
	}
	if err != nil {
		wal.Rollback(e.log, e.mapStores(), tx)
		return 0, err
	}
	if _, err := e.log.CommitWith(tx, wal.CommitGroup); err != nil {
		return n, err
	}
	return n, nil
}
