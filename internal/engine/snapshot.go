package engine

import (
	"errors"
	"time"

	"repro/internal/am"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/wal"
)

// MVCC snapshot machinery. Commit stamps are the WAL's logical size (its
// append position, monotone across truncation) or, without a WAL, a logical
// clock. One mutex — mvccMu — orders the four operations whose interleaving
// decides visibility: transaction-id allocation, snapshot capture,
// commit-time deactivation, and the vacuum horizon read. The invariant it
// buys: a snapshot's (ReadLSN, Active) pair is consistent — every
// transaction that deactivated before capture has all of its commit stamps
// strictly below ReadLSN (stamps are written to pages before the commit
// record is appended, and deactivation happens after), and every
// transaction still stamping at capture time is in Active, so its
// partially-stamped versions stay invisible as a unit. That makes commit
// visibility atomic without any read-side locking.

// heldSnap is a registered read view: the snapshot plus its registry key.
// Registered snapshots pin the vacuum horizon; a Dirty view reads page
// heads only and is never registered (id 0).
type heldSnap struct {
	snap *heap.Snapshot
	id   uint64
}

// verStamp is one version a transaction created or ended, remembered so
// commitTx can write the commit stamp into it.
type verStamp struct {
	table *heap.Table
	rid   heap.RowID
	kind  uint8
}

// mvccBegin allocates a transaction id and marks it active. Allocation and
// registration are one critical section so the vacuum horizon capture
// (active set + max allocated id) can never miss a transaction in between.
func (e *Engine) mvccBegin() uint64 {
	e.mvccMu.Lock()
	e.nextTx++
	tx := e.nextTx
	e.mvccActive[tx] = struct{}{}
	e.mvccMu.Unlock()
	return tx
}

// mvccEnd deactivates a transaction. For commits this must run after the
// commit record is appended: from that point every stamp the transaction
// wrote sits below any future snapshot's ReadLSN, so dropping it from
// Active flips all of its versions visible atomically.
func (e *Engine) mvccEnd(tx uint64) {
	e.mvccMu.Lock()
	delete(e.mvccActive, tx)
	e.mvccMu.Unlock()
}

// txLive reports whether tx is currently active — the heap's probe for
// telling an in-flight end stamp from an aborted NoWAL transaction's
// residue (heap.Table.SetTxLive). Safe under page latches: mvccMu holders
// never touch frames.
func (e *Engine) txLive(tx uint64) bool {
	e.mvccMu.Lock()
	_, ok := e.mvccActive[tx]
	e.mvccMu.Unlock()
	return ok
}

// readPointLocked returns the current snapshot cut. Caller holds mvccMu.
func (e *Engine) readPointLocked() uint64 {
	if e.log != nil {
		return uint64(e.log.Size())
	}
	// Logical clock: the last committed stamp is Load(); +1 makes it
	// strictly below the cut while the next commit (Add(1)) is not.
	return e.mvccClock.Load() + 1
}

// captureSnapshot builds the read view for tx: the cut point and the
// transactions active right now, atomically against commits. Registered
// views pin the vacuum horizon until released. dirty selects the
// unregistered DIRTY READ view (page heads, no stamps consulted).
func (e *Engine) captureSnapshot(tx uint64, dirty bool) *heldSnap {
	if dirty {
		return &heldSnap{snap: &heap.Snapshot{Tx: tx, Dirty: true}}
	}
	e.mvccMu.Lock()
	defer e.mvccMu.Unlock()
	readLSN := e.readPointLocked()
	act := make(map[uint64]struct{}, len(e.mvccActive))
	for id := range e.mvccActive {
		act[id] = struct{}{}
	}
	e.mvccSnapSeq++
	id := e.mvccSnapSeq
	snap := &heap.Snapshot{ReadLSN: readLSN, Active: act, Tx: tx}
	e.mvccSnaps[id] = snap
	return &heldSnap{snap: snap, id: id}
}

// releaseSnapshot unpins a read view from the vacuum horizon.
func (e *Engine) releaseSnapshot(h *heldSnap) {
	if h == nil || h.id == 0 {
		return
	}
	e.mvccMu.Lock()
	delete(e.mvccSnaps, h.id)
	e.mvccMu.Unlock()
}

// nextStamp returns the commit stamp for a committing transaction. With a
// WAL it is the log's current size: the stamping page updates and the
// commit record append after it, so the stamp is strictly below the read
// point of any snapshot captured after this commit deactivates.
func (e *Engine) nextStamp() uint64 {
	if e.log != nil {
		return uint64(e.log.Size())
	}
	return e.mvccClock.Add(1)
}

// stmtSnapshot returns the read view for the statement being executed,
// capturing it lazily. Write statements (UPDATE/DELETE target scans) always
// get a fresh committed view captured after their table X lock — under any
// isolation level — so they never act on data another transaction replaced
// before the lock was granted (writers are serialised by 2PL; the
// isolation levels govern readers only). Read statements follow the
// session's level: DIRTY READ takes the unregistered head view, COMMITTED
// READ a per-statement view, and REPEATABLE READ / SNAPSHOT one view per
// transaction, captured at its first read.
func (s *Session) stmtSnapshot(write bool) *heap.Snapshot {
	if write {
		if s.curSnap == nil {
			s.curSnap = s.e.captureSnapshot(s.tx, false)
		}
		return s.curSnap.snap
	}
	switch s.vars.Isolation() {
	case lock.DirtyRead:
		if s.curSnap == nil {
			s.curSnap = s.e.captureSnapshot(s.tx, true)
		}
		return s.curSnap.snap
	case lock.RepeatableRead, lock.Snapshot:
		if s.txSnap == nil {
			s.txSnap = s.e.captureSnapshot(s.tx, false)
		}
		return s.txSnap.snap
	default: // CommittedRead
		if s.curSnap == nil {
			s.curSnap = s.e.captureSnapshot(s.tx, false)
		}
		return s.curSnap.snap
	}
}

// releaseStmtSnap drops the statement-scoped read view at statement end.
func (s *Session) releaseStmtSnap() {
	if s.curSnap != nil {
		s.e.releaseSnapshot(s.curSnap)
		s.curSnap = nil
	}
}

// releaseTxSnap drops the transaction-scoped read view at commit/rollback.
func (s *Session) releaseTxSnap() {
	if s.txSnap != nil {
		s.e.releaseSnapshot(s.txSnap)
		s.txSnap = nil
	}
}

// aggGate decides whether an index's am_aggregate answer may stand in for a
// tuple drain under the statement's read view. The index carries one entry
// per heap row regardless of version visibility, so the slot's answer is the
// drain's answer only when every indexed entry is visible to snap. That is
// provable when (a) the table has no dead cells pending reclamation —
// deferred index maintenance means a committed DELETE's entry lingers until
// the vacuum, and a lingering entry resolves to a version this (current)
// snapshot cannot see; (b) the session itself has no pending end-writes —
// its own deletes' entries linger too, and its own snapshot hides the ended
// versions; (c) no transaction other than the session's own is active —
// nobody else's uncommitted index entries exist, and our own inserts are
// visible to our own snapshot; (d) the snapshot's own Active set carries no
// foreign transaction — commitTx appends the commit record (advancing the
// read point) before deactivating, so a view captured inside that window
// treats the committer's already-indexed rows as invisible while (c) and
// (e) both pass; (e) the current read point equals the snapshot's cut —
// nothing committed after the view was captured; and (f) the snapshot is a
// real registered view (a DIRTY READ view proves nothing). The returned
// fence is the transaction-id high-water mark; aggGateHolds re-checks it
// after the index traversal, catching transactions that began (and possibly
// inserted, or aborted leaving NoWAL residue) mid-walk — and the vacuum,
// which runs under a transaction of its own, so the dead count checked here
// cannot move unnoticed either.
func (e *Engine) aggGate(s *Session, t *heap.Table, snap *heap.Snapshot) (uint64, bool) {
	if snap == nil || snap.Dirty || snap.ReadLSN == 0 {
		return 0, false
	}
	if t.DeadCount() != 0 {
		return 0, false
	}
	for _, w := range s.writes {
		if w.kind&heap.StampEnd != 0 && w.table == t {
			return 0, false
		}
	}
	for id := range snap.Active {
		if id != s.tx {
			return 0, false
		}
	}
	e.mvccMu.Lock()
	defer e.mvccMu.Unlock()
	for id := range e.mvccActive {
		if id != s.tx {
			return 0, false
		}
	}
	if e.readPointLocked() != snap.ReadLSN {
		return 0, false
	}
	return e.nextTx, true
}

// aggGateHolds re-verifies the gate after the aggregate traversal: the
// world must look exactly as it did at aggGate time — same read point, no
// foreign activity, and no transaction allocated since the fence.
func (e *Engine) aggGateHolds(s *Session, snap *heap.Snapshot, fence uint64) bool {
	e.mvccMu.Lock()
	defer e.mvccMu.Unlock()
	for id := range e.mvccActive {
		if id != s.tx {
			return false
		}
	}
	return e.nextTx == fence && e.readPointLocked() == snap.ReadLSN
}

// recordWrite remembers a version the transaction created or ended, for
// commit-time stamping.
func (s *Session) recordWrite(table *heap.Table, rid heap.RowID, kind uint8) {
	s.writes = append(s.writes, verStamp{table: table, rid: rid, kind: kind})
}

// Version vacuum ------------------------------------------------------------

// startVacuum launches the background version vacuum: a daemon that
// periodically reclaims version cells no live snapshot can see (the MVCC
// analogue of the checkpointer's log truncation).
func (e *Engine) startVacuum() {
	if e.opts.VacuumInterval < 0 {
		return
	}
	e.vacQuit = make(chan struct{})
	e.vacDone = make(chan struct{})
	go func() {
		defer close(e.vacDone)
		t := time.NewTicker(e.opts.VacuumInterval)
		defer t.Stop()
		for {
			select {
			case <-e.vacQuit:
				return
			case <-t.C:
				e.VacuumNow() // busy tables are skipped, errors retried next tick
			}
		}
	}()
}

// stopVacuum stops the daemon and waits for it to exit. Idempotent.
func (e *Engine) stopVacuum() {
	if e.vacQuit == nil {
		return
	}
	e.vacStop.Do(func() { close(e.vacQuit) })
	<-e.vacDone
}

// VacuumNow runs one version-vacuum pass over every table and returns how
// many version cells were reclaimed. The horizon is the oldest registered
// snapshot's cut (or the current read point when none is live); the active
// set is captured consistently with the maximum allocated transaction id,
// so a transaction between allocation and its first write can never have a
// fresh version judged as aborted garbage. Transactions carried in a
// registered snapshot's Active set count as live too: a deleter that
// committed inside such a snapshot's capture window has its end stamp below
// that snapshot's ReadLSN, yet the snapshot still sees the row — the
// endLSN-vs-horizon comparison alone would reclaim it out from under the
// registered reader.
func (e *Engine) VacuumNow() (int, error) {
	e.mvccMu.Lock()
	horizon := e.readPointLocked()
	active := make(map[uint64]struct{}, len(e.mvccActive))
	for id := range e.mvccActive {
		active[id] = struct{}{}
	}
	for _, sn := range e.mvccSnaps {
		if sn.ReadLSN < horizon {
			horizon = sn.ReadLSN
		}
		for id := range sn.Active {
			active[id] = struct{}{}
		}
	}
	maxTx := e.nextTx
	e.mvccMu.Unlock()
	isActive := func(id uint64) bool {
		if id > maxTx {
			return true // allocated after the capture: treat as live
		}
		_, ok := active[id]
		return ok
	}
	e.mu.Lock()
	tables := make([]*heap.Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.Unlock()
	total := 0
	for _, t := range tables {
		n, err := e.vacuumTable(t, horizon, isActive)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// vacuumTable reclaims one table's dead versions under its own short
// transaction: the table X lock keeps writers out (readers need nothing —
// the horizon already proves no registered snapshot can see the victims,
// and page latches keep concurrent decoding safe), and the page edits are
// WAL-logged like any other mutation so recovery's physical redo stays
// coherent. A busy table is skipped rather than waited on.
//
// Because index maintenance is deferred, the vacuum is also where index
// entries die: it opens the table's READY indexes and removes each victim's
// entries (am_delete over the victim's projected row) before the heap slots
// are freed. The index LO locks are taken before the table TryAcquire — a
// writer mid-statement holds the table lock and may be waiting on an index
// LO, so acquiring in the opposite order could deadlock; TryAcquire never
// waits, it just skips the table this tick. A missing entry (am.ErrNoEntry)
// is tolerated: cells dead before an index was built never had one, and a
// NoWAL abort of a half-failed pass may have removed entries it could not
// reclaim cells for.
func (e *Engine) vacuumTable(t *heap.Table, horizon uint64, isActive func(uint64) bool) (int, error) {
	vs := e.NewSession()
	tx := e.mvccBegin()
	vs.tx = tx
	defer e.mvccEnd(tx)
	defer e.lm.ReleaseAll(lock.TxID(tx))
	idxs, closeAll, err := vs.openIndexes(t.Name, false)
	if err != nil {
		return 0, err
	}
	defer closeAll()
	if !e.lm.TryAcquire(lock.TxID(tx), lock.Resource{Kind: lock.KindTable, A: uint64(t.SpaceID)}, lock.Exclusive) {
		return 0, nil
	}
	if e.log != nil {
		if _, err := e.log.Begin(tx); err != nil {
			return 0, err
		}
	}
	reclaim := func(victims []heap.Victim) error {
		for _, v := range victims {
			for _, oi := range idxs {
				if oi.ps.Delete == nil {
					// The AM cannot remove entries; they dangle until the
					// index is rebuilt. Scans stay exact (rid resolution
					// skips reclaimed slots) and such AMs are barred from
					// am_aggregate (agg.go), so nothing over-counts.
					continue
				}
				vs.amCall("am_delete", oi.desc.Name)
				err := oi.ps.Delete(vs.ctx, oi.desc, projectIndexed(oi.desc, v.Row), v.Rid)
				vs.ctx.EndFunction()
				if err != nil && !errors.Is(err, am.ErrNoEntry) {
					return err
				}
			}
		}
		return nil
	}
	n, err := t.Vacuum(tx, horizon, isActive, reclaim)
	if e.log == nil {
		t.AddDead(-int64(n))
		return n, err
	}
	if err != nil {
		wal.Rollback(e.log, e.mapStores(), tx)
		return 0, err
	}
	if _, err := e.log.CommitWith(tx, wal.CommitGroup); err != nil {
		return n, err
	}
	t.AddDead(-int64(n))
	return n, nil
}
