package engine

import (
	"context"
	"strings"
	"time"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/types"
)

// Prepared statements and the shared plan cache ------------------------------
//
// PREPARE parses a statement once and pins its AST in the session's registry;
// EXECUTE binds parameter values into the qualification descriptor and runs
// the statement without touching the parser. Planning results — index choice,
// strategy set, am_scancost verdict — live in the engine-wide shared plan
// cache (internal/plancache), keyed by the statement's normalized text (the
// deparser's output, placeholders spelled $n) and stamped with the catalog
// generation that planned them. Ad-hoc statements join in via
// auto-parameterization: a literal-only WHERE clause is rewritten to
// placeholders for keying, so repeated point queries with different constants
// share one plan too.
//
// Invalidation is two-tier. The fast tier is the generation stamp: every DDL
// (CREATE/DROP TABLE/INDEX, REBUILD, UPDATE STATISTICS) bumps the catalog
// generation, and a Get against a newer generation evicts the entry. The
// safety tier is bind-time resolution: a cached plan stores only the *name*
// (and opclass) of its chosen index, and every execution re-resolves that
// name against the indexes just opened from the live catalog — so even a
// plan cached inside the race window between a Get and a concurrent DROP
// can never scan a dropped index; the bind simply fails and the statement
// replans fresh.

// prepared is one entry of a session's PREPARE registry: the parsed AST, the
// parameter count, and the normalized text that keys its resolved plan in
// the shared cache.
type prepared struct {
	name    string
	text    string // normalized (deparsed) statement text — the plan-cache key
	stmt    sql.Statement
	nparams int
}

// qualTmpl is a qualification template: the shape of an am.Qual with each
// constant either fixed at plan time or deferred to a parameter slot.
// EXECUTE instantiates it with the bound arguments, which is what lets a
// cached plan skip qualification extraction and am_scancost entirely.
type qualTmpl struct {
	op       am.QualOp
	children []*qualTmpl

	// Leaf fields (QFunc):
	fn       string
	colPos   int
	colFirst bool
	constVal types.Datum // fixed constant, already coerced (paramOrd == 0)
	paramOrd int         // > 0: bind boundArgs[paramOrd-1], coerced at bind time
}

// cachedPlan is a shared-plan-cache entry: everything planAccess decided,
// minus anything tied to a session or an open index handle. The index is
// recorded by name (plus opclass as a sanity stamp) and re-resolved against
// the live catalog at every bind — see the invalidation note above.
type cachedPlan struct {
	op         string // SELECT / DELETE / UPDATE
	index      string // "" = sequential scan
	amName     string
	opClass    string
	strategies []string
	qual       *qualTmpl
	seqCost    float64
	cost       float64
	costed     bool
	hasFilter  bool
	full       bool   // the qual covers the whole WHERE (aggregate pushdown gate)
	costSource string // estimate family the plan was costed from (EXPLAIN)
}

// registerPrepared validates and registers a statement under name. Only DML
// and SELECT are preparable (the Informix/PostgreSQL rule); PREPARE of DDL
// or session statements is refused.
func (s *Session) registerPrepared(name string, st sql.Statement) (*prepared, error) {
	switch st.(type) {
	case *sql.Select, *sql.Insert, *sql.Delete, *sql.Update:
	default:
		return nil, errf(CodeFeature, "cannot PREPARE this statement type (SELECT, INSERT, DELETE, UPDATE only)")
	}
	key := strings.ToLower(name)
	if _, ok := s.prepared[key]; ok {
		return nil, errf(CodeInvalidParameter, "prepared statement %q already exists (DEALLOCATE it first)", name)
	}
	p := &prepared{name: key, text: sql.Deparse(st), stmt: st, nparams: sql.NumParams(st)}
	if s.prepared == nil {
		s.prepared = make(map[string]*prepared)
	}
	s.prepared[key] = p
	return p, nil
}

func (s *Session) lookupPrepared(name string) (*prepared, error) {
	p, ok := s.prepared[strings.ToLower(name)]
	if !ok {
		return nil, errf(CodeUndefinedObject, "prepared statement %q does not exist", name)
	}
	return p, nil
}

// bindPrepared checks the argument count and installs the binding the
// statement's $n references read.
func (s *Session) bindPrepared(p *prepared, args []types.Datum) error {
	if len(args) != p.nparams {
		return errf(CodeCardinality, "prepared statement %q wants %d argument(s), got %d", p.name, p.nparams, len(args))
	}
	s.boundArgs = args
	s.curPrep = p
	return nil
}

func (s *Session) clearBinding() {
	s.boundArgs, s.curPrep = nil, nil
}

// Prepare parses src (one statement) and registers it under name, returning
// the statement's parameter count. This is the embedded/network entry point;
// the SQL-level PREPARE ... AS arrives pre-parsed through execFull.
func (s *Session) Prepare(name, src string) (int, error) {
	st, err := s.e.ParseSQL(src)
	if err != nil {
		return 0, err
	}
	p, err := s.registerPrepared(name, st)
	if err != nil {
		return 0, err
	}
	return p.nparams, nil
}

// PreparedParams reports a prepared statement's parameter count. The server
// uses it to reject a Bind against an unknown name or a wrong-arity vector
// before storing it.
func (s *Session) PreparedParams(name string) (int, error) {
	p, err := s.lookupPrepared(name)
	if err != nil {
		return 0, err
	}
	return p.nparams, nil
}

// Deallocate drops a prepared statement. The shared cache entry (if any)
// stays — other sessions may share it; LRU or DDL retires it.
func (s *Session) Deallocate(name string) error {
	key := strings.ToLower(name)
	if _, ok := s.prepared[key]; !ok {
		return errf(CodeUndefinedObject, "prepared statement %q does not exist", name)
	}
	delete(s.prepared, key)
	return nil
}

// ExecutePrepared runs a prepared statement with args bound to its $n slots
// and materializes the result. No parsing happens on this path; with a plan
// cache hit, no qualification extraction or am_scancost either.
func (s *Session) ExecutePrepared(ctx context.Context, name string, args []types.Datum) (*Result, error) {
	p, err := s.lookupPrepared(name)
	if err != nil {
		return nil, err
	}
	if err := s.bindPrepared(p, args); err != nil {
		return nil, err
	}
	res, err := s.ExecStmtCtx(ctx, p.stmt)
	s.clearBinding()
	return res, err
}

// ExecutePreparedStream is ExecutePrepared with streaming delivery: a
// prepared SELECT's rows flow through the cursor protocol (the network
// server's fast path). The parameter binding stays live until the stream
// finishes, which clears it.
func (s *Session) ExecutePreparedStream(ctx context.Context, name string, args []types.Datum) (*Stream, error) {
	p, err := s.lookupPrepared(name)
	if err != nil {
		return nil, err
	}
	if err := s.bindPrepared(p, args); err != nil {
		return nil, err
	}
	str, err := s.ExecStreamStmtCtx(ctx, p.stmt)
	if err != nil {
		s.clearBinding()
		return nil, err
	}
	if str.cur == nil {
		// Materialized replay (non-SELECT or virtual table): execution is
		// already complete, so the binding has no further reader.
		s.clearBinding()
	}
	return str, nil
}

// streamExecute opens the streaming path for a SQL-level EXECUTE of a
// prepared SELECT. false means "not streamable here" — the caller falls
// through to the eager path, which re-raises whatever failed (argument
// evaluation, arity) with the standard error shape.
func (s *Session) streamExecute(ctx context.Context, p *prepared, ex *sql.Execute) (*Stream, bool) {
	if len(ex.Args) != p.nparams {
		return nil, false
	}
	args := make([]types.Datum, len(ex.Args))
	for i, a := range ex.Args {
		v, err := s.evalExpr(a, nil, nil, nil)
		if err != nil {
			return nil, false
		}
		args[i] = v
	}
	s.boundArgs, s.curPrep = args, p
	str, err := s.openStreamSelect(ctx, p.stmt.(*sql.Select))
	if err != nil {
		s.clearBinding()
		return nil, false
	}
	return str, true
}

// execExecute is the SQL-level EXECUTE: evaluate the argument expressions,
// bind, and run the prepared statement through the normal dispatch. The
// previous binding is restored on exit so EXECUTE composes with any caller
// state.
func (s *Session) execExecute(t *sql.Execute) (*Result, error) {
	p, err := s.lookupPrepared(t.Name)
	if err != nil {
		return nil, err
	}
	args := make([]types.Datum, len(t.Args))
	for i, a := range t.Args {
		v, err := s.evalExpr(a, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	prevA, prevP := s.boundArgs, s.curPrep
	if err := s.bindPrepared(p, args); err != nil {
		return nil, err
	}
	defer func() { s.boundArgs, s.curPrep = prevA, prevP }()
	return s.run(p.stmt)
}

// planStmt is the planner entry for SELECT/DELETE/UPDATE: consult the shared
// plan cache, bind on a hit, plan fresh (and publish) on a miss. op names
// the statement kind; st is the statement being planned (used to derive the
// auto-parameterization key for ad-hoc text).
func (s *Session) planStmt(op string, st sql.Statement, tb *catalog.Table, schema []types.Type, where sql.Expr, idxs []openIndex) (accessPath, *Plan, error) {
	start := time.Now()
	defer func() { s.e.planNs.Add(uint64(time.Since(start))) }()

	key, autoArgs, pWhere, isAuto := s.planIntent(st, where)
	if isAuto {
		// Plan against the parameterized WHERE with the displaced literals
		// bound, so the extracted template carries parameter slots — the
		// cached plan then rebinds for any constants, not just today's.
		where = pWhere
		prev := s.boundArgs
		s.boundArgs = autoArgs
		defer func() { s.boundArgs = prev }()
	}
	gen := s.e.cat.Generation()
	if key != "" {
		if v, ok := s.e.planCache.Get(key, gen); ok {
			if path, plan, ok := s.bindCached(v.(*cachedPlan), tb, idxs); ok {
				plan.Operation = op
				return path, plan, nil
			}
			// The entry survived the generation check but failed to bind
			// against the just-opened indexes (DDL inside the Get→bind
			// window, or an unbindable argument): replan fresh below; the
			// Put overwrites the stale entry.
		}
	}
	path, plan, err := s.planAccess(tb, schema, where, idxs)
	if err != nil {
		return accessPath{}, nil, err
	}
	plan.Operation = op
	// Publish only if no DDL ran while we planned — a stale publish would
	// stamp an old plan with a generation it never saw.
	if key != "" && s.e.cat.Generation() == gen {
		s.e.planCache.Put(key, gen, s.cacheEntry(op, path, plan))
	}
	return path, plan, nil
}

// planStmtRead is the read-path planner entry (SELECT and EXPLAIN): unlike
// planStmt it defers am_open until it knows which indexes the statement
// scans. On a plan-cache hit only the chosen index is opened — none at all
// for a cached sequential scan — so a hot point query pays one am_open
// instead of one per candidate index. Only a miss (or a stale entry) opens
// the full candidate set and plans fresh. The write paths keep planStmt:
// DELETE and UPDATE open every index regardless, for maintenance.
func (s *Session) planStmtRead(op string, st sql.Statement, tb *catalog.Table, schema []types.Type, where sql.Expr) ([]openIndex, func(), accessPath, *Plan, error) {
	start := time.Now()
	defer func() { s.e.planNs.Add(uint64(time.Since(start))) }()

	key, autoArgs, pWhere, isAuto := s.planIntent(st, where)
	if isAuto {
		where = pWhere
		prev := s.boundArgs
		s.boundArgs = autoArgs
		defer func() { s.boundArgs = prev }()
	}
	gen := s.e.cat.Generation()
	if key != "" {
		if v, ok := s.e.planCache.Get(key, gen); ok {
			cp := v.(*cachedPlan)
			if idxs, closeIdx, err := s.openPlanIndexes(tb.Name, cp); err == nil {
				if path, plan, ok := s.bindCached(cp, tb, idxs); ok {
					plan.Operation = op
					return idxs, closeIdx, path, plan, nil
				}
				closeIdx()
			}
			// The entry survived the generation check but its index is gone
			// or no longer binds: replan against the full candidate set; the
			// Put below overwrites the stale entry.
		}
	}
	idxs, closeAll, err := s.openIndexes(tb.Name, true)
	if err != nil {
		return nil, nil, accessPath{}, nil, err
	}
	path, plan, err := s.planAccess(tb, schema, where, idxs)
	if err != nil {
		closeAll()
		return nil, nil, accessPath{}, nil, err
	}
	plan.Operation = op
	if key != "" && s.e.cat.Generation() == gen {
		s.e.planCache.Put(key, gen, s.cacheEntry(op, path, plan))
	}
	return idxs, closeAll, path, plan, nil
}

// openPlanIndexes opens exactly the indexes a cached plan scans: the chosen
// one, or none for a cached sequential scan. An error means the plan cannot
// be honoured against the live catalog (its index vanished inside the
// cache-probe window) and the caller must replan fresh.
func (s *Session) openPlanIndexes(table string, cp *cachedPlan) ([]openIndex, func(), error) {
	if cp.index == "" {
		return nil, func() {}, nil
	}
	for _, ix := range s.e.cat.IndexesOn(table) {
		if !ix.Ready() || !strings.EqualFold(ix.Name, cp.index) {
			continue
		}
		desc, ps, err := s.indexDesc(ix)
		if err != nil {
			return nil, nil, err
		}
		desc.ReadOnly = true
		if err := s.callIndexFn("am_open", ps.Open, desc); err != nil {
			return nil, nil, err
		}
		closer := func() { s.callIndexFn("am_close", ps.Close, desc) }
		return []openIndex{{ix: ix, desc: desc, ps: ps}}, closer, nil
	}
	return nil, nil, errf(CodeInternal, "cached plan's index %q is gone", cp.index)
}

// planIntent derives the shared-cache key for the current statement: the
// prepared statement's normalized text when an EXECUTE is running, or the
// auto-parameterized deparse of an ad-hoc statement with a literal-only
// WHERE. An empty key means the cache is not consulted (caching disabled,
// no WHERE clause, or unparameterizable text).
func (s *Session) planIntent(st sql.Statement, where sql.Expr) (key string, autoArgs []types.Datum, pWhere sql.Expr, isAuto bool) {
	if !s.vars.PlanCache() {
		return "", nil, nil, false
	}
	if s.curPrep != nil {
		return s.curPrep.text, nil, nil, false
	}
	if st == nil || where == nil || sql.HasParams(st) {
		return "", nil, nil, false
	}
	k, argExprs, pw, ok := paramizedKey(st)
	if !ok {
		return "", nil, nil, false
	}
	args := make([]types.Datum, len(argExprs))
	for i, a := range argExprs {
		v, err := s.evalExpr(a, nil, nil, nil)
		if err != nil {
			return "", nil, nil, false
		}
		args[i] = v
	}
	return k, args, pw, true
}

// paramizedKey rewrites the statement's WHERE literals to placeholders and
// returns the deparsed normal form, the displaced literal expressions, and
// the rewritten WHERE (the tree planning runs against). Only
// SELECT/DELETE/UPDATE participate; everything else is unkeyed.
func paramizedKey(st sql.Statement) (string, []sql.Expr, sql.Expr, bool) {
	switch t := st.(type) {
	case *sql.Select:
		pw, args := sql.ParamizeWhere(t.Where)
		cl := *t
		cl.Where = pw
		return sql.Deparse(&cl), args, pw, true
	case *sql.Delete:
		pw, args := sql.ParamizeWhere(t.Where)
		cl := *t
		cl.Where = pw
		return sql.Deparse(&cl), args, pw, true
	case *sql.Update:
		pw, args := sql.ParamizeWhere(t.Where)
		cl := *t
		cl.Where = pw
		return sql.Deparse(&cl), args, pw, true
	}
	return "", nil, nil, false
}

// bindQual instantiates a qualification template with the session's bound
// arguments, coercing each parameter to its indexed column's type. A nil
// error with a non-nil qual means the template bound cleanly; any failure
// (unbound slot, NULL argument, coercion mismatch, column out of range after
// an index was rebuilt differently) makes the caller fall back to a fresh
// plan or a sequential scan.
func (s *Session) bindQual(t *qualTmpl, colTypes []types.Type) (*am.Qual, error) {
	if t == nil {
		return nil, nil
	}
	if t.op != am.QFunc {
		kids := make([]*am.Qual, len(t.children))
		for i, c := range t.children {
			q, err := s.bindQual(c, colTypes)
			if err != nil {
				return nil, err
			}
			kids[i] = q
		}
		return am.NewBoolQual(t.op, kids...), nil
	}
	if t.colPos < 0 || t.colPos >= len(colTypes) {
		return nil, errf(CodeInternal, "qualification column %d out of range", t.colPos)
	}
	c := t.constVal
	if t.paramOrd > 0 {
		if t.paramOrd > len(s.boundArgs) {
			return nil, errf(CodeInvalidParameter, "parameter $%d is not bound (%d argument(s) given)", t.paramOrd, len(s.boundArgs))
		}
		v := s.boundArgs[t.paramOrd-1]
		if v == nil {
			return nil, errf(CodeInvalidParameter, "parameter $%d is NULL: not indexable", t.paramOrd)
		}
		cv, err := s.coerce(v, colTypes[t.colPos])
		if err != nil {
			return nil, err
		}
		c = cv
	}
	return am.NewFuncQual(t.fn, t.colPos, c, t.colFirst), nil
}

// bindCached instantiates a cached plan against the indexes the statement
// just opened from the live catalog. false means the plan no longer binds
// (its index is gone, was rebuilt under a different opclass, or an argument
// refuses to coerce) and the caller replans fresh.
func (s *Session) bindCached(cp *cachedPlan, tb *catalog.Table, idxs []openIndex) (accessPath, *Plan, bool) {
	plan := &Plan{
		Table:      tb.Name,
		SeqCost:    cp.seqCost,
		BatchCap:   s.e.opts.ScanBatchSize,
		HasFilter:  cp.hasFilter,
		Cached:     true,
		CostSource: cp.costSource,
	}
	if cp.index == "" {
		return accessPath{}, plan, true
	}
	for i := range idxs {
		oi := &idxs[i]
		if !strings.EqualFold(oi.desc.Name, cp.index) || !strings.EqualFold(oi.desc.OpClass, cp.opClass) {
			continue
		}
		qual, err := s.bindQual(cp.qual, oi.desc.ColTypes)
		if err != nil || qual == nil {
			return accessPath{}, nil, false
		}
		plan.Choices = []PlanChoice{{
			Index: oi.desc.Name, AmName: oi.desc.AmName, OpClass: oi.desc.OpClass,
			Strategies: cp.strategies, Qual: qual.String(),
			Cost: cp.cost, Costed: cp.costed, Chosen: true,
		}}
		return accessPath{index: oi, qual: qual, tmpl: cp.qual, full: cp.full}, plan, true
	}
	return accessPath{}, nil, false
}

// cacheEntry converts a freshly planned access path into its shared-cache
// form.
func (s *Session) cacheEntry(op string, path accessPath, plan *Plan) *cachedPlan {
	cp := &cachedPlan{op: op, seqCost: plan.SeqCost, hasFilter: plan.HasFilter,
		full: path.full, costSource: plan.CostSource}
	if path.index != nil {
		cp.index = path.index.desc.Name
		cp.opClass = path.index.desc.OpClass
		cp.amName = path.index.desc.AmName
		cp.qual = path.tmpl
		for _, ch := range plan.Choices {
			if ch.Chosen {
				cp.strategies = ch.Strategies
				cp.cost = ch.Cost
				cp.costed = ch.Costed
				break
			}
		}
	}
	return cp
}
