package engine

import (
	"time"

	"repro/internal/storage"
)

// Checkpoint takes a fuzzy checkpoint and truncates the log: it appends a
// RecCheckpoint record carrying the active-transaction table (snapshotted
// atomically with the append), forces every buffer pool's dirty pages to
// their pagers, and rotates the log so the prefix recovery no longer needs
// is dropped. The truncation cutoff is the minimum of the checkpoint LSN
// and every live transaction's first record — computed at append time, so a
// transaction whose page writes were still in flight when the checkpoint
// was cut keeps its log suffix. Safe to call concurrently (checkpoints
// serialise on cpMu) and alongside running transactions.
func (e *Engine) Checkpoint() error {
	if e.log == nil {
		return nil
	}
	e.cpMu.Lock()
	defer e.cpMu.Unlock()
	_, cutoff, err := e.log.CheckpointCut()
	if err != nil {
		return err
	}
	e.mu.Lock()
	pools := make([]*storage.BufferPool, 0, len(e.spacePools))
	for _, bp := range e.spacePools {
		pools = append(pools, bp)
	}
	e.mu.Unlock()
	for _, bp := range pools {
		if err := bp.FlushAll(); err != nil {
			return err
		}
	}
	if _, err := e.log.TruncateTo(cutoff); err != nil {
		return err
	}
	e.walCheckpoints.Inc()
	e.cpLast.Store(e.log.Size())
	return nil
}

// startCheckpointer launches the background checkpoint daemon: every
// CheckpointInterval it checks whether the log grew past
// CheckpointThreshold since the last checkpoint and, if so, checkpoints. A
// negative interval disables the daemon (tests drive Checkpoint directly).
func (e *Engine) startCheckpointer() {
	if e.opts.CheckpointInterval < 0 {
		return
	}
	e.cpQuit = make(chan struct{})
	e.cpDone = make(chan struct{})
	go func() {
		defer close(e.cpDone)
		tick := time.NewTicker(e.opts.CheckpointInterval)
		defer tick.Stop()
		for {
			select {
			case <-e.cpQuit:
				return
			case <-tick.C:
			}
			if e.log.Size()-e.cpLast.Load() >= e.opts.CheckpointThreshold {
				// Errors here are sticky in the WAL and will surface to the
				// next committing session; the daemon just keeps its cadence.
				_ = e.Checkpoint()
			}
		}
	}()
}

// stopCheckpointer stops the daemon and waits for it to exit. Idempotent.
func (e *Engine) stopCheckpointer() {
	if e.cpQuit == nil {
		return
	}
	e.cpStop.Do(func() { close(e.cpQuit) })
	<-e.cpDone
}
