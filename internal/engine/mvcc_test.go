package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/chronon"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/wal"
)

// MVCC acceptance tests: snapshot-isolated reads take zero locks, return the
// pre-commit state while writers commit mid-scan (serial and parallel), the
// isolation levels map to the right read views, version chains survive crash
// recovery, and the vacuum reclaims only what no live snapshot can see.

// lockAcquires reads the engine-global lock.acquires counter.
func lockAcquires(e *Engine) uint64 {
	return e.Obs().Counter("lock.acquires").Load()
}

// seedRows creates table mv(a INTEGER, pad VARCHAR(64)) with n committed rows.
func seedRows(t *testing.T, s *Session, n int) {
	t.Helper()
	exec(t, s, `CREATE TABLE mv (a INTEGER, pad VARCHAR(64))`)
	exec(t, s, `BEGIN WORK`)
	for i := 0; i < n; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO mv VALUES (%d, 'padding-%d-abcdefghijklmnopqrstuvwxyz')`, i, i))
	}
	exec(t, s, `COMMIT WORK`)
}

// runMidScanCommit is the acceptance scenario: a reader opens a heap scan,
// pulls the first batch, then a writer session inserts and deletes rows and
// commits — all before the reader finishes. The reader must (a) never touch
// the lock manager and (b) return exactly the pre-commit row count.
func runMidScanCommit(t *testing.T, workers int) {
	t.Helper()
	e := memEngine(t)
	w := e.NewSession()
	defer w.Close()
	const n = 600
	seedRows(t, w, n)

	r := e.NewSession()
	defer r.Close()
	tb, err := r.catTable("mv")
	if err != nil {
		t.Fatal(err)
	}
	table, err := e.Table("mv")
	if err != nil {
		t.Fatal(err)
	}

	r.ec = obs.NewExecContext(e.Obs())
	defer func() { r.ec = nil }()
	h := e.captureSnapshot(0, false)
	defer e.releaseSnapshot(h)

	before := lockAcquires(e)
	it, err := r.openBatchScan(tb, table, table.Schema(), nil, accessPath{}, workers, h.snap)
	if err != nil {
		t.Fatal(err)
	}
	defer it.close()
	count := 0
	rb, err := it.next()
	if err != nil {
		t.Fatal(err)
	}
	if rb == nil {
		t.Fatal("empty first batch")
	}
	count += len(rb.rows)
	if got := lockAcquires(e); got != before {
		t.Fatalf("reader acquired %d locks opening the scan", got-before)
	}

	// Writer commits mid-scan: new rows, and deletions inside the scanned
	// range. Auto-commit statements, fully durable before the reader resumes.
	exec(t, w, `INSERT INTO mv VALUES (10000, 'post-snapshot')`)
	exec(t, w, `DELETE FROM mv WHERE a < 50`)
	afterWriter := lockAcquires(e)

	for {
		rb, err := it.next()
		if err != nil {
			t.Fatal(err)
		}
		if rb == nil {
			break
		}
		count += len(rb.rows)
	}
	if count != n {
		t.Fatalf("snapshot scan saw %d rows, want pre-commit %d", count, n)
	}
	if got := lockAcquires(e); got != afterWriter {
		t.Fatalf("reader acquired %d locks finishing the scan", got-afterWriter)
	}

	// A fresh statement-level read observes the committed writes.
	res := exec(t, w, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != n+1-50 {
		t.Fatalf("post-commit count %d, want %d", got, n+1-50)
	}
}

func TestSnapshotScanLockFreeSerial(t *testing.T) { runMidScanCommit(t, 1) }

func TestSnapshotScanLockFreeParallel(t *testing.T) {
	forceParallel(t)
	runMidScanCommit(t, 4)
}

// TestSelectTakesNoLocks proves the SQL-level read path is lock-free: the
// lock.acquires delta across SELECT statements is zero.
func TestSelectTakesNoLocks(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	seedRows(t, s, 40)

	before := lockAcquires(e)
	for i := 0; i < 5; i++ {
		res := exec(t, s, `SELECT COUNT(*) FROM mv WHERE a >= 0`)
		if got := res.Rows[0][0].(int64); got != 40 {
			t.Fatalf("count %d", got)
		}
	}
	if got := lockAcquires(e); got != before {
		t.Fatalf("SELECTs acquired %d locks, want 0", got-before)
	}
}

// TestIsolationLevels exercises the level → read-view mapping end to end
// through SQL on two sessions.
func TestIsolationLevels(t *testing.T) {
	e := memEngine(t)
	w := e.NewSession()
	defer w.Close()
	seedRows(t, w, 10)
	r := e.NewSession()
	defer r.Close()

	countR := func() int64 {
		res := exec(t, r, `SELECT COUNT(*) FROM mv`)
		return res.Rows[0][0].(int64)
	}

	// SNAPSHOT: the transaction's first read fixes the view for its whole
	// lifetime, regardless of concurrent commits.
	exec(t, r, `SET ISOLATION TO SNAPSHOT`)
	if r.Isolation() != lock.Snapshot {
		t.Fatalf("iso = %v", r.Isolation())
	}
	exec(t, r, `BEGIN WORK`)
	if got := countR(); got != 10 {
		t.Fatalf("snapshot first read: %d", got)
	}
	exec(t, w, `INSERT INTO mv VALUES (100, 'new')`)
	if got := countR(); got != 10 {
		t.Fatalf("SNAPSHOT tx saw concurrent commit: %d", got)
	}
	exec(t, r, `COMMIT WORK`)
	if got := countR(); got != 11 {
		t.Fatalf("after SNAPSHOT tx end: %d", got)
	}

	// REPEATABLE READ behaves the same on the read side (one view per tx).
	exec(t, r, `SET ISOLATION TO REPEATABLE READ`)
	exec(t, r, `BEGIN WORK`)
	if got := countR(); got != 11 {
		t.Fatalf("rr first read: %d", got)
	}
	exec(t, w, `INSERT INTO mv VALUES (101, 'newer')`)
	if got := countR(); got != 11 {
		t.Fatalf("REPEATABLE READ tx saw concurrent commit: %d", got)
	}
	exec(t, r, `ROLLBACK WORK`)

	// COMMITTED READ: each statement gets a fresh view, so the second read
	// sees the commit; uncommitted writes stay invisible.
	exec(t, r, `SET ISOLATION TO COMMITTED READ`)
	if got := countR(); got != 12 {
		t.Fatalf("committed read: %d", got)
	}
	exec(t, w, `BEGIN WORK`)
	exec(t, w, `INSERT INTO mv VALUES (102, 'uncommitted')`)
	if got := countR(); got != 12 {
		t.Fatalf("COMMITTED READ saw uncommitted row: %d", got)
	}

	// DIRTY READ sees the uncommitted insert.
	exec(t, r, `SET ISOLATION TO DIRTY READ`)
	if got := countR(); got != 13 {
		t.Fatalf("DIRTY READ missed uncommitted row: %d", got)
	}
	exec(t, w, `ROLLBACK WORK`)
	exec(t, r, `SET ISOLATION TO COMMITTED READ`)
	if got := countR(); got != 12 {
		t.Fatalf("after rollback: %d", got)
	}
}

// TestSnapshotWriteConflictVisibility: a SNAPSHOT transaction's own writes
// are visible to itself before commit and stamped atomically at commit.
func TestOwnWritesVisible(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	seedRows(t, s, 5)
	other := e.NewSession()
	defer other.Close()

	exec(t, s, `SET ISOLATION TO SNAPSHOT`)
	exec(t, s, `BEGIN WORK`)
	exec(t, s, `INSERT INTO mv VALUES (50, 'mine')`)
	exec(t, s, `UPDATE mv SET pad = 'changed' WHERE a = 0`)
	res := exec(t, s, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 6 {
		t.Fatalf("own insert invisible: %d", got)
	}
	res = exec(t, s, `SELECT pad FROM mv WHERE a = 0`)
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "changed" {
		t.Fatalf("own update invisible: %+v", res.Rows)
	}
	// Another session sees nothing until commit.
	res = exec(t, other, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 5 {
		t.Fatalf("uncommitted writes leaked: %d", got)
	}
	exec(t, s, `COMMIT WORK`)
	res = exec(t, other, `SELECT pad FROM mv WHERE a = 0`)
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "changed" {
		t.Fatalf("committed update not visible: %+v", res.Rows)
	}
}

// TestVersionChainCrashRecovery: committed version chains survive a crash;
// an in-flight transaction's versions are rolled back by recovery.
func TestVersionChainCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	seedRows(t, s, 20)
	exec(t, s, `UPDATE mv SET pad = 'v2' WHERE a < 5`)
	exec(t, s, `DELETE FROM mv WHERE a >= 15`)
	// Leave a transaction in flight at the crash: it must disappear.
	exec(t, s, `BEGIN WORK`)
	exec(t, s, `INSERT INTO mv VALUES (999, 'loser')`)
	exec(t, s, `UPDATE mv SET pad = 'loser' WHERE a = 6`)
	e.CrashForTesting()

	e2, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2 := e2.NewSession()
	defer s2.Close()
	res := exec(t, s2, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 15 {
		t.Fatalf("recovered count %d, want 15", got)
	}
	res = exec(t, s2, `SELECT COUNT(*) FROM mv WHERE pad = 'v2'`)
	if got := res.Rows[0][0].(int64); got != 5 {
		t.Fatalf("recovered updated rows %d, want 5", got)
	}
	res = exec(t, s2, `SELECT COUNT(*) FROM mv WHERE pad = 'loser'`)
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("loser transaction visible after recovery: %d", got)
	}
	// The recovered heap accepts new versions on the existing chains.
	exec(t, s2, `UPDATE mv SET pad = 'v3' WHERE a = 0`)
	res = exec(t, s2, `SELECT pad FROM mv WHERE a = 0`)
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "v3" {
		t.Fatalf("post-recovery update: %+v", res.Rows)
	}
}

// TestVacuumReclaimsDeadVersions: the vacuum frees versions below the oldest
// snapshot and leaves pinned ones alone.
func TestVacuumReclaimsDeadVersions(t *testing.T) {
	e := memEngine(t)
	w := e.NewSession()
	defer w.Close()
	seedRows(t, w, 20)

	// Pin a snapshot, then kill half the rows.
	r := e.NewSession()
	defer r.Close()
	exec(t, r, `SET ISOLATION TO SNAPSHOT`)
	exec(t, r, `BEGIN WORK`)
	res := exec(t, r, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 20 {
		t.Fatalf("pinned count %d", got)
	}
	exec(t, w, `DELETE FROM mv WHERE a < 10`)

	vacBase := e.Obs().Counter("mvcc.vacuumed").Load()
	n, err := e.VacuumNow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("vacuum reclaimed %d versions pinned by a live snapshot", n)
	}
	// The pinned snapshot still sees all 20 rows.
	res = exec(t, r, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 20 {
		t.Fatalf("pinned snapshot after vacuum: %d", got)
	}
	exec(t, r, `COMMIT WORK`)

	// Snapshot released: the dead versions fall below the horizon.
	n, err = e.VacuumNow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("vacuum reclaimed %d versions, want 10", n)
	}
	if got := e.Obs().Counter("mvcc.vacuumed").Load() - vacBase; got != 10 {
		t.Fatalf("mvcc.vacuumed delta %d, want 10", got)
	}
	res = exec(t, w, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("post-vacuum count %d", got)
	}
	// Idempotent: nothing left to reclaim.
	if n, _ := e.VacuumNow(); n != 0 {
		t.Fatalf("second vacuum reclaimed %d", n)
	}
}

// TestMvccCounters: versions_created moves on INSERT/UPDATE, versions_skipped
// on snapshot scans over invisible versions.
func TestMvccCounters(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	created := e.Obs().Counter("mvcc.versions_created")
	base := created.Load()
	seedRows(t, s, 8)
	if got := created.Load() - base; got != 8 {
		t.Fatalf("versions_created after seed: %d", got)
	}
	exec(t, s, `UPDATE mv SET pad = 'x' WHERE a = 1`)
	if got := created.Load() - base; got != 9 {
		t.Fatalf("versions_created after update: %d", got)
	}

	skipped := e.Obs().Counter("mvcc.versions_skipped")
	sbase := skipped.Load()
	exec(t, s, `DELETE FROM mv WHERE a = 2`)
	exec(t, s, `SELECT COUNT(*) FROM mv`) // scans past the dead version
	if got := skipped.Load() - sbase; got == 0 {
		t.Fatal("versions_skipped did not move over a dead version")
	}
}

// TestExplainSnapshotLine: EXPLAIN SELECT renders the read view's cut.
func TestExplainSnapshotLine(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	seedRows(t, s, 3)
	res := exec(t, s, `EXPLAIN SELECT a FROM mv WHERE a = 1`)
	if res.Plan == nil || res.Plan.SnapshotLSN == 0 {
		t.Fatalf("EXPLAIN captured no snapshot: %+v", res.Plan)
	}
	var text strings.Builder
	for _, row := range res.Rows {
		text.WriteString(row[0].(string))
		text.WriteByte('\n')
	}
	want := fmt.Sprintf("snapshot=%d", res.Plan.SnapshotLSN)
	if !strings.Contains(text.String(), want) {
		t.Fatalf("EXPLAIN output missing %q:\n%s", want, text.String())
	}
}

// TestSnapshotIsolationUnknownLevelRejected keeps the error path intact.
func TestSetIsolationSnapshotRoundTrip(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	for stmt, want := range map[string]lock.IsolationLevel{
		`SET ISOLATION TO DIRTY READ`:      lock.DirtyRead,
		`SET ISOLATION TO COMMITTED READ`:  lock.CommittedRead,
		`SET ISOLATION TO REPEATABLE READ`: lock.RepeatableRead,
		`SET ISOLATION SNAPSHOT`:           lock.Snapshot,
	} {
		exec(t, s, stmt)
		if s.Isolation() != want {
			t.Fatalf("%s: iso %v, want %v", stmt, s.Isolation(), want)
		}
	}
}

// TestVacuumSparesSnapshotActiveWindow reproduces the commit-window race: a
// snapshot captured after a deleter wrote its commit stamps (and its commit
// record) but before its deactivation carries the deleter in Active, so it
// still sees the deleted row even though the stamp sits below the snapshot's
// ReadLSN. The vacuum must treat every transaction pinned in a registered
// snapshot's Active set as live, or it reclaims the row out from under the
// registered reader.
func TestVacuumSparesSnapshotActiveWindow(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	seedRows(t, s, 1)
	table, err := e.Table("mv")
	if err != nil {
		t.Fatal(err)
	}
	var rid heap.RowID
	if err := table.Scan(func(r heap.RowID, _ []types.Datum) (bool, error) { rid = r; return false, nil }); err != nil {
		t.Fatal(err)
	}

	// Deleter, driven through commitTx's exact sequence but paused inside
	// the window between CommitWith and mvccEnd.
	tx := e.mvccBegin()
	if _, err := e.log.Begin(tx); err != nil {
		t.Fatal(err)
	}
	if ok, err := table.Delete(tx, rid); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if err := table.StampVersion(tx, rid, heap.StampEnd, e.nextStamp()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.log.CommitWith(tx, wal.CommitGroup); err != nil {
		t.Fatal(err)
	}
	h := e.captureSnapshot(0, false) // captured inside the window
	defer e.releaseSnapshot(h)
	e.mvccEnd(tx)

	if _, ok := h.snap.Active[tx]; !ok {
		t.Fatal("setup: snapshot must carry the committing deleter in Active")
	}
	if _, ok, err := table.GetVersion(rid, h.snap); err != nil || !ok {
		t.Fatalf("snapshot must still see the deleted row: %v %v", ok, err)
	}
	if n, err := e.VacuumNow(); err != nil || n != 0 {
		t.Fatalf("vacuum reclaimed %d versions visible to a registered snapshot (err %v)", n, err)
	}
	if _, ok, err := table.GetVersion(rid, h.snap); err != nil || !ok {
		t.Fatalf("row vanished under the registered snapshot: %v %v", ok, err)
	}

	// Released, the version falls below the horizon and is reclaimed.
	e.releaseSnapshot(h)
	if n, err := e.VacuumNow(); err != nil || n != 1 {
		t.Fatalf("post-release vacuum reclaimed %d, want 1 (err %v)", n, err)
	}
}

// TestNoWALRollbackStampRepair: a NoWAL ROLLBACK cannot physically undo the
// aborted deleter's end stamp; a following DELETE/UPDATE must repair the
// abandoned stamp inline instead of reading the row as "already ended" (a
// silent 0-row DELETE, an ErrNoSuchRow UPDATE) until the next vacuum pass.
func TestNoWALRollbackStampRepair(t *testing.T) {
	e, err := Open(Options{
		Clock:          chronon.NewVirtualClock(chronon.MustParse("9/97")),
		NoWAL:          true,
		VacuumInterval: -1, // no daemon: nothing repairs the stamps for us
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	s := e.NewSession()
	defer s.Close()
	seedRows(t, s, 2)

	exec(t, s, `BEGIN WORK`)
	exec(t, s, `DELETE FROM mv WHERE a = 0`)
	exec(t, s, `UPDATE mv SET pad = 'doomed' WHERE a = 1`)
	exec(t, s, `ROLLBACK WORK`)

	// The rows are still visible...
	res := exec(t, s, `SELECT COUNT(*) FROM mv`)
	if got := res.Rows[0][0].(int64); got != 2 {
		t.Fatalf("post-rollback count %d, want 2", got)
	}
	// ...and immediately writable again.
	if res := exec(t, s, `UPDATE mv SET pad = 'second try' WHERE a = 0`); res.Affected != 1 {
		t.Fatalf("update after rollback affected %d rows, want 1", res.Affected)
	}
	if res := exec(t, s, `DELETE FROM mv WHERE a = 1`); res.Affected != 1 {
		t.Fatalf("delete after rollback affected %d rows, want 1", res.Affected)
	}
	res = exec(t, s, `SELECT pad FROM mv WHERE a = 0`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "second try" {
		t.Fatalf("post-repair row: %+v", res.Rows)
	}
}
