package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/am"
	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/types"
)

// Intra-query parallel scans: when the session's SET PARALLEL degree allows
// it, the server offers the chosen access path a degree of parallelism. A
// virtual index accepts through its optional am_parallelscan purpose
// function, returning one partition ScanDesc per worker; the heap accepts by
// splitting its data pages into contiguous ranges. A bounded pool of worker
// goroutines then drives the partitions through the normal am_getmulti batch
// protocol and a merger funnels their batches back into the ordinary
// batchIterator pipeline, so everything downstream (WHERE re-filter,
// projection, row-at-a-time spill) is unchanged. Only SELECT parallelises:
// the interleaved DELETE keeps the paper's Section 5.5 row-at-a-time
// cursor/delete interplay, which is defined tuple by tuple on one cursor.

// parallelObs caches the parallel.* counters (registered in
// registerCoreCounters so SYSPROFILE always lists them): fan-out volume,
// worker utilisation (busy_ns vs send_wait_ns — time filling batches vs time
// blocked on a full merge queue), and merged throughput.
type parallelObs struct {
	Scans      *obs.Counter // parallel scans executed
	Workers    *obs.Counter // workers launched across all parallel scans
	Batches    *obs.Counter // batches merged from workers
	Rows       *obs.Counter // rows produced by workers
	BusyNs     *obs.Counter // worker time spent filling/resolving batches
	SendWaitNs *obs.Counter // worker time blocked sending into the merge queue
}

// scanDegree decides how many workers to offer a SELECT scan: the SET
// PARALLEL knob, capped by GOMAXPROCS, gated by what the access path can
// support — an index must bind am_parallelscan and the batch protocol, and
// am_scancost must suggest enough work to amortise the fan-out; a heap scan
// needs at least one data page per worker.
func (s *Session) scanDegree(path accessPath, plan *Plan, table *heap.Table) int {
	deg := s.vars.Parallel()
	if max := runtime.GOMAXPROCS(0); deg > max {
		deg = max
	}
	if deg < 2 {
		return 1
	}
	if path.index != nil {
		ps := path.index.ps
		// The parallel protocol is batch-only: partitions are driven through
		// am_getmulti, so a getnext-only access method stays serial.
		if ps.ParallelScan == nil || ps.GetMulti == nil || ps.BeginScan == nil {
			return 1
		}
		if ch := plan.Chosen(); ch != nil && ch.Costed && ch.Cost < 2 {
			return 1 // am_scancost says the scan is too small to fan out
		}
		return deg
	}
	pages := table.Pages()
	if pages < 2 {
		return 1
	}
	if deg > pages {
		deg = pages
	}
	return deg
}

// stmtContext returns the cancellation context of the statement currently
// executing (ExecCtx threads it in; Background between statements).
func (s *Session) stmtContext() context.Context {
	if s.stmtCtx != nil {
		return s.stmtCtx
	}
	return context.Background()
}

// parMsg is one message from a worker to the merger: a batch, or the error
// that stopped the worker.
type parMsg struct {
	rb  *rowBatch
	err error
}

// parallelBatchIter is the merge end of a parallel scan. Workers send
// batches into out; next() receives them (or the first worker error, or the
// statement context's cancellation). close() shuts the pool down and waits
// for every worker to exit before tearing down the parent scan, so early
// termination (first-row-only consumers, statement errors) never leaks a
// goroutine into a scan the server is about to end.
type parallelBatchIter struct {
	s       *Session
	out     chan parMsg
	stop    chan struct{}
	wg      sync.WaitGroup
	stopped bool
	closed  bool
	cleanup func() // parent-scan teardown (am_endscan), after workers exit
}

// startParallel launches one goroutine per worker, each with its own mi
// context (mi contexts are single-threaded; the tracer they share is not),
// plus a merger goroutine that closes the stream once every worker exits.
func (s *Session) startParallel(workers int, run func(it *parallelBatchIter, w int, wctx *mi.Context) error, cleanup func()) *parallelBatchIter {
	it := &parallelBatchIter{
		s:       s,
		out:     make(chan parMsg, workers),
		stop:    make(chan struct{}),
		cleanup: cleanup,
	}
	s.e.parObs.Scans.Inc()
	s.e.parObs.Workers.Add(uint64(workers))
	for w := 0; w < workers; w++ {
		it.wg.Add(1)
		wctx := mi.NewContext(s.id, s.e.tracer)
		go func(w int, wctx *mi.Context) {
			defer it.wg.Done()
			if err := run(it, w, wctx); err != nil {
				it.send(parMsg{err: err})
			}
		}(w, wctx)
	}
	go func() {
		it.wg.Wait()
		close(it.out)
	}()
	return it
}

// send delivers a message unless the scan is shutting down; false tells the
// worker to stop. The channel's buffer (one slot per worker) guarantees the
// single error message a worker may send never deadlocks against a merger
// that has stopped receiving.
func (it *parallelBatchIter) send(m parMsg) bool {
	select {
	case it.out <- m:
		return true
	case <-it.stop:
		return false
	}
}

func (it *parallelBatchIter) halt() {
	if !it.stopped {
		it.stopped = true
		close(it.stop)
	}
}

func (it *parallelBatchIter) next() (*rowBatch, error) {
	ctx := it.s.stmtContext()
	select {
	case m, ok := <-it.out:
		if !ok {
			return nil, nil
		}
		if m.err != nil {
			it.halt()
			return nil, m.err
		}
		return m.rb, nil
	case <-ctx.Done():
		it.halt()
		return nil, ctx.Err()
	}
}

// close stops the workers, drains the stream so none stay blocked on a
// send, waits for all of them to exit (the merger closes out only after
// wg.Wait), and then ends the parent scan.
func (it *parallelBatchIter) close() {
	if it.closed {
		return
	}
	it.closed = true
	it.halt()
	for range it.out {
	}
	if it.cleanup != nil {
		it.cleanup()
	}
}

// newParallelIndexIter begins the parent scan, offers the access method the
// degree through am_parallelscan, and fans the returned partitions out to
// workers. A declined offer (nil or fewer than two partitions) falls back to
// the serial batch protocol on the scan already begun.
func (s *Session) newParallelIndexIter(oi *openIndex, table *heap.Table, qual *am.Qual, batch, workers int, snap *heap.Snapshot) (batchIterator, error) {
	if batch < 1 {
		batch = 1
	}
	sd := &am.ScanDesc{Index: oi.desc, Qual: qual, BatchCap: batch, Obs: s.ec, Snapshot: snap}
	s.amCall("am_beginscan", oi.desc.Name)
	err := oi.ps.BeginScan(s.ctx, sd)
	s.ctx.EndFunction()
	if err != nil {
		return nil, err
	}
	s.amCall("am_parallelscan", oi.desc.Name)
	parts, err := oi.ps.ParallelScan(s.ctx, sd, workers)
	s.ctx.EndFunction()
	if err != nil {
		s.endScan(oi, sd)
		return nil, err
	}
	if len(parts) < 2 {
		return s.wrapIndexIter(oi, table, sd), nil
	}
	run := func(it *parallelBatchIter, w int, wctx *mi.Context) error {
		return s.runIndexWorker(it, parts[w], oi, table, wctx)
	}
	return s.startParallel(len(parts), run, func() { s.endScan(oi, sd) }), nil
}

// runIndexWorker drives one partition descriptor through am_getmulti until
// the partition reports exhaustion (a short batch) or the scan stops.
func (s *Session) runIndexWorker(it *parallelBatchIter, sd *am.ScanDesc, oi *openIndex, table *heap.Table, wctx *mi.Context) error {
	po := s.e.parObs
	for {
		select {
		case <-it.stop:
			return nil
		default:
		}
		t0 := time.Now()
		s.amCall("am_getmulti", oi.desc.Name)
		n, err := am.FillFrom(wctx, sd, oi.ps.GetMulti)
		wctx.EndFunction()
		if err != nil {
			return err
		}
		done := n < sd.Batch.Cap()
		if n > 0 {
			rb := &rowBatch{
				rids: make([]heap.RowID, 0, n),
				rows: make([][]types.Datum, 0, n),
			}
			// Workers share the statement's immutable snapshot: each rid the
			// partition returns is resolved under it, invisible versions drop.
			for i := 0; i < n; i++ {
				rid := sd.Batch.RowIDs[i]
				row, ok, err := table.GetVersion(rid, sd.Snapshot)
				if err != nil {
					if errors.Is(err, heap.ErrNoSuchRow) {
						continue // entry whose cell was reclaimed: dead by definition
					}
					return errf(CodeInternal, "index %s returned dangling %v: %w", oi.desc.Name, rid, err)
				}
				if !ok {
					continue
				}
				rb.rids = append(rb.rids, rid)
				rb.rows = append(rb.rows, row)
			}
			po.BusyNs.Add(uint64(time.Since(t0)))
			if len(rb.rows) > 0 {
				po.Rows.Add(uint64(len(rb.rows)))
				po.Batches.Inc()
				ts := time.Now()
				if !it.send(parMsg{rb: rb}) {
					return nil
				}
				po.SendWaitNs.Add(uint64(time.Since(ts)))
			}
		} else {
			po.BusyNs.Add(uint64(time.Since(t0)))
		}
		if done {
			return nil
		}
	}
}

// newParallelHeapIter splits the table's data pages into one contiguous
// range per worker (pages start at PageID 2; NewRangeScanner clamps the last
// range to the current page count).
func (s *Session) newParallelHeapIter(table *heap.Table, batch, workers int, snap *heap.Snapshot) batchIterator {
	pages := table.Pages()
	per := (pages + workers - 1) / workers
	scanners := make([]*heap.Scanner, workers)
	start := storage.PageID(2)
	for w := range scanners {
		end := start + storage.PageID(per)
		scanners[w] = table.NewRangeScanner(snap, start, end)
		start = end
	}
	run := func(it *parallelBatchIter, w int, wctx *mi.Context) error {
		po := s.e.parObs
		sc := scanners[w]
		for {
			select {
			case <-it.stop:
				return nil
			default:
			}
			t0 := time.Now()
			rb, err := sc.NextBatch(batch)
			if err != nil {
				return err
			}
			if rb == nil {
				return nil
			}
			s.ec.AddScanned(len(rb.Rows))
			po.BusyNs.Add(uint64(time.Since(t0)))
			po.Rows.Add(uint64(len(rb.Rows)))
			po.Batches.Inc()
			ts := time.Now()
			if !it.send(parMsg{rb: &rowBatch{rids: rb.RowIDs, rows: rb.Rows}}) {
				return nil
			}
			po.SendWaitNs.Add(uint64(time.Since(ts)))
		}
	}
	return s.startParallel(workers, run, nil)
}
