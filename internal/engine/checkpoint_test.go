package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chronon"
)

// dirEngine opens an on-disk engine with the background checkpointer
// disabled, so tests drive Checkpoint explicitly.
func dirEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(Options{
		Dir:                dir,
		Clock:              chronon.NewVirtualClock(chronon.MustParse("9/97")),
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// crashHard abandons the engine with the log durable but the buffer pools
// NOT flushed — the harshest crash for redo: committed work exists only in
// the log.
func crashHard(e *Engine) {
	e.closed.Store(true)
	e.stopCheckpointer()
	if e.log != nil {
		e.log.Flush()
		e.log.Close()
	}
	e.cat.Save()
}

func TestCheckpointShrinksLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	e := dirEngine(t, dir)
	s := e.NewSession()
	exec(t, s, `CREATE TABLE t (a INTEGER, pad VARCHAR(64))`)
	for i := 0; i < 50; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d-0123456789abcdefghijklmnopqrstuvwxyz')`, i, i))
	}
	walPath := filepath.Join(dir, "wal.log")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := st.Size()

	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(walPath)
	if st.Size() >= sizeBefore {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", sizeBefore, st.Size())
	}
	if got := e.Obs().Snapshot().Get("wal.checkpoints"); got != 1 {
		t.Fatalf("wal.checkpoints = %d", got)
	}
	if e.Obs().Snapshot().Get("wal.truncated_bytes") == 0 {
		t.Fatal("wal.truncated_bytes not counted")
	}

	// Commit more work after the checkpoint, then crash with the pools
	// unflushed: recovery must replay it from the rotated log.
	for i := 50; i < 60; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'post-checkpoint')`, i))
	}
	crashHard(e)

	e2, err := Open(Options{Dir: dir, Clock: chronon.NewVirtualClock(chronon.MustParse("9/97"))})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2 := e2.NewSession()
	defer s2.Close()
	res := exec(t, s2, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0] != int64(60) {
		t.Fatalf("rows after recovery from rotated log: %v", res.Rows[0][0])
	}
}

func TestCheckpointKeepsOpenTransactionUndoable(t *testing.T) {
	dir := t.TempDir()
	e := dirEngine(t, dir)
	s := e.NewSession()
	exec(t, s, `CREATE TABLE t (a INTEGER)`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	// Checkpoint with an explicit transaction mid-flight, then crash: the
	// open transaction must survive truncation as an undoable loser.
	exec(t, s, `BEGIN`)
	exec(t, s, `INSERT INTO t VALUES (2)`)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	exec(t, s, `INSERT INTO t VALUES (3)`)
	e.CrashForTesting() // flushes pools: the loser's pages are on disk

	e2, err := Open(Options{Dir: dir, Clock: chronon.NewVirtualClock(chronon.MustParse("9/97"))})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2 := e2.NewSession()
	defer s2.Close()
	res := exec(t, s2, `SELECT a FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1) {
		t.Fatalf("loser not undone across checkpoint: %v", res.Rows)
	}
}

func TestBackgroundCheckpointerTriggers(t *testing.T) {
	e, err := Open(Options{
		Clock:               chronon.NewVirtualClock(chronon.MustParse("9/97")),
		CheckpointInterval:  2 * time.Millisecond,
		CheckpointThreshold: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.NewSession()
	defer s.Close()
	exec(t, s, `CREATE TABLE t (a INTEGER, pad VARCHAR(64))`)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		exec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')`, i))
		if e.Obs().Snapshot().Get("wal.checkpoints") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never fired")
		}
	}
}
