package engine

// Online index build (two-phase, PostgreSQL CREATE INDEX CONCURRENTLY
// style, adapted to this engine's strict-2PL writers and MVCC readers):
//
//   Phase 0 (short table X latch): the index is entered into SYSINDICES in
//   the BUILDING state (invisible to the planner, skipped by DML index
//   maintenance), its storage is created via am_create/am_open under the
//   building session's transaction, a side log is registered so every
//   later writer statement captures its index-relevant changes, and an
//   MVCC snapshot is taken. The latch makes the hand-off exact: a writer
//   that committed before the latch is fully visible to the snapshot and
//   never saw the side log; a writer that runs after it sees the side log
//   registration before it touches any row. The two row sets are disjoint
//   and their union is exactly the committed table.
//
//   Phase 1 (no locks): the table is scanned under the snapshot in
//   am_getmulti-style batches and bulk-loaded through the AM's optional
//   am_build slot (sort-tile-recursive bottom-up packing in the tree
//   blades) or, when the AM lacks the slot, through batched am_insert.
//   Concurrent DML proceeds untouched; committed changes queue in the side
//   log (appended at commit, in commit order, while the committing
//   transaction still holds its table X lock).
//
//   Publish (short table X latch again): the side-log tail is replayed,
//   the log closes, the building transaction commits (making every index
//   page durable), and the catalog entry flips to READY. A crash anywhere
//   before that commit rolls back all index storage physically and leaves
//   a BUILDING catalog entry that Open purges — no half-built index is
//   ever visible.

import (
	"strings"
	"sync"
	"time"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/sql"
	"repro/internal/types"
)

// sideOp is one captured DML change relevant to a building index: the row
// id plus the indexed-column projection (an UPDATE captures as a delete of
// the old projection followed by an insert of the new one).
type sideOp struct {
	insert bool
	rid    heap.RowID
	vals   []types.Datum
}

// indexBuild is one in-flight online build: the side log plus the
// identifiers writer statements need to find it.
type indexBuild struct {
	table string // lower-cased table name
	index string // index name as created
	desc  *am.IndexDesc

	mu     sync.Mutex
	ops    []sideOp
	closed bool
}

// append queues captured ops; a closed log (the build is publishing or
// failed) drops them — the index either already replayed everything under
// the final latch or is being torn down.
func (b *indexBuild) append(ops []sideOp) {
	b.mu.Lock()
	if !b.closed {
		b.ops = append(b.ops, ops...)
	}
	b.mu.Unlock()
}

// drain takes the currently queued ops (in capture = commit order).
func (b *indexBuild) drain() []sideOp {
	b.mu.Lock()
	ops := b.ops
	b.ops = nil
	b.mu.Unlock()
	return ops
}

// close stops further capture.
func (b *indexBuild) close() {
	b.mu.Lock()
	b.closed = true
	b.ops = nil
	b.mu.Unlock()
}

// pendingSideOp is a captured-but-uncommitted change held in the writing
// session until its transaction resolves: flushed to the build's side log
// at commit (while the table X lock is still held, so log order is commit
// order), discarded at rollback.
type pendingSideOp struct {
	b  *indexBuild
	op sideOp
}

// registerBuild publishes a build so writer statements start capturing.
func (e *Engine) registerBuild(b *indexBuild) {
	e.buildsMu.Lock()
	e.builds = append(e.builds, b)
	e.buildsMu.Unlock()
}

// unregisterBuild removes a finished (or failed) build.
func (e *Engine) unregisterBuild(b *indexBuild) {
	e.buildsMu.Lock()
	for i, x := range e.builds {
		if x == b {
			e.builds = append(e.builds[:i], e.builds[i+1:]...)
			break
		}
	}
	e.buildsMu.Unlock()
}

// activeBuilds returns the builds capturing DML on a table. Writer
// statements call it after taking their table X lock, so the phase-0
// latch orders registration against every writer exactly.
func (e *Engine) activeBuilds(table string) []*indexBuild {
	e.buildsMu.Lock()
	defer e.buildsMu.Unlock()
	var out []*indexBuild
	for _, b := range e.builds {
		if b.table == strings.ToLower(table) {
			out = append(out, b)
		}
	}
	return out
}

// captureSide queues one side-log entry on the session, to be flushed at
// commit or dropped at rollback.
func (s *Session) captureSide(builds []*indexBuild, insert bool, rid heap.RowID, row []types.Datum) {
	for _, b := range builds {
		s.pendingSide = append(s.pendingSide, pendingSideOp{
			b:  b,
			op: sideOp{insert: insert, rid: rid, vals: projectIndexed(b.desc, row)},
		})
	}
}

// flushSideOps moves the committed transaction's captured changes into
// their side logs. Called from commitTx after the commit record is durable
// and the transaction deactivated, but before its table X locks release —
// so each build's log receives whole transactions in commit order.
func (s *Session) flushSideOps() {
	byBuild := make(map[*indexBuild][]sideOp)
	for _, p := range s.pendingSide {
		byBuild[p.b] = append(byBuild[p.b], p.op)
	}
	for b, ops := range byBuild {
		b.append(ops)
	}
	s.pendingSide = s.pendingSide[:0]
}

// buildStage invokes the test-only crash hook at a named point of the
// build ("bulk", "replay", "prepublish"). A non-nil error aborts the build
// as if the stage itself had failed.
func (s *Session) buildStage(stage string) error {
	if h := s.e.buildHook; h != nil {
		return h(stage)
	}
	return nil
}

// tableLatch takes a short table X latch under its own lock-only internal
// transaction (the vacuumTable idiom: no WAL begin since no page is
// written under it) and returns the release function. It blocks until
// every in-flight writer transaction on the table has fully resolved —
// and, because commitTx deactivates the transaction and flushes side ops
// before releasing locks, everything those writers did is either visible
// to a snapshot captured under the latch or already in the side log.
func (e *Engine) tableLatch(spaceID uint32) func() {
	tx := e.mvccBegin()
	e.lm.Acquire(lock.TxID(tx), lock.Resource{Kind: lock.KindTable, A: uint64(spaceID)}, lock.Exclusive)
	return func() {
		e.lm.ReleaseAll(lock.TxID(tx))
		e.mvccEnd(tx)
	}
}

// buildFeed streams a snapshot scan of the table as am.ScanBatch batches:
// the AmBuildNext feed an am_build slot pulls, and what the batched
// am_insert fallback drains. Returns nil at exhaustion.
func (s *Session) buildFeed(table *heap.Table, desc *am.IndexDesc, snap *heap.Snapshot) am.AmBuildNext {
	sc := table.NewScanner(snap)
	batch := am.NewScanBatch(s.e.opts.ScanBatchSize)
	return func() (*am.ScanBatch, error) {
		rb, err := sc.NextBatch(batch.Cap())
		if err != nil || rb == nil {
			return nil, err
		}
		batch.Reset()
		for i := range rb.RowIDs {
			batch.Append(rb.RowIDs[i], projectIndexed(desc, rb.Rows[i]))
		}
		return batch, nil
	}
}

// buildMode selects how the bulk phase feeds the new index.
type buildMode int

const (
	// buildAuto (no build= parameter): am_build when the AM offers it,
	// else batched am_insert.
	buildAuto buildMode = iota
	// buildBulk (build='bulk'): require am_build; error if the AM lacks it.
	buildBulk
	// buildInsert (build='insert'): force the row-at-a-time path.
	buildInsert
)

// bulkPopulate loads a freshly created index from the snapshot scan:
// through am_build when the AM offers it (and the index was not created
// with build=insert), else through batched am_insert. Returns rows loaded.
func (s *Session) bulkPopulate(table *heap.Table, desc *am.IndexDesc, ps *am.PurposeSet, snap *heap.Snapshot, mode buildMode) (int, error) {
	if mode == buildBulk && ps.Build == nil {
		return 0, errf(CodeFeature, "access method %s has no am_build purpose function (build='bulk' unavailable)", desc.AmName)
	}
	next := s.buildFeed(table, desc, snap)
	if ps.Build != nil && mode != buildInsert {
		s.amCall("am_build", desc.Name)
		n, err := ps.Build(s.ctx, desc, next)
		s.ctx.EndFunction()
		if err == nil {
			s.e.idxRowsBulk.Add(uint64(n))
		}
		return n, err
	}
	if ps.Insert == nil {
		return 0, errf(CodeFeature, "access method %s cannot insert", desc.AmName)
	}
	n := 0
	for {
		b, err := next()
		if err != nil {
			return n, err
		}
		if b == nil {
			s.e.idxRowsBulk.Add(uint64(n))
			return n, nil
		}
		for i := 0; i < b.N; i++ {
			s.amCall("am_insert", desc.Name)
			err := ps.Insert(s.ctx, desc, b.Rows[i], b.RowIDs[i])
			s.ctx.EndFunction()
			if err != nil {
				return n, err
			}
		}
		n += b.N
	}
}

// replaySide applies the build's queued side-log ops to the index, in
// capture order, and returns how many were applied. Loops until a drain
// comes back empty so a lock-free catch-up pass converges.
func (s *Session) replaySide(b *indexBuild, ps *am.PurposeSet) (int, error) {
	n := 0
	for {
		ops := b.drain()
		if len(ops) == 0 {
			return n, nil
		}
		for _, op := range ops {
			if op.insert {
				if ps.Insert == nil {
					return n, errf(CodeFeature, "access method %s cannot insert", b.desc.AmName)
				}
				s.amCall("am_insert", b.desc.Name)
				err := ps.Insert(s.ctx, b.desc, op.vals, op.rid)
				s.ctx.EndFunction()
				if err != nil {
					return n, err
				}
			} else {
				if ps.Delete == nil {
					return n, errf(CodeFeature, "access method %s cannot delete", b.desc.AmName)
				}
				s.amCall("am_delete", b.desc.Name)
				err := ps.Delete(s.ctx, b.desc, op.vals, op.rid)
				s.ctx.EndFunction()
				if err != nil {
					return n, err
				}
			}
			n++
		}
		s.e.idxReplayed.Add(uint64(len(ops)))
	}
}

// stripBuildMode pops the engine-reserved "build" index parameter
// (build=bulk|insert; blades reject unknown parameters, so it must never
// reach parseConfig). Returns the build mode and an error for bad values.
func stripBuildMode(params map[string]string) (buildMode, error) {
	for k, v := range params {
		if !strings.EqualFold(k, "build") {
			continue
		}
		delete(params, k)
		switch {
		case strings.EqualFold(v, "bulk"):
			return buildBulk, nil
		case strings.EqualFold(v, "insert"):
			return buildInsert, nil
		default:
			return buildAuto, errf(CodeInvalidParameter, "bad build mode %q (want bulk or insert)", v)
		}
	}
	return buildAuto, nil
}

// buildIndexOnline runs the two-phase online build for an auto-commit
// CREATE INDEX (rebuild=false) or ALTER INDEX ... REBUILD (rebuild=true).
// On entry the catalog Index must NOT yet be registered (create) or must
// be registered READY (rebuild); the session transaction is the statement
// auto-transaction and holds no locks.
func (s *Session) buildIndexOnline(tb *catalog.Table, ix *catalog.Index, mode buildMode, rebuild bool) (err error) {
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return err
	}
	desc, ps, err := s.indexDesc(ix)
	if err != nil {
		return err
	}

	// Phase 0 — prepare under a short table X latch.
	release := s.e.tableLatch(tb.SpaceID)
	latched := true
	unlatch := func() {
		if latched {
			release()
			latched = false
		}
	}
	defer unlatch()

	ix.State = catalog.IndexBuilding
	if rebuild {
		// Drop the old storage under the building transaction; the BUILDING
		// state keeps the planner and DML maintenance away from the storage
		// while it is gone. (A crash mid-rebuild therefore purges the index
		// from the catalog — recreate it; see DESIGN.md.)
		if err := s.callIndexFn("am_open", ps.Open, desc); err != nil {
			return err
		}
		if err := s.callIndexFn("am_drop", ps.Drop, desc); err != nil {
			return err
		}
	} else {
		if err := s.e.cat.AddIndex(ix); err != nil {
			return err
		}
	}
	catEntered := true
	opened := false
	b := &indexBuild{table: strings.ToLower(tb.Name), index: ix.Name, desc: desc}
	registered := false
	var snap *heldSnap

	// cleanup tears down a failed build (crash-hook failures included): the
	// side log closes, the catalog entry and AM records go away, and the
	// index storage is dropped — the statement's rollback then physically
	// undoes the page writes too (or, on a NoWAL engine, the drop already
	// freed them). Best-effort on a crashed engine.
	defer func() {
		if err == nil {
			return
		}
		if registered {
			b.close()
			s.e.unregisterBuild(b)
		}
		s.e.releaseSnapshot(snap)
		if s.e.closed.Load() {
			return // CrashForTesting abandoned the engine; recovery cleans up
		}
		if opened && ps.Drop != nil {
			s.amCall("am_drop", desc.Name)
			ps.Drop(s.ctx, desc)
			s.ctx.EndFunction()
		}
		if catEntered {
			s.e.cat.DropIndex(ix.Name)
		}
		s.e.cat.AMRecordsPurgeIndex(ix.Name)
		s.e.cat.Save()
	}()

	if err = s.callIndexFn("am_create", ps.Create, desc); err != nil {
		return err
	}
	opened = true
	if err = s.callIndexFn("am_open", ps.Open, desc); err != nil {
		return err
	}
	// Persist the BUILDING entry: from here a crash leaves a catalog row
	// that Open purges together with the AM records am_create stored.
	if err = s.e.cat.Save(); err != nil {
		return err
	}
	s.e.registerBuild(b)
	registered = true
	snap = s.e.captureSnapshot(s.tx, false)
	unlatch()

	// Phase 1 — bulk-load from the snapshot scan, no locks held.
	if _, err = s.bulkPopulate(table, desc, ps, snap.snap, mode); err != nil {
		return err
	}
	if err = s.buildStage("bulk"); err != nil {
		return err
	}

	// Lock-free catch-up: drain what writers queued during the bulk load so
	// the final latched drain is short.
	if _, err = s.replaySide(b, ps); err != nil {
		return err
	}
	if err = s.buildStage("replay"); err != nil {
		return err
	}

	// Publish — final short latch: drain the side-log tail, stop capture,
	// commit the building transaction (index storage becomes durable), flip
	// the catalog entry to READY.
	t0 := time.Now()
	release = s.e.tableLatch(tb.SpaceID)
	latched = true
	if _, err = s.replaySide(b, ps); err != nil {
		return err
	}
	b.close()
	s.e.unregisterBuild(b)
	registered = false
	if err = s.buildStage("prepublish"); err != nil {
		return err
	}
	if err = s.callIndexFn("am_close", ps.Close, desc); err != nil {
		opened = false // close failed mid-teardown; storage drop already unsafe
		return err
	}
	opened = false
	// Commit mid-statement: the building transaction holds no table locks
	// (the latch is its own transaction), so committing here only stamps and
	// publishes the index page writes. The fresh transaction keeps execFull's
	// auto-commit protocol intact.
	if err = s.commitTx(); err != nil {
		return err
	}
	ix.State = catalog.IndexReady
	// A new READY index must retire cached plans planned without it.
	s.e.cat.BumpGeneration()
	if err = s.e.cat.Save(); err != nil {
		s.beginTx(false)
		return err
	}
	if err = s.beginTx(false); err != nil {
		return err
	}
	unlatch()
	s.e.idxPublishNs.Add(uint64(time.Since(t0).Nanoseconds()))
	s.e.releaseSnapshot(snap)
	snap = nil
	return nil
}

// alterIndexRebuild serves ALTER INDEX <name> REBUILD: the index is
// rebuilt online through the same two-phase machinery — the vacuum/
// condense story, and the remedy for an rstblade nowsub=asof index whose
// frozen rectangles drifted stale.
func (s *Session) alterIndexRebuild(t *sql.AlterIndexRebuild) (*Result, error) {
	ix, err := s.e.cat.IndexByName(t.Name)
	if err != nil {
		return nil, err
	}
	if !ix.Ready() {
		return nil, errf(CodeActiveTx, "index %s is being built", ix.Name)
	}
	if s.explicit {
		return nil, errf(CodeActiveTx, "ALTER INDEX ... REBUILD cannot run inside a transaction")
	}
	tb, err := s.catTable(ix.TableName)
	if err != nil {
		return nil, err
	}
	mode, err := stripBuildMode(ix.Params)
	if err != nil {
		return nil, err
	}
	if err := s.buildIndexOnline(tb, ix, mode, true); err != nil {
		return nil, err
	}
	return &Result{Message: "index rebuilt"}, nil
}

// SetBuildHookForTesting installs a callback invoked at the named stages of
// an online index build ("bulk", "replay", "prepublish"). Tests use it to
// run concurrent DML at an exact point of the build or to simulate a crash;
// a non-nil return aborts the build. Pass nil to clear.
func (e *Engine) SetBuildHookForTesting(h func(stage string) error) {
	e.buildHook = h
}

// purgeBuildingIndexes is Open's crash cleanup: any BUILDING entry a
// crashed build left behind is removed (with its AM records) before the
// engine serves statements; recovery already rolled the storage back.
func (e *Engine) purgeBuildingIndexes() error {
	if purged := e.cat.PurgeBuildingIndexes(); len(purged) > 0 {
		return e.cat.Save()
	}
	return nil
}

