package engine

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/sql"
	"repro/internal/types"
)

// catTable resolves a catalog table, typing the not-found error.
func (s *Session) catTable(name string) (*catalog.Table, error) {
	tb, err := s.e.cat.TableByName(name)
	if err != nil {
		return nil, errf(CodeUndefinedTable, "%w", err)
	}
	return tb, nil
}

// lockTable takes a table-level lock for the statement (strict 2PL; held to
// transaction end).
func (s *Session) lockTable(tb *catalog.Table, mode lock.Mode) error {
	if s.vars.Isolation() == lock.DirtyRead && mode == lock.Shared {
		return nil
	}
	return s.e.lm.Acquire(lock.TxID(s.tx), lock.Resource{Kind: lock.KindTable, A: uint64(tb.SpaceID)}, mode)
}

// openIndexes opens every index on a table for the statement (Figure 6:
// am_open at statement start, am_close at the end) and returns a closer.
type openIndex struct {
	ix   *catalog.Index
	desc *am.IndexDesc
	ps   *am.PurposeSet
}

func (s *Session) openIndexes(table string, readOnly bool) ([]openIndex, func(), error) {
	var opened []openIndex
	closeAll := func() {
		for i := len(opened) - 1; i >= 0; i-- {
			s.callIndexFn("am_close", opened[i].ps.Close, opened[i].desc)
		}
	}
	for _, ix := range s.e.cat.IndexesOn(table) {
		if !ix.Ready() {
			// A BUILDING index is invisible: the planner cannot use it and
			// DML maintenance flows through its side log only (idxbuild.go).
			continue
		}
		desc, ps, err := s.indexDesc(ix)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		desc.ReadOnly = readOnly
		if err := s.callIndexFn("am_open", ps.Open, desc); err != nil {
			closeAll()
			return nil, nil, err
		}
		opened = append(opened, openIndex{ix: ix, desc: desc, ps: ps})
	}
	return opened, closeAll, nil
}

// INSERT -----------------------------------------------------------------------

func (s *Session) insert(t *sql.Insert) (*Result, error) {
	tb, err := s.catTable(t.Table)
	if err != nil {
		return nil, err
	}
	if err := s.lockTable(tb, lock.Exclusive); err != nil {
		return nil, err
	}
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()

	// Map the statement's column list to table ordinals.
	colIdx := make([]int, 0, len(tb.Columns))
	if len(t.Columns) == 0 {
		for i := range tb.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range t.Columns {
			i, err := tb.ColumnIndex(c)
			if err != nil {
				return nil, errf(CodeUndefinedObject, "%w", err)
			}
			colIdx = append(colIdx, i)
		}
	}

	idxs, closeAll, err := s.openIndexes(tb.Name, false)
	if err != nil {
		return nil, err
	}
	defer closeAll()
	builds := s.e.activeBuilds(tb.Name)

	inserted := 0
	for _, exprRow := range t.Rows {
		if len(exprRow) != len(colIdx) {
			return nil, errf(CodeCardinality, "INSERT arity %d does not match %d columns", len(exprRow), len(colIdx))
		}
		row := make([]types.Datum, len(schema))
		for j, ex := range exprRow {
			v, err := s.evalExpr(ex, nil, nil, nil)
			if err != nil {
				return nil, err
			}
			cv, err := s.coerce(v, schema[colIdx[j]])
			if err != nil {
				return nil, errf(CodeDatatype, "column %s: %w", tb.Columns[colIdx[j]].Name, err)
			}
			row[colIdx[j]] = cv
		}
		rid, err := table.Insert(s.tx, row)
		if err != nil {
			return nil, heapErr(err)
		}
		s.recordWrite(table, rid, heap.StampBegin)
		for _, oi := range idxs {
			if oi.ps.Insert == nil {
				return nil, errf(CodeFeature, "access method %s cannot insert", oi.ix.AmName)
			}
			s.amCall("am_insert", oi.desc.Name)
			err := oi.ps.Insert(s.ctx, oi.desc, projectIndexed(oi.desc, row), rid)
			s.ctx.EndFunction()
			if err != nil {
				return nil, err
			}
		}
		s.captureSide(builds, true, rid, row)
		inserted++
	}
	return &Result{Affected: inserted, Message: fmt.Sprintf("%d row(s) inserted", inserted)}, nil
}

// LOAD ------------------------------------------------------------------------

// load implements the Informix LOAD command: delimited text-file rows are
// imported through the types' text-file import support functions
// (Section 6.3, item 3) and inserted through the normal index-maintaining
// path.
func (s *Session) load(t *sql.Load) (*Result, error) {
	tb, err := s.catTable(t.Table)
	if err != nil {
		return nil, err
	}
	if err := s.lockTable(tb, lock.Exclusive); err != nil {
		return nil, err
	}
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()

	raw, err := os.ReadFile(t.File)
	if err != nil {
		return nil, errf(CodeIOError, "LOAD: %w", err)
	}
	idxs, closeAll, err := s.openIndexes(tb.Name, false)
	if err != nil {
		return nil, err
	}
	defer closeAll()
	builds := s.e.activeBuilds(tb.Name)

	loaded := 0
	for lineNo, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, t.Delimiter)
		if len(fields) != len(schema) {
			return nil, errf(CodeCardinality, "LOAD line %d has %d fields, table %s has %d columns",
				lineNo+1, len(fields), tb.Name, len(schema))
		}
		row := make([]types.Datum, len(schema))
		for i, f := range fields {
			v, err := s.e.reg.ImportLiteral(strings.TrimSpace(f), schema[i])
			if err != nil {
				return nil, errf(CodeDatatype, "LOAD line %d column %s: %w", lineNo+1, tb.Columns[i].Name, err)
			}
			row[i] = v
		}
		rid, err := table.Insert(s.tx, row)
		if err != nil {
			return nil, heapErr(err)
		}
		s.recordWrite(table, rid, heap.StampBegin)
		for _, oi := range idxs {
			if oi.ps.Insert == nil {
				return nil, errf(CodeFeature, "access method %s cannot insert", oi.ix.AmName)
			}
			s.amCall("am_insert", oi.desc.Name)
			err := oi.ps.Insert(s.ctx, oi.desc, projectIndexed(oi.desc, row), rid)
			s.ctx.EndFunction()
			if err != nil {
				return nil, err
			}
		}
		s.captureSide(builds, true, rid, row)
		loaded++
	}
	return &Result{Affected: loaded, Message: fmt.Sprintf("%d row(s) loaded", loaded)}, nil
}

// access-path planning -----------------------------------------------------------

// accessPath is the chosen plan for a filtered table access. tmpl is the
// qualification template the qual was instantiated from — the shared plan
// cache stores it so later executions can rebind with new parameter values
// (see prepared.go).
type accessPath struct {
	index *openIndex // nil = sequential scan
	qual  *am.Qual
	tmpl  *qualTmpl
	// full reports the qualification covers the entire WHERE clause (no
	// residual predicate). The executor re-checks WHERE per row regardless;
	// full's consumer is aggregate pushdown, which must not delegate a COUNT
	// to the index while a residual filter would have rejected rows.
	full bool
}

// planAccess decides between a sequential scan and a virtual-index scan: it
// extracts the largest indexable qualification (strategy-function predicates
// on an indexed column, combined with AND/OR) and consults am_scancost
// against the heap page count (Section 4: the optimizer checks whether a
// virtual index exists for the column and whether the function is declared
// as a strategy function). The returned Plan records every candidate and
// the decision — EXPLAIN renders it, Result.Plan carries it.
func (s *Session) planAccess(tb *catalog.Table, schema []types.Type, where sql.Expr, idxs []openIndex) (accessPath, *Plan, error) {
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return accessPath{}, nil, err
	}
	plan := &Plan{
		Table:     tb.Name,
		SeqCost:   float64(table.Pages()),
		BatchCap:  s.e.opts.ScanBatchSize,
		HasFilter: where != nil,
	}
	// Collected statistics (UPDATE STATISTICS, exec.go) refine the
	// sequential alternative: page fetches plus a per-row CPU charge,
	// from counts measured at collection time rather than the live pager.
	ts := s.e.cat.StatsGet(tb.Name)
	if ts != nil {
		plan.SeqCost = float64(ts.Pages) + 0.01*float64(ts.Rows)
		age := s.e.cat.Generation() - ts.Collected
		plan.CostSource = fmt.Sprintf("stats(age %d)", age)
		if age == 0 {
			s.e.statsHits.Inc()
		} else {
			s.e.statsStale.Inc()
		}
	}
	if where == nil {
		return accessPath{}, plan, nil
	}

	best := accessPath{}
	bestCost := plan.SeqCost
	bestIdx := -1
	for i := range idxs {
		oi := &idxs[i]
		oc, err := s.e.cat.OpClassByName(oi.desc.OpClass)
		if err != nil {
			continue
		}
		tmpl, full := s.extractQual(where, tb, schema, oi, oc)
		if tmpl == nil {
			continue
		}
		// Instantiate the template with the current binding. A bind failure
		// (unbound or NULL parameter, coercion mismatch) just makes this
		// index inapplicable, exactly as a non-constant argument always has.
		qual, err := s.bindQual(tmpl, oi.desc.ColTypes)
		if err != nil || qual == nil {
			continue
		}
		cost := 1.0
		costed := false
		if oi.ps.ScanCost != nil {
			s.amCall("am_scancost", oi.desc.Name)
			c, err := oi.ps.ScanCost(s.ctx, oi.desc, qual)
			s.ctx.EndFunction()
			if err != nil {
				return accessPath{}, nil, err
			}
			cost = c
			costed = true
		}
		plan.Choices = append(plan.Choices, PlanChoice{
			Index: oi.desc.Name, AmName: oi.desc.AmName, OpClass: oi.desc.OpClass,
			Strategies: declaredStrategies(oc, qual), Qual: qual.String(),
			Cost: cost, Costed: costed,
		})
		// Without statistics the Informix-style bias applies: once a strategy
		// function matches a virtual index, the index is used; am_scancost
		// arbitrates between several applicable indexes. With SYSSTATS rows
		// the choice turns genuinely cost-based against the sequential
		// alternative (below).
		if best.index == nil || cost < bestCost {
			best = accessPath{index: oi, qual: qual, tmpl: tmpl, full: full}
			bestCost = cost
			bestIdx = len(plan.Choices) - 1
		}
	}
	if bestIdx >= 0 {
		if ts != nil && plan.Choices[bestIdx].Costed && bestCost >= plan.SeqCost {
			// Statistics-backed estimates on both sides and the heap is
			// cheaper: scan sequentially. (Un-costed candidates keep the
			// bias — a 1.0 default would beat any real seqscan estimate.)
			return accessPath{}, plan, nil
		}
		plan.Choices[bestIdx].Chosen = true
	}
	return best, plan, nil
}

// extractQual converts the WHERE clause (or its largest top-level AND
// subset) into a qualification template for the index, or nil when nothing
// is indexable. The second result reports fullness: true when the template
// covers the whole clause, false when a residual predicate remains for the
// per-row re-check. Constants are evaluated and coerced here; parameter
// slots stay symbolic and are bound per execution (prepared.go).
func (s *Session) extractQual(where sql.Expr, tb *catalog.Table, schema []types.Type, oi *openIndex, oc *catalog.OpClass) (*qualTmpl, bool) {
	if q := s.exprToQual(where, tb, schema, oi, oc); q != nil {
		return q, true
	}
	// Partial: use indexable factors of a top-level conjunction; the full
	// WHERE is re-checked on fetched rows.
	if b, ok := where.(*sql.Binary); ok && b.Op == "AND" {
		l, _ := s.extractQual(b.L, tb, schema, oi, oc)
		r, _ := s.extractQual(b.R, tb, schema, oi, oc)
		switch {
		case l != nil && r != nil:
			return &qualTmpl{op: am.QAnd, children: []*qualTmpl{l, r}}, false
		case l != nil:
			return l, false
		case r != nil:
			return r, false
		}
	}
	return nil, false
}

// exprToQual converts a whole expression to a qualification template, or nil.
func (s *Session) exprToQual(ex sql.Expr, tb *catalog.Table, schema []types.Type, oi *openIndex, oc *catalog.OpClass) *qualTmpl {
	switch t := ex.(type) {
	case *sql.Binary:
		if t.Op != "AND" && t.Op != "OR" {
			return nil
		}
		l := s.exprToQual(t.L, tb, schema, oi, oc)
		r := s.exprToQual(t.R, tb, schema, oi, oc)
		if l == nil || r == nil {
			return nil
		}
		op := am.QAnd
		if t.Op == "OR" {
			op = am.QOr
		}
		return &qualTmpl{op: op, children: []*qualTmpl{l, r}}
	case *sql.FuncCall:
		if !strategyDeclared(oc, t.Name) {
			return nil
		}
		fn := strings.ToLower(t.Name)
		// The qualification descriptor accommodates only single-column
		// predicates: f(column, constant), f(constant, column), f(column)
		// (Section 5.1).
		switch len(t.Args) {
		case 1:
			colPos := s.indexedColumn(t.Args[0], tb, oi)
			if colPos < 0 {
				return nil
			}
			return &qualTmpl{op: am.QFunc, fn: fn, colPos: colPos, colFirst: true}
		case 2:
			if colPos := s.indexedColumn(t.Args[0], tb, oi); colPos >= 0 {
				if leaf := s.constantTmpl(t.Args[1], fn, colPos, true, oi.desc.ColTypes[colPos]); leaf != nil {
					return leaf
				}
				return nil
			}
			if colPos := s.indexedColumn(t.Args[1], tb, oi); colPos >= 0 {
				return s.constantTmpl(t.Args[0], fn, colPos, false, oi.desc.ColTypes[colPos])
			}
		}
	}
	return nil
}

func strategyDeclared(oc *catalog.OpClass, fn string) bool {
	for _, st := range oc.Strategies {
		if strings.EqualFold(st, fn) {
			return true
		}
	}
	return false
}

// indexedColumn returns the ordinal (within the index) of the column the
// expression names, or -1.
func (s *Session) indexedColumn(ex sql.Expr, tb *catalog.Table, oi *openIndex) int {
	cr, ok := ex.(*sql.ColumnRef)
	if !ok {
		return -1
	}
	for i, col := range oi.desc.Columns {
		if strings.EqualFold(col, cr.Name) {
			return i
		}
	}
	return -1
}

// constantTmpl builds a leaf template for the predicate's constant argument:
// literals evaluate and coerce to the column's type now; parameter
// placeholders stay symbolic (bound per execution). A non-constant argument
// yields nil — the index is not applicable.
func (s *Session) constantTmpl(ex sql.Expr, fn string, colPos int, colFirst bool, target types.Type) *qualTmpl {
	if p, ok := ex.(*sql.Param); ok {
		return &qualTmpl{op: am.QFunc, fn: fn, colPos: colPos, colFirst: colFirst, paramOrd: p.Ord}
	}
	switch ex.(type) {
	case *sql.Literal, *sql.Null:
	default:
		return nil
	}
	v, err := s.evalExpr(ex, nil, nil, nil)
	if err != nil || v == nil {
		return nil
	}
	cv, err := s.coerce(v, target)
	if err != nil {
		return nil
	}
	return &qualTmpl{op: am.QFunc, fn: fn, colPos: colPos, colFirst: colFirst, constVal: cv}
}

// scanRows pulls the batched pipeline (source → WHERE filter, see iter.go)
// and spills to one row at a time for callers that consume rows
// individually. Index scans go through am_getmulti (or the am_getnext
// adapter); heap scans through the batched sequential scanner.
func (s *Session) scanRows(tb *catalog.Table, table *heap.Table, schema []types.Type, where sql.Expr,
	path accessPath, snap *heap.Snapshot, fn func(rid heap.RowID, row []types.Datum) (bool, error)) error {

	it, err := s.openBatchScan(tb, table, schema, where, path, 1, snap)
	if err != nil {
		return err
	}
	defer it.close()
	for {
		rb, err := it.next()
		if err != nil {
			return err
		}
		if rb == nil {
			return nil
		}
		for i := range rb.rows {
			cont, err := fn(rb.rids[i], rb.rows[i])
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
}

// scanRowsTuple drives the paper's original row-at-a-time index protocol
// (Figure 6(b): am_beginscan, am_getnext*, am_endscan), applying the full
// WHERE clause per fetched row. The interleaved DELETE stays on this path:
// the Section 5.5 deletion procedure retrieves and deletes entries one by
// one through the same scan, so batching ahead of the deletes would hand
// the cursor stale rowids whenever the tree condenses under it.
func (s *Session) scanRowsTuple(tb *catalog.Table, table *heap.Table, schema []types.Type, where sql.Expr,
	oi *openIndex, qual *am.Qual, snap *heap.Snapshot, fn func(rid heap.RowID, row []types.Datum) (bool, error)) error {

	sd := &am.ScanDesc{Index: oi.desc, Qual: qual, Obs: s.ec, Snapshot: snap}
	if oi.ps.BeginScan != nil {
		s.amCall("am_beginscan", oi.desc.Name)
		if err := oi.ps.BeginScan(s.ctx, sd); err != nil {
			s.ctx.EndFunction()
			return err
		}
		s.ctx.EndFunction()
	}
	defer func() {
		if oi.ps.EndScan != nil {
			s.amCall("am_endscan", oi.desc.Name)
			oi.ps.EndScan(s.ctx, sd)
			s.ctx.EndFunction()
		}
	}()
	for {
		s.amCall("am_getnext", oi.desc.Name)
		rid, _, ok, err := oi.ps.GetNext(s.ctx, sd)
		s.ctx.EndFunction()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		s.ec.AddScanned(1)
		row, visible, err := table.GetVersion(rid, sd.Snapshot)
		if err != nil {
			if errors.Is(err, heap.ErrNoSuchRow) {
				continue // entry whose cell was reclaimed: dead by definition
			}
			return errf(CodeInternal, "index %s returned dangling %v: %w", oi.desc.Name, rid, err)
		}
		if !visible {
			continue // version outside the scan's read view
		}
		if where != nil {
			ok, err := s.evalBool(where, tb, schema, row)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		cont, err := fn(rid, row)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
}

// SELECT -----------------------------------------------------------------------

func (s *Session) selectStmt(t *sql.Select) (*Result, error) {
	if _, err := s.catTable(t.Table); err != nil {
		// A real table shadows a virtual one; only unresolved names fall
		// through to SYSPROFILE/SYSPTPROF.
		if vtb, data, ok := s.virtualRows(t.Table); ok {
			return s.selectVirtual(t, vtb, data)
		}
		return nil, err
	}
	// Batch-pull execution through the streaming cursor (stream.go): Exec
	// materialises what ExecStream hands out batch by batch.
	cur, err := s.openSelectCursor(t)
	if err != nil {
		return nil, err
	}
	defer cur.close()
	for {
		rows, err := cur.nextBatch()
		if err != nil {
			return nil, err
		}
		if rows == nil {
			break
		}
		cur.res.Rows = append(cur.res.Rows, rows...)
	}
	return cur.finishResult(), nil
}

// DELETE -----------------------------------------------------------------------

// deleteStmt reproduces the paper's deletion procedure (Section 5.5):
// qualifying entries are retrieved and deleted one by one through the same
// scan, so the access method's cursor/condense interplay (Table 5,
// grt_delete step 5) is exercised for real.
func (s *Session) deleteStmt(t *sql.Delete) (*Result, error) {
	tb, err := s.catTable(t.Table)
	if err != nil {
		return nil, err
	}
	if err := s.lockTable(tb, lock.Exclusive); err != nil {
		return nil, err
	}
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()

	idxs, closeAll, err := s.openIndexes(tb.Name, false)
	if err != nil {
		return nil, err
	}
	defer closeAll()

	path, plan, err := s.planStmt("DELETE", t, tb, schema, t.Where, idxs)
	if err != nil {
		return nil, err
	}
	if path.index != nil {
		plan.BatchCap = 1 // the interleaved DELETE stays row-at-a-time (Section 5.5)
	}
	// Write statements scan under a fresh committed view captured after the
	// X lock, so the versions they target are the latest committed ones.
	snap := s.stmtSnapshot(true)
	plan.SnapshotLSN = snap.ReadLSN
	s.ec.SetSnapshot(snap.ReadLSN)

	deleted := 0
	deleteRow := func(rid heap.RowID, row []types.Datum) error {
		ended, err := table.Delete(s.tx, rid)
		if err != nil {
			return err
		}
		if !ended {
			return nil // version already ended by this transaction
		}
		s.recordWrite(table, rid, heap.StampEnd)
		// Index maintenance is deferred: the entry stays so scans under
		// older snapshots (and index builds in flight) keep resolving the
		// rowid — GetVersion's visibility check decides per reader. The
		// vacuum removes entry and cell together once no snapshot can see
		// the version (snapshot.go vacuumTable).
		deleted++
		return nil
	}

	if path.index != nil {
		// Interleaved scan-and-delete through the index, on the
		// row-at-a-time am_getnext protocol (Section 5.5; see
		// scanRowsTuple for why this path does not batch).
		err = s.scanRowsTuple(tb, table, schema, t.Where, path.index, path.qual, snap, func(rid heap.RowID, row []types.Datum) (bool, error) {
			return true, deleteRow(rid, row)
		})
		if err != nil {
			return nil, err
		}
	} else {
		// Sequential path: materialise first (heap scans do not tolerate
		// concurrent slot removal), then delete.
		type victim struct {
			rid heap.RowID
			row []types.Datum
		}
		var victims []victim
		err = s.scanRows(tb, table, schema, t.Where, path, snap, func(rid heap.RowID, row []types.Datum) (bool, error) {
			victims = append(victims, victim{rid, row})
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		for _, v := range victims {
			if err := deleteRow(v.rid, v.row); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Affected: deleted, Message: fmt.Sprintf("%d row(s) deleted", deleted), Plan: plan}, nil
}

// UPDATE -----------------------------------------------------------------------

func (s *Session) update(t *sql.Update) (*Result, error) {
	tb, err := s.catTable(t.Table)
	if err != nil {
		return nil, err
	}
	if err := s.lockTable(tb, lock.Exclusive); err != nil {
		return nil, err
	}
	table, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	schema := table.Schema()

	setIdx := make([]int, len(t.Sets))
	for i, sc := range t.Sets {
		ci, err := tb.ColumnIndex(sc.Column)
		if err != nil {
			return nil, errf(CodeUndefinedObject, "%w", err)
		}
		setIdx[i] = ci
	}

	idxs, closeAll, err := s.openIndexes(tb.Name, false)
	if err != nil {
		return nil, err
	}
	defer closeAll()
	builds := s.e.activeBuilds(tb.Name)

	path, plan, err := s.planStmt("UPDATE", t, tb, schema, t.Where, idxs)
	if err != nil {
		return nil, err
	}
	// Fresh committed view after the X lock (see deleteStmt).
	snap := s.stmtSnapshot(true)
	plan.SnapshotLSN = snap.ReadLSN
	s.ec.SetSnapshot(snap.ReadLSN)

	type target struct {
		rid heap.RowID
		row []types.Datum
	}
	var targets []target
	err = s.scanRows(tb, table, schema, t.Where, path, snap, func(rid heap.RowID, row []types.Datum) (bool, error) {
		targets = append(targets, target{rid, append([]types.Datum(nil), row...)})
		return true, nil
	})
	if err != nil {
		return nil, err
	}

	for _, tg := range targets {
		newRow := append([]types.Datum(nil), tg.row...)
		for i, sc := range t.Sets {
			v, err := s.evalExpr(sc.Value, tb, schema, tg.row)
			if err != nil {
				return nil, err
			}
			cv, err := s.coerce(v, schema[setIdx[i]])
			if err != nil {
				return nil, errf(CodeDatatype, "column %s: %w", tb.Columns[setIdx[i]].Name, err)
			}
			newRow[setIdx[i]] = cv
		}
		newRid, err := table.Update(s.tx, tg.rid, newRow)
		if err != nil {
			return nil, heapErr(err)
		}
		s.recordWrite(table, tg.rid, heap.StampEnd)
		s.recordWrite(table, newRid, heap.StampBegin)
		// MVCC index maintenance: only the successor's entry is inserted.
		// The predecessor's entry stays — older snapshots resolve it to the
		// old version, newer ones skip it at rid resolution — and dies with
		// its cell at vacuum time. (am_update's delete-then-insert contract
		// would tear rows out from under older read views; the slot remains
		// for access methods but the MVCC engine no longer drives it.)
		for _, oi := range idxs {
			if oi.ps.Insert == nil {
				return nil, errf(CodeFeature, "access method %s cannot insert", oi.ix.AmName)
			}
			s.amCall("am_insert", oi.desc.Name)
			err := oi.ps.Insert(s.ctx, oi.desc, projectIndexed(oi.desc, newRow), newRid)
			s.ctx.EndFunction()
			if err != nil {
				return nil, err
			}
		}
		// Side-log capture: only the insert half — the old entry must stay
		// in the built index for the same deferred-maintenance reason.
		s.captureSide(builds, true, newRid, newRow)
	}
	return &Result{Affected: len(targets), Message: fmt.Sprintf("%d row(s) updated", len(targets)), Plan: plan}, nil
}
