package engine

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lock"
	"repro/internal/wal"
)

// SessionVars is a session's SET-able state — isolation level, commit
// durability mode, parallel scan degree, and trace levels — behind one
// uniform surface. Before the network server, each knob was a private
// Session field with its own ad-hoc accessor; the wire protocol needs the
// state to be enumerable (SHOW ALL) and settable by name, and the REPL, the
// server, and tests now all go through this same API. The struct is
// self-contained (no Session or Engine reference), so a server can
// pre-build vars for a connection before its session exists.
//
// Methods are safe for concurrent use: a server's monitoring path may list
// a session's vars while the session's own goroutine executes a SET.
type SessionVars struct {
	mu        sync.Mutex
	iso       lock.IsolationLevel
	commit    wal.CommitMode
	parallel  int
	planCache bool
	trace     map[string]int // by lower-cased trace class
}

// NewSessionVars returns the default session state: COMMITTED READ
// isolation, GROUP commit, serial scans, plan cache on, no tracing.
func NewSessionVars() *SessionVars {
	return &SessionVars{iso: lock.CommittedRead, commit: wal.CommitGroup, planCache: true}
}

// Var is one name/value pair of the session state (SHOW ALL's row shape).
type Var struct {
	Name  string
	Value string
}

// Isolation returns the session's isolation level.
func (v *SessionVars) Isolation() lock.IsolationLevel {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.iso
}

// SetIsolation sets the isolation level.
func (v *SessionVars) SetIsolation(l lock.IsolationLevel) {
	v.mu.Lock()
	v.iso = l
	v.mu.Unlock()
}

// ParseIsolation maps a SET ISOLATION level name to its level.
func ParseIsolation(name string) (lock.IsolationLevel, bool) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "DIRTY READ":
		return lock.DirtyRead, true
	case "COMMITTED READ":
		return lock.CommittedRead, true
	case "REPEATABLE READ":
		return lock.RepeatableRead, true
	case "SNAPSHOT":
		return lock.Snapshot, true
	}
	return 0, false
}

// Commit returns the session's commit durability mode.
func (v *SessionVars) Commit() wal.CommitMode {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.commit
}

// SetCommit sets the commit durability mode.
func (v *SessionVars) SetCommit(m wal.CommitMode) {
	v.mu.Lock()
	v.commit = m
	v.mu.Unlock()
}

// Parallel returns the SET PARALLEL degree (0/1 = serial scans).
func (v *SessionVars) Parallel() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.parallel
}

// SetParallel sets the parallel scan degree, capped at GOMAXPROCS — the
// session never offers more workers than the host can run. It returns the
// effective degree.
func (v *SessionVars) SetParallel(deg int) int {
	if deg < 0 {
		deg = 0
	}
	if max := runtime.GOMAXPROCS(0); deg > max {
		deg = max
	}
	v.mu.Lock()
	v.parallel = deg
	v.mu.Unlock()
	return deg
}

// PlanCache reports whether plan caching is enabled for the session.
func (v *SessionVars) PlanCache() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.planCache
}

// SetPlanCache switches plan caching. OFF makes the session bypass the
// shared plan cache and replan every EXECUTE — the A/B knob for measuring
// planning cost.
func (v *SessionVars) SetPlanCache(on bool) {
	v.mu.Lock()
	v.planCache = on
	v.mu.Unlock()
}

// TraceLevel returns the session's requested level for a trace class (0
// when the class was never set).
func (v *SessionVars) TraceLevel(class string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.trace[strings.ToLower(class)]
}

// SetTrace records the session's requested level for a trace class. The
// engine's mi tracer remains engine-wide (SET TRACE applies to blade trace
// output from any session); the vars carry what this session asked for so
// SHOW reports it.
func (v *SessionVars) SetTrace(class string, level int) {
	v.mu.Lock()
	if v.trace == nil {
		v.trace = make(map[string]int)
	}
	v.trace[strings.ToLower(class)] = level
	v.mu.Unlock()
}

// Set assigns a variable by name: "isolation", "commit", "parallel", or
// "trace.<class>". Values are the same spellings the SET statements accept.
// This is the uniform mutation path under the SQL surface — SET statements,
// the server's session bootstrap, and tests all resolve here.
func (v *SessionVars) Set(name, value string) error {
	key := strings.ToLower(strings.TrimSpace(name))
	switch {
	case key == "isolation":
		l, ok := ParseIsolation(value)
		if !ok {
			return errf(CodeInvalidParameter, "unknown isolation level %q", value)
		}
		v.SetIsolation(l)
	case key == "commit":
		m, ok := wal.ParseCommitMode(strings.ToUpper(strings.TrimSpace(value)))
		if !ok {
			return errf(CodeInvalidParameter, "unknown commit mode %q (want SYNC, GROUP or ASYNC)", value)
		}
		v.SetCommit(m)
	case key == "parallel":
		deg, err := strconv.Atoi(strings.TrimSpace(value))
		if err != nil || deg < 0 {
			return errf(CodeInvalidParameter, "bad parallel degree %q", value)
		}
		v.SetParallel(deg)
	case key == "plan_cache":
		switch strings.ToUpper(strings.TrimSpace(value)) {
		case "ON":
			v.SetPlanCache(true)
		case "OFF":
			v.SetPlanCache(false)
		default:
			return errf(CodeInvalidParameter, "bad plan_cache value %q (want ON or OFF)", value)
		}
	case strings.HasPrefix(key, "trace."):
		lvl, err := strconv.Atoi(strings.TrimSpace(value))
		if err != nil || lvl < 0 {
			return errf(CodeInvalidParameter, "bad trace level %q", value)
		}
		v.SetTrace(strings.TrimPrefix(key, "trace."), lvl)
	default:
		return errf(CodeInvalidParameter, "unknown session variable %q", name)
	}
	return nil
}

// Get returns a variable's value by name (same names Set accepts).
func (v *SessionVars) Get(name string) (string, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	switch {
	case key == "isolation":
		return v.Isolation().String(), nil
	case key == "commit":
		return v.Commit().String(), nil
	case key == "parallel":
		return strconv.Itoa(v.Parallel()), nil
	case key == "plan_cache":
		if v.PlanCache() {
			return "ON", nil
		}
		return "OFF", nil
	case strings.HasPrefix(key, "trace."):
		return strconv.Itoa(v.TraceLevel(strings.TrimPrefix(key, "trace."))), nil
	}
	return "", errf(CodeInvalidParameter, "unknown session variable %q", name)
}

// List returns every variable as name/value pairs, sorted by name — the
// fixed knobs first, then any trace classes the session touched. SHOW ALL
// renders exactly this.
func (v *SessionVars) List() []Var {
	pc := "OFF"
	if v.PlanCache() {
		pc = "ON"
	}
	out := []Var{
		{"commit", v.Commit().String()},
		{"isolation", v.Isolation().String()},
		{"parallel", strconv.Itoa(v.Parallel())},
		{"plan_cache", pc},
	}
	v.mu.Lock()
	classes := make([]string, 0, len(v.trace))
	for c := range v.trace {
		classes = append(classes, c)
	}
	v.mu.Unlock()
	sort.Strings(classes)
	for _, c := range classes {
		out = append(out, Var{"trace." + c, strconv.Itoa(v.TraceLevel(c))})
	}
	return out
}

// String renders the state compactly (diagnostics).
func (v *SessionVars) String() string {
	parts := make([]string, 0, 4)
	for _, kv := range v.List() {
		parts = append(parts, fmt.Sprintf("%s=%s", kv.Name, kv.Value))
	}
	return strings.Join(parts, " ")
}
