package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/chronon"
	"repro/internal/wal"
)

func TestSetCommitStatement(t *testing.T) {
	e := memEngine(t)
	s := e.NewSession()
	defer s.Close()
	if s.Vars().Commit() != wal.CommitGroup {
		t.Fatalf("default commit mode %v, want GROUP", s.Vars().Commit())
	}
	exec(t, s, `SET COMMIT ASYNC`)
	if s.Vars().Commit() != wal.CommitAsync {
		t.Fatalf("commit mode %v after SET COMMIT ASYNC", s.Vars().Commit())
	}
	res := exec(t, s, `SET COMMIT TO SYNC`)
	if s.Vars().Commit() != wal.CommitSync || res.Message != "commit mode set to SYNC" {
		t.Fatalf("mode=%v message=%q", s.Vars().Commit(), res.Message)
	}
	if _, err := s.Exec(`SET COMMIT EVENTUALLY`); err == nil {
		t.Fatal("bogus commit mode must be rejected")
	}
	// The mode must actually reach the log: a SYNC commit flushes inline.
	exec(t, s, `CREATE TABLE t (a INTEGER)`)
	before := e.Obs().Snapshot().Get("wal.flushes")
	exec(t, s, `INSERT INTO t VALUES (1)`)
	if after := e.Obs().Snapshot().Get("wal.flushes"); after <= before {
		t.Fatalf("SYNC commit did not flush: %d -> %d", before, after)
	}
}

// TestEngineCloseStopsWALGoroutines pins the flusher and checkpointer
// lifetimes: Close must stop both daemons (and be idempotent), leaving no
// goroutines behind.
func TestEngineCloseStopsWALGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	e, err := Open(Options{
		Dir:                t.TempDir(),
		Clock:              chronon.NewVirtualClock(chronon.MustParse("9/97")),
		CheckpointInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	exec(t, s, `CREATE TABLE t (a INTEGER)`)
	for _, mode := range []string{"SYNC", "GROUP", "ASYNC"} {
		exec(t, s, "SET COMMIT "+mode)
		exec(t, s, `INSERT INTO t VALUES (1)`)
	}
	s.Close()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	waitGoroutines(t, base)
}

// TestCommitStorm runs concurrent sessions in every commit mode against
// their own tables while checkpoints fire underneath — the -race
// configuration `make check` exercises. All committed rows must survive a
// clean close and reopen.
func TestCommitStorm(t *testing.T) {
	dir := t.TempDir()
	clock := chronon.NewVirtualClock(chronon.MustParse("9/97"))
	e, err := Open(Options{Dir: dir, Clock: clock, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	setup := e.NewSession()
	modes := []string{"SYNC", "GROUP", "GROUP", "ASYNC"}
	for i := range modes {
		exec(t, setup, fmt.Sprintf(`CREATE TABLE storm%d (a INTEGER)`, i))
	}
	setup.Close()

	const perWriter = 25
	var wg sync.WaitGroup
	errCh := make(chan error, len(modes)+1)
	for i, mode := range modes {
		wg.Add(1)
		go func(i int, mode string) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			if _, err := s.Exec("SET COMMIT " + mode); err != nil {
				errCh <- err
				return
			}
			for n := 0; n < perWriter; n++ {
				if _, err := s.Exec(fmt.Sprintf(`INSERT INTO storm%d VALUES (%d)`, i, n)); err != nil {
					errCh <- err
					return
				}
			}
		}(i, mode)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 5; n++ {
			if err := e.Checkpoint(); err != nil {
				errCh <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s := e2.NewSession()
	defer s.Close()
	for i := range modes {
		res := exec(t, s, fmt.Sprintf(`SELECT COUNT(*) FROM storm%d`, i))
		if res.Rows[0][0] != int64(perWriter) {
			t.Fatalf("storm%d: %v rows survived, want %d", i, res.Rows[0][0], perWriter)
		}
	}
}
