package engine

import (
	"errors"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/types"
)

// The batch-pull pipeline: statements read rowBatches from a batchIterator
// chain (source → WHERE filter) and spill to individual rows only at the
// statement/client boundary. Index sources amortise the purpose-function
// dispatch through am_getmulti; heap sources decode a page's tuples per
// visit. The interleaved DELETE keeps the paper's row-at-a-time protocol
// (scanRowsTuple) because its Section 5.5 cursor/delete interplay is
// defined tuple by tuple.

// rowBatch is one unit flowing through the pipeline (parallel slices).
type rowBatch struct {
	rids []heap.RowID
	rows [][]types.Datum
}

// batchIterator is a pull-based batch source. next returns nil when the
// scan is exhausted; close releases scan resources (am_endscan for index
// scans) and must be called exactly once.
type batchIterator interface {
	next() (*rowBatch, error)
	close()
}

// heapBatchIter adapts the heap's batched sequential scanner.
type heapBatchIter struct {
	sc    *heap.Scanner
	batch int
	ec    *obs.ExecContext
}

func newHeapBatchIter(table *heap.Table, batch int, ec *obs.ExecContext, snap *heap.Snapshot) *heapBatchIter {
	return &heapBatchIter{sc: table.NewScanner(snap), batch: batch, ec: ec}
}

func (it *heapBatchIter) next() (*rowBatch, error) {
	rb, err := it.sc.NextBatch(it.batch)
	if err != nil || rb == nil {
		return nil, err
	}
	it.ec.AddScanned(len(rb.Rows))
	return &rowBatch{rids: rb.RowIDs, rows: rb.Rows}, nil
}

func (it *heapBatchIter) close() {}

// indexBatchIter drives the batched virtual-index protocol: am_beginscan,
// am_getmulti* (or am_getnext* through the adapter when the access method
// binds no am_getmulti), am_endscan. The server proposes the batch
// capacity before am_beginscan; the access method may adjust it there
// (negotiation), and the batch buffer is allocated to the agreed size on
// the first fill. Returned rowids are resolved against the heap before the
// batch moves downstream.
type indexBatchIter struct {
	s      *Session
	oi     *openIndex
	table  *heap.Table
	sd     *am.ScanDesc
	fill   am.AmGetMultiFunc
	native bool
	done   bool
	closed bool
}

func (s *Session) newIndexBatchIter(oi *openIndex, table *heap.Table, qual *am.Qual, batch int, snap *heap.Snapshot) (*indexBatchIter, error) {
	if batch < 1 {
		batch = 1
	}
	sd := &am.ScanDesc{Index: oi.desc, Qual: qual, BatchCap: batch, Obs: s.ec, Snapshot: snap}
	if oi.ps.BeginScan != nil {
		s.amCall("am_beginscan", oi.desc.Name)
		err := oi.ps.BeginScan(s.ctx, sd)
		s.ctx.EndFunction()
		if err != nil {
			return nil, err
		}
	}
	return s.wrapIndexIter(oi, table, sd), nil
}

// wrapIndexIter builds the serial iterator around a scan descriptor whose
// am_beginscan has already run (the normal path, and the fallback when
// am_parallelscan declines the degree offer).
func (s *Session) wrapIndexIter(oi *openIndex, table *heap.Table, sd *am.ScanDesc) *indexBatchIter {
	it := &indexBatchIter{s: s, oi: oi, table: table, sd: sd}
	if oi.ps.GetMulti != nil {
		it.native = true
		it.fill = oi.ps.GetMulti
	} else {
		// Getnext-only access method (only am_getnext is mandatory): the
		// adapter fills the batch by repeated am_getnext calls, each traced
		// individually so the legacy Figure 6(b) sequence stays observable.
		it.fill = am.AdaptGetNext(oi.ps.GetNext,
			func() { s.amCall("am_getnext", oi.desc.Name) },
			func() { s.ctx.EndFunction() })
	}
	return it
}

func (it *indexBatchIter) next() (*rowBatch, error) {
	// Loop until a batch yields visible rows or the scan is exhausted —
	// a loop, not a tail call, so a long run of dead or out-of-snapshot
	// index entries (heavily updated, not-yet-vacuumed table) cannot grow
	// the stack.
	for !it.done {
		sd := it.sd
		var n int
		var err error
		if it.native {
			it.s.amCall("am_getmulti", it.oi.desc.Name)
			n, err = am.FillFrom(it.s.ctx, sd, it.fill)
			it.s.ctx.EndFunction()
		} else {
			n, err = am.FillFrom(it.s.ctx, sd, it.fill)
		}
		if err != nil {
			return nil, err
		}
		if n < sd.Batch.Cap() {
			it.done = true // a short batch signals exhaustion
		}
		if n == 0 {
			return nil, nil
		}
		rb := &rowBatch{
			rids: make([]heap.RowID, 0, n),
			rows: make([][]types.Datum, 0, n),
		}
		// Resolve rowids against the heap under the scan's snapshot: versions
		// the snapshot cannot see are dropped here (the index reflects write-time
		// state; visibility is decided at rid→row resolution).
		for i := 0; i < n; i++ {
			rid := sd.Batch.RowIDs[i]
			row, ok, err := it.table.GetVersion(rid, sd.Snapshot)
			if err != nil {
				if errors.Is(err, heap.ErrNoSuchRow) {
					continue // entry whose cell was reclaimed: dead by definition
				}
				return nil, errf(CodeInternal, "index %s returned dangling %v: %w", it.oi.desc.Name, rid, err)
			}
			if !ok {
				continue
			}
			rb.rids = append(rb.rids, rid)
			rb.rows = append(rb.rows, row)
		}
		if len(rb.rows) > 0 {
			return rb, nil
		}
		// Whole batch invisible: pull the next one.
	}
	return nil, nil
}

func (it *indexBatchIter) close() {
	if it.closed {
		return
	}
	it.closed = true
	it.s.endScan(it.oi, it.sd)
}

// endScan runs am_endscan on a descriptor (serial iterators and the parent
// descriptor of a parallel scan after its workers have exited).
func (s *Session) endScan(oi *openIndex, sd *am.ScanDesc) {
	if oi.ps.EndScan != nil {
		s.amCall("am_endscan", oi.desc.Name)
		oi.ps.EndScan(s.ctx, sd)
		s.ctx.EndFunction()
	}
}

// filterBatchIter re-evaluates the full WHERE clause over each batch,
// compacting survivors in place: the index may return candidate supersets
// (rstree_am, gist_am), and only part of the clause may have been pushed
// down as a qualification.
type filterBatchIter struct {
	src    batchIterator
	s      *Session
	tb     *catalog.Table
	schema []types.Type
	where  sql.Expr
	// memo caches resolved call sites and coerced row-invariant UDR
	// arguments (literals, bound parameters) across the statement's rows —
	// the residual filter would otherwise re-resolve each UDR and re-run
	// each opaque type's Input parser per row. The map lives on the
	// iterator so its lifetime is exactly one statement.
	memo map[*sql.FuncCall]*fcMemo
}

func (it *filterBatchIter) next() (*rowBatch, error) {
	if it.memo == nil {
		it.memo = make(map[*sql.FuncCall]*fcMemo)
	}
	prev := it.s.fcMemos
	it.s.fcMemos = it.memo
	defer func() { it.s.fcMemos = prev }()
	for {
		rb, err := it.src.next()
		if err != nil || rb == nil {
			return nil, err
		}
		k := 0
		for i := range rb.rows {
			ok, err := it.s.evalBool(it.where, it.tb, it.schema, rb.rows[i])
			if err != nil {
				return nil, err
			}
			if ok {
				rb.rids[k] = rb.rids[i]
				rb.rows[k] = rb.rows[i]
				k++
			}
		}
		if k > 0 {
			rb.rids = rb.rids[:k]
			rb.rows = rb.rows[:k]
			return rb, nil
		}
		// The whole batch was filtered out — pull the next one rather than
		// surfacing an empty batch.
	}
}

func (it *filterBatchIter) close() { it.src.close() }

// openBatchScan assembles the pipeline for a planned access path: source
// (virtual index or heap sequential scan, fanned out to workers when the
// statement was planned with a parallel degree > 1) plus the WHERE
// re-filter.
func (s *Session) openBatchScan(tb *catalog.Table, table *heap.Table, schema []types.Type,
	where sql.Expr, path accessPath, workers int, snap *heap.Snapshot) (batchIterator, error) {
	batch := s.e.opts.ScanBatchSize
	var src batchIterator
	if path.index != nil {
		var it batchIterator
		var err error
		if workers > 1 {
			it, err = s.newParallelIndexIter(path.index, table, path.qual, batch, workers, snap)
		} else {
			it, err = s.newIndexBatchIter(path.index, table, path.qual, batch, snap)
		}
		if err != nil {
			return nil, err
		}
		src = it
	} else if workers > 1 {
		src = s.newParallelHeapIter(table, batch, workers, snap)
	} else {
		src = newHeapBatchIter(table, batch, s.ec, snap)
	}
	if where == nil {
		return src, nil
	}
	return &filterBatchIter{src: src, s: s, tb: tb, schema: schema, where: where}, nil
}
