package engine

import (
	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/heap"
	"repro/internal/types"
)

// Single-table aggregates: COUNT(*) / COUNT(col) / MIN(col) / MAX(col).
// Two execution shapes share one answer. The drain absorbs the batch
// pipeline's rows into an accumulator and emits a single row at exhaustion.
// Pushdown asks the chosen index's am_aggregate purpose function to answer
// from its internal nodes — entry counts for COUNT, boundary leaves for
// MIN/MAX — visiting zero tuples; it applies only when the qualification is
// residual-free (accessPath.full) and an MVCC gate proves every indexed
// entry is visible to the statement's read view (snapshot.go aggGate).

// aggAcc accumulates one aggregate over drained rows.
type aggAcc struct {
	kind am.AggKind
	col  int         // table ordinal of the aggregated column; -1 for COUNT(*)
	n    int64       // running COUNT
	ext  types.Datum // running MIN/MAX extremum; nil until the first non-NULL
}

// absorb folds a batch of rows into the accumulator. NULLs are skipped
// (SQL aggregate semantics); MIN/MAX order comes from the type registry,
// so opaque types compare by their support function, not their bytes.
func (a *aggAcc) absorb(s *Session, rows [][]types.Datum) error {
	for _, row := range rows {
		if a.col < 0 {
			a.n++
			continue
		}
		v := row[a.col]
		if v == nil {
			continue
		}
		switch a.kind {
		case am.AggCount:
			a.n++
		case am.AggMin, am.AggMax:
			if a.ext == nil {
				a.ext = v
				continue
			}
			cmp, err := s.e.reg.CompareDatums(v, a.ext)
			if err != nil {
				return errf(CodeDatatype, "%s aggregate: %w", a.kind, err)
			}
			if (a.kind == am.AggMin && cmp < 0) || (a.kind == am.AggMax && cmp > 0) {
				a.ext = v
			}
		}
	}
	return nil
}

// row renders the final aggregate row. An empty MIN/MAX input yields NULL.
func (a *aggAcc) row() []types.Datum {
	if a.kind == am.AggCount {
		return []types.Datum{a.n}
	}
	return []types.Datum{a.ext}
}

// tryAggPushdown offers the aggregate to the chosen index's am_aggregate
// slot. (nil, false, nil) means the offer was declined somewhere along the
// chain — no index path, residual predicate, unbound slot, MVCC gate
// failure, or the access method itself said no — and the caller drains
// tuples instead. The gate is checked before and after the index traversal
// (aggGate / aggGateHolds): concurrent commits or transaction starts in the
// window invalidate the answer, because the index holds one entry per row
// with no version stamps.
func (s *Session) tryAggPushdown(a *aggAcc, tb *catalog.Table, table *heap.Table, path accessPath, snap *heap.Snapshot) ([]types.Datum, bool, error) {
	oi := path.index
	if oi == nil || !path.full || oi.ps.Aggregate == nil || oi.ps.Delete == nil {
		// An AM without am_delete cannot take part in deferred index
		// maintenance: the vacuum leaves its dead entries dangling, so no
		// entry-count answer from it can ever be trusted.
		s.e.aggFallback.Inc()
		return nil, false, nil
	}
	if a.col >= 0 {
		// COUNT(col)/MIN(col)/MAX(col): the index answers only for its own
		// key column — entry count equals non-NULL count there, and the
		// boundary leaves bound exactly that column's values.
		ci, err := tb.ColumnIndex(oi.desc.Columns[0])
		if err != nil || ci != a.col {
			s.e.aggFallback.Inc()
			return nil, false, nil
		}
	}
	fence, ok := s.e.aggGate(s, table, snap)
	if !ok {
		s.e.aggFallback.Inc()
		return nil, false, nil
	}
	s.amCall("am_aggregate", oi.desc.Name)
	res, ok, err := oi.ps.Aggregate(s.ctx, oi.desc, &am.AggRequest{Kind: a.kind, Qual: path.qual})
	s.ctx.EndFunction()
	if err != nil {
		return nil, false, err
	}
	if !ok || !s.e.aggGateHolds(s, snap, fence) {
		s.e.aggFallback.Inc()
		return nil, false, nil
	}
	s.e.aggPushed.Inc()
	if a.kind == am.AggCount {
		return []types.Datum{res.Count}, true, nil
	}
	if res.Empty {
		return []types.Datum{nil}, true, nil
	}
	return []types.Datum{res.Value}, true, nil
}
