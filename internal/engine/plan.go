package engine

import (
	"fmt"
	"strings"

	"repro/internal/am"
	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/types"
)

// Plan records the optimizer's access-path decision for one statement:
// which virtual indexes were applicable, what am_scancost estimated for
// each, the sequential-scan alternative, and the batch capacity the
// executor will propose. Results carry it (Result.Plan) and EXPLAIN renders
// it without executing the statement — the reproduction's SET EXPLAIN.
type Plan struct {
	Operation string // SELECT / DELETE / UPDATE
	Table     string
	// SeqCost is the sequential alternative's cost: the heap's page count.
	SeqCost float64
	// BatchCap is the am_getmulti capacity the server will propose at
	// am_beginscan (subject to negotiation); <= 1 means the row-at-a-time
	// am_getnext protocol.
	BatchCap int
	// HasFilter reports whether a WHERE clause is re-checked per row.
	HasFilter bool
	// Workers is the degree of parallelism the executor will offer the scan
	// (SET PARALLEL capped by GOMAXPROCS and the access path's support);
	// <= 1 means a serial scan. The access method may still decline or
	// reduce the offer at am_parallelscan time.
	Workers int
	// SnapshotLSN is the MVCC read view's cut point: versions committed
	// strictly below it are visible. Zero when the statement takes no
	// snapshot (writes, or plans rendered without one).
	SnapshotLSN uint64
	// Choices are the candidate indexes considered (Section 4: a strategy
	// function over an indexed column makes the optimizer consider the
	// index; am_scancost arbitrates between applicable ones).
	Choices []PlanChoice
	// Cached reports the plan was served from the shared plan cache (bound
	// with the current parameters, no qualification extraction and no
	// am_scancost call). EXPLAIN prints it as "plan: cached" vs "plan:
	// fresh".
	Cached bool
	// CostSource names the estimate family the costs came from:
	// "stats(age N)" when SYSSTATS rows existed for the table (N is the
	// catalog-generation distance since UPDATE STATISTICS collected them),
	// "default" when the planner fell back to built-in constants.
	CostSource string
}

// PlanChoice is one candidate index the planner considered.
type PlanChoice struct {
	Index      string
	AmName     string
	OpClass    string
	Strategies []string // strategy functions the qualification uses (declared casing)
	Qual       string   // the pushed-down qualification descriptor
	Cost       float64  // am_scancost estimate (1.0 default when not bound)
	Costed     bool     // am_scancost was consulted
	Chosen     bool
}

// Chosen returns the winning index choice, or nil for a sequential scan.
func (p *Plan) Chosen() *PlanChoice {
	for i := range p.Choices {
		if p.Choices[i].Chosen {
			return &p.Choices[i]
		}
	}
	return nil
}

// Lines renders the plan tree, one row per line (the EXPLAIN output).
func (p *Plan) Lines() []string {
	out := []string{fmt.Sprintf("%s on %s", p.Operation, p.Table)}
	ch := p.Chosen()
	if ch == nil {
		out = append(out, fmt.Sprintf("  -> sequential heap scan (cost %.2f: heap pages)", p.SeqCost),
			"       cost source: "+p.costSource())
		if p.Workers > 1 {
			out = append(out, fmt.Sprintf("       parallel:    workers=%d (page-range partitions)", p.Workers))
		}
		if p.HasFilter {
			out = append(out, "       filter:      WHERE re-checked per row")
		}
		out = append(out, "       plan:        "+p.cacheLine())
		if p.SnapshotLSN > 0 {
			out = append(out, fmt.Sprintf("       snapshot=%d", p.SnapshotLSN))
		}
		return out
	}
	out = append(out,
		fmt.Sprintf("  -> index scan on %s via %s", ch.Index, ch.AmName),
		"       opclass:     "+ch.OpClass,
		"       strategy:    "+strings.Join(ch.Strategies, ", "),
		"       qual:        "+ch.Qual)
	if ch.Costed {
		out = append(out, fmt.Sprintf("       am_scancost: %.2f (seqscan cost %.2f)", ch.Cost, p.SeqCost))
	} else {
		out = append(out, fmt.Sprintf("       cost:        %.2f, no am_scancost bound (seqscan cost %.2f)", ch.Cost, p.SeqCost))
	}
	out = append(out, "       cost source: "+p.costSource())
	if p.BatchCap > 1 {
		out = append(out, fmt.Sprintf("       batch:       %d rows per am_getmulti", p.BatchCap))
	} else {
		out = append(out, "       batch:       row-at-a-time (am_getnext protocol)")
	}
	if p.Workers > 1 {
		out = append(out, fmt.Sprintf("       parallel:    workers=%d (am_parallelscan offer)", p.Workers))
	}
	if p.HasFilter {
		out = append(out, "       filter:      WHERE re-checked per row")
	}
	out = append(out, "       plan:        "+p.cacheLine())
	if p.SnapshotLSN > 0 {
		out = append(out, fmt.Sprintf("       snapshot=%d", p.SnapshotLSN))
	}
	for i := range p.Choices {
		c := &p.Choices[i]
		if !c.Chosen {
			out = append(out, fmt.Sprintf("  rejected: %s via %s (am_scancost %.2f)", c.Index, c.AmName, c.Cost))
		}
	}
	return out
}

func (p *Plan) String() string { return strings.Join(p.Lines(), "\n") }

func (p *Plan) cacheLine() string {
	if p.Cached {
		return "cached (shared plan cache)"
	}
	return "fresh"
}

func (p *Plan) costSource() string {
	if p.CostSource == "" {
		return "default"
	}
	return p.CostSource
}

// declaredStrategies maps the qualification's (lower-cased) strategy
// functions back to their declared casing in the operator class, for
// display.
func declaredStrategies(oc *catalog.OpClass, qual *am.Qual) []string {
	seen := map[string]bool{}
	var out []string
	for _, leaf := range qual.Leaves() {
		name := leaf.Func
		for _, st := range oc.Strategies {
			if strings.EqualFold(st, name) {
				name = st
				break
			}
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// explain runs the planning half of a statement — catalog lookup, statement
// locks, am_open, qualification extraction, am_scancost — and renders the
// resulting plan instead of executing the scan.
func (s *Session) explain(t *sql.Explain) (*Result, error) {
	st := t.Stmt
	// EXPLAIN EXECUTE name (args): plan the prepared statement under the
	// given binding, reporting whether the plan came from the shared cache.
	if ex, ok := st.(*sql.Execute); ok {
		p, err := s.lookupPrepared(ex.Name)
		if err != nil {
			return nil, err
		}
		args := make([]types.Datum, len(ex.Args))
		for i, a := range ex.Args {
			v, err := s.evalExpr(a, nil, nil, nil)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		prevA, prevP := s.boundArgs, s.curPrep
		if err := s.bindPrepared(p, args); err != nil {
			return nil, err
		}
		defer func() { s.boundArgs, s.curPrep = prevA, prevP }()
		st = p.stmt
	}
	var table string
	var where sql.Expr
	var op string
	switch inner := st.(type) {
	case *sql.Select:
		table, where, op = inner.Table, inner.Where, "SELECT"
	case *sql.Delete:
		table, where, op = inner.Table, inner.Where, "DELETE"
	case *sql.Update:
		table, where, op = inner.Table, inner.Where, "UPDATE"
	default:
		return nil, errf(CodeFeature, "EXPLAIN supports SELECT, DELETE, UPDATE, and EXECUTE, not %T", t.Stmt)
	}
	tb, err := s.catTable(table)
	if err != nil {
		return nil, err
	}
	hp, err := s.e.Table(tb.Name)
	if err != nil {
		return nil, err
	}
	_, closeAll, path, plan, err := s.planStmtRead(op, st, tb, hp.Schema(), where)
	if err != nil {
		return nil, err
	}
	defer closeAll()
	if op == "DELETE" && path.index != nil {
		plan.BatchCap = 1 // the interleaved DELETE stays row-at-a-time (Section 5.5)
	}
	if op == "SELECT" {
		plan.Workers = s.scanDegree(path, plan, hp)
		// EXPLAIN takes no locks (reads are snapshot-isolated); render the
		// read view the statement would scan under.
		snap := s.stmtSnapshot(false)
		plan.SnapshotLSN = snap.ReadLSN
		s.ec.SetSnapshot(snap.ReadLSN)
	}
	res := &Result{
		Columns:  []string{"QUERY PLAN"},
		ColTypes: []types.Type{types.Builtin(types.KVarchar)},
		Plan:     plan,
	}
	for _, ln := range plan.Lines() {
		res.Rows = append(res.Rows, []types.Datum{ln})
	}
	res.Affected = len(res.Rows)
	return res, nil
}
