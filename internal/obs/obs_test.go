package obs

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	h.ObserveCount(4)
	if h.Count() != 0 {
		t.Fatal("nil histogram must ignore ObserveCount")
	}
	var ec *ExecContext
	ec.Slot("am_getnext")
	ec.AddScanned(3)
	ec.AddReturned(3)
	if ec.Finish() != nil {
		t.Fatal("nil ExecContext must finish to nil")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("x") != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	var p *Profile
	if p.Calls("am_getnext") != 0 || p.Counter("x") != 0 {
		t.Fatal("nil profile must read 0")
	}
}

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bufferpool.fetches")
	b := r.Counter("wal.appends")
	if r.Counter("bufferpool.fetches") != a {
		t.Fatal("Counter must be get-or-create")
	}
	a.Add(3)
	b.Inc()
	snap := r.Snapshot()
	if snap.Get("bufferpool.fetches") != 3 || snap.Get("wal.appends") != 1 {
		t.Fatalf("snapshot: %v", snap)
	}
	if snap.Get("missing") != 0 {
		t.Fatal("missing metric must read 0")
	}
	// Snapshots are sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	a.Add(2)
	d := r.Snapshot().Delta(snap)
	if len(d) != 1 || d[0].Name != "bufferpool.fetches" || d[0].Value != 2 {
		t.Fatalf("delta: %v", d)
	}
}

func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("lock.acquires")
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("lock.acquires").Load(); got != workers*per {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestSpanFeedsHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("engine.exec_statement")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration: %v", d)
	}
	h := r.Histogram("engine.exec_statement")
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("histogram: n=%d sum=%v", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if snap.Get("engine.exec_statement.n") != 1 {
		t.Fatalf("derived metrics: %v", snap)
	}
}

func TestObserveCountRendersAsRawSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wal.group_size")
	h.ObserveCount(3)
	h.ObserveCount(5)
	snap := r.Snapshot()
	if n := snap.Get("wal.group_size.n"); n != 2 {
		t.Fatalf("group_size.n = %d", n)
	}
	// ObserveCount stores v as v microseconds, so the .us metric is the
	// plain sum of observed values.
	if sum := snap.Get("wal.group_size.us"); sum != 8 {
		t.Fatalf("group_size.us = %d, want 8", sum)
	}
	if h.Bucket(2) != 1 || h.Bucket(3) != 1 { // 3 -> bucket 2, 5 -> bucket 3
		t.Fatalf("buckets: %d %d", h.Bucket(2), h.Bucket(3))
	}
}

func TestExecContextProfile(t *testing.T) {
	r := NewRegistry()
	r.Counter("bufferpool.fetches").Add(10) // pre-existing traffic
	ec := NewExecContext(r)
	r.Counter("bufferpool.fetches").Add(7)
	ec.Slot("am_beginscan")
	ec.Slot("am_getmulti")
	ec.Slot("am_getmulti")
	ec.AddScanned(90)
	ec.AddReturned(88)
	p := ec.Finish()
	if p.Calls("am_getmulti") != 2 || p.Calls("am_beginscan") != 1 {
		t.Fatalf("slots: %v", p.AmCalls)
	}
	if p.RowsScanned != 90 || p.RowsReturned != 88 {
		t.Fatalf("rows: %d/%d", p.RowsScanned, p.RowsReturned)
	}
	if p.Counter("bufferpool.fetches") != 7 {
		t.Fatalf("delta must exclude pre-statement traffic: %v", p.Counters)
	}
	s := p.String()
	for _, want := range []string{"scanned=90", "returned=88", "am_getmulti=2", "bufferpool.fetches=7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}

// The cached source list must pick up metrics created after a snapshot, and
// Delta must agree whether or not the two snapshots' name sets align.
func TestSnapshotSeesLateMetricsAndDeltaAlignment(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.one").Add(5)
	base := r.Snapshot()

	r.Counter("a.one").Add(2)
	r.Counter("b.two").Add(7) // created after base — breaks alignment
	r.Histogram("c.lat").Observe(3 * time.Microsecond)
	cur := r.Snapshot()

	if !sort.SliceIsSorted(cur, func(i, j int) bool { return cur[i].Name < cur[j].Name }) {
		t.Fatalf("snapshot not sorted: %v", cur)
	}
	if cur.Get("b.two") != 7 || cur.Get("c.lat.n") != 1 {
		t.Fatalf("late metrics missing: %v", cur)
	}
	d := cur.Delta(base)
	if d.Get("a.one") != 2 || d.Get("b.two") != 7 {
		t.Fatalf("unaligned delta wrong: %v", d)
	}

	// Aligned case: same metric set on both sides.
	base2 := r.Snapshot()
	r.Counter("a.one").Add(11)
	d2 := r.Snapshot().Delta(base2)
	if len(d2) != 1 || d2[0].Name != "a.one" || d2[0].Value != 11 {
		t.Fatalf("aligned delta wrong: %v", d2)
	}
}
