// Package obs is the engine's observability layer: a lock-free metrics
// registry (atomic counters and latency histograms keyed by subsystem —
// bufferpool, wal, lock, sbspace, am purpose-function dispatch), lightweight
// trace spans, and the per-statement ExecContext the engine threads through
// planning, access-method dispatch, and storage so every statement
// accumulates its own profile.
//
// The paper's testbed leaned on Informix's onstat counters and §6.4 trace
// machinery to attribute costs; this package is that measurement surface for
// the reproduction. Counters are engine-global (SYSPROFILE reads them
// directly); the ExecContext additionally keeps session-local tallies
// (purpose-slot dispatch counts, rows scanned/returned) that are exact even
// under concurrency, plus a registry delta that attributes global counter
// movement to the statement (exact whenever one session runs at a time — the
// benchmark and CLI case).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic monotonic counter. The nil *Counter is a valid
// no-op receiver, so instrumented components may increment unconditionally
// without checking whether observability was wired.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for the nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the number of log2(µs) latency buckets.
const histBuckets = 32

// Histogram is a lock-free latency histogram: log2 buckets over
// microseconds, plus total count and sum.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. The nil histogram is a no-op.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(d))
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// ObserveCount records a unit-less value v (e.g. a commit-group size) by
// storing it as v microseconds: in a Snapshot the histogram then reads as
// "<name>.n" = observations and "<name>.us" = sum of values, and the log2
// buckets give the value distribution. The nil histogram is a no-op.
func (h *Histogram) ObserveCount(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v * uint64(time.Microsecond))
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count returns how many durations were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Bucket returns the count of observations in the i-th log2(µs) bucket.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Span is an in-flight timed section feeding a histogram on End.
type Span struct {
	h     *Histogram
	start time.Time
}

// End closes the span, records its duration, and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.Observe(d)
	return d
}

// Registry holds the engine's named counters and histograms. Reads and
// get-or-create lookups are lock-free (sync.Map); hot paths cache the
// *Counter once and touch only its atomic afterwards.
//
// Snapshot runs twice per statement (ExecContext base + Finish), so it must
// not pay a sync.Map.Range plus sort each time: the metric name set is
// stable once the engine warms up, and the registry caches the sorted
// source list, invalidated only when a new counter or histogram is created.
type Registry struct {
	counters sync.Map // string -> *Counter
	hists    sync.Map // string -> *Histogram

	gen    atomic.Uint64 // bumped when a counter or histogram is created
	srcMu  sync.Mutex
	srcGen uint64
	src    []metricSource
}

// metricSource is one snapshot row's live value source: a counter, or one
// of a histogram's two derived metrics (count when us is false, total
// microseconds when true).
type metricSource struct {
	name string
	c    *Counter
	h    *Histogram
	us   bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns (creating on first use) the named counter. A nil registry
// returns the nil counter, which silently discards increments.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, loaded := r.counters.LoadOrStore(name, &Counter{})
	if !loaded {
		r.gen.Add(1)
	}
	return v.(*Counter)
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, loaded := r.hists.LoadOrStore(name, &Histogram{})
	if !loaded {
		r.gen.Add(1)
	}
	return v.(*Histogram)
}

// StartSpan opens a timed section recorded into the named histogram.
func (r *Registry) StartSpan(name string) Span {
	return Span{h: r.Histogram(name), start: time.Now()}
}

// Metric is one named counter value in a snapshot.
type Metric struct {
	Name  string
	Value uint64
}

// Snapshot is a point-in-time view of a registry, sorted by name.
// Histograms appear as two derived metrics: "<name>.n" (observations) and
// "<name>.us" (total microseconds).
type Snapshot []Metric

// sources returns the sorted metric source list, rebuilding it only when a
// counter or histogram was created since the last build. The returned slice
// is shared and must not be mutated. A metric created concurrently with a
// rebuild may be included early or picked up on the next call — either way
// every later Snapshot sees it.
func (r *Registry) sources() []metricSource {
	gen := r.gen.Load()
	r.srcMu.Lock()
	defer r.srcMu.Unlock()
	if r.src != nil && r.srcGen == gen {
		return r.src
	}
	var src []metricSource
	r.counters.Range(func(k, v any) bool {
		src = append(src, metricSource{name: k.(string), c: v.(*Counter)})
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		src = append(src,
			metricSource{name: k.(string) + ".n", h: h},
			metricSource{name: k.(string) + ".us", h: h, us: true})
		return true
	})
	sort.Slice(src, func(i, j int) bool { return src[i].name < src[j].name })
	r.src, r.srcGen = src, gen
	return src
}

// Snapshot captures all counters and histograms.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	src := r.sources()
	out := make(Snapshot, len(src))
	for i, s := range src {
		var v uint64
		switch {
		case s.c != nil:
			v = s.c.Load()
		case s.us:
			v = uint64(s.h.Sum() / time.Microsecond)
		default:
			v = s.h.Count()
		}
		out[i] = Metric{Name: s.name, Value: v}
	}
	return out
}

// Get returns the named metric's value (0 when absent).
func (s Snapshot) Get(name string) uint64 {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i].Value
	}
	return 0
}

// Delta returns s - base, keeping only metrics that moved. Metrics absent
// from base count from zero (they were created during the window). The
// common case — both snapshots taken from an unchanged metric set, so the
// names align index for index — subtracts without any searching.
func (s Snapshot) Delta(base Snapshot) Snapshot {
	var out Snapshot
	aligned := len(s) == len(base)
	for i, m := range s {
		var b uint64
		if aligned && base[i].Name == m.Name {
			b = base[i].Value
		} else {
			aligned = false
			b = base.Get(m.Name)
		}
		if d := m.Value - b; d != 0 {
			out = append(out, Metric{Name: m.Name, Value: d})
		}
	}
	return out
}

// ExecContext accumulates one statement's execution profile. The engine
// creates one per statement and threads it down to the access-method layer
// (via ScanDesc) and the executor. It is safe for concurrent use: parallel
// scan workers share the statement's ExecContext, so the row tallies are
// atomics and the slot map is mutex-guarded. The nil *ExecContext is a valid
// no-op receiver so instrumented code paths never need to check whether a
// statement is being profiled.
type ExecContext struct {
	reg   *Registry
	start time.Time
	base  Snapshot

	mu           sync.Mutex
	slots        map[string]uint64 // purpose-function dispatch counts
	rowsScanned  atomic.Uint64
	rowsReturned atomic.Uint64
	snapshotLSN  atomic.Uint64 // MVCC read view cut, 0 when none captured
}

// NewExecContext opens a statement profile against the registry.
func NewExecContext(reg *Registry) *ExecContext {
	return &ExecContext{
		reg:   reg,
		start: time.Now(),
		base:  reg.Snapshot(),
		slots: make(map[string]uint64),
	}
}

// Slot counts one purpose-function dispatch (e.g. "am_getmulti").
func (ec *ExecContext) Slot(name string) {
	if ec == nil {
		return
	}
	ec.mu.Lock()
	ec.slots[name]++
	ec.mu.Unlock()
}

// AddScanned counts rows pulled from the access method or heap source,
// before the WHERE re-check.
func (ec *ExecContext) AddScanned(n int) {
	if ec == nil || n <= 0 {
		return
	}
	ec.rowsScanned.Add(uint64(n))
}

// AddReturned counts rows surviving filtering, i.e. delivered to the client
// (or consumed by the mutating statement).
func (ec *ExecContext) AddReturned(n int) {
	if ec == nil || n <= 0 {
		return
	}
	ec.rowsReturned.Add(uint64(n))
}

// SetSnapshot records the statement's MVCC read view cut (the snapshot's
// read LSN). Zero — no snapshot captured — is ignored.
func (ec *ExecContext) SetSnapshot(lsn uint64) {
	if ec == nil || lsn == 0 {
		return
	}
	ec.snapshotLSN.Store(lsn)
}

// Finish closes the profile: elapsed time, the session-local tallies, and
// the registry delta over the statement's window.
func (ec *ExecContext) Finish() *Profile {
	if ec == nil {
		return nil
	}
	ec.mu.Lock()
	slots := make(map[string]uint64, len(ec.slots))
	for k, v := range ec.slots {
		slots[k] = v
	}
	ec.mu.Unlock()
	return &Profile{
		Elapsed:      time.Since(ec.start),
		RowsScanned:  ec.rowsScanned.Load(),
		RowsReturned: ec.rowsReturned.Load(),
		SnapshotLSN:  ec.snapshotLSN.Load(),
		AmCalls:      slots,
		Counters:     ec.reg.Snapshot().Delta(ec.base),
	}
}

// Profile is one statement's finished execution profile.
type Profile struct {
	Elapsed      time.Duration
	RowsScanned  uint64 // rows pulled from the source, pre-filter
	RowsReturned uint64 // rows surviving the WHERE re-check
	SnapshotLSN  uint64 // MVCC read view cut, 0 when the statement took none
	// AmCalls counts purpose-function dispatches by slot name, session-local
	// and therefore exact under concurrency.
	AmCalls map[string]uint64
	// Counters is the engine-wide registry delta over the statement window
	// (exact when one session runs at a time).
	Counters Snapshot
}

// Calls returns the dispatch count of one purpose slot.
func (p *Profile) Calls(slot string) uint64 {
	if p == nil {
		return 0
	}
	return p.AmCalls[slot]
}

// Counter returns one registry-delta value by name.
func (p *Profile) Counter(name string) uint64 {
	if p == nil {
		return 0
	}
	return p.Counters.Get(name)
}

// String renders a compact single-line profile (CLI/benchrunner output).
func (p *Profile) String() string {
	if p == nil {
		return "<no profile>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%v scanned=%d returned=%d", p.Elapsed.Round(time.Microsecond), p.RowsScanned, p.RowsReturned)
	slots := make([]string, 0, len(p.AmCalls))
	for s := range p.AmCalls {
		slots = append(slots, s)
	}
	sort.Strings(slots)
	for _, s := range slots {
		fmt.Fprintf(&b, " %s=%d", s, p.AmCalls[s])
	}
	for _, m := range p.Counters {
		if strings.HasPrefix(m.Name, "am.") {
			continue // already reported per-slot above
		}
		fmt.Fprintf(&b, " %s=%d", m.Name, m.Value)
	}
	return b.String()
}
