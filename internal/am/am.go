// Package am is this engine's Virtual-Index Interface: the framework
// through which developer-defined secondary access methods plug into the
// server, mirroring the paper's Section 4 step by step.
//
//   - Purpose functions (Table 2) are Go functions with fixed signatures,
//     registered by name in a "shared library" (the grtree.bld analogue),
//     bound to SQL names with CREATE FUNCTION, and assembled into an access
//     method with CREATE SECONDARY ACCESS_METHOD. Only am_getnext is
//     mandatory.
//   - Descriptors (index, scan, qualification) carry the information the
//     purpose functions need; the server fills in most fields and passes
//     them down (Section 4, Step 2).
//   - Operator classes group the strategy functions (usable in WHERE
//     clauses, making the optimizer consider the index) and support
//     functions (internal maintenance) of an access method (Step 4).
//   - Qualification descriptors are restricted to single-column predicates
//     f(column, constant) / f(constant, column) / f(column) — the
//     restriction that forced the one-column time-extent type (Section 5.1).
package am

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/chronon"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/mi"
	"repro/internal/obs"
	"repro/internal/sbspace"
	"repro/internal/types"
)

// ErrNoEntry is returned (wrapped) by am_delete when the index holds no
// entry for the given row and rowid. Under deferred index maintenance the
// vacuum tolerates it: a version may die before an index is built over it,
// and a NoWAL vacuum retry may revisit entries a half-failed earlier pass
// already removed. Any other delete error still aborts the caller.
var ErrNoEntry = errors.New("am: index has no entry for row")

// Library is a loaded shared object: symbol name → Go function. A blade
// package exports one; the engine loads it under the EXTERNAL NAME path
// used in CREATE FUNCTION statements.
type Library map[string]any

// UDRFunc is the uniform signature of a user-defined routine callable from
// SQL (strategy and support functions, casts, helpers).
type UDRFunc func(ctx *mi.Context, args []types.Datum) (types.Datum, error)

// Services is the server-side interface handed to purpose functions through
// the index descriptor: sbspaces, the transaction, the clock, and the
// "table associated with the access method" in which grt_create records the
// index's large-object handle (Appendix A, steps 6/3).
type Services interface {
	// Space resolves an sbspace by name.
	Space(name string) (*sbspace.Space, error)
	// TxID returns the current transaction's lock owner id.
	TxID() lock.TxID
	// Isolation returns the transaction's isolation level.
	Isolation() lock.IsolationLevel
	// Clock returns the server clock (purpose functions resolve UC/NOW
	// through it, per the Section 5.4 policy the blade implements).
	Clock() chronon.Clock
	// AMRecordPut stores a record in the access method's bookkeeping table.
	AMRecordPut(amName, indexName string, data []byte) error
	// AMRecordGet fetches a bookkeeping record.
	AMRecordGet(amName, indexName string) ([]byte, bool, error)
	// AMRecordDelete removes a bookkeeping record.
	AMRecordDelete(amName, indexName string) error
	// InvokeUDR dynamically resolves and calls a registered UDR by SQL name
	// (how non-hard-coded strategy/support functions are executed).
	InvokeUDR(name string, args []types.Datum) (types.Datum, error)
}

// IndexDesc is the index descriptor: per-open-index state passed to every
// purpose function.
type IndexDesc struct {
	Name      string
	TableName string
	AmName    string
	Columns   []string
	ColTypes  []types.Type
	ColIdxs   []int // positions of the indexed columns in the table row
	OpClass   string
	SpaceName string
	Params    map[string]string
	// ReadOnly tells the access method the statement will not mutate the
	// index, so it may open its storage with a shared lock (Section 5.3).
	ReadOnly bool

	// Stats is the index's collected statistics (SYSSTATS), filled by the
	// server when UPDATE STATISTICS has run for the table. Nil means no
	// statistics were collected — am_scancost falls back to its built-in
	// estimate family.
	Stats *IndexStats

	Ctx      *mi.Context
	Services Services

	// UserData is the blade's state for the open index (the Tree object of
	// Appendix A lives here).
	UserData any
}

// ScanDesc is the scan descriptor passed to the scan purpose functions.
type ScanDesc struct {
	Index *IndexDesc
	Qual  *Qual
	// UserData is the blade's cursor state (the Cursor object).
	UserData any

	// BatchCap is the server's proposed am_getmulti batch capacity. It is
	// set before am_beginscan so the access method can negotiate: a blade
	// that prefers a different granularity (e.g. one leaf node's worth of
	// entries) may lower or raise it during am_beginscan, and the server
	// allocates Batch to the agreed size afterwards. Zero means the server
	// will use the row-at-a-time am_getnext protocol only.
	BatchCap int
	// Batch is the shared output buffer am_getmulti fills. The server
	// owns the allocation; the access method must not retain references to
	// it across calls.
	Batch *ScanBatch

	// Obs is the statement's execution profile (nil when the statement is
	// not profiled). The framework counts rows delivered by the access
	// method here; blades may additionally record their own slot counts.
	Obs *obs.ExecContext

	// Snapshot is the statement's MVCC read view. The server applies it when
	// resolving the rowids the access method returns against the heap, so
	// blades never consult it — it rides on the descriptor because the
	// resolution happens per batch, including inside parallel scan workers.
	Snapshot *heap.Snapshot
}

// ScanBatch is the am_getmulti output buffer: parallel slices of qualifying
// rowids and their indexed-column values (a row entry may be nil when the
// access method returns candidates for the server to re-qualify, as the
// R*-tree baseline does).
type ScanBatch struct {
	RowIDs []heap.RowID
	Rows   [][]types.Datum
	N      int // entries filled by the last am_getmulti call
}

// NewScanBatch allocates a batch buffer of the given capacity (minimum 1).
func NewScanBatch(capacity int) *ScanBatch {
	if capacity < 1 {
		capacity = 1
	}
	return &ScanBatch{
		RowIDs: make([]heap.RowID, capacity),
		Rows:   make([][]types.Datum, capacity),
	}
}

// Cap returns the batch capacity.
func (b *ScanBatch) Cap() int { return len(b.RowIDs) }

// Reset empties the batch (discarding any buffered rowids, e.g. on
// am_rescan — a restarted cursor must not replay stale entries).
func (b *ScanBatch) Reset() {
	for i := 0; i < b.N; i++ {
		b.Rows[i] = nil
	}
	b.N = 0
}

// Full reports whether the batch has reached capacity.
func (b *ScanBatch) Full() bool { return b.N >= len(b.RowIDs) }

// Append adds one qualifying entry. It panics past capacity (purpose
// functions must check Full).
func (b *ScanBatch) Append(rid heap.RowID, row []types.Datum) {
	b.RowIDs[b.N] = rid
	b.Rows[b.N] = row
	b.N++
}

// QualOp discriminates qualification nodes.
type QualOp int

const (
	// QFunc is a single strategy-function predicate.
	QFunc QualOp = iota
	// QAnd is a conjunction.
	QAnd
	// QOr is a disjunction.
	QOr
)

// Qual is a qualification descriptor: the relevant part of the WHERE clause
// the server passes to the index interface. Leaves are single-column
// predicates only (Section 5.1).
type Qual struct {
	Op       QualOp
	Children []*Qual

	// Leaf fields (QFunc):
	Func     string      // strategy function SQL name (lower-cased)
	ColIdx   int         // indexed-column ordinal within the index (0-based)
	Const    types.Datum // the constant argument
	ColFirst bool        // true for f(column, constant)
}

// NewFuncQual builds a leaf predicate.
func NewFuncQual(fn string, colIdx int, c types.Datum, colFirst bool) *Qual {
	return &Qual{Op: QFunc, Func: strings.ToLower(fn), ColIdx: colIdx, Const: c, ColFirst: colFirst}
}

// NewBoolQual builds an AND/OR node.
func NewBoolQual(op QualOp, children ...*Qual) *Qual {
	return &Qual{Op: op, Children: children}
}

// Leaves returns the function predicates in evaluation order (the "break a
// complex qualification into simple ones" logic of Section 6.3).
func (q *Qual) Leaves() []*Qual {
	if q == nil {
		return nil
	}
	if q.Op == QFunc {
		return []*Qual{q}
	}
	var out []*Qual
	for _, c := range q.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Evaluate computes the qualification over per-leaf truth values supplied
// by eval.
func (q *Qual) Evaluate(eval func(*Qual) (bool, error)) (bool, error) {
	if q == nil {
		return true, nil
	}
	switch q.Op {
	case QFunc:
		return eval(q)
	case QAnd:
		for _, c := range q.Children {
			ok, err := c.Evaluate(eval)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case QOr:
		for _, c := range q.Children {
			ok, err := c.Evaluate(eval)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("am: bad qual op %d", q.Op)
}

func (q *Qual) String() string {
	if q == nil {
		return "<none>"
	}
	switch q.Op {
	case QFunc:
		if q.ColFirst {
			return fmt.Sprintf("%s(col%d, const)", q.Func, q.ColIdx)
		}
		return fmt.Sprintf("%s(const, col%d)", q.Func, q.ColIdx)
	case QAnd, QOr:
		sep := " AND "
		if q.Op == QOr {
			sep = " OR "
		}
		parts := make([]string, len(q.Children))
		for i, c := range q.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	}
	return "?"
}

// Purpose-function signatures (Table 2). RowID is the heap rowid; Row is
// the indexed columns' values.
type (
	// AmIndexFunc is the signature of am_create/drop/open/close.
	AmIndexFunc func(ctx *mi.Context, id *IndexDesc) error
	// AmScanFunc is the signature of am_beginscan/endscan/rescan.
	AmScanFunc func(ctx *mi.Context, sd *ScanDesc) error
	// AmGetNextFunc returns the next qualifying rowid plus the indexed
	// column values; ok=false ends the scan.
	AmGetNextFunc func(ctx *mi.Context, sd *ScanDesc) (rid heap.RowID, row []types.Datum, ok bool, err error)
	// AmGetMultiFunc is the batched variant of am_getnext: it resets and
	// fills sd.Batch with up to sd.Batch.Cap() qualifying entries and
	// returns the count. Returning fewer than the capacity signals that
	// the scan is exhausted. The slot is optional — the server adapts
	// getnext-only access methods automatically (only am_getnext is
	// mandatory, Table 2).
	AmGetMultiFunc func(ctx *mi.Context, sd *ScanDesc) (int, error)
	// AmMutateFunc is the signature of am_insert/am_delete.
	AmMutateFunc func(ctx *mi.Context, id *IndexDesc, row []types.Datum, rid heap.RowID) error
	// AmUpdateFunc is the signature of am_update.
	AmUpdateFunc func(ctx *mi.Context, id *IndexDesc, oldRow []types.Datum, oldRid heap.RowID, newRow []types.Datum, newRid heap.RowID) error
	// AmScanCostFunc estimates the I/O cost of an index scan.
	AmScanCostFunc func(ctx *mi.Context, id *IndexDesc, q *Qual) (float64, error)
	// AmStatsFunc collects index statistics: a human-readable summary plus
	// (optionally) the entry count and key histograms UPDATE STATISTICS
	// persists into SYSSTATS for am_scancost.
	AmStatsFunc func(ctx *mi.Context, id *IndexDesc) (*IndexStats, error)
	// AmCheckFunc verifies index consistency.
	AmCheckFunc func(ctx *mi.Context, id *IndexDesc) error
	// AmBuildNext feeds an am_build bulk load: each call returns the next
	// batch of rows to index (rowids plus indexed-column values, the same
	// ScanBatch shape am_getmulti produces) or nil when the source scan is
	// exhausted. The batch buffer is reused between calls; the access method
	// must copy anything it keeps.
	AmBuildNext func() (*ScanBatch, error)
	// AmBuildFunc is the optional bulk-build slot: it loads a freshly created,
	// empty index from the batches the feed supplies and returns the number of
	// rows loaded. Access methods that bind it get the fast path at CREATE
	// INDEX time (e.g. a sort-based bottom-up pack); methods without it are
	// fed through batched am_insert calls instead.
	AmBuildFunc func(ctx *mi.Context, id *IndexDesc, next AmBuildNext) (int, error)
	// AmParallelScanFunc is the optional intra-query parallelism slot. The
	// server calls it right after am_beginscan, offering a degree of
	// parallelism; an access method that accepts returns one ScanDesc per
	// partition (sharing sd.Index/sd.Qual/sd.Obs, each with its own
	// UserData cursor), which independent workers then drive through the
	// normal am_getmulti protocol. Returning nil, or fewer than two
	// partitions, declines the offer and the server runs the scan serially.
	// Partition cursors must be safe to drive from distinct goroutines; the
	// server guarantees am_rescan/am_endscan are only called on the parent
	// descriptor after every worker has stopped.
	AmParallelScanFunc func(ctx *mi.Context, sd *ScanDesc, degree int) ([]*ScanDesc, error)
	// AmAggregateFunc is the optional aggregate-pushdown slot: the server
	// offers a single-table COUNT/MIN/MAX over an indexable qualification
	// and the access method answers it from the index structure alone
	// (entry counts in covered subtrees, boundary leaves) without producing
	// rowids. Returning ok=false declines the offer — the server falls back
	// to the tuple-drain path. The server only trusts the result when its
	// MVCC gate proves every indexed entry visible to the statement's
	// snapshot; blades compute over current index state and need no
	// snapshot logic of their own.
	AmAggregateFunc func(ctx *mi.Context, id *IndexDesc, req *AggRequest) (*AggResult, bool, error)
)

// AggKind discriminates the aggregates offered through am_aggregate.
type AggKind int

const (
	// AggCount is COUNT(*) (and COUNT(col) over the indexed column, which
	// the server proves equivalent — indexed entries are never NULL).
	AggCount AggKind = iota
	// AggMin is MIN(col) over the indexed column.
	AggMin
	// AggMax is MAX(col) over the indexed column.
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "?"
}

// AggRequest is the aggregate offer handed to am_aggregate.
type AggRequest struct {
	Kind AggKind
	// Qual is the full qualification — residual-free by construction (the
	// server only offers aggregates whose WHERE clause the index claims
	// entirely).
	Qual *Qual
}

// AggResult is am_aggregate's answer.
type AggResult struct {
	// Count is the matching-entry count (AggCount).
	Count int64
	// Value is the extreme indexed-column value (AggMin/AggMax); nil with
	// Empty set when no entry matched (SQL NULL).
	Value types.Datum
	// Empty reports that no entry matched (MIN/MAX of an empty set).
	Empty bool
}

// PurposeSet is a resolved access method: each slot holds the purpose
// function registered for it (nil when the access method omitted it). Only
// GetNext is mandatory (Section 4, Step 2).
type PurposeSet struct {
	Create    AmIndexFunc
	Drop      AmIndexFunc
	Open      AmIndexFunc
	Close     AmIndexFunc
	BeginScan AmScanFunc
	EndScan   AmScanFunc
	Rescan    AmScanFunc
	GetNext   AmGetNextFunc
	GetMulti  AmGetMultiFunc
	Insert    AmMutateFunc
	Delete    AmMutateFunc
	Update    AmUpdateFunc
	ScanCost  AmScanCostFunc
	Stats     AmStatsFunc
	Check     AmCheckFunc
	// Build is the optional am_build bulk-load slot (nil = populate via
	// batched am_insert).
	Build AmBuildFunc
	// ParallelScan is the optional am_parallelscan slot (nil = the access
	// method never accepts a parallel offer).
	ParallelScan AmParallelScanFunc
	// Aggregate is the optional am_aggregate slot (nil = COUNT/MIN/MAX are
	// always answered by the tuple-drain path).
	Aggregate AmAggregateFunc
}

// PurposeSlots are the am_* parameter names accepted by CREATE SECONDARY
// ACCESS_METHOD, in Table 2 order.
var PurposeSlots = []string{
	"am_create", "am_drop", "am_open", "am_close",
	"am_beginscan", "am_endscan", "am_rescan", "am_getnext", "am_getmulti",
	"am_insert", "am_delete", "am_update", "am_build",
	"am_scancost", "am_stats", "am_check", "am_parallelscan", "am_aggregate",
}

// Bind assembles a PurposeSet from slot-name → symbol assignments, looking
// symbols up in resolve (which maps a registered function name to the Go
// function behind it). It enforces that am_getnext is present and that each
// symbol has the slot's signature.
func Bind(slots map[string]string, resolve func(fname string) (any, error)) (*PurposeSet, error) {
	ps := &PurposeSet{}
	for slot, fname := range slots {
		if strings.EqualFold(slot, "am_sptype") {
			continue // storage-kind declaration ("S" = sbspace), not a function
		}
		sym, err := resolve(fname)
		if err != nil {
			return nil, fmt.Errorf("am: %s = %s: %w", slot, fname, err)
		}
		ok := true
		switch strings.ToLower(slot) {
		case "am_create":
			ps.Create, ok = sym.(AmIndexFunc)
		case "am_drop":
			ps.Drop, ok = sym.(AmIndexFunc)
		case "am_open":
			ps.Open, ok = sym.(AmIndexFunc)
		case "am_close":
			ps.Close, ok = sym.(AmIndexFunc)
		case "am_beginscan":
			ps.BeginScan, ok = sym.(AmScanFunc)
		case "am_endscan":
			ps.EndScan, ok = sym.(AmScanFunc)
		case "am_rescan":
			ps.Rescan, ok = sym.(AmScanFunc)
		case "am_getnext":
			ps.GetNext, ok = sym.(AmGetNextFunc)
		case "am_getmulti":
			ps.GetMulti, ok = sym.(AmGetMultiFunc)
		case "am_insert":
			ps.Insert, ok = sym.(AmMutateFunc)
		case "am_delete":
			ps.Delete, ok = sym.(AmMutateFunc)
		case "am_update":
			ps.Update, ok = sym.(AmUpdateFunc)
		case "am_build":
			ps.Build, ok = sym.(AmBuildFunc)
		case "am_scancost":
			ps.ScanCost, ok = sym.(AmScanCostFunc)
		case "am_stats":
			ps.Stats, ok = sym.(AmStatsFunc)
		case "am_check":
			ps.Check, ok = sym.(AmCheckFunc)
		case "am_parallelscan":
			ps.ParallelScan, ok = sym.(AmParallelScanFunc)
		case "am_aggregate":
			ps.Aggregate, ok = sym.(AmAggregateFunc)
		default:
			return nil, fmt.Errorf("am: unknown purpose slot %q", slot)
		}
		if !ok {
			return nil, fmt.Errorf("am: %s = %s has the wrong signature (%T)", slot, fname, sym)
		}
	}
	if ps.GetNext == nil {
		return nil, fmt.Errorf("am: am_getnext is mandatory")
	}
	return ps, nil
}

// DefaultBatchCap is the server's default am_getmulti batch capacity when
// an access method does not negotiate a different one at am_beginscan.
const DefaultBatchCap = 64

// AdaptGetNext wraps a getnext-only access method's am_getnext as a batch
// fill, so the server's batched executor drives legacy blades unchanged.
// The hooks bracket each underlying am_getnext call (the server traces the
// call and closes its PER_FUNCTION memory window there), preserving the
// paper's Figure 6 row-at-a-time call sequence in the trace.
func AdaptGetNext(next AmGetNextFunc, before, after func()) AmGetMultiFunc {
	return func(ctx *mi.Context, sd *ScanDesc) (int, error) {
		b := sd.Batch
		b.Reset()
		for !b.Full() {
			if before != nil {
				before()
			}
			rid, row, ok, err := next(ctx, sd)
			if after != nil {
				after()
			}
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
			b.Append(rid, row)
		}
		return b.N, nil
	}
}

// FillFrom drives one am_getmulti (or adapted am_getnext) call through the
// purpose set, allocating sd.Batch on first use. getMulti is the resolved
// batch function (native GetMulti or an AdaptGetNext wrapper). Rows are
// counted into sd.Obs here — after the fill, at the single point both paths
// share — so a native am_getmulti and an adapted am_getnext scan report
// identical rows-scanned counts by construction.
func FillFrom(ctx *mi.Context, sd *ScanDesc, getMulti AmGetMultiFunc) (int, error) {
	if sd.Batch == nil {
		if sd.BatchCap < 1 {
			sd.BatchCap = 1
		}
		sd.Batch = NewScanBatch(sd.BatchCap)
	}
	n, err := getMulti(ctx, sd)
	if err == nil {
		sd.Obs.AddScanned(n)
	}
	return n, err
}

// OpClass is an operator class (Step 4): the strategy functions that make
// the optimizer consider the access method, and the support functions the
// access method resolves internally.
type OpClass struct {
	Name       string
	AmName     string
	Strategies []string
	Support    []string
	Default    bool
}

// HasStrategy reports whether fn (SQL name) is a strategy function of the
// class.
func (oc *OpClass) HasStrategy(fn string) bool {
	for _, s := range oc.Strategies {
		if strings.EqualFold(s, fn) {
			return true
		}
	}
	return false
}
