package am

import (
	"fmt"
	"sort"
)

// Collected statistics (SYSSTATS): UPDATE STATISTICS runs each index's
// am_stats, which returns an IndexStats the catalog persists. am_scancost
// later receives it back through IndexDesc.Stats and estimates selectivity
// from the histograms instead of magic constants. All fields are exported
// for the catalog's JSON persistence.

// Histogram is an equi-depth histogram over a one-dimensional float64 key
// domain: Bounds holds B+1 ascending bucket boundaries, each bucket covering
// an equal share of the summarized keys.
type Histogram struct {
	Bounds []float64
	Rows   int
}

// BuildHistogram summarizes vals into an equi-depth histogram of at most
// buckets buckets. vals is sorted in place.
func BuildHistogram(vals []float64, buckets int) Histogram {
	if len(vals) == 0 || buckets < 1 {
		return Histogram{}
	}
	sort.Float64s(vals)
	if buckets > len(vals) {
		buckets = len(vals)
	}
	bounds := make([]float64, 0, buckets+1)
	bounds = append(bounds, vals[0])
	for i := 1; i <= buckets; i++ {
		idx := i*len(vals)/buckets - 1
		bounds = append(bounds, vals[idx])
	}
	return Histogram{Bounds: bounds, Rows: len(vals)}
}

// FracLE estimates the fraction of summarized keys ≤ x, interpolating
// linearly inside the containing bucket.
func (h Histogram) FracLE(x float64) float64 {
	n := len(h.Bounds)
	if h.Rows == 0 || n < 2 {
		return 0
	}
	if x < h.Bounds[0] {
		return 0
	}
	if x >= h.Bounds[n-1] {
		return 1
	}
	// Find the bucket [Bounds[i], Bounds[i+1]) containing x.
	i := sort.SearchFloat64s(h.Bounds, x)
	if i > 0 && h.Bounds[i] != x {
		i--
	}
	if i >= n-1 {
		i = n - 2
	}
	lo, hi := h.Bounds[i], h.Bounds[i+1]
	frac := 1.0
	if hi > lo {
		frac = (x - lo) / (hi - lo)
	}
	buckets := float64(n - 1)
	return (float64(i) + frac) / buckets
}

// IndexStats is one index's collected statistics.
type IndexStats struct {
	// Summary is the human-readable report (UPDATE STATISTICS FOR INDEX's
	// message, am_stats' original contract).
	Summary string
	// Entries is the live index entry count at collection time.
	Entries int
	// Lo/Hi are equi-depth histograms over the indexed keys' interval
	// starts and ends (resolved valid time for temporal extents; both equal
	// for scalar keys). Empty when the access method collects no histogram
	// (the gist row-count fallback).
	Lo, Hi Histogram
}

// SelectivityOverlap estimates the fraction of summarized intervals that
// intersect the query interval [qlo, qhi]: an interval overlaps unless it
// ends before qlo or starts after qhi, so the estimate is
// F_start(qhi) − F_end(qlo).
func (s *IndexStats) SelectivityOverlap(qlo, qhi float64) float64 {
	if s == nil || s.Lo.Rows == 0 || s.Hi.Rows == 0 {
		return 1
	}
	sel := s.Lo.FracLE(qhi) - s.Hi.FracLE(qlo)
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func (s *IndexStats) String() string {
	if s == nil {
		return "<no stats>"
	}
	buckets := len(s.Lo.Bounds) - 1
	if buckets < 0 {
		buckets = 0
	}
	return fmt.Sprintf("%s (%d entries, %d histogram buckets)",
		s.Summary, s.Entries, buckets)
}
