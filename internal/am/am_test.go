package am

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/mi"
	"repro/internal/types"
)

func TestQualEvaluate(t *testing.T) {
	a := NewFuncQual("overlaps", 0, int64(1), true)
	b := NewFuncQual("equal", 0, int64(2), true)
	c := NewFuncQual("contains", 0, int64(3), false)
	q := NewBoolQual(QOr, NewBoolQual(QAnd, a, b), c)

	truth := map[string]bool{"overlaps": true, "equal": false, "contains": true}
	got, err := q.Evaluate(func(l *Qual) (bool, error) { return truth[l.Func], nil })
	if err != nil {
		t.Fatal(err)
	}
	if !got { // (T AND F) OR T = T
		t.Fatal("OR must be true")
	}
	truth["contains"] = false
	got, _ = q.Evaluate(func(l *Qual) (bool, error) { return truth[l.Func], nil })
	if got {
		t.Fatal("(T AND F) OR F must be false")
	}
	// Short circuits: AND stops at the first false.
	calls := 0
	and := NewBoolQual(QAnd, b, a)
	and.Evaluate(func(l *Qual) (bool, error) { calls++; return false, nil })
	if calls != 1 {
		t.Fatalf("AND short circuit: %d calls", calls)
	}
	// Errors propagate.
	if _, err := q.Evaluate(func(l *Qual) (bool, error) { return false, fmt.Errorf("boom") }); err == nil {
		t.Fatal("error must propagate")
	}
	// Nil qual is vacuously true.
	var nq *Qual
	if ok, _ := nq.Evaluate(nil); !ok {
		t.Fatal("nil qual")
	}
	if nq.String() != "<none>" || q.String() == "" || a.String() == "" || c.String() == "" {
		t.Fatal("strings")
	}
}

func TestQualLeaves(t *testing.T) {
	a := NewFuncQual("f", 0, nil, true)
	b := NewFuncQual("g", 0, nil, true)
	q := NewBoolQual(QAnd, a, NewBoolQual(QOr, b, a))
	leaves := q.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves: %d", len(leaves))
	}
	if leaves[0].Func != "f" || leaves[1].Func != "g" {
		t.Fatal("leaf order")
	}
}

func testResolver(lib Library) func(string) (any, error) {
	return func(name string) (any, error) {
		sym, ok := lib[name]
		if !ok {
			return nil, fmt.Errorf("no symbol %s", name)
		}
		return sym, nil
	}
}

func TestBindPurposeSet(t *testing.T) {
	var opened, got int
	lib := Library{
		"x_open": AmIndexFunc(func(*mi.Context, *IndexDesc) error { opened++; return nil }),
		"x_getnext": AmGetNextFunc(func(*mi.Context, *ScanDesc) (heap.RowID, []types.Datum, bool, error) {
			got++
			return 0, nil, false, nil
		}),
		"x_cost": AmScanCostFunc(func(*mi.Context, *IndexDesc, *Qual) (float64, error) { return 1, nil }),
	}
	ps, err := Bind(map[string]string{
		"am_open":     "x_open",
		"am_getnext":  "x_getnext",
		"am_scancost": "x_cost",
		"am_sptype":   "S",
	}, testResolver(lib))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Open == nil || ps.GetNext == nil || ps.ScanCost == nil || ps.Create != nil {
		t.Fatal("slot binding")
	}
	ps.Open(nil, nil)
	ps.GetNext(nil, nil)
	if opened != 1 || got != 1 {
		t.Fatal("bound functions must dispatch")
	}
}

func TestBindErrors(t *testing.T) {
	lib := Library{
		"bad":     "not a function",
		"getnext": AmGetNextFunc(func(*mi.Context, *ScanDesc) (heap.RowID, []types.Datum, bool, error) { return 0, nil, false, nil }),
	}
	// Missing am_getnext.
	if _, err := Bind(map[string]string{"am_open": "getnext"}, testResolver(lib)); err == nil {
		t.Fatal("am_open with wrong signature AND missing getnext must fail")
	}
	if _, err := Bind(map[string]string{}, testResolver(lib)); err == nil || !strings.Contains(err.Error(), "mandatory") {
		t.Fatalf("empty binding must demand am_getnext: %v", err)
	}
	// Wrong signature.
	if _, err := Bind(map[string]string{"am_getnext": "bad"}, testResolver(lib)); err == nil {
		t.Fatal("wrong signature must fail")
	}
	// Unknown slot.
	if _, err := Bind(map[string]string{"am_getnext": "getnext", "am_frobnicate": "getnext"}, testResolver(lib)); err == nil {
		t.Fatal("unknown slot must fail")
	}
	// Unresolvable symbol.
	if _, err := Bind(map[string]string{"am_getnext": "missing"}, testResolver(lib)); err == nil {
		t.Fatal("missing symbol must fail")
	}
}

func TestScanBatch(t *testing.T) {
	b := NewScanBatch(3)
	if b.Cap() != 3 || b.N != 0 || b.Full() {
		t.Fatal("fresh batch")
	}
	b.Append(1, []types.Datum{int64(10)})
	b.Append(2, nil)
	b.Append(3, []types.Datum{int64(30)})
	if !b.Full() || b.N != 3 {
		t.Fatal("full batch")
	}
	b.Reset()
	if b.N != 0 || b.Full() {
		t.Fatal("reset")
	}
	// Reset must drop row references so batches do not pin old rows.
	if b.Rows[0] != nil || b.Rows[2] != nil {
		t.Fatal("reset must nil out rows")
	}
	// A zero or negative capacity clamps to 1.
	if NewScanBatch(0).Cap() != 1 || NewScanBatch(-5).Cap() != 1 {
		t.Fatal("capacity clamp")
	}
}

func TestBindGetMulti(t *testing.T) {
	lib := Library{
		"getnext":  AmGetNextFunc(func(*mi.Context, *ScanDesc) (heap.RowID, []types.Datum, bool, error) { return 0, nil, false, nil }),
		"getmulti": AmGetMultiFunc(func(*mi.Context, *ScanDesc) (int, error) { return 0, nil }),
	}
	ps, err := Bind(map[string]string{"am_getnext": "getnext", "am_getmulti": "getmulti"}, testResolver(lib))
	if err != nil {
		t.Fatal(err)
	}
	if ps.GetMulti == nil {
		t.Fatal("am_getmulti must bind")
	}
	// Wrong signature in the am_getmulti slot must be rejected.
	if _, err := Bind(map[string]string{"am_getnext": "getnext", "am_getmulti": "getnext"}, testResolver(lib)); err == nil {
		t.Fatal("am_getmulti with am_getnext signature must fail")
	}
}

func TestAdaptGetNext(t *testing.T) {
	rows := []heap.RowID{11, 22, 33, 44, 55}
	pos := 0
	var pre, post int
	fill := AdaptGetNext(func(*mi.Context, *ScanDesc) (heap.RowID, []types.Datum, bool, error) {
		if pos >= len(rows) {
			return 0, nil, false, nil
		}
		rid := rows[pos]
		pos++
		return rid, nil, true, nil
	}, func() { pre++ }, func() { post++ })

	sd := &ScanDesc{BatchCap: 2}
	n, err := FillFrom(nil, sd, fill)
	if err != nil || n != 2 {
		t.Fatalf("first fill: n=%d err=%v", n, err)
	}
	if sd.Batch == nil || sd.Batch.Cap() != 2 {
		t.Fatal("FillFrom must allocate the negotiated batch")
	}
	if sd.Batch.RowIDs[0] != 11 || sd.Batch.RowIDs[1] != 22 {
		t.Fatalf("batch contents: %v", sd.Batch.RowIDs)
	}
	if n, _ = FillFrom(nil, sd, fill); n != 2 {
		t.Fatalf("second fill: %d", n)
	}
	// The short batch: one row left, then the exhaustion call.
	if n, _ = FillFrom(nil, sd, fill); n != 1 {
		t.Fatalf("third fill: %d", n)
	}
	if sd.Batch.RowIDs[0] != 55 {
		t.Fatalf("third fill contents: %v", sd.Batch.RowIDs)
	}
	// The before/after hooks bracket every underlying am_getnext call
	// (5 hits + 1 exhaustion) so the legacy trace stays observable.
	if pre != 6 || post != 6 {
		t.Fatalf("hooks: pre=%d post=%d", pre, post)
	}
	// Errors propagate out of the fill.
	bad := AdaptGetNext(func(*mi.Context, *ScanDesc) (heap.RowID, []types.Datum, bool, error) {
		return 0, nil, false, fmt.Errorf("boom")
	}, nil, nil)
	if _, err := FillFrom(nil, &ScanDesc{BatchCap: 2}, bad); err == nil {
		t.Fatal("error must propagate")
	}
}

func TestOpClass(t *testing.T) {
	oc := &OpClass{
		Name: "grt_opclass", AmName: "grtree_am",
		Strategies: []string{"grt_overlap", "grt_contains", "grt_containedin", "grt_equal"},
		Support:    []string{"grt_union", "grt_size", "grt_intersection"},
	}
	if !oc.HasStrategy("GRT_OVERLAP") || oc.HasStrategy("grt_union") {
		t.Fatal("strategy lookup")
	}
}
