package client

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/blades/grtblade"
	"repro/internal/chronon"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/types"
)

// startServer brings up an in-memory engine with the GR-tree blade loaded
// and a tinybladed server on a loopback port.
func startServer(t *testing.T) (*engine.Engine, string) {
	t.Helper()
	e, err := engine.Open(engine.Options{Clock: chronon.NewVirtualClock(chronon.MustParse("9/97"))})
	if err != nil {
		t.Fatal(err)
	}
	if err := grtblade.Register(e); err != nil {
		e.Close()
		t.Fatal(err)
	}
	srv := server.New(e, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
		e.Close()
	})
	return e, ln.Addr().String()
}

// bladedRegistry builds a client-side registry with the same blade types the
// server registered, so opaque datums decode to full-fidelity values.
func bladedRegistry(t *testing.T) *types.Registry {
	t.Helper()
	reg := types.NewRegistry()
	if err := grtblade.RegisterTypes(reg); err != nil {
		t.Fatal(err)
	}
	return reg
}

const empDepDDL = `CREATE SBSPACE spc;
	CREATE TABLE EmpDep (Employee VARCHAR(16), Department VARCHAR(16), Time_Extent GRT_TimeExtent_t);
	CREATE INDEX empdep_ix ON EmpDep(Time_Extent) USING grtree_am IN spc;
	INSERT INTO EmpDep VALUES ('Rita', 'Shoe', '3/97, UC, 3/97, FOREVER');
	INSERT INTO EmpDep VALUES ('Tom', 'Toy', '4/97, UC, 4/97, FOREVER')`

// The same script through the embedded API and through the network client
// must render byte-identically — including the blade's opaque column, which
// exercises Send on the server and Receive plus Output on the client.
func TestClientEmbeddedAgreement(t *testing.T) {
	e, addr := startServer(t)
	c, err := Dial(addr, bladedRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	emb := e.NewSession()
	defer emb.Close()

	if _, err := c.Exec(empDepDDL); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT * FROM EmpDep`,
		`SELECT Employee FROM EmpDep WHERE Department = 'Toy'`,
		`SELECT count(*) FROM EmpDep`,
		`SELECT Time_Extent FROM EmpDep WHERE Employee = 'Rita'`,
	}
	for _, q := range queries {
		want, err := emb.ExecScript(q)
		if err != nil {
			t.Fatalf("embedded %q: %v", q, err)
		}
		got, err := c.Exec(q)
		if err != nil {
			t.Fatalf("client %q: %v", q, err)
		}
		wantText := engine.FormatResultWith(e.Types(), want)
		gotText := c.Format(got)
		if gotText != wantText {
			t.Fatalf("%q render mismatch:\nclient:\n%s\nembedded:\n%s", q, gotText, wantText)
		}
		if got.Affected != want.Affected {
			t.Fatalf("%q affected: client %d embedded %d", q, got.Affected, want.Affected)
		}
		if len(want.ColTypes) > 0 {
			if len(got.ColTypes) != len(want.ColTypes) {
				t.Fatalf("%q col types: client %d embedded %d", q, len(got.ColTypes), len(want.ColTypes))
			}
			for i := range want.ColTypes {
				if got.ColTypes[i].Kind != want.ColTypes[i].Kind {
					t.Fatalf("%q col %d kind: client %v embedded %v", q, i, got.ColTypes[i].Kind, want.ColTypes[i].Kind)
				}
			}
		}
	}
}

// Opaque datums must arrive as true types.Opaque values on a bladed client
// (decodable by the blade) and as display text on a blade-less one.
func TestClientOpaqueRoundTrip(t *testing.T) {
	_, addr := startServer(t)

	bladed, err := Dial(addr, bladedRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	defer bladed.Close()
	if _, err := bladed.Exec(empDepDDL); err != nil {
		t.Fatal(err)
	}

	res, err := bladed.Exec(`SELECT Time_Extent FROM EmpDep WHERE Employee = 'Rita'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	op, ok := res.Rows[0][0].(types.Opaque)
	if !ok {
		t.Fatalf("bladed client datum: %T", res.Rows[0][0])
	}
	ext, err := grtblade.DecodeExtent(op.Data)
	if err != nil {
		t.Fatalf("decode extent: %v", err)
	}
	if !ext.Current() {
		t.Fatalf("extent not current: %v", ext)
	}

	bare, err := Dial(addr, types.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	res, err = bare.Exec(`SELECT Time_Extent FROM EmpDep WHERE Employee = 'Rita'`)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Rows[0][0].(string)
	if !ok || s == "" {
		t.Fatalf("blade-less client datum: %#v", res.Rows[0][0])
	}
}

// Every failing statement must carry the same SQLSTATE over the wire as it
// does embedded, and arrive as a typed *engine.Error so client-side error
// dispatch matches embedded behaviour.
func TestClientErrorMatrix(t *testing.T) {
	e, addr := startServer(t)
	c, err := Dial(addr, bladedRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	emb := e.NewSession()
	defer emb.Close()
	if _, err := emb.Exec(`CREATE TABLE mt (id INTEGER, name VARCHAR(8))`); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		sql  string
		code string
	}{
		{`SELECT * FROM no_such_table`, engine.CodeUndefinedTable},
		{`SET ISOLATION TO WISHFUL`, engine.CodeInvalidParameter},
		{`COMMIT WORK`, engine.CodeNoActiveTx},
		{`INSERT INTO mt VALUES (1)`, engine.CodeCardinality},
		{`INSERT INTO mt VALUES ('x', 'y')`, engine.CodeDatatype},
		{`SELECT nope FROM mt`, engine.CodeUndefinedObject},
	}
	for _, tc := range cases {
		embErr := func() error { _, err := emb.Exec(tc.sql); return err }()
		if embErr == nil {
			t.Fatalf("embedded %q: expected error", tc.sql)
		}
		if got := engine.ErrorCode(embErr); got != tc.code {
			t.Fatalf("embedded %q: code %q want %q", tc.sql, got, tc.code)
		}
		_, cliErr := c.Exec(tc.sql)
		if cliErr == nil {
			t.Fatalf("client %q: expected error", tc.sql)
		}
		var ee *engine.Error
		if !errors.As(cliErr, &ee) {
			t.Fatalf("client %q: error is %T, not *engine.Error", tc.sql, cliErr)
		}
		if engine.ErrorCode(cliErr) != engine.ErrorCode(embErr) {
			t.Fatalf("client %q: code %q, embedded %q", tc.sql, engine.ErrorCode(cliErr), engine.ErrorCode(embErr))
		}
		if cliErr.Error() != embErr.Error() {
			t.Fatalf("client %q: message %q, embedded %q", tc.sql, cliErr.Error(), embErr.Error())
		}
	}

	// The connection survives statement errors: a good statement still runs.
	res, err := c.Exec(`SELECT count(*) FROM mt`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, [][]types.Datum{{int64(0)}}) {
		t.Fatalf("post-error query: %#v", res.Rows)
	}
}

// A streaming Query delivers the header before the rows and keeps the
// connection busy until drained.
func TestClientStreaming(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`CREATE TABLE s (id INTEGER)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Exec(`INSERT INTO s VALUES (1)`); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Query(`SELECT * FROM s`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 1 || got[0] != "id" {
		t.Fatalf("columns: %v", got)
	}
	if _, err := c.Query(`SELECT * FROM s`); engine.ErrorCode(err) != engine.CodeSessionBusy {
		t.Fatalf("second Query while streaming: %v", err)
	}
	n := 0
	for {
		b, err := rows.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		n += len(b)
	}
	if n != 50 {
		t.Fatalf("streamed rows: %d", n)
	}
	if _, err := c.Exec(`SELECT count(*) FROM s`); err != nil {
		t.Fatalf("exec after stream: %v", err)
	}
}

// SET state travels per connection; SHOW over the wire reports the
// connection's own values.
func TestClientSessionVars(t *testing.T) {
	_, addr := startServer(t)
	a, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Exec(`SET ISOLATION TO SNAPSHOT`); err != nil {
		t.Fatal(err)
	}
	showIso := func(c *Conn) string {
		res, err := c.Exec(`SHOW ISOLATION`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][1].(string)
	}
	if got := showIso(a); got != "SNAPSHOT" {
		t.Fatalf("conn a isolation: %q", got)
	}
	if got := showIso(b); got != "COMMITTED READ" {
		t.Fatalf("conn b isolation: %q", got)
	}
}
