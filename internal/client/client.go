// Package client is the Go client library for tinybladed: it dials the
// wire protocol, streams result rows, and rebuilds typed engine errors from
// their SQLSTATE codes, so code written against the embedded engine API
// ports to the network with the same result shapes and the same error
// dispatch. Opaque datums are decoded through the local type registry's
// Receive support function — a client that registers the same blades as the
// server gets identical values; one that doesn't still gets display text.
package client

import (
	"errors"
	"net"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wire"
)

// Result is a fully materialized statement outcome — the network analogue
// of engine.Result, with the plan and profile already rendered to text
// (the wire carries them rendered; the structures stay server-side).
type Result struct {
	Columns  []string
	ColTypes []types.Type
	Rows     [][]types.Datum
	Affected int
	Message  string
	Plan     string
	Profile  string
}

// Conn is one connection to a tinybladed server. It is not safe for
// concurrent use: the protocol runs one statement at a time, like an
// engine.Session.
type Conn struct {
	nc     net.Conn
	wc     *wire.Conn
	reg    *types.Registry
	banner string
	caps   uint32
	rows   *Rows // open streaming result, if any
}

// Dial connects and performs the handshake. The registry (may be nil)
// supplies the opaque-type support functions for datum decode; register the
// same blades as the server for full-fidelity values.
func Dial(addr string, reg *types.Registry) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, wc: wire.NewConn(nc, reg), reg: reg}
	if err := c.wc.Send(&wire.Hello{Version: wire.Version, Banner: "tinyblade client"}); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := c.wc.Recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch t := m.(type) {
	case *wire.Welcome:
		c.banner = t.Banner
		c.caps = t.Caps // zero against a version-1 server
		return c, nil
	case *wire.Error:
		nc.Close()
		return nil, wireErr(t)
	}
	nc.Close()
	return nil, errors.New("client: unexpected handshake reply")
}

// Banner returns the server identification from the handshake.
func (c *Conn) Banner() string { return c.banner }

// Caps returns the server's capability bitmask from the handshake (zero
// against a version-1 server).
func (c *Conn) Caps() uint32 { return c.caps }

// Close sends Quit and closes the socket.
func (c *Conn) Close() error {
	if c.rows != nil {
		c.rows.Close()
	}
	c.wc.Send(&wire.Quit{})
	return c.nc.Close()
}

// Exec runs SQL (a statement or a semicolon-separated script) and
// materializes the result — the network analogue of Session.Exec.
func (c *Conn) Exec(src string) (*Result, error) {
	rows, err := c.Query(src)
	if err != nil {
		return nil, err
	}
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		rows.res.Rows = append(rows.res.Rows, b...)
	}
	return rows.Result(), nil
}

// Query runs SQL and returns a streaming result — the network analogue of
// Session.ExecStream. The connection is busy until the Rows are exhausted
// or closed.
func (c *Conn) Query(src string) (*Rows, error) {
	if c.rows != nil {
		return nil, &engine.Error{Code: engine.CodeSessionBusy, Msg: "a result stream is already open on this connection"}
	}
	if err := c.wc.Send(&wire.Exec{SQL: src}); err != nil {
		return nil, err
	}
	return c.awaitHeader()
}

// awaitHeader reads a statement's opening reply and returns the stream.
func (c *Conn) awaitHeader() (*Rows, error) {
	m, err := c.wc.Recv()
	if err != nil {
		return nil, err
	}
	switch t := m.(type) {
	case *wire.Header:
		r := &Rows{
			c: c,
			res: &Result{
				Columns:  t.Columns,
				ColTypes: wire.ResolveColTypes(c.reg, t.Types),
				Plan:     t.Plan,
			},
		}
		c.rows = r
		return r, nil
	case *wire.Error:
		return nil, wireErr(t)
	}
	return nil, errors.New("client: unexpected reply to statement")
}

// Prepare registers a named prepared statement on the server and returns a
// handle for executing it with bound arguments — the network analogue of
// PREPARE ... AS. Requires a server advertising wire.CapPrepared; against an
// older server it fails client-side with CodeFeature.
func (c *Conn) Prepare(name, src string) (*Stmt, error) {
	if c.rows != nil {
		return nil, &engine.Error{Code: engine.CodeSessionBusy, Msg: "a result stream is already open on this connection"}
	}
	if c.caps&wire.CapPrepared == 0 {
		return nil, &engine.Error{Code: engine.CodeFeature, Msg: "server does not support prepared statements (protocol version 1)"}
	}
	if err := c.wc.Send(&wire.Parse{Name: name, SQL: src}); err != nil {
		return nil, err
	}
	m, err := c.wc.Recv()
	if err != nil {
		return nil, err
	}
	switch t := m.(type) {
	case *wire.Prepared:
		return &Stmt{c: c, name: t.Name, nparams: int(t.NParams)}, nil
	case *wire.Error:
		return nil, wireErr(t)
	}
	return nil, errors.New("client: unexpected reply to Parse")
}

// Stmt is a prepared statement handle. Executing it ships only the name and
// the argument datums — no SQL text, no server-side parsing.
type Stmt struct {
	c       *Conn
	name    string
	nparams int
	bound   bool
}

// Name returns the statement's registered name.
func (s *Stmt) Name() string { return s.name }

// NumParams returns the statement's parameter count.
func (s *Stmt) NumParams() int { return s.nparams }

// Bind stores an argument vector server-side, so subsequent zero-argument
// Query/Exec calls re-execute the same binding without re-shipping datums.
func (s *Stmt) Bind(args ...types.Datum) error {
	c := s.c
	if c.rows != nil {
		return &engine.Error{Code: engine.CodeSessionBusy, Msg: "a result stream is already open on this connection"}
	}
	if err := c.wc.Send(&wire.Bind{Name: s.name, Args: args}); err != nil {
		return err
	}
	m, err := c.wc.Recv()
	if err != nil {
		return err
	}
	switch t := m.(type) {
	case *wire.Done:
		s.bound = true
		return nil
	case *wire.Error:
		return wireErr(t)
	}
	return errors.New("client: unexpected reply to Bind")
}

// Query executes the prepared statement and returns a streaming result.
// With no args and a prior Bind, the server substitutes the stored vector.
func (s *Stmt) Query(args ...types.Datum) (*Rows, error) {
	c := s.c
	if c.rows != nil {
		return nil, &engine.Error{Code: engine.CodeSessionBusy, Msg: "a result stream is already open on this connection"}
	}
	ep := &wire.ExecutePrepared{Name: s.name, Args: args, UseBound: len(args) == 0 && s.bound}
	if err := c.wc.Send(ep); err != nil {
		return nil, err
	}
	return c.awaitHeader()
}

// Exec executes the prepared statement and materializes the result.
func (s *Stmt) Exec(args ...types.Datum) (*Result, error) {
	rows, err := s.Query(args...)
	if err != nil {
		return nil, err
	}
	for {
		b, err := rows.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		rows.res.Rows = append(rows.res.Rows, b...)
	}
	return rows.Result(), nil
}

// Close deallocates the statement server-side. The handle is unusable
// afterwards.
func (s *Stmt) Close() error {
	c := s.c
	if c.rows != nil {
		return &engine.Error{Code: engine.CodeSessionBusy, Msg: "a result stream is already open on this connection"}
	}
	if err := c.wc.Send(&wire.CloseStmt{Name: s.name}); err != nil {
		return err
	}
	m, err := c.wc.Recv()
	if err != nil {
		return err
	}
	switch t := m.(type) {
	case *wire.Done:
		s.bound = false
		return nil
	case *wire.Error:
		return wireErr(t)
	}
	return errors.New("client: unexpected reply to CloseStmt")
}

// Format renders a result through the shared engine renderer, against the
// client's registry — byte-identical to what an embedded session prints.
func (c *Conn) Format(r *Result) string {
	if r == nil {
		return ""
	}
	return engine.FormatResultWith(c.reg, &engine.Result{
		Columns: r.Columns, Rows: r.Rows, Message: r.Message,
	})
}

// Rows is a streaming result: header first, then batches via NextBatch,
// then the completed Result once the stream ends.
type Rows struct {
	c    *Conn
	res  *Result
	done bool
	err  error
}

// Columns returns the result's column names (available immediately).
func (r *Rows) Columns() []string { return r.res.Columns }

// ColTypes returns the typed column metadata, resolved against the
// client's registry (available immediately).
func (r *Rows) ColTypes() []types.Type { return r.res.ColTypes }

// Plan returns the statement's rendered access plan ("" when none).
func (r *Rows) Plan() string { return r.res.Plan }

// NextBatch returns the next batch of rows, or nil once the stream is
// done. Errors — including a statement failure mid-stream — surface here
// as typed engine errors.
func (r *Rows) NextBatch() ([][]types.Datum, error) {
	if r.done {
		return nil, r.err
	}
	m, err := r.c.wc.Recv()
	if err != nil {
		r.finish(err)
		return nil, err
	}
	switch t := m.(type) {
	case *wire.RowBatch:
		return t.Rows, nil
	case *wire.Done:
		r.res.Affected = int(t.Affected)
		r.res.Message = t.Message
		r.res.Profile = t.Profile
		r.finish(nil)
		return nil, nil
	case *wire.Error:
		err := wireErr(t)
		r.finish(err)
		return nil, err
	}
	err = errors.New("client: unexpected frame in result stream")
	r.finish(err)
	return nil, err
}

// Result returns the materialized outcome; complete only after the stream
// finished.
func (r *Rows) Result() *Result { return r.res }

// Err returns the stream's terminal error, if any.
func (r *Rows) Err() error { return r.err }

// Close drains any unread frames so the connection is ready for the next
// statement. Idempotent.
func (r *Rows) Close() error {
	for !r.done {
		if _, err := r.NextBatch(); err != nil {
			break
		}
	}
	return r.err
}

func (r *Rows) finish(err error) {
	r.done = true
	if r.err == nil {
		r.err = err
	}
	if r.c.rows == r {
		r.c.rows = nil
	}
}

// wireErr rebuilds the typed engine error from an Error frame: the SQLSTATE
// round-trips, so client-side engine.ErrorCode dispatch matches embedded
// behaviour exactly.
func wireErr(e *wire.Error) error {
	if e.Code == "" {
		return errors.New(e.Message)
	}
	return &engine.Error{Code: e.Code, Msg: e.Message}
}
