package client

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
	"repro/internal/wire"
)

// fakeV1Server speaks the protocol as it was before the version-2 bump: its
// Welcome carries no capability word, and it only understands Exec and
// Quit. Frames are hand-rolled bytes so the test cannot accidentally lean
// on the upgraded wire package.
func fakeV1Server(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		r := bufio.NewReader(nc)
		readFrame := func() (byte, bool) {
			var hdr [5]byte
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return 0, false
			}
			payload := make([]byte, binary.BigEndian.Uint32(hdr[:4]))
			if _, err := io.ReadFull(r, payload); err != nil {
				return 0, false
			}
			return hdr[4], true
		}
		writeFrame := func(mt wire.MsgType, payload []byte) {
			var hdr [5]byte
			binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
			hdr[4] = byte(mt)
			nc.Write(hdr[:])
			nc.Write(payload)
		}
		if mt, ok := readFrame(); !ok || mt != byte(wire.MsgHello) {
			return
		}
		// A version-1 Welcome: u16 version, string banner — nothing after.
		banner := "ancient tinybladed"
		w := binary.BigEndian.AppendUint16(nil, 1)
		w = binary.BigEndian.AppendUint32(w, uint32(len(banner)))
		w = append(w, banner...)
		writeFrame(wire.MsgWelcome, w)
		for {
			mt, ok := readFrame()
			if !ok || mt != byte(wire.MsgExec) {
				return
			}
			// Header with zero columns, zero types, and an empty plan string,
			// then a Done with zero affected and empty message/profile — all
			// zero bytes in the v1 encoding.
			writeFrame(wire.MsgHeader, make([]byte, 12))
			writeFrame(wire.MsgDone, make([]byte, 16))
		}
	}()
	return ln.Addr().String()
}

// Against a version-1 server the upgraded client degrades cleanly: the
// handshake succeeds with zero capabilities, Exec still works, and Prepare
// fails client-side with CodeFeature before any frame goes out.
func TestClientAgainstV1Server(t *testing.T) {
	addr := fakeV1Server(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Banner() != "ancient tinybladed" {
		t.Fatalf("banner: %q", c.Banner())
	}
	if c.Caps() != 0 {
		t.Fatalf("caps from v1 server: %#x", c.Caps())
	}
	if _, err := c.Prepare("q", `SELECT 1`); engine.ErrorCode(err) != engine.CodeFeature {
		t.Fatalf("Prepare against v1 server: %v", err)
	}
	if _, err := c.Exec(`SELECT 1`); err != nil {
		t.Fatalf("Exec against v1 server: %v", err)
	}
}

// The prepared-statement client API end to end: Prepare, positional
// execute, server-side Bind with zero-argument re-execute, Close, and
// agreement with the embedded session on every result.
func TestClientPreparedRoundTrip(t *testing.T) {
	e, addr := startServer(t)
	c, err := Dial(addr, bladedRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Caps()&wire.CapPrepared == 0 {
		t.Fatalf("server caps: %#x", c.Caps())
	}
	if _, err := c.Exec(empDepDDL); err != nil {
		t.Fatal(err)
	}

	stmt, err := c.Prepare("byemp", `SELECT Department FROM EmpDep WHERE Employee = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams: %d", stmt.NumParams())
	}

	emb := e.NewSession()
	defer emb.Close()
	for _, emp := range []string{"Rita", "Tom", "Nobody"} {
		got, err := stmt.Exec(emp)
		if err != nil {
			t.Fatalf("Exec(%s): %v", emp, err)
		}
		wantRes, err := emb.Exec(`SELECT Department FROM EmpDep WHERE Employee = '` + emp + `'`)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(wantRes.Rows) {
			t.Fatalf("%s: client %d rows, embedded %d", emp, len(got.Rows), len(wantRes.Rows))
		}
		for i := range got.Rows {
			if got.Rows[i][0] != wantRes.Rows[i][0] {
				t.Fatalf("%s row %d: %v vs %v", emp, i, got.Rows[i], wantRes.Rows[i])
			}
		}
	}

	// A streaming prepared Query delivers a plan and keeps the busy check.
	rows, err := stmt.Query("Rita")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Plan() == "" {
		t.Fatal("prepared Query carries no plan text")
	}
	if _, err := stmt.Query("Tom"); engine.ErrorCode(err) != engine.CodeSessionBusy {
		t.Fatalf("Query while streaming: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Bind stores the vector server-side; zero-argument executes reuse it.
	if err := stmt.Bind("Tom"); err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Toy" {
		t.Fatalf("bound execute: %#v", res.Rows)
	}
	// Inline args still win over the stored binding.
	res, err = stmt.Exec("Rita")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Shoe" {
		t.Fatalf("inline-args execute: %#v", res.Rows)
	}

	if err := stmt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec("Rita"); engine.ErrorCode(err) != engine.CodeUndefinedObject {
		t.Fatalf("execute after Close: %v", err)
	}
	// The connection survives the statement error.
	if _, err := c.Exec(`SELECT count(*) FROM EmpDep`); err != nil {
		t.Fatalf("exec after prepared error: %v", err)
	}
}

// An opaque blade value travels as an argument: the client's registry
// encodes it through Send, the server re-resolves it by name, and the
// GR-tree qualification binds it — full-fidelity client→server direction.
func TestClientPreparedOpaqueArg(t *testing.T) {
	_, addr := startServer(t)
	reg := bladedRegistry(t)
	c, err := Dial(addr, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(empDepDDL); err != nil {
		t.Fatal(err)
	}

	stmt, err := c.Prepare("overlap", `SELECT Employee FROM EmpDep WHERE Overlaps(Time_Extent, $1)`)
	if err != nil {
		t.Fatal(err)
	}
	ot, ok := reg.Lookup("GRT_TimeExtent_t")
	if !ok {
		t.Fatal("blade type missing client-side")
	}
	data, err := ot.Support.Input("3/97, UC, 3/97, FOREVER")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec(types.Opaque{TypeID: ot.ID, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, r := range res.Rows {
		found[r[0].(string)] = true
	}
	if !found["Rita"] || !found["Tom"] {
		t.Fatalf("overlap query rows: %#v", res.Rows)
	}
}

// Every prepared-statement failure arrives as a typed *engine.Error with
// the same SQLSTATE the embedded API raises.
func TestClientPreparedErrorMatrix(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE pm (id INTEGER)`); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Prepare("bad", `SELECT FROM WHERE`); err == nil {
		t.Fatal("Prepare of garbage must fail")
	}
	if _, err := c.Prepare("ddl", `CREATE TABLE x (id INTEGER)`); engine.ErrorCode(err) != engine.CodeFeature {
		t.Fatalf("Prepare DDL: %v", err)
	}

	stmt, err := c.Prepare("q", `SELECT id FROM pm WHERE id = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare("q", `SELECT id FROM pm`); engine.ErrorCode(err) != engine.CodeInvalidParameter {
		t.Fatalf("duplicate Prepare: %v", err)
	}
	if err := stmt.Bind(); engine.ErrorCode(err) != engine.CodeCardinality {
		t.Fatalf("Bind arity: %v", err)
	}
	if _, err := stmt.Exec(int64(1), int64(2)); engine.ErrorCode(err) != engine.CodeCardinality {
		t.Fatalf("Exec arity: %v", err)
	}

	// Deallocation through plain SQL is visible to the wire handle: the
	// session owns the statement either way.
	if _, err := c.Exec(`DEALLOCATE q`); err != nil {
		t.Fatal(err)
	}
	if err := stmt.Bind(int64(1)); engine.ErrorCode(err) != engine.CodeUndefinedObject {
		t.Fatalf("Bind after SQL DEALLOCATE: %v", err)
	}

	// The connection stayed healthy through the whole matrix.
	if _, err := c.Exec(`SELECT count(*) FROM pm`); err != nil {
		t.Fatalf("post-matrix exec: %v", err)
	}
}
