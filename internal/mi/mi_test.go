package mi

import (
	"bytes"
	"strings"
	"testing"
)

func TestDurationExpiry(t *testing.T) {
	c := NewContext(1, nil)
	fn := c.Alloc(PerFunction, 8)
	st := c.Alloc(PerStatement, 8)
	tx := c.Alloc(PerTransaction, 8)
	se := c.Alloc(PerSession, 8)
	for _, a := range []*Allocation{fn, st, tx, se} {
		if !a.Valid() {
			t.Fatal("fresh allocation must be valid")
		}
	}
	c.EndFunction()
	if fn.Valid() || !st.Valid() || !tx.Valid() || !se.Valid() {
		t.Fatal("EndFunction must expire only PER_FUNCTION")
	}
	c.EndStatement()
	if st.Valid() || !tx.Valid() || !se.Valid() {
		t.Fatal("EndStatement must expire PER_STATEMENT")
	}
	c.EndTransaction(TxCommit)
	if tx.Valid() || !se.Valid() {
		t.Fatal("EndTransaction must expire PER_TRANSACTION")
	}
	c.EndSession()
	if se.Valid() {
		t.Fatal("EndSession must expire PER_SESSION")
	}
}

func TestLiveAllocCounting(t *testing.T) {
	c := NewContext(1, nil)
	c.Alloc(PerStatement, 4)
	c.Alloc(PerStatement, 4)
	if c.LiveAllocs(PerStatement) != 2 {
		t.Fatalf("live %d", c.LiveAllocs(PerStatement))
	}
	c.EndStatement()
	if c.LiveAllocs(PerStatement) != 0 {
		t.Fatal("statement allocs must be reclaimed")
	}
}

func TestTxEndCallbacks(t *testing.T) {
	c := NewContext(1, nil)
	var events []TxEvent
	c.OnTxEnd(func(e TxEvent) { events = append(events, e) })
	c.OnTxEnd(func(e TxEvent) { events = append(events, e) })
	c.EndTransaction(TxCommit)
	if len(events) != 2 || events[0] != TxCommit {
		t.Fatalf("events: %v", events)
	}
	// Callbacks are one-shot: a second transaction end fires nothing.
	events = nil
	c.EndTransaction(TxAbort)
	if len(events) != 0 {
		t.Fatalf("stale callbacks fired: %v", events)
	}
	// Section 5.4 pattern: named memory freed by a transaction-end callback.
	c.SetNamed("grt_current_time", 123)
	c.OnTxEnd(func(TxEvent) { c.FreeNamed("grt_current_time") })
	c.EndTransaction(TxAbort)
	if _, ok := c.Named("grt_current_time"); ok {
		t.Fatal("named memory must be freed by the callback")
	}
}

func TestNamedMemory(t *testing.T) {
	c := NewContext(7, nil)
	c.SetNamed("a", "x")
	c.SetNamed("b", 2)
	if v, ok := c.Named("a"); !ok || v != "x" {
		t.Fatal("named get")
	}
	names := c.NamedNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names: %v", names)
	}
	c.FreeNamed("a")
	if _, ok := c.Named("a"); ok {
		t.Fatal("free failed")
	}
	c.EndSession()
	if _, ok := c.Named("b"); ok {
		t.Fatal("session end must clear named memory")
	}
}

func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Tracef("grt", 1, "hidden %d", 1)
	if buf.Len() != 0 {
		t.Fatal("disabled class must not emit")
	}
	tr.SetLevel("grt", 2)
	if !tr.Enabled("grt", 1) || !tr.Enabled("grt", 2) || tr.Enabled("grt", 3) {
		t.Fatal("level filtering")
	}
	tr.Tracef("grt", 2, "visible %d", 42)
	tr.Tracef("grt", 3, "too detailed")
	out := buf.String()
	if !strings.Contains(out, "visible 42") || strings.Contains(out, "too detailed") {
		t.Fatalf("trace output: %q", out)
	}
	if !strings.Contains(out, "[grt:2]") {
		t.Fatalf("trace prefix missing: %q", out)
	}
}

func TestYield(t *testing.T) {
	c := NewContext(1, nil)
	for i := 0; i < 5; i++ {
		c.Yield()
	}
	if c.Yields() != 5 {
		t.Fatalf("yields %d", c.Yields())
	}
}

func TestStrings(t *testing.T) {
	for _, d := range []Duration{PerFunction, PerStatement, PerTransaction, PerSession, Duration(99)} {
		if d.String() == "" {
			t.Fatal("duration string")
		}
	}
	if TxCommit.String() != "COMMIT" || TxAbort.String() != "ABORT" {
		t.Fatal("event strings")
	}
}
