// Package mi is this engine's analogue of the Informix DataBlade API
// (mi_* functions, [DBAPI97]) as the paper's DataBlade uses it:
//
//   - memory with explicit durations (PER_FUNCTION, PER_STATEMENT,
//     PER_TRANSACTION, PER_SESSION) that the server reclaims automatically
//     when the duration is exceeded (Section 6.2);
//   - named memory allocated from the server and identified by the session
//     id, which Section 5.4 uses to keep the transaction's current-time
//     value;
//   - transaction-end callbacks, which Section 5.4 uses to free that memory
//     and which the sbspace layer uses to release large-object locks;
//   - trace messages with trace classes and levels (Section 6.4);
//   - Yield, mirroring mi_yield in the non-preemptive virtual processor.
//
// Go's garbage collector makes the durations semantically rather than
// physically meaningful: an allocation carries a generation stamp, and using
// it after its duration ended is detected and reported, which is what a
// DataBlade author needs from tests.
package mi

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// Duration classifies how long an allocation stays valid.
type Duration int

const (
	// PerFunction memory is reclaimed when the current purpose-function or
	// UDR invocation returns.
	PerFunction Duration = iota
	// PerStatement memory is reclaimed at the end of the SQL statement.
	PerStatement
	// PerTransaction memory is reclaimed at transaction end.
	PerTransaction
	// PerSession memory lives until the session closes.
	PerSession
	numDurations
)

func (d Duration) String() string {
	switch d {
	case PerFunction:
		return "PER_FUNCTION"
	case PerStatement:
		return "PER_STATEMENT"
	case PerTransaction:
		return "PER_TRANSACTION"
	case PerSession:
		return "PER_SESSION"
	}
	return "?"
}

// TxEvent tells a transaction-end callback how the transaction ended.
type TxEvent int

const (
	// TxCommit reports a committed transaction.
	TxCommit TxEvent = iota
	// TxAbort reports a rolled-back transaction.
	TxAbort
)

func (e TxEvent) String() string {
	if e == TxAbort {
		return "ABORT"
	}
	return "COMMIT"
}

// Allocation is a duration-tracked allocation.
type Allocation struct {
	Bytes []byte
	ctx   *Context
	dur   Duration
	gen   uint64
}

// Valid reports whether the allocation's duration is still running.
func (a *Allocation) Valid() bool {
	return a != nil && a.gen == a.ctx.gens[a.dur]
}

// Context is the per-session DataBlade API context handed to purpose
// functions and UDRs. It is not safe for concurrent use; each session owns
// one.
type Context struct {
	SessionID uint64

	gens   [numDurations]uint64
	allocs [numDurations]int // live allocation counts per duration

	named map[string]any

	txCallbacks []func(TxEvent)

	tracer *Tracer
	yields int
}

// NewContext returns a fresh context for a session.
func NewContext(sessionID uint64, tracer *Tracer) *Context {
	if tracer == nil {
		tracer = NewTracer(io.Discard)
	}
	return &Context{SessionID: sessionID, named: make(map[string]any), tracer: tracer}
}

// Alloc allocates size bytes with the given duration (mi_dalloc).
func (c *Context) Alloc(d Duration, size int) *Allocation {
	c.allocs[d]++
	return &Allocation{Bytes: make([]byte, size), ctx: c, dur: d, gen: c.gens[d]}
}

// LiveAllocs returns the number of allocations made in the current window of
// the given duration.
func (c *Context) LiveAllocs(d Duration) int { return c.allocs[d] }

// EndFunction closes the PER_FUNCTION window (the engine calls it after
// every purpose-function and UDR invocation).
func (c *Context) EndFunction() { c.expire(PerFunction) }

// EndStatement closes the PER_STATEMENT window (and the function window).
func (c *Context) EndStatement() {
	c.expire(PerFunction)
	c.expire(PerStatement)
}

// EndTransaction closes the transaction window, fires the registered
// transaction-end callbacks in registration order, and clears them.
func (c *Context) EndTransaction(ev TxEvent) {
	c.expire(PerFunction)
	c.expire(PerStatement)
	c.expire(PerTransaction)
	cbs := c.txCallbacks
	c.txCallbacks = nil
	for _, cb := range cbs {
		cb(ev)
	}
}

// EndSession closes every window and drops named memory.
func (c *Context) EndSession() {
	c.EndTransaction(TxAbort)
	c.expire(PerSession)
	c.named = make(map[string]any)
}

func (c *Context) expire(d Duration) {
	c.gens[d]++
	c.allocs[d] = 0
}

// OnTxEnd registers a transaction-end callback (mi_register_callback with
// MI_EVENT_END_XACT). Section 5.4: "A transaction-end callback should be
// registered to free the allocated memory."
func (c *Context) OnTxEnd(cb func(TxEvent)) { c.txCallbacks = append(c.txCallbacks, cb) }

// SetNamed stores a value in the session's named memory (mi_named_alloc /
// mi_named_get), identified by name within this session.
func (c *Context) SetNamed(name string, v any) { c.named[name] = v }

// Named fetches a value from named memory.
func (c *Context) Named(name string) (any, bool) {
	v, ok := c.named[name]
	return v, ok
}

// FreeNamed removes a named-memory entry (mi_named_free).
func (c *Context) FreeNamed(name string) { delete(c.named, name) }

// NamedNames returns the live named-memory keys, sorted (diagnostics).
func (c *Context) NamedNames() []string {
	out := make([]string, 0, len(c.named))
	for k := range c.named {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Yield mirrors mi_yield: long-running DataBlade code must regularly yield
// the non-preemptive virtual processor (Section 6.2).
func (c *Context) Yield() {
	c.yields++
	runtime.Gosched()
}

// Yields returns how often the context yielded (tests assert CPU-heavy code
// paths yield).
func (c *Context) Yields() int { return c.yields }

// Tracer returns the session's tracer.
func (c *Context) Tracer() *Tracer { return c.tracer }

// Tracer writes class/level-filtered trace messages to a trace file
// (Section 6.4: "the extensive usage of trace messages is a good instrument
// for debugging a DataBlade module").
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	levels map[string]int
}

// NewTracer returns a tracer writing to w with all classes off (level 0).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, levels: make(map[string]int)}
}

// SetLevel enables a trace class up to the given level (tracing is switched
// on or off selectively using trace classes and trace levels).
func (t *Tracer) SetLevel(class string, level int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.levels[class] = level
}

// Enabled reports whether a message of (class, level) would be emitted.
func (t *Tracer) Enabled(class string, level int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.levels[class] >= level
}

// Tracef emits a trace message if the class is enabled at the level.
func (t *Tracer) Tracef(class string, level int, format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.levels[class] < level {
		return
	}
	fmt.Fprintf(t.w, "[%s:%d] ", class, level)
	fmt.Fprintf(t.w, format, args...)
	fmt.Fprintln(t.w)
}
