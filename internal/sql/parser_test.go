package sql

import (
	"testing"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE Employees (Name VARCHAR(32), Department VARCHAR(32), Time_Extent GRT_TimeExtent_t)`).(*CreateTable)
	if st.Name != "Employees" || len(st.Cols) != 3 {
		t.Fatalf("%+v", st)
	}
	if st.Cols[2].TypeName != "GRT_TimeExtent_t" {
		t.Fatalf("opaque column: %+v", st.Cols[2])
	}
}

func TestCreateFunctionPaperExample(t *testing.T) {
	// The paper's Step 2 example, verbatim shape.
	st := mustParse(t, `CREATE FUNCTION grt_open(pointer) RETURNING int
		EXTERNAL NAME 'usr/functions/grtree.bld(grt_open)' LANGUAGE c`).(*CreateFunction)
	if st.Name != "grt_open" || len(st.ArgTypes) != 1 || st.ArgTypes[0] != "pointer" {
		t.Fatalf("%+v", st)
	}
	if st.Returns != "int" || st.External != "usr/functions/grtree.bld(grt_open)" || st.Language != "c" {
		t.Fatalf("%+v", st)
	}
	// Zero-argument function.
	st2 := mustParse(t, `CREATE FUNCTION f() RETURNING boolean EXTERNAL NAME 'x(y)' LANGUAGE c`).(*CreateFunction)
	if len(st2.ArgTypes) != 0 {
		t.Fatal("empty args")
	}
}

func TestCreateAccessMethodPaperExample(t *testing.T) {
	// The paper's Step 3 example.
	st := mustParse(t, `CREATE SECONDARY ACCESS_METHOD grtree_am (
		am_create = grt_create,
		am_open = grt_open,
		am_getnext = grt_getnext,
		am_close = grt_close,
		am_drop = grt_drop,
		am_sptype = 'S'
	)`).(*CreateAccessMethod)
	if st.Name != "grtree_am" || len(st.Slots) != 6 {
		t.Fatalf("%+v", st)
	}
	if st.Slots["am_sptype"] != "S" || st.Slots["am_getnext"] != "grt_getnext" {
		t.Fatalf("slots: %v", st.Slots)
	}
}

func TestCreateOpClassPaperExample(t *testing.T) {
	// The paper's Step 4 example.
	st := mustParse(t, `CREATE OPCLASS grt_opclass FOR grtree_am
		STRATEGIES(grt_overlap, grt_contains, grt_containedin, grt_equal)
		SUPPORT(grt_union, grt_size, grt_intersection)`).(*CreateOpClass)
	if st.Name != "grt_opclass" || st.AmName != "grtree_am" {
		t.Fatalf("%+v", st)
	}
	if len(st.Strategies) != 4 || len(st.Support) != 3 {
		t.Fatalf("%+v", st)
	}
}

func TestCreateIndexPaperExample(t *testing.T) {
	// The paper's Step 6 example.
	st := mustParse(t, `CREATE INDEX grt_index ON employees(column1 grt_opclass) USING grtree_am IN spc`).(*CreateIndex)
	if st.Name != "grt_index" || st.Table != "employees" || st.AmName != "grtree_am" || st.Space != "spc" {
		t.Fatalf("%+v", st)
	}
	if len(st.Columns) != 1 || st.Columns[0].Column != "column1" || st.Columns[0].OpClass != "grt_opclass" {
		t.Fatalf("%+v", st.Columns)
	}
	// Without opclass and space; with parameters.
	st2 := mustParse(t, `CREATE INDEX i ON t(c) USING am (placement='single', timeparam=365)`).(*CreateIndex)
	if st2.Columns[0].OpClass != "" || st2.Space != "" {
		t.Fatalf("%+v", st2)
	}
	if st2.Params["placement"] != "single" || st2.Params["timeparam"] != "365" {
		t.Fatalf("params: %v", st2.Params)
	}
}

func TestSelectPaperQuery(t *testing.T) {
	// The Section 5.2 sample query.
	st := mustParse(t, `SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '12/10/95, UC, 12/10/95, NOW')`).(*Select)
	if st.Table != "Employees" || len(st.Items) != 1 || st.Items[0].Column != "Name" {
		t.Fatalf("%+v", st)
	}
	fc, ok := st.Where.(*FuncCall)
	if !ok || fc.Name != "Overlaps" || len(fc.Args) != 2 {
		t.Fatalf("where: %+v", st.Where)
	}
	if _, ok := fc.Args[0].(*ColumnRef); !ok {
		t.Fatal("first arg must be a column")
	}
	if lit, ok := fc.Args[1].(*Literal); !ok || !lit.IsString {
		t.Fatal("second arg must be a string literal")
	}
}

func TestSelectVariants(t *testing.T) {
	st := mustParse(t, `SELECT * FROM t`).(*Select)
	if !st.Items[0].Star || st.Where != nil {
		t.Fatalf("%+v", st)
	}
	st = mustParse(t, `SELECT COUNT(*) FROM t WHERE a = 1 AND (b > 2 OR NOT c = 'x')`).(*Select)
	if !st.Items[0].CountStar {
		t.Fatal("count star")
	}
	b, ok := st.Where.(*Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("%+v", st.Where)
	}
	or, ok := b.R.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("%+v", b.R)
	}
	if _, ok := or.R.(*Not); !ok {
		t.Fatal("NOT")
	}
}

func TestInsertVariants(t *testing.T) {
	st := mustParse(t, `INSERT INTO EmpDep VALUES ('John', 'Advertising', '4/97, UC, 3/97, 5/97')`).(*Insert)
	if st.Table != "EmpDep" || len(st.Rows) != 1 || len(st.Rows[0]) != 3 {
		t.Fatalf("%+v", st)
	}
	st = mustParse(t, `INSERT INTO t (a, b) VALUES (1, 2), (3, -4.5)`).(*Insert)
	if len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Fatalf("%+v", st)
	}
	lit := st.Rows[1][1].(*Literal)
	if lit.Text != "-4.5" || !lit.IsFloat {
		t.Fatalf("negative float: %+v", lit)
	}
	st2 := mustParse(t, `INSERT INTO t VALUES (NULL, true)`).(*Insert)
	if _, ok := st2.Rows[0][0].(*Null); !ok {
		t.Fatal("NULL literal")
	}
}

func TestDeleteUpdate(t *testing.T) {
	d := mustParse(t, `DELETE FROM t WHERE Overlaps(x, 'q')`).(*Delete)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("%+v", d)
	}
	u := mustParse(t, `UPDATE t SET a = 1, b = 'x' WHERE c = 2`).(*Update)
	if len(u.Sets) != 2 || u.Where == nil {
		t.Fatalf("%+v", u)
	}
	us := mustParse(t, `UPDATE STATISTICS FOR INDEX grt_index`).(*UpdateStatistics)
	if us.Index != "grt_index" {
		t.Fatalf("%+v", us)
	}
}

func TestTransactionsAndMisc(t *testing.T) {
	if _, ok := mustParse(t, `BEGIN WORK`).(*Begin); !ok {
		t.Fatal("begin")
	}
	if _, ok := mustParse(t, `COMMIT`).(*Commit); !ok {
		t.Fatal("commit")
	}
	if _, ok := mustParse(t, `ROLLBACK WORK`).(*Rollback); !ok {
		t.Fatal("rollback")
	}
	iso := mustParse(t, `SET ISOLATION TO REPEATABLE READ`).(*SetIsolation)
	if iso.Level != "REPEATABLE READ" {
		t.Fatalf("%+v", iso)
	}
	// Golden coverage for every level the engine accepts; the TO keyword is
	// optional (Informix accepts both spellings).
	for stmt, want := range map[string]string{
		`SET ISOLATION TO DIRTY READ`:     "DIRTY READ",
		`SET ISOLATION TO COMMITTED READ`: "COMMITTED READ",
		`SET ISOLATION TO SNAPSHOT`:       "SNAPSHOT",
		`SET ISOLATION SNAPSHOT`:          "SNAPSHOT",
		`SET ISOLATION dirty read`:        "DIRTY READ",
	} {
		got := mustParse(t, stmt).(*SetIsolation)
		if got.Level != want {
			t.Fatalf("%s: level %q, want %q", stmt, got.Level, want)
		}
	}
	sc := mustParse(t, `SET COMMIT TO group`).(*SetCommit)
	if sc.Mode != "GROUP" {
		t.Fatalf("%+v", sc)
	}
	sc = mustParse(t, `SET COMMIT ASYNC`).(*SetCommit)
	if sc.Mode != "ASYNC" {
		t.Fatalf("%+v", sc)
	}
	ci := mustParse(t, `CHECK INDEX grt_index`).(*CheckIndex)
	if ci.Name != "grt_index" {
		t.Fatalf("%+v", ci)
	}
	sb := mustParse(t, `CREATE SBSPACE spc`).(*CreateSbspace)
	if sb.Name != "spc" {
		t.Fatalf("%+v", sb)
	}
	if _, ok := mustParse(t, `DROP TABLE t`).(*DropTable); !ok {
		t.Fatal("drop table")
	}
	if _, ok := mustParse(t, `DROP INDEX i`).(*DropIndex); !ok {
		t.Fatal("drop index")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		-- registration script
		CREATE SBSPACE spc;
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("%d statements", len(stmts))
	}
}

func TestStringEscapes(t *testing.T) {
	st := mustParse(t, `INSERT INTO t VALUES ('it''s')`).(*Insert)
	lit := st.Rows[0][0].(*Literal)
	if lit.Text != "it's" {
		t.Fatalf("escape: %q", lit.Text)
	}
	// Double-quoted strings work too (the paper's examples use them).
	st2 := mustParse(t, `SELECT a FROM t WHERE f(a, "12/10/95, UC, 12/10/95, NOW")`).(*Select)
	fc := st2.Where.(*FuncCall)
	if fc.Args[1].(*Literal).Text != "12/10/95, UC, 12/10/95, NOW" {
		t.Fatal("double-quoted literal")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC a FROM t`,
		`CREATE TABLE t`,
		`CREATE TABLE t (a)`,
		`SELECT FROM t`,
		`SELECT a FROM`,
		`INSERT INTO t VALUES`,
		`INSERT t VALUES (1)`,
		`CREATE FUNCTION f(int) RETURNING`,
		`CREATE SECONDARY ACCESSMETHOD x (am_getnext = g)`,
		`CREATE OPCLASS o FOR`,
		`UPDATE t SET`,
		`SET ISOLATION TO`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t WHERE (a = 1`,
		`SELECT a FROM t WHERE 'unterminated`,
		`SELECT a FROM t extra`,
		`SELECT a FROM t WHERE a @ 1`,
		`SELECT a FROM t; SELECT b FROM u`, // Parse (single) rejects two
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLexerComments(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t -- trailing comment\n").(*Select)
	if st.Table != "t" {
		t.Fatal("comment handling")
	}
}
