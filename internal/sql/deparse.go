package sql

import (
	"fmt"
	"sort"
	"strings"
)

// Deparse renders a parsed statement back to SQL text. The output is a
// normal form: keywords uppercased, expressions fully parenthesised,
// placeholders as $n, map-valued clauses in sorted key order. Parsing the
// output yields an AST equal to the input (modulo `?` ordinals, which
// normalise to their assigned $n), which makes Deparse usable both as the
// plan-cache key normaliser and as the fuzz-test round-trip oracle.
func Deparse(st Statement) string {
	var b strings.Builder
	deparseStmt(&b, st)
	return b.String()
}

// DeparseExpr renders one expression in the same normal form.
func DeparseExpr(e Expr) string {
	var b strings.Builder
	deparseExpr(&b, e)
	return b.String()
}

func quoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func deparseStmt(b *strings.Builder, st Statement) {
	switch t := st.(type) {
	case *CreateTable:
		fmt.Fprintf(b, "CREATE TABLE %s (", t.Name)
		for i, c := range t.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s %s", c.Name, c.TypeName)
		}
		b.WriteString(")")
	case *DropTable:
		fmt.Fprintf(b, "DROP TABLE %s", t.Name)
	case *CreateFunction:
		fmt.Fprintf(b, "CREATE FUNCTION %s(%s) RETURNING %s EXTERNAL NAME %s LANGUAGE %s",
			t.Name, strings.Join(t.ArgTypes, ", "), t.Returns, quoteString(t.External), t.Language)
	case *CreateAccessMethod:
		fmt.Fprintf(b, "CREATE SECONDARY ACCESS_METHOD %s (", t.Name)
		keys := make([]string, 0, len(t.Slots))
		for k := range t.Slots {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s = %s", k, quoteString(t.Slots[k]))
		}
		b.WriteString(")")
	case *CreateOpClass:
		fmt.Fprintf(b, "CREATE OPCLASS %s FOR %s STRATEGIES (%s)",
			t.Name, t.AmName, strings.Join(t.Strategies, ", "))
		if len(t.Support) > 0 {
			fmt.Fprintf(b, " SUPPORT (%s)", strings.Join(t.Support, ", "))
		}
	case *CreateSbspace:
		fmt.Fprintf(b, "CREATE SBSPACE %s", t.Name)
	case *CreateIndex:
		fmt.Fprintf(b, "CREATE INDEX %s ON %s (", t.Name, t.Table)
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Column)
			if c.OpClass != "" {
				b.WriteString(" " + c.OpClass)
			}
		}
		b.WriteString(")")
		if t.AmName != "" {
			fmt.Fprintf(b, " USING %s", t.AmName)
			if len(t.Params) > 0 {
				keys := make([]string, 0, len(t.Params))
				for k := range t.Params {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				b.WriteString(" (")
				for i, k := range keys {
					if i > 0 {
						b.WriteString(", ")
					}
					fmt.Fprintf(b, "%s = %s", k, quoteString(t.Params[k]))
				}
				b.WriteString(")")
			}
		}
		if t.Space != "" {
			fmt.Fprintf(b, " IN %s", t.Space)
		}
	case *DropIndex:
		fmt.Fprintf(b, "DROP INDEX %s", t.Name)
	case *AlterIndexRebuild:
		fmt.Fprintf(b, "ALTER INDEX %s REBUILD", t.Name)
	case *Insert:
		fmt.Fprintf(b, "INSERT INTO %s", t.Table)
		if len(t.Columns) > 0 {
			fmt.Fprintf(b, " (%s)", strings.Join(t.Columns, ", "))
		}
		b.WriteString(" VALUES ")
		for i, row := range t.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				deparseExpr(b, e)
			}
			b.WriteString(")")
		}
	case *Select:
		b.WriteString("SELECT ")
		for i, it := range t.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			switch {
			case it.Star:
				b.WriteString("*")
			case it.CountStar:
				b.WriteString("count(*)")
			case it.Agg != "":
				fmt.Fprintf(b, "%s(%s)", it.Agg, it.Column)
			default:
				b.WriteString(it.Column)
			}
		}
		fmt.Fprintf(b, " FROM %s", t.Table)
		if t.Where != nil {
			b.WriteString(" WHERE ")
			deparseExpr(b, t.Where)
		}
	case *Delete:
		fmt.Fprintf(b, "DELETE FROM %s", t.Table)
		if t.Where != nil {
			b.WriteString(" WHERE ")
			deparseExpr(b, t.Where)
		}
	case *Update:
		fmt.Fprintf(b, "UPDATE %s SET ", t.Table)
		for i, sc := range t.Sets {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s = ", sc.Column)
			deparseExpr(b, sc.Value)
		}
		if t.Where != nil {
			b.WriteString(" WHERE ")
			deparseExpr(b, t.Where)
		}
	case *Begin:
		b.WriteString("BEGIN")
	case *Commit:
		b.WriteString("COMMIT")
	case *Rollback:
		b.WriteString("ROLLBACK")
	case *SetIsolation:
		fmt.Fprintf(b, "SET ISOLATION TO %s", t.Level)
	case *SetTrace:
		fmt.Fprintf(b, "SET TRACE %s TO %d", t.Class, t.Level)
	case *SetParallel:
		fmt.Fprintf(b, "SET PARALLEL TO %d", t.Degree)
	case *SetCommit:
		fmt.Fprintf(b, "SET COMMIT TO %s", t.Mode)
	case *SetPlanCache:
		if t.On {
			b.WriteString("SET PLAN_CACHE ON")
		} else {
			b.WriteString("SET PLAN_CACHE OFF")
		}
	case *Show:
		if t.All {
			b.WriteString("SHOW ALL")
		} else if cls, ok := strings.CutPrefix(t.Name, "trace."); ok {
			fmt.Fprintf(b, "SHOW trace %s", cls)
		} else {
			fmt.Fprintf(b, "SHOW %s", t.Name)
		}
	case *Explain:
		b.WriteString("EXPLAIN ")
		deparseStmt(b, t.Stmt)
	case *CheckIndex:
		fmt.Fprintf(b, "CHECK INDEX %s", t.Name)
	case *UpdateStatistics:
		if t.Index != "" {
			fmt.Fprintf(b, "UPDATE STATISTICS FOR INDEX %s", t.Index)
		} else {
			fmt.Fprintf(b, "UPDATE STATISTICS FOR TABLE %s", t.Table)
		}
	case *Load:
		fmt.Fprintf(b, "LOAD FROM %s DELIMITER %s INSERT INTO %s",
			quoteString(t.File), quoteString(t.Delimiter), t.Table)
	case *Prepare:
		fmt.Fprintf(b, "PREPARE %s AS ", t.Name)
		deparseStmt(b, t.Stmt)
	case *Execute:
		fmt.Fprintf(b, "EXECUTE %s", t.Name)
		if len(t.Args) > 0 {
			b.WriteString(" (")
			for i, a := range t.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				deparseExpr(b, a)
			}
			b.WriteString(")")
		}
	case *Deallocate:
		fmt.Fprintf(b, "DEALLOCATE %s", t.Name)
	default:
		fmt.Fprintf(b, "/* undeparsable %T */", st)
	}
}

func deparseExpr(b *strings.Builder, e Expr) {
	switch t := e.(type) {
	case *Literal:
		if t.IsString {
			b.WriteString(quoteString(t.Text))
		} else {
			b.WriteString(t.Text)
		}
	case *Null:
		b.WriteString("NULL")
	case *ColumnRef:
		b.WriteString(t.Name)
	case *Param:
		fmt.Fprintf(b, "$%d", t.Ord)
	case *FuncCall:
		b.WriteString(t.Name)
		b.WriteString("(")
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			deparseExpr(b, a)
		}
		b.WriteString(")")
	case *Binary:
		b.WriteString("(")
		deparseExpr(b, t.L)
		fmt.Fprintf(b, " %s ", t.Op)
		deparseExpr(b, t.R)
		b.WriteString(")")
	case *Not:
		b.WriteString("(NOT ")
		deparseExpr(b, t.X)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* undeparsable expr %T */", e)
	}
}
