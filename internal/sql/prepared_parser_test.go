package sql

import "testing"

func TestPreparedStatementGrammar(t *testing.T) {
	p := mustParse(t, `PREPARE byemp AS SELECT Name FROM Employees WHERE Department = $1`).(*Prepare)
	if p.Name != "byemp" {
		t.Fatalf("name: %q", p.Name)
	}
	sel, ok := p.Stmt.(*Select)
	if !ok {
		t.Fatalf("inner statement: %T", p.Stmt)
	}
	if NumParams(sel) != 1 {
		t.Fatalf("params: %d", NumParams(sel))
	}

	// Anonymous ? placeholders number left to right.
	q := mustParse(t, `SELECT a FROM t WHERE f(x, ?) AND y = ?`)
	if NumParams(q) != 2 {
		t.Fatalf("? numbering: %d", NumParams(q))
	}
	// $n ordinals can repeat and skip; the count is the highest ordinal.
	q = mustParse(t, `SELECT a FROM t WHERE x = $2 OR y = $2`)
	if NumParams(q) != 2 {
		t.Fatalf("repeated $2: %d", NumParams(q))
	}

	e := mustParse(t, `EXECUTE byemp ('Sales', 7)`).(*Execute)
	if e.Name != "byemp" || len(e.Args) != 2 {
		t.Fatalf("%+v", e)
	}
	if mustParse(t, `EXECUTE noargs`).(*Execute).Args != nil {
		t.Fatal("bare EXECUTE must carry no args")
	}

	if d := mustParse(t, `DEALLOCATE PREPARE byemp`).(*Deallocate); d.Name != "byemp" {
		t.Fatalf("%+v", d)
	}
	if d := mustParse(t, `DEALLOCATE byemp`).(*Deallocate); d.Name != "byemp" {
		t.Fatalf("%+v", d)
	}

	// Placeholders reach every DML position the engine binds.
	for _, src := range []string{
		`INSERT INTO t VALUES ($1, $2, $3)`,
		`UPDATE t SET a = $1 WHERE b = $2`,
		`DELETE FROM t WHERE Overlaps(x, $1)`,
	} {
		if !HasParams(mustParse(t, src)) {
			t.Fatalf("no params seen in %q", src)
		}
	}

	for _, bad := range []string{
		`PREPARE p AS PREPARE q AS SELECT 1`, // no nesting
		`PREPARE p AS EXECUTE q`,
		`PREPARE p AS DEALLOCATE q`,
		`PREPARE p`, // missing AS
		`EXECUTE`,   // missing name
		`DEALLOCATE`,
		`SELECT a FROM t WHERE x = $0`, // ordinals are 1-based
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) must fail", bad)
		}
	}
}

func TestPreparedDeparseRoundTrip(t *testing.T) {
	for _, src := range []string{
		`PREPARE byemp AS SELECT Name FROM Employees WHERE Department = $1`,
		`PREPARE ins AS INSERT INTO t VALUES ($1, $2)`,
		`EXECUTE byemp ('Sales')`,
		`EXECUTE noargs`,
		`DEALLOCATE byemp`,
		`SET PLAN_CACHE ON`,
		`SET PLAN_CACHE OFF`,
		`SELECT a FROM t WHERE Overlaps(x, $1) OR Equal(x, $2)`,
	} {
		d1 := Deparse(mustParse(t, src))
		st2, err := Parse(d1)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", d1, src, err)
		}
		if d2 := Deparse(st2); d2 != d1 {
			t.Fatalf("deparse not stable: %q vs %q", d1, d2)
		}
	}
}

func TestParamizeWhere(t *testing.T) {
	sel := mustParse(t, `SELECT n FROM t WHERE Overlaps(x, '1/97') AND d = 'Sales'`).(*Select)
	rewritten, args := ParamizeWhere(sel.Where)
	if len(args) != 2 {
		t.Fatalf("extracted %d constants", len(args))
	}
	if NumParams(&Select{Where: rewritten}) != 2 {
		t.Fatalf("rewritten tree: %s", DeparseExpr(rewritten))
	}
	// Same shape, different constants → identical paramized deparse.
	sel2 := mustParse(t, `SELECT n FROM t WHERE Overlaps(x, '9/99') AND d = 'Toys'`).(*Select)
	r2, _ := ParamizeWhere(sel2.Where)
	if DeparseExpr(rewritten) != DeparseExpr(r2) {
		t.Fatalf("paramized shapes differ: %q vs %q", DeparseExpr(rewritten), DeparseExpr(r2))
	}
	// The original tree is untouched.
	if HasParams(sel) {
		t.Fatal("ParamizeWhere mutated its input")
	}
}
