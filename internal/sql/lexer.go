// Package sql implements the engine's SQL front end: lexer, AST, and
// recursive-descent parser for the dialect the paper's DataBlade workflow
// exercises — CREATE TABLE / FUNCTION / SECONDARY ACCESS_METHOD / OPCLASS /
// SBSPACE / INDEX ... USING am IN space, DML with strategy-function
// predicates in WHERE clauses, transactions, and SET ISOLATION.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

const (
	// TEOF ends the input.
	TEOF TokKind = iota
	// TIdent is an identifier or keyword.
	TIdent
	// TNumber is a numeric literal.
	TNumber
	// TString is a quoted string literal.
	TString
	// TPunct is an operator or punctuation token.
	TPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifiers preserved as written; keywords matched case-insensitively
	Pos  int
}

// lex tokenizes the input.
func lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, Token{TIdent, src[start:i], start})
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(src[i])) || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{TNumber, src[start:i], start})
		case c == '\'' || c == '"':
			quote := c
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == quote {
					if i+1 < n && src[i+1] == quote { // doubled quote escape
						sb.WriteByte(quote)
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, Token{TString, sb.String(), i})
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, Token{TPunct, two, i})
				i += 2
				continue
			}
			if c == '$' && i+1 < n && unicode.IsDigit(rune(src[i+1])) {
				start := i
				i++
				for i < n && unicode.IsDigit(rune(src[i])) {
					i++
				}
				toks = append(toks, Token{TPunct, src[start:i], start})
				continue
			}
			switch c {
			case '(', ')', ',', ';', '=', '<', '>', '*', '+', '-', '.', '?':
				toks = append(toks, Token{TPunct, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{TEOF, "", n})
	return toks, nil
}
