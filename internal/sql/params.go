package sql

// walkExpr calls f on e and every sub-expression.
func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch t := e.(type) {
	case *FuncCall:
		for _, a := range t.Args {
			walkExpr(a, f)
		}
	case *Binary:
		walkExpr(t.L, f)
		walkExpr(t.R, f)
	case *Not:
		walkExpr(t.X, f)
	}
}

// walkStmtExprs calls f on every expression appearing in st.
func walkStmtExprs(st Statement, f func(Expr)) {
	switch t := st.(type) {
	case *Insert:
		for _, row := range t.Rows {
			for _, e := range row {
				walkExpr(e, f)
			}
		}
	case *Select:
		walkExpr(t.Where, f)
	case *Delete:
		walkExpr(t.Where, f)
	case *Update:
		for _, sc := range t.Sets {
			walkExpr(sc.Value, f)
		}
		walkExpr(t.Where, f)
	case *Execute:
		for _, a := range t.Args {
			walkExpr(a, f)
		}
	case *Explain:
		walkStmtExprs(t.Stmt, f)
	case *Prepare:
		walkStmtExprs(t.Stmt, f)
	}
}

// NumParams returns the number of parameter slots st requires: the highest
// placeholder ordinal appearing anywhere in the statement (0 if none).
func NumParams(st Statement) int {
	max := 0
	walkStmtExprs(st, func(e Expr) {
		if p, ok := e.(*Param); ok && p.Ord > max {
			max = p.Ord
		}
	})
	return max
}

// HasParams reports whether any placeholder appears in st.
func HasParams(st Statement) bool { return NumParams(st) > 0 }

// ParamizeWhere rewrites a WHERE tree replacing every literal constant
// (Literal and Null leaves) with sequential placeholders, returning the
// rewritten copy and the extracted constant expressions in ordinal order.
// Two statements that differ only in their qualification constants
// paramize to identical trees — the shape the shared plan cache keys on.
// The input tree is not modified; already-present Params are kept (their
// ordinals shifted after the extracted constants would clash), so the
// rewrite is only applied to literal-only trees by the caller.
func ParamizeWhere(e Expr) (Expr, []Expr) {
	var args []Expr
	var rewrite func(Expr) Expr
	rewrite = func(e Expr) Expr {
		switch t := e.(type) {
		case nil:
			return nil
		case *Literal, *Null:
			args = append(args, t)
			return &Param{Ord: len(args)}
		case *FuncCall:
			out := &FuncCall{Name: t.Name, Args: make([]Expr, len(t.Args))}
			for i, a := range t.Args {
				out.Args[i] = rewrite(a)
			}
			return out
		case *Binary:
			return &Binary{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		case *Not:
			return &Not{X: rewrite(t.X)}
		default:
			return t // ColumnRef, Param: unchanged
		}
	}
	return rewrite(e), args
}
